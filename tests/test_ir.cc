#include <gtest/gtest.h>

#include <cmath>

#include "ir/circuit.h"
#include "testutil.h"

namespace {

using namespace qpc;
using namespace qpc::testutil;

TEST(ParamExpr, ConstantBindsWithoutVector)
{
    const ParamExpr c = ParamExpr::constant(1.5);
    EXPECT_FALSE(c.isSymbolic());
    EXPECT_NEAR(c.bind({}), 1.5, 1e-12);
}

TEST(ParamExpr, SymbolicBind)
{
    const ParamExpr e = ParamExpr::theta(2, -0.5, 0.25);
    EXPECT_TRUE(e.isSymbolic());
    EXPECT_NEAR(e.bind({0.0, 0.0, 2.0}), -0.75, 1e-12);
}

TEST(ParamExpr, AddSameIndex)
{
    const auto sum = tryAdd(ParamExpr::theta(1, 2.0),
                            ParamExpr::theta(1, 0.5, 0.1));
    ASSERT_TRUE(sum.has_value());
    EXPECT_EQ(sum->index, 1);
    EXPECT_NEAR(sum->coeff, 2.5, 1e-12);
    EXPECT_NEAR(sum->offset, 0.1, 1e-12);
}

TEST(ParamExpr, AddDifferentIndicesFails)
{
    EXPECT_FALSE(tryAdd(ParamExpr::theta(0), ParamExpr::theta(1))
                     .has_value());
}

TEST(ParamExpr, AddConstantToSymbolic)
{
    const auto sum =
        tryAdd(ParamExpr::theta(3, 1.0), ParamExpr::constant(0.7));
    ASSERT_TRUE(sum.has_value());
    EXPECT_EQ(sum->index, 3);
    EXPECT_NEAR(sum->offset, 0.7, 1e-12);
}

TEST(ParamExpr, CancellationCollapsesToConstant)
{
    const auto sum = tryAdd(ParamExpr::theta(0, 1.0),
                            ParamExpr::theta(0, -1.0, 0.2));
    ASSERT_TRUE(sum.has_value());
    EXPECT_FALSE(sum->isSymbolic());
    EXPECT_NEAR(sum->offset, 0.2, 1e-12);
}

TEST(ParamExpr, ScaleAndNegate)
{
    const ParamExpr e = ParamExpr::theta(0, 2.0, 1.0);
    const ParamExpr n = e.negated();
    EXPECT_NEAR(n.coeff, -2.0, 1e-12);
    EXPECT_NEAR(n.offset, -1.0, 1e-12);
    EXPECT_TRUE(ParamExpr::constant(0.0).isZero());
    EXPECT_FALSE(e.isZero());
}

TEST(Circuit, BuildersRecordOps)
{
    Circuit c(3);
    c.h(0);
    c.cx(0, 1);
    c.rz(2, ParamExpr::theta(0));
    c.swap(1, 2);
    EXPECT_EQ(c.size(), 4);
    EXPECT_EQ(c.ops()[1].kind, GateKind::CX);
    EXPECT_EQ(c.ops()[1].q0, 0);
    EXPECT_EQ(c.ops()[1].q1, 1);
    EXPECT_EQ(c.ops()[2].paramIndex(), 0);
    EXPECT_EQ(c.countTwoQubitOps(), 2);
}

TEST(Circuit, NumParamsAndUsage)
{
    Circuit c(2);
    c.rz(0, ParamExpr::theta(4));
    c.rx(1, ParamExpr::theta(1));
    EXPECT_EQ(c.numParams(), 5);
    const std::vector<int> used = c.paramsUsed();
    ASSERT_EQ(used.size(), 2u);
    EXPECT_EQ(used[0], 1);
    EXPECT_EQ(used[1], 4);
    EXPECT_FALSE(c.isParamFree());
}

TEST(Circuit, BindResolvesAllAngles)
{
    Circuit c(1);
    c.rz(0, ParamExpr::theta(0, 2.0, 0.5));
    const Circuit bound = c.bind({1.25});
    EXPECT_TRUE(bound.isParamFree());
    EXPECT_NEAR(bound.ops()[0].angle.bind({}), 3.0, 1e-12);
}

TEST(Circuit, AppendAndSlice)
{
    Circuit a(2), b(2);
    a.h(0);
    b.cx(0, 1);
    b.x(1);
    a.append(b);
    EXPECT_EQ(a.size(), 3);
    const Circuit mid = a.slice(1, 3);
    EXPECT_EQ(mid.size(), 2);
    EXPECT_EQ(mid.ops()[0].kind, GateKind::CX);
}

TEST(Circuit, ParametrizedFraction)
{
    Circuit c(2);
    c.h(0);
    c.h(1);
    c.cx(0, 1);
    c.rz(1, ParamExpr::theta(0));
    EXPECT_NEAR(c.parametrizedFraction(), 0.25, 1e-12);
}

TEST(Circuit, MonotonicityDetection)
{
    Circuit good(2);
    good.rz(0, ParamExpr::theta(0));
    good.h(1);
    good.rz(1, ParamExpr::theta(0));
    good.rz(0, ParamExpr::theta(1));
    EXPECT_TRUE(isParamMonotone(good));

    Circuit bad(2);
    bad.rz(0, ParamExpr::theta(1));
    bad.rz(1, ParamExpr::theta(0));
    EXPECT_FALSE(isParamMonotone(bad));
}

TEST(Gate, ArityAndNames)
{
    EXPECT_EQ(gateArity(GateKind::H), 1);
    EXPECT_EQ(gateArity(GateKind::CX), 2);
    EXPECT_EQ(gateName(GateKind::SWAP), "swap");
    EXPECT_TRUE(gateIsRotation(GateKind::Ry));
    EXPECT_FALSE(gateIsRotation(GateKind::T));
    EXPECT_TRUE(gateIsSelfInverse(GateKind::CZ));
    EXPECT_FALSE(gateIsSelfInverse(GateKind::S));
}

TEST(Gate, MatricesAreUnitary)
{
    for (GateKind kind :
         {GateKind::I, GateKind::X, GateKind::Y, GateKind::Z,
          GateKind::H, GateKind::S, GateKind::Sdg, GateKind::T,
          GateKind::Tdg, GateKind::CX, GateKind::CZ, GateKind::SWAP,
          GateKind::ISwap}) {
        EXPECT_TRUE(gateMatrix(kind).isUnitary(1e-10))
            << gateName(kind);
    }
    EXPECT_TRUE(gateMatrix(GateKind::Rx, 0.7).isUnitary(1e-10));
}

TEST(Gate, SAndTRelations)
{
    // S = T^2; Sdg S = I.
    EXPECT_TRUE((gateMatrix(GateKind::T) * gateMatrix(GateKind::T))
                    .approxEqual(gateMatrix(GateKind::S), 1e-12));
    EXPECT_TRUE((gateMatrix(GateKind::Sdg) * gateMatrix(GateKind::S))
                    .approxEqual(CMatrix::identity(2), 1e-12));
}

TEST(Circuit, RandomHelperIsDeterministic)
{
    Rng a(5), b(5);
    EXPECT_TRUE(circuitEquals(randomCircuit(a, 3, 25),
                              randomCircuit(b, 3, 25)));
}

} // namespace
