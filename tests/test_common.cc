#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "common/table.h"

namespace {

using namespace qpc;

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.uniform(), b.uniform());
}

TEST(Rng, UniformRange)
{
    Rng rng(1);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.uniform(-2.0, 3.0);
        EXPECT_GE(v, -2.0);
        EXPECT_LT(v, 3.0);
    }
}

TEST(Rng, RandintInclusive)
{
    Rng rng(2);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 500; ++i) {
        const int v = rng.randint(0, 3);
        EXPECT_GE(v, 0);
        EXPECT_LE(v, 3);
        saw_lo = saw_lo || v == 0;
        saw_hi = saw_hi || v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMoments)
{
    Rng rng(3);
    double sum = 0.0, sum_sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double v = rng.normal();
        sum += v;
        sum_sq += v * v;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.05);
    EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(Rng, AnglesInRange)
{
    Rng rng(4);
    for (double a : rng.angles(200)) {
        EXPECT_GE(a, -3.14159266);
        EXPECT_LT(a, 3.14159266);
    }
}

TEST(Rng, ShufflePreservesMultiset)
{
    Rng rng(5);
    std::vector<int> v{1, 2, 3, 4, 5, 6};
    std::vector<int> shuffled = v;
    rng.shuffle(shuffled);
    std::sort(shuffled.begin(), shuffled.end());
    EXPECT_EQ(shuffled, v);
}

TEST(Rng, BernoulliExtremes)
{
    Rng rng(6);
    for (int i = 0; i < 50; ++i) {
        EXPECT_FALSE(rng.bernoulli(0.0));
        EXPECT_TRUE(rng.bernoulli(1.0));
    }
}

TEST(Table, AlignsColumns)
{
    TextTable t("caption");
    t.addRow({"a", "long-header"});
    t.addRow({"wide-cell", "b"});
    const std::string s = t.str();
    EXPECT_NE(s.find("caption"), std::string::npos);
    EXPECT_NE(s.find("long-header"), std::string::npos);
    // Header separator present.
    EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(Table, Formatters)
{
    EXPECT_EQ(fmtDouble(1.23456, 2), "1.23");
    EXPECT_EQ(fmtRatio(2.5, 1), "2.5x");
    EXPECT_EQ(fmtNs(5308.31, 1), "5308.3");
}

} // namespace
