#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "common/table.h"

namespace {

using namespace qpc;

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.uniform(), b.uniform());
}

TEST(Rng, UniformRange)
{
    Rng rng(1);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.uniform(-2.0, 3.0);
        EXPECT_GE(v, -2.0);
        EXPECT_LT(v, 3.0);
    }
}

TEST(Rng, RandintInclusive)
{
    Rng rng(2);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 500; ++i) {
        const int v = rng.randint(0, 3);
        EXPECT_GE(v, 0);
        EXPECT_LE(v, 3);
        saw_lo = saw_lo || v == 0;
        saw_hi = saw_hi || v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMoments)
{
    Rng rng(3);
    double sum = 0.0, sum_sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double v = rng.normal();
        sum += v;
        sum_sq += v * v;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.05);
    EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(Rng, AnglesInRange)
{
    Rng rng(4);
    for (double a : rng.angles(200)) {
        EXPECT_GE(a, -3.14159266);
        EXPECT_LT(a, 3.14159266);
    }
}

TEST(Rng, ShufflePreservesMultiset)
{
    Rng rng(5);
    std::vector<int> v{1, 2, 3, 4, 5, 6};
    std::vector<int> shuffled = v;
    rng.shuffle(shuffled);
    std::sort(shuffled.begin(), shuffled.end());
    EXPECT_EQ(shuffled, v);
}

TEST(Rng, BernoulliExtremes)
{
    Rng rng(6);
    for (int i = 0; i < 50; ++i) {
        EXPECT_FALSE(rng.bernoulli(0.0));
        EXPECT_TRUE(rng.bernoulli(1.0));
    }
}

TEST(Table, AlignsColumns)
{
    TextTable t("caption");
    t.addRow({"a", "long-header"});
    t.addRow({"wide-cell", "b"});
    const std::string s = t.str();
    EXPECT_NE(s.find("caption"), std::string::npos);
    EXPECT_NE(s.find("long-header"), std::string::npos);
    // Header separator present.
    EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(Table, Formatters)
{
    EXPECT_EQ(fmtDouble(1.23456, 2), "1.23");
    EXPECT_EQ(fmtRatio(2.5, 1), "2.5x");
    EXPECT_EQ(fmtNs(5308.31, 1), "5308.3");
}

// Restores the process log level on scope exit so a failing assert
// can't leave the rest of the suite muted.
struct LogLevelGuard
{
    LogLevel saved = logLevel();
    ~LogLevelGuard() { setLogLevel(saved); }
};

TEST(Logging, ParseLogLevel)
{
    EXPECT_EQ(parseLogLevel("silent"), LogLevel::Silent);
    EXPECT_EQ(parseLogLevel("0"), LogLevel::Silent);
    EXPECT_EQ(parseLogLevel("warn"), LogLevel::Warn);
    EXPECT_EQ(parseLogLevel("1"), LogLevel::Warn);
    EXPECT_EQ(parseLogLevel("info"), LogLevel::Info);
    EXPECT_EQ(parseLogLevel("2"), LogLevel::Info);
    // Empty / unrecognized values fall back to the default.
    EXPECT_EQ(parseLogLevel(""), LogLevel::Info);
    EXPECT_EQ(parseLogLevel("debug"), LogLevel::Info);
    EXPECT_EQ(parseLogLevel("3"), LogLevel::Info);
}

TEST(Logging, LevelGatesInformAndWarn)
{
    LogLevelGuard guard;

    setLogLevel(LogLevel::Silent);
    testing::internal::CaptureStdout();
    testing::internal::CaptureStderr();
    inform("hidden");
    warn("hidden");
    EXPECT_EQ(testing::internal::GetCapturedStdout(), "");
    EXPECT_EQ(testing::internal::GetCapturedStderr(), "");

    setLogLevel(LogLevel::Warn);
    testing::internal::CaptureStdout();
    testing::internal::CaptureStderr();
    inform("hidden");
    warn("shown");
    EXPECT_EQ(testing::internal::GetCapturedStdout(), "");
    EXPECT_EQ(testing::internal::GetCapturedStderr(), "warn: shown\n");

    setLogLevel(LogLevel::Info);
    testing::internal::CaptureStdout();
    testing::internal::CaptureStderr();
    inform("shown ", 42);
    warn("also ", "shown");
    EXPECT_EQ(testing::internal::GetCapturedStdout(), "info: shown 42\n");
    EXPECT_EQ(testing::internal::GetCapturedStderr(), "warn: also shown\n");
}

// Regression test for torn log lines: each warn() must reach the
// stream as a single write, so concurrent writers can interleave
// whole lines but never fragments of one another's lines.
TEST(Logging, ConcurrentWarnsDoNotTear)
{
    LogLevelGuard guard;
    setLogLevel(LogLevel::Warn);

    constexpr int kThreads = 8;
    constexpr int kLines = 200;

    testing::internal::CaptureStderr();
    {
        std::vector<std::thread> threads;
        for (int t = 0; t < kThreads; ++t) {
            threads.emplace_back([t] {
                for (int i = 0; i < kLines; ++i)
                    warn("t", t, " line ", i, " payload-payload-payload");
            });
        }
        for (auto& th : threads)
            th.join();
    }
    const std::string captured = testing::internal::GetCapturedStderr();

    int lines = 0;
    std::size_t pos = 0;
    while (pos < captured.size()) {
        std::size_t nl = captured.find('\n', pos);
        ASSERT_NE(nl, std::string::npos) << "output must end with newline";
        const std::string line = captured.substr(pos, nl - pos);
        pos = nl + 1;
        ++lines;
        // Every line is exactly one warn() payload — prefix at the
        // front, payload marker at the end, no embedded fragments.
        ASSERT_EQ(line.rfind("warn: t", 0), 0) << "torn line: " << line;
        ASSERT_NE(line.find(" payload-payload-payload"), std::string::npos)
            << "torn line: " << line;
        ASSERT_EQ(line.find("warn:", 5), std::string::npos)
            << "two lines fused: " << line;
    }
    EXPECT_EQ(lines, kThreads * kLines);
}

} // namespace
