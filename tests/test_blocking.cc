#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "testutil.h"
#include "transpile/blocking.h"

namespace {

using namespace qpc;
using namespace qpc::testutil;

TEST(Blocking, SingleBlockWhenNarrow)
{
    Circuit c(3);
    c.h(0);
    c.cx(0, 1);
    c.cx(1, 2);
    const Blocking b = aggregateBlocks(c, 4);
    EXPECT_EQ(b.numBlocks(), 1);
    EXPECT_EQ(b.blocks[0].width(), 3);
    EXPECT_EQ(b.blocks[0].opIndices.size(), 3u);
}

TEST(Blocking, SplitsAtWidthCap)
{
    Circuit c(4);
    c.cx(0, 1);
    c.cx(2, 3);
    c.cx(1, 2);   // would join all four qubits
    const Blocking b = aggregateBlocks(c, 2);
    EXPECT_EQ(b.numBlocks(), 3);
    for (const CircuitBlock& block : b.blocks)
        EXPECT_LE(block.width(), 2);
}

TEST(Blocking, EveryOpExactlyOnce)
{
    Rng rng(41);
    for (int trial = 0; trial < 10; ++trial) {
        const Circuit c = randomCircuit(rng, 6, 60);
        const Blocking b = aggregateBlocks(c, 4);
        std::set<int> seen;
        for (const CircuitBlock& block : b.blocks) {
            EXPECT_LE(block.width(), 4);
            for (int idx : block.opIndices) {
                EXPECT_TRUE(seen.insert(idx).second)
                    << "op " << idx << " in two blocks";
            }
        }
        EXPECT_EQ(static_cast<int>(seen.size()), c.size());
    }
}

TEST(Blocking, BlockQubitsCoverTheirOps)
{
    Rng rng(42);
    const Circuit c = randomCircuit(rng, 5, 50);
    const Blocking b = aggregateBlocks(c, 3);
    for (const CircuitBlock& block : b.blocks) {
        for (int idx : block.opIndices) {
            for (int q : c.ops()[idx].qubits()) {
                EXPECT_TRUE(std::binary_search(block.qubits.begin(),
                                               block.qubits.end(), q));
            }
        }
    }
}

TEST(Blocking, AsCircuitRelabelsAndPreservesOrder)
{
    Circuit c(4);
    c.h(2);
    c.cx(2, 3);
    c.rz(3, 0.5);
    const Blocking b = aggregateBlocks(c, 2);
    ASSERT_EQ(b.numBlocks(), 1);
    const Circuit local = b.blocks[0].asCircuit(c);
    EXPECT_EQ(local.numQubits(), 2);
    EXPECT_EQ(local.ops()[0].kind, GateKind::H);
    EXPECT_EQ(local.ops()[0].q0, 0);   // global q2 -> local 0
    EXPECT_EQ(local.ops()[1].q1, 1);   // global q3 -> local 1
}

TEST(Blocking, DagIsAcyclicAndOrdered)
{
    Rng rng(43);
    for (int trial = 0; trial < 10; ++trial) {
        const Circuit c = randomCircuit(rng, 6, 80);
        const Blocking b = aggregateBlocks(c, 4);
        // blockCriticalPath panics on cycles; also sanity check that
        // predecessor lists stay in range and irreflexive.
        for (int v = 0; v < b.numBlocks(); ++v) {
            for (int p : b.predecessors[v]) {
                EXPECT_GE(p, 0);
                EXPECT_LT(p, b.numBlocks());
                EXPECT_NE(p, v);
            }
        }
        const std::vector<double> unit(b.numBlocks(), 1.0);
        const double depth = blockCriticalPath(b, unit);
        EXPECT_GE(depth, 1.0);
        EXPECT_LE(depth, static_cast<double>(b.numBlocks()));
    }
}

TEST(Blocking, CriticalPathBounds)
{
    Rng rng(44);
    const Circuit c = randomCircuit(rng, 6, 60);
    const Blocking b = aggregateBlocks(c, 4);
    std::vector<double> times;
    double total = 0.0;
    double longest = 0.0;
    for (int i = 0; i < b.numBlocks(); ++i) {
        const double t = 1.0 + (i % 5);
        times.push_back(t);
        total += t;
        longest = std::max(longest, t);
    }
    const double critical = blockCriticalPath(b, times);
    EXPECT_GE(critical, longest - 1e-12);
    EXPECT_LE(critical, total + 1e-12);
}

TEST(Blocking, ParallelChainsStayParallel)
{
    // Two disjoint 2-qubit chains: blocks must not serialize.
    Circuit c(4);
    for (int i = 0; i < 5; ++i) {
        c.cx(0, 1);
        c.rz(1, 0.3);
        c.cx(2, 3);
        c.rz(3, 0.4);
    }
    const Blocking b = aggregateBlocks(c, 2);
    EXPECT_EQ(b.numBlocks(), 2);
    const double critical = blockCriticalPath(b, {7.0, 9.0});
    EXPECT_NEAR(critical, 9.0, 1e-12);
}

TEST(Blocking, WidthOneDegeneratesToPerQubitRuns)
{
    Circuit c(2);
    c.h(0);
    c.h(1);
    c.x(0);
    const Blocking b = aggregateBlocks(c, 1);
    EXPECT_EQ(b.numBlocks(), 2);
}

} // namespace
