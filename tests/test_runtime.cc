#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <future>
#include <thread>
#include <unistd.h>
#include <vector>

#include "partial/compiler.h"
#include "partial/strict.h"
#include "pulse/evolve.h"
#include "qaoa/qaoacircuit.h"
#include "qaoa/qaoadriver.h"
#include "qaoa/graph.h"
#include "runtime/service.h"
#include "runtime/threadpool.h"
#include "sim/statevector.h"
#include "testutil.h"
#include "vqe/vqedriver.h"
#include "vqe/hamiltonian.h"
#include "vqe/molecule.h"
#include "vqe/uccsd.h"

namespace qpc {

/** Friend seam declared by ServingPlan: regression tests corrupt plan
 * internals to prove serve() fails loudly instead of reading out of
 * bounds. */
struct ServingPlanTestPeer
{
    static void
    setQuantizationBins(ServingPlan& plan, int bins)
    {
        plan.quant_.bins = bins;
    }
};

} // namespace qpc

namespace {

using namespace qpc;
using namespace qpc::testutil;

/** Unique scratch directory, removed on destruction. */
class TempDir
{
  public:
    explicit TempDir(const std::string& stem)
    {
        path_ = (std::filesystem::temp_directory_path() /
                 (stem + "." + std::to_string(::getpid())))
                    .string();
        std::filesystem::remove_all(path_);
        std::filesystem::create_directories(path_);
    }
    ~TempDir() { std::filesystem::remove_all(path_); }
    const std::string& path() const { return path_; }

  private:
    std::string path_;
};

/** Synthesizer wrapper that counts invocations and optionally sleeps. */
struct CountingSynth
{
    std::atomic<int> runs{0};

    BlockSynthesizer
    make(int sleep_ms = 0)
    {
        BlockSynthesizer inner = analyticBlockSynthesizer(0.5);
        return [this, sleep_ms, inner](const Circuit& block) {
            runs.fetch_add(1);
            if (sleep_ms > 0)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(sleep_ms));
            return inner(block);
        };
    }
};

Circuit
smallFixedBlock()
{
    Circuit c(2);
    c.h(0);
    c.cx(0, 1);
    c.rz(1, 0.375);
    return c;
}

/** A small variational circuit with two identical Fixed blocks. */
Circuit
twoBlockTemplate()
{
    Circuit c(2);
    c.h(0);
    c.cx(0, 1);
    c.rz(1, ParamExpr::theta(0));
    c.h(0);
    c.cx(0, 1);
    c.rz(1, ParamExpr::theta(1));
    return c;
}

// ---------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------

TEST(ThreadPool, RunsEveryJobExactlyOnce)
{
    std::atomic<int> counter{0};
    {
        ThreadPool pool(4);
        EXPECT_EQ(pool.numWorkers(), 4);
        for (int i = 0; i < 100; ++i)
            EXPECT_TRUE(
                pool.submit([&counter] { counter.fetch_add(1); }));
    } // Destructor drains.
    EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, DefaultsToAtLeastOneWorker)
{
    ThreadPool pool(0);
    EXPECT_GE(pool.numWorkers(), 1);
    std::atomic<bool> ran{false};
    EXPECT_TRUE(pool.submit([&ran] { ran.store(true); }));
    while (!ran.load())
        std::this_thread::yield();
}

TEST(ThreadPool, BoundedQueueNeverExceedsItsCapAndRunsEverything)
{
    constexpr std::size_t kMaxQueued = 4;
    std::atomic<int> counter{0};
    {
        ThreadPool pool(2, kMaxQueued);
        EXPECT_EQ(pool.maxQueuedJobs(), kMaxQueued);
        // 4 producers race 60 slow-ish jobs through a 4-slot queue:
        // submit() must block rather than let the FIFO balloon.
        std::vector<std::thread> producers;
        for (int t = 0; t < 4; ++t)
            producers.emplace_back([&pool, &counter] {
                for (int i = 0; i < 15; ++i)
                    EXPECT_TRUE(pool.submit([&counter] {
                        std::this_thread::sleep_for(
                            std::chrono::microseconds(200));
                        counter.fetch_add(1);
                    }));
            });
        for (std::thread& p : producers)
            p.join();
        EXPECT_LE(pool.peakQueueDepth(), kMaxQueued);
    } // Destructor drains the tail.
    EXPECT_EQ(counter.load(), 60);
}

TEST(ThreadPool, TrySubmitRefusesWhenFull)
{
    ThreadPool pool(1, 1);
    // Occupy the lone worker...
    std::promise<void> gate;
    std::shared_future<void> open = gate.get_future().share();
    std::atomic<int> ran{0};
    ASSERT_TRUE(pool.submit([open, &ran] {
        open.wait();
        ran.fetch_add(1);
    }));
    // ... wait until the worker has actually dequeued it, then fill
    // the single queue slot.
    while (pool.queueDepth() > 0)
        std::this_thread::yield();
    ASSERT_TRUE(pool.trySubmit([open, &ran] {
        open.wait();
        ran.fetch_add(1);
    }));
    // Queue is now full: refusal, not blocking.
    EXPECT_FALSE(pool.trySubmit([] {}));
    EXPECT_EQ(pool.queueDepth(), 1u);

    gate.set_value();
    while (ran.load() < 2)
        std::this_thread::yield();
    // Space again: accepted.
    EXPECT_TRUE(pool.trySubmit([&ran] { ran.fetch_add(1); }));
    while (ran.load() < 3)
        std::this_thread::yield();
}

TEST(ThreadPool, ShutdownWakesBlockedSubmittersAndRefusesTheirJobs)
{
    // Regression: destroying a pool while producers were blocked in
    // submit() on a full queue used to strand them forever (the stop
    // never notified spaceCv_). Now the stop wakes every blocked
    // submitter and refuses its job, while already-accepted jobs
    // still run.
    std::promise<void> gate;
    std::shared_future<void> open = gate.get_future().share();
    std::atomic<int> ran{0};
    std::atomic<int> refused{0};

    auto* pool = new ThreadPool(1, 1);
    // Occupy the lone worker, then fill the single queue slot.
    ASSERT_TRUE(pool->submit([open, &ran] {
        open.wait();
        ran.fetch_add(1);
    }));
    while (pool->queueDepth() > 0)
        std::this_thread::yield();
    ASSERT_TRUE(pool->submit([open, &ran] {
        open.wait();
        ran.fetch_add(1);
    }));

    // Producers that must block: the worker is parked on the gate, so
    // the queue cannot drain.
    std::vector<std::thread> producers;
    std::atomic<int> entered{0};
    for (int t = 0; t < 3; ++t)
        producers.emplace_back([&] {
            entered.fetch_add(1);
            if (!pool->submit([&ran] { ran.fetch_add(1); }))
                refused.fetch_add(1);
        });
    while (entered.load() < 3)
        std::this_thread::yield();
    std::this_thread::sleep_for(std::chrono::milliseconds(20));

    // The destructor stops the pool with the gate still closed: the
    // blocked producers must be woken and refused *before* the worker
    // can finish anything.
    std::thread destroyer([pool] { delete pool; });
    for (std::thread& p : producers)
        p.join();
    EXPECT_EQ(refused.load(), 3);

    gate.set_value();
    destroyer.join();
    // Both accepted jobs still ran to completion.
    EXPECT_EQ(ran.load(), 2);
}

// ---------------------------------------------------------------------
// CompileService basics
// ---------------------------------------------------------------------

TEST(Service, CompileBlockMatchesSynthesizer)
{
    CompileServiceOptions options;
    options.numWorkers = 2;
    options.synthesizer = analyticBlockSynthesizer(0.5);
    CompileService service(options);

    const Circuit block = smallFixedBlock();
    const PulseSchedule pulse = service.compileBlock(block);
    const PulseSchedule direct = analyticBlockSynthesizer(0.5)(block);
    ASSERT_EQ(pulse.numChannels(), direct.numChannels());
    for (int c = 0; c < pulse.numChannels(); ++c)
        EXPECT_EQ(pulse.channel(c), direct.channel(c));

    // The served pulse realizes the block unitary (library exactness).
    const DeviceModel device = DeviceModel::gmonClique(2);
    const double fidelity =
        traceFidelity(circuitUnitary(block),
                      evolveUnitary(device, pulse));
    EXPECT_GT(fidelity, 0.999);
}

TEST(Service, SecondRequestHitsCache)
{
    CountingSynth synth;
    CompileServiceOptions options;
    options.numWorkers = 2;
    options.synthesizer = synth.make();
    CompileService service(options);

    const Circuit block = smallFixedBlock();
    service.compileBlock(block);
    service.compileBlock(block);
    EXPECT_EQ(synth.runs.load(), 1);
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.requests, 2u);
    EXPECT_EQ(stats.cacheHits, 1u);
    EXPECT_EQ(stats.synthRuns, 1u);
}

// ---------------------------------------------------------------------
// Single flight
// ---------------------------------------------------------------------

TEST(Service, SingleFlightDedupesConcurrentIdenticalRequests)
{
    CountingSynth synth;
    CompileServiceOptions options;
    options.numWorkers = 4;
    options.synthesizer = synth.make(/*sleep_ms=*/50);
    CompileService service(options);

    const Circuit block = smallFixedBlock();
    constexpr int kRequesters = 16;
    std::vector<CompileService::PulseFuture> futures(kRequesters);
    std::vector<std::thread> threads;
    threads.reserve(kRequesters);
    for (int i = 0; i < kRequesters; ++i)
        threads.emplace_back([&service, &futures, &block, i] {
            futures[i] = service.requestBlock(block);
        });
    for (std::thread& t : threads)
        t.join();
    for (auto& future : futures)
        future.get();

    // N concurrent identical requests trigger exactly one GRAPE run.
    EXPECT_EQ(synth.runs.load(), 1);
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.requests, static_cast<uint64_t>(kRequesters));
    EXPECT_EQ(stats.synthRuns, 1u);
    // Everyone else either coalesced onto the flight or hit the cache.
    EXPECT_EQ(stats.coalesced + stats.cacheHits,
              static_cast<uint64_t>(kRequesters - 1));
}

TEST(Service, PhaseEquivalentSpellingsShareOneSynthesis)
{
    // Z and Rz(pi) realize the same unitary up to global phase, so
    // the content-addressed cache serves one pulse for both
    // spellings: one synthesis, second request is a hit.
    CountingSynth synth;
    CompileServiceOptions options;
    options.numWorkers = 2;
    options.synthesizer = synth.make();
    CompileService service(options);

    Circuit z(1);
    z.z(0);
    Circuit rz(1);
    rz.rz(0, 3.14159265358979323846);
    service.compileBlock(z);
    service.compileBlock(rz);
    EXPECT_EQ(synth.runs.load(), 1);
    EXPECT_EQ(service.stats().cacheHits, 1u);
}

TEST(Service, DistinctBlocksDoNotCoalesce)
{
    CountingSynth synth;
    CompileServiceOptions options;
    options.numWorkers = 4;
    options.synthesizer = synth.make();
    CompileService service(options);

    Circuit a(1);
    a.rx(0, 0.25);
    Circuit b(1);
    b.rx(0, 0.75);
    service.compileBlock(a);
    service.compileBlock(b);
    EXPECT_EQ(synth.runs.load(), 2);
}

// ---------------------------------------------------------------------
// Batch submission
// ---------------------------------------------------------------------

TEST(Service, BatchDedupesSharedBlocksAcrossCircuits)
{
    CountingSynth synth;
    CompileServiceOptions options;
    options.numWorkers = 4;
    options.synthesizer = synth.make();
    CompileService service(options);

    // A p-sweep over one QAOA graph: every depth repeats the same
    // cost/mixer structure, so Fixed blocks are massively shared.
    Rng rng(11);
    const Graph graph = random3Regular(6, rng);
    std::vector<Circuit> sweep;
    for (int p = 1; p <= 4; ++p)
        sweep.push_back(buildQaoaCircuit(graph, p));

    const BatchCompileReport report = service.compileBatch(sweep);
    EXPECT_EQ(report.circuits, 4);
    EXPECT_GT(report.totalBlocks, report.uniqueBlocks);
    // Each unique block synthesized exactly once.
    EXPECT_EQ(report.synthRuns,
              static_cast<uint64_t>(report.uniqueBlocks));
    EXPECT_EQ(synth.runs.load(), report.uniqueBlocks);
    EXPECT_EQ(report.cacheHits, 0u);

    // Warm rerun of the whole batch: no new synthesis, ~100% hit rate.
    const BatchCompileReport warm = service.compileBatch(sweep);
    EXPECT_EQ(warm.synthRuns, 0u);
    EXPECT_EQ(warm.uniqueBlocks, report.uniqueBlocks);
    EXPECT_EQ(warm.cacheHits,
              static_cast<uint64_t>(warm.uniqueBlocks));
    EXPECT_NEAR(warm.hitRate(), 1.0, 1e-12);
    EXPECT_EQ(synth.runs.load(), report.uniqueBlocks);
}

TEST(Service, RepeatedBlocksWithinOneCircuitCompileOnce)
{
    CountingSynth synth;
    CompileServiceOptions options;
    options.numWorkers = 2;
    options.synthesizer = synth.make();
    CompileService service(options);

    const BatchCompileReport report =
        service.precompileCircuit(twoBlockTemplate());
    EXPECT_EQ(report.totalBlocks, 2);
    EXPECT_EQ(report.uniqueBlocks, 1);
    EXPECT_EQ(synth.runs.load(), 1);
}

TEST(Service, EmptyAndFullyParametrizedTemplates)
{
    CountingSynth synth;
    CompileServiceOptions options;
    options.numWorkers = 2;
    options.synthesizer = synth.make();
    CompileService service(options);

    const BatchCompileReport empty =
        service.precompileCircuit(Circuit(3));
    EXPECT_EQ(empty.totalBlocks, 0);
    EXPECT_EQ(empty.uniqueBlocks, 0);

    Circuit all_param(1);
    all_param.rz(0, ParamExpr::theta(0));
    all_param.rx(0, ParamExpr::theta(1));
    const BatchCompileReport none =
        service.precompileCircuit(all_param);
    EXPECT_EQ(none.totalBlocks, 0);
    EXPECT_EQ(synth.runs.load(), 0);
}

// ---------------------------------------------------------------------
// Disk persistence through the service
// ---------------------------------------------------------------------

TEST(Service, WarmDiskCacheSkipsSynthesisAcrossServices)
{
    TempDir dir("qpc_service_disk");
    const Circuit templ = twoBlockTemplate();

    CountingSynth first_synth;
    {
        CompileServiceOptions options;
        options.numWorkers = 2;
        options.synthesizer = first_synth.make();
        options.cache.diskDir = dir.path();
        CompileService service(options);
        service.precompileCircuit(templ);
        EXPECT_EQ(first_synth.runs.load(), 1);
    }

    // A new service over the same directory — a fresh process in the
    // amortization story — needs zero synthesis.
    CountingSynth second_synth;
    CompileServiceOptions options;
    options.numWorkers = 2;
    options.synthesizer = second_synth.make();
    options.cache.diskDir = dir.path();
    CompileService service(options);
    const BatchCompileReport report = service.precompileCircuit(templ);
    EXPECT_EQ(second_synth.runs.load(), 0);
    EXPECT_EQ(report.synthRuns, 0u);
    EXPECT_NEAR(report.hitRate(), 1.0, 1e-12);
    EXPECT_GE(service.cacheStats().diskHits, 1u);
}

// ---------------------------------------------------------------------
// Serving (lookup-and-concatenate warm path)
// ---------------------------------------------------------------------

TEST(Service, ServeStrictIsAllHitsAfterPrecompute)
{
    CompileServiceOptions options;
    options.numWorkers = 2;
    options.lookupDt = 0.5;
    CompileService service(options);

    Rng rng(21);
    const Circuit templ = randomParametrizedCircuit(rng, 3, 3, 4);
    service.precompileCircuit(templ);

    const StrictPartition partition = strictPartition(templ);
    const std::vector<double> theta = rng.angles(templ.numParams());
    const ServedPulse served = service.serveStrict(partition, theta);

    EXPECT_EQ(served.cacheMisses, 0u);
    EXPECT_GT(served.cacheHits, 0u);
    EXPECT_GT(served.pulseNs, 0.0);
    EXPECT_EQ(served.segments.size(),
              static_cast<size_t>(served.cacheHits) +
                  partition.numParamGates());
}

TEST(Service, ServeStrictColdCompilesOnDemand)
{
    CountingSynth synth;
    CompileServiceOptions options;
    options.numWorkers = 2;
    options.synthesizer = synth.make();
    CompileService service(options);

    const Circuit templ = twoBlockTemplate();
    const StrictPartition partition = strictPartition(templ);
    const ServedPulse cold =
        service.serveStrict(partition, {0.1, 0.2});
    EXPECT_EQ(cold.cacheMisses, 1u); // Two identical blocks, one miss.
    EXPECT_EQ(cold.cacheHits, 1u);   // ... the repeat is already warm.
    EXPECT_EQ(synth.runs.load(), 1);
}

// ---------------------------------------------------------------------
// Stats accounting invariants
// ---------------------------------------------------------------------

TEST(Service, ServeLookupCountsOnceInCacheStats)
{
    // The PR 4 bugfix: a cold serve's probe-then-admit used to record
    // two CacheStats misses for one logical lookup, skewing
    // hitRate(). One logical lookup must be exactly one CacheStats
    // lookup — hit or miss.
    CountingSynth synth;
    CompileServiceOptions options;
    options.numWorkers = 2;
    options.synthesizer = synth.make();
    CompileService service(options);

    const Circuit templ = twoBlockTemplate();
    const StrictPartition partition = strictPartition(templ);
    // Cold serve of two identical blocks: probe-miss + probe-hit.
    service.serveStrict(partition, {0.1, 0.2});
    CacheStats cold = service.cacheStats();
    EXPECT_EQ(cold.lookups, 2u);
    EXPECT_EQ(cold.misses, 1u);
    EXPECT_EQ(cold.hits, 1u);
    EXPECT_NEAR(cold.hitRate(), 0.5, 1e-12);

    // Warm serve: two probe-hits, nothing else.
    service.serveStrict(partition, {0.3, 0.4});
    CacheStats warm = service.cacheStats();
    EXPECT_EQ(warm.lookups, 4u);
    EXPECT_EQ(warm.misses, 1u);
    EXPECT_EQ(warm.hits, 3u);
}

TEST(Service, QuantizedServeLookupCountsOnceInCacheStats)
{
    // Same invariant on the quantized bin path.
    CountingSynth synth;
    CompileServiceOptions options;
    options.numWorkers = 2;
    options.synthesizer = synth.make();
    options.quantization.enabled = true;
    options.quantization.bins = 128;
    options.quantization.fidelityBudget = 0.05;
    CompileService service(options);

    Circuit templ(1);
    templ.rz(0, ParamExpr::theta(0));
    const ServingPlan plan =
        service.prepareServing(strictPartition(templ));

    service.serve(plan, {0.300}); // Cold bin: one lookup, one miss.
    EXPECT_EQ(service.cacheStats().lookups, 1u);
    EXPECT_EQ(service.cacheStats().misses, 1u);
    service.serve(plan, {0.3001}); // Same bin, warm: one more lookup.
    EXPECT_EQ(service.cacheStats().lookups, 2u);
    EXPECT_EQ(service.cacheStats().misses, 1u);
    EXPECT_EQ(service.cacheStats().hits, 1u);
}

TEST(Service, WarmServesCountInServiceStats)
{
    // The PR 4 bugfix: serve()'s direct warm-path probes used to
    // bypass ServiceStats entirely, so service-wide hit numbers
    // disagreed with per-serve ones. Every serve lookup is a request.
    CompileServiceOptions options;
    options.numWorkers = 2;
    options.lookupDt = 0.5;
    CompileService service(options);

    const Circuit templ = twoBlockTemplate();
    const StrictPartition partition = strictPartition(templ);
    service.precompileCircuit(templ);
    const ServiceStats before = service.stats();

    const ServedPulse served = service.serveStrict(partition, {0.1, 0.2});
    EXPECT_EQ(served.cacheHits, 2u);
    EXPECT_EQ(served.cacheMisses, 0u);

    const ServiceStats after = service.stats();
    // Four logical requests: two warm Fixed probes plus the two
    // rotations served by per-binding exact synthesis (counted since
    // the fallback-accounting fix — see
    // ExactRotationServesCountInServiceStats).
    EXPECT_EQ(after.requests - before.requests, 4u);
    EXPECT_EQ(after.cacheHits - before.cacheHits, 2u);
    EXPECT_EQ(after.exactServes - before.exactServes, 2u);
}

TEST(Service, BatchReportAccountsCoalescedAdmissions)
{
    // Two racing batches over the same sweep: admissions that join
    // the other batch's in-flight synthesis must show up as
    // `coalesced`, keeping cacheHits + synthRuns + coalesced ==
    // uniqueBlocks — the invariant that used to fail whenever a
    // concurrent batch was in flight.
    CountingSynth synth;
    CompileServiceOptions options;
    options.numWorkers = 4;
    options.synthesizer = synth.make(/*sleep_ms=*/10);
    CompileService service(options);

    Rng rng(11);
    const Graph graph = random3Regular(6, rng);
    std::vector<Circuit> sweep;
    for (int p = 1; p <= 3; ++p)
        sweep.push_back(buildQaoaCircuit(graph, p));

    BatchCompileReport a, b;
    std::thread ta([&] { a = service.compileBatch(sweep); });
    std::thread tb([&] { b = service.compileBatch(sweep); });
    ta.join();
    tb.join();

    EXPECT_EQ(a.cacheHits + a.synthRuns + a.coalesced,
              static_cast<uint64_t>(a.uniqueBlocks));
    EXPECT_EQ(b.cacheHits + b.synthRuns + b.coalesced,
              static_cast<uint64_t>(b.uniqueBlocks));
    // Single flight across the race: each unique block synthesized
    // exactly once service-wide.
    EXPECT_EQ(a.synthRuns + b.synthRuns,
              static_cast<uint64_t>(a.uniqueBlocks));
    EXPECT_EQ(synth.runs.load(), a.uniqueBlocks);
    // With a 10 ms synthesis, the loser of each admission race truly
    // coalesces (it cannot find the pulse cached yet) — this is the
    // regression the `coalesced` field exists for. Both batches
    // admitting the same fingerprints concurrently makes at least one
    // coalesce overwhelmingly likely; tolerate the rare perfect
    // interleave by only requiring consistency above.
    EXPECT_EQ(service.stats().coalesced, a.coalesced + b.coalesced);
}

// ---------------------------------------------------------------------
// Backpressure / admission control
// ---------------------------------------------------------------------

TEST(Service, RejectPolicySurfacesRejectedAdmissions)
{
    // Worker pinned by a gated synthesis, one queue slot: the third
    // distinct request must be refused — invalid future, Rejected
    // outcome, stats().rejected — instead of growing the queue.
    std::promise<void> gate;
    std::shared_future<void> open = gate.get_future().share();
    CompileServiceOptions options;
    options.numWorkers = 1;
    options.maxQueuedJobs = 1;
    options.queueFullPolicy = QueueFullPolicy::Reject;
    BlockSynthesizer inner = analyticBlockSynthesizer(0.5);
    options.synthesizer = [open, inner](const Circuit& block) {
        open.wait();
        return inner(block);
    };
    CompileService service(options);

    Circuit b1(1), b2(1), b3(1);
    b1.rx(0, 0.25);
    b2.rx(0, 0.50);
    b3.rx(0, 0.75);

    AdmitOutcome outcome = AdmitOutcome::CacheHit;
    auto f1 = service.requestBlock(b1, &outcome);
    EXPECT_EQ(outcome, AdmitOutcome::Started);
    // Wait for the worker to dequeue b1 (it blocks on the gate), so
    // b2 deterministically occupies the single queue slot.
    while (service.queueDepth() > 0)
        std::this_thread::yield();
    auto f2 = service.requestBlock(b2, &outcome);
    EXPECT_EQ(outcome, AdmitOutcome::Started);

    auto f3 = service.requestBlock(b3, &outcome);
    EXPECT_EQ(outcome, AdmitOutcome::Rejected);
    EXPECT_FALSE(f3.valid());
    EXPECT_EQ(service.stats().rejected, 1u);

    gate.set_value();
    EXPECT_NE(f1.get(), nullptr);
    EXPECT_NE(f2.get(), nullptr);
    // With the queue drained, the shed block admits cleanly.
    auto f4 = service.requestBlock(b3, &outcome);
    EXPECT_NE(outcome, AdmitOutcome::Rejected);
    EXPECT_NE(f4.get(), nullptr);
    EXPECT_LE(service.peakQueueDepth(), options.maxQueuedJobs);
}

TEST(Service, BackpressureBoundsQueueUnderRacingDrivers)
{
    // 8 drivers hammer one bounded service with distinct blocks: the
    // queue must never exceed maxQueuedJobs (admissions block
    // instead), and every admitted block still resolves.
    CountingSynth synth;
    CompileServiceOptions options;
    options.numWorkers = 2;
    options.maxQueuedJobs = 4;
    options.synthesizer = synth.make();
    CompileService service(options);

    constexpr int kDrivers = 8;
    constexpr int kBlocksPerDriver = 24;
    std::atomic<int> resolved{0};
    std::vector<std::thread> drivers;
    drivers.reserve(kDrivers);
    for (int d = 0; d < kDrivers; ++d)
        drivers.emplace_back([&service, &resolved, d] {
            for (int i = 0; i < kBlocksPerDriver; ++i) {
                Circuit block(1);
                block.rx(0, 0.01 * (d * kBlocksPerDriver + i) + 0.01);
                if (service.compileBlock(block).numChannels() > 0)
                    resolved.fetch_add(1);
            }
        });
    for (std::thread& d : drivers)
        d.join();

    EXPECT_EQ(resolved.load(), kDrivers * kBlocksPerDriver);
    EXPECT_LE(service.peakQueueDepth(), options.maxQueuedJobs);
    EXPECT_EQ(service.stats().rejected, 0u);
    EXPECT_EQ(synth.runs.load(), kDrivers * kBlocksPerDriver);
}

// ---------------------------------------------------------------------
// Quantized parametric serving
// ---------------------------------------------------------------------

TEST(Service, QuantizedServeHitsCacheAcrossBindings)
{
    CountingSynth synth;
    CompileServiceOptions options;
    options.numWorkers = 2;
    options.synthesizer = synth.make();
    options.quantization.enabled = true;
    options.quantization.bins = 128;
    // Generous budget: the test's angles sit mid-bin, where the snap
    // error can approach the grid's worst case of step/4 ~ 0.012.
    options.quantization.fidelityBudget = 0.05;
    CompileService service(options);

    const Circuit templ = twoBlockTemplate();
    const ServingPlan plan =
        service.prepareServing(strictPartition(templ));
    service.precompilePlan(plan);
    const int fixed_runs = synth.runs.load();
    EXPECT_EQ(fixed_runs, 1); // Two identical Fixed blocks.

    // Two bindings in the same bins: the second serve is all hits.
    const ServedPulse cold = service.serve(plan, {0.300, 1.200});
    EXPECT_EQ(cold.quantMisses, 2u);
    EXPECT_EQ(cold.quantHits, 0u);
    const ServedPulse warm = service.serve(plan, {0.3001, 1.2001});
    EXPECT_EQ(warm.quantMisses, 0u);
    EXPECT_EQ(warm.quantHits, 2u);
    EXPECT_EQ(warm.quantFallbacks, 0u);
    EXPECT_EQ(synth.runs.load(), fixed_runs + 2);
    // The served pulses cover every segment either way.
    EXPECT_EQ(warm.segments.size(), cold.segments.size());
    // The advertised per-iteration snap error is within budget.
    EXPECT_LE(warm.quantErrorBound,
              options.quantization.fidelityBudget + 1e-12);
}

TEST(Service, QuantizedPlanOverrideAndExactFallback)
{
    CountingSynth synth;
    CompileServiceOptions options;
    options.numWorkers = 2;
    options.synthesizer = synth.make();
    CompileService service(options); // Quantization off by default.

    const Circuit templ = twoBlockTemplate();
    const StrictPartition partition = strictPartition(templ);

    // Plan-level override flips quantization on for one run...
    ParamQuantization quantization;
    quantization.enabled = true;
    quantization.bins = 64;
    const ServingPlan quant =
        service.prepareServing(partition, quantization);
    service.precompilePlan(quant);
    const ServedPulse served = service.serve(quant, {0.4, 0.9});
    EXPECT_EQ(served.quantHits + served.quantMisses, 2u);

    // ... and a zero budget forces the exact fallback path on any
    // off-grid binding: no bin traffic, analytic lookup instead.
    ParamQuantization zero_budget = quantization;
    zero_budget.fidelityBudget = 0.0;
    const ServingPlan strict_plan =
        service.prepareServing(partition, zero_budget);
    const ServedPulse fallback =
        service.serve(strict_plan, {0.4001, 0.9001});
    EXPECT_EQ(fallback.quantFallbacks, 2u);
    EXPECT_EQ(fallback.quantHits + fallback.quantMisses, 0u);
    EXPECT_EQ(fallback.segments.size(), served.segments.size());
}

TEST(Service, QuantizedSingleFlightOneSynthesisPerTouchedBin)
{
    // The stress case of the quantized cache: many threads serve the
    // same template with adversarially close angles — all inside the
    // same grid bins — and the single-flight admission must collapse
    // the storm to exactly one synthesis per touched bin.
    CountingSynth synth;
    CompileServiceOptions options;
    options.numWorkers = 4;
    options.synthesizer = synth.make(/*sleep_ms=*/2);
    options.quantization.enabled = true;
    options.quantization.bins = 256;
    CompileService service(options);

    const Circuit templ = twoBlockTemplate();
    const ServingPlan plan =
        service.prepareServing(strictPartition(templ));
    service.precompilePlan(plan);
    const int fixed_runs = synth.runs.load();

    constexpr int kThreads = 8;
    constexpr int kServesPerThread = 25;
    const double step = options.quantization.stepRadians();
    // Centers exactly on grid points, so jitter under half a step can
    // never straddle a bin edge.
    const double center0 = 31 * step;
    const double center1 = -86 * step;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    std::atomic<uint64_t> fallbacks{0};
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&service, &plan, &fallbacks, step,
                              center0, center1, t] {
            Rng rng(1000 + t);
            for (int i = 0; i < kServesPerThread; ++i) {
                // Jitter well inside half a bin around two centers:
                // every thread's every serve maps to the same 2 bins.
                const double jitter = 0.2 * step * rng.uniform(-1.0, 1.0);
                const ServedPulse served = service.serve(
                    plan, {center0 + jitter, center1 + jitter});
                fallbacks.fetch_add(served.quantFallbacks);
                ASSERT_EQ(served.segments.size(), 4u);
                for (const PulsePtr& pulse : served.segments)
                    ASSERT_NE(pulse, nullptr);
            }
        });
    for (std::thread& t : threads)
        t.join();

    // Exactly one synthesis per touched bin, no matter the race.
    EXPECT_EQ(synth.runs.load(), fixed_runs + 2);
    EXPECT_EQ(fallbacks.load(), 0u);
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.quantHits + stats.quantMisses,
              static_cast<uint64_t>(2 * kThreads * kServesPerThread));
    EXPECT_EQ(stats.quantFallbacks, 0u);
    // Service-wide synthesis accounting agrees with the synthesizer.
    EXPECT_EQ(stats.synthRuns,
              static_cast<uint64_t>(fixed_runs) + 2u);
}

TEST(Service, PrewarmQuantizedBinsMakesFirstServeWarm)
{
    CountingSynth synth;
    CompileServiceOptions options;
    options.numWorkers = 4;
    options.synthesizer = synth.make();
    options.cache.capacity = 8192;
    options.quantization.enabled = true;
    options.quantization.bins = 64;
    CompileService service(options);

    // Two axes (Rz and Rx) across three rotations: the grid dedupes
    // per (axis, bin), minus the shared identity bin at angle 0.
    Circuit templ(2);
    templ.h(0);
    templ.cx(0, 1);
    templ.rz(1, ParamExpr::theta(0));
    templ.rx(0, ParamExpr::theta(1));
    templ.rz(0, ParamExpr::theta(2));

    const ServingPlan plan =
        service.prepareServing(strictPartition(templ));
    service.precompilePlan(plan);
    const int fixed_runs = synth.runs.load();

    const BatchCompileReport grid =
        service.prewarmQuantizedBins(plan);
    EXPECT_EQ(grid.totalBlocks, 3 * 64);
    // Rz and Rx grids share the identity at bin 0 (same unitary).
    EXPECT_EQ(grid.uniqueBlocks, 2 * 64 - 1);
    EXPECT_EQ(synth.runs.load(), fixed_runs + 2 * 64 - 1);

    // Any binding now serves warm.
    Rng rng(9);
    const ServedPulse served = service.serve(plan, rng.angles(3));
    EXPECT_EQ(served.quantMisses, 0u);
    EXPECT_EQ(served.quantHits, 3u);
    EXPECT_EQ(synth.runs.load(), fixed_runs + 2 * 64 - 1);

    // A disabled plan reports an empty pre-warm.
    const ServingPlan exact = service.prepareServing(
        strictPartition(templ), ParamQuantization{});
    const BatchCompileReport none =
        service.prewarmQuantizedBins(exact);
    EXPECT_EQ(none.totalBlocks, 0);
    EXPECT_EQ(none.synthRuns, 0u);
}

// ---------------------------------------------------------------------
// Driver integration
// ---------------------------------------------------------------------

TEST(Service, PartialCompilerPrecomputeGoesThroughService)
{
    CountingSynth synth;
    CompileServiceOptions options;
    options.numWorkers = 2;
    options.synthesizer = synth.make();
    CompileService service(options);

    Rng rng(5);
    const Circuit templ = randomParametrizedCircuit(rng, 3, 2, 3);
    PartialCompiler compiler(templ);
    const BatchCompileReport report = compiler.precompute(service);
    EXPECT_EQ(report.uniqueBlocks, synth.runs.load());
    EXPECT_GT(report.uniqueBlocks, 0);
    // Second precompute of the same template is free.
    const BatchCompileReport warm = compiler.precompute(service);
    EXPECT_EQ(warm.synthRuns, 0u);
}

TEST(Service, PartialCompilerParametricPrewarm)
{
    CountingSynth synth;
    CompileServiceOptions options;
    options.numWorkers = 2;
    options.synthesizer = synth.make();
    CompileService service(options); // Service default: quantization off.

    CompilerOptions copts;
    copts.quantization.enabled = true;
    copts.quantization.bins = 32;
    // Coarse grid: raise the budget past its step/4 ~ 0.05 worst case.
    copts.quantization.fidelityBudget = 0.1;
    PartialCompiler compiler(twoBlockTemplate(), copts);
    compiler.precompute(service);
    const int fixed_runs = synth.runs.load();

    // Both rz segments share one axis: 2 x 32 grid entries, 32 unique.
    const BatchCompileReport grid =
        compiler.prewarmParametric(service);
    EXPECT_EQ(grid.totalBlocks, 2 * 32);
    EXPECT_EQ(grid.uniqueBlocks, 32);
    EXPECT_EQ(synth.runs.load(), fixed_runs + 32);

    // A plan prepared under the same quantization serves warm.
    const ServingPlan plan = service.prepareServing(
        compiler.strictPartition(), copts.quantization);
    const ServedPulse served = service.serve(plan, {0.55, -1.9});
    EXPECT_EQ(served.quantHits, 2u);
    EXPECT_EQ(served.quantMisses, 0u);
    EXPECT_EQ(synth.runs.load(), fixed_runs + 32);
}

TEST(Service, VqeDriverServesFromWarmCache)
{
    CompileServiceOptions options;
    options.numWorkers = 2;
    options.lookupDt = 0.5;
    CompileService service(options);

    const MoleculeSpec& h2 = moleculeByName("H2");
    const Circuit ansatz = buildUccsdAnsatz(h2);
    const PauliHamiltonian hamiltonian = moleculeHamiltonian(h2);

    VqeRunOptions run;
    run.optimizer.maxIterations = 8;
    run.compileService = &service;
    const VqeResult result = runVqe(ansatz, hamiltonian, run);

    EXPECT_GT(result.iterations, 0);
    EXPECT_GT(result.precompiledBlocks, 0);
    EXPECT_GT(result.servedCacheHits, 0u);
    // Everything was pre-compiled: the hybrid loop never misses.
    EXPECT_EQ(result.servedCacheMisses, 0u);
}

TEST(Service, VqeDriverOwnsServiceFromRunOptions)
{
    // serviceOptions without a compileService: the driver builds a
    // run-owned, resource-bounded service — the knob plumb-through
    // for single-run callers.
    const MoleculeSpec& h2 = moleculeByName("H2");
    const Circuit ansatz = buildUccsdAnsatz(h2);
    const PauliHamiltonian hamiltonian = moleculeHamiltonian(h2);

    VqeRunOptions run;
    run.optimizer.maxIterations = 6;
    CompileServiceOptions service;
    service.numWorkers = 2;
    service.lookupDt = 0.5;
    service.maxQueuedJobs = 8;
    service.cache.capacityBytes = 1 << 20;
    run.serviceOptions = service;
    const VqeResult result = runVqe(ansatz, hamiltonian, run);

    EXPECT_GT(result.iterations, 0);
    EXPECT_GT(result.precompiledBlocks, 0);
    EXPECT_GT(result.servedCacheHits, 0u);
    EXPECT_EQ(result.servedCacheMisses, 0u);
}

TEST(Service, PartialCompilerMakeServicePlumbsKnobs)
{
    CompilerOptions copts;
    copts.quantization.enabled = true;
    copts.quantization.bins = 32;
    copts.quantization.fidelityBudget = 0.1;
    copts.service.numWorkers = 2;
    copts.service.lookupDt = 0.5;
    copts.service.synthesizer = analyticBlockSynthesizer(0.5);
    copts.service.maxQueuedJobs = 16;
    copts.service.cache.capacity = 512;
    copts.service.cache.capacityBytes = 1 << 20;
    PartialCompiler compiler(twoBlockTemplate(), copts);

    auto service = compiler.makeService();
    ASSERT_NE(service, nullptr);
    // The facade's quantization is authoritative for the service.
    EXPECT_TRUE(service->options().quantization.enabled);
    EXPECT_EQ(service->options().quantization.bins, 32);
    EXPECT_EQ(service->options().maxQueuedJobs, 16u);
    EXPECT_EQ(service->options().cache.capacityBytes,
              static_cast<std::size_t>(1 << 20));

    // And the usual precompute/serve cycle works against it.
    compiler.precompute(*service);
    const ServingPlan plan = service->prepareServing(
        compiler.strictPartition(), copts.quantization);
    const ServedPulse served = service->serve(plan, {0.5, -0.7});
    EXPECT_EQ(served.cacheMisses, 0u);
    EXPECT_EQ(served.quantHits + served.quantMisses, 2u);
}

TEST(Service, QaoaDriverRunsQuantized)
{
    CompileServiceOptions options;
    options.numWorkers = 2;
    options.lookupDt = 0.5;
    options.cache.capacity = 8192;
    CompileService service(options);

    Rng rng(17);
    const Graph graph = random3Regular(4, rng);

    // The run-level knob overrides the (disabled) service default.
    QaoaRunOptions run;
    run.p = 1;
    run.optimizer.maxIterations = 40;
    run.compileService = &service;
    ParamQuantization quantization;
    quantization.enabled = true;
    quantization.bins = 512;
    run.quantization = quantization;
    run.prewarmQuantizedBins = true;
    const QaoaResult result = runQaoa(graph, run);

    EXPECT_GT(result.iterations, 0);
    EXPECT_GT(result.quantHits, 0u);
    EXPECT_EQ(result.quantMisses, 0u); // Grid was pre-warmed.
    EXPECT_EQ(result.quantFallbacks, 0u);
    EXPECT_EQ(result.servedCacheMisses, 0u);
    // Optimizing over the snapped angles still finds a decent cut.
    EXPECT_GT(result.approxRatio, 0.5);
}

// ---------------------------------------------------------------------
// Fallback / exact-serve request accounting (regression)
// ---------------------------------------------------------------------

TEST(Service, ExactRotationServesCountInServiceStats)
{
    // Regression: serve()'s per-binding exact path (quantization off,
    // or budget-exceeded fallback) used to synthesize without
    // touching ServiceStats.requests, so hit rates under
    // fallback-heavy workloads divided by a denominator that ignored
    // most of the traffic.
    CompileServiceOptions options;
    options.numWorkers = 2;
    options.lookupDt = 0.5;
    CompileService service(options); // Quantization off.

    const Circuit templ = twoBlockTemplate();
    const StrictPartition partition = strictPartition(templ);
    service.precompileCircuit(templ);
    const ServingPlan plan = service.prepareServing(partition);
    const ServiceStats before = service.stats();

    constexpr int kServes = 3;
    for (int i = 0; i < kServes; ++i) {
        const ServedPulse served =
            service.serve(plan, {0.1 * i, 0.2 * i});
        // Per-serve accounting mirrors the service-wide fix.
        EXPECT_EQ(served.exactServes, 2u);
        EXPECT_EQ(served.cacheHits, 2u);
    }

    const ServiceStats after = service.stats();
    // Each serve: 2 warm Fixed probes + 2 exact rotation serves —
    // all four are logical requests.
    EXPECT_EQ(after.requests - before.requests,
              static_cast<uint64_t>(4 * kServes));
    EXPECT_EQ(after.cacheHits - before.cacheHits,
              static_cast<uint64_t>(2 * kServes));
    EXPECT_EQ(after.exactServes - before.exactServes,
              static_cast<uint64_t>(2 * kServes));

    // Budget-exceeded fallbacks count the same way.
    ParamQuantization zero_budget;
    zero_budget.enabled = true;
    zero_budget.bins = 64;
    zero_budget.fidelityBudget = 0.0;
    const ServingPlan strict_plan =
        service.prepareServing(partition, zero_budget);
    const ServiceStats mid = service.stats();
    const ServedPulse fallback =
        service.serve(strict_plan, {0.4001, 0.9001});
    EXPECT_EQ(fallback.quantFallbacks, 2u);
    EXPECT_EQ(fallback.exactServes, 2u);
    const ServiceStats final_stats = service.stats();
    EXPECT_EQ(final_stats.requests - mid.requests, 4u);
    EXPECT_EQ(final_stats.exactServes - mid.exactServes, 2u);
    EXPECT_EQ(final_stats.quantFallbacks - mid.quantFallbacks, 2u);
    // The stats invariant: every request resolves as a cache hit, a
    // coalesced join, a started synthesis, or an exact serve. With
    // this single-threaded workload nothing coalesces, so hits +
    // synthesis admissions + exact serves add up exactly.
    EXPECT_EQ(final_stats.requests,
              final_stats.cacheHits + final_stats.coalesced +
                  final_stats.synthRuns + final_stats.exactServes);
}

// ---------------------------------------------------------------------
// Bin-table consistency (regression)
// ---------------------------------------------------------------------

TEST(ServiceDeathTest, MismatchedBinTablePanics)
{
    // Regression: serve() used to index the per-axis bin table with
    // the bin computed from ParamQuantization::bins without checking
    // the table's size — a plan whose quantization config disagrees
    // with its tables read out of bounds instead of failing loudly.
    CompileServiceOptions options;
    options.numWorkers = 1;
    options.lookupDt = 0.5;
    options.quantization.enabled = true;
    options.quantization.bins = 64;
    CompileService service(options);

    Circuit templ(1);
    templ.rz(0, ParamExpr::theta(0));
    ServingPlan plan =
        service.prepareServing(strictPartition(templ));
    // Corrupt the plan: double the bin count its tables were built
    // for. Serving must panic on the size mismatch, not read past
    // the 64-entry table with a bin in [0, 128).
    ServingPlanTestPeer::setQuantizationBins(plan, 128);
    EXPECT_DEATH(service.serve(plan, {3.0}),
                 "disagrees with ParamQuantization::bins");
}

// ---------------------------------------------------------------------
// Adaptive grid refinement
// ---------------------------------------------------------------------

/** Adaptive quantization config the refinement tests share. */
ParamQuantization
adaptiveQuantization(int bins, uint64_t visit_threshold,
                     double budget = 0.05)
{
    ParamQuantization quantization;
    quantization.enabled = true;
    quantization.adaptive = true;
    quantization.bins = bins;
    quantization.splitVisitThreshold = visit_threshold;
    quantization.fidelityBudget = budget;
    return quantization;
}

TEST(ServiceDeathTest, RejectsRefineDepthPastTheGridCap)
{
    // A depth knob past AdaptiveAngleGrid::kMaxDepth used to pass
    // validation and panic deep inside a long converging run when the
    // hot lineage finally hit the grid's hard cap; it must be
    // rejected at construction instead.
    CompileServiceOptions options;
    options.quantization = adaptiveQuantization(16, 1);
    options.quantization.maxRefineDepth =
        AdaptiveAngleGrid::kMaxDepth + 1;
    EXPECT_DEATH({ CompileService service(options); },
                 "refine depth");
}

TEST(Service, AdaptiveRefinementServesFinerRepresentatives)
{
    CountingSynth synth;
    CompileServiceOptions options;
    options.numWorkers = 2;
    options.synthesizer = synth.make();
    options.quantization = adaptiveQuantization(32, 4);
    CompileService service(options);

    Circuit templ(1);
    templ.rz(0, ParamExpr::theta(0));
    const ServingPlan plan =
        service.prepareServing(strictPartition(templ));

    // Serve one mid-bin angle until its leaf is hot.
    const double step = options.quantization.stepRadians();
    const double theta = binAngle(5, 32) + 0.3 * step;
    double coarse_bound = 0.0;
    for (int i = 0; i < 4; ++i)
        coarse_bound = service.serve(plan, {theta}).quantErrorBound;
    EXPECT_NEAR(coarse_bound, 0.15 * step, 1e-9);

    // One refinement round: the hot leaf splits, its children are
    // pre-warmed, and the stale coarse pulse is released.
    const RefinementReport round = service.refineQuantizedGrid(plan);
    EXPECT_EQ(round.axesRefined, 1);
    EXPECT_EQ(round.leavesSplit, 1);
    EXPECT_EQ(round.binsPrewarmed, 2);
    EXPECT_EQ(round.synthRuns, 2u);
    EXPECT_EQ(round.staleReleased, 1);
    EXPECT_GT(round.bytesReleased, 0u);

    // The same angle now serves warm from a leaf half as wide: the
    // realized error bound strictly drops.
    const ServedPulse fine = service.serve(plan, {theta});
    EXPECT_EQ(fine.quantHits, 1u);
    EXPECT_EQ(fine.quantMisses, 0u);
    EXPECT_LT(fine.quantErrorBound, coarse_bound);
    EXPECT_NEAR(fine.quantErrorBound, 0.05 * step / 2.0, 1e-9);

    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.quantRefineRounds, 1u);
    EXPECT_EQ(stats.quantSplits, 1u);
    EXPECT_EQ(stats.quantStaleReleased, 1u);
    EXPECT_EQ(stats.quantBytesReleased, round.bytesReleased);

    // Children restart cold on visits: an immediate second round has
    // nothing hot and does no work.
    const RefinementReport idle = service.refineQuantizedGrid(plan);
    EXPECT_EQ(idle.leavesSplit, 0);
    EXPECT_EQ(service.stats().quantRefineRounds, 1u);
}

TEST(Service, AdaptiveCoarseLeavesDedupeAgainstPrewarmedGrid)
{
    // The dedupe guarantee end to end: unsplit adaptive leaves carry
    // the fixed grid's representatives bit-for-bit, so a grid
    // pre-warm (which synthesizes the *fixed* bins) leaves every
    // coarse adaptive serve warm.
    CountingSynth synth;
    CompileServiceOptions options;
    options.numWorkers = 4;
    options.synthesizer = synth.make();
    options.cache.capacity = 8192;
    options.quantization = adaptiveQuantization(64, 8);
    CompileService service(options);

    Circuit templ(1);
    templ.rx(0, ParamExpr::theta(0));
    const ServingPlan plan =
        service.prepareServing(strictPartition(templ));
    const BatchCompileReport grid = service.prewarmQuantizedBins(plan);
    EXPECT_EQ(grid.uniqueBlocks, 64);
    const int warm_runs = synth.runs.load();

    Rng rng(23);
    for (int i = 0; i < 20; ++i) {
        const ServedPulse served = service.serve(plan, {rng.angle()});
        EXPECT_EQ(served.quantMisses, 0u);
        EXPECT_EQ(served.quantHits, 1u);
    }
    EXPECT_EQ(synth.runs.load(), warm_runs);
}

TEST(Service, AdaptiveRefinementRespectsDepthAndLeafCaps)
{
    CompileServiceOptions options;
    options.numWorkers = 2;
    options.lookupDt = 0.5;
    ParamQuantization quantization = adaptiveQuantization(16, 1, 1.0);
    quantization.maxRefineDepth = 1;
    quantization.maxLeavesPerAxis = 17;
    options.quantization = quantization;
    CompileService service(options);

    Circuit templ(1);
    templ.ry(0, ParamExpr::theta(0));
    const ServingPlan plan =
        service.prepareServing(strictPartition(templ));

    const double theta = 0.8;
    service.serve(plan, {theta});
    const RefinementReport first = service.refineQuantizedGrid(plan);
    EXPECT_EQ(first.leavesSplit, 1);

    // The refined child is hot again, but sits at maxRefineDepth —
    // and the axis is at its leaf cap — so nothing further splits.
    service.serve(plan, {theta});
    service.serve(plan, {0.8 + 2.0}); // A different coarse bin, hot...
    service.serve(plan, {0.8 + 2.0});
    const RefinementReport second = service.refineQuantizedGrid(plan);
    EXPECT_EQ(second.leavesSplit, 0);

    const AdaptiveGridStats stats = service.quantizedGridStats(plan);
    EXPECT_EQ(stats.axes, 1);
    EXPECT_EQ(stats.leaves, 17u);
    EXPECT_EQ(stats.maxDepth, 1);
    EXPECT_EQ(stats.splits, 1u);
    // Unsplit leaves still advertise the coarse worst case.
    EXPECT_NEAR(stats.worstCaseBound,
                quantization.stepRadians() / 4.0, 1e-12);
}

TEST(ServiceDeathTest, RejectsVisitDecayOutsideUnitInterval)
{
    CompileServiceOptions options;
    options.quantization = adaptiveQuantization(16, 4);
    options.quantization.visitDecay = 1.5;
    EXPECT_DEATH({ CompileService service(options); },
                 "visit decay");
}

TEST(Service, VisitDecayCoolsAbandonedLeaves)
{
    // An optimizer that wanders away from a region must not leave its
    // old hot leaves compounding toward a split forever. Same serve
    // pattern twice — 7 serves, a refine round, 6 more serves — once
    // with decay and once without: only the undecayed grid still
    // splits on the accumulated (stale) heat.
    const auto splitsAfterPattern = [](double visit_decay) {
        CompileServiceOptions options;
        options.numWorkers = 2;
        ParamQuantization quantization = adaptiveQuantization(32, 8);
        quantization.visitDecay = visit_decay;
        options.quantization = quantization;
        CompileService service(options);

        Circuit templ(1);
        templ.rz(0, ParamExpr::theta(0));
        const ServingPlan plan =
            service.prepareServing(strictPartition(templ));

        const double theta = binAngle(5, 32);
        for (int i = 0; i < 7; ++i) // 7 < threshold 8: not yet hot.
            service.serve(plan, {theta});
        const RefinementReport mid = service.refineQuantizedGrid(plan);
        EXPECT_EQ(mid.leavesSplit, 0);
        for (int i = 0; i < 6; ++i)
            service.serve(plan, {theta});
        return service.refineQuantizedGrid(plan).leavesSplit;
    };

    // Undecayed: 7 + 6 = 13 visits >= 8, the leaf splits.
    EXPECT_EQ(splitsAfterPattern(1.0), 1);
    // Decayed: the refine round cools 7 visits to 1; 1 + 6 = 7 < 8,
    // the leaf stays whole.
    EXPECT_EQ(splitsAfterPattern(0.25), 0);
}

TEST(Service, EpochBumpInvalidatesCachedPulses)
{
    CountingSynth synth;
    CompileServiceOptions options;
    options.numWorkers = 2;
    options.synthesizer = synth.make();
    options.quantization.enabled = true;
    options.quantization.bins = 16;
    CompileService service(options);
    EXPECT_EQ(service.epoch(), CalibrationEpoch{});

    Circuit templ(1);
    templ.rz(0, ParamExpr::theta(0));
    const ServingPlan before =
        service.prepareServing(strictPartition(templ));
    EXPECT_EQ(before.epoch().counter, 0u);
    service.prewarmQuantizedBins(before);
    const int warm_runs = synth.runs.load();
    EXPECT_EQ(warm_runs, 16);

    const CalibrationEpoch bumped = service.bumpEpoch(0xabcdULL);
    EXPECT_EQ(bumped.counter, 1u);
    EXPECT_EQ(bumped.modelHash, 0xabcdULL);
    EXPECT_EQ(service.epoch(), bumped);

    // The pre-bump plan captured its epoch: it keeps serving its own
    // warm pulses, untouched by the bump.
    const ServedPulse old_serve = service.serve(before, {0.8});
    EXPECT_EQ(old_serve.quantHits, 1u);
    EXPECT_EQ(old_serve.quantMisses, 0u);
    EXPECT_EQ(synth.runs.load(), warm_runs);

    // A plan prepared after the bump mints new-epoch fingerprints:
    // nothing synthesized before the bump is reachable through it, so
    // the full grid re-synthesizes — the invalidation the bump is for.
    const ServingPlan after =
        service.prepareServing(strictPartition(templ));
    EXPECT_EQ(after.epoch(), bumped);
    service.prewarmQuantizedBins(after);
    EXPECT_EQ(synth.runs.load(), 2 * warm_runs);

    // Warm within its own epoch thereafter.
    const ServedPulse new_serve = service.serve(after, {0.8});
    EXPECT_EQ(new_serve.quantHits, 1u);
    EXPECT_EQ(synth.runs.load(), 2 * warm_runs);
}

TEST(Service, AdaptiveServeDuringRefinementStress)
{
    // The TSan-lane stress: drivers hammer serve() on a plan while
    // another thread refines it in place. Topology handoff must be
    // race-free and every serve must resolve a complete pulse.
    CountingSynth synth;
    CompileServiceOptions options;
    options.numWorkers = 4;
    options.synthesizer = synth.make();
    options.cache.capacity = 8192;
    options.quantization = adaptiveQuantization(64, 2, 1.0);
    CompileService service(options);

    Circuit templ(1);
    templ.rz(0, ParamExpr::theta(0));
    const ServingPlan plan =
        service.prepareServing(strictPartition(templ));

    constexpr int kThreads = 4;
    constexpr int kServesPerThread = 60;
    std::atomic<uint64_t> served_rotations{0};
    std::atomic<bool> stop{false};
    std::vector<std::thread> drivers;
    drivers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t)
        drivers.emplace_back([&service, &plan, &served_rotations, t] {
            Rng rng(400 + t);
            for (int i = 0; i < kServesPerThread; ++i) {
                // Cluster around a few centers so leaves go hot and
                // refinement races the serves that feed it.
                const double center = 0.9 * (t % 2 ? 1.0 : -1.0);
                const ServedPulse served = service.serve(
                    plan, {center + 0.1 * rng.uniform(-1.0, 1.0)});
                ASSERT_EQ(served.segments.size(), 1u);
                ASSERT_NE(served.segments.front(), nullptr);
                served_rotations.fetch_add(served.quantHits +
                                           served.quantMisses +
                                           served.quantFallbacks);
            }
        });
    std::thread refiner([&service, &plan, &stop] {
        while (!stop.load()) {
            service.refineQuantizedGrid(plan);
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
    });
    for (std::thread& d : drivers)
        d.join();
    stop.store(true);
    refiner.join();
    // The storm may outrun the refiner's first round entirely; one
    // deterministic final round guarantees the hot leaves split so
    // the topology assertions below are meaningful.
    service.refineQuantizedGrid(plan);

    // Every rotation serve resolved through the quantized path.
    EXPECT_EQ(served_rotations.load(),
              static_cast<uint64_t>(kThreads * kServesPerThread));
    const AdaptiveGridStats grid = service.quantizedGridStats(plan);
    EXPECT_EQ(grid.leaves, 64u + grid.splits);
    EXPECT_GT(grid.splits, 0u);
    // The plan still serves correctly after the storm.
    const ServedPulse after = service.serve(plan, {0.9});
    EXPECT_EQ(after.segments.size(), 1u);
}

TEST(Service, VqeDriverAdaptiveRefinesOnConvergence)
{
    // End-to-end: the driver feeds optimizer step norms into
    // refinement rounds, and the final grid serves the optimum with
    // a strictly finer bound than the coarse grid could.
    CompileServiceOptions options;
    options.numWorkers = 2;
    options.lookupDt = 0.5;
    options.cache.capacity = 8192;
    CompileService service(options);

    const Circuit ansatz = buildOptimizedUccsd(moleculeByName("H2"));
    ParamQuantization quantization = adaptiveQuantization(64, 6);
    quantization.refineCooldown = 3;
    quantization.refineStepNorm = 0.5;

    VqeRunOptions run;
    run.optimizer.maxIterations = 200;
    run.compileService = &service;
    run.quantization = quantization;
    const VqeResult result = runVqe(ansatz, h2Hamiltonian(), run);

    EXPECT_GT(result.quantRefineRounds, 0);
    EXPECT_GT(result.quantSplits, 0u);
    EXPECT_EQ(result.quantSplits, service.stats().quantSplits);
    EXPECT_GT(result.quantRefineSynths, 0u);
    EXPECT_GT(result.quantBytesReleased, 0u);
    // The served optimum sits on refined leaves: its realized bound
    // beats the coarse grid's worst case for even a single rotation.
    EXPECT_GT(result.finalQuantErrorBound, 0.0);
    EXPECT_LT(result.finalQuantErrorBound,
              quantization.stepRadians() / 4.0);
    // And the physics stayed honest: the snapped-angle optimum is
    // near the true ground state.
    EXPECT_NEAR(result.energy, result.exactGroundEnergy, 2e-2);
}

} // namespace
