#include <gtest/gtest.h>

#include <cmath>

#include "model/decoherence.h"
#include "qaoa/qaoacircuit.h"
#include "testutil.h"

namespace {

using namespace qpc;
using namespace qpc::testutil;

TEST(Decoherence, ZeroDurationSurvives)
{
    const DecoherenceModel model;
    EXPECT_NEAR(model.successProbability(0.0), 1.0, 1e-12);
}

TEST(Decoherence, MonotoneDecreasingInDuration)
{
    const DecoherenceModel model{1000.0, 2};
    double last = 1.1;
    for (double t : {0.0, 10.0, 100.0, 500.0, 2000.0}) {
        const double p = model.successProbability(t);
        EXPECT_LT(p, last);
        EXPECT_GT(p, 0.0);
        last = p;
    }
}

TEST(Decoherence, ExponentialComposition)
{
    // p(a + b) = p(a) p(b): the memoryless property.
    const DecoherenceModel model{750.0, 3};
    const double a = 42.0, b = 117.0;
    EXPECT_NEAR(model.successProbability(a + b),
                model.successProbability(a) *
                    model.successProbability(b),
                1e-12);
}

TEST(Decoherence, MoreQubitsDecayFaster)
{
    const DecoherenceModel one{1000.0, 1};
    const DecoherenceModel four{1000.0, 4};
    EXPECT_GT(one.successProbability(200.0),
              four.successProbability(200.0));
    EXPECT_NEAR(four.successProbability(200.0),
                std::pow(one.successProbability(200.0), 4.0), 1e-12);
}

TEST(Decoherence, HorizonInvertsSuccess)
{
    const DecoherenceModel model{5000.0, 2};
    const double horizon = model.horizonNs(0.9);
    EXPECT_NEAR(model.successProbability(horizon), 0.9, 1e-9);
}

TEST(Decoherence, AdvantageExceedsOneForShorterPulse)
{
    const DecoherenceModel model{300.0, 1};
    EXPECT_GT(model.advantage(50.0, 150.0), 1.0);
    EXPECT_NEAR(model.advantage(50.0, 150.0),
                std::exp(100.0 / 300.0), 1e-9);
}

TEST(Decoherence, StrategySurvivalOrdering)
{
    // Shorter pulses must always survive better: the ordering of the
    // compilation strategies transfers to success probability.
    const Circuit circuit = buildQaoaCircuit(cliqueGraph(4), 3);
    PartialCompiler compiler(circuit);
    Rng rng(121);
    const std::vector<double> theta = rng.angles(6);

    const DecoherenceModel model{500.0, 4};
    const auto rows = survivalByStrategy(compiler, theta, model);
    ASSERT_EQ(rows.size(), 4u);
    // Gate-based (index 0) survives worst; full GRAPE (3) best.
    EXPECT_LE(rows[0].successProbability,
              rows[1].successProbability + 1e-12);
    EXPECT_LE(rows[2].successProbability,
              rows[3].successProbability + 1e-12);
    EXPECT_LT(rows[0].successProbability,
              rows[3].successProbability);
}

TEST(Decoherence, FeasibilityStory)
{
    // Section 9's point in numbers: at a coherence time where the
    // gate-based H2O-scale pulse (~23 us at T2 = 30 us) is hopeless,
    // a 1.9x pulse speedup moves the experiment from ~46% to ~66%
    // survival — the difference between unusable and usable data.
    const DecoherenceModel model{30000.0, 1};
    const double gate_ns = 23237.0;
    const double grape_ns = 12360.0;
    EXPECT_LT(model.successProbability(gate_ns), 0.5);
    EXPECT_GT(model.successProbability(grape_ns), 0.6);
}

} // namespace
