#include <gtest/gtest.h>

#include <cmath>

#include "linalg/random_unitary.h"
#include "linalg/su2.h"
#include "linalg/weyl.h"

namespace {

using namespace qpc;

const double kPi = 3.14159265358979323846;

CMatrix
cxMatrix4()
{
    CMatrix m(4, 4);
    m(0, 0) = 1;
    m(1, 1) = 1;
    m(2, 3) = 1;
    m(3, 2) = 1;
    return m;
}

CMatrix
swapMatrix4()
{
    CMatrix m(4, 4);
    m(0, 0) = 1;
    m(1, 2) = 1;
    m(2, 1) = 1;
    m(3, 3) = 1;
    return m;
}

TEST(WeylSmoke, Cx)
{
    WeylCoords c = weylCoordinates(cxMatrix4());
    EXPECT_NEAR(c.c1, kPi / 4, 1e-8);
    EXPECT_NEAR(c.c2, 0.0, 1e-8);
    EXPECT_NEAR(c.c3, 0.0, 1e-8);
}

TEST(WeylSmoke, Swap)
{
    WeylCoords c = weylCoordinates(swapMatrix4());
    EXPECT_NEAR(c.c1, kPi / 4, 1e-8);
    EXPECT_NEAR(c.c2, kPi / 4, 1e-8);
    EXPECT_NEAR(std::abs(c.c3), kPi / 4, 1e-8);
}

TEST(WeylSmoke, Identity)
{
    WeylCoords c = weylCoordinates(CMatrix::identity(4));
    EXPECT_NEAR(c.interaction(), 0.0, 1e-8);
}

TEST(WeylSmoke, LocalGatesHaveZeroInteraction)
{
    Rng rng(7);
    for (int i = 0; i < 20; ++i) {
        CMatrix u = kron(haarUnitary(2, rng), haarUnitary(2, rng));
        WeylCoords c = weylCoordinates(u);
        EXPECT_NEAR(c.interaction(), 0.0, 1e-6);
    }
}

TEST(WeylSmoke, RoundTripRandomCanonical)
{
    Rng rng(3);
    for (int i = 0; i < 30; ++i) {
        double c1 = rng.uniform(0.0, kPi / 4);
        double c2 = rng.uniform(0.0, c1);
        double c3 = rng.uniform(0.0, c2);
        CMatrix g = canonicalGate(c1, c2, c3);
        WeylCoords c = weylCoordinates(g);
        EXPECT_NEAR(c.c1, c1, 1e-6);
        EXPECT_NEAR(c.c2, c2, 1e-6);
        EXPECT_NEAR(std::abs(c.c3), c3, 1e-6);
    }
}

TEST(WeylSmoke, DressedCanonicalInvariant)
{
    Rng rng(11);
    for (int i = 0; i < 20; ++i) {
        double c1 = rng.uniform(0.0, kPi / 4);
        double c2 = rng.uniform(0.0, c1);
        double c3 = rng.uniform(0.0, c2);
        CMatrix g = canonicalGate(c1, c2, c3);
        CMatrix dressed =
            kron(haarUnitary(2, rng), haarUnitary(2, rng)) * g *
            kron(haarUnitary(2, rng), haarUnitary(2, rng));
        EXPECT_TRUE(locallyEquivalent(g, dressed, 1e-6));
    }
}

} // namespace
