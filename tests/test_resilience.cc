// The compile-server edge under failure: client deadlines, reconnect
// with session re-establishment, server idle reaping, Busy shedding,
// accept-failure backoff, and the socket-layer regressions (hostile
// ServeOk segment count, stale lastError, TCP_NODELAY). Everything
// here rides the tier-1 lane, so ASan and TSan see every scenario.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "ir/circuit.h"
#include "ir/param.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"

namespace {

using namespace qpc;
using Clock = std::chrono::steady_clock;

/** Unique scratch directory, removed on destruction. */
class TempDir
{
  public:
    explicit TempDir(const std::string& stem)
    {
        path_ = (std::filesystem::temp_directory_path() /
                 (stem + "." + std::to_string(::getpid())))
                    .string();
        std::filesystem::remove_all(path_);
        std::filesystem::create_directories(path_);
    }
    ~TempDir() { std::filesystem::remove_all(path_); }
    const std::string& path() const { return path_; }

  private:
    std::string path_;
};

/** A small variational template: 2 Fixed blocks, 2 rotations. */
Circuit
paramTemplate()
{
    Circuit c(2);
    c.h(0);
    c.cx(0, 1);
    c.rz(1, ParamExpr::theta(0));
    c.h(0);
    c.cx(0, 1);
    c.rz(1, ParamExpr::theta(1));
    return c;
}

CompileServerOptions
baseOptions(const std::string& socket_path)
{
    CompileServerOptions options;
    options.socketPath = socket_path;
    options.service.numWorkers = 2;
    options.service.maxQueuedJobs = 16;
    return options;
}

/** Poll `cond` for up to `budget_ms`; true once it holds. */
template <typename Cond>
bool
eventually(Cond cond, int budget_ms = 5000)
{
    const Clock::time_point deadline =
        Clock::now() + std::chrono::milliseconds(budget_ms);
    while (Clock::now() < deadline) {
        if (cond())
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return cond();
}

/** Raw connected unix socket, bypassing the client library. */
int
rawConnect(const std::string& path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

/**
 * A scripted fake "server": listens on a unix socket, accepts one
 * connection, and for each client frame replies with the next entry
 * of `replies` — an entry may be a deliberately truncated or hostile
 * byte string, or empty to stall (read the request, answer nothing).
 * Exercises the client's deadline and decode hardening without a real
 * CompileServer cooperating in its own sabotage.
 */
class ScriptedPeer
{
  public:
    ScriptedPeer(const std::string& path,
                 std::vector<std::vector<std::uint8_t>> replies)
        : replies_(std::move(replies))
    {
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, path.c_str(),
                     sizeof(addr.sun_path) - 1);
        listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        EXPECT_GE(listenFd_, 0);
        EXPECT_EQ(::bind(listenFd_,
                         reinterpret_cast<const sockaddr*>(&addr),
                         sizeof(addr)),
                  0);
        EXPECT_EQ(::listen(listenFd_, 4), 0);
        thread_ = std::thread([this] { run(); });
    }

    ~ScriptedPeer()
    {
        stop_.store(true);
        ::shutdown(listenFd_, SHUT_RDWR);
        if (connFd_.load() >= 0)
            ::shutdown(connFd_.load(), SHUT_RDWR);
        thread_.join();
        if (connFd_.load() >= 0)
            ::close(connFd_.load());
        ::close(listenFd_);
    }

  private:
    void run()
    {
        connFd_.store(::accept(listenFd_, nullptr, nullptr));
        if (connFd_.load() < 0)
            return;
        for (const std::vector<std::uint8_t>& reply : replies_) {
            // Consume the client's request frame: length prefix, then
            // body. A short read means the client gave up — done.
            std::uint8_t prefix[4];
            if (!readFull(prefix, sizeof(prefix)))
                return;
            std::uint32_t len = 0;
            for (int i = 0; i < 4; ++i)
                len |= static_cast<std::uint32_t>(prefix[i]) << (8 * i);
            std::vector<std::uint8_t> body(len);
            if (len > 0 && !readFull(body.data(), len))
                return;
            if (reply.empty())
                continue; // scripted stall: leave the client hanging
            if (::send(connFd_.load(), reply.data(), reply.size(),
                       MSG_NOSIGNAL) !=
                static_cast<ssize_t>(reply.size()))
                return;
        }
        // Keep the connection open (but silent) until torn down, so
        // the client sees a stall rather than an EOF.
        while (!stop_.load()) {
            std::uint8_t sink[64];
            const ssize_t n = ::recv(connFd_.load(), sink, sizeof(sink), 0);
            if (n <= 0)
                return;
        }
    }

    bool readFull(std::uint8_t* dst, std::size_t n)
    {
        std::size_t got = 0;
        while (got < n) {
            const ssize_t r = ::recv(connFd_.load(), dst + got, n - got, 0);
            if (r <= 0)
                return false;
            got += static_cast<std::size_t>(r);
        }
        return true;
    }

    std::vector<std::vector<std::uint8_t>> replies_;
    int listenFd_ = -1;
    std::atomic<int> connFd_{-1};
    std::atomic<bool> stop_{false};
    std::thread thread_;
};

/** A well-framed wire message (length prefix + payload). */
std::vector<std::uint8_t>
framed(const std::vector<std::uint8_t>& payload)
{
    std::vector<std::uint8_t> out;
    const auto n = static_cast<std::uint32_t>(payload.size());
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<std::uint8_t>(n >> (8 * i)));
    out.insert(out.end(), payload.begin(), payload.end());
    return out;
}

// ---------------------------------------------------------------------
// Tentpole: kill-and-reconnect end to end
// ---------------------------------------------------------------------

TEST(Resilience, ClientRidesThroughServerRestart)
{
    TempDir dir("qpc_reconnect");
    const std::string path = dir.path() + "/qpc.sock";
    auto server = std::make_unique<CompileServer>(baseOptions(path));
    server->start();

    ClientOptions copts;
    copts.deadlineMs = 5000;
    copts.maxRetries = 20;
    copts.backoffBaseMs = 5;
    copts.backoffMaxMs = 50;
    CompileClient client(copts);
    ASSERT_TRUE(client.connectUnix(path));
    ASSERT_TRUE(client.hello("phoenix"));
    const auto prepared = client.prepareServing(paramTemplate());
    ASSERT_TRUE(prepared);
    ASSERT_TRUE(client.serve(prepared->planId, {0.1, 0.2}));

    // Kill the daemon mid-loop and bring up a fresh one on the same
    // path — a fresh process with empty tenant/plan registries.
    server->stop();
    server = std::make_unique<CompileServer>(baseOptions(path));
    server->start();

    // The held plan id must keep working: the client re-Hellos,
    // re-prepares the cached circuit, and remaps the id under the
    // hood.
    const auto served = client.serve(prepared->planId, {0.3, 0.4});
    ASSERT_TRUE(served) << client.lastError();
    EXPECT_GT(served->numSegments, 0u);

    const ClientStats stats = client.clientStats();
    EXPECT_GE(stats.retries, 1u);
    EXPECT_EQ(stats.reconnects, 1u);
    EXPECT_EQ(stats.plansRemapped, 1u);
    EXPECT_GE(stats.reconnectNs.count, 1u);
    // A successful ride-through is a success: no stale error.
    EXPECT_TRUE(client.lastError().empty());
    EXPECT_EQ(client.lastErrorCode(), WireError::None);
}

TEST(Resilience, FailFastClientStaysDeadAcrossRestart)
{
    TempDir dir("qpc_failfast");
    const std::string path = dir.path() + "/qpc.sock";
    auto server = std::make_unique<CompileServer>(baseOptions(path));
    server->start();

    CompileClient client; // defaults: no retries
    ASSERT_TRUE(client.connectUnix(path));
    ASSERT_TRUE(client.hello("mortal"));
    const auto prepared = client.prepareServing(paramTemplate());
    ASSERT_TRUE(prepared);

    server->stop();
    server = std::make_unique<CompileServer>(baseOptions(path));
    server->start();

    // Legacy semantics preserved: without a retry budget the dropped
    // connection fails the call instead of silently reconnecting.
    EXPECT_FALSE(client.serve(prepared->planId, {0.1, 0.2}));
    EXPECT_FALSE(client.connected());
    EXPECT_EQ(client.clientStats().reconnects, 0u);
}

// ---------------------------------------------------------------------
// Tentpole: client deadlines against a stalled peer
// ---------------------------------------------------------------------

TEST(Resilience, DeadlineFailsHelloAgainstSilentPeer)
{
    TempDir dir("qpc_stall");
    const std::string path = dir.path() + "/stall.sock";
    // One scripted stall: read the Hello, never answer.
    ScriptedPeer peer(path, {{}});

    ClientOptions copts;
    copts.deadlineMs = 200;
    CompileClient client(copts);
    ASSERT_TRUE(client.connectUnix(path));

    const Clock::time_point t0 = Clock::now();
    EXPECT_FALSE(client.hello("tenant"));
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            Clock::now() - t0);
    // Must be the deadline, not a hang (nor an instant EOF).
    EXPECT_GE(elapsed.count(), 150);
    EXPECT_LT(elapsed.count(), 3000);
    EXPECT_GE(client.clientStats().timeouts, 1u);
    EXPECT_FALSE(client.connected());
    EXPECT_NE(client.lastError().find("deadline"), std::string::npos)
        << client.lastError();
}

TEST(Resilience, DeadlineCoversWholeFrameAgainstMidReplyStall)
{
    TempDir dir("qpc_trickle");
    const std::string path = dir.path() + "/trickle.sock";
    // Reply with a frame that claims 64 bytes but delivers 8, then
    // stall: a per-chunk timeout would keep resetting; the whole-frame
    // budget must still expire.
    std::vector<std::uint8_t> partial = {64, 0, 0, 0, 1, 2, 3,
                                         4,  5, 6, 7, 8};
    ScriptedPeer peer(path, {partial});

    ClientOptions copts;
    copts.deadlineMs = 200;
    CompileClient client(copts);
    ASSERT_TRUE(client.connectUnix(path));

    const Clock::time_point t0 = Clock::now();
    EXPECT_FALSE(client.hello("tenant"));
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            Clock::now() - t0);
    EXPECT_LT(elapsed.count(), 3000);
    EXPECT_GE(client.clientStats().timeouts, 1u);
}

// ---------------------------------------------------------------------
// Tentpole: server idle timeout reaps half-open peers
// ---------------------------------------------------------------------

TEST(Resilience, IdleTimeoutReapsHalfOpenPeer)
{
    TempDir dir("qpc_idle");
    CompileServerOptions options =
        baseOptions(dir.path() + "/qpc.sock");
    options.idleTimeoutMs = 200;
    CompileServer server(std::move(options));
    server.start();

    // A peer that sends half a length prefix and goes silent: without
    // the idle timeout this pins a session thread + fd forever.
    const int fd = rawConnect(server.options().socketPath);
    ASSERT_GE(fd, 0);
    const std::uint8_t half_prefix[2] = {8, 0};
    ASSERT_EQ(::send(fd, half_prefix, sizeof(half_prefix),
                     MSG_NOSIGNAL),
              2);

    EXPECT_TRUE(eventually([&] {
        return server.statsSnapshot().sessionsReapedIdle >= 1;
    })) << "half-open peer was never reaped";
    // The reaped session released its slot: no leaked live session.
    EXPECT_TRUE(eventually([&] {
        return server.statsSnapshot().connectionsActive == 0;
    }));
    ::close(fd);

    // A quiet-but-healthy rhythm within the timeout still works.
    CompileClient probe;
    ASSERT_TRUE(probe.connectUnix(server.options().socketPath));
    EXPECT_TRUE(probe.hello("prompt-tenant"));

    // stop() must join every thread promptly — a leak here hangs the
    // test (and the TSan lane reports the stuck thread).
    const Clock::time_point t0 = Clock::now();
    server.stop();
    EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(
                  Clock::now() - t0)
                  .count(),
              5000);
}

// ---------------------------------------------------------------------
// Tentpole: overload shedding with Busy
// ---------------------------------------------------------------------

TEST(Resilience, MaxSessionsShedsWithBusyFrame)
{
    TempDir dir("qpc_busy");
    CompileServerOptions options =
        baseOptions(dir.path() + "/qpc.sock");
    options.maxSessions = 1;
    CompileServer server(std::move(options));
    server.start();

    CompileClient occupant;
    ASSERT_TRUE(occupant.connectUnix(server.options().socketPath));
    ASSERT_TRUE(occupant.hello("occupant"));

    // Second connection: shed with a Busy frame, not a silent close.
    CompileClient shed;
    ASSERT_TRUE(shed.connectUnix(server.options().socketPath));
    EXPECT_FALSE(shed.hello("excess"));
    EXPECT_EQ(shed.lastErrorCode(), WireError::Busy)
        << shed.lastError();
    EXPECT_GE(shed.clientStats().busyRejections, 1u);
    EXPECT_GE(server.statsSnapshot().busyRejections, 1u);

    // Capacity freed: a retrying client gets admitted once the
    // occupant hangs up (the accept loop reaps, then admits).
    occupant.close();
    ClientOptions copts;
    copts.maxRetries = 50;
    copts.backoffBaseMs = 5;
    copts.backoffMaxMs = 50;
    CompileClient patient(copts);
    ASSERT_TRUE(patient.connectUnix(server.options().socketPath));
    EXPECT_TRUE(eventually(
        [&] { return patient.hello("patient").has_value(); }))
        << patient.lastError();
}

// ---------------------------------------------------------------------
// Satellite: accept-failure backoff under fd exhaustion
// ---------------------------------------------------------------------

TEST(Resilience, AcceptBackoffUnderFdExhaustion)
{
    TempDir dir("qpc_emfile");
    CompileServer server(baseOptions(dir.path() + "/qpc.sock"));
    server.start();

    // Create the probe's socket while fds are still available; the
    // connect itself needs no further fd on our side.
    const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(probe, 0);

    rlimit saved{};
    ASSERT_EQ(::getrlimit(RLIMIT_NOFILE, &saved), 0);
    // Clamp the table just above the highest fd in use, then plug the
    // remaining holes so the server's accept() gets EMFILE.
    rlimit clamped = saved;
    clamped.rlim_cur = static_cast<rlim_t>(probe + 4);
    ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &clamped), 0);
    std::vector<int> hogs;
    for (int fd = ::open("/dev/null", O_RDONLY); fd >= 0;
         fd = ::open("/dev/null", O_RDONLY))
        hogs.push_back(fd);

    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, server.options().socketPath.c_str(),
                 sizeof(addr.sun_path) - 1);
    ASSERT_EQ(::connect(probe,
                        reinterpret_cast<const sockaddr*>(&addr),
                        sizeof(addr)),
              0);

    // The pending connection keeps the listener readable while every
    // accept() fails: the old code busy-polled here at 100% CPU.
    EXPECT_TRUE(eventually(
        [&] { return server.statsSnapshot().acceptFailures >= 1; }));
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    const std::uint64_t failures =
        server.statsSnapshot().acceptFailures;
    EXPECT_GE(failures, 1u);
    // Exponential backoff bounds the failure rate; a hot spin racks
    // up thousands in 400 ms.
    EXPECT_LE(failures, 100u);

    for (int fd : hogs)
        ::close(fd);
    ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &saved), 0);

    // With fds available again the pending connection is admitted.
    EXPECT_TRUE(eventually(
        [&] { return server.statsSnapshot().connectionsAccepted >= 1; }));
    ::close(probe);

    CompileClient liveness;
    ASSERT_TRUE(liveness.connectUnix(server.options().socketPath));
    EXPECT_TRUE(liveness.hello("after-the-storm"));
}

// ---------------------------------------------------------------------
// Satellite: hostile ServeOk segment count
// ---------------------------------------------------------------------

TEST(Resilience, HostileServeOkSegmentCountRejected)
{
    TempDir dir("qpc_hostile");
    const std::string path = dir.path() + "/hostile.sock";
    // A ServeOk claiming 2^32-1 pulse segments with no payload behind
    // them: trusting the count for reserve() means a multi-GB
    // allocation before the first blob read fails.
    WireWriter w = beginMessage(MsgType::ServeOk);
    w.f64(1.0);  // pulseNs
    w.u64(0);    // cacheHits
    w.u64(0);    // cacheMisses
    w.u64(0);    // quantHits
    w.u64(0);    // quantMisses
    w.u64(0);    // exactServes
    w.f64(0.0);  // quantErrorBound
    w.u32(0xFFFFFFFFu);
    ScriptedPeer peer(path, {framed(w.bytes())});

    ClientOptions copts;
    copts.deadlineMs = 2000;
    CompileClient client(copts);
    ASSERT_TRUE(client.connectUnix(path));
    EXPECT_FALSE(client.serve(7, {0.1}, /*want_pulses=*/true));
    EXPECT_NE(client.lastError().find("segment count"),
              std::string::npos)
        << client.lastError();
}

// ---------------------------------------------------------------------
// Satellite: stale lastError cleared by later success
// ---------------------------------------------------------------------

TEST(Resilience, LastErrorClearedOnLaterSuccess)
{
    TempDir dir("qpc_stale");
    CompileServer server(baseOptions(dir.path() + "/qpc.sock"));
    server.start();

    CompileClient client;
    ASSERT_TRUE(client.connectUnix(server.options().socketPath));
    ASSERT_TRUE(client.hello("tenant"));

    // Provoke a real refusal...
    EXPECT_FALSE(client.serve(999, {0.1, 0.2}));
    EXPECT_EQ(client.lastErrorCode(), WireError::NotFound);
    EXPECT_FALSE(client.lastError().empty());

    // ...then succeed: the stale error must not linger.
    const auto prepared = client.prepareServing(paramTemplate());
    ASSERT_TRUE(prepared);
    EXPECT_TRUE(client.lastError().empty());
    EXPECT_EQ(client.lastErrorCode(), WireError::None);

    EXPECT_TRUE(client.serve(prepared->planId, {0.1, 0.2}));
    EXPECT_TRUE(client.lastError().empty());
    EXPECT_EQ(client.lastErrorCode(), WireError::None);
}

// ---------------------------------------------------------------------
// Satellite: TCP_NODELAY on the TCP path
// ---------------------------------------------------------------------

TEST(Resilience, TcpNoDelaySetOnClientSocket)
{
    TempDir dir("qpc_nodelay");
    CompileServerOptions options =
        baseOptions(dir.path() + "/qpc.sock");
    options.tcpPort = -1; // ephemeral
    CompileServer server(std::move(options));
    server.start();
    ASSERT_GT(server.boundTcpPort(), 0);

    CompileClient client;
    ASSERT_TRUE(client.connectTcp(server.boundTcpPort()));
    int flag = 0;
    socklen_t len = sizeof(flag);
    ASSERT_EQ(::getsockopt(client.fd(), IPPROTO_TCP, TCP_NODELAY,
                           &flag, &len),
              0);
    EXPECT_EQ(flag, 1);
    // And the full request path works over TCP with Nagle off.
    EXPECT_TRUE(client.hello("tcp-tenant"));
}

// ---------------------------------------------------------------------
// Definitive refusals are not retried
// ---------------------------------------------------------------------

TEST(Resilience, DefinitiveRefusalDoesNotBurnRetries)
{
    TempDir dir("qpc_refusal");
    CompileServer server(baseOptions(dir.path() + "/qpc.sock"));
    server.start();

    ClientOptions copts;
    copts.maxRetries = 10;
    copts.backoffBaseMs = 50;
    CompileClient client(copts);
    ASSERT_TRUE(client.connectUnix(server.options().socketPath));
    ASSERT_TRUE(client.hello("tenant"));

    // NotFound is definitive: one round trip, no backoff sleeps.
    const Clock::time_point t0 = Clock::now();
    EXPECT_FALSE(client.serve(12345, {0.1}));
    EXPECT_EQ(client.lastErrorCode(), WireError::NotFound);
    EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(
                  Clock::now() - t0)
                  .count(),
              1000);
    EXPECT_EQ(client.clientStats().retries, 0u);
    // The connection survives a refusal (framing is still in sync).
    EXPECT_TRUE(client.connected());
}

} // namespace
