#include <gtest/gtest.h>

#include <cmath>

#include "sim/statevector.h"
#include "testutil.h"
#include "transpile/durations.h"
#include "transpile/mapping.h"
#include "transpile/passes.h"
#include "transpile/schedule.h"

namespace {

using namespace qpc;
using namespace qpc::testutil;

TEST(Durations, Table1Values)
{
    const GateDurations d = GateDurations::table1();
    GateOp op;
    op.kind = GateKind::Rz;
    EXPECT_NEAR(d.opDuration(op), 0.4, 1e-12);
    op.kind = GateKind::Rx;
    EXPECT_NEAR(d.opDuration(op), 2.5, 1e-12);
    op.kind = GateKind::H;
    EXPECT_NEAR(d.opDuration(op), 1.4, 1e-12);
    op.kind = GateKind::CX;
    op.q1 = 1;
    EXPECT_NEAR(d.opDuration(op), 3.8, 1e-12);
    op.kind = GateKind::SWAP;
    EXPECT_NEAR(d.opDuration(op), 7.4, 1e-12);
}

TEST(Passes, MergeConstantRotations)
{
    Circuit c(1);
    c.rx(0, 0.3);
    c.rx(0, 0.4);
    EXPECT_EQ(mergeRotations(c), 1);
    ASSERT_EQ(c.size(), 1);
    EXPECT_NEAR(c.ops()[0].angle.bind({}), 0.7, 1e-12);
}

TEST(Passes, MergeSymbolicSameIndex)
{
    Circuit c(1);
    c.rz(0, ParamExpr::theta(0, 1.0));
    c.rz(0, ParamExpr::theta(0, 0.5));
    EXPECT_EQ(mergeRotations(c), 1);
    ASSERT_EQ(c.size(), 1);
    EXPECT_NEAR(c.ops()[0].angle.coeff, 1.5, 1e-12);
}

TEST(Passes, NoMergeAcrossDifferentIndices)
{
    Circuit c(1);
    c.rz(0, ParamExpr::theta(0));
    c.rz(0, ParamExpr::theta(1));
    EXPECT_EQ(mergeRotations(c), 0);
    EXPECT_EQ(c.size(), 2);
}

TEST(Passes, RzCommutesThroughCxControl)
{
    Circuit c(2);
    c.rz(0, 0.3);
    c.cx(0, 1);
    c.rz(0, 0.4);
    EXPECT_EQ(mergeRotations(c, true), 1);
    EXPECT_EQ(c.size(), 2);

    Circuit blocked(2);
    blocked.rz(1, 0.3);   // target side: Rz does NOT commute
    blocked.cx(0, 1);
    blocked.rz(1, 0.4);
    EXPECT_EQ(mergeRotations(blocked, true), 0);
}

TEST(Passes, RxCommutesThroughCxTarget)
{
    Circuit c(2);
    c.rx(1, 0.3);
    c.cx(0, 1);
    c.rx(1, 0.4);
    EXPECT_EQ(mergeRotations(c, true), 1);
}

TEST(Passes, CancelSelfInversePairs)
{
    Circuit c(2);
    c.h(0);
    c.h(0);
    c.cx(0, 1);
    c.cx(0, 1);
    c.s(1);
    c.sdg(1);
    EXPECT_EQ(cancelInverses(c), 6);
    EXPECT_EQ(c.size(), 0);
}

TEST(Passes, NoCancelWithInterveningOp)
{
    Circuit c(2);
    c.cx(0, 1);
    c.h(1);
    c.cx(0, 1);
    EXPECT_EQ(cancelInverses(c), 0);
}

TEST(Passes, SwapCancelsEitherOrientation)
{
    Circuit c(2);
    c.swap(0, 1);
    c.swap(1, 0);
    EXPECT_EQ(cancelInverses(c), 2);
}

TEST(Passes, CxOrientationMatters)
{
    Circuit c(2);
    c.cx(0, 1);
    c.cx(1, 0);
    EXPECT_EQ(cancelInverses(c), 0);
}

TEST(Passes, RemoveTrivialOps)
{
    Circuit c(1);
    c.rz(0, 0.0);
    c.add(GateOp{GateKind::I, 0, -1, {}});
    c.rx(0, 0.5);
    EXPECT_EQ(removeTrivialOps(c), 2);
    EXPECT_EQ(c.size(), 1);
}

/** Property: the full pipeline preserves the circuit unitary. */
class OptimizePreservesUnitary : public ::testing::TestWithParam<int>
{
};

TEST_P(OptimizePreservesUnitary, RandomCircuits)
{
    Rng rng(GetParam());
    const int n = 2 + GetParam() % 3;
    Circuit circuit = randomCircuit(rng, n, 40);
    const CMatrix before = circuitUnitary(circuit);
    optimizeCircuit(circuit);
    const CMatrix after = circuitUnitary(circuit);
    EXPECT_TRUE(sameUpToPhase(before, after, 1e-8));
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimizePreservesUnitary,
                         ::testing::Range(0, 12));

TEST(Schedule, SerialOnSameQubit)
{
    Circuit c(1);
    c.h(0);
    c.rx(0, 1.0);
    const double t = criticalPathNs(c, GateDurations::table1());
    EXPECT_NEAR(t, 1.4 + 2.5, 1e-12);
}

TEST(Schedule, ParallelOnDisjointQubits)
{
    Circuit c(2);
    c.h(0);
    c.rx(1, 1.0);
    const double t = criticalPathNs(c, GateDurations::table1());
    EXPECT_NEAR(t, 2.5, 1e-12);
}

TEST(Schedule, TwoQubitGateJoinsTimelines)
{
    Circuit c(2);
    c.h(0);      // ends 1.4
    c.cx(0, 1);  // starts 1.4, ends 5.2
    c.rz(1, 1.0);
    const Schedule s = scheduleAsap(c, GateDurations::table1());
    EXPECT_NEAR(s.items[1].startNs, 1.4, 1e-12);
    EXPECT_NEAR(s.makespanNs, 5.6, 1e-12);
}

TEST(Schedule, CriticalPathBounds)
{
    Rng rng(31);
    const GateDurations d = GateDurations::table1();
    for (int trial = 0; trial < 8; ++trial) {
        const Circuit c = randomCircuit(rng, 4, 30);
        const double critical = criticalPathNs(c, d);
        EXPECT_LE(critical, d.serialDuration(c) + 1e-9);
        double longest_gate = 0.0;
        for (const GateOp& op : c.ops())
            longest_gate = std::max(longest_gate, d.opDuration(op));
        EXPECT_GE(critical, longest_gate - 1e-9);
    }
}

TEST(Schedule, MomentsRespectDependencies)
{
    Circuit c(3);
    c.h(0);
    c.cx(0, 1);
    c.h(2);
    const auto moments = asMoments(c);
    ASSERT_EQ(moments.size(), 2u);
    EXPECT_EQ(moments[0].size(), 2u);   // h(0) and h(2)
    EXPECT_EQ(moments[1].size(), 1u);   // cx
}

TEST(Mapping, TopologyDistances)
{
    const Topology line = Topology::line(5);
    EXPECT_TRUE(line.connected(1, 2));
    EXPECT_FALSE(line.connected(0, 4));
    EXPECT_EQ(line.distance(0, 4), 4);

    const Topology grid = Topology::grid(2, 3);
    EXPECT_EQ(grid.numQubits(), 6);
    EXPECT_TRUE(grid.connected(0, 3));
    EXPECT_EQ(grid.distance(0, 5), 3);

    const Topology k4 = Topology::clique(4);
    EXPECT_EQ(k4.distance(0, 3), 1);
}

TEST(Mapping, RoutedOpsAreAdjacent)
{
    Rng rng(32);
    const Topology line = Topology::line(5);
    const Circuit circuit = randomCircuit(rng, 5, 40);
    const MappingResult mapped = mapToTopology(circuit, line);
    for (const GateOp& op : mapped.circuit.ops()) {
        if (op.arity() == 2) {
            EXPECT_TRUE(line.connected(op.q0, op.q1)) << op.str();
        }
    }
}

TEST(Mapping, PreservesSemanticsUpToLayout)
{
    Rng rng(33);
    const Topology line = Topology::line(4);
    const Circuit circuit = randomCircuit(rng, 4, 25);
    const MappingResult mapped = mapToTopology(circuit, line);

    // U_mapped = P^dag ... with P the permutation sending logical
    // qubit l to physical finalLayout[l]; equivalently applying the
    // mapped circuit and permuting indices must match the original.
    const CMatrix original = circuitUnitary(circuit);
    const CMatrix routed = circuitUnitary(mapped.circuit);

    // routed == perm * original (logical result lands at layout).
    const CMatrix perm = layoutPermutation(mapped.finalLayout);
    EXPECT_TRUE(sameUpToPhase(routed, perm * original, 1e-8));
}

TEST(Mapping, CliqueNeedsNoSwaps)
{
    Rng rng(34);
    const Circuit circuit = randomCircuit(rng, 4, 30);
    const MappingResult mapped =
        mapToTopology(circuit, Topology::clique(4));
    EXPECT_EQ(mapped.swapsInserted, 0);
}

} // namespace
