/**
 * @file
 * Telemetry unit tests: log-bucketed latency histograms (bucket
 * boundaries, concurrent-record exactness, percentile monotonicity,
 * merge), the named-metric registry, Prometheus text rendering, trace
 * spans (nesting, phase capture, multi-thread recording), and the
 * Chrome trace-event JSON dump.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/histogram.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace {

using namespace qpc;

// --------------------------------------------------------------------
// LatencyHistogram bucket math
// --------------------------------------------------------------------

TEST(Histogram, SmallValuesExact)
{
    // Values below 2^5 land in their own unit-wide bucket.
    for (std::uint64_t ns = 0; ns < 32; ++ns) {
        const int idx = LatencyHistogram::bucketIndex(ns);
        EXPECT_EQ(idx, static_cast<int>(ns));
        EXPECT_EQ(LatencyHistogram::bucketLowerNs(idx), ns);
        EXPECT_EQ(LatencyHistogram::bucketUpperNs(idx), ns + 1);
    }
}

TEST(Histogram, BucketBoundsConsistent)
{
    // Property: every probed value falls inside [lower, upper) of its
    // own bucket, and indices are monotone in the value.
    std::vector<std::uint64_t> probes;
    for (int shift = 0; shift < 44; ++shift)
        for (std::uint64_t off : {0ull, 1ull, 3ull})
            probes.push_back((1ull << shift) + off);
    std::sort(probes.begin(), probes.end());
    int prevIdx = -1;
    for (const std::uint64_t ns : probes) {
        const int idx = LatencyHistogram::bucketIndex(ns);
        ASSERT_GE(idx, 0);
        ASSERT_LT(idx, LatencyHistogram::kNumBuckets);
        ASSERT_GE(idx, prevIdx) << "ns=" << ns;
        prevIdx = idx;
        if (idx < LatencyHistogram::kNumBuckets - 1) {
            EXPECT_GE(ns, LatencyHistogram::bucketLowerNs(idx))
                << "ns=" << ns;
            EXPECT_LT(ns, LatencyHistogram::bucketUpperNs(idx))
                << "ns=" << ns;
        }
    }
}

TEST(Histogram, BucketRelativeErrorBounded)
{
    // The log-bucketing promise: bucket width / lower bound <= 1/16
    // for every non-overflow bucket past the exact range.
    for (int idx = 32; idx < LatencyHistogram::kNumBuckets - 1; ++idx) {
        const std::uint64_t lo = LatencyHistogram::bucketLowerNs(idx);
        const std::uint64_t hi = LatencyHistogram::bucketUpperNs(idx);
        ASSERT_LT(lo, hi);
        EXPECT_LE(static_cast<double>(hi - lo) / static_cast<double>(lo),
                  1.0 / 16.0 + 1e-12)
            << "bucket " << idx;
    }
}

TEST(Histogram, OverflowClampsToLastBucket)
{
    const std::uint64_t huge =
        std::numeric_limits<std::uint64_t>::max();
    EXPECT_EQ(LatencyHistogram::bucketIndex(huge),
              LatencyHistogram::kNumBuckets - 1);
    LatencyHistogram h;
    h.record(huge);
    const HistogramSnapshot snap = h.snapshot();
    EXPECT_EQ(snap.count, 1u);
    EXPECT_EQ(snap.maxNs, huge);
    // The percentile walk must not run off the top.
    EXPECT_EQ(snap.percentileNs(100), static_cast<double>(huge));
}

TEST(Histogram, EmptySnapshot)
{
    LatencyHistogram h;
    const HistogramSnapshot snap = h.snapshot();
    EXPECT_EQ(snap.count, 0u);
    EXPECT_EQ(snap.percentileNs(50), 0.0);
    EXPECT_EQ(snap.meanNs(), 0.0);
    EXPECT_TRUE(snap.buckets.empty());
}

TEST(Histogram, PercentilesMonotonicAndClamped)
{
    LatencyHistogram h;
    for (std::uint64_t ns = 1; ns <= 10000; ++ns)
        h.record(ns * 17);
    const HistogramSnapshot snap = h.snapshot();
    double prev = 0.0;
    for (double p = 0; p <= 100.0; p += 0.5) {
        const double v = snap.percentileNs(p);
        EXPECT_GE(v, prev) << "p=" << p;
        EXPECT_GE(v, static_cast<double>(snap.minNs));
        EXPECT_LE(v, static_cast<double>(snap.maxNs));
        prev = v;
    }
    EXPECT_EQ(snap.percentileNs(100), static_cast<double>(snap.maxNs));
    // p50 of a uniform 17..170000 stream should be near the middle,
    // within the 1/16 bucket error.
    EXPECT_NEAR(snap.percentileNs(50), 5000 * 17.0, 5000 * 17.0 / 8);
}

TEST(Histogram, ConcurrentRecordExact)
{
    // N threads record a known multiset; totals must be exact (no
    // lost updates), min/max must be the true extremes.
    LatencyHistogram h;
    constexpr int kThreads = 8;
    constexpr int kPerThread = 20000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&h, t] {
            for (int i = 0; i < kPerThread; ++i)
                h.record(static_cast<std::uint64_t>(t * kPerThread + i));
        });
    }
    for (auto& th : threads)
        th.join();
    const HistogramSnapshot snap = h.snapshot();
    EXPECT_EQ(snap.count,
              static_cast<std::uint64_t>(kThreads) * kPerThread);
    EXPECT_EQ(snap.minNs, 0u);
    EXPECT_EQ(snap.maxNs,
              static_cast<std::uint64_t>(kThreads) * kPerThread - 1);
    std::uint64_t bucketTotal = 0, sum = 0;
    for (const auto& [idx, count] : snap.buckets)
        bucketTotal += count;
    EXPECT_EQ(bucketTotal, snap.count);
    for (int t = 0; t < kThreads; ++t)
        for (int i = 0; i < kPerThread; ++i)
            sum += static_cast<std::uint64_t>(t * kPerThread + i);
    EXPECT_EQ(snap.sumNs, sum);
}

TEST(Histogram, MergeMatchesCombinedRecording)
{
    LatencyHistogram a, b, both;
    for (std::uint64_t ns : {1ull, 40ull, 40ull, 999ull, 123456ull}) {
        a.record(ns);
        both.record(ns);
    }
    for (std::uint64_t ns : {2ull, 40ull, 7777777ull}) {
        b.record(ns);
        both.record(ns);
    }
    HistogramSnapshot merged = a.snapshot();
    merged.merge(b.snapshot());
    EXPECT_EQ(merged, both.snapshot());
}

TEST(Histogram, ResetClears)
{
    LatencyHistogram h;
    h.record(123);
    h.reset();
    EXPECT_EQ(h.snapshot().count, 0u);
    h.record(7);
    const HistogramSnapshot snap = h.snapshot();
    EXPECT_EQ(snap.count, 1u);
    EXPECT_EQ(snap.minNs, 7u);
    EXPECT_EQ(snap.maxNs, 7u);
}

// --------------------------------------------------------------------
// MetricRegistry
// --------------------------------------------------------------------

TEST(Registry, StableReferencesAndValues)
{
    MetricRegistry reg;
    auto& c = reg.counter("qpc_test_total");
    c.inc();
    c.inc(41);
    EXPECT_EQ(reg.counter("qpc_test_total").value(), 42u);
    reg.gauge("qpc_test_gauge").set(2.5);
    EXPECT_EQ(reg.gauge("qpc_test_gauge").value(), 2.5);
    reg.histogram("qpc_test_us").record(1000);
    EXPECT_EQ(reg.histogram("qpc_test_us").count(), 1u);

    const MetricsSnapshot snap = reg.collect();
    ASSERT_EQ(snap.counters.size(), 1u);
    EXPECT_EQ(snap.counters[0].name, "qpc_test_total");
    EXPECT_EQ(snap.counters[0].value, 42u);
    ASSERT_EQ(snap.gauges.size(), 1u);
    ASSERT_EQ(snap.histograms.size(), 1u);
    EXPECT_EQ(snap.histograms[0].histogram.count, 1u);
}

TEST(Registry, LabeledNamesAccepted)
{
    MetricRegistry reg;
    reg.histogram("qpc_x_us{tenant=\"a b\",type=\"Serve\"}").record(1);
    const MetricsSnapshot snap = reg.collect();
    ASSERT_EQ(snap.histograms.size(), 1u);
}

TEST(Registry, MalformedNamePanics)
{
    MetricRegistry reg;
    EXPECT_DEATH(reg.counter("7bad"), "malformed");
    EXPECT_DEATH(reg.counter("bad{unclosed"), "malformed");
    EXPECT_DEATH(reg.counter("bad name"), "malformed");
}

TEST(Registry, PromLabelEscapeNeutralizesHostileValues)
{
    EXPECT_EQ(promLabelEscape("plain"), "plain");
    EXPECT_EQ(promLabelEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(promLabelEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(promLabelEscape("a\nb"), "a\\nb");
    // Braces would make the name-embedded label block unparseable.
    EXPECT_EQ(promLabelEscape("a{}b"), "a__b");
}

// --------------------------------------------------------------------
// Prometheus rendering
// --------------------------------------------------------------------

TEST(Prometheus, GoldenOutput)
{
    MetricsSnapshot snap;
    snap.counters.push_back({"qpc_requests_total", 7});
    snap.gauges.push_back({"qpc_queue_depth", 3.0});
    LatencyHistogram h;
    h.record(10);    // exact bucket: [10, 11) ns
    h.record(10);
    h.record(48000); // ns -> us bucketing below
    snap.histograms.push_back({"qpc_serve_us", h.snapshot()});

    const std::string text = renderPrometheus(snap);
    const std::string expected =
        "# TYPE qpc_requests_total counter\n"
        "qpc_requests_total 7\n"
        "# TYPE qpc_queue_depth gauge\n"
        "qpc_queue_depth 3\n"
        "# TYPE qpc_serve_us histogram\n"
        "qpc_serve_us_bucket{le=\"0.011\"} 2\n"
        "qpc_serve_us_bucket{le=\"49.152\"} 3\n"
        "qpc_serve_us_bucket{le=\"+Inf\"} 3\n"
        "qpc_serve_us_sum 48.02\n"
        "qpc_serve_us_count 3\n";
    EXPECT_EQ(text, expected);
}

TEST(Prometheus, LabeledFamiliesShareOneTypeHeader)
{
    MetricsSnapshot snap;
    snap.counters.push_back({"qpc_t_total{tenant=\"a\"}", 1});
    snap.counters.push_back({"qpc_t_total{tenant=\"b\"}", 2});
    const std::string text = renderPrometheus(snap);
    EXPECT_EQ(text,
              "# TYPE qpc_t_total counter\n"
              "qpc_t_total{tenant=\"a\"} 1\n"
              "qpc_t_total{tenant=\"b\"} 2\n");
}

TEST(Prometheus, MergeAccumulatesCountersAndHistograms)
{
    MetricsSnapshot a, b;
    a.counters.push_back({"qpc_c_total", 1});
    b.counters.push_back({"qpc_c_total", 2});
    b.counters.push_back({"qpc_d_total", 5});
    LatencyHistogram h1, h2;
    h1.record(100);
    h2.record(200);
    a.histograms.push_back({"qpc_h_us", h1.snapshot()});
    b.histograms.push_back({"qpc_h_us", h2.snapshot()});
    a.merge(b);
    ASSERT_EQ(a.counters.size(), 2u);
    EXPECT_EQ(a.counters[0].value, 3u);
    ASSERT_EQ(a.histograms.size(), 1u);
    EXPECT_EQ(a.histograms[0].histogram.count, 2u);
    EXPECT_EQ(a.histograms[0].histogram.maxNs, 200u);
}

// --------------------------------------------------------------------
// Trace spans
// --------------------------------------------------------------------

/** Serialize trace tests: they share the global recorder. */
class Trace : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        clearTrace();
        setTraceEnabled(true);
    }
    void
    TearDown() override
    {
        setTraceEnabled(false);
        clearTrace();
    }
};

TEST_F(Trace, SpanNestingRecordsParentChain)
{
    std::uint64_t outerId = 0, innerParent = 0;
    {
        TraceSpan outer("outer");
        outerId = outer.id();
        EXPECT_TRUE(outer.tracing());
        EXPECT_EQ(currentTraceParent(), outerId);
        {
            TraceSpan inner("inner");
            innerParent = currentTraceParent();
            EXPECT_EQ(innerParent, inner.id());
        }
        EXPECT_EQ(currentTraceParent(), outerId);
    }
    EXPECT_EQ(currentTraceParent(), 0u);

    const std::string json = traceJson();
    EXPECT_NE(json.find("\"name\":\"outer\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"inner\""), std::string::npos);
    // The inner span's parent is the outer span's id.
    const std::string parentRef =
        "\"parent\":" + std::to_string(outerId);
    EXPECT_NE(json.find(parentRef), std::string::npos);
}

TEST_F(Trace, DisabledSpansRecordNothing)
{
    setTraceEnabled(false);
    {
        TraceSpan span("ghost");
        EXPECT_FALSE(span.tracing());
        EXPECT_EQ(span.id(), 0u);
    }
    EXPECT_EQ(traceJson().find("ghost"), std::string::npos);
}

TEST_F(Trace, ArgsAppearEscapedInJson)
{
    {
        TraceSpan span("argspan");
        span.arg("tenant", "quote\"brace");
    }
    const std::string json = traceJson();
    EXPECT_NE(json.find("\"tenant\":\"quote\\\"brace\""),
              std::string::npos);
}

TEST_F(Trace, EightThreadsRecordConcurrently)
{
    // TSan lane coverage: concurrent span recording across rings plus
    // a dump racing the recorders must stay clean; every thread's
    // spans must land.
    constexpr int kThreads = 8;
    constexpr int kSpans = 200;
    std::atomic<int> started{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&started] {
            started.fetch_add(1);
            while (started.load() < kThreads) {
            }
            for (int i = 0; i < kSpans; ++i) {
                TraceSpan outer("mt-outer");
                TraceSpan inner("mt-inner");
            }
        });
    }
    (void)traceJson(); // dump while recorders are live
    for (auto& th : threads)
        th.join();
    const std::string json = traceJson();
    std::size_t count = 0;
    for (std::size_t pos = json.find("mt-inner");
         pos != std::string::npos;
         pos = json.find("mt-inner", pos + 1))
        ++count;
    EXPECT_EQ(count, static_cast<std::size_t>(kThreads) * kSpans);
}

TEST_F(Trace, RecordSpanEventAttachesToGivenParent)
{
    recordSpanEvent("retro", 100, 250, 42);
    const std::string json = traceJson();
    EXPECT_NE(json.find("\"name\":\"retro\""), std::string::npos);
    EXPECT_NE(json.find("\"parent\":42"), std::string::npos);
}

TEST_F(Trace, JsonParsesStructurally)
{
    {
        TraceSpan a("alpha");
        TraceSpan b("beta");
    }
    const std::string json = traceJson();
    // Shape check without a JSON library: object with traceEvents
    // array, balanced braces/brackets.
    ASSERT_FALSE(json.empty());
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
    EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
    std::int64_t braces = 0, brackets = 0;
    bool inString = false;
    for (std::size_t i = 0; i < json.size(); ++i) {
        const char c = json[i];
        if (inString) {
            if (c == '\\')
                ++i;
            else if (c == '"')
                inString = false;
            continue;
        }
        if (c == '"')
            inString = true;
        else if (c == '{')
            ++braces;
        else if (c == '}')
            --braces;
        else if (c == '[')
            ++brackets;
        else if (c == ']')
            --brackets;
    }
    EXPECT_EQ(braces, 0);
    EXPECT_EQ(brackets, 0);
}

// --------------------------------------------------------------------
// Phase capture
// --------------------------------------------------------------------

TEST(PhaseCapture, CollectsSpansIndependentOfGlobalSwitch)
{
    setTraceEnabled(false);
    ScopedPhaseCapture capture;
    {
        TraceSpan a("phase-a");
        TraceSpan b("phase-b");
    }
    {
        TraceSpan a("phase-a");
    }
    const PhaseBreakdown& bd = capture.breakdown();
    ASSERT_EQ(bd.phases().size(), 2u);
    std::uint64_t countA = 0;
    for (const auto& p : bd.phases())
        if (std::string(p.name) == "phase-a")
            countA = p.count;
    EXPECT_EQ(countA, 2u);
    const std::string summary = bd.summary();
    EXPECT_NE(summary.find("phase-a"), std::string::npos);
    EXPECT_NE(summary.find("x2"), std::string::npos);
}

TEST(PhaseCapture, NestsAndRestoresPreviousCollector)
{
    ScopedPhaseCapture outer;
    {
        ScopedPhaseCapture inner;
        {
            TraceSpan s("inner-only");
        }
        EXPECT_EQ(inner.breakdown().phases().size(), 1u);
    }
    {
        TraceSpan s("outer-only");
    }
    ASSERT_EQ(outer.breakdown().phases().size(), 1u);
    EXPECT_EQ(std::string(outer.breakdown().phases()[0].name),
              "outer-only");
}

} // namespace
