#include <gtest/gtest.h>

#include <cmath>

#include "grape/grape.h"
#include "grape/hyper.h"
#include "grape/mintime.h"
#include "linalg/random_unitary.h"
#include "linalg/su2.h"
#include "pulse/evolve.h"
#include "testutil.h"

namespace {

using namespace qpc;
using namespace qpc::testutil;

const double kPi = 3.14159265358979323846;

TEST(Grape, GradientExactWithRegularizers)
{
    DeviceModel device = DeviceModel::gmonLine(1);
    GrapeOptions options;
    options.dt = 0.1;
    options.amplitudeWeight = 1e-3;
    options.slopeWeight = 1e-3;
    options.envelopeWeight = 1e-3;
    const double err =
        grapeGradientCheck(device, hMatrix(), 2.0, options, 25);
    EXPECT_LT(err, 2e-4);
}

TEST(Grape, GradientExactOnQutritDevice)
{
    DeviceModel device = DeviceModel::gmonLine(1, 3);
    GrapeOptions options;
    options.dt = 0.1;
    const double err =
        grapeGradientCheck(device, pauliX(), 3.0, options, 20);
    EXPECT_LT(err, 2e-4);
}

TEST(Grape, FindsXPulseAtPhysicalMinimum)
{
    // Rx(pi) at full charge drive takes pi / (2 * 0.628) = 2.5 ns;
    // GRAPE must succeed just above and fail well below.
    DeviceModel device = DeviceModel::gmonLine(1);
    GrapeOptions options;
    options.dt = 0.05;
    options.maxIterations = 400;
    options.hyper = AdamHyperParams{0.1, 0.999};

    GrapeResult above =
        runGrapeFixedTime(device, pauliX(), 2.8, options);
    EXPECT_TRUE(above.converged) << above.fidelity;

    GrapeResult below =
        runGrapeFixedTime(device, pauliX(), 1.0, options);
    EXPECT_FALSE(below.converged)
        << "converged below the quantum speed limit";
}

TEST(Grape, PulseRespectsAmplitudeBounds)
{
    DeviceModel device = DeviceModel::gmonLine(1);
    GrapeOptions options;
    options.dt = 0.1;
    options.maxIterations = 200;
    const GrapeResult run =
        runGrapeFixedTime(device, hMatrix(), 3.0, options);
    for (int c = 0; c < device.numControls(); ++c) {
        const double bound = device.controls()[c].maxAmp;
        for (double v : run.pulse.channel(c))
            EXPECT_LE(std::abs(v), bound * (1.0 + 1e-9));
    }
}

TEST(Grape, ConvergesOnTwoQubitEntangler)
{
    DeviceModel device = DeviceModel::gmonLine(2);
    GrapeOptions options;
    options.dt = 0.1;
    options.maxIterations = 500;
    options.hyper = AdamHyperParams{0.1, 0.999};
    const GrapeResult run = runGrapeFixedTime(
        device, gateMatrix(GateKind::CX), 8.0, options);
    EXPECT_TRUE(run.converged) << run.fidelity;

    const CMatrix realized = evolveUnitary(device, run.pulse);
    EXPECT_GT(traceFidelity(gateMatrix(GateKind::CX), realized),
              0.999);
}

TEST(Grape, DeterministicUnderSeed)
{
    DeviceModel device = DeviceModel::gmonLine(1);
    GrapeOptions options;
    options.dt = 0.1;
    options.maxIterations = 50;
    const GrapeResult a =
        runGrapeFixedTime(device, hMatrix(), 2.0, options);
    const GrapeResult b =
        runGrapeFixedTime(device, hMatrix(), 2.0, options);
    ASSERT_EQ(a.history.size(), b.history.size());
    for (size_t i = 0; i < a.history.size(); ++i)
        EXPECT_NEAR(a.history[i], b.history[i], 1e-12);
}

TEST(Grape, HistoryImprovesOverall)
{
    DeviceModel device = DeviceModel::gmonLine(1);
    GrapeOptions options;
    options.dt = 0.1;
    options.maxIterations = 150;
    const GrapeResult run =
        runGrapeFixedTime(device, hMatrix(), 3.0, options);
    ASSERT_GE(run.history.size(), 2u);
    EXPECT_GT(run.history.back(), run.history.front());
}

TEST(MinTime, BinarySearchFindsXGateLimit)
{
    DeviceModel device = DeviceModel::gmonLine(1);
    MinTimeOptions options;
    options.grape.dt = 0.1;
    options.grape.maxIterations = 300;
    options.grape.hyper = AdamHyperParams{0.1, 0.999};
    options.lowerBoundNs = 0.5;
    options.upperBoundNs = 6.0;
    options.precisionNs = 0.3;
    const MinTimeResult result =
        grapeMinimalTime(device, pauliX(), options);
    ASSERT_TRUE(result.found);
    // Physical minimum is 2.5 ns; allow the search precision plus
    // discretization slack around it.
    EXPECT_GT(result.minTimeNs, 1.8);
    EXPECT_LT(result.minTimeNs, 3.5);
    EXPECT_GT(result.probes, 2);
}

TEST(MinTime, ScanAgreesWithBinarySearch)
{
    DeviceModel device = DeviceModel::gmonLine(1);
    MinTimeOptions options;
    options.grape.dt = 0.1;
    options.grape.maxIterations = 300;
    options.grape.hyper = AdamHyperParams{0.1, 0.999};
    options.lowerBoundNs = 1.0;
    options.upperBoundNs = 8.0;
    const MinTimeResult scan =
        grapeMinimalTimeScan(device, pauliX(), options, 1.3);
    ASSERT_TRUE(scan.found);
    EXPECT_GT(scan.minTimeNs, 1.8);
    EXPECT_LT(scan.minTimeNs, 4.0);
}

TEST(Hyper, TunedBeatsDetunedOnIterations)
{
    DeviceModel device = DeviceModel::gmonLine(1);
    HyperTuneOptions options;
    options.grape.dt = 0.1;
    options.trialIterations = 150;
    options.learningRates = {0.001, 0.03, 0.1};
    options.decays = {0.999};
    const HyperTuneResult tuned =
        tuneHyperParams(device, hMatrix(), 3.0, options);

    EXPECT_EQ(tuned.trials.size(), 3u);
    // The sluggish 0.001 rate must not win.
    EXPECT_GT(tuned.best.learningRate, 0.001);

    // Run with tuned vs the worst trial's hyperparameters.
    GrapeOptions best_config = options.grape;
    best_config.hyper = tuned.best;
    best_config.maxIterations = 300;
    GrapeOptions worst_config = options.grape;
    worst_config.hyper = AdamHyperParams{0.001, 0.999};
    worst_config.maxIterations = 300;
    const GrapeResult with_best =
        runGrapeFixedTime(device, hMatrix(), 3.0, best_config);
    const GrapeResult with_worst =
        runGrapeFixedTime(device, hMatrix(), 3.0, worst_config);
    EXPECT_TRUE(with_best.converged);
    EXPECT_GT(with_best.fidelity, with_worst.fidelity - 1e-9);
}

TEST(Hyper, RobustAcrossAngleBindings)
{
    // The Figure 4 property at test scale: tune on one binding of a
    // parametrized rotation, verify the tuned rate still converges
    // fast on another binding.
    DeviceModel device = DeviceModel::gmonLine(1);
    HyperTuneOptions options;
    options.grape.dt = 0.1;
    options.trialIterations = 120;
    options.learningRates = {0.003, 0.03, 0.15};
    options.decays = {0.999};
    const HyperTuneResult tuned = tuneHyperParams(
        device, rzMatrix(0.4) * rxMatrix(0.9), 3.0, options);

    GrapeOptions config = options.grape;
    config.hyper = tuned.best;
    config.maxIterations = 200;
    const GrapeResult other = runGrapeFixedTime(
        device, rzMatrix(2.0) * rxMatrix(2.4), 3.0, config);
    EXPECT_TRUE(other.converged) << other.fidelity;
}

TEST(Grape, RegularizedPulseIsSmoother)
{
    DeviceModel device = DeviceModel::gmonLine(1);
    GrapeOptions plain;
    plain.dt = 0.1;
    plain.maxIterations = 250;
    GrapeOptions reg = plain;
    reg.slopeWeight = 5e-3;
    reg.envelopeWeight = 5e-3;

    const GrapeResult a =
        runGrapeFixedTime(device, hMatrix(), 4.0, plain);
    const GrapeResult b =
        runGrapeFixedTime(device, hMatrix(), 4.0, reg);
    EXPECT_TRUE(b.converged);
    EXPECT_LE(b.pulse.roughness(), a.pulse.roughness() + 1e-9);
}

} // namespace
