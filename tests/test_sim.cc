#include <gtest/gtest.h>

#include <cmath>

#include "linalg/random_unitary.h"
#include "linalg/su2.h"
#include "sim/pauli.h"
#include "sim/statevector.h"
#include "testutil.h"

namespace {

using namespace qpc;
using namespace qpc::testutil;

TEST(StateVector, StartsInGroundState)
{
    StateVector sv(3);
    EXPECT_NEAR(sv.probability(0), 1.0, 1e-12);
    EXPECT_NEAR(sv.normSquared(), 1.0, 1e-12);
}

TEST(StateVector, BellState)
{
    StateVector sv(2);
    Circuit c(2);
    c.h(0);
    c.cx(0, 1);
    sv.applyCircuit(c);
    EXPECT_NEAR(sv.probability(0), 0.5, 1e-12);   // |00>
    EXPECT_NEAR(sv.probability(3), 0.5, 1e-12);   // |11>
    EXPECT_NEAR(sv.probability(1), 0.0, 1e-12);
    EXPECT_NEAR(sv.probability(2), 0.0, 1e-12);
}

TEST(StateVector, QubitZeroIsMostSignificant)
{
    StateVector sv(2);
    Circuit c(2);
    c.x(0);
    sv.applyCircuit(c);
    EXPECT_NEAR(sv.probability(2), 1.0, 1e-12);   // |10>
}

TEST(StateVector, MatchesKronOnTwoQubits)
{
    Rng rng(51);
    const CMatrix a = haarUnitary(2, rng);
    const CMatrix b = haarUnitary(2, rng);
    StateVector sv(2);
    sv.applyMatrix1(a, 0);
    sv.applyMatrix1(b, 1);
    const std::vector<Complex> direct =
        kron(a, b).apply({1.0, 0.0, 0.0, 0.0});
    for (int i = 0; i < 4; ++i)
        EXPECT_NEAR(std::abs(sv.amplitudes()[i] - direct[i]), 0.0,
                    1e-10);
}

TEST(StateVector, TwoQubitMatrixOnNonAdjacentQubits)
{
    Rng rng(52);
    const CMatrix u = haarUnitary(4, rng);
    // Apply on (q0, q2) of 3 qubits; compare against the explicit
    // embedding built from basis columns.
    StateVector sv(3);
    Circuit prep = randomCircuit(rng, 3, 10);
    sv.applyCircuit(prep);
    std::vector<Complex> before = sv.amplitudes();
    sv.applyMatrix2(u, 0, 2);

    // Manual embedding: index bits (b0 b1 b2), matrix indexes
    // (b0 b2).
    std::vector<Complex> expect(8, Complex{0.0, 0.0});
    for (int i = 0; i < 8; ++i) {
        const int b0 = (i >> 2) & 1, b1 = (i >> 1) & 1, b2 = i & 1;
        const int row = 2 * b0 + b2;
        for (int c0 = 0; c0 < 2; ++c0) {
            for (int c2 = 0; c2 < 2; ++c2) {
                const int col = 2 * c0 + c2;
                const int j = (c0 << 2) | (b1 << 1) | c2;
                expect[i] += u(row, col) * before[j];
            }
        }
    }
    for (int i = 0; i < 8; ++i)
        EXPECT_NEAR(std::abs(sv.amplitudes()[i] - expect[i]), 0.0,
                    1e-10);
}

TEST(StateVector, UnitaryPreservesNorm)
{
    Rng rng(53);
    StateVector sv(4);
    sv.applyCircuit(randomCircuit(rng, 4, 50));
    EXPECT_NEAR(sv.normSquared(), 1.0, 1e-9);
}

TEST(CircuitUnitary, MatchesGateProduct)
{
    Circuit c(2);
    c.h(0);
    c.cx(0, 1);
    const CMatrix u = circuitUnitary(c);
    const CMatrix manual =
        gateMatrix(GateKind::CX) * kron(hMatrix(), pauliI());
    EXPECT_TRUE(u.approxEqual(manual, 1e-10));
}

TEST(CircuitUnitary, IsUnitaryOnRandomCircuits)
{
    Rng rng(54);
    for (int trial = 0; trial < 5; ++trial) {
        const Circuit c = randomCircuit(rng, 3, 30);
        EXPECT_TRUE(circuitUnitary(c).isUnitary(1e-9));
    }
}

TEST(Pauli, ExpectationOnBasisStates)
{
    PauliHamiltonian h(2);
    h.add(1.0, "ZI");
    h.add(0.5, "IZ");

    StateVector zero(2);
    EXPECT_NEAR(h.expectation(zero), 1.5, 1e-12);

    StateVector sv(2);
    Circuit c(2);
    c.x(0);
    sv.applyCircuit(c);
    EXPECT_NEAR(h.expectation(sv), -0.5, 1e-12);
}

TEST(Pauli, XExpectationOnPlusState)
{
    PauliHamiltonian h(1);
    h.add(2.0, "X");
    StateVector sv(1);
    Circuit c(1);
    c.h(0);
    sv.applyCircuit(c);
    EXPECT_NEAR(h.expectation(sv), 2.0, 1e-12);
}

TEST(Pauli, YStringPhases)
{
    // <0|Y|0> = 0; on (|0> + i|1>)/sqrt(2) (an Ry-rotated state),
    // <Y> = 1.
    PauliHamiltonian h(1);
    h.add(1.0, "Y");
    StateVector sv(1);
    sv.applyMatrix1(rxMatrix(-3.14159265358979323846 / 2.0), 0);
    EXPECT_NEAR(h.expectation(sv), 1.0, 1e-9);
}

TEST(Pauli, MatrixAgreesWithExpectation)
{
    Rng rng(55);
    PauliHamiltonian h(3);
    h.add(0.7, "XYZ");
    h.add(-0.3, "ZZI");
    h.add(0.2, "IXI");

    StateVector sv(3);
    sv.applyCircuit(randomCircuit(rng, 3, 20));
    const double direct = h.expectation(sv);

    const CMatrix m = h.toMatrix();
    const std::vector<Complex> hv = m.apply(sv.amplitudes());
    Complex acc = 0.0;
    for (int i = 0; i < 8; ++i)
        acc += std::conj(sv.amplitudes()[i]) * hv[i];
    EXPECT_NEAR(direct, acc.real(), 1e-9);
}

TEST(Pauli, GroundStateOfMinusZ)
{
    PauliHamiltonian h(1);
    h.add(-1.0, "Z");
    EXPECT_NEAR(h.groundStateEnergy(), -1.0, 1e-10);
}

TEST(Pauli, GroundStateOfTransverseIsing)
{
    // H = -Z0 Z1 - 0.5 (X0 + X1): ground energy
    // -sqrt(1 + 0.5^2) - ... known small case; just verify it is
    // below the classical minimum -1 and expectation bounds hold.
    PauliHamiltonian h(2);
    h.add(-1.0, "ZZ");
    h.add(-0.5, "XI");
    h.add(-0.5, "IX");
    const double e0 = h.groundStateEnergy();
    EXPECT_LT(e0, -1.0);
    EXPECT_GT(e0, -2.1);
}

} // namespace
