/**
 * Property tests for the SoA kernels layer: randomized equivalence
 * against scalar references (<= 1e-12 elementwise, including
 * non-multiple-of-vector-width and size-1 edges), and bit-identity
 * between every dispatching kernel and its `...Scalar` mirror — the
 * contract that lets scalar CI lanes stand in numerically for the
 * QPC_NATIVE production build.
 */

#include <gtest/gtest.h>

#include <complex>
#include <vector>

#include "common/rng.h"
#include "linalg/kernels.h"
#include "linalg/matrix.h"
#include "linalg/random_unitary.h"

namespace {

using namespace qpc;

CMatrix
randomMatrix(int rows, int cols, Rng& rng)
{
    CMatrix m(rows, cols);
    for (int r = 0; r < rows; ++r)
        for (int c = 0; c < cols; ++c)
            m(r, c) = Complex{rng.normal(), rng.normal()};
    return m;
}

std::vector<Complex>
randomVector(int n, Rng& rng)
{
    std::vector<Complex> v(n);
    for (auto& x : v)
        x = Complex{rng.normal(), rng.normal()};
    return v;
}

// Sizes that exercise the vector body, the scalar tail, and the
// degenerate single-element case.
const int kEdgeSizes[] = {1, 2, 3, 4, 5, 7, 8, 13, 16, 33};

TEST(Kernels, BackendNameMatchesDispatch)
{
    if (kernels::simdEnabled())
        EXPECT_STREQ(kernels::backendName(), "avx2");
    else
        EXPECT_STREQ(kernels::backendName(), "scalar");
}

TEST(Kernels, PackUnpackRoundTrips)
{
    Rng rng(11);
    for (int rows : {1, 3, 8}) {
        for (int cols : {1, 5, 8}) {
            const CMatrix m = randomMatrix(rows, cols, rng);
            kernels::SoaMatrix s;
            s.pack(m);
            CMatrix back(1, 1);
            s.unpack(back);
            EXPECT_EQ(back.rows(), rows);
            EXPECT_EQ(back.cols(), cols);
            EXPECT_EQ(m.maxAbsDiff(back), 0.0);
        }
    }
}

TEST(Kernels, PackDaggerIsConjugateTranspose)
{
    Rng rng(12);
    const CMatrix m = randomMatrix(5, 7, rng);
    kernels::SoaMatrix s;
    s.packDagger(m);
    CMatrix back(1, 1);
    s.unpack(back);
    EXPECT_EQ(back.maxAbsDiff(m.dagger()), 0.0);
}

TEST(Kernels, GemmMatchesAosReferenceOverRandomShapes)
{
    Rng rng(21);
    for (int n : {1, 3, 8, 16}) {
        for (int k : {1, 5, 16}) {
            for (int m : {1, 7, 16}) {
                const CMatrix a = randomMatrix(n, k, rng);
                const CMatrix b = randomMatrix(k, m, rng);
                CMatrix want(n, m);
                kernels::gemmAosReference(want, a, b);
                CMatrix got(n, m);
                kernels::gemmInto(got, a, b);
                EXPECT_LE(want.maxAbsDiff(got), 1e-12)
                    << n << "x" << k << "x" << m;
            }
        }
    }
}

TEST(Kernels, GemmDispatchBitIdenticalToScalarMirror)
{
    Rng rng(22);
    for (int m : kEdgeSizes) {
        kernels::SoaMatrix a, b;
        a.pack(randomMatrix(5, 9, rng));
        b.pack(randomMatrix(9, m, rng));
        kernels::SoaMatrix c1(5, m), c2(5, m);
        kernels::gemm(c1, a, b);
        kernels::gemmScalar(c2, a, b);
        for (int i = 0; i < 5 * m; ++i) {
            EXPECT_EQ(c1.re()[i], c2.re()[i]) << "re " << i;
            EXPECT_EQ(c1.im()[i], c2.im()[i]) << "im " << i;
        }
    }
}

TEST(Kernels, GemvMatchesApplyAndScalarMirror)
{
    Rng rng(23);
    for (int m : kEdgeSizes) {
        const CMatrix a = randomMatrix(4, m, rng);
        const std::vector<Complex> x = randomVector(m, rng);

        kernels::SoaMatrix sa;
        sa.pack(a);
        std::vector<double> xre(m), xim(m);
        for (int i = 0; i < m; ++i) {
            xre[i] = x[i].real();
            xim[i] = x[i].imag();
        }
        std::vector<double> yre(4), yim(4), sre(4), sim(4);
        kernels::gemv(yre.data(), yim.data(), sa, xre.data(),
                      xim.data());
        kernels::gemvScalar(sre.data(), sim.data(), sa, xre.data(),
                            xim.data());

        const std::vector<Complex> want = a.apply(x);
        for (int i = 0; i < 4; ++i) {
            EXPECT_LE(std::abs(Complex{yre[i], yim[i]} - want[i]),
                      1e-12);
            EXPECT_EQ(yre[i], sre[i]);
            EXPECT_EQ(yim[i], sim[i]);
        }
    }
}

TEST(Kernels, AxpyMatchesComplexReferenceAndScalarMirror)
{
    Rng rng(24);
    for (int n : kEdgeSizes) {
        const Complex alpha{rng.normal(), rng.normal()};
        const std::vector<Complex> x = randomVector(n, rng);
        const std::vector<Complex> y = randomVector(n, rng);

        std::vector<double> xre(n), xim(n), y1re(n), y1im(n), y2re(n),
            y2im(n);
        for (int i = 0; i < n; ++i) {
            xre[i] = x[i].real();
            xim[i] = x[i].imag();
            y1re[i] = y2re[i] = y[i].real();
            y1im[i] = y2im[i] = y[i].imag();
        }
        kernels::axpy(alpha, xre.data(), xim.data(), y1re.data(),
                      y1im.data(), n);
        kernels::axpyScalar(alpha, xre.data(), xim.data(), y2re.data(),
                            y2im.data(), n);
        for (int i = 0; i < n; ++i) {
            const Complex want = y[i] + alpha * x[i];
            EXPECT_LE(std::abs(Complex{y1re[i], y1im[i]} - want),
                      1e-12);
            EXPECT_EQ(y1re[i], y2re[i]);
            EXPECT_EQ(y1im[i], y2im[i]);
        }
    }
}

TEST(Kernels, PlanarDotsMatchComplexReferenceAndScalarMirror)
{
    Rng rng(25);
    for (int n : kEdgeSizes) {
        const std::vector<Complex> x = randomVector(n, rng);
        const std::vector<Complex> y = randomVector(n, rng);
        std::vector<double> xre(n), xim(n), yre(n), yim(n);
        for (int i = 0; i < n; ++i) {
            xre[i] = x[i].real();
            xim[i] = x[i].imag();
            yre[i] = y[i].real();
            yim[i] = y[i].imag();
        }
        Complex want_c{0.0, 0.0}, want_u{0.0, 0.0};
        for (int i = 0; i < n; ++i) {
            want_c += std::conj(x[i]) * y[i];
            want_u += x[i] * y[i];
        }
        const Complex dc = kernels::dotc(xre.data(), xim.data(),
                                         yre.data(), yim.data(), n);
        const Complex du = kernels::dotu(xre.data(), xim.data(),
                                         yre.data(), yim.data(), n);
        EXPECT_LE(std::abs(dc - want_c), 1e-12 * (1.0 + n));
        EXPECT_LE(std::abs(du - want_u), 1e-12 * (1.0 + n));
        EXPECT_EQ(dc, kernels::dotcScalar(xre.data(), xim.data(),
                                          yre.data(), yim.data(), n));
        EXPECT_EQ(du, kernels::dotuScalar(xre.data(), xim.data(),
                                          yre.data(), yim.data(), n));
    }
}

TEST(Kernels, InterleavedDotsMatchComplexReferenceAndScalarMirror)
{
    Rng rng(26);
    for (int n : kEdgeSizes) {
        const std::vector<Complex> x = randomVector(n, rng);
        const std::vector<Complex> y = randomVector(n, rng);
        Complex want_c{0.0, 0.0}, want_u{0.0, 0.0};
        for (int i = 0; i < n; ++i) {
            want_c += std::conj(x[i]) * y[i];
            want_u += x[i] * y[i];
        }
        const Complex dc =
            kernels::dotcInterleaved(x.data(), y.data(), n);
        const Complex du =
            kernels::dotuInterleaved(x.data(), y.data(), n);
        EXPECT_LE(std::abs(dc - want_c), 1e-12 * (1.0 + n));
        EXPECT_LE(std::abs(du - want_u), 1e-12 * (1.0 + n));
        EXPECT_EQ(dc, kernels::dotcInterleavedScalar(x.data(),
                                                     y.data(), n));
        EXPECT_EQ(du, kernels::dotuInterleavedScalar(x.data(),
                                                     y.data(), n));
    }
}

TEST(Kernels, ScaleColumnsMatchesReferenceAndScalarMirror)
{
    Rng rng(27);
    for (int cols : kEdgeSizes) {
        const CMatrix m = randomMatrix(3, cols, rng);
        const std::vector<Complex> f = randomVector(cols, rng);

        kernels::SoaMatrix s1, s2;
        s1.pack(m);
        s2.pack(m);
        kernels::scaleColumns(s1, f.data());
        kernels::scaleColumnsScalar(s2, f.data());

        for (int r = 0; r < 3; ++r) {
            for (int c = 0; c < cols; ++c) {
                const int i = r * cols + c;
                const Complex want = m(r, c) * f[c];
                EXPECT_LE(std::abs(Complex{s1.re()[i], s1.im()[i]} -
                                   want),
                          1e-12);
                EXPECT_EQ(s1.re()[i], s2.re()[i]);
                EXPECT_EQ(s1.im()[i], s2.im()[i]);
            }
        }
    }
}

/** The pre-kernels applyMatrix1 loop, kept as the test oracle. */
void
applyGate1Oracle(std::vector<Complex>& amps, size_t stride,
                 const CMatrix& u)
{
    for (size_t base = 0; base < amps.size(); ++base) {
        if (base & stride)
            continue;
        const Complex a0 = amps[base];
        const Complex a1 = amps[base | stride];
        amps[base] = u(0, 0) * a0 + u(0, 1) * a1;
        amps[base | stride] = u(1, 0) * a0 + u(1, 1) * a1;
    }
}

TEST(Kernels, ApplyGate1MatchesOracleAtEveryStride)
{
    Rng rng(28);
    const int qubits = 5; // dim 32: strides 1, 2, 4, 8, 16.
    const size_t dim = size_t{1} << qubits;
    for (int q = 0; q < qubits; ++q) {
        const size_t stride = size_t{1} << (qubits - 1 - q);
        const CMatrix u = haarUnitary(2, rng);
        const Complex uflat[4] = {u(0, 0), u(0, 1), u(1, 0), u(1, 1)};
        std::vector<Complex> state = randomState(dim, rng);

        std::vector<Complex> want = state;
        applyGate1Oracle(want, stride, u);
        std::vector<Complex> scalar = state;
        kernels::applyGate1Scalar(scalar.data(), dim, stride, uflat);
        kernels::applyGate1(state.data(), dim, stride, uflat);

        for (size_t i = 0; i < dim; ++i) {
            EXPECT_LE(std::abs(state[i] - want[i]), 1e-12)
                << "stride " << stride << " amp " << i;
            // Dispatch is bit-identical to the scalar mirror.
            EXPECT_EQ(state[i].real(), scalar[i].real());
            EXPECT_EQ(state[i].imag(), scalar[i].imag());
        }
    }
}

/** The pre-kernels applyMatrix2 loop, kept as the test oracle. */
void
applyGate2Oracle(std::vector<Complex>& amps, size_t s0, size_t s1,
                 const CMatrix& u)
{
    for (size_t base = 0; base < amps.size(); ++base) {
        if ((base & s0) || (base & s1))
            continue;
        Complex in[4] = {amps[base], amps[base | s1], amps[base | s0],
                         amps[base | s0 | s1]};
        Complex out[4];
        for (int r = 0; r < 4; ++r)
            out[r] = u(r, 0) * in[0] + u(r, 1) * in[1] +
                     u(r, 2) * in[2] + u(r, 3) * in[3];
        amps[base] = out[0];
        amps[base | s1] = out[1];
        amps[base | s0] = out[2];
        amps[base | s0 | s1] = out[3];
    }
}

TEST(Kernels, ApplyGate2MatchesOracleAtEveryQubitPair)
{
    Rng rng(29);
    const int qubits = 5;
    const size_t dim = size_t{1} << qubits;
    for (int q0 = 0; q0 < qubits; ++q0) {
        for (int q1 = 0; q1 < qubits; ++q1) {
            if (q0 == q1)
                continue;
            const size_t s0 = size_t{1} << (qubits - 1 - q0);
            const size_t s1 = size_t{1} << (qubits - 1 - q1);
            const CMatrix u = haarUnitary(4, rng);
            Complex uflat[16];
            for (int r = 0; r < 4; ++r)
                for (int c = 0; c < 4; ++c)
                    uflat[4 * r + c] = u(r, c);
            std::vector<Complex> state = randomState(dim, rng);

            std::vector<Complex> want = state;
            applyGate2Oracle(want, s0, s1, u);
            std::vector<Complex> scalar = state;
            kernels::applyGate2Scalar(scalar.data(), dim, s0, s1,
                                      uflat);
            kernels::applyGate2(state.data(), dim, s0, s1, uflat);

            for (size_t i = 0; i < dim; ++i) {
                EXPECT_LE(std::abs(state[i] - want[i]), 1e-12)
                    << "q0=" << q0 << " q1=" << q1 << " amp " << i;
                EXPECT_EQ(state[i].real(), scalar[i].real());
                EXPECT_EQ(state[i].imag(), scalar[i].imag());
            }
        }
    }
}

TEST(Kernels, ScaledDaggerSandwichMatchesNaiveProduct)
{
    Rng rng(30);
    for (int n : {1, 2, 5, 8, 16}) {
        const CMatrix v = haarUnitary(n, rng);
        const std::vector<Complex> f = randomVector(n, rng);

        CMatrix scaled = v;
        for (int c = 0; c < n; ++c)
            for (int r = 0; r < n; ++r)
                scaled(r, c) *= f[c];
        CMatrix want(n, n);
        kernels::gemmAosReference(want, scaled, v.dagger());

        const CMatrix got = kernels::scaledDaggerSandwich(v, f);
        EXPECT_LE(want.maxAbsDiff(got), 1e-12) << "dim " << n;
    }
}

TEST(Kernels, MultiplyIntoStillMatchesReferenceAboveThreshold)
{
    // The consumer-facing dispatch: big multiplies route to the SoA
    // kernel, and must agree with the AoS loop they replaced.
    Rng rng(31);
    const CMatrix a = randomMatrix(16, 16, rng);
    const CMatrix b = randomMatrix(16, 16, rng);
    ASSERT_TRUE(kernels::gemmWorthSoa(16, 16, 16));
    CMatrix want(16, 16);
    kernels::gemmAosReference(want, a, b);
    const CMatrix got = a * b;
    EXPECT_LE(want.maxAbsDiff(got), 1e-12);
}

} // namespace
