#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "opt/adam.h"
#include "opt/neldermead.h"
#include "runtime/threadpool.h"

namespace {

using namespace qpc;

TEST(NelderMead, QuadraticBowl)
{
    auto f = [](const std::vector<double>& x) {
        double s = 0.0;
        for (size_t i = 0; i < x.size(); ++i)
            s += (x[i] - 1.0 * (i + 1)) * (x[i] - 1.0 * (i + 1));
        return s;
    };
    const NelderMeadResult r = nelderMead(f, {0.0, 0.0, 0.0});
    EXPECT_TRUE(r.converged);
    EXPECT_NEAR(r.best[0], 1.0, 1e-3);
    EXPECT_NEAR(r.best[1], 2.0, 1e-3);
    EXPECT_NEAR(r.best[2], 3.0, 1e-3);
    EXPECT_LT(r.bestValue, 1e-6);
}

TEST(NelderMead, Rosenbrock2d)
{
    auto f = [](const std::vector<double>& x) {
        const double a = 1.0 - x[0];
        const double b = x[1] - x[0] * x[0];
        return a * a + 100.0 * b * b;
    };
    NelderMeadOptions options;
    options.maxIterations = 5000;
    const NelderMeadResult r = nelderMead(f, {-1.2, 1.0}, options);
    EXPECT_NEAR(r.best[0], 1.0, 1e-2);
    EXPECT_NEAR(r.best[1], 1.0, 1e-2);
}

TEST(NelderMead, IterationCallbackReportsShrinkingMovement)
{
    // The optimizer-movement signal the adaptive quantization drivers
    // key refinement on: per-iteration step norms and simplex
    // diameters, both shrinking to ~zero as the optimizer converges.
    auto f = [](const std::vector<double>& x) {
        return (x[0] - 1.0) * (x[0] - 1.0) +
               (x[1] + 2.0) * (x[1] + 2.0);
    };
    std::vector<double> step_norms;
    std::vector<double> diameters;
    std::vector<double> best_values;
    NelderMeadOptions options;
    options.onIteration = [&](const NelderMeadIterationInfo& info) {
        EXPECT_EQ(info.iteration,
                  static_cast<int>(step_norms.size()) + 1);
        step_norms.push_back(info.stepNorm);
        diameters.push_back(info.simplexDiameter);
        best_values.push_back(info.bestValue);
    };
    const NelderMeadResult r = nelderMead(f, {4.0, 4.0}, options);
    EXPECT_TRUE(r.converged);
    // One report per completed simplex update.
    ASSERT_EQ(static_cast<int>(step_norms.size()), r.iterations);

    // Every update moved something, and the reported best never got
    // worse.
    for (double s : step_norms)
        EXPECT_GT(s, 0.0);
    for (size_t i = 1; i < best_values.size(); ++i)
        EXPECT_LE(best_values[i], best_values[i - 1] + 1e-12);
    // Convergence is visible in the movement signals: the tail is
    // orders of magnitude below the head.
    EXPECT_LT(step_norms.back(), 1e-3);
    EXPECT_LT(diameters.back(), 1e-3);
    EXPECT_GT(step_norms.front(), 0.1);
    EXPECT_GT(diameters.front(), 0.1);
    // The final best matches the result the caller gets.
    EXPECT_NEAR(best_values.back(), r.bestValue, 1e-12);
}

TEST(NelderMead, RespectsIterationCap)
{
    auto f = [](const std::vector<double>& x) {
        return x[0] * x[0];
    };
    NelderMeadOptions options;
    options.maxIterations = 3;
    const NelderMeadResult r = nelderMead(f, {5.0}, options);
    EXPECT_LE(r.iterations, 3);
}

TEST(NelderMead, NoisyObjectiveStillImproves)
{
    // A small deterministic "noise" ripple on a bowl; Nelder-Mead is
    // chosen in variational algorithms for exactly this robustness.
    auto f = [](const std::vector<double>& x) {
        double s = 0.0;
        for (double v : x)
            s += v * v;
        return s + 0.01 * std::sin(37.0 * x[0]) *
                       std::cos(23.0 * (x.size() > 1 ? x[1] : 0.0));
    };
    const NelderMeadResult r = nelderMead(f, {3.0, -2.0});
    EXPECT_LT(r.bestValue, 0.05);
}

TEST(Adam, ConvergesOnQuadratic)
{
    AdamOptimizer adam(2, AdamHyperParams{0.1, 1.0});
    std::vector<double> x{4.0, -3.0};
    for (int i = 0; i < 500; ++i) {
        const std::vector<double> grad{2.0 * (x[0] - 1.0),
                                       2.0 * (x[1] + 2.0)};
        adam.step(x, grad);
    }
    EXPECT_NEAR(x[0], 1.0, 1e-2);
    EXPECT_NEAR(x[1], -2.0, 1e-2);
    EXPECT_EQ(adam.stepsTaken(), 500);
}

TEST(Adam, DecayShrinksEffectiveRate)
{
    const AdamHyperParams h{0.1, 0.99};
    EXPECT_NEAR(h.rateAt(0), 0.1, 1e-12);
    EXPECT_LT(h.rateAt(100), 0.1 * 0.4);

    // With aggressive decay the optimizer moves less overall.
    auto run = [](double decay) {
        AdamOptimizer adam(1, AdamHyperParams{0.05, decay});
        std::vector<double> x{10.0};
        for (int i = 0; i < 200; ++i) {
            const std::vector<double> grad{2.0 * x[0]};
            adam.step(x, grad);
        }
        return x[0];
    };
    EXPECT_GT(run(0.9), run(1.0));
}

TEST(Adam, HandlesSparseGradients)
{
    AdamOptimizer adam(3, AdamHyperParams{0.05, 1.0});
    std::vector<double> x{1.0, 1.0, 1.0};
    std::vector<double> grad{0.0, 1.0, 0.0};
    for (int i = 0; i < 100; ++i)
        adam.step(x, grad);
    EXPECT_NEAR(x[0], 1.0, 1e-12);   // untouched coordinate
    EXPECT_LT(x[1], 1.0);
}

// ---------------------------------------------------------------------
// Parallel batch evaluation: bit-determinism across worker counts
// ---------------------------------------------------------------------

/** A deterministic, thread-safe, moderately nasty objective. */
double
ripplyBowl(const std::vector<double>& x)
{
    double s = 0.0;
    for (size_t i = 0; i < x.size(); ++i) {
        const double d = x[i] - 0.7 * static_cast<double>(i + 1);
        s += d * d + 0.05 * std::sin(13.0 * x[i]);
    }
    return s;
}

/** Everything observable about one Nelder-Mead run, including the
 * full onIteration stream the refinement triggers key off. */
struct NmTrace
{
    NelderMeadResult result;
    std::vector<std::tuple<int, double, double, double>> stream;
};

NmTrace
runNmTrace(ThreadPool* pool)
{
    NmTrace trace;
    NelderMeadOptions options;
    options.maxIterations = 400;
    options.evalPool = pool;
    options.onIteration = [&](const NelderMeadIterationInfo& info) {
        trace.stream.emplace_back(info.iteration, info.bestValue,
                                  info.stepNorm, info.simplexDiameter);
    };
    trace.result =
        nelderMead(ripplyBowl, {2.0, -1.5, 3.0, 0.5}, options);
    return trace;
}

TEST(NelderMead, ParallelEvaluationBitIdenticalAcrossWorkerCounts)
{
    const NmTrace serial = runNmTrace(nullptr);
    EXPECT_EQ(serial.result.speculativeEvaluations, 0);

    for (int workers : {1, 2, 8}) {
        ThreadPool pool(workers);
        const NmTrace pooled = runNmTrace(&pool);

        // Identical trajectory, bit for bit: best point, value,
        // iteration and (serial-semantics) evaluation counts.
        ASSERT_EQ(pooled.result.best.size(),
                  serial.result.best.size());
        for (size_t i = 0; i < serial.result.best.size(); ++i)
            EXPECT_EQ(pooled.result.best[i], serial.result.best[i])
                << workers << " workers, coord " << i;
        EXPECT_EQ(pooled.result.bestValue, serial.result.bestValue);
        EXPECT_EQ(pooled.result.iterations, serial.result.iterations);
        EXPECT_EQ(pooled.result.evaluations,
                  serial.result.evaluations);
        EXPECT_EQ(pooled.result.converged, serial.result.converged);

        // The onIteration stream — what refinetrigger's step-norm
        // gate and cooldown see — is identical too, so adaptive-grid
        // refinement fires at the same iterations at any worker
        // count.
        ASSERT_EQ(pooled.stream.size(), serial.stream.size())
            << workers << " workers";
        for (size_t i = 0; i < serial.stream.size(); ++i)
            EXPECT_EQ(pooled.stream[i], serial.stream[i])
                << workers << " workers, report " << i;
    }
}

TEST(NelderMead, SpeculationIsAccountedSeparately)
{
    ThreadPool pool(2);
    NelderMeadOptions options;
    options.maxIterations = 200;
    options.evalPool = &pool;
    const NelderMeadResult pooled =
        nelderMead(ripplyBowl, {2.0, -1.5}, options);
    const NelderMeadResult serial =
        nelderMead(ripplyBowl, {2.0, -1.5});

    // `evaluations` reports what a serial run would have paid;
    // discarded speculative expansions are tallied separately.
    EXPECT_EQ(pooled.evaluations, serial.evaluations);
    EXPECT_GT(pooled.speculativeEvaluations, 0);
    EXPECT_EQ(serial.speculativeEvaluations, 0);
}

TEST(AdamFd, ConvergesOnQuadratic)
{
    AdamFdOptions options;
    options.maxIterations = 400;
    options.hyper.learningRate = 0.1;
    const AdamFdResult r =
        adamMinimizeFd(ripplyBowl, {3.0, 3.0, 3.0, 3.0}, options);
    EXPECT_LT(r.bestValue, ripplyBowl({3.0, 3.0, 3.0, 3.0}));
    EXPECT_EQ(r.iterations, 400);
    // 2N probes per iteration plus the final evaluation.
    EXPECT_EQ(r.evaluations, 400 * 8 + 1);
}

TEST(AdamFd, ParallelProbesBitIdenticalAcrossWorkerCounts)
{
    AdamFdOptions options;
    options.maxIterations = 150;
    options.hyper.learningRate = 0.05;
    const AdamFdResult serial =
        adamMinimizeFd(ripplyBowl, {1.0, -2.0, 0.5}, options);

    for (int workers : {1, 2, 8}) {
        ThreadPool pool(workers);
        AdamFdOptions pooled_options = options;
        pooled_options.evalPool = &pool;
        const AdamFdResult pooled =
            adamMinimizeFd(ripplyBowl, {1.0, -2.0, 0.5},
                           pooled_options);
        ASSERT_EQ(pooled.best.size(), serial.best.size());
        for (size_t i = 0; i < serial.best.size(); ++i)
            EXPECT_EQ(pooled.best[i], serial.best[i])
                << workers << " workers, coord " << i;
        EXPECT_EQ(pooled.bestValue, serial.bestValue);
        EXPECT_EQ(pooled.evaluations, serial.evaluations);
        EXPECT_EQ(pooled.iterations, serial.iterations);
    }
}

TEST(AdamFd, GradToleranceStopsEarly)
{
    AdamFdOptions options;
    options.maxIterations = 5000;
    options.gradTolerance = 1e-4;
    options.hyper.learningRate = 0.1;
    auto bowl = [](const std::vector<double>& x) {
        return (x[0] - 2.0) * (x[0] - 2.0);
    };
    const AdamFdResult r = adamMinimizeFd(bowl, {5.0}, options);
    EXPECT_TRUE(r.converged);
    EXPECT_LT(r.iterations, 5000);
    EXPECT_NEAR(r.best[0], 2.0, 1e-3);
}

} // namespace
