#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/rng.h"
#include "ir/circuit.h"
#include "ir/param.h"
#include "runtime/service.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace {

using namespace qpc;

/** Unique scratch directory, removed on destruction. */
class TempDir
{
  public:
    explicit TempDir(const std::string& stem)
    {
        path_ = (std::filesystem::temp_directory_path() /
                 (stem + "." + std::to_string(::getpid())))
                    .string();
        std::filesystem::remove_all(path_);
        std::filesystem::create_directories(path_);
    }
    ~TempDir() { std::filesystem::remove_all(path_); }
    const std::string& path() const { return path_; }

  private:
    std::string path_;
};

/** A small variational template: 2 Fixed blocks, 2 rotations. */
Circuit
paramTemplate()
{
    Circuit c(2);
    c.h(0);
    c.cx(0, 1);
    c.rz(1, ParamExpr::theta(0));
    c.h(0);
    c.cx(0, 1);
    c.rz(1, ParamExpr::theta(1));
    return c;
}

/** A running server on a unique unix socket in a temp dir. */
class ServerHarness
{
  public:
    explicit ServerHarness(TenantQuota quota = {}, int workers = 2)
        : dir_("qpc_server")
    {
        CompileServerOptions options;
        options.socketPath = dir_.path() + "/qpc.sock";
        options.service.numWorkers = workers;
        options.service.maxQueuedJobs = 16;
        options.quota = quota;
        server_ = std::make_unique<CompileServer>(std::move(options));
        server_->start();
    }

    const std::string& socket() const
    {
        return server_->options().socketPath;
    }
    CompileServer& server() { return *server_; }

    /** A fresh connection can still complete a Hello: the liveness
     * probe after every hostile-input test. */
    bool
    alive()
    {
        CompileClient probe;
        return probe.connectUnix(socket()) &&
               probe.hello("liveness-probe").has_value();
    }

  private:
    TempDir dir_;
    std::unique_ptr<CompileServer> server_;
};

/** Raw connected socket, bypassing the client library's framing. */
int
rawConnect(const std::string& path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

bool
sendRaw(int fd, const std::vector<std::uint8_t>& bytes)
{
    return ::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL) ==
           static_cast<ssize_t>(bytes.size());
}

std::vector<std::uint8_t>
framed(const std::vector<std::uint8_t>& payload)
{
    std::vector<std::uint8_t> out;
    const auto n = static_cast<std::uint32_t>(payload.size());
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<std::uint8_t>(n >> (8 * i)));
    out.insert(out.end(), payload.begin(), payload.end());
    return out;
}

// ---------------------------------------------------------------------
// Wire primitives
// ---------------------------------------------------------------------

TEST(Wire, WriterReaderRoundTrip)
{
    WireWriter w;
    w.u8(7);
    w.u32(0xDEADBEEFu);
    w.u64(0x0123456789ABCDEFull);
    w.i32(-42);
    w.f64(-0.0);
    w.str("tenant");
    w.blob({1, 2, 3});

    WireReader r(w.bytes());
    EXPECT_EQ(r.u8(), 7);
    EXPECT_EQ(r.u32(), 0xDEADBEEFu);
    EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
    EXPECT_EQ(r.i32(), -42);
    const double z = r.f64();
    EXPECT_EQ(z, 0.0);
    EXPECT_TRUE(std::signbit(z));
    EXPECT_EQ(r.str(), "tenant");
    EXPECT_EQ(r.blob(), (std::vector<std::uint8_t>{1, 2, 3}));
    EXPECT_TRUE(r.done());
}

TEST(Wire, ReaderLatchesOnShortRead)
{
    const std::vector<std::uint8_t> two{1, 2};
    WireReader r(two);
    r.u64(); // Needs 8 bytes, has 2.
    EXPECT_FALSE(r.ok());
    EXPECT_FALSE(r.done());
    // Every later read stays zero instead of walking off the buffer.
    EXPECT_EQ(r.u32(), 0u);
    EXPECT_EQ(r.str(), "");
}

TEST(Wire, ReaderRejectsLyingStringLength)
{
    WireWriter w;
    w.u32(1000); // Claims 1000 bytes...
    w.u8('x');   // ... delivers 1.
    WireReader r(w.bytes());
    EXPECT_EQ(r.str(), "");
    EXPECT_FALSE(r.ok());
}

TEST(Wire, CircuitRoundTripIsExact)
{
    const Circuit original = paramTemplate();
    const std::optional<Circuit> back =
        decodeCircuit(encodeCircuit(original));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->numQubits(), original.numQubits());
    ASSERT_EQ(back->size(), original.size());
    for (int i = 0; i < original.size(); ++i) {
        const GateOp& a = original.ops()[static_cast<size_t>(i)];
        const GateOp& b = back->ops()[static_cast<size_t>(i)];
        EXPECT_EQ(a.kind, b.kind);
        EXPECT_EQ(a.q0, b.q0);
        EXPECT_EQ(a.q1, b.q1);
        EXPECT_EQ(a.angle.index, b.angle.index);
        EXPECT_EQ(a.angle.coeff, b.angle.coeff);
        EXPECT_EQ(a.angle.offset, b.angle.offset);
    }
}

TEST(Wire, CircuitDecodeRejectsHostileRecords)
{
    const std::vector<std::uint8_t> good =
        encodeCircuit(paramTemplate());

    // Bad magic.
    auto bad = good;
    bad[0] ^= 0xFF;
    EXPECT_FALSE(decodeCircuit(bad).has_value());

    // Unsupported version.
    bad = good;
    bad[4] = 99;
    EXPECT_FALSE(decodeCircuit(bad).has_value());

    // Truncation at every prefix must decode as an error, not a crash.
    for (std::size_t cut = 0; cut < good.size(); ++cut) {
        std::vector<std::uint8_t> prefix(good.begin(),
                                         good.begin() +
                                             static_cast<long>(cut));
        EXPECT_FALSE(decodeCircuit(prefix).has_value()) << cut;
    }

    // Random bit flips: decode either round-trips validly or errors;
    // it must never panic (Circuit::add would, on bad indices).
    Rng rng(20260807);
    for (int round = 0; round < 500; ++round) {
        bad = good;
        const int flips = 1 + rng.randint(0, 4);
        for (int f = 0; f < flips; ++f)
            bad[static_cast<size_t>(
                rng.randint(0, static_cast<int>(bad.size()) - 1))] ^=
                static_cast<std::uint8_t>(1u << rng.randint(0, 7));
        (void)decodeCircuit(bad);
    }
}

TEST(Wire, StatsRoundTrip)
{
    WireServerStats stats;
    stats.connectionsAccepted = 11;
    stats.requests = 1234;
    stats.cacheHits = 600;
    stats.cacheBytesInUse = 1u << 20;
    WireTenantStats tenant;
    tenant.tenant = "alice";
    tenant.serves = 40;
    tenant.serveHits = 30;
    tenant.serveMisses = 10;
    stats.tenants.push_back(tenant);

    WireWriter w;
    encodeServerStats(w, stats);
    WireReader r(w.bytes());
    const std::optional<WireServerStats> back = decodeServerStats(r);
    ASSERT_TRUE(back.has_value());
    EXPECT_TRUE(r.done());
    EXPECT_EQ(back->connectionsAccepted, 11u);
    EXPECT_EQ(back->requests, 1234u);
    EXPECT_EQ(back->cacheBytesInUse, 1u << 20);
    ASSERT_EQ(back->tenants.size(), 1u);
    EXPECT_EQ(back->tenants[0].tenant, "alice");
    EXPECT_DOUBLE_EQ(back->tenants[0].hitRate(), 0.75);
}

/** A snapshot with every section populated, histogram from real
 * recordings so its bucket invariants hold by construction. */
MetricsSnapshot
sampleMetrics()
{
    MetricsSnapshot snap;
    snap.counters.push_back({"qpc_test_requests_total", 1234});
    snap.counters.push_back({"qpc_test_errors_total", 0});
    snap.gauges.push_back({"qpc_test_entries", 17.5});
    LatencyHistogram hist;
    hist.record(10);
    hist.record(900);
    hist.record(48000);
    hist.record(48000);
    snap.histograms.push_back({"qpc_test_latency_us", hist.snapshot()});
    return snap;
}

TEST(Wire, MetricsRoundTrip)
{
    const MetricsSnapshot snap = sampleMetrics();
    WireWriter w;
    encodeMetrics(w, snap);
    WireReader r(w.bytes());
    const std::optional<MetricsSnapshot> back = decodeMetrics(r);
    ASSERT_TRUE(back.has_value());
    EXPECT_TRUE(r.done());
    ASSERT_EQ(back->counters.size(), 2u);
    EXPECT_EQ(back->counters[0].name, "qpc_test_requests_total");
    EXPECT_EQ(back->counters[0].value, 1234u);
    ASSERT_EQ(back->gauges.size(), 1u);
    EXPECT_DOUBLE_EQ(back->gauges[0].value, 17.5);
    ASSERT_EQ(back->histograms.size(), 1u);
    EXPECT_EQ(back->histograms[0].name, "qpc_test_latency_us");
    EXPECT_TRUE(back->histograms[0].histogram ==
                snap.histograms[0].histogram);
    // The decoded copy renders and interpolates like the original.
    EXPECT_DOUBLE_EQ(back->histograms[0].histogram.percentileNs(100),
                     48000.0);
}

TEST(Wire, MetricsDecodeRejectsHostileHistograms)
{
    // Each lambda writes one WireHistogram body that violates a
    // structural invariant decodeWireHistogram must enforce.
    struct Hostile
    {
        const char* what;
        void (*write)(WireWriter&);
    };
    const Hostile cases[] = {
        {"bucket index out of range",
         [](WireWriter& w) {
             w.str("h");
             w.u64(1); // count
             w.u64(5); // sum
             w.u64(5); // min
             w.u64(5); // max
             w.u32(1);
             w.u32(LatencyHistogram::kNumBuckets); // one past the end
             w.u64(1);
         }},
        {"bucket indices not strictly increasing",
         [](WireWriter& w) {
             w.str("h");
             w.u64(2);
             w.u64(10);
             w.u64(5);
             w.u64(5);
             w.u32(2);
             w.u32(5);
             w.u64(1);
             w.u32(5); // duplicate index
             w.u64(1);
         }},
        {"zero-count bucket",
         [](WireWriter& w) {
             w.str("h");
             w.u64(0);
             w.u64(0);
             w.u64(0);
             w.u64(0);
             w.u32(1);
             w.u32(3);
             w.u64(0);
         }},
        {"bucket counts disagree with total",
         [](WireWriter& w) {
             w.str("h");
             w.u64(10); // claims 10...
             w.u64(50);
             w.u64(5);
             w.u64(5);
             w.u32(1);
             w.u32(5);
             w.u64(3); // ...buckets hold 3
         }},
        {"min above max",
         [](WireWriter& w) {
             w.str("h");
             w.u64(1);
             w.u64(9);
             w.u64(9); // min
             w.u64(5); // max < min
             w.u32(1);
             w.u32(9);
             w.u64(1);
         }},
        {"nonzero stats on an empty histogram",
         [](WireWriter& w) {
             w.str("h");
             w.u64(0);
             w.u64(99); // sum must be 0 when count is 0
             w.u64(0);
             w.u64(0);
             w.u32(0);
         }},
    };
    for (const Hostile& hostile : cases) {
        WireWriter w;
        hostile.write(w);
        WireReader r(w.bytes());
        EXPECT_FALSE(decodeWireHistogram(r).has_value())
            << "accepted: " << hostile.what;
    }
}

TEST(Wire, MetricsDecodeSurvivesBitFlipFuzz)
{
    WireWriter w;
    encodeMetrics(w, sampleMetrics());
    const std::vector<std::uint8_t> golden = w.bytes();

    Rng rng(20260808);
    for (int round = 0; round < 2000; ++round) {
        std::vector<std::uint8_t> body = golden;
        const int flips = 1 + rng.randint(0, 7);
        for (int i = 0; i < flips; ++i)
            body[static_cast<size_t>(rng.randint(
                0, static_cast<int>(body.size()) - 1))] ^=
                static_cast<std::uint8_t>(1u << rng.randint(0, 7));
        if (rng.bernoulli(0.25)) // Truncation, too.
            body.resize(static_cast<size_t>(
                rng.randint(0, static_cast<int>(body.size()))));
        WireReader r(body);
        const std::optional<MetricsSnapshot> snap = decodeMetrics(r);
        if (!snap.has_value())
            continue;
        // Whatever survives the flips must still be internally
        // consistent: a re-encode of it decodes cleanly.
        WireWriter again;
        encodeMetrics(again, *snap);
        WireReader r2(again.bytes());
        EXPECT_TRUE(decodeMetrics(r2).has_value());
        EXPECT_TRUE(r2.done());
    }
}

// ---------------------------------------------------------------------
// PriorityGate
// ---------------------------------------------------------------------

TEST(PriorityGate, BulkWaitsForPendingServes)
{
    PriorityGate gate;
    gate.beginServe();

    std::atomic<bool> released{false};
    std::thread bulk([&] {
        EXPECT_TRUE(gate.waitBulkTurn());
        released.store(true);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(released.load());
    EXPECT_EQ(gate.pendingServes(), 1);

    gate.endServe();
    bulk.join();
    EXPECT_TRUE(released.load());
    EXPECT_EQ(gate.bulkYields(), 1u);
}

TEST(PriorityGate, StopReleasesWaitersWithFalse)
{
    PriorityGate gate;
    gate.beginServe();
    std::thread bulk([&] { EXPECT_FALSE(gate.waitBulkTurn()); });
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    gate.stop();
    bulk.join();
}

// ---------------------------------------------------------------------
// End-to-end serving
// ---------------------------------------------------------------------

TEST(Server, SingleTenantPrepareWarmServe)
{
    ServerHarness harness;
    CompileClient client;
    ASSERT_TRUE(client.connectUnix(harness.socket()));

    const auto hello = client.hello("alice");
    ASSERT_TRUE(hello.has_value());
    EXPECT_GT(hello->maxPlans, 0u);

    const auto prepared = client.prepareServing(paramTemplate());
    ASSERT_TRUE(prepared.has_value());
    EXPECT_GT(prepared->numFixedBlocks, 0u);
    EXPECT_EQ(prepared->numParamGates, 2u);

    const auto warmed = client.prewarm(prepared->planId);
    ASSERT_TRUE(warmed.has_value());
    EXPECT_GT(warmed->uniqueBlocks, 0u);

    const auto served =
        client.serve(prepared->planId, {0.25, -1.5}, true);
    ASSERT_TRUE(served.has_value());
    EXPECT_GT(served->pulseNs, 0.0);
    EXPECT_EQ(served->pulses.size(), served->numSegments);
    EXPECT_GT(served->cacheHits, 0u); // Prewarmed blocks were warm.

    const auto stats = client.stats();
    ASSERT_TRUE(stats.has_value());
    ASSERT_EQ(stats->tenants.size(), 1u);
    EXPECT_EQ(stats->tenants[0].tenant, "alice");
    EXPECT_EQ(stats->tenants[0].serves, 1u);
    EXPECT_EQ(stats->tenants[0].plans, 1u);
    EXPECT_GT(stats->tenants[0].servedBytes, 0u);
    EXPECT_GT(stats->tenants[0].hitRate(), 0.0);
}

TEST(Server, FourConcurrentTenantsShareTheCache)
{
    ServerHarness harness({}, 4);
    constexpr int kTenants = 4;
    constexpr int kServes = 8;
    std::atomic<int> failures{0};

    std::vector<std::thread> tenants;
    for (int t = 0; t < kTenants; ++t)
        tenants.emplace_back([&, t] {
            CompileClient client;
            if (!client.connectUnix(harness.socket())) {
                failures.fetch_add(1);
                return;
            }
            if (!client.hello("tenant-" + std::to_string(t))) {
                failures.fetch_add(1);
                return;
            }
            // Every tenant uploads the *same* template: the shared
            // content-addressed cache should collapse their Fixed
            // blocks onto one synthesis each.
            const auto prepared =
                client.prepareServing(paramTemplate());
            if (!prepared) {
                failures.fetch_add(1);
                return;
            }
            if (!client.prewarm(prepared->planId)) {
                failures.fetch_add(1);
                return;
            }
            Rng rng(static_cast<uint64_t>(1000 + t));
            for (int i = 0; i < kServes; ++i)
                if (!client.serve(prepared->planId, rng.angles(2)))
                    failures.fetch_add(1);
        });
    for (std::thread& t : tenants)
        t.join();
    ASSERT_EQ(failures.load(), 0);

    const WireServerStats stats = harness.server().statsSnapshot();
    ASSERT_EQ(stats.tenants.size(), static_cast<size_t>(kTenants));
    std::uint64_t total_serves = 0;
    for (const WireTenantStats& tenant : stats.tenants) {
        EXPECT_EQ(tenant.serves, static_cast<std::uint64_t>(kServes));
        EXPECT_EQ(tenant.plans, 1u);
        total_serves += tenant.serves;
    }
    EXPECT_EQ(total_serves,
              static_cast<std::uint64_t>(kTenants * kServes));
    // Cross-tenant dedup: 4 identical templates cost one synthesis
    // per unique block (single flight + shared cache), not four.
    EXPECT_LE(stats.synthRuns, stats.cacheEntries);
    EXPECT_GT(stats.cacheHits, 0u);
}

TEST(Server, TcpListenerServesOnEphemeralPort)
{
    TempDir dir("qpc_server_tcp");
    CompileServerOptions options;
    options.socketPath = dir.path() + "/qpc.sock";
    options.tcpPort = -1; // Ephemeral.
    options.service.numWorkers = 2;
    CompileServer server(std::move(options));
    server.start();
    ASSERT_GT(server.boundTcpPort(), 0);

    CompileClient client;
    ASSERT_TRUE(client.connectTcp(server.boundTcpPort()));
    ASSERT_TRUE(client.hello("tcp-tenant").has_value());
    const auto prepared = client.prepareServing(paramTemplate());
    ASSERT_TRUE(prepared.has_value());
    EXPECT_TRUE(client.serve(prepared->planId, {0.1, 0.2}).has_value());
}

// ---------------------------------------------------------------------
// Quotas and request errors
// ---------------------------------------------------------------------

TEST(Server, PlanQuotaRejectsWithoutKillingTheSession)
{
    TenantQuota quota;
    quota.maxPlans = 1;
    ServerHarness harness(quota);
    CompileClient client;
    ASSERT_TRUE(client.connectUnix(harness.socket()));
    ASSERT_TRUE(client.hello("greedy").has_value());

    const auto first = client.prepareServing(paramTemplate());
    ASSERT_TRUE(first.has_value());
    EXPECT_FALSE(client.prepareServing(paramTemplate()).has_value());
    EXPECT_EQ(client.lastErrorCode(), WireError::QuotaExceeded);

    // The session survives the refusal and the held plan still serves.
    EXPECT_TRUE(client.connected());
    EXPECT_TRUE(client.serve(first->planId, {0.1, 0.2}).has_value());

    const WireServerStats stats = harness.server().statsSnapshot();
    ASSERT_EQ(stats.tenants.size(), 1u);
    EXPECT_EQ(stats.tenants[0].quotaRejections, 1u);
}

TEST(Server, ServedBytesQuotaCapsEgress)
{
    TenantQuota quota;
    quota.maxServedBytes = 1; // First serve exhausts it.
    ServerHarness harness(quota);
    CompileClient client;
    ASSERT_TRUE(client.connectUnix(harness.socket()));
    ASSERT_TRUE(client.hello("metered").has_value());
    const auto prepared = client.prepareServing(paramTemplate());
    ASSERT_TRUE(prepared.has_value());

    ASSERT_TRUE(client.serve(prepared->planId, {0.1, 0.2}).has_value());
    EXPECT_FALSE(
        client.serve(prepared->planId, {0.3, 0.4}).has_value());
    EXPECT_EQ(client.lastErrorCode(), WireError::QuotaExceeded);
    EXPECT_TRUE(client.connected());
}

TEST(Server, RequestErrorsAreSurfacedNotFatal)
{
    ServerHarness harness;
    CompileClient client;
    ASSERT_TRUE(client.connectUnix(harness.socket()));

    // Plan-scoped requests before Hello.
    EXPECT_FALSE(client.prewarm(1).has_value());
    EXPECT_EQ(client.lastErrorCode(), WireError::BadRequest);

    ASSERT_TRUE(client.hello("alice").has_value());

    // Unknown plan.
    EXPECT_FALSE(client.serve(999, {0.1}).has_value());
    EXPECT_EQ(client.lastErrorCode(), WireError::NotFound);

    const auto prepared = client.prepareServing(paramTemplate());
    ASSERT_TRUE(prepared.has_value());

    // Short theta: ParamExpr::bind would fatal() the process on this;
    // the server must pre-validate and refuse the request instead.
    EXPECT_FALSE(client.serve(prepared->planId, {0.1}).has_value());
    EXPECT_EQ(client.lastErrorCode(), WireError::BadRequest);

    // Non-finite theta.
    EXPECT_FALSE(
        client.serve(prepared->planId,
                     {0.1, std::numeric_limits<double>::quiet_NaN()})
            .has_value());
    EXPECT_EQ(client.lastErrorCode(), WireError::BadRequest);

    // The session is still healthy after every refusal.
    EXPECT_TRUE(
        client.serve(prepared->planId, {0.1, 0.2}).has_value());
}

// ---------------------------------------------------------------------
// Protocol fuzzing: hostile bytes error per-connection, never crash
// ---------------------------------------------------------------------

TEST(ServerFuzz, TruncatedFrameEndsOnlyThatConnection)
{
    ServerHarness harness;
    const int fd = rawConnect(harness.socket());
    ASSERT_GE(fd, 0);
    // Prefix promises 100 bytes, delivers 10, hangs up.
    ASSERT_TRUE(sendRaw(fd, {100, 0, 0, 0}));
    ASSERT_TRUE(sendRaw(fd, {1, 2, 3, 4, 5, 6, 7, 8, 9, 10}));
    ::close(fd);
    EXPECT_TRUE(harness.alive());
}

TEST(ServerFuzz, OversizedLengthPrefixIsRefusedWithoutAllocating)
{
    ServerHarness harness;
    for (const std::uint32_t n :
         {kMaxFramePayload + 1, 0xFFFFFFFFu, 0u}) {
        const int fd = rawConnect(harness.socket());
        ASSERT_GE(fd, 0);
        std::vector<std::uint8_t> prefix;
        for (int i = 0; i < 4; ++i)
            prefix.push_back(static_cast<std::uint8_t>(n >> (8 * i)));
        ASSERT_TRUE(sendRaw(fd, prefix));
        // The server must drop the connection (EOF on our read), not
        // try to read/allocate n bytes.
        std::uint8_t byte = 0;
        EXPECT_EQ(::read(fd, &byte, 1), 0);
        ::close(fd);
    }
    EXPECT_TRUE(harness.alive());
}

TEST(ServerFuzz, WrongVersionByteGetsErrorFrame)
{
    ServerHarness harness;
    const int fd = rawConnect(harness.socket());
    ASSERT_GE(fd, 0);
    WireWriter w;
    w.u8(kServerProtocolVersion + 1);
    w.u8(static_cast<std::uint8_t>(MsgType::Hello));
    w.str("alice");
    ASSERT_TRUE(sendRaw(fd, framed(w.bytes())));

    const std::optional<std::vector<std::uint8_t>> reply =
        readFrame(fd);
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(peekMessage(*reply), MsgType::Error);
    ::close(fd);
    EXPECT_TRUE(harness.alive());
}

TEST(ServerFuzz, GarbageBodyErrorsButKeepsTheConnection)
{
    ServerHarness harness;
    const int fd = rawConnect(harness.socket());
    ASSERT_GE(fd, 0);

    // Well-framed Hello with a lying string length.
    WireWriter w = beginMessage(MsgType::Hello);
    w.u32(10000);
    w.u8('x');
    ASSERT_TRUE(sendRaw(fd, framed(w.bytes())));
    std::optional<std::vector<std::uint8_t>> reply = readFrame(fd);
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(peekMessage(*reply), MsgType::Error);

    // Framing stayed in sync: a valid Hello on the same connection
    // still succeeds.
    WireWriter ok = beginMessage(MsgType::Hello);
    ok.str("recovered");
    ASSERT_TRUE(sendRaw(fd, framed(ok.bytes())));
    reply = readFrame(fd);
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(peekMessage(*reply), MsgType::HelloOk);
    ::close(fd);

    EXPECT_GT(harness.server().statsSnapshot().protocolErrors, 0u);
}

TEST(ServerFuzz, HostileCircuitRecordIsRefused)
{
    ServerHarness harness;
    CompileClient client;
    ASSERT_TRUE(client.connectUnix(harness.socket()));
    ASSERT_TRUE(client.hello("fuzzer").has_value());

    // A circuit whose qubit indices are out of range: would panic in
    // Circuit::add if the server trusted the bytes.
    std::vector<std::uint8_t> record =
        encodeCircuit(paramTemplate());
    // q0 of the first op lives right after magic+version+counts+kind.
    record[4 + 4 + 4 + 4 + 1] = 0x7F;
    WireWriter w = beginMessage(MsgType::PrepareServing);
    w.raw(record.data(), record.size());
    const auto reply = client.roundTrip(w.bytes());
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(peekMessage(*reply), MsgType::Error);
    EXPECT_TRUE(harness.alive());
}

TEST(ServerFuzz, ReplyTypeAsRequestClosesTheConnection)
{
    ServerHarness harness;
    const int fd = rawConnect(harness.socket());
    ASSERT_GE(fd, 0);
    WireWriter w = beginMessage(MsgType::ServeOk);
    w.u64(0);
    ASSERT_TRUE(sendRaw(fd, framed(w.bytes())));
    const std::optional<std::vector<std::uint8_t>> reply =
        readFrame(fd);
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(peekMessage(*reply), MsgType::Error);
    // Then EOF: the server hung up on us.
    std::uint8_t byte = 0;
    EXPECT_EQ(::read(fd, &byte, 1), 0);
    ::close(fd);
    EXPECT_TRUE(harness.alive());
}

TEST(ServerFuzz, RandomFrameSoupNeverKillsTheServer)
{
    ServerHarness harness;
    Rng rng(987654321);

    // Seed corpus: one valid instance of every request type.
    std::vector<std::vector<std::uint8_t>> corpus;
    {
        WireWriter hello = beginMessage(MsgType::Hello);
        hello.str("seed");
        corpus.push_back(hello.take());
        WireWriter prep = beginMessage(MsgType::PrepareServing);
        encodeCircuit(prep, paramTemplate());
        corpus.push_back(prep.take());
        WireWriter warm = beginMessage(MsgType::Prewarm);
        warm.u64(1);
        corpus.push_back(warm.take());
        WireWriter serve = beginMessage(MsgType::Serve);
        serve.u64(1);
        serve.u8(0);
        serve.u32(2);
        serve.f64(0.1);
        serve.f64(0.2);
        corpus.push_back(serve.take());
        corpus.push_back(beginMessage(MsgType::Stats).take());
        corpus.push_back(beginMessage(MsgType::Metrics).take());
    }

    for (int round = 0; round < 60; ++round) {
        const int fd = rawConnect(harness.socket());
        ASSERT_GE(fd, 0);
        // A few frames per connection: mutated corpus members or raw
        // noise, sometimes cut mid-frame.
        const int frames = 1 + rng.randint(0, 3);
        for (int f = 0; f < frames; ++f) {
            std::vector<std::uint8_t> payload;
            if (rng.bernoulli(0.7)) {
                payload = corpus[static_cast<size_t>(rng.randint(
                    0, static_cast<int>(corpus.size()) - 1))];
                const int flips = 1 + rng.randint(0, 6);
                for (int i = 0; i < flips; ++i)
                    payload[static_cast<size_t>(rng.randint(
                        0,
                        static_cast<int>(payload.size()) - 1))] ^=
                        static_cast<std::uint8_t>(
                            1u << rng.randint(0, 7));
            } else {
                payload.resize(
                    static_cast<size_t>(1 + rng.randint(0, 63)));
                for (std::uint8_t& b : payload)
                    b = static_cast<std::uint8_t>(
                        rng.randint(0, 255));
            }
            std::vector<std::uint8_t> wire = framed(payload);
            const bool cut = rng.bernoulli(0.2);
            if (cut) // Mid-frame disconnect.
                wire.resize(static_cast<size_t>(
                    1 + rng.randint(0,
                                    static_cast<int>(wire.size()) -
                                        1)));
            if (!sendRaw(fd, wire))
                break; // Server already hung up on this connection.
            if (cut)
                break; // The server is owed bytes it will never get:
                       // hang up (it must cope), don't wait for a
                       // reply it cannot send.
            if (rng.bernoulli(0.5)) {
                // Drain one reply if the server sent one; ignore it.
                if (!readFrame(fd))
                    break;
            }
        }
        ::close(fd);
    }

    // The server survived the soup and still serves real work.
    EXPECT_TRUE(harness.alive());
    CompileClient client;
    ASSERT_TRUE(client.connectUnix(harness.socket()));
    ASSERT_TRUE(client.hello("survivor").has_value());
    const auto prepared = client.prepareServing(paramTemplate());
    ASSERT_TRUE(prepared.has_value());
    EXPECT_TRUE(
        client.serve(prepared->planId, {0.5, -0.5}).has_value());
}

// ---------------------------------------------------------------------
// Telemetry
// ---------------------------------------------------------------------

const std::uint64_t*
findCounter(const MetricsSnapshot& snap, const std::string& name)
{
    for (const auto& c : snap.counters)
        if (c.name == name)
            return &c.value;
    return nullptr;
}

const HistogramSnapshot*
findHistogram(const MetricsSnapshot& snap, const std::string& name)
{
    for (const auto& h : snap.histograms)
        if (h.name == name)
            return &h.histogram;
    return nullptr;
}

TEST(Server, MetricsFrameMatchesServedWork)
{
    ServerHarness harness;
    CompileClient client;
    ASSERT_TRUE(client.connectUnix(harness.socket()));
    ASSERT_TRUE(client.hello("alice").has_value());
    const auto prepared = client.prepareServing(paramTemplate());
    ASSERT_TRUE(prepared.has_value());
    ASSERT_TRUE(client.serve(prepared->planId, {0.5, -0.5}).has_value());
    ASSERT_TRUE(client.serve(prepared->planId, {0.5, -0.5}).has_value());

    const std::optional<MetricsSnapshot> metrics = client.metrics();
    ASSERT_TRUE(metrics.has_value());

    // The frame agrees with the Stats frame on shared quantities.
    const WireServerStats stats = harness.server().statsSnapshot();
    const std::uint64_t* requests =
        findCounter(*metrics, "qpc_service_requests_total");
    ASSERT_NE(requests, nullptr);
    EXPECT_EQ(*requests, stats.requests);
    const std::uint64_t* serves =
        findCounter(*metrics, "qpc_tenant_serves_total{tenant=\"alice\"}");
    ASSERT_NE(serves, nullptr);
    EXPECT_EQ(*serves, 2u);

    // Serve latencies land in both the global and the per-tenant
    // histograms, already converted to wire-safe snapshots.
    const HistogramSnapshot* serveUs =
        findHistogram(*metrics, "qpc_serve_us");
    ASSERT_NE(serveUs, nullptr);
    EXPECT_GE(serveUs->count, 2u);
    const HistogramSnapshot* tenantUs = findHistogram(
        *metrics, "qpc_tenant_serve_us{tenant=\"alice\"}");
    ASSERT_NE(tenantUs, nullptr);
    EXPECT_EQ(tenantUs->count, 2u);
    EXPECT_GT(tenantUs->maxNs, 0u);

    // The snapshot arrives sorted, so exposition is deterministic.
    for (size_t i = 1; i < metrics->counters.size(); ++i)
        EXPECT_LT(metrics->counters[i - 1].name,
                  metrics->counters[i].name);

    // And it renders: every advertised family gets a TYPE header.
    const std::string text = renderPrometheus(*metrics);
    EXPECT_NE(text.find("# TYPE qpc_service_requests_total counter"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE qpc_serve_us histogram"),
              std::string::npos);
    EXPECT_NE(text.find("qpc_serve_us_bucket{le=\"+Inf\"}"),
              std::string::npos);
}

TEST(Server, MalformedMetricsBodyIsRefused)
{
    ServerHarness harness;
    const int fd = rawConnect(harness.socket());
    ASSERT_GE(fd, 0);
    WireWriter w = beginMessage(MsgType::Metrics);
    w.u8(0xAB); // Trailing junk: the request body must be empty.
    ASSERT_TRUE(sendRaw(fd, framed(w.bytes())));
    const std::optional<std::vector<std::uint8_t>> reply =
        readFrame(fd);
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(peekMessage(*reply), MsgType::Error);
    ::close(fd);
    EXPECT_TRUE(harness.alive());
}

TEST(Server, ColdServeTraceNestsCacheProbeAndQueueWait)
{
    clearTrace();
    setTraceEnabled(true);
    {
        ServerHarness harness;
        CompileClient client;
        ASSERT_TRUE(client.connectUnix(harness.socket()));
        ASSERT_TRUE(client.hello("tracer").has_value());
        const auto prepared = client.prepareServing(paramTemplate());
        ASSERT_TRUE(prepared.has_value());
        // No prewarm: the serve must miss, synthesize through the
        // pool, and therefore leave queue-wait spans behind.
        ASSERT_TRUE(
            client.serve(prepared->planId, {0.25, -0.75}).has_value());
    }
    setTraceEnabled(false);
    const std::string json = traceJson();
    clearTrace();

    EXPECT_NE(json.find("\"name\":\"serve\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"cache-probe\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"queue-wait\""), std::string::npos);
    // The serve span carries its tenant as a viewer-visible arg.
    EXPECT_NE(json.find("\"tenant\":\"tracer\""), std::string::npos);
}

TEST(Server, SlowServeThresholdEmitsStructuredWarn)
{
    TempDir dir("qpc_slowserve");
    CompileServerOptions options;
    options.socketPath = dir.path() + "/qpc.sock";
    options.service.numWorkers = 2;
    options.service.maxQueuedJobs = 16;
    options.slowServeThresholdUs = 1; // Every serve is "slow".
    CompileServer server(std::move(options));
    server.start();

    CompileClient client;
    ASSERT_TRUE(client.connectUnix(server.options().socketPath));
    ASSERT_TRUE(client.hello("slowpoke").has_value());
    const auto prepared = client.prepareServing(paramTemplate());
    ASSERT_TRUE(prepared.has_value());

    testing::internal::CaptureStderr();
    const bool served =
        client.serve(prepared->planId, {0.3, 0.7}).has_value();
    const std::string log = testing::internal::GetCapturedStderr();
    ASSERT_TRUE(served);

    const std::size_t at = log.find("slow-serve tenant=slowpoke");
    ASSERT_NE(at, std::string::npos) << log;
    const std::string line = log.substr(at, log.find('\n', at) - at);
    // Structured fields a log scraper keys on.
    EXPECT_NE(line.find(" plan="), std::string::npos) << line;
    EXPECT_NE(line.find(" total_us="), std::string::npos) << line;
    EXPECT_NE(line.find(" segments="), std::string::npos) << line;
    server.stop();
}

// ---------------------------------------------------------------------
// Shutdown
// ---------------------------------------------------------------------

TEST(Server, ShutdownFrameStopsTheServerCleanly)
{
    ServerHarness harness;
    CompileClient client;
    ASSERT_TRUE(client.connectUnix(harness.socket()));
    ASSERT_TRUE(client.hello("admin").has_value());
    EXPECT_FALSE(harness.server().stopRequested());

    EXPECT_TRUE(client.shutdownServer());
    harness.server().waitUntilStopRequested();
    EXPECT_TRUE(harness.server().stopRequested());
    harness.server().stop();

    // A new connection is refused or immediately dropped.
    CompileClient late;
    EXPECT_FALSE(late.connectUnix(harness.socket()) &&
                 late.hello("too-late").has_value());
}

TEST(Server, StopWithLiveSessionsJoinsEverything)
{
    auto harness = std::make_unique<ServerHarness>();
    // Park a few sessions mid-conversation, then stop the server out
    // from under them: stop() must unblock their readers and join.
    std::vector<std::unique_ptr<CompileClient>> clients;
    for (int i = 0; i < 3; ++i) {
        auto client = std::make_unique<CompileClient>();
        ASSERT_TRUE(client->connectUnix(harness->socket()));
        ASSERT_TRUE(
            client->hello("idle-" + std::to_string(i)).has_value());
        clients.push_back(std::move(client));
    }
    harness->server().stop();
    // Destroying the harness after a clean stop must not hang.
    harness.reset();
}

// ---------------------------------------------------------------------
// Calibration epochs over the wire
// ---------------------------------------------------------------------

const double*
findGauge(const MetricsSnapshot& snap, const std::string& name)
{
    for (const auto& g : snap.gauges)
        if (g.name == name)
            return &g.value;
    return nullptr;
}

TEST(Server, EpochBumpRekeysPlansWhileServing)
{
    ServerHarness harness;
    CompileClient client;
    ASSERT_TRUE(client.connectUnix(harness.socket()));

    const auto hello = client.hello("alice");
    ASSERT_TRUE(hello.has_value());
    EXPECT_EQ(hello->epochCounter, 0u);

    const auto prepared = client.prepareServing(paramTemplate());
    ASSERT_TRUE(prepared.has_value());
    ASSERT_TRUE(client.prewarm(prepared->planId).has_value());
    const auto before = client.serve(prepared->planId, {0.25, -1.5});
    ASSERT_TRUE(before.has_value());
    EXPECT_EQ(before->epochCounter, 0u);

    const auto bumped = client.bumpEpoch(0x5eedULL);
    ASSERT_TRUE(bumped.has_value());
    EXPECT_EQ(bumped->newCounter, 1u);
    EXPECT_EQ(bumped->modelHash, 0x5eedULL);
    EXPECT_EQ(bumped->plansRekeyed, 1u);

    // The plan id survives the bump, serves keep succeeding, and the
    // reply now carries the re-keyed plan's epoch: every pulse behind
    // it was minted under the new calibration.
    const auto after = client.serve(prepared->planId, {0.25, -1.5});
    ASSERT_TRUE(after.has_value());
    EXPECT_EQ(after->epochCounter, 1u);

    const MetricsSnapshot metrics = harness.server().metricsSnapshot();
    const std::uint64_t* bumps =
        findCounter(metrics, "qpc_epoch_bumps_total");
    ASSERT_NE(bumps, nullptr);
    EXPECT_EQ(*bumps, 1u);
    const double* epoch_gauge =
        findGauge(metrics, "qpc_calibration_epoch");
    ASSERT_NE(epoch_gauge, nullptr);
    EXPECT_EQ(*epoch_gauge, 1.0);

    // The async re-prewarm records its recovery latency once it
    // finishes. Wait for the sample rather than racing stop(): a
    // stop() that lands first aborts the rewarm (bins just stay
    // cold), which deliberately records nothing.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    for (;;) {
        const MetricsSnapshot warm = harness.server().metricsSnapshot();
        const HistogramSnapshot* recovery =
            findHistogram(warm, "qpc_epoch_recovery_us");
        ASSERT_NE(recovery, nullptr);
        if (recovery->count >= 1) {
            EXPECT_EQ(recovery->count, 1u);
            break;
        }
        ASSERT_LT(std::chrono::steady_clock::now(), deadline)
            << "epoch rewarm never recorded its recovery latency";
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    harness.server().stop();
}

// ---------------------------------------------------------------------
// Serving snapshots
// ---------------------------------------------------------------------

TEST(Snapshot, RoundTripsAndRejectsHostileBytes)
{
    ServingSnapshot snapshot;
    snapshot.epoch = {3, 99};
    snapshot.plans.push_back({"alice", paramTemplate()});
    snapshot.plans.push_back({"bob", paramTemplate()});

    const std::vector<std::uint8_t> bytes =
        serializeServingSnapshot(snapshot);
    const auto back = deserializeServingSnapshot(bytes);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->epoch, (CalibrationEpoch{3, 99}));
    ASSERT_EQ(back->plans.size(), 2u);
    EXPECT_EQ(back->plans[0].tenant, "alice");
    EXPECT_EQ(back->plans[1].tenant, "bob");
    EXPECT_EQ(back->plans[0].circuit.numParams(),
              paramTemplate().numParams());

    // Every proper prefix is malformed (string and circuit lengths
    // pin the exact size), as is corrupted magic.
    for (std::size_t len = 0; len < bytes.size(); len += 7) {
        const std::vector<std::uint8_t> prefix(bytes.begin(),
                                               bytes.begin() + len);
        EXPECT_FALSE(deserializeServingSnapshot(prefix).has_value())
            << "prefix length " << len;
    }
    std::vector<std::uint8_t> magic = bytes;
    magic[0] ^= 0xff;
    EXPECT_FALSE(deserializeServingSnapshot(magic).has_value());
    std::vector<std::uint8_t> version = bytes;
    version[4] = 0x7f;
    EXPECT_FALSE(deserializeServingSnapshot(version).has_value());

    // File round-trip (atomic save + load).
    TempDir dir("qpc_snapshot_file");
    const std::string path = dir.path() + "/serving.qsnp";
    ASSERT_TRUE(saveServingSnapshot(path, snapshot));
    const auto loaded = loadServingSnapshot(path);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->plans.size(), 2u);
    EXPECT_FALSE(loadServingSnapshot(dir.path() + "/absent.qsnp"));
}

TEST(Server, SnapshotRestoreBootsWarmReplica)
{
    TempDir dir("qpc_snapshot_replica");
    const std::string tier = dir.path() + "/tier";
    std::filesystem::create_directories(tier);
    const auto replicaOptions = [&](const std::string& sock) {
        CompileServerOptions options;
        options.socketPath = dir.path() + "/" + sock;
        options.service.numWorkers = 2;
        options.service.cache.diskDir = tier;
        options.service.quantization.enabled = true;
        options.service.quantization.bins = 32;
        return options;
    };

    // Replica A: live in epoch 5, prewarms one tenant's plan into the
    // shared disk tier, snapshots, exits.
    ServingSnapshot snapshot;
    {
        CompileServerOptions options = replicaOptions("a.sock");
        options.service.epoch.counter = 5;
        CompileServer a(std::move(options));
        a.start();
        CompileClient client;
        ASSERT_TRUE(client.connectUnix(a.options().socketPath));
        const auto hello = client.hello("alice");
        ASSERT_TRUE(hello.has_value());
        EXPECT_EQ(hello->epochCounter, 5u);
        const auto prepared = client.prepareServing(paramTemplate());
        ASSERT_TRUE(prepared.has_value());
        ASSERT_TRUE(client.prewarm(prepared->planId).has_value());
        snapshot = a.snapshotServing();
        a.stop();
    }
    EXPECT_EQ(snapshot.epoch.counter, 5u);
    ASSERT_EQ(snapshot.plans.size(), 1u);

    // Replica B: cold process, same tier, boots from the snapshot.
    // The restore adopts A's epoch before preparing, so every minted
    // fingerprint resolves to a record A already wrote: the prewarm
    // must be nearly all disk hits.
    CompileServer b(replicaOptions("b.sock"));
    const SnapshotRestoreReport report = b.restoreServing(snapshot);
    EXPECT_EQ(report.plans, 1u);
    EXPECT_GT(report.uniqueBlocks, 0u);
    EXPECT_GE(report.hitRate(), 0.9);
    EXPECT_EQ(b.service().epoch().counter, 5u);

    // And it serves: the restored plan is a real tenant plan, warm.
    b.start();
    CompileClient client;
    ASSERT_TRUE(client.connectUnix(b.options().socketPath));
    const auto hello = client.hello("alice");
    ASSERT_TRUE(hello.has_value());
    EXPECT_EQ(hello->epochCounter, 5u);
    const auto prepared = client.prepareServing(paramTemplate());
    ASSERT_TRUE(prepared.has_value());
    const auto served = client.serve(prepared->planId, {0.25, -1.5});
    ASSERT_TRUE(served.has_value());
    EXPECT_EQ(served->epochCounter, 5u);
    EXPECT_GT(served->cacheHits, 0u); // Warm without any prewarm.
    b.stop();
}

} // namespace
