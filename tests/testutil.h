/**
 * @file
 * Shared helpers for the test suite: random circuit generation,
 * op-level circuit equality, and phase-invariant unitary comparison.
 */

#ifndef QPC_TESTS_TESTUTIL_H
#define QPC_TESTS_TESTUTIL_H

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "ir/circuit.h"
#include "linalg/matrix.h"

namespace qpc::testutil {

/** Largest |difference| after removing the optimal global phase. */
inline double
phaseInvariantDistance(const CMatrix& a, const CMatrix& b)
{
    const Complex overlap = (a.dagger() * b).trace();
    if (std::abs(overlap) < 1e-12)
        return a.maxAbsDiff(b);
    const Complex phase = overlap / std::abs(overlap);
    return (b * std::conj(phase)).maxAbsDiff(a);
}

/** True when two unitaries agree up to global phase. */
inline bool
sameUpToPhase(const CMatrix& a, const CMatrix& b, double tol = 1e-8)
{
    return phaseInvariantDistance(a, b) <= tol;
}

/**
 * Basis permutation matrix P sending logical qubit l to physical
 * qubit layout[l], in the bit convention of circuitUnitary() (qubit 0
 * is the most significant bit of the basis index). A routed circuit's
 * unitary equals P * U_original up to global phase.
 */
inline CMatrix
layoutPermutation(const std::vector<int>& layout)
{
    const int n = static_cast<int>(layout.size());
    const int dim = 1 << n;
    CMatrix perm(dim, dim);
    for (int basis = 0; basis < dim; ++basis) {
        int image = 0;
        for (int l = 0; l < n; ++l) {
            const int bit = (basis >> (n - 1 - l)) & 1;
            if (bit)
                image |= 1 << (n - 1 - layout[l]);
        }
        perm(image, basis) = 1.0;
    }
    return perm;
}

/** Exact op-by-op circuit equality. */
inline bool
circuitEquals(const Circuit& a, const Circuit& b)
{
    if (a.numQubits() != b.numQubits() || a.size() != b.size())
        return false;
    for (int i = 0; i < a.size(); ++i) {
        const GateOp& x = a.ops()[i];
        const GateOp& y = b.ops()[i];
        if (x.kind != y.kind || x.q0 != y.q0 || x.q1 != y.q1)
            return false;
        if (x.angle.index != y.angle.index ||
            std::abs(x.angle.coeff - y.angle.coeff) > 1e-12 ||
            std::abs(x.angle.offset - y.angle.offset) > 1e-12)
            return false;
    }
    return true;
}

/** Random bound circuit over a standard gate mix. */
inline Circuit
randomCircuit(Rng& rng, int num_qubits, int num_ops)
{
    Circuit circuit(num_qubits);
    for (int i = 0; i < num_ops; ++i) {
        const int pick = rng.randint(0, 7);
        const int q = rng.randint(0, num_qubits - 1);
        switch (pick) {
          case 0: circuit.h(q); break;
          case 1: circuit.x(q); break;
          case 2: circuit.rz(q, rng.angle()); break;
          case 3: circuit.rx(q, rng.angle()); break;
          case 4: circuit.ry(q, rng.angle()); break;
          case 5: circuit.s(q); break;
          default: {
            if (num_qubits < 2) {
                circuit.t(q);
                break;
            }
            int r = rng.randint(0, num_qubits - 2);
            if (r >= q)
                ++r;
            if (pick == 6)
                circuit.cx(q, r);
            else
                circuit.cz(q, r);
            break;
          }
        }
    }
    return circuit;
}

/** Random symbolic variational circuit with monotone parameters. */
inline Circuit
randomParametrizedCircuit(Rng& rng, int num_qubits, int num_params,
                          int ops_per_param)
{
    Circuit circuit(num_qubits);
    for (int p = 0; p < num_params; ++p) {
        for (int i = 0; i < ops_per_param; ++i) {
            const int q = rng.randint(0, num_qubits - 1);
            const int pick = rng.randint(0, 3);
            if (pick == 0 && num_qubits >= 2) {
                int r = rng.randint(0, num_qubits - 2);
                if (r >= q)
                    ++r;
                circuit.cx(q, r);
            } else if (pick == 1) {
                circuit.h(q);
            } else {
                circuit.rx(q, rng.angle());
            }
        }
        const int q = rng.randint(0, num_qubits - 1);
        circuit.rz(q, ParamExpr::theta(p, rng.uniform(0.5, 2.0)));
    }
    return circuit;
}

} // namespace qpc::testutil

#endif // QPC_TESTS_TESTUTIL_H
