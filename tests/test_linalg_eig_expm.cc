#include <gtest/gtest.h>

#include <cmath>

#include "linalg/eig.h"
#include "linalg/expm.h"
#include "linalg/random_unitary.h"
#include "linalg/su2.h"
#include "testutil.h"

namespace {

using namespace qpc;
using namespace qpc::testutil;

TEST(Eig, PauliZ)
{
    const EigResult eig = eigHermitian(pauliZ());
    EXPECT_NEAR(eig.values[0], -1.0, 1e-12);
    EXPECT_NEAR(eig.values[1], 1.0, 1e-12);
}

TEST(Eig, PauliXEigenvectors)
{
    const EigResult eig = eigHermitian(pauliX());
    // Reconstruct A = V diag V^dag.
    CMatrix d(2, 2);
    d(0, 0) = eig.values[0];
    d(1, 1) = eig.values[1];
    const CMatrix rebuilt = eig.vectors * d * eig.vectors.dagger();
    EXPECT_TRUE(rebuilt.approxEqual(pauliX(), 1e-10));
}

/** Random Hermitian reconstruction across dimensions. */
class EigSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(EigSweep, ReconstructsRandomHermitian)
{
    const int dim = GetParam();
    Rng rng(100 + dim);
    for (int trial = 0; trial < 5; ++trial) {
        const CMatrix u = haarUnitary(dim, rng);
        CMatrix h = u + u.dagger();   // Hermitian
        const EigResult eig = eigHermitian(h);

        EXPECT_TRUE(eig.vectors.isUnitary(1e-8));
        for (size_t i = 1; i < eig.values.size(); ++i)
            EXPECT_LE(eig.values[i - 1], eig.values[i] + 1e-12);

        CMatrix d(dim, dim);
        for (int i = 0; i < dim; ++i)
            d(i, i) = eig.values[i];
        const CMatrix rebuilt =
            eig.vectors * d * eig.vectors.dagger();
        EXPECT_LT(rebuilt.maxAbsDiff(h), 1e-8);
    }
}

INSTANTIATE_TEST_SUITE_P(Dims, EigSweep,
                         ::testing::Values(2, 3, 4, 8, 16));

TEST(Eig, DegenerateSpectrum)
{
    // diag(1, 1, 2) with a rotation: eigenvalues {1, 1, 2}.
    Rng rng(11);
    const CMatrix u = haarUnitary(3, rng);
    CMatrix d(3, 3);
    d(0, 0) = 1.0;
    d(1, 1) = 1.0;
    d(2, 2) = 2.0;
    const CMatrix h = u * d * u.dagger();
    const EigResult eig = eigHermitian(h);
    EXPECT_NEAR(eig.values[0], 1.0, 1e-9);
    EXPECT_NEAR(eig.values[1], 1.0, 1e-9);
    EXPECT_NEAR(eig.values[2], 2.0, 1e-9);
}

TEST(Expm, ZeroGivesIdentity)
{
    const CMatrix z = CMatrix::zeros(4, 4);
    EXPECT_TRUE(expmGeneral(z).approxEqual(CMatrix::identity(4),
                                           1e-12));
}

TEST(Expm, HermitianGivesRotations)
{
    // exp(-i theta X / 2) = Rx(theta).
    for (double theta : {0.3, 1.0, 2.5, -1.7}) {
        const CMatrix gen = pauliX();
        const CMatrix u =
            expmHermitian(gen, Complex{0.0, -theta / 2.0});
        EXPECT_TRUE(u.approxEqual(rxMatrix(theta), 1e-10))
            << "theta " << theta;
    }
}

TEST(Expm, GeneralMatchesHermitianPath)
{
    Rng rng(12);
    const CMatrix u = haarUnitary(4, rng);
    CMatrix h = u + u.dagger();
    const CMatrix via_eig = expmHermitian(h, Complex{0.0, -0.37});
    const CMatrix via_taylor = expmGeneral(h * Complex{0.0, -0.37});
    EXPECT_LT(via_eig.maxAbsDiff(via_taylor), 1e-9);
}

TEST(Expm, ExponentialOfHermitianIsUnitary)
{
    Rng rng(13);
    for (int trial = 0; trial < 5; ++trial) {
        const CMatrix u = haarUnitary(8, rng);
        CMatrix h = u + u.dagger();
        const CMatrix e = expmHermitian(h, Complex{0.0, -1.0});
        EXPECT_TRUE(e.isUnitary(1e-9));
    }
}

TEST(SimultaneousDiag, CommutingPair)
{
    // P, S built from a shared real orthogonal eigenbasis commute.
    Rng rng(14);
    CMatrix q(4, 4);
    {
        // Random rotation built from Givens rotations (real).
        q = CMatrix::identity(4);
        for (int a = 0; a < 4; ++a) {
            for (int b = a + 1; b < 4; ++b) {
                const double t = rng.angle();
                CMatrix g = CMatrix::identity(4);
                g(a, a) = std::cos(t);
                g(b, b) = std::cos(t);
                g(a, b) = -std::sin(t);
                g(b, a) = std::sin(t);
                q = q * g;
            }
        }
    }
    CMatrix dp(4, 4), ds(4, 4);
    for (int i = 0; i < 4; ++i) {
        dp(i, i) = rng.uniform(-2.0, 2.0);
        ds(i, i) = rng.uniform(-2.0, 2.0);
    }
    const CMatrix p = q * dp * q.transpose();
    const CMatrix s = q * ds * q.transpose();

    CMatrix shared;
    std::vector<double> pd, sd;
    simultaneousDiagonalize(p, s, shared, pd, sd);
    const CMatrix rp = shared.transpose() * p * shared;
    const CMatrix rs = shared.transpose() * s * shared;
    for (int i = 0; i < 4; ++i) {
        for (int j = 0; j < 4; ++j) {
            if (i == j)
                continue;
            EXPECT_NEAR(std::abs(rp(i, j)), 0.0, 1e-7);
            EXPECT_NEAR(std::abs(rs(i, j)), 0.0, 1e-7);
        }
    }
}

} // namespace
