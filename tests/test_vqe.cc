#include <gtest/gtest.h>

#include <cmath>

#include "linalg/expm.h"
#include "sim/statevector.h"
#include "testutil.h"
#include "vqe/hamiltonian.h"
#include "vqe/uccsd.h"
#include "vqe/vqedriver.h"

namespace {

using namespace qpc;
using namespace qpc::testutil;

TEST(Molecule, Table2Registry)
{
    const auto& specs = vqeBenchmarks();
    ASSERT_EQ(specs.size(), 5u);
    EXPECT_EQ(specs[0].name, "H2");
    EXPECT_EQ(specs[0].numQubits, 2);
    EXPECT_EQ(specs[0].numParams, 3);
    EXPECT_EQ(specs[4].name, "H2O");
    EXPECT_EQ(specs[4].numQubits, 10);
    EXPECT_EQ(specs[4].numParams, 92);
    EXPECT_EQ(moleculeByName("NaH").numQubits, 8);
}

/** The ansatz generator must hit Table 2 exactly for every molecule. */
class UccsdSweep
    : public ::testing::TestWithParam<int>
{
};

TEST_P(UccsdSweep, WidthParamsAndStructure)
{
    const MoleculeSpec& spec = vqeBenchmarks()[GetParam()];
    const Circuit ansatz = buildUccsdAnsatz(spec);
    EXPECT_EQ(ansatz.numQubits(), spec.numQubits);
    EXPECT_EQ(ansatz.numParams(), spec.numParams);
    EXPECT_TRUE(isParamMonotone(ansatz));

    // Only Rz gates carry parameters (Section 6's structure).
    for (const GateOp& op : ansatz.ops()) {
        if (op.paramIndex() >= 0) {
            EXPECT_EQ(op.kind, GateKind::Rz) << op.str();
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Molecules, UccsdSweep,
                         ::testing::Range(0, 5));

TEST(Uccsd, ParametrizedFractionMatchesPaper)
{
    // Section 6: Rz(theta_i) gates are 5-8% of UCCSD gate counts.
    for (const char* name : {"BeH2", "NaH", "H2O"}) {
        const Circuit ansatz =
            buildUccsdAnsatz(moleculeByName(name));
        const double fraction = ansatz.parametrizedFraction();
        EXPECT_GT(fraction, 0.02) << name;
        EXPECT_LT(fraction, 0.12) << name;
    }
}

TEST(Uccsd, OptimizationPreservesParamsAndMonotonicity)
{
    for (const char* name : {"H2", "LiH", "BeH2"}) {
        const MoleculeSpec& spec = moleculeByName(name);
        const Circuit opt = buildOptimizedUccsd(spec);
        EXPECT_EQ(opt.numParams(), spec.numParams) << name;
        EXPECT_TRUE(isParamMonotone(opt)) << name;
    }
}

TEST(PauliEvolution, MatchesMatrixExponentialSingleString)
{
    // exp(-i theta/2 P) circuits vs the dense exponential, across
    // representative strings including Y and Z chains.
    Rng rng(91);
    const struct
    {
        const char* paulis;
        double theta;
    } cases[] = {
        {"XY", 0.8},   {"YX", -1.2}, {"ZZ", 0.5},  {"XX", 2.1},
        {"XYZ", 0.7},  {"ZYX", 1.9}, {"YZZY", -0.9},
        {"XZII", 1.1}, {"IYIX", 0.4},
    };
    for (const auto& test : cases) {
        const std::string paulis = test.paulis;
        const int n = static_cast<int>(paulis.size());
        Circuit circuit(n);
        appendPauliEvolution(circuit, paulis,
                             ParamExpr::constant(test.theta));
        const CMatrix realized = circuitUnitary(circuit);

        PauliHamiltonian h(n);
        h.add(1.0, paulis);
        const CMatrix expected = expmGeneral(
            h.toMatrix() * Complex{0.0, -test.theta / 2.0});
        EXPECT_TRUE(sameUpToPhase(expected, realized, 1e-8))
            << paulis << " theta " << test.theta;
    }
}

TEST(PauliEvolution, IdentityStringIsNoOp)
{
    Circuit circuit(2);
    appendPauliEvolution(circuit, "II", ParamExpr::constant(0.7));
    EXPECT_TRUE(circuit.empty());
}

TEST(Hamiltonian, H2GroundEnergyMatchesLiterature)
{
    const PauliHamiltonian h2 = h2Hamiltonian();
    EXPECT_NEAR(h2.groundStateEnergy(), -1.8572750302023786, 1e-6);
}

TEST(Hamiltonian, SyntheticIsDeterministicAndHermitianStructured)
{
    const PauliHamiltonian a = syntheticMolecularHamiltonian(4, 7);
    const PauliHamiltonian b = syntheticMolecularHamiltonian(4, 7);
    ASSERT_EQ(a.terms().size(), b.terms().size());
    for (size_t i = 0; i < a.terms().size(); ++i) {
        EXPECT_EQ(a.terms()[i].paulis, b.terms()[i].paulis);
        EXPECT_NEAR(a.terms()[i].coeff, b.terms()[i].coeff, 1e-12);
    }
}

TEST(VqeDriver, H2ReachesGroundState)
{
    const MoleculeSpec& spec = moleculeByName("H2");
    const Circuit ansatz = buildOptimizedUccsd(spec);
    VqeRunOptions options;
    options.optimizer.maxIterations = 600;
    const VqeResult result =
        runVqe(ansatz, h2Hamiltonian(), options);
    EXPECT_NEAR(result.exactGroundEnergy, -1.857275, 1e-5);
    EXPECT_NEAR(result.energy, result.exactGroundEnergy, 2e-3);
    EXPECT_GT(result.iterations, 10);
}

TEST(VqeDriver, EnergyNeverBelowExactGround)
{
    const MoleculeSpec& spec = moleculeByName("H2");
    const Circuit ansatz = buildOptimizedUccsd(spec);
    const VqeResult result = runVqe(ansatz, h2Hamiltonian());
    EXPECT_GE(result.energy, result.exactGroundEnergy - 1e-9);
}

// Regression for the parallel-optimizer iteration semantics: the
// refinetrigger's step-norm gate and cooldown key off the onIteration
// stream, so adaptive-grid refinement must fire at the same
// iterations — and produce the same grid, served angles, and energy —
// no matter how many workers evaluate the simplex.
TEST(VqeDriver, AdaptiveRefinementIdenticalAcrossOptimizerThreads)
{
    const MoleculeSpec& spec = moleculeByName("H2");
    const Circuit ansatz = buildOptimizedUccsd(spec);
    const PauliHamiltonian hamiltonian = h2Hamiltonian();

    struct Run
    {
        VqeResult result;
        std::vector<std::pair<int, double>> stream; ///< (iter, step).
    };
    auto run = [&](int optimizer_threads) {
        Run out;
        CompileServiceOptions service;
        service.numWorkers = 2;
        service.quantization.enabled = true;
        service.quantization.adaptive = true;
        service.quantization.bins = 32;
        service.quantization.splitVisitThreshold = 4;

        VqeRunOptions options;
        options.optimizer.maxIterations = 150;
        options.optimizer.onIteration =
            [&](const NelderMeadIterationInfo& info) {
                out.stream.emplace_back(info.iteration, info.stepNorm);
            };
        options.optimizerThreads = optimizer_threads;
        options.serviceOptions = service;
        out.result = runVqe(ansatz, hamiltonian, options);
        return out;
    };

    // Baseline at one worker: pooled runs speculate the expansion
    // point, and under quantized serving each speculative evaluation
    // is a real serve that bumps adaptive visit counters — so the
    // speculation-free serial run is a *different workload*, not a
    // different schedule. What must be invariant is the worker count:
    // 1, 2, and 8 workers make exactly the same objective calls and
    // must land on exactly the same grid, iterations, and energy.
    const Run serial = run(1);
    // The coarse grid must actually have refined, or this proves
    // nothing about trigger timing.
    ASSERT_GT(serial.result.quantRefineRounds, 0);

    for (int workers : {2, 8}) {
        const Run pooled = run(workers);
        // Same refinement activity...
        EXPECT_EQ(pooled.result.quantRefineRounds,
                  serial.result.quantRefineRounds)
            << workers << " workers";
        EXPECT_EQ(pooled.result.quantSplits, serial.result.quantSplits);
        // ...the same iteration stream feeding the trigger gate...
        ASSERT_EQ(pooled.stream.size(), serial.stream.size())
            << workers << " workers";
        for (size_t i = 0; i < serial.stream.size(); ++i) {
            EXPECT_EQ(pooled.stream[i].first, serial.stream[i].first);
            EXPECT_EQ(pooled.stream[i].second,
                      serial.stream[i].second)
                << workers << " workers, iteration " << i;
        }
        // ...and a bit-identical answer.
        EXPECT_EQ(pooled.result.energy, serial.result.energy);
        ASSERT_EQ(pooled.result.bestParams.size(),
                  serial.result.bestParams.size());
        for (size_t i = 0; i < serial.result.bestParams.size(); ++i)
            EXPECT_EQ(pooled.result.bestParams[i],
                      serial.result.bestParams[i]);
        EXPECT_EQ(pooled.result.iterations, serial.result.iterations);
        EXPECT_EQ(pooled.result.finalQuantErrorBound,
                  serial.result.finalQuantErrorBound);
    }
}

} // namespace
