#include <gtest/gtest.h>

#include <cmath>

#include "partial/compiler.h"
#include "partial/flexible.h"
#include "partial/strict.h"
#include "qaoa/qaoacircuit.h"
#include "sim/statevector.h"
#include "testutil.h"
#include "vqe/uccsd.h"

namespace {

using namespace qpc;
using namespace qpc::testutil;

Circuit
exampleVariationalCircuit()
{
    // The Figure 3a shape: fixed gates with interspersed Rz(theta_i),
    // theta order [t0, t0, t1, t2].
    Circuit c(3);
    c.h(0);
    c.cx(0, 1);
    c.rz(1, ParamExpr::theta(0));
    c.cx(1, 2);
    c.h(2);
    c.rz(2, ParamExpr::theta(0));
    c.cx(0, 1);
    c.rz(0, ParamExpr::theta(1));
    c.h(1);
    c.rz(1, ParamExpr::theta(2));
    c.x(2);
    return c;
}

TEST(Strict, AlternationAndCounts)
{
    const Circuit c = exampleVariationalCircuit();
    const StrictPartition p = strictPartition(c);
    EXPECT_EQ(p.numParamGates(), 4);
    EXPECT_GE(p.numFixedSegments(), 3);
    for (const StrictSegment& s : p.segments) {
        if (s.fixed) {
            EXPECT_TRUE(s.circuit.isParamFree());
            EXPECT_FALSE(s.circuit.empty());
        } else {
            EXPECT_EQ(s.circuit.size(), 1);
            EXPECT_GE(s.circuit.ops()[0].paramIndex(), 0);
        }
    }
}

TEST(Strict, ReassemblesExactly)
{
    const Circuit c = exampleVariationalCircuit();
    const StrictPartition p = strictPartition(c);
    EXPECT_TRUE(circuitEquals(p.reassemble(c.numQubits()), c));
}

TEST(Strict, ReassemblesRandomVariationalCircuits)
{
    Rng rng(81);
    for (int trial = 0; trial < 8; ++trial) {
        const Circuit c =
            randomParametrizedCircuit(rng, 4, 6, 5);
        const StrictPartition p = strictPartition(c);
        EXPECT_TRUE(circuitEquals(p.reassemble(4), c));
        EXPECT_EQ(p.numParamGates(), 6);
    }
}

TEST(Strict, ParamFreeCircuitIsOneFixedBlock)
{
    Rng rng(82);
    const Circuit c = randomCircuit(rng, 3, 20);
    const StrictPartition p = strictPartition(c);
    EXPECT_EQ(p.segments.size(), 1u);
    EXPECT_TRUE(p.segments[0].fixed);
    EXPECT_TRUE(circuitEquals(p.reassemble(3), c));
    EXPECT_EQ(p.maxFixedDepth(), c.size());
}

TEST(Strict, EmptyCircuitPartitionsToNothing)
{
    const Circuit c(4);
    const StrictPartition p = strictPartition(c);
    EXPECT_TRUE(p.segments.empty());
    EXPECT_EQ(p.numFixedSegments(), 0);
    EXPECT_EQ(p.numParamGates(), 0);
    EXPECT_EQ(p.maxFixedDepth(), 0);
    const Circuit back = p.reassemble(4);
    EXPECT_TRUE(back.empty());
    EXPECT_EQ(back.numQubits(), 4);
}

TEST(Strict, AllParametrizedCircuitHasNoFixedSegments)
{
    // Back-to-back parametrized rotations: every segment is a
    // single-gate non-fixed segment and reassembly is exact.
    Circuit c(2);
    c.rz(0, ParamExpr::theta(0));
    c.rx(1, ParamExpr::theta(1));
    c.rz(1, ParamExpr::theta(2, -0.5));
    const StrictPartition p = strictPartition(c);
    EXPECT_EQ(p.segments.size(), 3u);
    EXPECT_EQ(p.numFixedSegments(), 0);
    EXPECT_EQ(p.numParamGates(), 3);
    EXPECT_EQ(p.maxFixedDepth(), 0);
    EXPECT_TRUE(circuitEquals(p.reassemble(2), c));
}

TEST(Strict, SingleOpCircuits)
{
    // One fixed gate: one Fixed segment.
    Circuit fixed(2);
    fixed.cx(0, 1);
    const StrictPartition pf = strictPartition(fixed);
    EXPECT_EQ(pf.segments.size(), 1u);
    EXPECT_TRUE(pf.segments[0].fixed);
    EXPECT_TRUE(circuitEquals(pf.reassemble(2), fixed));

    // One parametrized gate: one non-fixed segment, nothing else.
    Circuit param(1);
    param.rz(0, ParamExpr::theta(0));
    const StrictPartition pp = strictPartition(param);
    EXPECT_EQ(pp.segments.size(), 1u);
    EXPECT_FALSE(pp.segments[0].fixed);
    EXPECT_TRUE(circuitEquals(pp.reassemble(1), param));
}

TEST(Strict, LeadingAndTrailingParamGatesRoundTrip)
{
    // Parametrized gates at both ends: no fixed run is silently
    // dropped at either boundary.
    Circuit c(2);
    c.rz(0, ParamExpr::theta(0));
    c.h(0);
    c.cx(0, 1);
    c.rz(1, ParamExpr::theta(1));
    const StrictPartition p = strictPartition(c);
    ASSERT_EQ(p.segments.size(), 3u);
    EXPECT_FALSE(p.segments[0].fixed);
    EXPECT_TRUE(p.segments[1].fixed);
    EXPECT_FALSE(p.segments[2].fixed);
    EXPECT_TRUE(circuitEquals(p.reassemble(2), c));
}

TEST(Flexible, SingleParamPerSlice)
{
    const Circuit c = exampleVariationalCircuit();
    const FlexiblePartition p = flexibleSlices(c);
    ASSERT_EQ(p.slices.size(), 3u);
    EXPECT_EQ(p.slices[0].paramIndex, 0);
    EXPECT_EQ(p.slices[1].paramIndex, 1);
    EXPECT_EQ(p.slices[2].paramIndex, 2);
    for (const FlexibleSlice& s : p.slices)
        EXPECT_LE(s.circuit.paramsUsed().size(), 1u);
}

TEST(Flexible, ReassemblesExactly)
{
    const Circuit c = exampleVariationalCircuit();
    const FlexiblePartition p = flexibleSlices(c);
    EXPECT_TRUE(circuitEquals(p.reassemble(c.numQubits()), c));
}

TEST(Flexible, SlicesAreDeeperThanStrictFixedBlocks)
{
    // The Section 7.1 motivation: flexible slices absorb the fixed
    // gates around each parameter.
    const Circuit qaoa = buildQaoaCircuit(cliqueGraph(4), 3);
    const StrictPartition strict = strictPartition(qaoa);
    const FlexiblePartition flex = flexibleSlices(qaoa);
    EXPECT_GT(flex.maxSliceDepth(), strict.maxFixedDepth());
}

TEST(Flexible, TrailingFixedOpsLandInLastSlice)
{
    Circuit c(2);
    c.rz(0, ParamExpr::theta(0));
    c.h(1);
    c.cx(0, 1);
    const FlexiblePartition p = flexibleSlices(c);
    ASSERT_EQ(p.slices.size(), 1u);
    EXPECT_EQ(p.slices[0].circuit.size(), 3);
}

TEST(Flexible, QaoaSliceCountIs2p)
{
    for (int p = 1; p <= 4; ++p) {
        const Circuit c = buildQaoaCircuit(cliqueGraph(4), p);
        const FlexiblePartition part = flexibleSlices(c);
        EXPECT_EQ(static_cast<int>(part.slices.size()), 2 * p);
    }
}

TEST(RoundTrip, StrictMatchesFullUnitaryAcrossBindings)
{
    Rng rng(87);
    const Circuit c = randomParametrizedCircuit(rng, 4, 5, 4);
    const StrictPartition p = strictPartition(c);
    const Circuit reassembled = p.reassemble(c.numQubits());
    for (int trial = 0; trial < 3; ++trial) {
        const std::vector<double> theta = rng.angles(c.numParams());
        const CMatrix full = circuitUnitary(c.bind(theta));
        const CMatrix partial =
            circuitUnitary(reassembled.bind(theta));
        EXPECT_LT(phaseInvariantDistance(partial, full), 1e-8)
            << "binding " << trial;
    }
}

TEST(RoundTrip, FlexibleMatchesFullUnitaryAcrossBindings)
{
    Rng rng(88);
    const Circuit c = randomParametrizedCircuit(rng, 3, 6, 4);
    const FlexiblePartition p = flexibleSlices(c);
    const Circuit reassembled = p.reassemble(c.numQubits());
    for (int trial = 0; trial < 3; ++trial) {
        const std::vector<double> theta = rng.angles(c.numParams());
        const CMatrix full = circuitUnitary(c.bind(theta));
        const CMatrix partial =
            circuitUnitary(reassembled.bind(theta));
        EXPECT_LT(phaseInvariantDistance(partial, full), 1e-8)
            << "binding " << trial;
    }
}

TEST(RoundTrip, SliceUnitaryProductMatchesFullUnitary)
{
    // Stronger than reassembly: multiplying the per-slice unitaries in
    // program order must reproduce the full circuit unitary, which is
    // exactly what concatenating per-slice GRAPE pulses relies on.
    Rng rng(89);
    const Circuit c = randomParametrizedCircuit(rng, 3, 4, 3);
    const FlexiblePartition p = flexibleSlices(c);
    for (int trial = 0; trial < 3; ++trial) {
        const std::vector<double> theta = rng.angles(c.numParams());
        CMatrix product = CMatrix::identity(1 << c.numQubits());
        for (const FlexibleSlice& s : p.slices)
            product = circuitUnitary(s.circuit.bind(theta)) * product;
        const CMatrix full = circuitUnitary(c.bind(theta));
        EXPECT_LT(phaseInvariantDistance(product, full), 1e-8)
            << "binding " << trial;
    }
}

TEST(Compiler, StrategyNamesAndOrder)
{
    EXPECT_EQ(allStrategies().size(), 4u);
    EXPECT_EQ(strategyName(Strategy::GateBased), "Gate-based");
    EXPECT_EQ(strategyName(Strategy::FullGrape), "Full GRAPE");
}

TEST(Compiler, PulseOrderingInvariants)
{
    Rng rng(83);
    const Circuit circuit = buildQaoaCircuit(cliqueGraph(4), 2);
    PartialCompiler compiler(circuit);
    const std::vector<double> theta = rng.angles(4);
    const std::vector<CompileReport> r = compiler.compileAll(theta);

    const double gate = r[0].pulseNs;
    const double strict_ns = r[1].pulseNs;
    const double flex = r[2].pulseNs;
    const double grape = r[3].pulseNs;
    EXPECT_GT(gate, 0.0);
    EXPECT_LE(strict_ns, gate + 1e-9);
    EXPECT_LE(grape, flex + 1e-9);
    EXPECT_LE(grape, gate + 1e-9);
}

TEST(Compiler, LatencyOrderingInvariants)
{
    Rng rng(84);
    const Circuit circuit = buildQaoaCircuit(cliqueGraph(4), 2);
    PartialCompiler compiler(circuit);
    const std::vector<double> theta = rng.angles(4);
    const std::vector<CompileReport> r = compiler.compileAll(theta);

    // Lookup strategies are effectively instant at runtime.
    EXPECT_LT(r[0].runtimeSeconds, 1e-3);
    EXPECT_LT(r[1].runtimeSeconds, 1e-3);
    // Flexible pays real runtime latency, but far less than full.
    EXPECT_GT(r[2].runtimeSeconds, r[1].runtimeSeconds);
    EXPECT_GT(r[3].runtimeSeconds, 10.0 * r[2].runtimeSeconds);
    // Pre-compute: strict and flexible pay it; the others do not.
    EXPECT_GT(r[1].precomputeSeconds, 0.0);
    EXPECT_GT(r[2].precomputeSeconds, 0.0);
    EXPECT_EQ(r[0].precomputeSeconds, 0.0);
    EXPECT_EQ(r[3].precomputeSeconds, 0.0);
}

TEST(Compiler, OrderingsHoldAcrossBindings)
{
    Rng rng(85);
    const MoleculeSpec& lih = moleculeByName("LiH");
    const Circuit circuit = buildOptimizedUccsd(lih);
    PartialCompiler compiler(circuit);
    for (int trial = 0; trial < 4; ++trial) {
        const std::vector<double> theta =
            rng.angles(circuit.numParams());
        const std::vector<CompileReport> r =
            compiler.compileAll(theta);
        EXPECT_LE(r[1].pulseNs, r[0].pulseNs + 1e-9);
        EXPECT_LE(r[3].pulseNs, r[2].pulseNs + 1e-9);
        EXPECT_LE(r[3].pulseNs, r[1].pulseNs + 1e-9);
    }
}

TEST(Compiler, GrapeProblemCountsReported)
{
    const Circuit circuit = buildQaoaCircuit(cliqueGraph(4), 2);
    PartialCompiler compiler(circuit);
    Rng rng(86);
    const std::vector<double> theta = rng.angles(4);
    EXPECT_EQ(compiler.compile(Strategy::GateBased, theta)
                  .grapeProblems,
              0);
    EXPECT_GT(compiler.compile(Strategy::StrictPartial, theta)
                  .grapeProblems,
              0);
    EXPECT_GT(compiler.compile(Strategy::FullGrape, theta)
                  .grapeProblems,
              0);
}

TEST(Compiler, PulseTimeRespondsToBindings)
{
    // Small angles yield shorter GRAPE pulses than large angles —
    // the fractional-gate effect end to end.
    const Circuit circuit = buildQaoaCircuit(cliqueGraph(4), 1);
    PartialCompiler compiler(circuit);
    const CompileReport small = compiler.compile(
        Strategy::FullGrape, {0.05, 0.05});
    const CompileReport large = compiler.compile(
        Strategy::FullGrape, {2.8, 2.9});
    EXPECT_LT(small.pulseNs, large.pulseNs);
}

} // namespace
