#include <gtest/gtest.h>

#include <cmath>

#include "grape/grape.h"
#include "grape/mintime.h"
#include "linalg/su2.h"
#include "pulse/evolve.h"
#include "pulse/library.h"

namespace {

using namespace qpc;

TEST(GrapeSmoke, GradientMatchesFiniteDifferences)
{
    DeviceModel device = DeviceModel::gmonLine(1);
    GrapeOptions options;
    options.dt = 0.1;
    const double err = grapeGradientCheck(device, hMatrix(), 2.0,
                                          options, 20);
    EXPECT_LT(err, 2e-3);
}

TEST(GrapeSmoke, GradientMatchesFiniteDifferencesTwoQubit)
{
    DeviceModel device = DeviceModel::gmonLine(2);
    GrapeOptions options;
    options.dt = 0.1;
    const double err = grapeGradientCheck(
        device, gateMatrix(GateKind::CX), 5.0, options, 20);
    EXPECT_LT(err, 2e-3);
}

TEST(GrapeSmoke, FindsHadamardPulse)
{
    DeviceModel device = DeviceModel::gmonLine(1);
    GrapeOptions options;
    options.dt = 0.1;
    options.maxIterations = 400;
    options.hyper = AdamHyperParams{0.1, 0.999};
    GrapeResult run = runGrapeFixedTime(device, hMatrix(), 3.0, options);
    EXPECT_TRUE(run.converged) << "final fidelity " << run.fidelity;

    // Re-simulate the pulse independently and confirm the fidelity.
    const CMatrix realized = evolveUnitary(device, run.pulse);
    EXPECT_GT(traceFidelity(hMatrix(), realized), 0.999);
}

TEST(GrapeSmoke, PulseLibraryHadamardIsExact)
{
    DeviceModel device = DeviceModel::gmonLine(1);
    GatePulseLibrary library(device, 0.01);
    const CMatrix realized = evolveUnitary(device, library.h(0));
    EXPECT_GT(traceFidelity(hMatrix(), realized), 0.9999);
}

TEST(GrapeSmoke, PulseLibraryCxIsExact)
{
    DeviceModel device = DeviceModel::gmonLine(2);
    GatePulseLibrary library(device, 0.01);
    const CMatrix realized = evolveUnitary(device, library.cx(0, 1));
    EXPECT_GT(traceFidelity(gateMatrix(GateKind::CX), realized), 0.999);
}

} // namespace
