#include <gtest/gtest.h>

#include <string>

#include "bench/benchcommon.h"
#include "sim/statevector.h"
#include "testutil.h"
#include "transpile/mapping.h"
#include "transpile/passes.h"

namespace {

using namespace qpc;
using namespace qpc::testutil;

// prepareCircuit is optimize -> map -> re-optimize; rerunning the same
// deterministic pipeline recovers the final layout it used.
std::vector<int>
layoutUsedByPrepare(Circuit circuit, const Topology& topology)
{
    optimizeCircuit(circuit);
    const MappingResult mapped = mapToTopology(circuit, topology);
    return mapped.finalLayout;
}

TEST(PrepareCircuit, PreservesUnitaryOnLine3)
{
    Rng rng(301);
    const Topology line = Topology::line(3);
    for (int trial = 0; trial < 6; ++trial) {
        const Circuit circuit = randomCircuit(rng, 3, 25);
        const Circuit prepared = bench::prepareCircuit(circuit, line);
        const CMatrix perm =
            layoutPermutation(layoutUsedByPrepare(circuit, line));
        EXPECT_TRUE(sameUpToPhase(circuitUnitary(prepared),
                                  perm * circuitUnitary(circuit),
                                  1e-8))
            << "trial " << trial;
    }
}

TEST(PrepareCircuit, PreservesUnitaryOnLine4)
{
    Rng rng(302);
    const Topology line = Topology::line(4);
    for (int trial = 0; trial < 4; ++trial) {
        const Circuit circuit = randomCircuit(rng, 4, 30);
        const Circuit prepared = bench::prepareCircuit(circuit, line);
        const CMatrix perm =
            layoutPermutation(layoutUsedByPrepare(circuit, line));
        EXPECT_TRUE(sameUpToPhase(circuitUnitary(prepared),
                                  perm * circuitUnitary(circuit),
                                  1e-8))
            << "trial " << trial;
    }
}

TEST(PrepareCircuit, OutputRespectsTopology)
{
    Rng rng(303);
    const Topology line = Topology::line(4);
    const Circuit circuit = randomCircuit(rng, 4, 40);
    const Circuit prepared = bench::prepareCircuit(circuit, line);
    for (const GateOp& op : prepared.ops()) {
        if (op.arity() == 2) {
            EXPECT_TRUE(line.connected(op.q0, op.q1)) << op.str();
        }
    }
}

TEST(PrepareCircuit, CliqueMappingKeepsQubitsInPlace)
{
    // All-to-all connectivity: mapping is a no-op, so prepare reduces
    // to plain optimization and the unitary matches with no layout
    // permutation.
    Rng rng(304);
    const Topology clique = Topology::clique(3);
    const Circuit circuit = randomCircuit(rng, 3, 20);
    const Circuit prepared = bench::prepareCircuit(circuit, clique);
    EXPECT_TRUE(sameUpToPhase(circuitUnitary(prepared),
                              circuitUnitary(circuit), 1e-8));
}

TEST(BenchmarkTopology, GridForEvenSixPlusLineBelow)
{
    EXPECT_EQ(bench::benchmarkTopology(4).numQubits(), 4);
    EXPECT_EQ(bench::benchmarkTopology(4).edges().size(), 3u);

    // 2 x 3 grid: 6 qubits, 3 horizontal + 2x2 vertical... exactly 7
    // edges; a 6-line would have 5.
    const Topology grid6 = bench::benchmarkTopology(6);
    EXPECT_EQ(grid6.numQubits(), 6);
    EXPECT_EQ(grid6.edges().size(), 7u);

    // Odd n >= 6 falls back to a line.
    EXPECT_EQ(bench::benchmarkTopology(7).edges().size(), 6u);
}

TEST(QaoaBenchmarkGraph, FamiliesAndDeterminism)
{
    const Graph reg = bench::qaoaBenchmarkGraph("3reg", 6, 7);
    EXPECT_EQ(reg.numNodes, 6);
    EXPECT_EQ(reg.edges.size(), 9u); // 3-regular: 3n/2 edges.

    const Graph a = bench::qaoaBenchmarkGraph("erdos", 6, 11);
    const Graph b = bench::qaoaBenchmarkGraph("erdos", 6, 11);
    EXPECT_EQ(a.edges, b.edges);
}

TEST(NestedAngles, SharedPrefixAcrossCounts)
{
    const std::vector<double> four = bench::nestedAngles(4, 21);
    const std::vector<double> eight = bench::nestedAngles(8, 21);
    ASSERT_EQ(four.size(), 4u);
    ASSERT_EQ(eight.size(), 8u);
    for (int i = 0; i < 4; ++i)
        EXPECT_DOUBLE_EQ(four[i], eight[i]);
}

} // namespace
