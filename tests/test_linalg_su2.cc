#include <gtest/gtest.h>

#include <cmath>

#include "linalg/random_unitary.h"
#include "linalg/su2.h"
#include "testutil.h"

namespace {

using namespace qpc;
using namespace qpc::testutil;

const double kPi = 3.14159265358979323846;

TEST(Su2, PauliAlgebra)
{
    // X^2 = Y^2 = Z^2 = I; XY = iZ.
    EXPECT_TRUE((pauliX() * pauliX()).approxEqual(pauliI(), 1e-12));
    EXPECT_TRUE((pauliY() * pauliY()).approxEqual(pauliI(), 1e-12));
    EXPECT_TRUE((pauliZ() * pauliZ()).approxEqual(pauliI(), 1e-12));
    EXPECT_TRUE((pauliX() * pauliY())
                    .approxEqual(pauliZ() * kImag, 1e-12));
}

TEST(Su2, RotationPeriodicity)
{
    // Rx(2 pi) = -I (spinor sign), Rx(4 pi) = I.
    EXPECT_TRUE(rxMatrix(2 * kPi).approxEqual(
        CMatrix::identity(2) * Complex{-1.0, 0.0}, 1e-10));
    EXPECT_TRUE(rxMatrix(4 * kPi).approxEqual(CMatrix::identity(2),
                                              1e-10));
}

TEST(Su2, RotationsCompose)
{
    EXPECT_TRUE((rzMatrix(0.4) * rzMatrix(0.9))
                    .approxEqual(rzMatrix(1.3), 1e-10));
    EXPECT_TRUE((rxMatrix(-0.2) * rxMatrix(0.5))
                    .approxEqual(rxMatrix(0.3), 1e-10));
}

TEST(Su2, XGateIsRxPi)
{
    EXPECT_TRUE(sameUpToPhase(pauliX(), rxMatrix(kPi)));
    EXPECT_TRUE(sameUpToPhase(pauliZ(), rzMatrix(kPi)));
}

TEST(Su2, HadamardDecomposition)
{
    // H = e^{i pi/2} Rz(pi/2) Rx(pi/2) Rz(pi/2).
    const CMatrix h = rzMatrix(kPi / 2) * rxMatrix(kPi / 2) *
                      rzMatrix(kPi / 2) * std::polar(1.0, kPi / 2);
    EXPECT_TRUE(h.approxEqual(hMatrix(), 1e-10));
}

TEST(Su2, EulerOfKnownGates)
{
    const EulerZXZ h = eulerZXZ(hMatrix());
    EXPECT_NEAR(h.beta, kPi / 2, 1e-8);
    EXPECT_NEAR(std::abs(h.alpha), kPi / 2, 1e-8);
    EXPECT_NEAR(std::abs(h.gamma), kPi / 2, 1e-8);

    const EulerZXZ x = eulerZXZ(pauliX());
    EXPECT_NEAR(x.beta, kPi, 1e-8);

    const EulerZXZ id = eulerZXZ(CMatrix::identity(2));
    EXPECT_NEAR(id.beta, 0.0, 1e-8);
}

TEST(Su2, WrapAngle)
{
    EXPECT_NEAR(wrapAngle(0.0), 0.0, 1e-12);
    EXPECT_NEAR(wrapAngle(3 * kPi), kPi, 1e-9);
    EXPECT_NEAR(wrapAngle(-3 * kPi), kPi, 1e-9);
    EXPECT_NEAR(wrapAngle(kPi + 0.1), -kPi + 0.1, 1e-9);
}

/** Haar round-trip sweep: decompose then rebuild. */
class EulerSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(EulerSweep, RoundTrip)
{
    Rng rng(GetParam());
    for (int trial = 0; trial < 25; ++trial) {
        const CMatrix u = haarUnitary(2, rng);
        const EulerZXZ e = eulerZXZ(u);
        EXPECT_GE(e.beta, -1e-12);
        EXPECT_LE(e.beta, kPi + 1e-12);
        const CMatrix rebuilt = eulerZXZMatrix(e);
        EXPECT_LT(rebuilt.maxAbsDiff(u), 1e-8);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EulerSweep,
                         ::testing::Values(1, 2, 3, 4));

TEST(Su2, EulerOfDiagonalGates)
{
    // Pure Z rotations must not acquire X content.
    for (double phi : {0.1, 1.0, -2.0, 3.0}) {
        const EulerZXZ e = eulerZXZ(rzMatrix(phi));
        EXPECT_NEAR(e.beta, 0.0, 1e-8) << "phi " << phi;
    }
}

} // namespace
