#include <gtest/gtest.h>

#include <cmath>

#include "linalg/random_unitary.h"
#include "linalg/su2.h"
#include "linalg/weyl.h"
#include "pulse/device.h"
#include "pulse/evolve.h"
#include "pulse/library.h"
#include "pulse/schedule.h"
#include "sim/statevector.h"
#include "testutil.h"

namespace {

using namespace qpc;
using namespace qpc::testutil;

const double kPi = 3.14159265358979323846;

TEST(Device, GmonLineShape)
{
    const DeviceModel dev = DeviceModel::gmonLine(3);
    EXPECT_EQ(dev.dim(), 8);
    EXPECT_EQ(dev.couplings().size(), 2u);
    // charge + flux per qubit plus one coupler per edge.
    EXPECT_EQ(dev.numControls(), 8);
}

TEST(Device, ControlsAreHermitianAndBounded)
{
    for (int levels : {2, 3}) {
        const DeviceModel dev = DeviceModel::gmonLine(2, levels);
        for (const ControlChannel& ch : dev.controls()) {
            EXPECT_TRUE(ch.op.isHermitian(1e-12)) << ch.name;
            EXPECT_GT(ch.maxAmp, 0.0) << ch.name;
        }
    }
}

TEST(Device, AmplitudeAsymmetryIs15x)
{
    const DeviceModel dev = DeviceModel::gmonLine(1);
    const double charge = dev.controls()[0].maxAmp;
    const double flux = dev.controls()[1].maxAmp;
    EXPECT_NEAR(flux / charge, 15.0, 1e-9);
}

TEST(Device, QubitDriftIsZeroQutritAnharmonic)
{
    const DeviceModel qubit = DeviceModel::gmonLine(2, 2);
    EXPECT_NEAR(qubit.drift().maxAbs(), 0.0, 1e-12);
    const DeviceModel qutrit = DeviceModel::gmonLine(1, 3);
    EXPECT_NEAR(qutrit.drift()(2, 2).real(),
                qutrit.limits().anharmonicity, 1e-12);
}

TEST(Device, ComputationalIndices)
{
    const DeviceModel qutrit = DeviceModel::gmonLine(2, 3);
    const std::vector<int> comp = qutrit.computationalIndices();
    // Base-3 digit strings with digits < 2: 00,01,10,11 ->
    // 0, 1, 3, 4.
    ASSERT_EQ(comp.size(), 4u);
    EXPECT_EQ(comp[0], 0);
    EXPECT_EQ(comp[1], 1);
    EXPECT_EQ(comp[2], 3);
    EXPECT_EQ(comp[3], 4);
}

TEST(Device, EmbedUnitaryKeepsLeakageIdentity)
{
    const DeviceModel qutrit = DeviceModel::gmonLine(1, 3);
    const CMatrix embedded = qutrit.embedUnitary(pauliX());
    EXPECT_TRUE(embedded.isUnitary(1e-12));
    EXPECT_NEAR(std::abs(embedded(2, 2) - Complex{1.0, 0.0}), 0.0,
                1e-12);
    EXPECT_NEAR(std::abs(embedded(0, 1) - Complex{1.0, 0.0}), 0.0,
                1e-12);
}

TEST(Schedule, AppendConcatenates)
{
    PulseSchedule a(2, 3, 0.1);
    PulseSchedule b(2, 2, 0.1);
    a.channel(0)[0] = 1.0;
    b.channel(1)[1] = -2.0;
    a.append(b);
    EXPECT_EQ(a.numSamples(), 5);
    EXPECT_NEAR(a.durationNs(), 0.5, 1e-12);
    EXPECT_NEAR(a.channel(1)[4], -2.0, 1e-12);
    EXPECT_NEAR(a.maxAbsSample(), 2.0, 1e-12);
}

TEST(Schedule, RoughnessOfSmoothVsJagged)
{
    PulseSchedule smooth(1, 32, 1.0);
    PulseSchedule jagged(1, 32, 1.0);
    for (int k = 0; k < 32; ++k) {
        smooth.channel(0)[k] = 0.5;
        jagged.channel(0)[k] = (k % 2) ? 1.0 : -1.0;
    }
    EXPECT_NEAR(smooth.roughness(), 0.0, 1e-12);
    EXPECT_GT(jagged.roughness(), 1.0);
}

TEST(Evolve, ZeroPulseIsIdentity)
{
    const DeviceModel dev = DeviceModel::gmonLine(2);
    const PulseSchedule zeros(dev.numControls(), 10, 0.1);
    EXPECT_TRUE(evolveUnitary(dev, zeros)
                    .approxEqual(CMatrix::identity(4), 1e-10));
}

TEST(Evolve, TraceFidelityIsPhaseInvariant)
{
    Rng rng(61);
    const CMatrix u = haarUnitary(4, rng);
    EXPECT_NEAR(traceFidelity(u, u), 1.0, 1e-10);
    EXPECT_NEAR(traceFidelity(u, u * std::polar(1.0, 1.1)), 1.0,
                1e-10);
    EXPECT_LT(traceFidelity(u, haarUnitary(4, rng)), 0.9);
}

TEST(Library, RzPulsesAllAngles)
{
    const DeviceModel dev = DeviceModel::gmonLine(1);
    const GatePulseLibrary lib(dev, 0.01);
    for (double theta : {0.2, -0.7, 2.9, kPi}) {
        const CMatrix realized = evolveUnitary(dev, lib.rz(0, theta));
        EXPECT_GT(traceFidelity(rzMatrix(theta), realized), 0.9999)
            << "theta " << theta;
    }
}

TEST(Library, RxPulsesAllAngles)
{
    const DeviceModel dev = DeviceModel::gmonLine(1);
    const GatePulseLibrary lib(dev, 0.01);
    for (double theta : {0.2, -0.7, 2.9, kPi}) {
        const CMatrix realized = evolveUnitary(dev, lib.rx(0, theta));
        EXPECT_GT(traceFidelity(rxMatrix(theta), realized), 0.9999)
            << "theta " << theta;
    }
}

TEST(Library, PulsesRespectAmplitudeBounds)
{
    const DeviceModel dev = DeviceModel::gmonLine(2);
    const GatePulseLibrary lib(dev, 0.02);
    const PulseSchedule cx = lib.cx(0, 1);
    for (int c = 0; c < dev.numControls(); ++c) {
        const double bound = dev.controls()[c].maxAmp;
        for (double v : cx.channel(c))
            EXPECT_LE(std::abs(v), bound * (1.0 + 1e-9));
    }
}

TEST(Library, XxPulseHasCxClass)
{
    const DeviceModel dev = DeviceModel::gmonLine(2);
    const GatePulseLibrary lib(dev, 0.01);
    const CMatrix realized =
        evolveUnitary(dev, lib.xx(0, 1, -kPi / 4));
    const WeylCoords w = weylCoordinates(realized);
    EXPECT_NEAR(w.c1, kPi / 4, 1e-6);
    EXPECT_NEAR(w.c2, 0.0, 1e-6);
}

TEST(Library, CzAndSwapAreExact)
{
    const DeviceModel dev = DeviceModel::gmonLine(2);
    const GatePulseLibrary lib(dev, 0.01);
    EXPECT_GT(traceFidelity(gateMatrix(GateKind::CZ),
                            evolveUnitary(dev, lib.cz(0, 1))),
              0.999);
    EXPECT_GT(traceFidelity(gateMatrix(GateKind::SWAP),
                            evolveUnitary(dev, lib.swapGate(0, 1))),
              0.998);
}

TEST(Library, CompileCircuitMatchesCircuitUnitary)
{
    const DeviceModel dev = DeviceModel::gmonLine(2);
    const GatePulseLibrary lib(dev, 0.01);
    Circuit c(2);
    c.h(0);
    c.cx(0, 1);
    c.rz(1, 0.7);
    c.ry(0, -0.4);
    const CMatrix target = circuitUnitary(c);
    const CMatrix realized =
        evolveUnitary(dev, lib.compileCircuit(c));
    EXPECT_GT(traceFidelity(target, realized), 0.998);
}

TEST(Evolve, SubspaceFidelityDetectsLeakage)
{
    const DeviceModel qutrit = DeviceModel::gmonLine(1, 3);
    // A pulse driving hard 1<->2 transitions leaks; identity target
    // fidelity on the subspace must drop below 1.
    PulseSchedule pulse(qutrit.numControls(), 50, 0.1);
    for (double& v : pulse.channel(0))
        v = qutrit.limits().chargeMax;
    const CMatrix realized = evolveUnitary(qutrit, pulse);
    const double fid =
        subspaceFidelity(qutrit, CMatrix::identity(2), realized);
    EXPECT_LT(fid, 0.99);
    EXPECT_GE(fid, 0.0);
}

} // namespace
