#include <gtest/gtest.h>

#include <cmath>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <sys/resource.h>
#include <unistd.h>

#include "linalg/random_unitary.h"
#include "linalg/su2.h"
#include "linalg/weyl.h"
#include "pulse/device.h"
#include "pulse/evolve.h"
#include "pulse/library.h"
#include "pulse/schedule.h"
#include "pulse/serialize.h"
#include "sim/statevector.h"
#include "testutil.h"

namespace {

using namespace qpc;
using namespace qpc::testutil;

const double kPi = 3.14159265358979323846;

TEST(Device, GmonLineShape)
{
    const DeviceModel dev = DeviceModel::gmonLine(3);
    EXPECT_EQ(dev.dim(), 8);
    EXPECT_EQ(dev.couplings().size(), 2u);
    // charge + flux per qubit plus one coupler per edge.
    EXPECT_EQ(dev.numControls(), 8);
}

TEST(Device, ControlsAreHermitianAndBounded)
{
    for (int levels : {2, 3}) {
        const DeviceModel dev = DeviceModel::gmonLine(2, levels);
        for (const ControlChannel& ch : dev.controls()) {
            EXPECT_TRUE(ch.op.isHermitian(1e-12)) << ch.name;
            EXPECT_GT(ch.maxAmp, 0.0) << ch.name;
        }
    }
}

TEST(Device, AmplitudeAsymmetryIs15x)
{
    const DeviceModel dev = DeviceModel::gmonLine(1);
    const double charge = dev.controls()[0].maxAmp;
    const double flux = dev.controls()[1].maxAmp;
    EXPECT_NEAR(flux / charge, 15.0, 1e-9);
}

TEST(Device, QubitDriftIsZeroQutritAnharmonic)
{
    const DeviceModel qubit = DeviceModel::gmonLine(2, 2);
    EXPECT_NEAR(qubit.drift().maxAbs(), 0.0, 1e-12);
    const DeviceModel qutrit = DeviceModel::gmonLine(1, 3);
    EXPECT_NEAR(qutrit.drift()(2, 2).real(),
                qutrit.limits().anharmonicity, 1e-12);
}

TEST(Device, ComputationalIndices)
{
    const DeviceModel qutrit = DeviceModel::gmonLine(2, 3);
    const std::vector<int> comp = qutrit.computationalIndices();
    // Base-3 digit strings with digits < 2: 00,01,10,11 ->
    // 0, 1, 3, 4.
    ASSERT_EQ(comp.size(), 4u);
    EXPECT_EQ(comp[0], 0);
    EXPECT_EQ(comp[1], 1);
    EXPECT_EQ(comp[2], 3);
    EXPECT_EQ(comp[3], 4);
}

TEST(Device, EmbedUnitaryKeepsLeakageIdentity)
{
    const DeviceModel qutrit = DeviceModel::gmonLine(1, 3);
    const CMatrix embedded = qutrit.embedUnitary(pauliX());
    EXPECT_TRUE(embedded.isUnitary(1e-12));
    EXPECT_NEAR(std::abs(embedded(2, 2) - Complex{1.0, 0.0}), 0.0,
                1e-12);
    EXPECT_NEAR(std::abs(embedded(0, 1) - Complex{1.0, 0.0}), 0.0,
                1e-12);
}

TEST(Schedule, AppendConcatenates)
{
    PulseSchedule a(2, 3, 0.1);
    PulseSchedule b(2, 2, 0.1);
    a.channel(0)[0] = 1.0;
    b.channel(1)[1] = -2.0;
    a.append(b);
    EXPECT_EQ(a.numSamples(), 5);
    EXPECT_NEAR(a.durationNs(), 0.5, 1e-12);
    EXPECT_NEAR(a.channel(1)[4], -2.0, 1e-12);
    EXPECT_NEAR(a.maxAbsSample(), 2.0, 1e-12);
}

TEST(Schedule, RoughnessOfSmoothVsJagged)
{
    PulseSchedule smooth(1, 32, 1.0);
    PulseSchedule jagged(1, 32, 1.0);
    for (int k = 0; k < 32; ++k) {
        smooth.channel(0)[k] = 0.5;
        jagged.channel(0)[k] = (k % 2) ? 1.0 : -1.0;
    }
    EXPECT_NEAR(smooth.roughness(), 0.0, 1e-12);
    EXPECT_GT(jagged.roughness(), 1.0);
}

TEST(Evolve, ZeroPulseIsIdentity)
{
    const DeviceModel dev = DeviceModel::gmonLine(2);
    const PulseSchedule zeros(dev.numControls(), 10, 0.1);
    EXPECT_TRUE(evolveUnitary(dev, zeros)
                    .approxEqual(CMatrix::identity(4), 1e-10));
}

TEST(Evolve, TraceFidelityIsPhaseInvariant)
{
    Rng rng(61);
    const CMatrix u = haarUnitary(4, rng);
    EXPECT_NEAR(traceFidelity(u, u), 1.0, 1e-10);
    EXPECT_NEAR(traceFidelity(u, u * std::polar(1.0, 1.1)), 1.0,
                1e-10);
    EXPECT_LT(traceFidelity(u, haarUnitary(4, rng)), 0.9);
}

TEST(Library, RzPulsesAllAngles)
{
    const DeviceModel dev = DeviceModel::gmonLine(1);
    const GatePulseLibrary lib(dev, 0.01);
    for (double theta : {0.2, -0.7, 2.9, kPi}) {
        const CMatrix realized = evolveUnitary(dev, lib.rz(0, theta));
        EXPECT_GT(traceFidelity(rzMatrix(theta), realized), 0.9999)
            << "theta " << theta;
    }
}

TEST(Library, RxPulsesAllAngles)
{
    const DeviceModel dev = DeviceModel::gmonLine(1);
    const GatePulseLibrary lib(dev, 0.01);
    for (double theta : {0.2, -0.7, 2.9, kPi}) {
        const CMatrix realized = evolveUnitary(dev, lib.rx(0, theta));
        EXPECT_GT(traceFidelity(rxMatrix(theta), realized), 0.9999)
            << "theta " << theta;
    }
}

TEST(Library, PulsesRespectAmplitudeBounds)
{
    const DeviceModel dev = DeviceModel::gmonLine(2);
    const GatePulseLibrary lib(dev, 0.02);
    const PulseSchedule cx = lib.cx(0, 1);
    for (int c = 0; c < dev.numControls(); ++c) {
        const double bound = dev.controls()[c].maxAmp;
        for (double v : cx.channel(c))
            EXPECT_LE(std::abs(v), bound * (1.0 + 1e-9));
    }
}

TEST(Library, XxPulseHasCxClass)
{
    const DeviceModel dev = DeviceModel::gmonLine(2);
    const GatePulseLibrary lib(dev, 0.01);
    const CMatrix realized =
        evolveUnitary(dev, lib.xx(0, 1, -kPi / 4));
    const WeylCoords w = weylCoordinates(realized);
    EXPECT_NEAR(w.c1, kPi / 4, 1e-6);
    EXPECT_NEAR(w.c2, 0.0, 1e-6);
}

TEST(Library, CzAndSwapAreExact)
{
    const DeviceModel dev = DeviceModel::gmonLine(2);
    const GatePulseLibrary lib(dev, 0.01);
    EXPECT_GT(traceFidelity(gateMatrix(GateKind::CZ),
                            evolveUnitary(dev, lib.cz(0, 1))),
              0.999);
    EXPECT_GT(traceFidelity(gateMatrix(GateKind::SWAP),
                            evolveUnitary(dev, lib.swapGate(0, 1))),
              0.998);
}

TEST(Library, CompileCircuitMatchesCircuitUnitary)
{
    const DeviceModel dev = DeviceModel::gmonLine(2);
    const GatePulseLibrary lib(dev, 0.01);
    Circuit c(2);
    c.h(0);
    c.cx(0, 1);
    c.rz(1, 0.7);
    c.ry(0, -0.4);
    const CMatrix target = circuitUnitary(c);
    const CMatrix realized =
        evolveUnitary(dev, lib.compileCircuit(c));
    EXPECT_GT(traceFidelity(target, realized), 0.998);
}

TEST(Schedule, SetChannelPreservesSampleCount)
{
    PulseSchedule pulse(2, 4, 0.1);
    pulse.setChannel(1, {1.0, 2.0, 3.0, 4.0});
    EXPECT_NEAR(pulse.channel(1)[3], 4.0, 1e-12);
    EXPECT_EQ(pulse.numSamples(), 4);
}

TEST(ScheduleDeathTest, RaggedChannelsPanic)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    PulseSchedule pulse(2, 4, 0.1);
    // Desynchronize one channel through the mutable reference; the
    // invariant check in numSamples() must refuse to guess.
    pulse.channel(1).push_back(0.0);
    EXPECT_DEATH(pulse.numSamples(), "sample counts diverged");

    PulseSchedule other(2, 4, 0.1);
    EXPECT_DEATH(other.setChannel(0, {1.0, 2.0}),
                 "preserve the shared sample count");
}

TEST(Serialize, RoundTripIsBitExact)
{
    PulseSchedule pulse(3, 29, 0.05);
    Rng rng(17);
    for (int c = 0; c < 3; ++c)
        for (double& v : pulse.channel(c))
            v = rng.normal() * 1e3;
    // Values a lossy text format would mangle.
    pulse.channel(0)[0] = 1.0 / 3.0;
    pulse.channel(1)[1] = -0.0;
    pulse.channel(2)[2] = 5e-324; // Smallest subnormal.

    const std::vector<uint8_t> bytes = serializePulseSchedule(pulse);
    const auto back = deserializePulseSchedule(bytes);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->numChannels(), 3);
    EXPECT_EQ(back->numSamples(), 29);
    EXPECT_EQ(back->dt(), 0.05);
    for (int c = 0; c < 3; ++c)
        for (int s = 0; s < 29; ++s)
            EXPECT_EQ(back->channel(c)[s], pulse.channel(c)[s])
                << "channel " << c << " sample " << s;
    // Signed zero survives with its sign.
    EXPECT_TRUE(std::signbit(back->channel(1)[1]));
}

TEST(Serialize, EmptyScheduleRoundTrips)
{
    const PulseSchedule empty;
    const auto back =
        deserializePulseSchedule(serializePulseSchedule(empty));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->numChannels(), 0);
    EXPECT_EQ(back->numSamples(), 0);
}

TEST(Serialize, ZeroSampleScheduleRoundTrips)
{
    const PulseSchedule pulse(2, 0, 0.05);
    const auto back =
        deserializePulseSchedule(serializePulseSchedule(pulse));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->numChannels(), 2);
    EXPECT_EQ(back->numSamples(), 0);
    EXPECT_EQ(back->dt(), 0.05);
}

TEST(Serialize, RejectsMalformedBytes)
{
    const PulseSchedule pulse(2, 8, 0.05);
    std::vector<uint8_t> bytes = serializePulseSchedule(pulse);

    // Truncation.
    std::vector<uint8_t> truncated(bytes.begin(), bytes.end() - 1);
    EXPECT_FALSE(deserializePulseSchedule(truncated).has_value());
    // Bad magic.
    std::vector<uint8_t> magic = bytes;
    magic[0] ^= 0xff;
    EXPECT_FALSE(deserializePulseSchedule(magic).has_value());
    // Unknown version.
    std::vector<uint8_t> version = bytes;
    version[4] = 99;
    EXPECT_FALSE(deserializePulseSchedule(version).has_value());
    // Header shorter than the fixed fields.
    std::vector<uint8_t> stub(bytes.begin(), bytes.begin() + 10);
    EXPECT_FALSE(deserializePulseSchedule(stub).has_value());
    // Channel count inflated past the payload.
    std::vector<uint8_t> inflated = bytes;
    inflated[16] += 1;
    EXPECT_FALSE(deserializePulseSchedule(inflated).has_value());

    // The pristine copy still parses.
    EXPECT_TRUE(deserializePulseSchedule(bytes).has_value());
}

TEST(Serialize, EpochMetadataRoundTrips)
{
    const PulseSchedule pulse(2, 8, 0.05);
    const CalibrationEpoch stamped{42, 0xfeedULL};
    const std::vector<uint8_t> bytes =
        serializePulseSchedule(pulse, stamped);

    CalibrationEpoch back;
    const auto decoded = deserializePulseSchedule(bytes, &back);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(back, stamped);

    // Default stamp is the zero epoch.
    CalibrationEpoch zero{9, 9};
    ASSERT_TRUE(deserializePulseSchedule(serializePulseSchedule(pulse),
                                         &zero)
                    .has_value());
    EXPECT_EQ(zero, CalibrationEpoch{});
}

/** A version-1 record for `pulse`: the v2 header truncated to the
 * pre-epoch fields with the version field rewritten, then the
 * payload. Stands in for a record written before epoch keying. */
std::vector<uint8_t>
craftV1Record(const PulseSchedule& pulse)
{
    const std::vector<uint8_t> v2 = serializePulseSchedule(pulse);
    std::vector<uint8_t> v1;
    v1.reserve(v2.size() - 16);
    for (size_t i = 0; i < v2.size(); ++i)
        if (i < 28 || i >= 44) // Drop the epoch fields (28..43).
            v1.push_back(v2[i]);
    v1[4] = 1; // Version field (little-endian u32).
    return v1;
}

TEST(Serialize, VersionOneRecordsStillDeserialize)
{
    PulseSchedule pulse(2, 8, 0.05);
    pulse.channel(0)[3] = 1.0 / 3.0;
    const std::vector<uint8_t> v1 = craftV1Record(pulse);

    CalibrationEpoch epoch{7, 7};
    const auto back = deserializePulseSchedule(v1, &epoch);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->numChannels(), 2);
    EXPECT_EQ(back->numSamples(), 8);
    EXPECT_EQ(back->channel(0)[3], 1.0 / 3.0);
    // Pre-epoch records carry the zero epoch.
    EXPECT_EQ(epoch, CalibrationEpoch{});

    // Truncation rules hold for v1 exactly as for v2.
    std::vector<uint8_t> truncated(v1.begin(), v1.end() - 1);
    EXPECT_FALSE(deserializePulseSchedule(truncated).has_value());
}

TEST(Serialize, PeekEpochReadsOnlyTheHeader)
{
    namespace fs = std::filesystem;
    const std::string dir =
        (fs::temp_directory_path() / "qpc_peek_epoch").string();
    fs::create_directories(dir);

    const PulseSchedule pulse(1, 10, 0.05);
    const CalibrationEpoch stamped{5, 77};
    ASSERT_TRUE(
        savePulseSchedule(dir + "/v2.qpulse", pulse, stamped));
    const auto peeked = peekPulseRecordEpoch(dir + "/v2.qpulse");
    ASSERT_TRUE(peeked.has_value());
    EXPECT_EQ(*peeked, stamped);

    // v1 records peek as the zero epoch.
    const std::vector<uint8_t> v1 = craftV1Record(pulse);
    {
        std::ofstream out(dir + "/v1.qpulse", std::ios::binary);
        out.write(reinterpret_cast<const char*>(v1.data()),
                  static_cast<std::streamsize>(v1.size()));
    }
    const auto legacy = peekPulseRecordEpoch(dir + "/v1.qpulse");
    ASSERT_TRUE(legacy.has_value());
    EXPECT_EQ(*legacy, CalibrationEpoch{});

    // Hostile headers peek as nullopt: truncated, bad magic, and a
    // v2 header cut off before its epoch fields.
    {
        std::ofstream out(dir + "/short.qpulse", std::ios::binary);
        out.write("QPL", 3);
    }
    EXPECT_FALSE(peekPulseRecordEpoch(dir + "/short.qpulse"));
    {
        const std::vector<uint8_t> v2 =
            serializePulseSchedule(pulse, stamped);
        std::ofstream out(dir + "/cut.qpulse", std::ios::binary);
        out.write(reinterpret_cast<const char*>(v2.data()), 30);
    }
    EXPECT_FALSE(peekPulseRecordEpoch(dir + "/cut.qpulse"));
    {
        std::vector<uint8_t> bad = craftV1Record(pulse);
        bad[0] ^= 0xff;
        std::ofstream out(dir + "/magic.qpulse", std::ios::binary);
        out.write(reinterpret_cast<const char*>(bad.data()),
                  static_cast<std::streamsize>(bad.size()));
    }
    EXPECT_FALSE(peekPulseRecordEpoch(dir + "/magic.qpulse"));
    EXPECT_FALSE(peekPulseRecordEpoch(dir + "/absent.qpulse"));

    fs::remove_all(dir);
}

// ---------------------------------------------------------------------
// Fuzz-style corruption: malformed bytes must read as errors, never
// crash, and never produce a partially-loaded schedule — a corrupt
// cache record has to degrade to a cache miss.
// ---------------------------------------------------------------------

PulseSchedule
fuzzSeedPulse()
{
    PulseSchedule pulse(3, 13, 0.05);
    Rng rng(23);
    for (int c = 0; c < 3; ++c)
        for (double& v : pulse.channel(c))
            v = rng.normal();
    return pulse;
}

TEST(SerializeFuzz, EveryTruncationIsRejected)
{
    const std::vector<uint8_t> bytes =
        serializePulseSchedule(fuzzSeedPulse());
    // Exhaustive: every proper prefix of a valid record is malformed
    // (the header's channel/sample counts pin the exact payload size).
    for (size_t len = 0; len < bytes.size(); ++len) {
        const auto back = deserializePulseSchedule(bytes.data(), len);
        EXPECT_FALSE(back.has_value()) << "prefix length " << len;
    }
    EXPECT_TRUE(deserializePulseSchedule(bytes).has_value());
}

TEST(SerializeFuzz, FlippedVersionBytesAreRejected)
{
    const std::vector<uint8_t> bytes =
        serializePulseSchedule(fuzzSeedPulse());
    Rng rng(29);
    // Any single-bit disturbance of the 4 version bytes (offsets
    // 4..7) yields a version that is neither 1 nor 2 (flips of 2 give
    // {0, 3, 6, 10, ...}) and must be rejected, whichever byte and
    // bit.
    for (int offset = 4; offset < 8; ++offset)
        for (int bit = 0; bit < 8; ++bit) {
            std::vector<uint8_t> flipped = bytes;
            flipped[offset] ^= static_cast<uint8_t>(1u << bit);
            EXPECT_FALSE(
                deserializePulseSchedule(flipped).has_value())
                << "version byte " << offset << " bit " << bit;
        }
}

TEST(SerializeFuzz, RaggedChannelCountsAreRejected)
{
    const std::vector<uint8_t> bytes =
        serializePulseSchedule(fuzzSeedPulse());
    // Rewrite the channel-count field (little-endian u32 at offset
    // 16) to every plausible lie: fewer channels than the payload
    // holds, more, zero, and absurdly many.
    for (uint32_t lie : {0u, 1u, 2u, 4u, 5u, 64u, 0x7fffffffu,
                         0xffffffffu}) {
        std::vector<uint8_t> ragged = bytes;
        for (int i = 0; i < 4; ++i)
            ragged[16 + i] = static_cast<uint8_t>(lie >> (8 * i));
        EXPECT_FALSE(deserializePulseSchedule(ragged).has_value())
            << "channel count " << lie;
    }
    // Same treatment for the sample count (u64 at offset 20).
    for (uint64_t lie : {0ull, 1ull, 12ull, 14ull, 1ull << 40}) {
        std::vector<uint8_t> ragged = bytes;
        for (int i = 0; i < 8; ++i)
            ragged[20 + i] = static_cast<uint8_t>(lie >> (8 * i));
        EXPECT_FALSE(deserializePulseSchedule(ragged).has_value())
            << "sample count " << lie;
    }
}

TEST(SerializeFuzz, RandomCorruptionNeverCrashesOrPartiallyLoads)
{
    const PulseSchedule original = fuzzSeedPulse();
    const std::vector<uint8_t> bytes =
        serializePulseSchedule(original);
    Rng rng(31);
    for (int trial = 0; trial < 500; ++trial) {
        std::vector<uint8_t> mutated = bytes;
        // 1-4 random byte flips anywhere in the record, plus an
        // occasional random resize.
        const int flips = 1 + rng.randint(0, 3);
        for (int f = 0; f < flips; ++f) {
            const int at =
                rng.randint(0, static_cast<int>(mutated.size()) - 1);
            mutated[at] ^= static_cast<uint8_t>(
                1u << rng.randint(0, 7));
        }
        if (rng.bernoulli(0.3))
            mutated.resize(
                rng.randint(0, static_cast<int>(mutated.size())));

        const auto back = deserializePulseSchedule(mutated);
        if (!back.has_value())
            continue;
        // A record that still parses must be *internally* whole:
        // header-consistent shape, usable without panics. (Payload
        // flips legitimately survive — bit-exact doubles carry no
        // checksum — but they can never yield a ragged schedule.)
        EXPECT_EQ(back->numChannels(), original.numChannels());
        EXPECT_EQ(back->numSamples(), original.numSamples());
        for (int c = 0; c < back->numChannels(); ++c)
            EXPECT_EQ(back->channel(c).size(),
                      static_cast<size_t>(back->numSamples()));
    }
}

TEST(SerializeFuzz, CorruptFilesLoadAsErrors)
{
    namespace fs = std::filesystem;
    const std::string dir =
        (fs::temp_directory_path() /
         ("qpc_fuzz_files." + std::to_string(::getpid())))
            .string();
    fs::remove_all(dir);
    fs::create_directories(dir);

    const PulseSchedule pulse = fuzzSeedPulse();
    const std::string good = dir + "/good.qpulse";
    ASSERT_TRUE(savePulseSchedule(good, pulse));
    ASSERT_TRUE(loadPulseSchedule(good).has_value());

    // Truncated on disk.
    const std::string truncated = dir + "/truncated.qpulse";
    ASSERT_TRUE(savePulseSchedule(truncated, pulse));
    fs::resize_file(truncated, 21);
    EXPECT_FALSE(loadPulseSchedule(truncated).has_value());

    // Empty file, garbage file, missing file.
    const std::string empty = dir + "/empty.qpulse";
    std::ofstream(empty, std::ios::binary).close();
    EXPECT_FALSE(loadPulseSchedule(empty).has_value());
    const std::string garbage = dir + "/garbage.qpulse";
    {
        std::ofstream out(garbage, std::ios::binary);
        out << "this is not a pulse record at all, sorry";
    }
    EXPECT_FALSE(loadPulseSchedule(garbage).has_value());
    EXPECT_FALSE(
        loadPulseSchedule(dir + "/missing.qpulse").has_value());

    fs::remove_all(dir);
}

TEST(Serialize, FailedSavesLeaveNoTempFiles)
{
    // Regression: savePulseSchedule writes through a unique temp file,
    // so an error path that forgets to remove it leaks one orphan per
    // failure into the cache directory — forever, since nothing else
    // ever touches that name. Drive every failure mode and assert the
    // directory stays clean.
    namespace fs = std::filesystem;
    const std::string dir =
        (fs::temp_directory_path() /
         ("qpc_save_fail." + std::to_string(::getpid())))
            .string();
    fs::remove_all(dir);
    fs::create_directories(dir);

    const auto tmp_files = [&dir] {
        int n = 0;
        for (const auto& entry : fs::directory_iterator(dir))
            if (entry.path().filename().string().find(".tmp.") !=
                std::string::npos)
                ++n;
        return n;
    };
    const PulseSchedule pulse(2, 64, 0.1);

    // Open failure: the parent directory does not exist.
    EXPECT_FALSE(
        savePulseSchedule(dir + "/no-such-dir/p.qpulse", pulse));

    // Rename failure: the target path is an existing directory, so
    // the temp file is written fine but cannot be published.
    fs::create_directories(dir + "/taken.qpulse");
    EXPECT_FALSE(savePulseSchedule(dir + "/taken.qpulse", pulse));
    EXPECT_EQ(tmp_files(), 0);

    // Write failure: a file-size rlimit below the record size makes
    // the temp-file write itself fail (SIGXFSZ ignored so it surfaces
    // as EFBIG on the write instead of killing the process).
    const PulseSchedule big(4, 8192, 0.1); // ~256 KiB record
    struct rlimit old_limit;
    ASSERT_EQ(::getrlimit(RLIMIT_FSIZE, &old_limit), 0);
    struct rlimit small_limit = old_limit;
    small_limit.rlim_cur = 4096;
    auto prev_handler = std::signal(SIGXFSZ, SIG_IGN);
    ASSERT_EQ(::setrlimit(RLIMIT_FSIZE, &small_limit), 0);
    EXPECT_FALSE(savePulseSchedule(dir + "/big.qpulse", big));
    ASSERT_EQ(::setrlimit(RLIMIT_FSIZE, &old_limit), 0);
    std::signal(SIGXFSZ, prev_handler);

    EXPECT_FALSE(fs::exists(dir + "/big.qpulse"));
    EXPECT_EQ(tmp_files(), 0);

    // The path still works once the obstacles are gone.
    EXPECT_TRUE(savePulseSchedule(dir + "/ok.qpulse", big));
    EXPECT_TRUE(loadPulseSchedule(dir + "/ok.qpulse").has_value());
    fs::remove_all(dir);
}

TEST(Evolve, SubspaceFidelityDetectsLeakage)
{
    const DeviceModel qutrit = DeviceModel::gmonLine(1, 3);
    // A pulse driving hard 1<->2 transitions leaks; identity target
    // fidelity on the subspace must drop below 1.
    PulseSchedule pulse(qutrit.numControls(), 50, 0.1);
    for (double& v : pulse.channel(0))
        v = qutrit.limits().chargeMax;
    const CMatrix realized = evolveUnitary(qutrit, pulse);
    const double fid =
        subspaceFidelity(qutrit, CMatrix::identity(2), realized);
    EXPECT_LT(fid, 0.99);
    EXPECT_GE(fid, 0.0);
}

} // namespace
