#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fcntl.h>
#include <filesystem>
#include <fstream>
#include <sys/file.h>
#include <thread>
#include <unistd.h>

#include "cache/fingerprint.h"
#include "cache/pulsecache.h"
#include "cache/quantize.h"
#include "linalg/eig.h"
#include "pulse/serialize.h"
#include "sim/statevector.h"
#include "testutil.h"

namespace {

using namespace qpc;
using namespace qpc::testutil;

const double kPi = 3.14159265358979323846;

/** Unique scratch directory under the test's working dir. */
class TempDir
{
  public:
    explicit TempDir(const std::string& stem)
    {
        path_ = (std::filesystem::temp_directory_path() /
                 (stem + "." + std::to_string(::getpid())))
                    .string();
        std::filesystem::remove_all(path_);
        std::filesystem::create_directories(path_);
    }
    ~TempDir() { std::filesystem::remove_all(path_); }
    const std::string& path() const { return path_; }

  private:
    std::string path_;
};

PulseSchedule
samplePulse(uint64_t seed, int channels = 3, int samples = 17)
{
    Rng rng(seed);
    PulseSchedule pulse(channels, samples, 0.05);
    for (int c = 0; c < channels; ++c)
        for (double& v : pulse.channel(c))
            v = rng.normal();
    return pulse;
}

PulseCacheOptions
cacheOptions(std::size_t capacity, int shards,
             const std::string& disk_dir = "")
{
    PulseCacheOptions options;
    options.capacity = capacity;
    options.shards = shards;
    options.diskDir = disk_dir;
    return options;
}

// ---------------------------------------------------------------------
// Fingerprints
// ---------------------------------------------------------------------

TEST(Fingerprint, DeterministicAcrossCopies)
{
    Rng rng(3);
    const Circuit a = randomCircuit(rng, 3, 12);
    const Circuit b = a;
    EXPECT_EQ(fingerprintBlock(a), fingerprintBlock(b));
    EXPECT_EQ(fingerprintBlock(a).hex(), fingerprintBlock(b).hex());
}

TEST(Fingerprint, SensitiveToStructure)
{
    Circuit a(2);
    a.h(0);
    a.cx(0, 1);
    Circuit b(2);
    b.cx(0, 1);
    b.h(0);
    EXPECT_NE(fingerprintBlock(a).structureHash,
              fingerprintBlock(b).structureHash);

    Circuit c(2);
    c.h(0);
    c.cx(1, 0); // Swapped control/target.
    EXPECT_NE(fingerprintBlock(a).structureHash,
              fingerprintBlock(c).structureHash);

    Circuit d(2);
    d.h(0);
    d.cx(0, 1);
    d.rz(1, 0.25);
    EXPECT_NE(fingerprintBlock(a), fingerprintBlock(d));
}

TEST(Fingerprint, SensitiveToAngles)
{
    Circuit a(1);
    a.rz(0, 0.5);
    Circuit b(1);
    b.rz(0, 0.5 + 1e-6);
    EXPECT_NE(fingerprintBlock(a).structureHash,
              fingerprintBlock(b).structureHash);
}

TEST(Fingerprint, UnitaryHashIsGlobalPhaseInvariant)
{
    // Z and Rz(pi) = -i Z differ exactly by a global phase: the
    // structural hashes differ, the unitary fingerprints agree.
    Circuit z(1);
    z.z(0);
    Circuit rz(1);
    rz.rz(0, kPi);
    const BlockFingerprint fz = fingerprintBlock(z);
    const BlockFingerprint frz = fingerprintBlock(rz);
    EXPECT_NE(fz.structureHash, frz.structureHash);
    EXPECT_EQ(fz.unitaryHash, frz.unitaryHash);
    // The unitary hash is the canonical address: the two spellings
    // are one cache entry (equality, container hash, and disk name).
    EXPECT_EQ(fz, frz);
    EXPECT_EQ(BlockFingerprintHash{}(fz), BlockFingerprintHash{}(frz));
    EXPECT_EQ(fz.hex(), frz.hex());

    // Direct check on matrices as well.
    const CMatrix u = gateMatrix(GateKind::H);
    EXPECT_EQ(phaseInvariantUnitaryHash(u),
              phaseInvariantUnitaryHash(u * Complex(0.0, 1.0)));
    EXPECT_EQ(phaseInvariantUnitaryHash(u),
              phaseInvariantUnitaryHash(u * std::exp(kImag * 0.7)));
}

TEST(Fingerprint, DistinctUnitariesDistinctHashes)
{
    EXPECT_NE(phaseInvariantUnitaryHash(gateMatrix(GateKind::X)),
              phaseInvariantUnitaryHash(gateMatrix(GateKind::Y)));
    EXPECT_NE(phaseInvariantUnitaryHash(gateMatrix(GateKind::H)),
              phaseInvariantUnitaryHash(gateMatrix(GateKind::Z)));
}

TEST(Fingerprint, WideBlocksFallBackToStructureAddressing)
{
    // 7 qubits is past the unitary-simulation cap: the address is the
    // structure hash and the hex stem is tagged accordingly.
    Circuit wide(7);
    for (int q = 0; q < 6; ++q)
        wide.cx(q, q + 1);
    const BlockFingerprint fw = fingerprintBlock(wide);
    EXPECT_EQ(fw.unitaryHash, 0u);
    EXPECT_EQ(fw.canonical(), fw.structureHash);
    EXPECT_EQ(fw.hex().front(), 's');
    EXPECT_EQ(fingerprintBlock(wide), fw);

    Circuit narrow(1);
    narrow.h(0);
    EXPECT_EQ(fingerprintBlock(narrow).hex().front(), 'u');
    EXPECT_NE(fingerprintBlock(narrow), fw);
}

TEST(Fingerprint, RelabeledBlocksShareAddresses)
{
    // The same local structure extracted from different global
    // positions must collide — that is the whole point of
    // content-addressing blocks after relabeling.
    Circuit a(2);
    a.h(0);
    a.cx(0, 1);
    Circuit wide(4);
    wide.h(2);
    wide.cx(2, 3);
    // Relabel {2,3} -> {0,1} by hand, mirroring CircuitBlock::asCircuit.
    Circuit relabeled(2);
    relabeled.h(0);
    relabeled.cx(0, 1);
    EXPECT_EQ(fingerprintBlock(a), fingerprintBlock(relabeled));
}

// ---------------------------------------------------------------------
// Angle quantization
// ---------------------------------------------------------------------

const double kTau = 2.0 * kPi;

/** Operator norm (largest singular value) of a small matrix. */
double
opNorm(const CMatrix& d)
{
    const EigResult eig = eigHermitian(d.dagger() * d);
    return std::sqrt(std::max(0.0, eig.values.back()));
}

/**
 * ||a - e^{i phi} b||_op at the trace-aligned phase: an upper bound
 * on the phase-invariant operator distance, and exactly the minimum
 * for a single snapped rotation (whose residual eigenphases are
 * symmetric about the trace phase).
 */
double
tracePhaseOpNorm(const CMatrix& a, const CMatrix& b)
{
    const Complex overlap = (a.dagger() * b).trace();
    if (std::abs(overlap) < 1e-12)
        return opNorm(a - b);
    return opNorm(a - b * std::conj(overlap / std::abs(overlap)));
}

/**
 * min over a phase grid of ||a - e^{i phi} b||_op: an upper bound on
 * the phase-invariant operator distance that overshoots the true
 * minimum by at most ~pi/kPhaseGrid (the grid granularity), which the
 * caller absorbs into its tolerance.
 */
constexpr int kPhaseGrid = 256;

double
minPhaseOpNorm(const CMatrix& a, const CMatrix& b)
{
    double best = opNorm(a - b);
    for (int k = 1; k < kPhaseGrid; ++k) {
        const double phi = kTau * k / kPhaseGrid;
        best = std::min(best, opNorm(a - b * std::exp(kImag * phi)));
    }
    return best;
}

TEST(Quantize, SnapIsIdempotentAndWrapAware)
{
    Rng rng(29);
    const int grids[] = {16, 64, 256, 1024};
    for (int trial = 0; trial < 500; ++trial) {
        const int bins = grids[trial % 4];
        const double step = kTau / bins;
        // Several turns in both directions, not just (-pi, pi].
        const double theta = rng.uniform(-10.0, 10.0);

        const std::int64_t bin = angleBin(theta, bins);
        EXPECT_GE(bin, 0);
        EXPECT_LT(bin, bins);
        // theta and theta +/- 2 pi share the bin.
        EXPECT_EQ(bin, angleBin(theta + kTau, bins));
        EXPECT_EQ(bin, angleBin(theta - kTau, bins));

        // Snapping is idempotent, bit-for-bit: a snapped angle is on
        // the grid, so snapping it again is the identity.
        const double snapped = snapAngle(theta, bins);
        EXPECT_EQ(snapped, snapAngle(snapped, bins));
        EXPECT_EQ(bin, angleBin(snapped, bins));
        // The representative is centered and the residue is at most
        // half a step.
        EXPECT_GT(snapped, -kPi - 1e-12);
        EXPECT_LE(snapped, kPi + 1e-12);
        EXPECT_LE(std::abs(snapDelta(theta, bins)),
                  step / 2.0 + 1e-12);
    }
}

TEST(Quantize, BinEdgesNearPiDoNotSplit)
{
    Rng rng(31);
    for (int trial = 0; trial < 500; ++trial) {
        const int bins = 64 << (trial % 3);
        const double eps = rng.uniform(1e-9, 0.4 * kTau / bins);
        // The same angle spelled on either side of the +/- pi seam
        // must land in one bin: pi - eps and its alias -pi - eps,
        // pi + eps and its alias -pi + eps.
        EXPECT_EQ(angleBin(kPi - eps, bins),
                  angleBin(-kPi - eps, bins));
        EXPECT_EQ(angleBin(kPi + eps, bins),
                  angleBin(-kPi + eps, bins));
    }
    // Both spellings of the seam itself share the +pi representative.
    for (int bins : {16, 64, 256, 1024}) {
        EXPECT_EQ(snapAngle(kPi, bins), snapAngle(-kPi, bins));
        EXPECT_NEAR(snapDelta(-kPi, bins), 0.0, 1e-12);
    }
}

TEST(Quantize, ErrorBoundHoldsAcrossGateLibrary)
{
    // For every rotation axis the IR serves, the measured
    // phase-invariant operator error of the snapped unitary stays
    // within the advertised bound. Single rotations measure with the
    // (exact) trace-aligned phase via the grid minimum.
    Rng rng(37);
    const GateKind axes[] = {GateKind::Rx, GateKind::Ry, GateKind::Rz};
    const int grids[] = {64, 256, 1024};
    for (int trial = 0; trial < 500; ++trial) {
        const GateKind kind = axes[trial % 3];
        const int bins = grids[(trial / 3) % 3];
        ParamQuantization quantization;
        quantization.enabled = true;
        quantization.bins = bins;
        // Generous per-gate budget: the coarse grids here can snap by
        // more than the default budget, and this test is about the
        // advertised bound, not the fallback gate.
        quantization.fidelityBudget = 1.0;

        Circuit symbolic(1);
        GateOp op;
        op.kind = kind;
        op.q0 = 0;
        op.angle = ParamExpr::theta(0, rng.uniform(0.5, 2.0),
                                    rng.uniform(-1.0, 1.0));
        symbolic.add(op);
        const std::vector<double> theta = {rng.uniform(-8.0, 8.0)};

        const QuantizedBlock quantized =
            quantizeBlock(symbolic, theta, quantization);
        ASSERT_EQ(quantized.bins.size(), 1u);
        // Advertised bound never exceeds the worst case of the grid.
        EXPECT_LE(quantized.errorBound, kTau / bins / 4.0 + 1e-12);

        const double measured =
            tracePhaseOpNorm(circuitUnitary(symbolic.bind(theta)),
                             circuitUnitary(quantized.snapped));
        EXPECT_LE(measured, quantized.errorBound + 1e-9)
            << gateName(kind) << " bins=" << bins
            << " theta=" << theta[0];
    }
}

TEST(Quantize, MultiRotationBlockBoundIsAdditive)
{
    // Blocks mixing fixed gates with several snapped rotations: the
    // per-rotation bounds add, and the measured error of the whole
    // block unitary respects the sum. The phase-grid measurement
    // overshoots the true minimum by at most ~pi/kPhaseGrid.
    const double kGridSlack = 4.0 * kPi / kPhaseGrid;
    Rng rng(41);
    for (int trial = 0; trial < 40; ++trial) {
        ParamQuantization quantization;
        quantization.enabled = true;
        quantization.bins = 32; // Coarse: real error, well above slack.
        // Admit every per-gate snap so all three rotations land on
        // the grid and the summed bound is exercised.
        quantization.fidelityBudget = 1.0;

        Circuit symbolic(2);
        symbolic.h(0);
        symbolic.cx(0, 1);
        symbolic.rx(0, ParamExpr::theta(0, rng.uniform(0.5, 2.0)));
        symbolic.cz(0, 1);
        symbolic.ry(1, ParamExpr::theta(1, rng.uniform(0.5, 2.0)));
        symbolic.rz(0, ParamExpr::theta(2, rng.uniform(0.5, 2.0)));
        const std::vector<double> theta = rng.angles(3);

        const QuantizedBlock quantized =
            quantizeBlock(symbolic, theta, quantization);
        ASSERT_EQ(quantized.bins.size(), 3u);
        const double measured =
            minPhaseOpNorm(circuitUnitary(symbolic.bind(theta)),
                           circuitUnitary(quantized.snapped));
        EXPECT_LE(measured, quantized.errorBound + kGridSlack);
    }
}

TEST(Quantize, BindingsInOneBinShareOneAddress)
{
    ParamQuantization quantization;
    quantization.enabled = true;
    quantization.bins = 1024;

    Circuit symbolic(1);
    symbolic.rz(0, ParamExpr::theta(0));

    // The PR 2 pathology: adjacent iterations' angles are distinct
    // exact keys but the same grid bin — one pulse serves both.
    const QuantizedBlock a =
        quantizeBlock(symbolic, {0.1001}, quantization);
    const QuantizedBlock b =
        quantizeBlock(symbolic, {0.1002}, quantization);
    EXPECT_EQ(a.fingerprint, b.fingerprint);
    EXPECT_EQ(a.bins, b.bins);

    // A different bin is a different address.
    const QuantizedBlock far =
        quantizeBlock(symbolic, {0.1001 + kTau / 1024 * 3}, quantization);
    EXPECT_NE(a.fingerprint, far.fingerprint);

    // Wrap-awareness carries through to the address.
    const QuantizedBlock wrapped =
        quantizeBlock(symbolic, {0.1001 + kTau}, quantization);
    EXPECT_EQ(a.fingerprint, wrapped.fingerprint);

    // Quantizing a block that is already on the grid is free.
    Circuit on_grid(1);
    on_grid.rz(0, ParamExpr::theta(0));
    const QuantizedBlock snapped_again = quantizeBlock(
        on_grid, {binAngle(17, quantization.bins)}, quantization);
    EXPECT_EQ(snapped_again.errorBound, 0.0);
    EXPECT_TRUE(snapped_again.withinBudget);
}

TEST(Quantize, FidelityBudgetGatesTheSnap)
{
    Circuit symbolic(1);
    symbolic.rx(0, ParamExpr::theta(0));

    // A zero budget rejects any off-grid angle...
    ParamQuantization strict_budget;
    strict_budget.enabled = true;
    strict_budget.bins = 64;
    strict_budget.fidelityBudget = 0.0;
    const double off_grid = 0.3 + kTau / 64 / 3.0;
    EXPECT_FALSE(
        quantizeBlock(symbolic, {off_grid}, strict_budget)
            .withinBudget);
    // ... but still admits an exactly-on-grid one.
    EXPECT_TRUE(quantizeBlock(symbolic, {binAngle(5, 64)},
                              strict_budget)
                    .withinBudget);

    // The default budget admits the default grid's worst case.
    ParamQuantization defaults;
    defaults.enabled = true;
    EXPECT_TRUE(
        quantizeBlock(symbolic, {off_grid}, defaults).withinBudget);

    // Constant-angle rotations pass through exactly: no bins, no
    // error, same fingerprint as plain fingerprinting.
    Circuit constant(1);
    constant.rz(0, 0.123456);
    const QuantizedBlock fixed =
        quantizeBlock(constant, {}, strict_budget);
    EXPECT_TRUE(fixed.bins.empty());
    EXPECT_EQ(fixed.errorBound, 0.0);
    EXPECT_EQ(fixed.fingerprint, fingerprintBlock(constant));
}

TEST(Quantize, PerGateBudgetMatchesServePathSemantics)
{
    // Regression: quantizeBlock used to sum per-rotation bounds and
    // set withinBudget from the *sum*, while serve() and
    // snapSymbolicRotations() check the budget per gate — a
    // two-rotation block could read as over-budget while the driver
    // happily simulated both gates snapped. The budget is per gate
    // everywhere now.
    ParamQuantization quantization;
    quantization.enabled = true;
    quantization.bins = 32; // Worst per-gate bound: step/4 ~ 0.049.
    const double step = kTau / 32;
    // Each gate's snap (~step/4) fits the budget, but the sum of the
    // two does not.
    quantization.fidelityBudget = 0.3 * step;

    Circuit symbolic(2);
    symbolic.rx(0, ParamExpr::theta(0));
    symbolic.ry(1, ParamExpr::theta(1));
    // Mid-bin angles: per-gate bound just under step/4 each.
    const std::vector<double> theta = {5 * step + 0.45 * step,
                                       -9 * step + 0.45 * step};
    for (double t : theta)
        ASSERT_LE(quantizationErrorBound(snapDelta(t, 32)),
                  quantization.fidelityBudget);

    const QuantizedBlock quantized =
        quantizeBlock(symbolic, theta, quantization);
    // Both gates snapped, no fallback — even though the summed bound
    // exceeds the (per-gate) budget.
    EXPECT_TRUE(quantized.withinBudget);
    ASSERT_EQ(quantized.bins.size(), 2u);
    EXPECT_GE(quantized.bins[0], 0);
    EXPECT_GE(quantized.bins[1], 0);
    EXPECT_GT(quantized.errorBound, quantization.fidelityBudget);
    // Lockstep with the simulation path: the snapped circuit is
    // exactly what snapSymbolicRotations produces for this binding.
    const Circuit simulated =
        snapSymbolicRotations(symbolic, theta, quantization);
    EXPECT_EQ(fingerprintBlock(quantized.snapped),
              fingerprintBlock(simulated));

    // A gate past the per-gate budget stays exact (bin -1) in both.
    ParamQuantization tight = quantization;
    tight.fidelityBudget = 0.05 * step;
    const QuantizedBlock gated = quantizeBlock(symbolic, theta, tight);
    EXPECT_FALSE(gated.withinBudget);
    ASSERT_EQ(gated.bins.size(), 2u);
    EXPECT_EQ(gated.bins[0], -1);
    EXPECT_EQ(gated.bins[1], -1);
    EXPECT_EQ(gated.errorBound, 0.0);
    EXPECT_EQ(fingerprintBlock(gated.snapped),
              fingerprintBlock(
                  snapSymbolicRotations(symbolic, theta, tight)));
    EXPECT_EQ(fingerprintBlock(gated.snapped),
              fingerprintBlock(symbolic.bind(theta)));
}

// ---------------------------------------------------------------------
// Adaptive multi-resolution grid
// ---------------------------------------------------------------------

TEST(AdaptiveGrid, StartsAsTheFixedGridBitForBit)
{
    // Every unsplit leaf must carry the fixed grid's representative
    // *exactly*: that identity is what lets an adaptive plan's coarse
    // leaves fingerprint-dedupe against an already-warm PR 3 grid.
    Rng rng(51);
    for (int bins : {16, 64, 256, 1024}) {
        const AdaptiveAngleGrid grid(bins);
        EXPECT_EQ(grid.numLeaves(), static_cast<size_t>(bins));
        EXPECT_EQ(grid.maxDepthInUse(), 0);
        for (int trial = 0; trial < 200; ++trial) {
            const double theta = rng.uniform(-10.0, 10.0);
            const AdaptiveAngleGrid::Leaf leaf = grid.locate(theta);
            EXPECT_EQ(leaf.depth, 0);
            EXPECT_EQ(leaf.coarseBin, angleBin(theta, bins));
            EXPECT_EQ(leaf.representative, snapAngle(theta, bins));
            EXPECT_EQ(leaf.halfWidth, kTau / bins / 2.0);
        }
    }
}

TEST(AdaptiveGrid, RefinementHalvesWidthsAndPreservesTheBound)
{
    // Random refinement: split the leaf of a random angle, many
    // times. Invariants: locate() always returns a leaf containing
    // the angle (|wrapped delta| <= halfWidth), widths halve per
    // depth, and no leaf is ever wider than a coarse bin — so the
    // realized snap bound never exceeds the fixed grid's worst case.
    Rng rng(53);
    const int bins = 64;
    const double step = kTau / bins;
    AdaptiveAngleGrid grid(bins);
    uint64_t splits = 0;
    for (int round = 0; round < 400; ++round) {
        // Cluster the splits: a converging optimizer hammers a small
        // neighborhood, so drive most refinement into one region.
        const double theta = round % 4 == 0
                                 ? rng.uniform(-kPi, kPi)
                                 : 0.7 + 0.02 * rng.normal();
        const AdaptiveAngleGrid::Leaf leaf = grid.locate(theta);
        if (leaf.depth >= 12)
            continue;
        const auto [low, high] = grid.split(leaf);
        ++splits;
        // The children partition the parent: theta lands in exactly
        // one of them, and each has half the parent's width.
        EXPECT_EQ(low.depth, leaf.depth + 1);
        EXPECT_EQ(high.depth, leaf.depth + 1);
        EXPECT_EQ(low.halfWidth, leaf.halfWidth / 2.0);
        EXPECT_EQ(high.halfWidth, leaf.halfWidth / 2.0);
        const AdaptiveAngleGrid::Leaf relocated = grid.locate(theta);
        EXPECT_EQ(relocated.depth, leaf.depth + 1);
        const bool in_low = AdaptiveAngleGrid::leafKey(relocated) ==
                            AdaptiveAngleGrid::leafKey(low);
        const bool in_high = AdaptiveAngleGrid::leafKey(relocated) ==
                             AdaptiveAngleGrid::leafKey(high);
        EXPECT_TRUE(in_low || in_high);
    }
    EXPECT_EQ(grid.splits(), splits);
    EXPECT_EQ(grid.numLeaves(), static_cast<size_t>(bins) + splits);
    EXPECT_GT(grid.maxDepthInUse(), 2);

    Rng probe(57);
    for (int trial = 0; trial < 500; ++trial) {
        const double theta = probe.uniform(-10.0, 10.0);
        const AdaptiveAngleGrid::Leaf leaf = grid.locate(theta);
        const double delta =
            wrappedAngleDelta(theta, leaf.representative);
        EXPECT_LE(std::abs(delta), leaf.halfWidth + 1e-12);
        EXPECT_LE(leaf.halfWidth, step / 2.0 + 1e-15);
        // The advertised per-gate bound of serving this leaf never
        // exceeds the fixed grid's worst case.
        EXPECT_LE(quantizationErrorBound(delta), step / 4.0 + 1e-12);
    }
}

TEST(AdaptiveGrid, SnapIsIdempotentAcrossLevelsAndWrapAware)
{
    // A leaf's representative locates back to the same leaf (snapping
    // a snapped angle is the identity, at any depth), and any 2*pi
    // alias of an angle lands in the same leaf.
    Rng rng(59);
    const int bins = 32;
    AdaptiveAngleGrid grid(bins);
    for (int round = 0; round < 300; ++round) {
        const double theta = rng.uniform(-8.0, 8.0);
        const AdaptiveAngleGrid::Leaf leaf = grid.locate(theta);
        EXPECT_EQ(AdaptiveAngleGrid::leafKey(grid.locate(theta + kTau)),
                  AdaptiveAngleGrid::leafKey(leaf));
        EXPECT_EQ(AdaptiveAngleGrid::leafKey(grid.locate(theta - kTau)),
                  AdaptiveAngleGrid::leafKey(leaf));
        const AdaptiveAngleGrid::Leaf again =
            grid.locate(leaf.representative);
        EXPECT_EQ(AdaptiveAngleGrid::leafKey(again),
                  AdaptiveAngleGrid::leafKey(leaf));
        EXPECT_EQ(again.representative, leaf.representative);
        // The representative stays centered: (-pi, pi].
        EXPECT_GT(leaf.representative, -kPi - 1e-12);
        EXPECT_LE(leaf.representative, kPi + 1e-12);
        if (leaf.depth < 10 && rng.bernoulli(0.7))
            grid.split(leaf);
    }
}

TEST(AdaptiveGrid, RefinedFingerprintsDedupeAgainstTheCoarseGrid)
{
    // Where representatives coincide, fingerprints must too: an
    // unsplit leaf's snapped rotation is the coarse bin's rotation,
    // so its pulse address matches the fixed-grid (prewarmed) entry.
    // A split leaf's children have new representatives — distinct
    // addresses — and the two children never collide.
    const int bins = 64;
    AdaptiveAngleGrid grid(bins);
    Circuit symbolic(1);
    symbolic.rx(0, ParamExpr::theta(0));

    auto fingerprintAt = [&](double angle) {
        Circuit rotation(1);
        rotation.rx(0, angle);
        return fingerprintBlock(rotation);
    };

    Rng rng(61);
    for (int trial = 0; trial < 120; ++trial) {
        const double theta = rng.uniform(-kPi, kPi);
        const AdaptiveAngleGrid::Leaf leaf = grid.locate(theta);
        if (leaf.depth == 0) {
            // Coincides with the fixed grid: same address.
            EXPECT_EQ(fingerprintAt(leaf.representative),
                      fingerprintAt(snapAngle(theta, bins)));
        } else {
            // Refined: a genuinely finer representative.
            EXPECT_NE(leaf.representative, snapAngle(theta, bins));
        }
        if (leaf.depth < 6) {
            const auto [low, high] = grid.split(leaf);
            EXPECT_NE(fingerprintAt(low.representative),
                      fingerprintAt(high.representative));
            EXPECT_NE(fingerprintAt(low.representative),
                      fingerprintAt(leaf.representative));
        }
    }
}

TEST(AdaptiveGrid, SplitGuardsAgainstStaleHandlesAndDepthCaps)
{
    AdaptiveAngleGrid grid(16);
    const AdaptiveAngleGrid::Leaf leaf = grid.locate(0.5);
    grid.split(leaf);
    // Splitting the same (now internal) leaf again must fail loudly.
    EXPECT_DEATH(grid.split(leaf), "already split");
}

// ---------------------------------------------------------------------
// In-memory LRU tier
// ---------------------------------------------------------------------

BlockFingerprint
fp(uint64_t n)
{
    BlockFingerprint f;
    f.structureHash = n * 0x9e3779b97f4a7c15ull + 1;
    f.unitaryHash = n;
    return f;
}

TEST(PulseCache, HitMissAndStats)
{
    PulseCache cache(cacheOptions(16, 2));
    EXPECT_FALSE((cache.get(fp(1)) != nullptr));
    cache.put(fp(1), samplePulse(1));
    const auto hit = cache.get(fp(1));
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->numChannels(), 3);

    const CacheStats stats = cache.stats();
    EXPECT_EQ(stats.lookups, 2u);
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.insertions, 1u);
    EXPECT_EQ(stats.entries, 1u);
    EXPECT_NEAR(stats.hitRate(), 0.5, 1e-12);
}

TEST(PulseCache, EvictsLeastRecentlyUsed)
{
    // One shard of capacity 4 makes the LRU order fully observable.
    PulseCache cache(cacheOptions(4, 1));
    for (uint64_t i = 0; i < 4; ++i)
        cache.put(fp(i), samplePulse(i));
    // Touch 0 so 1 becomes the eviction victim.
    EXPECT_TRUE((cache.get(fp(0)) != nullptr));
    cache.put(fp(99), samplePulse(99));

    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_TRUE((cache.get(fp(0)) != nullptr));
    EXPECT_FALSE((cache.get(fp(1)) != nullptr));
    EXPECT_TRUE((cache.get(fp(99)) != nullptr));
    EXPECT_EQ(cache.stats().entries, 4u);
}

TEST(PulseCache, EraseReleasesBytesAndKeepsDiskTier)
{
    TempDir dir("qpc_cache_erase");
    PulseCache cache(cacheOptions(8, 1, dir.path()));
    cache.put(fp(1), samplePulse(1));
    cache.put(fp(2), samplePulse(2, /*channels=*/2, /*samples=*/9));
    const std::size_t before = cache.stats().bytesInUse;

    // Erase returns the entry's serialized bytes and updates the
    // byte accounting — what refinement releases against the budget.
    const std::size_t released = cache.erase(fp(1));
    EXPECT_GT(released, 0u);
    const CacheStats stats = cache.stats();
    EXPECT_EQ(stats.entries, 1u);
    EXPECT_EQ(stats.bytesInUse, before - released);
    EXPECT_EQ(stats.released, 1u);
    EXPECT_EQ(stats.bytesReleased, released);
    // Erasing an absent key is a counted-free no-op.
    EXPECT_EQ(cache.erase(fp(1)), 0u);
    EXPECT_EQ(cache.stats().released, 1u);

    // The disk record survives: the erased pulse promotes back on
    // its next request instead of forcing a re-synthesis.
    const auto promoted = cache.get(fp(1));
    ASSERT_NE(promoted, nullptr);
    EXPECT_EQ(cache.stats().diskHits, 1u);
}

TEST(PulseCache, PutSameKeyRefreshesInPlace)
{
    PulseCache cache(cacheOptions(4, 1));
    cache.put(fp(7), samplePulse(1));
    cache.put(fp(7), samplePulse(2));
    EXPECT_EQ(cache.stats().entries, 1u);
    EXPECT_EQ(cache.stats().insertions, 1u);
    // The refreshed pulse is the one served.
    const auto got = cache.get(fp(7));
    ASSERT_NE(got, nullptr);
    EXPECT_EQ(got->channel(0), samplePulse(2).channel(0));
}

// ---------------------------------------------------------------------
// Disk tier
// ---------------------------------------------------------------------

TEST(PulseCache, DiskRoundTripSurvivesMemoryLoss)
{
    TempDir dir("qpc_cache_disk");
    const PulseSchedule original = samplePulse(5);
    {
        PulseCache cache(cacheOptions(16, 2, dir.path()));
        cache.put(fp(42), original);
        EXPECT_EQ(cache.stats().diskWrites, 1u);
    }
    // A brand-new cache (fresh process, empty memory) finds the pulse
    // on disk and promotes it.
    PulseCache cold(cacheOptions(16, 2, dir.path()));
    const auto got = cold.get(fp(42));
    ASSERT_NE(got, nullptr);
    for (int c = 0; c < original.numChannels(); ++c)
        EXPECT_EQ(got->channel(c), original.channel(c));
    EXPECT_EQ(cold.stats().diskHits, 1u);

    // Promoted: the second lookup is a memory hit.
    EXPECT_TRUE((cold.get(fp(42)) != nullptr));
    EXPECT_EQ(cold.stats().hits, 1u);
}

TEST(PulseCache, ClearMemoryKeepsDiskTier)
{
    TempDir dir("qpc_cache_clear");
    PulseCache cache(cacheOptions(16, 2, dir.path()));
    cache.put(fp(8), samplePulse(8));
    cache.clearMemory();
    EXPECT_EQ(cache.stats().entries, 0u);
    EXPECT_TRUE((cache.get(fp(8)) != nullptr));
    EXPECT_EQ(cache.stats().diskHits, 1u);
}

TEST(PulseCache, CorruptDiskRecordReadsAsMiss)
{
    TempDir dir("qpc_cache_corrupt");
    PulseCache cache(cacheOptions(16, 2, dir.path()));
    cache.put(fp(3), samplePulse(3));
    cache.clearMemory();

    // Truncate the record behind the cache's back.
    const std::string file = dir.path() + "/" + fp(3).hex() + ".qpulse";
    ASSERT_TRUE(std::filesystem::exists(file));
    std::filesystem::resize_file(file, 10);

    EXPECT_FALSE((cache.get(fp(3)) != nullptr));
    EXPECT_EQ(cache.stats().misses, 1u);
}

// ---------------------------------------------------------------------
// Capacity distribution across shards
// ---------------------------------------------------------------------

TEST(PulseCache, CapacityRemainderIsDistributedAcrossShards)
{
    // The PR 4 regression: capacity=12 over 8 shards used to truncate
    // to 1 entry/shard = 8 effective entries. The remainder now goes
    // to the low shards, so the effective capacity meets the request.
    PulseCache cache(cacheOptions(12, 8));
    EXPECT_EQ(cache.effectiveCapacity(), 12u);

    // Saturate every shard: with far more distinct keys than
    // capacity, the resident count must reach the full request, not
    // the truncated one.
    for (uint64_t i = 0; i < 400; ++i)
        cache.put(fp(i), samplePulse(i, 1, 4));
    EXPECT_EQ(cache.stats().entries, 12u);

    // Capacity below the shard count still guarantees one entry per
    // shard (a shard cannot hold half an entry).
    PulseCache tiny(cacheOptions(3, 8));
    EXPECT_EQ(tiny.effectiveCapacity(), 8u);

    // And an exact multiple is unchanged.
    PulseCache even(cacheOptions(16, 8));
    EXPECT_EQ(even.effectiveCapacity(), 16u);
}

// ---------------------------------------------------------------------
// Byte-budgeted eviction
// ---------------------------------------------------------------------

TEST(PulseCache, ByteBudgetEvictsOnBytesBeforeEntries)
{
    // One shard, entry cap far above the byte cap: eviction must run
    // on bytes. Each pulse is 44 + 1*10*8 = 124 serialized bytes.
    const PulseSchedule pulse = samplePulse(1, 1, 10);
    ASSERT_EQ(pulse.serializedBytes(), 124u);

    PulseCacheOptions options = cacheOptions(64, 1);
    options.capacityBytes = 3 * 124;
    PulseCache cache(options);

    for (uint64_t i = 0; i < 5; ++i)
        cache.put(fp(i), samplePulse(i, 1, 10));

    const CacheStats stats = cache.stats();
    EXPECT_EQ(stats.entries, 3u);
    EXPECT_EQ(stats.bytesInUse, 3u * 124u);
    EXPECT_LE(stats.bytesInUse, options.capacityBytes);
    EXPECT_EQ(stats.evictions, 2u);
    EXPECT_EQ(stats.bytesEvicted, 2u * 124u);
    // LRU order: the two oldest entries went.
    EXPECT_FALSE((cache.get(fp(0)) != nullptr));
    EXPECT_FALSE((cache.get(fp(1)) != nullptr));
    EXPECT_TRUE((cache.get(fp(2)) != nullptr));
    EXPECT_TRUE((cache.get(fp(4)) != nullptr));
}

TEST(PulseCache, OversizedPulseIsRefusedNotEvictedThrough)
{
    // A pulse bigger than the whole byte budget cannot be cached: the
    // budget is a hard bound, and the refusal happens up front so the
    // resident entries are not displaced for a hopeless insert.
    PulseCacheOptions options = cacheOptions(8, 1);
    options.capacityBytes = 200;
    PulseCache cache(options);

    cache.put(fp(1), samplePulse(1, 1, 10)); // 108 bytes: fits.
    cache.put(fp(2), samplePulse(2, 4, 64)); // 2076 bytes: cannot.

    const CacheStats stats = cache.stats();
    EXPECT_EQ(stats.entries, 1u);
    EXPECT_LE(stats.bytesInUse, options.capacityBytes);
    EXPECT_EQ(stats.oversized, 1u);
    EXPECT_EQ(stats.evictions, 0u);
    EXPECT_TRUE((cache.get(fp(1)) != nullptr));
    EXPECT_FALSE((cache.get(fp(2)) != nullptr));
}

TEST(PulseCache, DegenerateByteBudgetStillHoldsTheBound)
{
    // capacityBytes smaller than the shard count: the remainder split
    // would hand trailing shards a 0 budget, which must not read as
    // "unbounded". Every shard gets a 1-byte floor instead, so the
    // degenerate budget under-admits (everything refused) rather than
    // over-committing.
    PulseCacheOptions options = cacheOptions(64, 8);
    options.capacityBytes = 5;
    PulseCache cache(options);

    for (uint64_t i = 0; i < 64; ++i)
        cache.put(fp(i), samplePulse(i, 1, 4));

    const CacheStats stats = cache.stats();
    EXPECT_EQ(stats.entries, 0u);
    EXPECT_EQ(stats.bytesInUse, 0u);
    EXPECT_LE(stats.bytesInUse, options.capacityBytes);
    EXPECT_EQ(stats.oversized, 64u);
}

TEST(PulseCache, RefreshInPlaceTracksByteDelta)
{
    PulseCacheOptions options = cacheOptions(8, 1);
    options.capacityBytes = 4096;
    PulseCache cache(options);

    cache.put(fp(7), samplePulse(1, 1, 10)); // 124 bytes.
    EXPECT_EQ(cache.stats().bytesInUse, 124u);
    cache.put(fp(7), samplePulse(2, 1, 50)); // Re-synthesized: 444.
    const CacheStats stats = cache.stats();
    EXPECT_EQ(stats.entries, 1u);
    EXPECT_EQ(stats.bytesInUse, 444u);
}

TEST(PulseCache, ByteBudgetHoldsUnderConcurrentPuts)
{
    // 8 threads insert pulses of assorted sizes (some larger than a
    // single shard's slice of the budget) while a sampler thread
    // watches stats(): bytesInUse must never exceed capacityBytes at
    // any observable instant — the acceptance bound of the PR.
    PulseCacheOptions options = cacheOptions(256, 4);
    options.capacityBytes = 8 * 1024;
    PulseCache cache(options);

    std::atomic<bool> done{false};
    std::atomic<bool> violated{false};
    std::thread sampler([&cache, &options, &done, &violated] {
        while (!done.load()) {
            if (cache.stats().bytesInUse > options.capacityBytes)
                violated.store(true);
            std::this_thread::yield();
        }
    });

    constexpr int kThreads = 8;
    constexpr int kPutsPerThread = 120;
    std::vector<std::thread> writers;
    writers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t)
        writers.emplace_back([&cache, t] {
            for (int i = 0; i < kPutsPerThread; ++i) {
                const uint64_t key =
                    static_cast<uint64_t>(t) * 1000 + i;
                // Sizes from 36 to ~3.2 KB: several exceed the
                // per-shard budget of 2 KB.
                cache.put(fp(key),
                          samplePulse(key, 1, 1 + (i % 16) * 25));
                if (i % 7 == 0)
                    cache.get(fp(key));
            }
        });
    for (std::thread& w : writers)
        w.join();
    done.store(true);
    sampler.join();

    EXPECT_FALSE(violated.load());
    const CacheStats stats = cache.stats();
    EXPECT_LE(stats.bytesInUse, options.capacityBytes);
    EXPECT_GT(stats.evictions, 0u);
    EXPECT_GT(stats.bytesEvicted, 0u);
    EXPECT_GT(stats.oversized, 0u); // The > 2 KB pulses were refused.
}

// ---------------------------------------------------------------------
// Disk-tier garbage collection
// ---------------------------------------------------------------------

std::size_t
diskTierBytes(const std::string& dir)
{
    std::size_t total = 0;
    for (const auto& entry :
         std::filesystem::directory_iterator(dir))
        if (entry.is_regular_file())
            total += static_cast<std::size_t>(entry.file_size());
    return total;
}

TEST(PulseCache, DiskGcRemovesOldestKeepsNewest)
{
    TempDir dir("qpc_cache_gc");
    const std::size_t record = samplePulse(0, 1, 10).serializedBytes();

    PulseCacheOptions options = cacheOptions(64, 2, dir.path());
    options.maxDiskBytes = 3 * record;
    options.gcOnPut = false; // Sweep explicitly below.
    PulseCache cache(options);

    for (uint64_t i = 0; i < 6; ++i)
        cache.put(fp(i), samplePulse(i, 1, 10));
    ASSERT_EQ(diskTierBytes(dir.path()), 6 * record);

    // Pin mtimes so recency is unambiguous regardless of filesystem
    // timestamp granularity: record i is i minutes old.
    const auto now = std::filesystem::file_time_type::clock::now();
    for (uint64_t i = 0; i < 6; ++i)
        std::filesystem::last_write_time(
            dir.path() + "/" + fp(i).hex() + ".qpulse",
            now - std::chrono::minutes(5 - i));

    // The sweep stops at the low-water mark (cap minus cap/8 = 284
    // bytes here), one record below the 3-record cap: 4 removals, the
    // 2 newest survive.
    const DiskGcReport report = cache.gcDisk();
    EXPECT_EQ(report.scannedFiles, 6u);
    EXPECT_EQ(report.removedFiles, 4u);
    EXPECT_EQ(report.removedBytes, 4 * record);
    EXPECT_EQ(report.remainingBytes, 2 * record);
    EXPECT_EQ(diskTierBytes(dir.path()), 2 * record);
    EXPECT_LE(report.remainingBytes, options.maxDiskBytes);

    // The newest records (largest mtime = 4 and 5) survive.
    cache.clearMemory();
    for (uint64_t i = 0; i < 4; ++i)
        EXPECT_FALSE((cache.get(fp(i)) != nullptr)) << i;
    for (uint64_t i = 4; i < 6; ++i)
        EXPECT_TRUE((cache.get(fp(i)) != nullptr)) << i;

    const CacheStats stats = cache.stats();
    EXPECT_EQ(stats.diskGcRuns, 1u);
    EXPECT_EQ(stats.diskGcRemovals, 4u);
    EXPECT_EQ(stats.diskGcBytesRemoved, 4 * record);
    EXPECT_EQ(stats.diskBytesInUse, 2 * record);
}

TEST(PulseCache, DiskGcEqualMtimesEvictInFilenameOrder)
{
    // Regression: mtime-LRU is nondeterministic when records share a
    // coarse (same-second) timestamp — two processes sweeping the same
    // tier could pick different victims. With every mtime equal, the
    // sweep must fall back to filename order so the outcome is stable.
    TempDir dir("qpc_cache_gc_ties");
    const std::size_t record = samplePulse(0, 1, 10).serializedBytes();

    PulseCacheOptions options = cacheOptions(64, 2, dir.path());
    options.maxDiskBytes = 3 * record;
    options.gcOnPut = false;
    PulseCache cache(options);

    std::vector<std::string> names;
    for (uint64_t i = 0; i < 6; ++i) {
        cache.put(fp(i), samplePulse(i, 1, 10));
        names.push_back(fp(i).hex() + ".qpulse");
    }
    const auto stamp = std::filesystem::file_time_type::clock::now();
    for (const std::string& name : names)
        std::filesystem::last_write_time(dir.path() + "/" + name,
                                         stamp);

    const DiskGcReport report = cache.gcDisk();
    EXPECT_EQ(report.scannedFiles, 6u);
    EXPECT_EQ(report.removedFiles, 4u);

    // Victims are the filename-smallest records, so the two largest
    // names survive — the exact set any process would keep.
    std::sort(names.begin(), names.end());
    std::vector<std::string> kept;
    for (const auto& entry :
         std::filesystem::directory_iterator(dir.path()))
        if (entry.path().extension() == ".qpulse")
            kept.push_back(entry.path().filename().string());
    std::sort(kept.begin(), kept.end());
    ASSERT_EQ(kept.size(), 2u);
    EXPECT_EQ(kept[0], names[4]);
    EXPECT_EQ(kept[1], names[5]);
}

TEST(PulseCache, GcOnPutKeepsDiskTierUnderCap)
{
    TempDir dir("qpc_cache_gconput");
    const std::size_t record = samplePulse(0, 1, 10).serializedBytes();

    PulseCacheOptions options = cacheOptions(64, 2, dir.path());
    options.maxDiskBytes = 4 * record;
    PulseCache cache(options); // gcOnPut defaults on.

    for (uint64_t i = 0; i < 12; ++i) {
        cache.put(fp(i), samplePulse(i, 1, 10));
        EXPECT_LE(diskTierBytes(dir.path()), options.maxDiskBytes)
            << "after put " << i;
    }
    EXPECT_GT(cache.stats().diskGcRuns, 0u);
    EXPECT_GT(cache.stats().diskGcRemovals, 0u);
}

TEST(PulseCache, DiskBytesAdoptedAcrossProcesses)
{
    TempDir dir("qpc_cache_adopt");
    {
        PulseCache writer(cacheOptions(64, 2, dir.path()));
        for (uint64_t i = 0; i < 5; ++i)
            writer.put(fp(i), samplePulse(i, 1, 10));
    }
    // A fresh cache over the same directory — a new process — knows
    // the tier's size immediately, so gcOnPut triggers at the right
    // point rather than only after maxDiskBytes of *new* writes.
    PulseCache reader(cacheOptions(64, 2, dir.path()));
    EXPECT_EQ(reader.stats().diskBytesInUse,
              diskTierBytes(dir.path()));
}

TEST(PulseCache, ConcurrentGetDuringGcNeverTearsARecord)
{
    TempDir dir("qpc_cache_gc_race");
    PulseCacheOptions options = cacheOptions(64, 2, dir.path());
    options.maxDiskBytes = 6 * samplePulse(0, 1, 10).serializedBytes();
    options.gcOnPut = false;
    PulseCache cache(options);

    constexpr uint64_t kKeys = 24;
    for (uint64_t i = 0; i < kKeys; ++i)
        cache.put(fp(i), samplePulse(i, 1, 10));

    // Readers hammer every key straight off disk (memory dropped each
    // round) while sweeps run: every get must return either the full,
    // intact pulse or a clean miss — never a corrupt record.
    std::atomic<bool> stop{false};
    std::atomic<bool> corrupt{false};
    std::vector<std::thread> readers;
    for (int t = 0; t < 3; ++t)
        readers.emplace_back([&cache, &stop, &corrupt] {
            while (!stop.load()) {
                cache.clearMemory();
                for (uint64_t i = 0; i < kKeys; ++i) {
                    const PulsePtr pulse = cache.get(fp(i));
                    if (pulse && (pulse->numChannels() != 1 ||
                                  pulse->numSamples() != 10))
                        corrupt.store(true);
                }
            }
        });
    for (int round = 0; round < 30; ++round) {
        cache.gcDisk();
        // Refill some of what the sweep removed to keep it busy.
        for (uint64_t i = 0; i < 8; ++i)
            cache.put(fp(100 + (round * 8 + i) % kKeys),
                      samplePulse(i, 1, 10));
    }
    stop.store(true);
    for (std::thread& r : readers)
        r.join();

    EXPECT_FALSE(corrupt.load());
    EXPECT_LE(diskTierBytes(dir.path()),
              options.maxDiskBytes +
                  8 * samplePulse(0, 1, 10).serializedBytes());
}

// ---------------------------------------------------------------------
// Calibration-epoch keying
// ---------------------------------------------------------------------

/** Count of .qpulse records in a disk tier (ignores the lockfile). */
std::size_t
diskTierCount(const std::string& dir)
{
    std::size_t count = 0;
    for (const auto& entry :
         std::filesystem::directory_iterator(dir))
        if (entry.path().extension() == ".qpulse")
            ++count;
    return count;
}

/** fp(n) stamped with a calibration epoch. */
BlockFingerprint
fpe(uint64_t n, const CalibrationEpoch& epoch)
{
    BlockFingerprint f = fp(n);
    f.epoch = epoch;
    return f;
}

TEST(Fingerprint, EpochSeparatesOtherwiseIdenticalBlocks)
{
    const CalibrationEpoch e1{1, 7};
    const CalibrationEpoch e2{2, 7};
    const BlockFingerprint a = fpe(5, e1);
    const BlockFingerprint b = fpe(5, e2);
    const BlockFingerprint legacy = fp(5);

    EXPECT_NE(a, b);
    EXPECT_NE(a, legacy);
    EXPECT_EQ(a, fpe(5, CalibrationEpoch{1, 7}));

    const BlockFingerprintHash hash;
    EXPECT_NE(hash(a), hash(b));
    EXPECT_NE(hash(a), hash(legacy));

    // Distinct hex => distinct disk-tier filenames: epochs can never
    // collide on disk. The zero epoch keeps the legacy spelling, so
    // pre-epoch cache directories stay addressable.
    EXPECT_NE(a.hex(), b.hex());
    EXPECT_NE(a.hex(), legacy.hex());
    EXPECT_EQ(legacy.hex().find("-e"), std::string::npos);
    EXPECT_NE(a.hex().find("-e"), std::string::npos);
}

TEST(CalibrationEpoch, KeyNeverZeroForLiveEpochs)
{
    EXPECT_EQ(CalibrationEpoch{}.key(), 0u);
    EXPECT_NE((CalibrationEpoch{1, 0}).key(), 0u);
    EXPECT_NE((CalibrationEpoch{0, 1}).key(), 0u);
    EXPECT_NE((CalibrationEpoch{1, 0}).key(),
              (CalibrationEpoch{2, 0}).key());
}

TEST(PulseCache, AdoptionSkipsForeignEpochRecords)
{
    // Regression: construction used to adopt (and byte-track) every
    // .qpulse record in the directory, regardless of the epoch stamped
    // in its header — a recalibrated daemon would then GC-account and
    // serve pulses synthesized under a stale device model.
    TempDir dir("qpc_cache_epoch_adopt");
    const CalibrationEpoch live{3, 11};
    const CalibrationEpoch stale{2, 11};

    {
        PulseCache writer(cacheOptions(64, 2, dir.path()));
        // Two stale-epoch records and one live: put() stamps each
        // record with its fingerprint's epoch.
        writer.put(fpe(1, stale), samplePulse(1, 1, 10));
        writer.put(fpe(2, stale), samplePulse(2, 1, 10));
        writer.put(fpe(3, live), samplePulse(3, 1, 10));
    }

    PulseCacheOptions options = cacheOptions(64, 2, dir.path());
    options.epoch = live;
    PulseCache cache(options);

    const std::size_t record =
        samplePulse(0, 1, 10).serializedBytes();
    const CacheStats stats = cache.stats();
    EXPECT_EQ(stats.adoptionSkipped, 2u);
    EXPECT_EQ(stats.adoptionSkippedBytes, 2u * record);
    EXPECT_EQ(stats.diskBytesInUse, record);

    // The live record serves from disk; the stale ones are not this
    // cache's to serve (their fingerprints carry the stale epoch and
    // resolve to different filenames anyway).
    EXPECT_TRUE(cache.get(fpe(3, live)) != nullptr);
    EXPECT_EQ(cache.stats().diskHits, 1u);
}

TEST(PulseCache, DiskEpochMismatchServesAsAMiss)
{
    // A record whose stamped epoch disagrees with the requested
    // fingerprint's (a torn rsync, a hand-copied cache dir) must read
    // as a miss, never as a wrong-calibration pulse.
    TempDir dir("qpc_cache_epoch_mismatch");
    const CalibrationEpoch live{4, 9};
    PulseCacheOptions options = cacheOptions(64, 2, dir.path());
    options.epoch = live;
    PulseCache cache(options);

    const BlockFingerprint f = fpe(1, live);
    const std::string path = dir.path() + "/" + f.hex() + ".qpulse";
    ASSERT_TRUE(savePulseSchedule(path, samplePulse(1, 1, 10),
                                  CalibrationEpoch{9, 9}));

    EXPECT_TRUE(cache.get(f) == nullptr);
    const CacheStats stats = cache.stats();
    EXPECT_EQ(stats.diskEpochMismatches, 1u);
    EXPECT_EQ(stats.diskHits, 0u);
    EXPECT_EQ(stats.misses, 1u);
}

// ---------------------------------------------------------------------
// Fleet-shared disk tier
// ---------------------------------------------------------------------

TEST(PulseCache, GcSkipsWhileAnotherSweeperHoldsTheLock)
{
    TempDir dir("qpc_cache_gc_flock");
    PulseCacheOptions options = cacheOptions(64, 2, dir.path());
    // Low-water mark is cap - cap/8: a 2-record cap sweeps 4 records
    // down to 1.
    options.maxDiskBytes =
        2 * samplePulse(0, 1, 10).serializedBytes();
    options.gcOnPut = false;
    PulseCache cache(options);
    for (uint64_t i = 0; i < 4; ++i)
        cache.put(fp(i), samplePulse(i, 1, 10));

    // Impersonate a sibling daemon mid-sweep: hold the tier's flock
    // from a separate file description.
    const int lock_fd =
        ::open((dir.path() + "/.qpc-gc.lock").c_str(),
               O_CREAT | O_RDWR, 0644);
    ASSERT_GE(lock_fd, 0);
    ASSERT_EQ(::flock(lock_fd, LOCK_EX), 0);

    const DiskGcReport busy = cache.gcDisk();
    EXPECT_TRUE(busy.lockBusy);
    EXPECT_EQ(busy.removedFiles, 0u);
    EXPECT_EQ(cache.stats().diskGcLockBusy, 1u);
    EXPECT_EQ(diskTierCount(dir.path()), 4u);

    ASSERT_EQ(::flock(lock_fd, LOCK_UN), 0);
    ::close(lock_fd);

    const DiskGcReport swept = cache.gcDisk();
    EXPECT_FALSE(swept.lockBusy);
    EXPECT_EQ(swept.removedFiles, 3u);
    EXPECT_LE(diskTierBytes(dir.path()), options.maxDiskBytes);
}

TEST(PulseCache, TwoCachesShareOneDiskTierWithoutTornState)
{
    // Two PulseCache instances on one directory stand in for two
    // daemons sharing a fleet cache dir (flock is per open file
    // description, so the exclusion is identical in-process). Both
    // put, get, and sweep concurrently; afterwards no record may be
    // torn and the tier must respect the cap.
    TempDir dir("qpc_cache_shared_tier");
    const std::size_t record =
        samplePulse(0, 1, 10).serializedBytes();
    PulseCacheOptions options = cacheOptions(16, 2, dir.path());
    options.capacityBytes = 4 * record; // Evict: force disk reads.
    options.maxDiskBytes = 24 * record;
    options.gcOnPut = false;
    PulseCache a(options);
    PulseCache b(options);

    std::atomic<bool> corrupt{false};
    std::atomic<uint64_t> sweeps{0};
    const auto worker = [&](PulseCache& cache, uint64_t salt) {
        Rng rng(salt);
        for (int i = 0; i < 200; ++i) {
            const uint64_t n =
                static_cast<uint64_t>(rng.randint(0, 47));
            cache.put(fp(n), samplePulse(n, 1, 10));
            const PulsePtr got = cache.get(
                fp(static_cast<uint64_t>(rng.randint(0, 47))));
            if (got && got->serializedBytes() != record)
                corrupt.store(true);
            if (i % 16 == 0) {
                const DiskGcReport report = cache.gcDisk();
                if (!report.lockBusy)
                    sweeps.fetch_add(1);
            }
        }
    };
    std::thread ta(worker, std::ref(a), 101);
    std::thread tb(worker, std::ref(b), 202);
    ta.join();
    tb.join();

    EXPECT_FALSE(corrupt.load());
    EXPECT_GT(sweeps.load(), 0u);

    // Final sweep reconciles the byte tracker against a full rescan
    // (each cache only tracked its own writes while racing): the
    // reported remainder must equal what is actually on disk, under
    // the cap, and every surviving record must load cleanly.
    const DiskGcReport final_sweep = a.gcDisk();
    EXPECT_FALSE(final_sweep.lockBusy);
    EXPECT_EQ(final_sweep.remainingBytes, diskTierBytes(dir.path()));
    EXPECT_LE(final_sweep.remainingBytes, options.maxDiskBytes);
    for (const auto& entry :
         std::filesystem::directory_iterator(dir.path())) {
        if (entry.path().extension() != ".qpulse")
            continue;
        EXPECT_TRUE(
            loadPulseSchedule(entry.path().string()).has_value())
            << "torn record: " << entry.path();
    }
}

} // namespace
