#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <unistd.h>

#include "cache/fingerprint.h"
#include "cache/pulsecache.h"
#include "pulse/serialize.h"
#include "testutil.h"

namespace {

using namespace qpc;
using namespace qpc::testutil;

const double kPi = 3.14159265358979323846;

/** Unique scratch directory under the test's working dir. */
class TempDir
{
  public:
    explicit TempDir(const std::string& stem)
    {
        path_ = (std::filesystem::temp_directory_path() /
                 (stem + "." + std::to_string(::getpid())))
                    .string();
        std::filesystem::remove_all(path_);
        std::filesystem::create_directories(path_);
    }
    ~TempDir() { std::filesystem::remove_all(path_); }
    const std::string& path() const { return path_; }

  private:
    std::string path_;
};

PulseSchedule
samplePulse(uint64_t seed, int channels = 3, int samples = 17)
{
    Rng rng(seed);
    PulseSchedule pulse(channels, samples, 0.05);
    for (int c = 0; c < channels; ++c)
        for (double& v : pulse.channel(c))
            v = rng.normal();
    return pulse;
}

// ---------------------------------------------------------------------
// Fingerprints
// ---------------------------------------------------------------------

TEST(Fingerprint, DeterministicAcrossCopies)
{
    Rng rng(3);
    const Circuit a = randomCircuit(rng, 3, 12);
    const Circuit b = a;
    EXPECT_EQ(fingerprintBlock(a), fingerprintBlock(b));
    EXPECT_EQ(fingerprintBlock(a).hex(), fingerprintBlock(b).hex());
}

TEST(Fingerprint, SensitiveToStructure)
{
    Circuit a(2);
    a.h(0);
    a.cx(0, 1);
    Circuit b(2);
    b.cx(0, 1);
    b.h(0);
    EXPECT_NE(fingerprintBlock(a).structureHash,
              fingerprintBlock(b).structureHash);

    Circuit c(2);
    c.h(0);
    c.cx(1, 0); // Swapped control/target.
    EXPECT_NE(fingerprintBlock(a).structureHash,
              fingerprintBlock(c).structureHash);

    Circuit d(2);
    d.h(0);
    d.cx(0, 1);
    d.rz(1, 0.25);
    EXPECT_NE(fingerprintBlock(a), fingerprintBlock(d));
}

TEST(Fingerprint, SensitiveToAngles)
{
    Circuit a(1);
    a.rz(0, 0.5);
    Circuit b(1);
    b.rz(0, 0.5 + 1e-6);
    EXPECT_NE(fingerprintBlock(a).structureHash,
              fingerprintBlock(b).structureHash);
}

TEST(Fingerprint, UnitaryHashIsGlobalPhaseInvariant)
{
    // Z and Rz(pi) = -i Z differ exactly by a global phase: the
    // structural hashes differ, the unitary fingerprints agree.
    Circuit z(1);
    z.z(0);
    Circuit rz(1);
    rz.rz(0, kPi);
    const BlockFingerprint fz = fingerprintBlock(z);
    const BlockFingerprint frz = fingerprintBlock(rz);
    EXPECT_NE(fz.structureHash, frz.structureHash);
    EXPECT_EQ(fz.unitaryHash, frz.unitaryHash);
    // The unitary hash is the canonical address: the two spellings
    // are one cache entry (equality, container hash, and disk name).
    EXPECT_EQ(fz, frz);
    EXPECT_EQ(BlockFingerprintHash{}(fz), BlockFingerprintHash{}(frz));
    EXPECT_EQ(fz.hex(), frz.hex());

    // Direct check on matrices as well.
    const CMatrix u = gateMatrix(GateKind::H);
    EXPECT_EQ(phaseInvariantUnitaryHash(u),
              phaseInvariantUnitaryHash(u * Complex(0.0, 1.0)));
    EXPECT_EQ(phaseInvariantUnitaryHash(u),
              phaseInvariantUnitaryHash(u * std::exp(kImag * 0.7)));
}

TEST(Fingerprint, DistinctUnitariesDistinctHashes)
{
    EXPECT_NE(phaseInvariantUnitaryHash(gateMatrix(GateKind::X)),
              phaseInvariantUnitaryHash(gateMatrix(GateKind::Y)));
    EXPECT_NE(phaseInvariantUnitaryHash(gateMatrix(GateKind::H)),
              phaseInvariantUnitaryHash(gateMatrix(GateKind::Z)));
}

TEST(Fingerprint, WideBlocksFallBackToStructureAddressing)
{
    // 7 qubits is past the unitary-simulation cap: the address is the
    // structure hash and the hex stem is tagged accordingly.
    Circuit wide(7);
    for (int q = 0; q < 6; ++q)
        wide.cx(q, q + 1);
    const BlockFingerprint fw = fingerprintBlock(wide);
    EXPECT_EQ(fw.unitaryHash, 0u);
    EXPECT_EQ(fw.canonical(), fw.structureHash);
    EXPECT_EQ(fw.hex().front(), 's');
    EXPECT_EQ(fingerprintBlock(wide), fw);

    Circuit narrow(1);
    narrow.h(0);
    EXPECT_EQ(fingerprintBlock(narrow).hex().front(), 'u');
    EXPECT_NE(fingerprintBlock(narrow), fw);
}

TEST(Fingerprint, RelabeledBlocksShareAddresses)
{
    // The same local structure extracted from different global
    // positions must collide — that is the whole point of
    // content-addressing blocks after relabeling.
    Circuit a(2);
    a.h(0);
    a.cx(0, 1);
    Circuit wide(4);
    wide.h(2);
    wide.cx(2, 3);
    // Relabel {2,3} -> {0,1} by hand, mirroring CircuitBlock::asCircuit.
    Circuit relabeled(2);
    relabeled.h(0);
    relabeled.cx(0, 1);
    EXPECT_EQ(fingerprintBlock(a), fingerprintBlock(relabeled));
}

// ---------------------------------------------------------------------
// In-memory LRU tier
// ---------------------------------------------------------------------

BlockFingerprint
fp(uint64_t n)
{
    BlockFingerprint f;
    f.structureHash = n * 0x9e3779b97f4a7c15ull + 1;
    f.unitaryHash = n;
    return f;
}

TEST(PulseCache, HitMissAndStats)
{
    PulseCache cache({16, 2, ""});
    EXPECT_FALSE((cache.get(fp(1)) != nullptr));
    cache.put(fp(1), samplePulse(1));
    const auto hit = cache.get(fp(1));
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->numChannels(), 3);

    const CacheStats stats = cache.stats();
    EXPECT_EQ(stats.lookups, 2u);
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.insertions, 1u);
    EXPECT_EQ(stats.entries, 1u);
    EXPECT_NEAR(stats.hitRate(), 0.5, 1e-12);
}

TEST(PulseCache, EvictsLeastRecentlyUsed)
{
    // One shard of capacity 4 makes the LRU order fully observable.
    PulseCache cache({4, 1, ""});
    for (uint64_t i = 0; i < 4; ++i)
        cache.put(fp(i), samplePulse(i));
    // Touch 0 so 1 becomes the eviction victim.
    EXPECT_TRUE((cache.get(fp(0)) != nullptr));
    cache.put(fp(99), samplePulse(99));

    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_TRUE((cache.get(fp(0)) != nullptr));
    EXPECT_FALSE((cache.get(fp(1)) != nullptr));
    EXPECT_TRUE((cache.get(fp(99)) != nullptr));
    EXPECT_EQ(cache.stats().entries, 4u);
}

TEST(PulseCache, PutSameKeyRefreshesInPlace)
{
    PulseCache cache({4, 1, ""});
    cache.put(fp(7), samplePulse(1));
    cache.put(fp(7), samplePulse(2));
    EXPECT_EQ(cache.stats().entries, 1u);
    EXPECT_EQ(cache.stats().insertions, 1u);
    // The refreshed pulse is the one served.
    const auto got = cache.get(fp(7));
    ASSERT_NE(got, nullptr);
    EXPECT_EQ(got->channel(0), samplePulse(2).channel(0));
}

// ---------------------------------------------------------------------
// Disk tier
// ---------------------------------------------------------------------

TEST(PulseCache, DiskRoundTripSurvivesMemoryLoss)
{
    TempDir dir("qpc_cache_disk");
    const PulseSchedule original = samplePulse(5);
    {
        PulseCache cache({16, 2, dir.path()});
        cache.put(fp(42), original);
        EXPECT_EQ(cache.stats().diskWrites, 1u);
    }
    // A brand-new cache (fresh process, empty memory) finds the pulse
    // on disk and promotes it.
    PulseCache cold({16, 2, dir.path()});
    const auto got = cold.get(fp(42));
    ASSERT_NE(got, nullptr);
    for (int c = 0; c < original.numChannels(); ++c)
        EXPECT_EQ(got->channel(c), original.channel(c));
    EXPECT_EQ(cold.stats().diskHits, 1u);

    // Promoted: the second lookup is a memory hit.
    EXPECT_TRUE((cold.get(fp(42)) != nullptr));
    EXPECT_EQ(cold.stats().hits, 1u);
}

TEST(PulseCache, ClearMemoryKeepsDiskTier)
{
    TempDir dir("qpc_cache_clear");
    PulseCache cache({16, 2, dir.path()});
    cache.put(fp(8), samplePulse(8));
    cache.clearMemory();
    EXPECT_EQ(cache.stats().entries, 0u);
    EXPECT_TRUE((cache.get(fp(8)) != nullptr));
    EXPECT_EQ(cache.stats().diskHits, 1u);
}

TEST(PulseCache, CorruptDiskRecordReadsAsMiss)
{
    TempDir dir("qpc_cache_corrupt");
    PulseCache cache({16, 2, dir.path()});
    cache.put(fp(3), samplePulse(3));
    cache.clearMemory();

    // Truncate the record behind the cache's back.
    const std::string file = dir.path() + "/" + fp(3).hex() + ".qpulse";
    ASSERT_TRUE(std::filesystem::exists(file));
    std::filesystem::resize_file(file, 10);

    EXPECT_FALSE((cache.get(fp(3)) != nullptr));
    EXPECT_EQ(cache.stats().misses, 1u);
}

} // namespace
