#include <gtest/gtest.h>

#include <cmath>

#include "linalg/expm.h"
#include "linalg/su2.h"
#include "qaoa/qaoadriver.h"
#include "sim/statevector.h"
#include "testutil.h"

namespace {

using namespace qpc;
using namespace qpc::testutil;

TEST(Graph, CliqueAndCycle)
{
    const Graph k4 = cliqueGraph(4);
    EXPECT_EQ(k4.numEdges(), 6);
    EXPECT_TRUE(k4.isConnected());
    const Graph c5 = cycleGraph(5);
    EXPECT_EQ(c5.numEdges(), 5);
    for (int d : c5.degrees())
        EXPECT_EQ(d, 2);
}

TEST(Graph, ThreeRegularDegrees)
{
    Rng rng(101);
    for (int n : {6, 8}) {
        const Graph g = random3Regular(n, rng);
        EXPECT_TRUE(g.isConnected());
        for (int d : g.degrees())
            EXPECT_EQ(d, 3) << "n " << n;
        EXPECT_EQ(g.numEdges(), 3 * n / 2);
    }
}

TEST(Graph, ErdosRenyiConnectedAndSeeded)
{
    Rng a(5), b(5);
    const Graph ga = erdosRenyi(8, 0.5, a);
    const Graph gb = erdosRenyi(8, 0.5, b);
    EXPECT_TRUE(ga.isConnected());
    EXPECT_EQ(ga.numEdges(), gb.numEdges());
}

TEST(MaxCut, TriangleAndClique)
{
    // Triangle: best cut 2. K4: best cut 4.
    EXPECT_EQ(bruteForceMaxCut(cliqueGraph(3)), 2);
    EXPECT_EQ(bruteForceMaxCut(cliqueGraph(4)), 4);
    // Even cycle is bipartite: all edges cut.
    EXPECT_EQ(bruteForceMaxCut(cycleGraph(6)), 6);
    // Odd cycle: one edge uncut.
    EXPECT_EQ(bruteForceMaxCut(cycleGraph(5)), 4);
}

TEST(MaxCut, CutValueCountsProperly)
{
    const Graph k3 = cliqueGraph(3);
    EXPECT_EQ(cutValue(k3, 0b000), 0);
    EXPECT_EQ(cutValue(k3, 0b001), 2);
    EXPECT_EQ(cutValue(k3, 0b011), 2);
}

TEST(MaxCut, HamiltonianExpectationOnBasisStates)
{
    const Graph k3 = cliqueGraph(3);
    const PauliHamiltonian h = maxcutCostHamiltonian(k3);
    // Basis |q0 q1 q2> = |001>: node 2 separated => cut 2 =>
    // <H_C> = -2. State index: qubit 0 is the MSB.
    StateVector sv(3);
    Circuit c(3);
    c.x(2);
    sv.applyCircuit(c);
    EXPECT_NEAR(h.expectation(sv), -2.0, 1e-10);
    EXPECT_NEAR(expectedCut(h.expectation(sv)), 2.0, 1e-10);
}

TEST(QaoaCircuit, ShapeAndParameterTags)
{
    const Graph g = cliqueGraph(4);
    for (int p = 1; p <= 3; ++p) {
        const Circuit c = buildQaoaCircuit(g, p);
        EXPECT_EQ(c.numParams(), 2 * p);
        EXPECT_TRUE(isParamMonotone(c));
        // Ops: n Hadamards + p * (3 per edge + n mixers).
        EXPECT_EQ(c.size(), 4 + p * (3 * g.numEdges() + 4));
    }
}

TEST(QaoaCircuit, CostLayerImplementsZzEvolution)
{
    // One edge at p=1, binding beta = 0: circuit is H x H followed by
    // exp(-i gamma ZZ).
    Graph g;
    g.numNodes = 2;
    g.edges = {{0, 1}};
    const Circuit c = buildQaoaCircuit(g, 1);
    const double gamma = 0.65;
    const Circuit bound = c.bind({gamma, 0.0});
    const CMatrix realized = circuitUnitary(bound);

    PauliHamiltonian zz(2);
    zz.add(1.0, "ZZ");
    CMatrix expected =
        expmGeneral(zz.toMatrix() * Complex{0.0, -gamma});
    expected = expected * kron(hMatrix(), hMatrix());
    EXPECT_TRUE(sameUpToPhase(expected, realized, 1e-8));
}

TEST(QaoaDriver, TriangleApproachesMaxCut)
{
    QaoaRunOptions options;
    options.p = 2;
    options.optimizer.maxIterations = 800;
    const QaoaResult result = runQaoa(cliqueGraph(3), options);
    EXPECT_EQ(result.maxCut, 2);
    EXPECT_GT(result.approxRatio, 0.85);
    EXPECT_LE(result.approxRatio, 1.0 + 1e-9);
}

TEST(QaoaDriver, DeeperPImproves)
{
    QaoaRunOptions shallow;
    shallow.p = 1;
    shallow.optimizer.maxIterations = 500;
    QaoaRunOptions deep = shallow;
    deep.p = 3;
    Rng rng(103);
    const Graph g = cycleGraph(5);
    const QaoaResult r1 = runQaoa(g, shallow);
    const QaoaResult r3 = runQaoa(g, deep);
    EXPECT_GE(r3.approxRatio, r1.approxRatio - 0.02);
}

TEST(QaoaDriver, AggregateLatencyScalesWithIterations)
{
    const Graph g = cliqueGraph(4);
    const Circuit circuit = buildQaoaCircuit(g, 2);
    PartialCompiler compiler(circuit);
    Rng rng(104);
    const std::vector<double> theta = rng.angles(4);
    const auto once = aggregateLatencies(compiler, theta, 1);
    const auto many = aggregateLatencies(compiler, theta, 1000);
    ASSERT_EQ(once.size(), 4u);
    for (size_t i = 0; i < once.size(); ++i) {
        EXPECT_NEAR(many[i].totalRuntimeSeconds,
                    1000.0 * once[i].totalRuntimeSeconds, 1e-6);
        EXPECT_NEAR(many[i].precomputeSeconds,
                    once[i].precomputeSeconds, 1e-12);
    }
}

} // namespace
