#include <gtest/gtest.h>

#include <cmath>

#include "grape/mintime.h"
#include "linalg/su2.h"
#include "model/latencymodel.h"
#include "model/timemodel.h"
#include "sim/statevector.h"
#include "testutil.h"
#include "transpile/durations.h"
#include "transpile/schedule.h"

namespace {

using namespace qpc;
using namespace qpc::testutil;

const double kPi = 3.14159265358979323846;

TEST(TimeModel, Table1Anchors)
{
    const PulseTimeModel model;
    // Rx(pi) at max charge drive: exactly 2.5 ns.
    EXPECT_NEAR(model.singleQubitTimeNs(rxMatrix(kPi)), 2.5, 0.05);
    // H near its Table 1 value.
    EXPECT_NEAR(model.singleQubitTimeNs(hMatrix()), 1.4, 0.1);
    // CX between the 2.5 ns interaction bound and 3.8 ns gate cost.
    const double cx = model.twoQubitTimeNs(gateMatrix(GateKind::CX));
    EXPECT_GT(cx, 2.5);
    EXPECT_LE(cx, 3.8);
    // SWAP: pure canonical gate, 3 * (pi/4) / g = 7.5 ns.
    EXPECT_NEAR(model.twoQubitTimeNs(gateMatrix(GateKind::SWAP)), 7.5,
                0.1);
}

TEST(TimeModel, IdentityAndZCostsNearZero)
{
    const PulseTimeModel model;
    EXPECT_NEAR(model.singleQubitTimeNs(CMatrix::identity(2)), 0.0,
                1e-9);
    // Z rotations are 15x faster than X rotations.
    EXPECT_LT(model.singleQubitTimeNs(rzMatrix(kPi)),
              model.singleQubitTimeNs(rxMatrix(kPi)) / 5.0);
}

TEST(TimeModel, LocalPairCostsNoInteraction)
{
    const PulseTimeModel model;
    const CMatrix local = kron(hMatrix(), rxMatrix(0.8));
    const double t = model.twoQubitTimeNs(local);
    // Priced as parallel single-qubit work: max of the two.
    EXPECT_NEAR(t, model.singleQubitTimeNs(hMatrix()), 0.1);
}

TEST(TimeModel, FractionalGateDiscovery)
{
    // CX Rz(gamma) CX with small gamma must cost far less than two
    // CX gates — the fractional-gate speedup source of Section 5.1.
    const PulseTimeModel model;
    Circuit sandwich(2);
    sandwich.cx(0, 1);
    sandwich.rz(1, 0.4);
    sandwich.cx(0, 1);
    const double fused = model.blockTimeNs(sandwich);
    const double two_cx =
        2.0 * model.twoQubitTimeNs(gateMatrix(GateKind::CX));
    EXPECT_LT(fused, 0.5 * two_cx);
}

TEST(TimeModel, BlockNeverBeatsQuantumSpeedLimitForX)
{
    // A single Rx(pi) block: model must charge the full 2.5 ns.
    const PulseTimeModel model;
    Circuit c(1);
    c.rx(0, kPi);
    EXPECT_NEAR(model.blockTimeNs(c), 2.5, 0.05);
}

TEST(TimeModel, BlockTimeAtMostGateBased)
{
    Rng rng(71);
    const PulseTimeModel model;
    const GateDurations durations = GateDurations::table1();
    for (int trial = 0; trial < 10; ++trial) {
        const Circuit c = randomCircuit(rng, 4, 30);
        EXPECT_LE(model.blockTimeNs(c),
                  criticalPathNs(c, durations) + 1e-9);
    }
}

TEST(TimeModel, SaturationCapsDeepBlocks)
{
    const PulseTimeModel model;
    Circuit deep(4);
    Rng rng(72);
    for (int i = 0; i < 300; ++i) {
        deep.cx(rng.randint(0, 2), 3);
        deep.rx(3, rng.angle());
        deep.h(rng.randint(0, 3));
    }
    const Circuit bound = deep;
    EXPECT_LE(model.blockTimeNs(bound),
              model.saturationNs(4) + 1e-9);
}

TEST(TimeModel, CircuitTimePositiveAndBelowGate)
{
    Rng rng(73);
    const PulseTimeModel model;
    const GateDurations durations = GateDurations::table1();
    for (int trial = 0; trial < 6; ++trial) {
        const Circuit c = randomCircuit(rng, 6, 60);
        const double t = model.circuitTimeNs(c, 4);
        EXPECT_GT(t, 0.0);
        EXPECT_LE(t, criticalPathNs(c, durations) + 1e-9);
    }
}

TEST(TimeModel, CrossValidatedAgainstRealGrape)
{
    // The substitution check: for small unitaries the analytic model
    // must agree with real GRAPE's binary-searched minimal time to
    // within the search precision plus modelling slack.
    DeviceModel device = DeviceModel::gmonLine(1);
    const PulseTimeModel model;

    MinTimeOptions options;
    options.grape.dt = 0.1;
    options.grape.maxIterations = 300;
    options.grape.hyper = AdamHyperParams{0.1, 0.999};
    options.lowerBoundNs = 0.3;
    options.upperBoundNs = 6.0;

    for (const CMatrix& target :
         {rxMatrix(kPi), hMatrix(), rxMatrix(1.2)}) {
        const MinTimeResult grape =
            grapeMinimalTime(device, target, options);
        ASSERT_TRUE(grape.found);
        const double predicted = model.singleQubitTimeNs(target);
        EXPECT_NEAR(grape.minTimeNs, predicted, 1.0)
            << "model " << predicted << " vs GRAPE "
            << grape.minTimeNs;
    }
}

TEST(LatencyModel, ScalesWithWidthAndDuration)
{
    const GrapeLatencyModel model;
    EXPECT_GT(model.iterationSeconds(4, 50.0),
              8.0 * model.iterationSeconds(3, 50.0) * 0.99);
    EXPECT_NEAR(model.iterationSeconds(2, 40.0),
                2.0 * model.iterationSeconds(2, 20.0), 1e-12);
}

TEST(LatencyModel, FullVsTunedRatio)
{
    const GrapeLatencyModel model;
    const double full = model.fullGrapeSeconds(4, 50.0);
    const double tuned = model.tunedGrapeSeconds(4, 50.0);
    const double ratio = full / tuned;
    // Paper's Figure 7 envelope: 10x to 100x.
    EXPECT_GT(ratio, 10.0);
    EXPECT_LT(ratio, 120.0);
}

TEST(LatencyModel, FourQubitBlockTakesMinutes)
{
    // Section 1: several minutes to an hour for a 4-qubit circuit.
    const GrapeLatencyModel model;
    const double seconds = model.fullGrapeSeconds(4, 50.0);
    EXPECT_GT(seconds, 60.0);
    EXPECT_LT(seconds, 3600.0 * 8.0);
}

TEST(LatencyModel, ProbeCountMatchesPaperFootnote)
{
    // log2(M / 0.3 ns) probes; with M = 60 ns that is ~8.
    const GrapeLatencyModel model;
    EXPECT_GE(model.searchProbes(), 6);
    EXPECT_LE(model.searchProbes(), 10);
}

} // namespace
