#include <gtest/gtest.h>

#include <cmath>

#include "partial/compiler.h"
#include "qaoa/qaoadriver.h"
#include "runtime/service.h"
#include "testutil.h"
#include "transpile/mapping.h"
#include "transpile/passes.h"
#include "vqe/hamiltonian.h"
#include "vqe/uccsd.h"
#include "vqe/vqedriver.h"

namespace {

using namespace qpc;
using namespace qpc::testutil;

/**
 * The full H2 story end to end: build the ansatz, run the hybrid
 * loop to the ground state, then compile the converged circuit under
 * all four strategies and check the paper's qualitative claims.
 */
TEST(Integration, H2VqeThenCompile)
{
    const MoleculeSpec& spec = moleculeByName("H2");
    const Circuit ansatz = buildOptimizedUccsd(spec);

    VqeRunOptions run;
    run.optimizer.maxIterations = 600;
    const VqeResult vqe = runVqe(ansatz, h2Hamiltonian(), run);
    EXPECT_NEAR(vqe.energy, vqe.exactGroundEnergy, 5e-3);

    PartialCompiler compiler(ansatz);
    const std::vector<CompileReport> reports =
        compiler.compileAll(vqe.bestParams);
    EXPECT_LE(reports[1].pulseNs, reports[0].pulseNs + 1e-9);
    EXPECT_LE(reports[3].pulseNs, reports[1].pulseNs + 1e-9);
    // Whole-circuit GRAPE on 2 qubits: large speedup (paper: 11x).
    EXPECT_GT(reports[0].pulseNs / reports[3].pulseNs, 3.0);
}

/**
 * The documented accuracy cost of angle-quantized serving: a VQE run
 * whose simulated hardware executes the snapped angles (the circuits
 * the quantized cache's pulses realize) must converge to within this
 * tolerance of the exact-recompilation run's energy. The default
 * 1024-bin grid perturbs each rotation by at most pi/1024 ~ 3e-3 rad;
 * near the variational optimum the energy is stationary, so the gap
 * is second order in that perturbation. Guarded tier1 in CI so the
 * accuracy/speed trade cannot silently regress.
 */
constexpr double kQuantizedVqeEnergyTolerance = 2e-3;

TEST(Integration, QuantizedVqeMatchesExactWithinTolerance)
{
    const MoleculeSpec& spec = moleculeByName("H2");
    const Circuit ansatz = buildOptimizedUccsd(spec);
    const PauliHamiltonian hamiltonian = h2Hamiltonian();

    VqeRunOptions exact_run;
    exact_run.optimizer.maxIterations = 600;
    const VqeResult exact = runVqe(ansatz, hamiltonian, exact_run);

    CompileServiceOptions options;
    options.numWorkers = 2;
    options.lookupDt = 0.5;
    options.cache.capacity = 8192;
    options.quantization.enabled = true; // Default grid: 1024 bins.
    CompileService service(options);

    VqeRunOptions quantized_run;
    quantized_run.optimizer.maxIterations = 600;
    quantized_run.compileService = &service;
    quantized_run.prewarmQuantizedBins = true;
    const VqeResult quantized =
        runVqe(ansatz, hamiltonian, quantized_run);

    // The quantized loop optimized over the angle grid; its energy
    // must sit within the documented tolerance of the exact run (and
    // both near the true ground state).
    EXPECT_NEAR(quantized.energy, exact.energy,
                kQuantizedVqeEnergyTolerance);
    EXPECT_NEAR(exact.energy, exact.exactGroundEnergy, 5e-3);
    EXPECT_NEAR(quantized.energy, quantized.exactGroundEnergy,
                5e-3 + kQuantizedVqeEnergyTolerance);

    // The loop really rode the quantized cache: after the grid
    // pre-warm every rotation serve is a warm hit, and the advertised
    // per-iteration error stayed within the budget (no fallbacks).
    EXPECT_GT(quantized.quantHits, 0u);
    EXPECT_EQ(quantized.quantMisses, 0u);
    EXPECT_EQ(quantized.quantFallbacks, 0u);
    EXPECT_EQ(quantized.servedCacheMisses, 0u);
    // maxQuantErrorBound sums the per-rotation bounds over one
    // iteration; each rotation is individually within the per-block
    // budget (zero fallbacks above), so the sum is capped by the
    // budget times the number of parametrized rotations.
    const int param_gates =
        strictPartition(ansatz).numParamGates();
    EXPECT_GT(quantized.maxQuantErrorBound, 0.0);
    EXPECT_LE(quantized.maxQuantErrorBound,
              param_gates * options.quantization.fidelityBudget);
}

TEST(Integration, QaoaOptimizeThenCompileMappedCircuit)
{
    Rng rng(111);
    const Graph graph = random3Regular(6, rng);

    QaoaRunOptions run;
    run.p = 1;
    run.optimizer.maxIterations = 300;
    const QaoaResult qaoa = runQaoa(graph, run);
    EXPECT_GT(qaoa.approxRatio, 0.5);

    Circuit circuit = buildQaoaCircuit(graph, 1);
    optimizeCircuit(circuit);
    const MappingResult mapped =
        mapToTopology(circuit, Topology::grid(2, 3));
    Circuit routed = mapped.circuit;
    optimizeCircuit(routed);
    EXPECT_TRUE(isParamMonotone(routed));

    PartialCompiler compiler(routed);
    const std::vector<CompileReport> reports =
        compiler.compileAll(qaoa.bestParams);
    EXPECT_LE(reports[1].pulseNs, reports[0].pulseNs + 1e-9);
    EXPECT_LE(reports[3].pulseNs, reports[2].pulseNs + 1e-9);
    // Flexible must deliver a real speedup on QAOA even at the
    // optimizer's converged (small-angle) parameters.
    EXPECT_GT(reports[0].pulseNs / reports[2].pulseNs, 1.15);
}

TEST(Integration, DecoherenceAdvantageOfShorterPulses)
{
    // The paper's motivation: error decays exponentially with pulse
    // time, so pulse speedups compound into success probability.
    const Circuit circuit = buildQaoaCircuit(cliqueGraph(4), 3);
    PartialCompiler compiler(circuit);
    Rng rng(112);
    const std::vector<double> theta = rng.angles(6);
    const std::vector<CompileReport> reports =
        compiler.compileAll(theta);

    const double t2_ns = 200.0;   // representative coherence time
    auto success = [&](double pulse_ns) {
        return std::exp(-pulse_ns / t2_ns);
    };
    EXPECT_GT(success(reports[3].pulseNs),
              success(reports[0].pulseNs));
    // The ratio of survival probabilities exceeds the time ratio —
    // the "exponential in the exponent" argument of Section 9.
    const double ratio =
        success(reports[3].pulseNs) / success(reports[0].pulseNs);
    EXPECT_GT(ratio, reports[0].pulseNs / reports[3].pulseNs / 10.0);
}

TEST(Integration, StrictIsNeverWorseAcrossBenchmarks)
{
    Rng rng(113);
    // Sweep the small end of both benchmark families.
    std::vector<Circuit> circuits;
    circuits.push_back(
        buildOptimizedUccsd(moleculeByName("H2")));
    circuits.push_back(
        buildOptimizedUccsd(moleculeByName("LiH")));
    circuits.push_back(buildQaoaCircuit(cliqueGraph(4), 2));
    {
        Circuit c = buildQaoaCircuit(random3Regular(6, rng), 2);
        optimizeCircuit(c);
        circuits.push_back(c);
    }
    for (const Circuit& circuit : circuits) {
        PartialCompiler compiler(circuit);
        const std::vector<double> theta =
            rng.angles(circuit.numParams());
        const CompileReport gate =
            compiler.compile(Strategy::GateBased, theta);
        const CompileReport strict =
            compiler.compile(Strategy::StrictPartial, theta);
        EXPECT_LE(strict.pulseNs, gate.pulseNs + 1e-9);
        EXPECT_LE(strict.runtimeSeconds, 1e-3);
    }
}

TEST(Integration, VariationalLoopAmortizesPrecompute)
{
    // Strict pays pre-compute once; full GRAPE pays per iteration.
    // After the paper's 3500 iterations the totals must diverge by
    // orders of magnitude.
    const Circuit circuit =
        buildOptimizedUccsd(moleculeByName("LiH"));
    PartialCompiler compiler(circuit);
    Rng rng(114);
    const std::vector<double> theta =
        rng.angles(circuit.numParams());
    const auto agg = aggregateLatencies(compiler, theta, 3500);

    const double strict_total =
        agg[1].precomputeSeconds + agg[1].totalRuntimeSeconds;
    const double full_total =
        agg[3].precomputeSeconds + agg[3].totalRuntimeSeconds;
    EXPECT_GT(full_total, 100.0 * strict_total);
}

TEST(Integration, MappedVqeStaysMonotoneAndCompilable)
{
    const MoleculeSpec& spec = moleculeByName("BeH2");
    Circuit circuit = buildUccsdAnsatz(spec);
    optimizeCircuit(circuit);
    const MappingResult mapped =
        mapToTopology(circuit, Topology::line(spec.numQubits));
    Circuit routed = mapped.circuit;
    optimizeCircuit(routed);

    EXPECT_TRUE(isParamMonotone(routed));
    EXPECT_EQ(routed.numParams(), spec.numParams);

    PartialCompiler compiler(routed);
    Rng rng(115);
    const std::vector<CompileReport> reports =
        compiler.compileAll(rng.angles(spec.numParams));
    for (const CompileReport& r : reports)
        EXPECT_GT(r.pulseNs, 0.0);
}

} // namespace
