#include <gtest/gtest.h>

#include <cmath>

#include "linalg/matrix.h"
#include "linalg/random_unitary.h"
#include "linalg/su2.h"

namespace {

using namespace qpc;

TEST(Matrix, IdentityProperties)
{
    const CMatrix id = CMatrix::identity(4);
    EXPECT_EQ(id.rows(), 4);
    EXPECT_EQ(id.cols(), 4);
    EXPECT_TRUE(id.isUnitary());
    EXPECT_TRUE(id.isHermitian());
    EXPECT_NEAR(id.trace().real(), 4.0, 1e-12);
    EXPECT_NEAR(std::abs(id.determinant()), 1.0, 1e-12);
}

TEST(Matrix, ArithmeticRoundTrip)
{
    Rng rng(1);
    const CMatrix a = haarUnitary(3, rng);
    const CMatrix b = haarUnitary(3, rng);
    CMatrix sum = a + b;
    sum -= b;
    EXPECT_TRUE(sum.approxEqual(a, 1e-12));

    CMatrix scaled = a * Complex{2.0, 0.0};
    scaled *= Complex{0.5, 0.0};
    EXPECT_TRUE(scaled.approxEqual(a, 1e-12));
}

TEST(Matrix, MultiplyAgainstManual)
{
    CMatrix a(2, 2, {1.0, 2.0, 3.0, 4.0});
    CMatrix b(2, 2, {5.0, 6.0, 7.0, 8.0});
    const CMatrix c = a * b;
    EXPECT_NEAR(c(0, 0).real(), 19.0, 1e-12);
    EXPECT_NEAR(c(0, 1).real(), 22.0, 1e-12);
    EXPECT_NEAR(c(1, 0).real(), 43.0, 1e-12);
    EXPECT_NEAR(c(1, 1).real(), 50.0, 1e-12);
}

TEST(Matrix, DaggerReversesProducts)
{
    Rng rng(2);
    const CMatrix a = haarUnitary(4, rng);
    const CMatrix b = haarUnitary(4, rng);
    EXPECT_TRUE((a * b).dagger().approxEqual(b.dagger() * a.dagger(),
                                             1e-10));
}

TEST(Matrix, KronDimensionsAndValues)
{
    const CMatrix x = pauliX();
    const CMatrix z = pauliZ();
    const CMatrix xz = kron(x, z);
    EXPECT_EQ(xz.rows(), 4);
    // (X (x) Z)(0,2) = X(0,1) Z(0,0) = 1.
    EXPECT_NEAR(xz(0, 2).real(), 1.0, 1e-12);
    EXPECT_NEAR(xz(1, 3).real(), -1.0, 1e-12);
    EXPECT_TRUE(xz.isUnitary());
}

TEST(Matrix, KronMixedProductProperty)
{
    Rng rng(3);
    const CMatrix a = haarUnitary(2, rng);
    const CMatrix b = haarUnitary(2, rng);
    const CMatrix c = haarUnitary(2, rng);
    const CMatrix d = haarUnitary(2, rng);
    // (A (x) B)(C (x) D) = AC (x) BD.
    EXPECT_TRUE((kron(a, b) * kron(c, d))
                    .approxEqual(kron(a * c, b * d), 1e-10));
}

TEST(Matrix, DeterminantOfUnitaryHasUnitModulus)
{
    Rng rng(4);
    for (int i = 0; i < 10; ++i) {
        const CMatrix u = haarUnitary(4, rng);
        EXPECT_NEAR(std::abs(u.determinant()), 1.0, 1e-9);
    }
}

TEST(Matrix, DeterminantMultiplicative)
{
    Rng rng(5);
    const CMatrix a = haarUnitary(3, rng);
    const CMatrix b = haarUnitary(3, rng);
    const Complex dab = (a * b).determinant();
    const Complex prod = a.determinant() * b.determinant();
    EXPECT_NEAR(std::abs(dab - prod), 0.0, 1e-9);
}

TEST(Matrix, ApplyMatchesMultiplication)
{
    Rng rng(6);
    const CMatrix u = haarUnitary(4, rng);
    const std::vector<Complex> v = randomState(4, rng);
    const std::vector<Complex> w = u.apply(v);
    for (int r = 0; r < 4; ++r) {
        Complex acc = 0.0;
        for (int c = 0; c < 4; ++c)
            acc += u(r, c) * v[c];
        EXPECT_NEAR(std::abs(w[r] - acc), 0.0, 1e-12);
    }
    // Unitaries preserve norms.
    EXPECT_NEAR(vectorNorm(w), 1.0, 1e-10);
}

TEST(Matrix, MultiplyIntoMatchesOperator)
{
    Rng rng(7);
    const CMatrix a = haarUnitary(4, rng);
    const CMatrix b = haarUnitary(4, rng);
    CMatrix out(4, 4);
    multiplyInto(out, a, b);
    EXPECT_TRUE(out.approxEqual(a * b, 1e-12));
}

TEST(Matrix, NormsAndDiffs)
{
    const CMatrix id = CMatrix::identity(2);
    EXPECT_NEAR(id.frobeniusNorm(), std::sqrt(2.0), 1e-12);
    EXPECT_NEAR(id.maxAbs(), 1.0, 1e-12);
    CMatrix other = id;
    other(0, 1) = Complex{0.0, 0.5};
    EXPECT_NEAR(id.maxAbsDiff(other), 0.5, 1e-12);
    EXPECT_FALSE(id.approxEqual(other, 0.1));
}

TEST(Matrix, HaarUnitariesAreUnitary)
{
    Rng rng(8);
    for (int dim : {2, 4, 8, 16}) {
        const CMatrix u = haarUnitary(dim, rng);
        EXPECT_TRUE(u.isUnitary(1e-9)) << "dim " << dim;
    }
}

TEST(Matrix, HaarDeterminism)
{
    Rng a(99), b(99);
    EXPECT_TRUE(haarUnitary(4, a).approxEqual(haarUnitary(4, b)));
}

TEST(Matrix, InnerProductConjugatesLeft)
{
    std::vector<Complex> a{Complex{0.0, 1.0}, 0.0};
    std::vector<Complex> b{1.0, 0.0};
    EXPECT_NEAR(std::abs(innerProduct(a, b) - Complex{0.0, -1.0}), 0.0,
                1e-12);
}

} // namespace
