/**
 * @file
 * Compile-server demo: the content-addressed pulse cache and the
 * parallel compilation service end to end.
 *
 *   ./build/examples/compile_server_demo
 *
 * Walks the amortization story of the paper with real machinery:
 *  1. batch-precompile a QAOA p-sweep — shared Fixed blocks dedupe
 *     across the sweep and fan out to a worker pool;
 *  2. serve a variational iteration by lookup-and-concatenate;
 *  3. verify a served pulse against its block unitary;
 *  4. rerun the batch against the on-disk cache — a "new process"
 *     needs zero synthesis;
 *  5. angle-quantized parametric serving: snap rotation bindings onto
 *     a fidelity-bounded grid so even the Parametrized blocks become
 *     cache hits;
 *  6. resource bounds: a byte-budgeted cache that never exceeds its
 *     budget, a disk tier swept down to a size cap (oldest records
 *     first), and a bounded worker queue that rejects overload
 *     instead of ballooning;
 *  7. adaptive grid refinement: a converging "optimizer" hammers one
 *     angle neighborhood, the visited bins split into finer leaves,
 *     and the same serves come back with a strictly smaller error
 *     bound — stale coarse pulses released against the byte budget.
 */

#include <cstdio>
#include <filesystem>

#include "common/rng.h"
#include "partial/strict.h"
#include "pulse/evolve.h"
#include "qaoa/graph.h"
#include "qaoa/qaoacircuit.h"
#include "runtime/service.h"
#include "sim/statevector.h"

using namespace qpc;

namespace {

CompileServiceOptions
demoOptions(const std::string& cache_dir)
{
    CompileServiceOptions options;
    options.numWorkers = 4;
    options.lookupDt = 0.1;
    options.synthesizer = analyticBlockSynthesizer(0.1);
    options.cache.diskDir = cache_dir;
    return options;
}

} // namespace

int
main()
{
    const std::string cache_dir =
        (std::filesystem::temp_directory_path() / "qpc_demo_cache")
            .string();
    std::filesystem::remove_all(cache_dir);

    // 1. A QAOA p-sweep over one 3-regular graph: the kind of batch a
    //    hyperparameter search submits. Depths share their cost/mixer
    //    structure, so most Fixed blocks collapse in the dedup stage.
    Rng rng(11);
    const Graph graph = random3Regular(6, rng);
    std::vector<Circuit> sweep;
    for (int p = 1; p <= 5; ++p)
        sweep.push_back(buildQaoaCircuit(graph, p));

    CompileService service(demoOptions(cache_dir));
    const BatchCompileReport cold = service.compileBatch(sweep);
    std::printf("batch precompute: %d circuits, %d Fixed blocks, "
                "%d unique, %llu syntheses, %.3f s on %d workers\n",
                cold.circuits, cold.totalBlocks, cold.uniqueBlocks,
                static_cast<unsigned long long>(cold.synthRuns),
                cold.wallSeconds, service.numWorkers());

    // 2. Serve one variational iteration of the deepest circuit: the
    //    strict partition's Fixed blocks come from the cache, its
    //    parametrized rotations from the analytic lookup table.
    const Circuit& deepest = sweep.back();
    const StrictPartition partition = strictPartition(deepest);
    const std::vector<double> theta =
        Rng(3).angles(deepest.numParams());
    const ServedPulse served = service.serveStrict(partition, theta);
    std::printf("served iteration: %zu pulse segments, %.1f ns total, "
                "%llu cache hits, %llu misses\n",
                served.segments.size(), served.pulseNs,
                static_cast<unsigned long long>(served.cacheHits),
                static_cast<unsigned long long>(served.cacheMisses));

    // 3. Spot-check correctness: a cached block pulse, evolved on its
    //    device, realizes the block's unitary.
    const std::vector<Circuit> blocks = service.fixedBlocksOf(deepest);
    if (!blocks.empty()) {
        const Circuit& block = blocks.front();
        const PulseSchedule pulse = service.compileBlock(block);
        const DeviceModel device =
            DeviceModel::gmonClique(block.numQubits());
        const double fidelity = traceFidelity(
            circuitUnitary(block), evolveUnitary(device, pulse));
        std::printf("verification: first block (%d qubits, %d ops) "
                    "pulse fidelity %.6f\n",
                    block.numQubits(), block.size(), fidelity);
    }

    // 4. The disk tier: a fresh service over the same directory — a
    //    new process in real deployments — precompiles the sweep with
    //    zero synthesizer runs.
    CompileService fresh(demoOptions(cache_dir));
    const BatchCompileReport warm = fresh.compileBatch(sweep);
    std::printf("fresh service over warm disk cache: %llu syntheses, "
                "%.1f%% hit rate, %.3f s\n",
                static_cast<unsigned long long>(warm.synthRuns),
                100.0 * warm.hitRate(), warm.wallSeconds);
    const CacheStats disk = fresh.cacheStats();
    std::printf("cache: %llu lookups, %llu memory hits, %llu disk "
                "hits, %zu entries in memory\n",
                static_cast<unsigned long long>(disk.lookups),
                static_cast<unsigned long long>(disk.hits),
                static_cast<unsigned long long>(disk.diskHits),
                disk.entries);

    // 5. Quantized parametric serving: every rotation binding snaps
    //    onto a 2*pi/256 grid (advertised op-norm error <= step/4 ~
    //    6e-3, within the default 1e-2 budget), so after a grid
    //    pre-warm the per-iteration hot path is pure cache lookups —
    //    no synthesis at all, for Fixed *and* Parametrized blocks.
    CompileServiceOptions quant_options = demoOptions("");
    quant_options.cache.capacity = 8192;
    quant_options.quantization.enabled = true;
    quant_options.quantization.bins = 256;
    CompileService quantized(quant_options);
    const ServingPlan plan = quantized.prepareServing(partition);
    quantized.precompilePlan(plan);
    const BatchCompileReport grid =
        quantized.prewarmQuantizedBins(plan);
    std::printf("grid prewarm: %llu pulses across %d bins\n",
                static_cast<unsigned long long>(grid.synthRuns),
                quant_options.quantization.bins);
    Rng iteration_rng(5);
    uint64_t hits = 0, misses = 0, fallbacks = 0;
    for (int it = 0; it < 20; ++it) {
        const ServedPulse iter = quantized.serve(
            plan, iteration_rng.angles(deepest.numParams()));
        hits += iter.quantHits;
        misses += iter.quantMisses;
        fallbacks += iter.quantFallbacks;
    }
    std::printf("quantized serving, 20 iterations: %llu bin hits, "
                "%llu misses, %llu exact fallbacks\n",
                static_cast<unsigned long long>(hits),
                static_cast<unsigned long long>(misses),
                static_cast<unsigned long long>(fallbacks));

    // 6. Resource bounds. A production service cannot grow without
    //    limit: capacityBytes caps the in-memory tier (hard bound,
    //    byte-LRU eviction), maxDiskBytes caps the disk tier (mtime-
    //    LRU GC sweep), and maxQueuedJobs caps the worker queue
    //    (blocking by default; QueueFullPolicy::Reject sheds load for
    //    impatient callers instead).
    CompileServiceOptions bounded_options = demoOptions(cache_dir);
    bounded_options.cache.capacityBytes = 64 * 1024;
    bounded_options.cache.shards = 2;
    bounded_options.cache.maxDiskBytes = 128 * 1024;
    bounded_options.maxQueuedJobs = 4;
    CompileService bounded(bounded_options);
    bounded.compileBatch(sweep);
    const CacheStats bounded_stats = bounded.cacheStats();
    std::printf("byte-budgeted cache: %zu / %zu B resident across %zu "
                "entries, %llu B evicted, %llu oversized refusals\n",
                bounded_stats.bytesInUse,
                bounded_options.cache.capacityBytes,
                bounded_stats.entries,
                static_cast<unsigned long long>(
                    bounded_stats.bytesEvicted),
                static_cast<unsigned long long>(
                    bounded_stats.oversized));
    const DiskGcReport swept = bounded.cache().gcDisk();
    std::printf("disk GC: scanned %llu records, removed %llu (%llu "
                "B), %zu B remain under the %zu B cap\n",
                static_cast<unsigned long long>(swept.scannedFiles),
                static_cast<unsigned long long>(swept.removedFiles),
                static_cast<unsigned long long>(swept.removedBytes),
                swept.remainingBytes,
                bounded_options.cache.maxDiskBytes);
    std::printf("backpressure: peak queue depth %zu (bound %zu), %llu "
                "rejected admissions\n",
                bounded.peakQueueDepth(),
                bounded_options.maxQueuedJobs,
                static_cast<unsigned long long>(
                    bounded.stats().rejected));

    // 7. Adaptive grid refinement. A converging optimizer visits an
    //    ever-narrower neighborhood; serve that pattern against an
    //    adaptive plan, refine, and watch the realized error bound of
    //    the *same* serves drop while unvisited regions stay coarse.
    CompileServiceOptions adaptive_options = demoOptions("");
    adaptive_options.cache.capacity = 8192;
    adaptive_options.quantization.enabled = true;
    adaptive_options.quantization.adaptive = true;
    adaptive_options.quantization.bins = 64;
    adaptive_options.quantization.fidelityBudget = 0.05;
    adaptive_options.quantization.splitVisitThreshold = 4;
    CompileService refining(adaptive_options);
    const ServingPlan adaptive_plan =
        refining.prepareServing(partition);
    Rng converge_rng(7);
    const std::vector<double> optimum =
        converge_rng.angles(deepest.numParams());
    auto serveNear = [&](double spread) {
        double bound = 0.0;
        for (int it = 0; it < 8; ++it) {
            std::vector<double> theta = optimum;
            for (double& v : theta)
                v += spread * converge_rng.uniform(-1.0, 1.0);
            bound = refining.serve(adaptive_plan, theta)
                        .quantErrorBound;
        }
        return bound;
    };
    const double coarse_bound = serveNear(0.01);
    // Refinement splits only leaves served hot since their creation,
    // so interleave serves and rounds — the shape of a hybrid loop
    // feeding visit counts between the driver's refinement triggers.
    for (int round = 0; round < 6; ++round) {
        refining.refineQuantizedGrid(adaptive_plan);
        serveNear(0.01);
    }
    const double refined_bound = serveNear(0.01);
    const AdaptiveGridStats grid_stats =
        refining.quantizedGridStats(adaptive_plan);
    const ServiceStats refine_stats = refining.stats();
    std::printf("adaptive refinement: %llu splits to depth %d "
                "(%zu leaves/axis avg), serve error bound %.5f -> "
                "%.5f, %llu stale bytes released\n",
                static_cast<unsigned long long>(grid_stats.splits),
                grid_stats.maxDepth,
                grid_stats.axes ? grid_stats.leaves / grid_stats.axes
                                : 0,
                coarse_bound, refined_bound,
                static_cast<unsigned long long>(
                    refine_stats.quantBytesReleased));

    std::filesystem::remove_all(cache_dir);
    return 0;
}
