/**
 * @file
 * Real optimal control, end to end: run the actual GRAPE optimizer
 * (not the analytic model) against the gmon device Hamiltonian of
 * Appendix A.
 *
 * Finds a Hadamard pulse, binary-searches the minimal duration of an
 * X gate down to the paper's 0.3 ns precision (the physical optimum
 * is pi / (2 Omega_c) = 2.5 ns), and pre-tunes ADAM hyperparameters
 * for a small single-angle subcircuit the way flexible partial
 * compilation does.
 *
 *   ./build/examples/pulse_grape_demo
 */

#include <cstdio>

#include "grape/hyper.h"
#include "grape/mintime.h"
#include "linalg/su2.h"
#include "pulse/evolve.h"

using namespace qpc;

int
main()
{
    const DeviceModel device = DeviceModel::gmonLine(1);
    std::printf("device: 1 gmon qubit, %d control channels\n",
                device.numControls());
    for (const ControlChannel& ch : device.controls())
        std::printf("  %-10s |amp| <= %.3f rad/ns\n", ch.name.c_str(),
                    ch.maxAmp);

    // 1. A Hadamard pulse at fixed duration.
    GrapeOptions options;
    options.dt = 0.05;
    options.maxIterations = 400;
    options.hyper = AdamHyperParams{0.1, 0.999};
    const GrapeResult h = runGrapeFixedTime(device, hMatrix(), 2.0,
                                            options);
    std::printf("\nHadamard at 2.0 ns: fidelity %.5f after %d "
                "iterations (%.2f s)\n",
                h.fidelity, h.iterations, h.wallSeconds);
    const CMatrix realized = evolveUnitary(device, h.pulse);
    std::printf("independent re-simulation fidelity: %.5f\n",
                traceFidelity(hMatrix(), realized));

    // 2. Minimal X-gate duration via the paper's binary search.
    MinTimeOptions search;
    search.grape = options;
    search.lowerBoundNs = 0.5;
    search.upperBoundNs = 6.0;
    search.precisionNs = 0.3;
    const MinTimeResult min_x =
        grapeMinimalTime(device, pauliX(), search);
    std::printf("\nminimal X-gate pulse: %.2f ns (physical bound "
                "2.5 ns), %d GRAPE probes, %.2f s total\n",
                min_x.minTimeNs, min_x.probes,
                min_x.totalWallSeconds);

    // 3. Hyperparameter pre-tuning (flexible partial compilation's
    //    pre-compute step) on a parametrized single-qubit slice.
    HyperTuneOptions tune;
    tune.grape = options;
    tune.trialIterations = 120;
    const HyperTuneResult tuned = tuneHyperParams(
        device, rzMatrix(0.8) * rxMatrix(1.1), 2.5, tune);
    std::printf("\nhyperparameter grid (%zu trials, %.2f s):\n",
                tuned.trials.size(), tuned.totalWallSeconds);
    for (const HyperTrial& trial : tuned.trials) {
        std::printf("  lr %-6.3f decay %-6.4f -> %s in %d iters "
                    "(err %.2e)\n",
                    trial.hyper.learningRate, trial.hyper.decay,
                    trial.converged ? "converged" : "stopped",
                    trial.iterations, trial.finalError);
    }
    std::printf("tuned: lr %.3f, decay %.4f\n",
                tuned.best.learningRate, tuned.best.decay);
    return 0;
}
