/**
 * @file
 * End-to-end QAOA MAXCUT on a random 3-regular graph.
 *
 * Optimizes a depth-p QAOA circuit on 6 nodes, reports the
 * approximation ratio against the brute-force optimum, and then shows
 * the aggregate compilation-latency impact (Section 8.4) of running
 * that many variational iterations under each strategy.
 *
 *   ./build/examples/qaoa_maxcut [--n=6] [--p=2]
 */

#include <cstdio>

#include "common/cli.h"
#include "common/table.h"
#include "partial/compiler.h"
#include "qaoa/qaoadriver.h"
#include "transpile/passes.h"

using namespace qpc;

int
main(int argc, char** argv)
{
    CliParser cli("qaoa_maxcut");
    cli.addInt("n", 6, "number of graph nodes (even, >= 4)");
    cli.addInt("p", 2, "QAOA depth");
    cli.addInt("seed", 11, "graph seed");
    cli.parse(argc, argv);

    Rng rng(cli.getInt("seed"));
    const Graph graph = random3Regular(cli.getInt("n"), rng);
    std::printf("graph: %s\n", graph.str().c_str());

    QaoaRunOptions options;
    options.p = cli.getInt("p");
    options.optimizer.maxIterations = 600;
    const QaoaResult result = runQaoa(graph, options);

    std::printf("brute-force max cut: %d\n", result.maxCut);
    std::printf("QAOA expected cut:   %.3f (ratio %.3f) after %d "
                "iterations\n",
                result.expectedCutValue, result.approxRatio,
                result.iterations);

    // Aggregate latency over the variational run (Section 8.4).
    Circuit circuit = buildQaoaCircuit(graph, options.p);
    optimizeCircuit(circuit);
    PartialCompiler compiler(circuit);
    TextTable table("compilation latency across the whole run");
    table.addRow({"Strategy", "Pre-compute (s)",
                  "Runtime latency total (s)"});
    for (const AggregateLatency& agg : aggregateLatencies(
             compiler, result.bestParams, result.iterations)) {
        table.addRow({strategyName(agg.strategy),
                      fmtDouble(agg.precomputeSeconds, 1),
                      fmtDouble(agg.totalRuntimeSeconds, 1)});
    }
    table.print();

    std::printf("\nfull GRAPE's latency is interleaved with the "
                "computation; the partial strategies move it into "
                "one-off pre-compute.\n");
    return 0;
}
