/**
 * @file
 * End-to-end VQE on molecular hydrogen.
 *
 * Runs the full hybrid loop of Figure 1 on the published 2-qubit H2
 * Hamiltonian: the UCCSD ansatz prepares trial states on the
 * state-vector simulator, Nelder-Mead proposes the next amplitudes,
 * and the run converges to the exact ground energy (-1.857275 Ha).
 * Afterwards the converged circuit is compiled under all four
 * strategies, quantifying what pulse-level compilation buys on the
 * smallest paper benchmark.
 *
 *   ./build/examples/vqe_h2
 */

#include <cstdio>

#include "common/table.h"
#include "partial/compiler.h"
#include "vqe/hamiltonian.h"
#include "vqe/uccsd.h"
#include "vqe/vqedriver.h"

using namespace qpc;

int
main()
{
    const MoleculeSpec& spec = moleculeByName("H2");
    const Circuit ansatz = buildOptimizedUccsd(spec);
    const PauliHamiltonian hamiltonian = h2Hamiltonian();

    std::printf("H2 / STO-3G, %d qubits, %d UCCSD parameters, %d "
                "gates after optimization\n",
                spec.numQubits, spec.numParams, ansatz.size());

    VqeRunOptions options;
    options.optimizer.maxIterations = 800;
    const VqeResult result = runVqe(ansatz, hamiltonian, options);

    std::printf("VQE energy:     %.6f Ha\n", result.energy);
    std::printf("exact ground:   %.6f Ha\n",
                result.exactGroundEnergy);
    std::printf("error:          %.2e Ha after %d circuit "
                "evaluations\n",
                result.energy - result.exactGroundEnergy,
                result.iterations);

    // Each of those evaluations re-binds the parameters: this is the
    // compilation latency the paper's strategies attack.
    PartialCompiler compiler(ansatz);
    TextTable table("compiling the converged H2 circuit");
    table.addRow({"Strategy", "Pulse (ns)",
                  "Latency across the whole run (s)"});
    for (const CompileReport& r :
         compiler.compileAll(result.bestParams)) {
        table.addRow({strategyName(r.strategy), fmtNs(r.pulseNs),
                      fmtDouble(r.precomputeSeconds +
                                    r.runtimeSeconds *
                                        result.iterations,
                                2)});
    }
    table.print();
    return 0;
}
