/**
 * @file
 * qpc-serverd: the multi-tenant compile server daemon.
 *
 * Binds a unix-domain socket (and optionally loopback TCP), then
 * serves Hello/PrepareServing/Prewarm/Serve/Stats/Shutdown frames
 * until a Shutdown frame, SIGTERM, or SIGINT arrives — at which point
 * it drains every session and exits 0.
 *
 *   ./build/examples/qpc_serverd --socket=/tmp/qpc.sock --workers=4
 *
 * Clients share one content-addressed pulse cache: identical blocks
 * across tenants cost one synthesis total. Quota flags bound each
 * tenant; see the README's "Compile server" section for the protocol.
 *
 * Observability (see the README's "Observability" section):
 *   --trace-out=FILE      capture serve-path spans, dump Chrome/
 *                         Perfetto trace-event JSON at shutdown
 *   --metrics-file=FILE   rewrite a Prometheus text exposition
 *                         every --metrics-interval-ms (and once at
 *                         shutdown)
 *   --slow-serve-us=N     warn() one structured line per serve
 *                         slower than N microseconds
 *   --log-level=LEVEL     silent | warn | info (or QPC_LOG_LEVEL)
 */

#include <cstdio>
#include <string>

#include <csignal>
#include <poll.h>
#include <unistd.h>

#include "common/cli.h"
#include "common/logging.h"
#include "server/server.h"
#include "telemetry/trace.h"

using namespace qpc;

namespace {

// Self-pipe: the handler may only do async-signal-safe work, so it
// writes one byte and the main thread does the actual shutdown.
int g_signal_pipe[2] = {-1, -1};

void
onSignal(int)
{
    const char byte = 1;
    [[maybe_unused]] ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

/** Atomically-ish rewrite the metrics exposition file. */
void
dumpMetricsFile(const CompileServer& server, const std::string& path)
{
    const std::string text = renderPrometheus(server.metricsSnapshot());
    const std::string tmp = path + ".tmp";
    std::FILE* f = std::fopen(tmp.c_str(), "w");
    if (!f) {
        warn("cannot write metrics file: ", tmp);
        return;
    }
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        warn("cannot rename metrics file into place: ", path);
}

} // namespace

int
main(int argc, char** argv)
{
    CliParser cli("qpc_serverd");
    cli.addString("socket", "/tmp/qpc-serverd.sock",
                  "unix-domain socket path to listen on");
    cli.addInt("tcp", 0,
               "loopback TCP port (0 = off, -1 = ephemeral)");
    cli.addInt("workers", 0, "synthesis workers (0 = hardware)");
    cli.addInt("max-queued", 64,
               "bound on queued synthesis jobs (0 = unbounded)");
    cli.addString("cache-dir", "",
                  "disk cache tier directory (empty = memory only)");
    cli.addString("shared-cache-dir", "",
                  "fleet-shared disk cache directory (wins over "
                  "--cache-dir; GC is flock-guarded, safe across "
                  "daemons)");
    cli.addInt("epoch", 0,
               "starting calibration epoch counter (records of other "
               "epochs in the disk tier are never adopted or served)");
    cli.addString("snapshot-in", "",
                  "serving snapshot to restore before accepting "
                  "connections (adopts its epoch, re-prepares and "
                  "prewarms its plans: a warm replica boot)");
    cli.addString("snapshot-out", "",
                  "write a serving snapshot here at shutdown");
    cli.addInt("cache-entries", 4096, "in-memory cache entry cap");
    cli.addInt("cache-mb", 0,
               "in-memory cache byte budget, MiB (0 = entries only)");
    cli.addFlag("quantize",
                "serve rotations from an angle-quantized grid");
    cli.addInt("bins", 1024, "quantization grid bins per 2*pi");
    cli.addInt("quota-plans", 64, "per-tenant serving plan cap");
    cli.addInt("quota-served-mb", 0,
               "per-tenant served-bytes budget, MiB (0 = unlimited)");
    cli.addInt("quota-bulk", 2, "per-tenant concurrent prewarm cap");
    cli.addString("trace-out", "",
                  "write Chrome/Perfetto trace-event JSON here at "
                  "shutdown (enables span capture)");
    cli.addString("metrics-file", "",
                  "rewrite a Prometheus text exposition here "
                  "periodically");
    cli.addInt("metrics-interval-ms", 5000,
               "metrics-file rewrite period");
    cli.addInt("slow-serve-us", 0,
               "log serves slower than this many microseconds "
               "(0 = off)");
    cli.addInt("idle-timeout-ms", 300000,
               "reap sessions silent for this long (0 = never)");
    cli.addInt("max-sessions", 0,
               "shed connections past this many live sessions with "
               "a Busy frame (0 = unlimited)");
    cli.addString("log-level", "",
                  "log verbosity: silent|warn|info (default: "
                  "QPC_LOG_LEVEL or info)");
    cli.parse(argc, argv);

    CompileServerOptions options;
    options.socketPath = cli.getString("socket");
    options.tcpPort = cli.getInt("tcp");
    options.service.numWorkers = cli.getInt("workers");
    options.service.maxQueuedJobs =
        static_cast<std::size_t>(cli.getInt("max-queued"));
    options.service.cache.diskDir =
        !cli.getString("shared-cache-dir").empty()
            ? cli.getString("shared-cache-dir")
            : cli.getString("cache-dir");
    options.service.epoch.counter =
        static_cast<std::uint64_t>(cli.getInt("epoch"));
    options.service.cache.capacity =
        static_cast<std::size_t>(cli.getInt("cache-entries"));
    options.service.cache.capacityBytes =
        static_cast<std::size_t>(cli.getInt("cache-mb")) << 20;
    options.service.quantization.enabled = cli.getFlag("quantize");
    options.service.quantization.bins = cli.getInt("bins");
    options.quota.maxPlans =
        static_cast<std::uint64_t>(cli.getInt("quota-plans"));
    options.quota.maxServedBytes =
        static_cast<std::uint64_t>(cli.getInt("quota-served-mb")) << 20;
    options.quota.maxConcurrentBulk =
        static_cast<std::uint64_t>(cli.getInt("quota-bulk"));
    options.slowServeThresholdUs =
        static_cast<std::uint64_t>(cli.getInt("slow-serve-us"));
    options.idleTimeoutMs = cli.getInt("idle-timeout-ms");
    options.maxSessions = cli.getInt("max-sessions");

    if (!cli.getString("log-level").empty())
        setLogLevel(parseLogLevel(cli.getString("log-level")));

    const std::string trace_out = cli.getString("trace-out");
    if (!trace_out.empty())
        setTraceEnabled(true);
    const std::string metrics_file = cli.getString("metrics-file");
    const int metrics_interval_ms =
        cli.getInt("metrics-interval-ms") > 0
            ? cli.getInt("metrics-interval-ms")
            : 5000;

    fatalIf(::pipe(g_signal_pipe) != 0, "cannot create signal pipe");
    std::signal(SIGTERM, onSignal);
    std::signal(SIGINT, onSignal);
    std::signal(SIGPIPE, SIG_IGN);

    CompileServer server(std::move(options));

    // Restore before start(): the boot must be warm before the first
    // connection lands. The grep-able line is what the fleet smoke
    // (and an operator) checks for warm-boot health.
    const std::string snapshot_in = cli.getString("snapshot-in");
    if (!snapshot_in.empty()) {
        std::optional<ServingSnapshot> snapshot =
            loadServingSnapshot(snapshot_in);
        fatalIf(!snapshot, "cannot load serving snapshot: ",
                snapshot_in);
        const SnapshotRestoreReport report =
            server.restoreServing(*snapshot);
        std::printf("snapshot-restore: plans=%llu uniqueBlocks=%llu "
                    "warm_hits=%llu hit_rate=%.3f wall_s=%.3f\n",
                    static_cast<unsigned long long>(report.plans),
                    static_cast<unsigned long long>(
                        report.uniqueBlocks),
                    static_cast<unsigned long long>(report.cacheHits),
                    report.hitRate(), report.wallSeconds);
        std::fflush(stdout);
    }

    server.start();
    std::printf("qpc-serverd: listening on %s",
                server.options().socketPath.c_str());
    if (server.boundTcpPort() > 0)
        std::printf(" and tcp:%d", server.boundTcpPort());
    std::printf(" (%d workers)\n", server.service().numWorkers());
    std::fflush(stdout);

    // Wait for either a signal byte or a Shutdown frame; piggyback the
    // periodic metrics dump on the 200 ms poll cadence.
    int ms_since_dump = 0;
    while (!server.stopRequested()) {
        pollfd pfd{g_signal_pipe[0], POLLIN, 0};
        const int ready = ::poll(&pfd, 1, 200);
        if (ready > 0 && (pfd.revents & POLLIN))
            break;
        if (!metrics_file.empty()) {
            ms_since_dump += 200;
            if (ms_since_dump >= metrics_interval_ms) {
                ms_since_dump = 0;
                dumpMetricsFile(server, metrics_file);
            }
        }
    }

    server.requestStop();
    // Snapshot before stop(): the registry is still fully intact, and
    // no new plans can arrive (the listeners are down).
    const std::string snapshot_out = cli.getString("snapshot-out");
    if (!snapshot_out.empty()) {
        const ServingSnapshot snapshot = server.snapshotServing();
        if (saveServingSnapshot(snapshot_out, snapshot))
            std::printf("snapshot-save: plans=%llu epoch=%llu -> %s\n",
                        static_cast<unsigned long long>(
                            snapshot.plans.size()),
                        static_cast<unsigned long long>(
                            snapshot.epoch.counter),
                        snapshot_out.c_str());
        else
            warn("cannot write serving snapshot: ", snapshot_out);
    }
    server.stop();

    // Final dumps after the drain so the trace and exposition cover
    // every request the daemon handled.
    if (!metrics_file.empty())
        dumpMetricsFile(server, metrics_file);
    if (!trace_out.empty())
        dumpTraceJson(trace_out); // warns on failure itself

    const WireServerStats stats = server.statsSnapshot();
    std::printf("qpc-serverd: served %llu connections, "
                "%llu requests, %llu cache hits; clean shutdown\n",
                static_cast<unsigned long long>(
                    stats.connectionsAccepted),
                static_cast<unsigned long long>(stats.requests),
                static_cast<unsigned long long>(stats.cacheHits));
    return 0;
}
