/**
 * @file
 * Quickstart: build a variational circuit, compile it under all four
 * strategies, and read the trade-off the paper is about.
 *
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "common/rng.h"
#include "common/table.h"
#include "partial/compiler.h"
#include "qaoa/graph.h"
#include "qaoa/qaoacircuit.h"
#include "transpile/passes.h"

using namespace qpc;

int
main()
{
    // 1. A parametrized circuit: QAOA MAXCUT on the 4-node clique at
    //    depth p = 2 (4 variational parameters), then the standard
    //    optimization pipeline.
    const Graph graph = cliqueGraph(4);
    Circuit circuit = buildQaoaCircuit(graph, 2);
    optimizeCircuit(circuit);
    std::printf("circuit: %d qubits, %d ops, %d parameters\n",
                circuit.numQubits(), circuit.size(),
                circuit.numParams());

    // 2. One compiler for the symbolic template. Construction runs
    //    the structural analysis (strict partition, flexible slices).
    PartialCompiler compiler(circuit);
    std::printf("strict partition: %d fixed segments, %d param gates\n",
                compiler.strictPartition().numFixedSegments(),
                compiler.strictPartition().numParamGates());
    std::printf("flexible slices: %zu single-parameter slices\n",
                compiler.flexiblePartition().slices.size());

    // 3. Bind a parameter vector (one variational iteration) and
    //    compile under every strategy.
    Rng rng(7);
    const std::vector<double> theta = rng.angles(circuit.numParams());

    TextTable table("compilation strategies");
    table.addRow({"Strategy", "Pulse (ns)", "Runtime latency (s)",
                  "One-off precompute (s)"});
    for (const CompileReport& report : compiler.compileAll(theta)) {
        table.addRow({strategyName(report.strategy),
                      fmtNs(report.pulseNs),
                      fmtDouble(report.runtimeSeconds, 6),
                      fmtDouble(report.precomputeSeconds, 1)});
    }
    table.print();

    std::printf(
        "\nreading the table: gate-based compiles instantly but its\n"
        "pulse is longest; full GRAPE has the shortest pulse but pays\n"
        "its latency on *every* variational iteration. The paper's\n"
        "partial strategies give GRAPE-like pulses at lookup-like\n"
        "latency.\n");
    return 0;
}
