/**
 * @file
 * qpc-client: drive one tenant's hybrid loop through a running
 * qpc-serverd.
 *
 *   ./build/examples/qpc_serverd --socket=/tmp/qpc.sock &
 *   ./build/examples/qpc_client --socket=/tmp/qpc.sock \
 *       --tenant=alice --serves=32
 *
 * Connects, identifies the tenant, uploads a QAOA MAXCUT template,
 * bulk-prewarms it, then serves a stream of parameter bindings — the
 * client half of the CI smoke test. --stats renders the server's
 * health frame as tables afterwards; --metrics prints the server's
 * Prometheus exposition plus a latency-percentile table; --shutdown
 * asks the daemon to exit.
 */

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>

#include "common/cli.h"
#include "common/rng.h"
#include "common/table.h"
#include "qaoa/graph.h"
#include "qaoa/qaoacircuit.h"
#include "server/client.h"
#include "telemetry/metrics.h"
#include "transpile/passes.h"

using namespace qpc;

int
main(int argc, char** argv)
{
    CliParser cli("qpc_client");
    cli.addString("socket", "/tmp/qpc-serverd.sock",
                  "unix-domain socket of the server");
    cli.addInt("tcp", 0, "connect to loopback TCP instead (port)");
    cli.addString("tenant", "default", "tenant name to serve under");
    cli.addInt("n", 6, "QAOA graph nodes");
    cli.addInt("p", 2, "QAOA depth");
    cli.addInt("serves", 16, "parameter bindings to serve");
    cli.addInt("seed", 7, "angle stream seed");
    cli.addFlag("pulses", "download the served pulse segments too");
    cli.addFlag("skip-prewarm",
                "serve cold (first bindings synthesize on demand)");
    cli.addFlag("stats", "print the server stats frame afterwards");
    cli.addFlag("metrics", "print the server's Prometheus exposition "
                           "and latency percentiles");
    cli.addFlag("shutdown", "ask the server to shut down when done");
    cli.addFlag("bump-epoch",
                "advance the server's calibration epoch before "
                "serving (re-keys and re-prewarms every plan)");
    cli.addInt("deadline-ms", 0,
               "per-request I/O deadline (0 = block forever)");
    cli.addInt("retries", 0,
               "reconnect-and-retry budget per request (0 = fail "
               "fast)");
    cli.addInt("serve-interval-ms", 0,
               "sleep between serves (paces the loop so a restarted "
               "server can be ridden through)");
    cli.parse(argc, argv);

    ClientOptions client_options;
    client_options.deadlineMs = cli.getInt("deadline-ms");
    client_options.maxRetries = cli.getInt("retries");
    CompileClient client(client_options);
    const bool connected =
        cli.getInt("tcp") > 0 ? client.connectTcp(cli.getInt("tcp"))
                              : client.connectUnix(cli.getString("socket"));
    if (!connected) {
        std::fprintf(stderr, "qpc-client: %s\n",
                     client.lastError().c_str());
        return 1;
    }

    const auto hello = client.hello(cli.getString("tenant"));
    if (!hello) {
        std::fprintf(stderr, "qpc-client: Hello failed: %s\n",
                     client.lastError().c_str());
        return 1;
    }
    std::printf("tenant '%s' (id %u): quotas plans=%llu "
                "servedBytes=%llu bulk=%llu epoch=%llu\n",
                cli.getString("tenant").c_str(), hello->tenantId,
                static_cast<unsigned long long>(hello->maxPlans),
                static_cast<unsigned long long>(hello->maxServedBytes),
                static_cast<unsigned long long>(
                    hello->maxConcurrentBulk),
                static_cast<unsigned long long>(hello->epochCounter));

    if (cli.getFlag("bump-epoch")) {
        const auto bumped = client.bumpEpoch();
        if (!bumped) {
            std::fprintf(stderr, "qpc-client: BumpEpoch failed: %s\n",
                         client.lastError().c_str());
            return 1;
        }
        // Grep-able by the CI fleet smoke.
        std::printf("epoch-bump: counter=%llu plans_rekeyed=%u\n",
                    static_cast<unsigned long long>(bumped->newCounter),
                    bumped->plansRekeyed);
    }

    Circuit circuit =
        buildQaoaCircuit(cliqueGraph(cli.getInt("n")), cli.getInt("p"));
    optimizeCircuit(circuit);
    const int num_params = circuit.numParams();

    const auto prepared = client.prepareServing(circuit);
    if (!prepared) {
        std::fprintf(stderr, "qpc-client: PrepareServing failed: %s\n",
                     client.lastError().c_str());
        return 1;
    }
    std::printf("plan %llu: %u fixed blocks, %u param gates\n",
                static_cast<unsigned long long>(prepared->planId),
                prepared->numFixedBlocks, prepared->numParamGates);

    if (!cli.getFlag("skip-prewarm")) {
        const auto warmed = client.prewarm(prepared->planId);
        if (!warmed) {
            std::fprintf(stderr, "qpc-client: Prewarm failed: %s\n",
                         client.lastError().c_str());
            return 1;
        }
        std::printf("prewarm: %u unique blocks, %llu syntheses, "
                    "%llu cache hits in %.3f s\n",
                    warmed->uniqueBlocks,
                    static_cast<unsigned long long>(warmed->synthRuns),
                    static_cast<unsigned long long>(warmed->cacheHits),
                    warmed->wallSeconds);
    }

    Rng rng(static_cast<uint64_t>(cli.getInt("seed")));
    std::uint64_t hits = 0, misses = 0;
    double total_ns = 0.0;
    const int serves = cli.getInt("serves");
    const int serve_interval_ms = cli.getInt("serve-interval-ms");
    for (int i = 0; i < serves; ++i) {
        if (serve_interval_ms > 0 && i > 0)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(serve_interval_ms));
        const auto served = client.serve(prepared->planId,
                                         rng.angles(num_params),
                                         cli.getFlag("pulses"));
        if (!served) {
            std::fprintf(stderr, "qpc-client: Serve failed: %s\n",
                         client.lastError().c_str());
            return 1;
        }
        hits += served->cacheHits + served->quantHits;
        misses += served->cacheMisses + served->quantMisses +
                  served->exactServes;
        total_ns += served->pulseNs;
    }
    std::printf("served %d bindings: %llu warm segments, "
                "%llu synthesized, %.1f ns mean pulse\n",
                serves, static_cast<unsigned long long>(hits),
                static_cast<unsigned long long>(misses),
                serves ? total_ns / serves : 0.0);

    // One grep-able line for the CI kill-and-reconnect smoke.
    const ClientStats resilience = client.clientStats();
    std::printf("client-resilience: retries=%llu timeouts=%llu "
                "reconnects=%llu plans_remapped=%llu "
                "busy_rejections=%llu reconnect_p50_ms=%.2f\n",
                static_cast<unsigned long long>(resilience.retries),
                static_cast<unsigned long long>(resilience.timeouts),
                static_cast<unsigned long long>(resilience.reconnects),
                static_cast<unsigned long long>(
                    resilience.plansRemapped),
                static_cast<unsigned long long>(
                    resilience.busyRejections),
                resilience.reconnectNs.percentileNs(50) / 1e6);

    const auto u64cell = [](std::uint64_t v) {
        return std::to_string(v);
    };

    if (cli.getFlag("stats")) {
        const auto stats = client.stats();
        if (!stats) {
            std::fprintf(stderr, "qpc-client: Stats failed: %s\n",
                         client.lastError().c_str());
            return 1;
        }
        TextTable server_table("server");
        server_table.addRow({"requests", "cacheHits", "coalesced",
                             "synthRuns", "rejected", "cacheEntries",
                             "cacheMiB"});
        server_table.addRow(
            {u64cell(stats->requests), u64cell(stats->cacheHits),
             u64cell(stats->coalesced), u64cell(stats->synthRuns),
             u64cell(stats->rejected), u64cell(stats->cacheEntries),
             fmtDouble(static_cast<double>(stats->cacheBytesInUse) /
                           (1024.0 * 1024.0),
                       2)});
        server_table.print();

        TextTable edge_table("server edge");
        edge_table.addRow({"protocolErrors", "acceptFailures",
                           "busyRejections", "sessionsReapedIdle",
                           "bulkYields"});
        edge_table.addRow({u64cell(stats->protocolErrors),
                           u64cell(stats->acceptFailures),
                           u64cell(stats->busyRejections),
                           u64cell(stats->sessionsReapedIdle),
                           u64cell(stats->bulkYields)});
        edge_table.print();

        TextTable tenant_table("tenants");
        tenant_table.addRow({"tenant", "plans", "serves", "hitRate",
                             "servedKiB", "quotaRejections"});
        for (const WireTenantStats& t : stats->tenants)
            tenant_table.addRow(
                {t.tenant, u64cell(t.plans), u64cell(t.serves),
                 fmtDouble(t.hitRate(), 2),
                 u64cell(t.servedBytes >> 10),
                 u64cell(t.quotaRejections)});
        tenant_table.print();
    }

    if (cli.getFlag("metrics")) {
        const auto metrics = client.metrics();
        if (!metrics) {
            std::fprintf(stderr, "qpc-client: Metrics failed: %s\n",
                         client.lastError().c_str());
            return 1;
        }
        // The exposition first (scrape-able as-is), then the latency
        // distributions digested to percentiles for human eyes.
        std::fputs(renderPrometheus(*metrics).c_str(), stdout);
        TextTable latency_table("latency (us)");
        latency_table.addRow(
            {"histogram", "count", "p50", "p95", "p99", "max"});
        for (const auto& h : metrics->histograms) {
            const auto us = [&](double ns) {
                return fmtDouble(ns / 1e3, 1);
            };
            latency_table.addRow(
                {h.name, u64cell(h.histogram.count),
                 us(h.histogram.percentileNs(50)),
                 us(h.histogram.percentileNs(95)),
                 us(h.histogram.percentileNs(99)),
                 us(static_cast<double>(h.histogram.maxNs))});
        }
        latency_table.print();
    }

    if (cli.getFlag("shutdown")) {
        if (!client.shutdownServer()) {
            std::fprintf(stderr, "qpc-client: Shutdown failed: %s\n",
                         client.lastError().c_str());
            return 1;
        }
        std::printf("server acknowledged shutdown\n");
    }
    return 0;
}
