/**
 * @file
 * qpc-client: drive one tenant's hybrid loop through a running
 * qpc-serverd.
 *
 *   ./build/examples/qpc_serverd --socket=/tmp/qpc.sock &
 *   ./build/examples/qpc_client --socket=/tmp/qpc.sock \
 *       --tenant=alice --serves=32
 *
 * Connects, identifies the tenant, uploads a QAOA MAXCUT template,
 * bulk-prewarms it, then serves a stream of parameter bindings — the
 * client half of the CI smoke test. --stats prints the server's
 * health frame afterwards; --shutdown asks the daemon to exit.
 */

#include <cstdio>

#include "common/cli.h"
#include "common/rng.h"
#include "qaoa/graph.h"
#include "qaoa/qaoacircuit.h"
#include "server/client.h"
#include "transpile/passes.h"

using namespace qpc;

int
main(int argc, char** argv)
{
    CliParser cli("qpc_client");
    cli.addString("socket", "/tmp/qpc-serverd.sock",
                  "unix-domain socket of the server");
    cli.addInt("tcp", 0, "connect to loopback TCP instead (port)");
    cli.addString("tenant", "default", "tenant name to serve under");
    cli.addInt("n", 6, "QAOA graph nodes");
    cli.addInt("p", 2, "QAOA depth");
    cli.addInt("serves", 16, "parameter bindings to serve");
    cli.addInt("seed", 7, "angle stream seed");
    cli.addFlag("pulses", "download the served pulse segments too");
    cli.addFlag("stats", "print the server stats frame afterwards");
    cli.addFlag("shutdown", "ask the server to shut down when done");
    cli.parse(argc, argv);

    CompileClient client;
    const bool connected =
        cli.getInt("tcp") > 0 ? client.connectTcp(cli.getInt("tcp"))
                              : client.connectUnix(cli.getString("socket"));
    if (!connected) {
        std::fprintf(stderr, "qpc-client: %s\n",
                     client.lastError().c_str());
        return 1;
    }

    const auto hello = client.hello(cli.getString("tenant"));
    if (!hello) {
        std::fprintf(stderr, "qpc-client: Hello failed: %s\n",
                     client.lastError().c_str());
        return 1;
    }
    std::printf("tenant '%s' (id %u): quotas plans=%llu "
                "servedBytes=%llu bulk=%llu\n",
                cli.getString("tenant").c_str(), hello->tenantId,
                static_cast<unsigned long long>(hello->maxPlans),
                static_cast<unsigned long long>(hello->maxServedBytes),
                static_cast<unsigned long long>(
                    hello->maxConcurrentBulk));

    Circuit circuit =
        buildQaoaCircuit(cliqueGraph(cli.getInt("n")), cli.getInt("p"));
    optimizeCircuit(circuit);
    const int num_params = circuit.numParams();

    const auto prepared = client.prepareServing(circuit);
    if (!prepared) {
        std::fprintf(stderr, "qpc-client: PrepareServing failed: %s\n",
                     client.lastError().c_str());
        return 1;
    }
    std::printf("plan %llu: %u fixed blocks, %u param gates\n",
                static_cast<unsigned long long>(prepared->planId),
                prepared->numFixedBlocks, prepared->numParamGates);

    const auto warmed = client.prewarm(prepared->planId);
    if (!warmed) {
        std::fprintf(stderr, "qpc-client: Prewarm failed: %s\n",
                     client.lastError().c_str());
        return 1;
    }
    std::printf("prewarm: %u unique blocks, %llu syntheses, "
                "%llu cache hits in %.3f s\n",
                warmed->uniqueBlocks,
                static_cast<unsigned long long>(warmed->synthRuns),
                static_cast<unsigned long long>(warmed->cacheHits),
                warmed->wallSeconds);

    Rng rng(static_cast<uint64_t>(cli.getInt("seed")));
    std::uint64_t hits = 0, misses = 0;
    double total_ns = 0.0;
    const int serves = cli.getInt("serves");
    for (int i = 0; i < serves; ++i) {
        const auto served = client.serve(prepared->planId,
                                         rng.angles(num_params),
                                         cli.getFlag("pulses"));
        if (!served) {
            std::fprintf(stderr, "qpc-client: Serve failed: %s\n",
                         client.lastError().c_str());
            return 1;
        }
        hits += served->cacheHits + served->quantHits;
        misses += served->cacheMisses + served->quantMisses +
                  served->exactServes;
        total_ns += served->pulseNs;
    }
    std::printf("served %d bindings: %llu warm segments, "
                "%llu synthesized, %.1f ns mean pulse\n",
                serves, static_cast<unsigned long long>(hits),
                static_cast<unsigned long long>(misses),
                serves ? total_ns / serves : 0.0);

    if (cli.getFlag("stats")) {
        const auto stats = client.stats();
        if (!stats) {
            std::fprintf(stderr, "qpc-client: Stats failed: %s\n",
                         client.lastError().c_str());
            return 1;
        }
        std::printf("server: %llu requests, %llu cache hits, "
                    "%llu coalesced, %llu syntheses, "
                    "%llu cache entries\n",
                    static_cast<unsigned long long>(stats->requests),
                    static_cast<unsigned long long>(stats->cacheHits),
                    static_cast<unsigned long long>(stats->coalesced),
                    static_cast<unsigned long long>(stats->synthRuns),
                    static_cast<unsigned long long>(
                        stats->cacheEntries));
        for (const WireTenantStats& t : stats->tenants)
            std::printf("  tenant %-12s plans=%llu serves=%llu "
                        "hitRate=%.2f servedKiB=%llu "
                        "quotaRejections=%llu\n",
                        t.tenant.c_str(),
                        static_cast<unsigned long long>(t.plans),
                        static_cast<unsigned long long>(t.serves),
                        t.hitRate(),
                        static_cast<unsigned long long>(
                            t.servedBytes >> 10),
                        static_cast<unsigned long long>(
                            t.quotaRejections));
    }

    if (cli.getFlag("shutdown")) {
        if (!client.shutdownServer()) {
            std::fprintf(stderr, "qpc-client: Shutdown failed: %s\n",
                         client.lastError().c_str());
            return 1;
        }
        std::printf("server acknowledged shutdown\n");
    }
    return 0;
}
