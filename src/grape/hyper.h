/**
 * @file
 * Hyperparameter pre-tuning for flexible partial compilation
 * (Section 7.2).
 *
 * GRAPE's ADAM optimizer exposes a learning rate and a decay rate.
 * Flexible partial compilation pre-computes, for every single-angle
 * subcircuit, the (learning rate, decay) pair that converges fastest;
 * the same pair stays near-optimal across different bound values of
 * the subcircuit's angle (the paper's Figure 4 robustness
 * observation), so the tuning cost is paid once while the latency
 * saving recurs every variational iteration.
 */

#ifndef QPC_GRAPE_HYPER_H
#define QPC_GRAPE_HYPER_H

#include <vector>

#include "grape/grape.h"

namespace qpc {

/** One evaluated hyperparameter configuration. */
struct HyperTrial
{
    AdamHyperParams hyper;
    double finalError = 1.0;   ///< 1 - fidelity after the budget.
    int iterations = 0;        ///< Iterations used (to target or cap).
    bool converged = false;
    double wallSeconds = 0.0;
};

/** Search-space and budget for the tuner. */
struct HyperTuneOptions
{
    GrapeOptions grape;         ///< Base configuration to perturb.
    std::vector<double> learningRates{0.003, 0.01, 0.03, 0.1, 0.3};
    std::vector<double> decays{0.999, 0.99};
    /** Iteration budget per trial (smaller than production runs). */
    int trialIterations = 120;
};

/** Output of a tuning sweep. */
struct HyperTuneResult
{
    AdamHyperParams best;       ///< Fastest-converging configuration.
    std::vector<HyperTrial> trials;   ///< Full sweep (for Figure 4).
    double totalWallSeconds = 0.0;    ///< Pre-compute cost.
};

/**
 * Grid-search ADAM hyperparameters for a target unitary at a fixed
 * pulse duration. Trials that converge are ranked by iteration count;
 * otherwise by final error.
 */
HyperTuneResult tuneHyperParams(const DeviceModel& device,
                                const CMatrix& target,
                                double total_time_ns,
                                const HyperTuneOptions& options = {});

} // namespace qpc

#endif // QPC_GRAPE_HYPER_H
