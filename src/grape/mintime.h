/**
 * @file
 * Binary search for the minimal pulse time (Section 5.3).
 *
 * GRAPE optimizes at a fixed total_time; the paper finds the shortest
 * achievable pulse by binary searching total_time down to a precision
 * of 0.3 ns, re-running GRAPE at each candidate duration. Decoherence
 * error is exponential in pulse time, so paying extra compilation
 * iterations for a shorter pulse is always worthwhile.
 */

#ifndef QPC_GRAPE_MINTIME_H
#define QPC_GRAPE_MINTIME_H

#include "grape/grape.h"

namespace qpc {

/** Configuration of the minimal-time search. */
struct MinTimeOptions
{
    GrapeOptions grape;        ///< Per-probe GRAPE configuration.
    double precisionNs = 0.3;  ///< Paper's binary-search resolution.
    double lowerBoundNs = 0.5; ///< Smallest candidate duration.
    /** Upper bound; typically the gate-based duration of the block. */
    double upperBoundNs = 50.0;
    /** Doublings allowed when the upper bound fails to converge. */
    int maxExpansions = 3;
};

/** Outcome of a minimal-time search. */
struct MinTimeResult
{
    bool found = false;        ///< Some duration converged.
    double minTimeNs = 0.0;    ///< Shortest converging duration.
    GrapeResult best;          ///< GRAPE result at minTimeNs.
    int probes = 0;            ///< GRAPE runs performed.
    double totalWallSeconds = 0.0;  ///< Total compilation latency.
};

/**
 * Find the shortest pulse duration at which GRAPE reaches the target
 * fidelity for the given unitary.
 */
MinTimeResult grapeMinimalTime(const DeviceModel& device,
                               const CMatrix& target,
                               const MinTimeOptions& options = {});

/**
 * Ascending-scan variant: probe geometrically spaced durations from
 * lowerBoundNs upward and return the first that converges. Binary
 * search assumes convergence is monotone in duration, which fails on
 * leaky (qutrit) devices where long pulses accumulate leakage; the
 * scan only ever needs convergence at the answer itself.
 *
 * @param growth Geometric spacing of candidate durations (> 1).
 */
MinTimeResult grapeMinimalTimeScan(const DeviceModel& device,
                                   const CMatrix& target,
                                   const MinTimeOptions& options = {},
                                   double growth = 1.3);

} // namespace qpc

#endif // QPC_GRAPE_MINTIME_H
