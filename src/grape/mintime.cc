#include "grape/mintime.h"

#include "common/logging.h"

namespace qpc {

MinTimeResult
grapeMinimalTime(const DeviceModel& device, const CMatrix& target,
                 const MinTimeOptions& options)
{
    MinTimeResult result;

    auto probe = [&](double time_ns) {
        GrapeResult run =
            runGrapeFixedTime(device, target, time_ns, options.grape);
        ++result.probes;
        result.totalWallSeconds += run.wallSeconds;
        return run;
    };

    // Establish a converging upper bound, doubling when needed.
    double hi = options.upperBoundNs;
    GrapeResult hi_run = probe(hi);
    int expansions = 0;
    while (!hi_run.converged && expansions < options.maxExpansions) {
        hi *= 2.0;
        ++expansions;
        hi_run = probe(hi);
    }
    if (!hi_run.converged) {
        warn("GRAPE did not converge even at ", hi,
             " ns; reporting failure");
        result.best = hi_run;
        return result;
    }

    result.found = true;
    result.minTimeNs = hi;
    result.best = hi_run;

    double lo = options.lowerBoundNs;
    while (hi - lo > options.precisionNs) {
        const double mid = 0.5 * (lo + hi);
        GrapeResult mid_run = probe(mid);
        if (mid_run.converged) {
            hi = mid;
            result.minTimeNs = mid;
            result.best = mid_run;
        } else {
            lo = mid;
        }
    }
    return result;
}

MinTimeResult
grapeMinimalTimeScan(const DeviceModel& device, const CMatrix& target,
                     const MinTimeOptions& options, double growth)
{
    fatalIf(growth <= 1.0, "scan growth factor must exceed 1");
    MinTimeResult result;

    double candidate = options.lowerBoundNs;
    while (candidate <= options.upperBoundNs * (1.0 + 1e-9)) {
        GrapeResult run = runGrapeFixedTime(device, target, candidate,
                                            options.grape);
        ++result.probes;
        result.totalWallSeconds += run.wallSeconds;
        if (run.converged) {
            result.found = true;
            result.minTimeNs = candidate;
            result.best = std::move(run);
            return result;
        }
        // Keep the closest miss for failure diagnostics.
        if (run.fidelity > result.best.fidelity)
            result.best = std::move(run);
        candidate *= growth;
    }
    warn("GRAPE scan found no converging duration up to ",
         options.upperBoundNs, " ns");
    return result;
}

} // namespace qpc
