#include "grape/grape.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/logging.h"
#include "common/rng.h"
#include "linalg/eig.h"
#include "linalg/kernels.h"
#include "pulse/evolve.h"

namespace qpc {

namespace {

/**
 * Shared state for one cost/gradient evaluation over the flat
 * parameter vector x, laid out as x[c * nSteps + k].
 */
struct GrapeWorkspace
{
    const DeviceModel& device;
    CMatrix effTarget;     ///< Target embedded in device space (E).
    double qdim;           ///< Normalization dimension of the overlap.
    int nSteps;
    double dt;
    const GrapeOptions& options;
    std::vector<double> envelope;   ///< Gaussian window g_k.

    GrapeWorkspace(const DeviceModel& dev, const CMatrix& target,
                   int steps, const GrapeOptions& opts)
        : device(dev), qdim(static_cast<double>(1 << dev.numQubits())),
          nSteps(steps), dt(opts.dt), options(opts)
    {
        effTarget = CMatrix(dev.dim(), dev.dim());
        const std::vector<int> comp = dev.computationalIndices();
        const int q = static_cast<int>(comp.size());
        panicIf(target.rows() != q,
                "GRAPE target must act on the qubit space");
        for (int r = 0; r < q; ++r)
            for (int c = 0; c < q; ++c)
                effTarget(comp[r], comp[c]) = target(r, c);

        envelope.resize(steps);
        const double mid = 0.5 * (steps - 1);
        const double sigma = std::max(1.0, steps / 4.0);
        for (int k = 0; k < steps; ++k) {
            const double z = (k - mid) / sigma;
            envelope[k] = std::exp(-0.5 * z * z);
        }
    }

    int numControls() const { return device.numControls(); }
    int numParams() const { return numControls() * nSteps; }

    /** Bounded amplitude from the unconstrained parameter. */
    double
    amplitude(const std::vector<double>& x, int c, int k) const
    {
        const double bound = device.controls()[c].maxAmp;
        return bound * std::tanh(x[c * nSteps + k]);
    }

    /** d amplitude / d x at the same point. */
    double
    amplitudeGrad(const std::vector<double>& x, int c, int k) const
    {
        const double bound = device.controls()[c].maxAmp;
        const double t = std::tanh(x[c * nSteps + k]);
        return bound * (1.0 - t * t);
    }
};

/**
 * Cost and (optionally) gradient at x. Returns the cost; fidelity is
 * written to *fidelity_out.
 */
double
evaluate(const GrapeWorkspace& ws, const std::vector<double>& x,
         std::vector<double>* grad, double* fidelity_out)
{
    const int n_steps = ws.nSteps;
    const int n_ctrl = ws.numControls();
    const int d = ws.device.dim();
    const double dt = ws.dt;

    // Amplitudes for every (control, step).
    std::vector<std::vector<double>> u(
        n_ctrl, std::vector<double>(n_steps, 0.0));
    for (int c = 0; c < n_ctrl; ++c)
        for (int k = 0; k < n_steps; ++k)
            u[c][k] = ws.amplitude(x, c, k);

    // Forward pass: store the cumulative products
    // P_k = U_{k-1} ... U_0 (partials[k]). When gradients are needed,
    // the slice Hamiltonians are eigendecomposed so both the
    // propagator and its exact derivative come from the same
    // factorization.
    std::vector<CMatrix> props(n_steps);
    std::vector<CMatrix> partials(n_steps + 1);
    std::vector<EigResult> eigs;
    if (grad)
        eigs.resize(n_steps);
    partials[0] = CMatrix::identity(d);
    std::vector<double> amps(n_ctrl);
    for (int k = 0; k < n_steps; ++k) {
        for (int c = 0; c < n_ctrl; ++c)
            amps[c] = u[c][k];
        const CMatrix h = sliceHamiltonian(ws.device, amps);
        if (grad) {
            eigs[k] = eigHermitian(h);
            std::vector<Complex> phases(d);
            for (int i = 0; i < d; ++i)
                phases[i] = std::polar(1.0, -dt * eigs[k].values[i]);
            props[k] = kernels::scaledDaggerSandwich(eigs[k].vectors,
                                                     phases);
        } else {
            props[k] = slicePropagator(h, dt);
        }
        partials[k + 1] = props[k] * partials[k];
    }

    // tr(E^dag P) is the elementwise conjugated dot of E with P.
    const Complex overlap = kernels::dotcInterleaved(
        ws.effTarget.data(), partials[n_steps].data(),
        static_cast<size_t>(d) * static_cast<size_t>(d));
    const double fidelity = std::norm(overlap) / (ws.qdim * ws.qdim);
    if (fidelity_out)
        *fidelity_out = fidelity;

    // Regularizer costs (all mean-normalized so weights are scale
    // free in the number of samples).
    const double denom = static_cast<double>(n_ctrl * n_steps);
    double amp_cost = 0.0, slope_cost = 0.0, env_cost = 0.0;
    for (int c = 0; c < n_ctrl; ++c) {
        for (int k = 0; k < n_steps; ++k) {
            amp_cost += u[c][k] * u[c][k];
            const double masked = u[c][k] * (1.0 - ws.envelope[k]);
            env_cost += masked * masked;
            if (k + 1 < n_steps) {
                const double diff = u[c][k + 1] - u[c][k];
                slope_cost += diff * diff;
            }
        }
    }
    const double cost = (1.0 - fidelity) +
                        ws.options.amplitudeWeight * amp_cost / denom +
                        ws.options.slopeWeight * slope_cost / denom +
                        ws.options.envelopeWeight * env_cost / denom;
    if (!grad)
        return cost;

    grad->assign(ws.numParams(), 0.0);

    // Backward pass with the exact propagator derivative. By the
    // Daleckii-Krein theorem, for H = V diag(lambda) V^dag,
    //   dU/du = V (Phi o (V^dag H_c V)) V^dag,
    // Phi_ij = (e^{-i dt li} - e^{-i dt lj}) / (li - lj). Substituting
    // into dO/du = tr(B_k dU P_k) and collecting the V factors yields
    //   dO/du_c = tr(H_c S_k),  S_k = V (Phi^T o Mt) V^dag,
    // with Mt = V^dag P_k B_k V shared across all controls.
    CMatrix b = ws.effTarget.dagger();
    const Complex o_conj = std::conj(overlap);
    for (int k = n_steps - 1; k >= 0; --k) {
        const CMatrix& v = eigs[k].vectors;
        const std::vector<double>& lam = eigs[k].values;
        const CMatrix mt = v.dagger() * (partials[k] * b) * v;

        // N = Phi^T o Mt, then S = V N V^dag.
        CMatrix nmat(d, d);
        for (int j = 0; j < d; ++j) {
            for (int i = 0; i < d; ++i) {
                const double dl = lam[i] - lam[j];
                Complex phi;
                if (std::abs(dl) < 1e-9) {
                    phi = Complex{0.0, -dt} *
                          std::polar(1.0, -dt * lam[i]);
                } else {
                    phi = (std::polar(1.0, -dt * lam[i]) -
                           std::polar(1.0, -dt * lam[j])) /
                          Complex{dl, 0.0};
                }
                // N_ji = Phi_ij * Mt_ji.
                nmat(j, i) = phi * mt(j, i);
            }
        }
        const CMatrix s = v * nmat * v.dagger();
        // tr(H_c S) = sum_ij H_c(i,j) S(j,i); transposing S once lets
        // every control's trace run as a contiguous dot product.
        const CMatrix st = s.transpose();

        for (int c = 0; c < n_ctrl; ++c) {
            const CMatrix& hc = ws.device.controls()[c].op;
            const Complex d_overlap = kernels::dotuInterleaved(
                hc.data(), st.data(),
                static_cast<size_t>(d) * static_cast<size_t>(d));
            const double d_fid =
                2.0 * (o_conj * d_overlap).real() / (ws.qdim * ws.qdim);

            // Regularizer gradients w.r.t. u[c][k].
            double d_reg = ws.options.amplitudeWeight * 2.0 * u[c][k];
            const double mask = 1.0 - ws.envelope[k];
            d_reg += ws.options.envelopeWeight * 2.0 * u[c][k] * mask *
                     mask;
            if (k + 1 < n_steps)
                d_reg -= ws.options.slopeWeight * 2.0 *
                         (u[c][k + 1] - u[c][k]);
            if (k > 0)
                d_reg += ws.options.slopeWeight * 2.0 *
                         (u[c][k] - u[c][k - 1]);
            d_reg /= denom;

            (*grad)[c * n_steps + k] =
                (-d_fid + d_reg) * ws.amplitudeGrad(x, c, k);
        }

        // Fold step k's propagator into B for the next iteration.
        if (k > 0)
            b = b * props[k];
    }
    return cost;
}

} // namespace

GrapeResult
runGrapeFixedTime(const DeviceModel& device, const CMatrix& target,
                  double total_time_ns, const GrapeOptions& options)
{
    fatalIf(total_time_ns <= 0.0, "GRAPE needs a positive duration");
    const int n_steps = std::max(
        2, static_cast<int>(std::round(total_time_ns / options.dt)));
    GrapeWorkspace ws(device, target, n_steps, options);

    const auto start = std::chrono::steady_clock::now();

    // Small random initialization breaks the symmetry of the all-zero
    // pulse. The per-channel scale keeps the *accumulated* random
    // rotation (std x maxAmp x dt x sqrt(steps)) of order one —
    // otherwise long or strongly-driven pulses start from a
    // deep-random unitary whose fidelity landscape is flat and
    // gradient descent stalls.
    Rng rng(options.seed);
    std::vector<double> x(ws.numParams());
    const double sqrt_steps = std::sqrt(static_cast<double>(n_steps));
    for (int c = 0; c < device.numControls(); ++c) {
        const double amp = device.controls()[c].maxAmp;
        const double scale =
            std::min(0.2, 0.5 / (amp * options.dt * sqrt_steps));
        for (int k = 0; k < n_steps; ++k)
            x[c * n_steps + k] = scale * rng.normal();
    }

    AdamOptimizer adam(ws.numParams(), options.hyper);
    GrapeResult result;
    std::vector<double> grad;
    double fidelity = 0.0;

    for (int iter = 0; iter < options.maxIterations; ++iter) {
        evaluate(ws, x, &grad, &fidelity);
        result.history.push_back(fidelity);
        result.iterations = iter + 1;
        if (fidelity >= options.targetFidelity) {
            result.converged = true;
            break;
        }
        adam.step(x, grad);
    }

    // Final evaluation after the last update (unless we broke early).
    if (!result.converged) {
        evaluate(ws, x, nullptr, &fidelity);
        result.history.push_back(fidelity);
        result.converged = fidelity >= options.targetFidelity;
    }
    result.fidelity = fidelity;

    result.pulse = PulseSchedule(device.numControls(), n_steps,
                                 options.dt);
    for (int c = 0; c < device.numControls(); ++c)
        for (int k = 0; k < n_steps; ++k)
            result.pulse.channel(c)[k] = ws.amplitude(x, c, k);

    const auto end = std::chrono::steady_clock::now();
    result.wallSeconds =
        std::chrono::duration<double>(end - start).count();
    return result;
}

double
grapeGradientCheck(const DeviceModel& device, const CMatrix& target,
                   double total_time_ns, const GrapeOptions& options,
                   int probes)
{
    const int n_steps = std::max(
        2, static_cast<int>(std::round(total_time_ns / options.dt)));
    GrapeWorkspace ws(device, target, n_steps, options);

    Rng rng(options.seed + 1);
    std::vector<double> x(ws.numParams());
    for (double& v : x)
        v = 0.4 * rng.normal();

    std::vector<double> grad;
    evaluate(ws, x, &grad, nullptr);

    double worst = 0.0;
    const double eps = 1e-5;
    for (int p = 0; p < probes; ++p) {
        const int i = rng.randint(0, ws.numParams() - 1);
        std::vector<double> xp = x;
        xp[i] += eps;
        const double up = evaluate(ws, xp, nullptr, nullptr);
        xp[i] -= 2.0 * eps;
        const double dn = evaluate(ws, xp, nullptr, nullptr);
        const double numeric = (up - dn) / (2.0 * eps);
        const double scale =
            std::max({std::abs(numeric), std::abs(grad[i]), 1e-8});
        worst = std::max(worst, std::abs(numeric - grad[i]) / scale);
    }
    return worst;
}

} // namespace qpc
