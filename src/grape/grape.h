/**
 * @file
 * GRAPE: GRadient Ascent Pulse Engineering (Sections 2.4 / 5).
 *
 * Numerically searches for the time-discretized control fields that
 * realize a target unitary on a device. The forward pass integrates
 * piecewise-constant evolution; gradients of the phase-invariant trace
 * fidelity are computed analytically by the adjoint method and fed to
 * ADAM, mirroring the TensorFlow implementation of Leung et al. that
 * the paper builds on.
 *
 * Control fields are parametrized as u = maxAmp * tanh(x) so the
 * hardware amplitude bounds of Appendix A hold by construction, and
 * optional cost terms regularize amplitude, slope (smooth first
 * differences), and a Gaussian envelope — the "more realistic pulses"
 * configuration of Section 8.3.
 */

#ifndef QPC_GRAPE_GRAPE_H
#define QPC_GRAPE_GRAPE_H

#include <cstdint>
#include <vector>

#include "linalg/matrix.h"
#include "opt/adam.h"
#include "pulse/device.h"
#include "pulse/schedule.h"

namespace qpc {

/** Cost weights and optimizer configuration for one GRAPE run. */
struct GrapeOptions
{
    double dt = 0.05;                ///< Sample period, ns (20 GSa/s).
    double targetFidelity = 0.999;   ///< Paper's convergence target.
    int maxIterations = 300;         ///< ADAM iteration cap.
    AdamHyperParams hyper{0.05, 0.999};  ///< Untuned defaults.
    double amplitudeWeight = 0.0;    ///< L2 penalty on drive power.
    double slopeWeight = 0.0;        ///< Penalty on first differences.
    double envelopeWeight = 0.0;     ///< Gaussian-envelope penalty.
    uint64_t seed = 7;               ///< Pulse initialization seed.
};

/** Outcome of one fixed-duration GRAPE run. */
struct GrapeResult
{
    bool converged = false;       ///< Reached targetFidelity.
    double fidelity = 0.0;        ///< Final trace fidelity.
    int iterations = 0;           ///< ADAM steps performed.
    PulseSchedule pulse;          ///< Optimized control fields.
    double wallSeconds = 0.0;     ///< Compilation latency.
    std::vector<double> history;  ///< Fidelity per iteration.
};

/**
 * Optimize control pulses of a fixed total duration toward a target
 * unitary given in the qubit space (2^n dimensional); when the device
 * models qutrit levels, fidelity is evaluated on the computational
 * subspace so leakage is penalized.
 */
GrapeResult runGrapeFixedTime(const DeviceModel& device,
                              const CMatrix& target, double total_time_ns,
                              const GrapeOptions& options = {});

/**
 * Numerical-vs-analytic gradient agreement check used by tests:
 * returns the max relative error of the adjoint gradient against
 * central finite differences at a random point.
 */
double grapeGradientCheck(const DeviceModel& device, const CMatrix& target,
                          double total_time_ns,
                          const GrapeOptions& options, int probes);

} // namespace qpc

#endif // QPC_GRAPE_GRAPE_H
