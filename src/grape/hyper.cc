#include "grape/hyper.h"

#include "common/logging.h"

namespace qpc {

HyperTuneResult
tuneHyperParams(const DeviceModel& device, const CMatrix& target,
                double total_time_ns, const HyperTuneOptions& options)
{
    HyperTuneResult result;
    fatalIf(options.learningRates.empty() || options.decays.empty(),
            "hyperparameter grid is empty");

    bool have_best = false;
    HyperTrial best_trial;

    for (double lr : options.learningRates) {
        for (double decay : options.decays) {
            GrapeOptions config = options.grape;
            config.hyper = AdamHyperParams{lr, decay};
            config.maxIterations = options.trialIterations;

            const GrapeResult run = runGrapeFixedTime(
                device, target, total_time_ns, config);

            HyperTrial trial;
            trial.hyper = config.hyper;
            trial.finalError = 1.0 - run.fidelity;
            trial.iterations = run.iterations;
            trial.converged = run.converged;
            trial.wallSeconds = run.wallSeconds;
            result.totalWallSeconds += run.wallSeconds;
            result.trials.push_back(trial);

            // Converged trials beat unconverged; among converged, fewer
            // iterations win; among unconverged, lower error wins.
            bool better;
            if (!have_best) {
                better = true;
            } else if (trial.converged != best_trial.converged) {
                better = trial.converged;
            } else if (trial.converged) {
                better = trial.iterations < best_trial.iterations;
            } else {
                better = trial.finalError < best_trial.finalError;
            }
            if (better) {
                best_trial = trial;
                have_best = true;
            }
        }
    }

    result.best = best_trial.hyper;
    return result;
}

} // namespace qpc
