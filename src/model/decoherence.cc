#include "model/decoherence.h"

#include <cmath>

#include "common/logging.h"

namespace qpc {

double
DecoherenceModel::successProbability(double pulse_ns) const
{
    panicIf(pulse_ns < 0.0, "negative pulse duration");
    fatalIf(t2Ns <= 0.0, "coherence time must be positive");
    fatalIf(numQubits <= 0, "qubit count must be positive");
    return std::exp(-pulse_ns * numQubits / t2Ns);
}

double
DecoherenceModel::advantage(double short_ns, double long_ns) const
{
    return successProbability(short_ns) / successProbability(long_ns);
}

double
DecoherenceModel::horizonNs(double target_probability) const
{
    fatalIf(target_probability <= 0.0 || target_probability >= 1.0,
            "target probability must be in (0, 1)");
    return -t2Ns * std::log(target_probability) / numQubits;
}

std::vector<SurvivalReport>
survivalByStrategy(const PartialCompiler& compiler,
                   const std::vector<double>& theta,
                   const DecoherenceModel& model)
{
    std::vector<SurvivalReport> out;
    for (const CompileReport& report : compiler.compileAll(theta)) {
        SurvivalReport row;
        row.strategy = report.strategy;
        row.pulseNs = report.pulseNs;
        row.successProbability =
            model.successProbability(report.pulseNs);
        out.push_back(row);
    }
    return out;
}

} // namespace qpc
