#include "model/latencymodel.h"

#include <cmath>

#include "common/logging.h"

namespace qpc {

GrapeLatencyModel::GrapeLatencyModel(LatencyModelParams params)
    : params_(params)
{
    fatalIf(params_.secondsPerUnit <= 0.0, "bad latency calibration");
}

int
GrapeLatencyModel::searchProbes() const
{
    return std::max(1, static_cast<int>(std::ceil(std::log2(
                            params_.searchRangeNs /
                            params_.searchPrecisionNs))));
}

double
GrapeLatencyModel::iterationSeconds(int width, double pulse_ns) const
{
    const double d = std::pow(2.0, width);
    const double steps = std::max(1.0, pulse_ns / params_.dtNs);
    return params_.secondsPerUnit * steps * d * d * d;
}

double
GrapeLatencyModel::fullGrapeSeconds(int width, double pulse_ns) const
{
    return iterationSeconds(width, pulse_ns) *
           params_.untunedIterations * searchProbes();
}

double
GrapeLatencyModel::tunedGrapeSeconds(int width, double pulse_ns) const
{
    return iterationSeconds(width, pulse_ns) * params_.tunedIterations;
}

double
GrapeLatencyModel::tuningPrecomputeSeconds(int width,
                                           double pulse_ns) const
{
    // Grid of short trials at roughly half the untuned budget each.
    return iterationSeconds(width, pulse_ns) * params_.tuningGridSize *
           (params_.untunedIterations / 2.0);
}

} // namespace qpc
