/**
 * @file
 * Decoherence / success-probability model.
 *
 * The paper's core motivation (Sections 1, 8.4, 9): error due to
 * decoherence grows exponentially with pulse duration, so a pulse
 * speedup is "not merely about wall time" — it enters the exponent of
 * the circuit's survival probability. This module makes that argument
 * quantitative: given a compiled pulse duration and a device
 * coherence time, it reports the survival probability and the
 * improvement one compilation strategy buys over another, which is
 * how a user decides whether partial compilation makes an experiment
 * feasible at all.
 */

#ifndef QPC_MODEL_DECOHERENCE_H
#define QPC_MODEL_DECOHERENCE_H

#include "partial/compiler.h"

namespace qpc {

/** Exponential-decay coherence model. */
struct DecoherenceModel
{
    /**
     * Effective coherence time in nanoseconds. Representative of
     * gmon-style superconducting qubits (tens of microseconds in
     * modern devices; short values stress-test the argument).
     */
    double t2Ns = 20000.0;
    /** Number of qubits whose decay channels act in parallel. */
    int numQubits = 1;

    /** Survival probability of a pulse of the given duration. */
    double successProbability(double pulse_ns) const;

    /**
     * Multiplicative fidelity advantage of running a shorter pulse:
     * successProbability(short) / successProbability(long) — grows
     * exponentially in the duration *difference*.
     */
    double advantage(double short_ns, double long_ns) const;

    /**
     * Largest circuit duration that still meets a target success
     * probability — the feasibility horizon a compilation strategy
     * must fit under.
     */
    double horizonNs(double target_probability) const;
};

/** One row of the strategy-vs-survival comparison. */
struct SurvivalReport
{
    Strategy strategy;
    double pulseNs;
    double successProbability;
};

/**
 * Evaluate all four strategies' compiled pulses under a coherence
 * model (convenience for examples and benches).
 */
std::vector<SurvivalReport>
survivalByStrategy(const PartialCompiler& compiler,
                   const std::vector<double>& theta,
                   const DecoherenceModel& model);

} // namespace qpc

#endif // QPC_MODEL_DECOHERENCE_H
