/**
 * @file
 * Analytic pulse-duration model derived from the gmon Hamiltonian.
 *
 * The paper spent 200,000 CPU-core hours running GRAPE across its 37
 * benchmark circuits. This model reproduces the *structure* of those
 * results from first principles so the full benchmark sweeps run in
 * seconds, and it is cross-validated against the real GRAPE optimizer
 * (src/grape) on small blocks in the test suite.
 *
 * Ingredients, each tied to a speedup source from Section 5.1:
 *  - Control-field asymmetry: a fused single-qubit unitary is priced
 *    through its ZXZ Euler angles — |beta| against the slow charge
 *    (X) drive, |alpha| + |gamma| against the 15x faster flux (Z)
 *    drive.
 *  - Fractional gates / ISA alignment: runs of gates on the same
 *    qubit pair collapse into one 4x4 unitary priced by its *Weyl
 *    interaction content* (|c1|+|c2|+|c3|)/g_max — so CX Rz(g) CX
 *    costs the fraction g/2 of coupler time rather than two full CX
 *    windows, exactly the fractional-CX effect GRAPE discovers.
 *  - Maximal circuit optimization: the group costs are assembled into
 *    an ASAP critical path per block and a block-DAG critical path
 *    across blocks, so parallel structure is never double-charged.
 *  - Lloyd-Maity saturation: an N-qubit block's time is capped by a
 *    soft asymptote T_sat(N), reproducing Figure 2's plateau, with
 *    the constant calibrated to the paper's < 50 ns value at N = 4.
 */

#ifndef QPC_MODEL_TIMEMODEL_H
#define QPC_MODEL_TIMEMODEL_H

#include "ir/circuit.h"
#include "pulse/device.h"
#include "transpile/blocking.h"

namespace qpc {

/** Calibration constants of the analytic model. */
struct TimeModelParams
{
    GmonLimits limits;          ///< Drive bounds (Appendix A).
    /**
     * Fraction of a group's local (single-qubit) dressing that cannot
     * be absorbed into the coupler window. Calibrated so a lone CX
     * prices below its 3.8 ns gate-based cost but above the 2.5 ns
     * interaction bound.
     */
    double dressingFactor = 0.5;
    /**
     * Saturation T_sat(N) = satBase * 2^N ns: the characteristic time
     * a generic N-qubit block approaches under optimal control
     * (Lloyd-Maity give O(4^N) worst case; real GRAPE lands near this
     * much smaller value). Anchored to the paper's whole-circuit
     * GRAPE results: LiH (4 qubits) converged at 19.3 ns and the
     * Figure 2 asymptote sits below 50 ns, so T_sat(4) = 22.4 ns.
     */
    double satBase = 1.4;
    /** Block width above which saturation applies. */
    int satMinWidth = 3;
    /**
     * Largest number of two-qubit gates one pair group may fuse.
     * GRAPE reliably discovers the fractional-gate compression of a
     * CX Rz(g) CX sandwich (cap 2) but not arbitrarily deep
     * algebraic collapses of long ladders; the cap keeps the model
     * honest against the 0.999-fidelity optimizer's real behaviour.
     */
    int pairGroupCap = 2;
    /**
     * Interaction surcharge per missing-coupler hop inside a block:
     * the gmon couples a rectangular grid, so blocks are priced as a
     * 2x2 tile and non-adjacent pairs pay routeHopNs per extra hop,
     * modelling the routing GRAPE must synthesize (Figure 2's 4-node
     * clique needs its two diagonal interactions routed).
     */
    double routeHopNs = 4.0;
};

/** Hamiltonian-derived pulse-time estimates. */
class PulseTimeModel
{
  public:
    explicit PulseTimeModel(TimeModelParams params = {});

    const TimeModelParams& params() const { return params_; }

    /** Minimal drive time of a single-qubit unitary (ZXZ pricing). */
    double singleQubitTimeNs(const CMatrix& u) const;

    /**
     * Minimal time of a two-qubit unitary: Weyl interaction content
     * over the coupler bound, plus partially-absorbed local dressing.
     */
    double twoQubitTimeNs(const CMatrix& u) const;

    /** Soft saturation bound for an n-qubit block. */
    double saturationNs(int num_qubits) const;

    /**
     * GRAPE-style pulse time of one bound block (<= 4 qubits): fuse
     * single-qubit runs, collapse same-pair groups, price both
     * exactly, take the ASAP critical path, and saturate.
     */
    double blockTimeNs(const Circuit& block) const;

    /**
     * Pulse time of an arbitrary bound circuit: aggregate into blocks
     * of at most max_width qubits and take the block-DAG critical
     * path of the per-block times.
     */
    double circuitTimeNs(const Circuit& circuit, int max_width = 4) const;

  private:
    TimeModelParams params_;
};

} // namespace qpc

#endif // QPC_MODEL_TIMEMODEL_H
