/**
 * @file
 * Calibration epochs: the staleness key for every cached pulse.
 *
 * A real device's Hamiltonian drifts between calibrations, so a pulse
 * synthesized against last epoch's device model is silently wrong
 * physics even though its circuit fingerprint still matches. The
 * CalibrationEpoch pairs a monotonic counter (bumped each time the
 * control stack recalibrates) with a hash of the device model the
 * pulses were synthesized against. Every layer that names a pulse —
 * BlockFingerprint, the PulseCache disk records, ServingPlan, the
 * wire protocol — carries it, so an epoch bump invalidates the whole
 * tier by construction rather than by sweep.
 *
 * The zero epoch {0, 0} means "epochs not in use" and preserves the
 * legacy keying: fingerprints hash, compare, and render exactly as
 * they did before epochs existed, and pre-epoch disk records load as
 * epoch zero.
 */

#ifndef QPC_MODEL_CALIBRATION_H
#define QPC_MODEL_CALIBRATION_H

#include <cstdint>

namespace qpc {

class DeviceModel;

/** Identity of one calibration of the target device. */
struct CalibrationEpoch
{
    /** Monotonic calibration counter; 0 = epochs not in use. */
    std::uint64_t counter = 0;
    /** Hash of the device model pulses are synthesized against. */
    std::uint64_t modelHash = 0;

    bool zero() const { return counter == 0 && modelHash == 0; }

    /**
     * One mixed word for hashing. The zero epoch keys to 0 so legacy
     * fingerprint hashes are unchanged.
     */
    std::uint64_t key() const
    {
        if (zero())
            return 0;
        std::uint64_t h = counter * 0x9e3779b97f4a7c15ull;
        h ^= modelHash + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
        return h | 1; // Never 0 for a non-zero epoch.
    }
};

inline bool
operator==(const CalibrationEpoch& a, const CalibrationEpoch& b)
{
    return a.counter == b.counter && a.modelHash == b.modelHash;
}

inline bool
operator!=(const CalibrationEpoch& a, const CalibrationEpoch& b)
{
    return !(a == b);
}

/**
 * Hash the parameters of a device model that affect synthesized
 * pulses: qubit count, level truncation, coupling graph, and the gmon
 * amplitude limits. Two models with equal hashes produce
 * interchangeable pulses for the same block.
 */
std::uint64_t deviceModelHash(const DeviceModel& model);

} // namespace qpc

#endif // QPC_MODEL_CALIBRATION_H
