#include "model/calibration.h"

#include <cstring>

#include "pulse/device.h"

namespace qpc {

namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void
mixU64(std::uint64_t& h, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xffu;
        h *= kFnvPrime;
    }
}

void
mixF64(std::uint64_t& h, double v)
{
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    mixU64(h, bits);
}

} // namespace

std::uint64_t
deviceModelHash(const DeviceModel& model)
{
    std::uint64_t h = kFnvOffset;
    mixU64(h, static_cast<std::uint64_t>(model.numQubits()));
    mixU64(h, static_cast<std::uint64_t>(model.levels()));
    for (const auto& [a, b] : model.couplings()) {
        mixU64(h, static_cast<std::uint64_t>(a));
        mixU64(h, static_cast<std::uint64_t>(b));
    }
    const GmonLimits& limits = model.limits();
    mixF64(h, limits.chargeMax);
    mixF64(h, limits.fluxMax);
    mixF64(h, limits.couplerMax);
    mixF64(h, limits.anharmonicity);
    return h;
}

} // namespace qpc
