#include "model/timemodel.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "linalg/su2.h"
#include "linalg/weyl.h"
#include "sim/statevector.h"
#include "transpile/schedule.h"

namespace qpc {

namespace {

constexpr double kPi = 3.14159265358979323846;

/**
 * Split a (near-)local two-qubit unitary M ~ A (x) B into its factors.
 * Returns false when the extraction is numerically degenerate.
 */
bool
extractLocalPair(const CMatrix& m, CMatrix& a, CMatrix& b)
{
    // Find the sub-block M[2r0+?, 2c0+?] = A(r0,c0) * B with the
    // largest mass to divide out robustly.
    int best_r = 0, best_c = 0;
    double best_mass = -1.0;
    for (int r0 = 0; r0 < 2; ++r0) {
        for (int c0 = 0; c0 < 2; ++c0) {
            double mass = 0.0;
            for (int r1 = 0; r1 < 2; ++r1)
                for (int c1 = 0; c1 < 2; ++c1)
                    mass += std::norm(m(2 * r0 + r1, 2 * c0 + c1));
            if (mass > best_mass) {
                best_mass = mass;
                best_r = r0;
                best_c = c0;
            }
        }
    }
    if (best_mass < 1e-12)
        return false;

    CMatrix sub(2, 2);
    for (int r1 = 0; r1 < 2; ++r1)
        for (int c1 = 0; c1 < 2; ++c1)
            sub(r1, c1) = m(2 * best_r + r1, 2 * best_c + c1);
    const Complex det = sub(0, 0) * sub(1, 1) - sub(0, 1) * sub(1, 0);
    if (std::abs(det) < 1e-12)
        return false;
    const Complex scale = std::sqrt(det);
    b = sub * (Complex{1.0, 0.0} / scale);

    // Largest entry of B defines the division for A.
    int br = 0, bc = 0;
    double bmax = 0.0;
    for (int r1 = 0; r1 < 2; ++r1) {
        for (int c1 = 0; c1 < 2; ++c1) {
            if (std::abs(b(r1, c1)) > bmax) {
                bmax = std::abs(b(r1, c1));
                br = r1;
                bc = c1;
            }
        }
    }
    a = CMatrix(2, 2);
    for (int r0 = 0; r0 < 2; ++r0)
        for (int c0 = 0; c0 < 2; ++c0)
            a(r0, c0) = m(2 * r0 + br, 2 * c0 + bc) / b(br, bc);
    return a.isUnitary(1e-6) && b.isUnitary(1e-6);
}

/** One priced unit of work inside a block. */
struct CostItem
{
    std::vector<int> qubits;   // local qubit indices
    double timeNs;
};

} // namespace

PulseTimeModel::PulseTimeModel(TimeModelParams params) : params_(params)
{
}

double
PulseTimeModel::singleQubitTimeNs(const CMatrix& u) const
{
    const EulerZXZ e = eulerZXZ(u);
    const double tx = std::abs(e.beta) / (2.0 * params_.limits.chargeMax);
    // Z rotations ride the 15x faster flux line and partially overlap
    // the X window under optimal control; charge half their area.
    const double tz = 0.5 * (std::abs(e.alpha) + std::abs(e.gamma)) /
                      params_.limits.fluxMax;
    return tx + tz;
}

double
PulseTimeModel::twoQubitTimeNs(const CMatrix& u) const
{
    const WeylCoords w = weylCoordinates(u);
    const double interaction = w.interaction();

    if (interaction < 1e-6) {
        // Locally trivial: price the two single-qubit factors, driven
        // in parallel.
        CMatrix a, b;
        if (extractLocalPair(u, a, b))
            return std::max(singleQubitTimeNs(a), singleQubitTimeNs(b));
        return 0.0;
    }

    const double t_int = interaction / params_.limits.couplerMax;

    // Local dressing: how far u sits from its bare canonical gate
    // decides how much single-qubit work must wrap the coupler
    // window; a fraction dressingFactor of a pi/2 X rotation per side
    // survives GRAPE's overlapping.
    const CMatrix canon = canonicalGate(w.c1, w.c2, w.c3);
    const double f =
        std::abs((canon.dagger() * u).trace()) / 4.0;
    const double local_unit =
        2.0 * (kPi / 2.0) / (2.0 * params_.limits.chargeMax);
    const double dressing =
        params_.dressingFactor * local_unit * (1.0 - f * f);
    return t_int + dressing;
}

double
PulseTimeModel::saturationNs(int num_qubits) const
{
    return params_.satBase * std::pow(2.0, num_qubits);
}

double
PulseTimeModel::blockTimeNs(const Circuit& block) const
{
    panicIf(!block.isParamFree(),
            "bind parameters before pricing a block");
    const int n = block.numQubits();

    // Fuse runs: pending single-qubit matrices per qubit and open
    // same-pair groups accumulating 4x4 matrices.
    struct PairGroup
    {
        int qa, qb;          // qa < qb, local indices
        CMatrix m;           // accumulated unitary
        int twoQubitOps = 0; // fusion depth (capped)
        bool openFlag = true;
    };
    std::vector<CMatrix> pending(n);
    for (int q = 0; q < n; ++q)
        pending[q] = CMatrix::identity(2);
    std::vector<bool> pending_nontrivial(n, false);
    std::vector<int> group_of(n, -1);
    std::vector<PairGroup> groups;
    std::vector<CostItem> items;

    auto op_matrix = [](const GateOp& op) {
        const double angle =
            gateIsRotation(op.kind) ? op.angle.bind({}) : 0.0;
        return gateMatrix(op.kind, angle);
    };

    // Embed a 2x2 at tensor slot (0 = high bit) of a 4x4.
    auto embed1in2 = [](const CMatrix& u, int slot) {
        return slot == 0 ? kron(u, CMatrix::identity(2))
                         : kron(CMatrix::identity(2), u);
    };

    // Intra-block routing surcharge: the gmon couples a rectangular
    // grid, so a block occupies either a path or a 2x2 tile of it.
    // Each pair is priced at its cheaper embedding — local index i at
    // position i on the path, or at (i/2, i%2) on the tile — and pays
    // routeHopNs per hop beyond nearest-neighbour. On Figure 2's
    // 4-node clique exactly one diagonal interaction must be routed.
    auto route_hops = [&](int qa, int qb) {
        const int line_dist = qb - qa;
        const int tile_dist = std::abs(qa / 2 - qb / 2) +
                              std::abs(qa % 2 - qb % 2);
        return std::min(line_dist, tile_dist) - 1;
    };

    auto close_group = [&](int g) {
        if (g < 0 || !groups[g].openFlag)
            return;
        groups[g].openFlag = false;
        double t = twoQubitTimeNs(groups[g].m);
        if (t > 1e-9)
            t += params_.routeHopNs *
                 route_hops(groups[g].qa, groups[g].qb);
        items.push_back({{groups[g].qa, groups[g].qb}, t});
        if (group_of[groups[g].qa] == g)
            group_of[groups[g].qa] = -1;
        if (group_of[groups[g].qb] == g)
            group_of[groups[g].qb] = -1;
    };

    auto flush_pending = [&](int q) {
        if (!pending_nontrivial[q])
            return;
        items.push_back({{q}, singleQubitTimeNs(pending[q])});
        pending[q] = CMatrix::identity(2);
        pending_nontrivial[q] = false;
    };

    for (const GateOp& op : block.ops()) {
        if (op.arity() == 1) {
            const int q = op.q0;
            const int g = group_of[q];
            if (g >= 0) {
                const int slot = (groups[g].qa == q) ? 0 : 1;
                groups[g].m = embed1in2(op_matrix(op), slot) *
                              groups[g].m;
            } else {
                pending[q] = op_matrix(op) * pending[q];
                pending_nontrivial[q] = true;
            }
            continue;
        }

        const int a = op.q0;
        const int b = op.q1;
        const int qa = std::min(a, b);
        const int qb = std::max(a, b);
        int g = group_of[a];
        if (g >= 0 && g == group_of[b] && groups[g].qa == qa &&
            groups[g].qb == qb &&
            groups[g].twoQubitOps < params_.pairGroupCap) {
            // Same open pair with fusion headroom: accumulate.
        } else {
            close_group(group_of[a]);
            close_group(group_of[b]);
            PairGroup fresh;
            fresh.qa = qa;
            fresh.qb = qb;
            fresh.m = kron(pending[qa], pending[qb]);
            pending[qa] = CMatrix::identity(2);
            pending[qb] = CMatrix::identity(2);
            pending_nontrivial[qa] = false;
            pending_nontrivial[qb] = false;
            groups.push_back(fresh);
            g = static_cast<int>(groups.size()) - 1;
            group_of[a] = g;
            group_of[b] = g;
        }

        // Orient the gate matrix: op acts as (q0 control) but the
        // group stores qa (=min) as the high tensor slot.
        CMatrix gate = op_matrix(op);
        if (op.q0 != groups[g].qa) {
            // Conjugate by SWAP to flip the tensor order.
            const CMatrix sw = gateMatrix(GateKind::SWAP);
            gate = sw * gate * sw;
        }
        groups[g].m = gate * groups[g].m;
        ++groups[g].twoQubitOps;
    }

    for (auto& grp : groups)
        if (grp.openFlag)
            close_group(static_cast<int>(&grp - groups.data()));
    for (int q = 0; q < n; ++q)
        flush_pending(q);

    // ASAP schedule of the priced items (emission order is consistent
    // with per-qubit program order).
    std::vector<double> clock(n, 0.0);
    double makespan = 0.0;
    for (const CostItem& item : items) {
        double start = 0.0;
        for (int q : item.qubits)
            start = std::max(start, clock[q]);
        const double end = start + item.timeNs;
        for (int q : item.qubits)
            clock[q] = end;
        makespan = std::max(makespan, end);
    }

    // Saturate wide blocks at the optimal-control asymptote: any
    // N-qubit unitary is reachable within T_sat(N), so deep content
    // stops paying once it exceeds the characteristic time.
    if (n >= params_.satMinWidth)
        makespan = std::min(makespan, saturationNs(n));

    // GRAPE is never worse than concatenating the lookup-table pulses
    // for the same block (Section 5.2's strictly-better guarantee):
    // fall back to the gate-based critical path when the structural
    // estimate, routing included, exceeds it.
    makespan = std::min(makespan,
                        criticalPathNs(block, GateDurations::table1()));
    return makespan;
}

double
PulseTimeModel::circuitTimeNs(const Circuit& circuit, int max_width) const
{
    if (circuit.empty())
        return 0.0;
    const Blocking blocking = aggregateBlocks(circuit, max_width);
    std::vector<double> times;
    times.reserve(blocking.numBlocks());
    for (const CircuitBlock& block : blocking.blocks)
        times.push_back(blockTimeNs(block.asCircuit(circuit)));
    return blockCriticalPath(blocking, times);
}

} // namespace qpc
