/**
 * @file
 * GRAPE compilation-latency model.
 *
 * Predicts the wall-clock cost of running GRAPE, so the full-scale
 * latency comparisons (Figure 7, Section 8.4) can be regenerated
 * without the paper's 200k CPU-core-hours. One GRAPE iteration costs
 * time proportional to nSteps * d^3 (d = 2^width matrix algebra per
 * slice); a full compilation multiplies in the ADAM iteration count
 * and the binary-search probes of Section 5.3. Flexible partial
 * compilation's advantage enters through the tuned-vs-untuned
 * iteration counts, which the test suite cross-checks against the
 * real tuner on small blocks.
 */

#ifndef QPC_MODEL_LATENCYMODEL_H
#define QPC_MODEL_LATENCYMODEL_H

#include "transpile/blocking.h"

namespace qpc {

/** Calibration constants of the latency model. */
struct LatencyModelParams
{
    /**
     * Seconds per (time step x d^3) unit of one ADAM iteration.
     * Calibrated so a 4-qubit, ~50 ns block at 20 GSa/s costs minutes
     * per full compilation, matching Section 1's observations.
     */
    double secondsPerUnit = 1.0e-7;
    /** GRAPE sample period (ns) assumed by the latency accounting. */
    double dtNs = 0.05;
    /** ADAM iterations to 0.999 fidelity with default hyperparams. */
    int untunedIterations = 250;
    /** Iterations with pre-tuned learning rate / decay (Section 7.2). */
    int tunedIterations = 30;
    /** Binary-search range upper bound M for log2(M / 0.3) probes. */
    double searchRangeNs = 60.0;
    /** Binary-search resolution (0.3 ns per the paper). */
    double searchPrecisionNs = 0.3;
    /** Hyperparameter grid size evaluated during pre-compute. */
    int tuningGridSize = 10;
};

/** Wall-clock estimates for the compilation strategies. */
class GrapeLatencyModel
{
  public:
    explicit GrapeLatencyModel(LatencyModelParams params = {});

    const LatencyModelParams& params() const { return params_; }

    /** Binary-search probes needed at the configured precision. */
    int searchProbes() const;

    /** Seconds for one ADAM iteration on a width-qubit block. */
    double iterationSeconds(int width, double pulse_ns) const;

    /**
     * Seconds for a full (untuned, binary-searched) GRAPE compilation
     * of one block.
     */
    double fullGrapeSeconds(int width, double pulse_ns) const;

    /**
     * Seconds for one tuned GRAPE solve of one block (flexible
     * partial compilation's per-iteration runtime cost).
     */
    double tunedGrapeSeconds(int width, double pulse_ns) const;

    /**
     * Seconds of one-off pre-compute needed to tune one block's
     * hyperparameters (grid of short trial runs).
     */
    double tuningPrecomputeSeconds(int width, double pulse_ns) const;

  private:
    LatencyModelParams params_;
};

} // namespace qpc

#endif // QPC_MODEL_LATENCYMODEL_H
