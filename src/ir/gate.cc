#include "ir/gate.h"

#include <cmath>

#include "common/logging.h"
#include "linalg/su2.h"

namespace qpc {

int
gateArity(GateKind kind)
{
    switch (kind) {
      case GateKind::CX:
      case GateKind::CZ:
      case GateKind::SWAP:
      case GateKind::ISwap:
        return 2;
      default:
        return 1;
    }
}

bool
gateIsRotation(GateKind kind)
{
    return kind == GateKind::Rx || kind == GateKind::Ry ||
           kind == GateKind::Rz;
}

bool
sameRotationAxis(GateKind a, GateKind b)
{
    return gateIsRotation(a) && a == b;
}

bool
gateIsSelfInverse(GateKind kind)
{
    switch (kind) {
      case GateKind::X:
      case GateKind::Y:
      case GateKind::Z:
      case GateKind::H:
      case GateKind::CX:
      case GateKind::CZ:
      case GateKind::SWAP:
        return true;
      default:
        return false;
    }
}

std::string
gateName(GateKind kind)
{
    switch (kind) {
      case GateKind::I: return "id";
      case GateKind::X: return "x";
      case GateKind::Y: return "y";
      case GateKind::Z: return "z";
      case GateKind::H: return "h";
      case GateKind::S: return "s";
      case GateKind::Sdg: return "sdg";
      case GateKind::T: return "t";
      case GateKind::Tdg: return "tdg";
      case GateKind::Rx: return "rx";
      case GateKind::Ry: return "ry";
      case GateKind::Rz: return "rz";
      case GateKind::CX: return "cx";
      case GateKind::CZ: return "cz";
      case GateKind::SWAP: return "swap";
      case GateKind::ISwap: return "iswap";
    }
    panic("unknown GateKind");
}

namespace {

CMatrix
phaseGate(double phi)
{
    CMatrix m(2, 2);
    m(0, 0) = 1.0;
    m(1, 1) = std::polar(1.0, phi);
    return m;
}

} // namespace

CMatrix
gateMatrix(GateKind kind, double angle)
{
    const double pi = 3.14159265358979323846;
    switch (kind) {
      case GateKind::I:
        return CMatrix::identity(2);
      case GateKind::X:
        return pauliX();
      case GateKind::Y:
        return pauliY();
      case GateKind::Z:
        return pauliZ();
      case GateKind::H:
        return hMatrix();
      case GateKind::S:
        return phaseGate(pi / 2);
      case GateKind::Sdg:
        return phaseGate(-pi / 2);
      case GateKind::T:
        return phaseGate(pi / 4);
      case GateKind::Tdg:
        return phaseGate(-pi / 4);
      case GateKind::Rx:
        return rxMatrix(angle);
      case GateKind::Ry:
        return ryMatrix(angle);
      case GateKind::Rz:
        return rzMatrix(angle);
      case GateKind::CX: {
        CMatrix m(4, 4);
        m(0, 0) = 1;
        m(1, 1) = 1;
        m(2, 3) = 1;
        m(3, 2) = 1;
        return m;
      }
      case GateKind::CZ: {
        CMatrix m = CMatrix::identity(4);
        m(3, 3) = -1;
        return m;
      }
      case GateKind::SWAP: {
        CMatrix m(4, 4);
        m(0, 0) = 1;
        m(1, 2) = 1;
        m(2, 1) = 1;
        m(3, 3) = 1;
        return m;
      }
      case GateKind::ISwap: {
        CMatrix m(4, 4);
        m(0, 0) = 1;
        m(1, 2) = kImag;
        m(2, 1) = kImag;
        m(3, 3) = 1;
        return m;
      }
    }
    panic("unknown GateKind");
}

} // namespace qpc
