#include "ir/circuit.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "common/logging.h"

namespace qpc {

std::vector<int>
GateOp::qubits() const
{
    if (arity() == 1)
        return {q0};
    return {q0, q1};
}

std::string
GateOp::str() const
{
    std::ostringstream oss;
    oss << gateName(kind);
    if (gateIsRotation(kind))
        oss << "(" << angle.str() << ")";
    oss << " q" << q0;
    if (arity() == 2)
        oss << ", q" << q1;
    return oss.str();
}

Circuit::Circuit(int num_qubits) : numQubits_(num_qubits)
{
    fatalIf(num_qubits <= 0, "circuit width must be positive, got ",
            num_qubits);
}

void
Circuit::validate(const GateOp& op) const
{
    panicIf(op.q0 < 0 || op.q0 >= numQubits_, "op qubit ", op.q0,
            " outside circuit of width ", numQubits_);
    if (op.arity() == 2) {
        panicIf(op.q1 < 0 || op.q1 >= numQubits_, "op qubit ", op.q1,
                " outside circuit of width ", numQubits_);
        panicIf(op.q0 == op.q1, "two-qubit op with identical qubits q",
                op.q0);
    }
}

void
Circuit::add(GateOp op)
{
    if (op.arity() == 1)
        op.q1 = -1;
    validate(op);
    ops_.push_back(op);
}

void
Circuit::add1(GateKind kind, int q)
{
    GateOp op;
    op.kind = kind;
    op.q0 = q;
    add(op);
}

void
Circuit::add2(GateKind kind, int a, int b)
{
    GateOp op;
    op.kind = kind;
    op.q0 = a;
    op.q1 = b;
    add(op);
}

void
Circuit::addRot(GateKind kind, int q, ParamExpr angle)
{
    GateOp op;
    op.kind = kind;
    op.q0 = q;
    op.angle = angle;
    add(op);
}

int
Circuit::numParams() const
{
    int max_index = -1;
    for (const GateOp& op : ops_)
        max_index = std::max(max_index, op.paramIndex());
    return max_index + 1;
}

bool
Circuit::isParamFree() const
{
    for (const GateOp& op : ops_)
        if (op.paramIndex() >= 0)
            return false;
    return true;
}

std::vector<int>
Circuit::paramsUsed() const
{
    std::set<int> indices;
    for (const GateOp& op : ops_)
        if (op.paramIndex() >= 0)
            indices.insert(op.paramIndex());
    return {indices.begin(), indices.end()};
}

Circuit
Circuit::bind(const std::vector<double>& theta) const
{
    Circuit bound(numQubits_);
    for (const GateOp& op : ops_) {
        GateOp copy = op;
        if (gateIsRotation(op.kind))
            copy.angle = ParamExpr::constant(op.angle.bind(theta));
        bound.add(copy);
    }
    return bound;
}

void
Circuit::append(const Circuit& other)
{
    panicIf(other.numQubits_ != numQubits_,
            "appending circuit of width ", other.numQubits_,
            " to width ", numQubits_);
    for (const GateOp& op : other.ops_)
        add(op);
}

Circuit
Circuit::slice(int first, int last) const
{
    panicIf(first < 0 || last > size() || first > last,
            "bad slice [", first, ", ", last, ") of circuit with ",
            size(), " ops");
    Circuit out(numQubits_);
    for (int i = first; i < last; ++i)
        out.add(ops_[i]);
    return out;
}

int
Circuit::countTwoQubitOps() const
{
    int count = 0;
    for (const GateOp& op : ops_)
        if (op.arity() == 2)
            ++count;
    return count;
}

double
Circuit::parametrizedFraction() const
{
    if (ops_.empty())
        return 0.0;
    int symbolic = 0;
    for (const GateOp& op : ops_)
        if (op.paramIndex() >= 0)
            ++symbolic;
    return static_cast<double>(symbolic) / static_cast<double>(size());
}

std::string
Circuit::str() const
{
    std::ostringstream oss;
    oss << "circuit(" << numQubits_ << " qubits, " << size() << " ops)\n";
    for (const GateOp& op : ops_)
        oss << "  " << op.str() << "\n";
    return oss.str();
}

bool
isParamMonotone(const Circuit& circuit)
{
    int last = -1;
    for (const GateOp& op : circuit.ops()) {
        const int index = op.paramIndex();
        if (index < 0)
            continue;
        if (index < last)
            return false;
        last = index;
    }
    return true;
}

} // namespace qpc
