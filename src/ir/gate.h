/**
 * @file
 * Gate vocabulary of the compiler.
 *
 * The compilation basis follows the paper: {Rz, Rx, H, CX, SWAP} with
 * pulse durations from Table 1, plus the standard fixed gates needed to
 * express UCCSD and QAOA constructions before optimization (Pauli
 * gates, phase gates S/T, CZ, iSWAP for tests of ISA alignment).
 */

#ifndef QPC_IR_GATE_H
#define QPC_IR_GATE_H

#include <string>

#include "linalg/matrix.h"

namespace qpc {

/** Every gate kind the IR can carry. */
enum class GateKind {
    I,      ///< 1q identity (scheduling placeholder).
    X,      ///< Pauli X (= Rx(pi) up to phase).
    Y,      ///< Pauli Y.
    Z,      ///< Pauli Z (= Rz(pi) up to phase).
    H,      ///< Hadamard.
    S,      ///< sqrt(Z).
    Sdg,    ///< S dagger.
    T,      ///< fourth root of Z.
    Tdg,    ///< T dagger.
    Rx,     ///< exp(-i theta X / 2); angle-carrying.
    Ry,     ///< exp(-i theta Y / 2); angle-carrying.
    Rz,     ///< exp(-i theta Z / 2); angle-carrying.
    CX,     ///< controlled-NOT.
    CZ,     ///< controlled-Z.
    SWAP,   ///< qubit exchange.
    ISwap,  ///< exchange with i phase on swapped amplitudes.
};

/** Number of qubits the gate acts on (1 or 2). */
int gateArity(GateKind kind);

/** True for the angle-carrying rotations Rx / Ry / Rz. */
bool gateIsRotation(GateKind kind);

/** Rotation axis merge partner: the kind itself for Rx/Ry/Rz. */
bool sameRotationAxis(GateKind a, GateKind b);

/** True when the gate is its own inverse (X, Y, Z, H, CX, CZ, SWAP). */
bool gateIsSelfInverse(GateKind kind);

/** Lower-case mnemonic, e.g. "cx". */
std::string gateName(GateKind kind);

/**
 * Unitary matrix of the gate (2x2 or 4x4). The angle argument is only
 * consulted for Rx / Ry / Rz. Two-qubit matrices use the convention
 * q0 = high-order bit (first tensor factor), q1 = low-order bit.
 */
CMatrix gateMatrix(GateKind kind, double angle = 0.0);

} // namespace qpc

#endif // QPC_IR_GATE_H
