/**
 * @file
 * Quantum circuit intermediate representation.
 *
 * A Circuit is an ordered list of gate operations over a fixed qubit
 * count. Rotation angles are ParamExpr values, so a circuit remains
 * symbolic in the variational parameters theta_i until bind() attaches
 * concrete values — matching the paper's setting where every iteration
 * of VQE / QAOA re-binds the same template circuit.
 */

#ifndef QPC_IR_CIRCUIT_H
#define QPC_IR_CIRCUIT_H

#include <string>
#include <vector>

#include "ir/gate.h"
#include "ir/param.h"

namespace qpc {

/** One gate application inside a circuit. */
struct GateOp
{
    GateKind kind = GateKind::I;
    int q0 = 0;          ///< First (or only) qubit; control for CX.
    int q1 = -1;         ///< Second qubit for two-qubit gates.
    ParamExpr angle;     ///< Rotation angle; ignored for fixed gates.

    /** Number of qubits the op acts on. */
    int arity() const { return gateArity(kind); }

    /** True when the op acts on qubit q. */
    bool touches(int q) const { return q0 == q || q1 == q; }

    /** The op's qubits, in declaration order. */
    std::vector<int> qubits() const;

    /** Parameter index the angle depends on, or -1. */
    int paramIndex() const
    {
        return gateIsRotation(kind) ? angle.index : -1;
    }

    /** Mnemonic like "rz(0.5*t2) q3" for debugging. */
    std::string str() const;
};

/**
 * An ordered gate list over numQubits() qubits.
 *
 * Program order is execution order; the scheduler recovers parallelism
 * from qubit disjointness.
 */
class Circuit
{
  public:
    Circuit() = default;

    /** An empty circuit over a fixed number of qubits. */
    explicit Circuit(int num_qubits);

    int numQubits() const { return numQubits_; }
    const std::vector<GateOp>& ops() const { return ops_; }
    std::vector<GateOp>& mutableOps() { return ops_; }
    int size() const { return static_cast<int>(ops_.size()); }
    bool empty() const { return ops_.empty(); }

    /** Append a validated op. */
    void add(GateOp op);

    /** @name Builder shorthands
     *  @{ */
    void x(int q) { add1(GateKind::X, q); }
    void y(int q) { add1(GateKind::Y, q); }
    void z(int q) { add1(GateKind::Z, q); }
    void h(int q) { add1(GateKind::H, q); }
    void s(int q) { add1(GateKind::S, q); }
    void sdg(int q) { add1(GateKind::Sdg, q); }
    void t(int q) { add1(GateKind::T, q); }
    void tdg(int q) { add1(GateKind::Tdg, q); }
    void rx(int q, ParamExpr angle) { addRot(GateKind::Rx, q, angle); }
    void ry(int q, ParamExpr angle) { addRot(GateKind::Ry, q, angle); }
    void rz(int q, ParamExpr angle) { addRot(GateKind::Rz, q, angle); }
    void rx(int q, double angle) { rx(q, ParamExpr::constant(angle)); }
    void ry(int q, double angle) { ry(q, ParamExpr::constant(angle)); }
    void rz(int q, double angle) { rz(q, ParamExpr::constant(angle)); }
    void cx(int control, int target) { add2(GateKind::CX, control, target); }
    void cz(int a, int b) { add2(GateKind::CZ, a, b); }
    void swap(int a, int b) { add2(GateKind::SWAP, a, b); }
    void iswap(int a, int b) { add2(GateKind::ISwap, a, b); }
    /** @} */

    /** Number of distinct parameters: 1 + max referenced index. */
    int numParams() const;

    /** True when no op depends on any parameter. */
    bool isParamFree() const;

    /** Sorted unique parameter indices referenced by the circuit. */
    std::vector<int> paramsUsed() const;

    /** Copy with every angle bound against a parameter vector. */
    Circuit bind(const std::vector<double>& theta) const;

    /** Append another circuit's ops (must have the same width). */
    void append(const Circuit& other);

    /** Copy of ops [first, last) as a circuit of the same width. */
    Circuit slice(int first, int last) const;

    /** Total number of two-qubit ops. */
    int countTwoQubitOps() const;

    /** Fraction of ops that are parameter-dependent. */
    double parametrizedFraction() const;

    /** One op per line. */
    std::string str() const;

  private:
    void add1(GateKind kind, int q);
    void add2(GateKind kind, int a, int b);
    void addRot(GateKind kind, int q, ParamExpr angle);
    void validate(const GateOp& op) const;

    int numQubits_ = 0;
    std::vector<GateOp> ops_;
};

/**
 * Check parameter monotonicity (Section 7.1): scanning ops in program
 * order, the referenced parameter indices never decrease. Both the
 * UCCSD and QAOA constructions satisfy this by design.
 */
bool isParamMonotone(const Circuit& circuit);

} // namespace qpc

#endif // QPC_IR_CIRCUIT_H
