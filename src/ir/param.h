/**
 * @file
 * Symbolic rotation-angle expressions.
 *
 * Variational circuits carry angles of the form coeff * theta_i +
 * offset: circuit construction and optimization transform raw theta_i
 * references into -theta_i, theta_i / 2, and so on (Section 7.1 of the
 * paper). Tracking the dependence explicitly — instead of erasing it at
 * construction like a plain double would — is what lets the partial
 * compiler recover parameter monotonicity and slice circuits by their
 * single dependent parameter.
 */

#ifndef QPC_IR_PARAM_H
#define QPC_IR_PARAM_H

#include <optional>
#include <string>
#include <vector>

namespace qpc {

/**
 * A linear expression over at most one variational parameter:
 * coeff * theta[index] + offset, or a plain constant when index < 0.
 */
struct ParamExpr
{
    int index = -1;      ///< Parameter index, or -1 for a constant.
    double coeff = 0.0;  ///< Multiplier on theta[index].
    double offset = 0.0; ///< Additive constant term.

    /** A constant angle. */
    static ParamExpr constant(double value);

    /** coeff * theta[index] + offset. */
    static ParamExpr theta(int index, double coeff = 1.0,
                           double offset = 0.0);

    /** True when the expression references a parameter. */
    bool isSymbolic() const { return index >= 0; }

    /** Evaluate against a parameter vector (validated when symbolic). */
    double bind(const std::vector<double>& values) const;

    /** Expression with the offset shifted by delta. */
    ParamExpr plus(double delta) const;

    /** Expression scaled by a factor (both coeff and offset). */
    ParamExpr scaled(double factor) const;

    /** Negated expression. */
    ParamExpr negated() const;

    /** True when the expression is identically zero. */
    bool isZero(double tol = 1e-12) const;

    /** Human-readable form, e.g. "0.5*t3 + 1.571". */
    std::string str() const;
};

/**
 * Sum of two expressions when they stay within the one-parameter form:
 * both constant, same index, or one constant. Returns nullopt when the
 * expressions reference different parameters.
 */
std::optional<ParamExpr> tryAdd(const ParamExpr& a, const ParamExpr& b);

} // namespace qpc

#endif // QPC_IR_PARAM_H
