#include "ir/param.h"

#include <cmath>
#include <sstream>

#include "common/logging.h"

namespace qpc {

ParamExpr
ParamExpr::constant(double value)
{
    ParamExpr e;
    e.index = -1;
    e.coeff = 0.0;
    e.offset = value;
    return e;
}

ParamExpr
ParamExpr::theta(int index, double coeff, double offset)
{
    panicIf(index < 0, "ParamExpr::theta needs a non-negative index");
    ParamExpr e;
    e.index = index;
    e.coeff = coeff;
    e.offset = offset;
    return e;
}

double
ParamExpr::bind(const std::vector<double>& values) const
{
    if (index < 0)
        return offset;
    fatalIf(index >= static_cast<int>(values.size()),
            "parameter vector of size ", values.size(),
            " cannot bind theta_", index);
    return coeff * values[index] + offset;
}

ParamExpr
ParamExpr::plus(double delta) const
{
    ParamExpr e = *this;
    e.offset += delta;
    return e;
}

ParamExpr
ParamExpr::scaled(double factor) const
{
    ParamExpr e = *this;
    e.coeff *= factor;
    e.offset *= factor;
    if (std::abs(e.coeff) < 1e-15)
        e.index = -1;
    return e;
}

ParamExpr
ParamExpr::negated() const
{
    return scaled(-1.0);
}

bool
ParamExpr::isZero(double tol) const
{
    return std::abs(offset) <= tol &&
           (index < 0 || std::abs(coeff) <= tol);
}

std::string
ParamExpr::str() const
{
    std::ostringstream oss;
    if (index < 0) {
        oss << offset;
        return oss.str();
    }
    oss << coeff << "*t" << index;
    if (offset != 0.0)
        oss << (offset > 0 ? " + " : " - ") << std::abs(offset);
    return oss.str();
}

std::optional<ParamExpr>
tryAdd(const ParamExpr& a, const ParamExpr& b)
{
    if (!a.isSymbolic() && !b.isSymbolic())
        return ParamExpr::constant(a.offset + b.offset);
    if (!a.isSymbolic())
        return b.plus(a.offset);
    if (!b.isSymbolic())
        return a.plus(b.offset);
    if (a.index != b.index)
        return std::nullopt;

    ParamExpr e;
    e.index = a.index;
    e.coeff = a.coeff + b.coeff;
    e.offset = a.offset + b.offset;
    if (std::abs(e.coeff) < 1e-15) {
        e.index = -1;
        e.coeff = 0.0;
    }
    return e;
}

} // namespace qpc
