/**
 * @file
 * Lock-light, merge-able log-bucketed latency histogram.
 *
 * The serve path needs percentiles, not means: a hybrid optimizer
 * loop lives or dies by its tail latency (every iteration blocks on
 * the slowest serve), so the server records full latency
 * distributions everywhere a mean used to do. The recording side must
 * be cheap enough for the hot path — one relaxed atomic increment
 * plus a handful of CAS-free adds — and snapshots must merge across
 * threads, tenants, and processes without losing counts.
 *
 * Bucketing is HDR-style log-linear over nanosecond values:
 *
 *  - values below 2^kSubBits (32 ns) get one bucket each, so small
 *    values are represented *exactly*;
 *  - each higher octave [2^k, 2^(k+1)) is split into kSubBuckets/2
 *    linear sub-buckets, bounding the relative quantization error of
 *    any recorded value by 1/16 ≈ 6.3% (≤ 3.1% at bucket midpoint);
 *  - kOctaves octaves cover everything up to ~2^40 ns (~18 minutes);
 *    larger values clamp into the final (overflow) bucket.
 *
 * The whole fixed bucket array is ~4.7 KB of atomics per histogram,
 * cheap enough that every layer of the serve path owns its own.
 */

#ifndef QPC_TELEMETRY_HISTOGRAM_H
#define QPC_TELEMETRY_HISTOGRAM_H

#include <atomic>
#include <cstdint>
#include <utility>
#include <vector>

namespace qpc {

/**
 * Immutable copyable view of a histogram's state: sparse nonzero
 * buckets plus count/sum/min/max. This is the unit that travels — it
 * merges with other snapshots, encodes onto the wire, and answers
 * percentile queries.
 */
struct HistogramSnapshot
{
    /** Total number of recorded values. */
    std::uint64_t count = 0;
    /** Sum of all recorded values, in nanoseconds. */
    std::uint64_t sumNs = 0;
    /** Smallest recorded value (0 when count == 0). */
    std::uint64_t minNs = 0;
    /** Largest recorded value (0 when count == 0). */
    std::uint64_t maxNs = 0;
    /**
     * Nonzero buckets as (bucketIndex, count) pairs, sorted by index.
     * Indices address LatencyHistogram's fixed bucket array.
     */
    std::vector<std::pair<std::uint32_t, std::uint64_t>> buckets;

    /**
     * Value at or below which `p` percent of recordings fall,
     * linearly interpolated inside the winning bucket and clamped to
     * [minNs, maxNs]. `p` is in [0, 100]; returns 0 on an empty
     * snapshot. percentileNs(100) == maxNs exactly.
     */
    double percentileNs(double p) const;

    /** Arithmetic mean in nanoseconds (0 when empty). */
    double meanNs() const;

    /** Fold another snapshot's counts into this one. */
    void merge(const HistogramSnapshot& other);

    bool operator==(const HistogramSnapshot& o) const
    {
        return count == o.count && sumNs == o.sumNs &&
               minNs == o.minNs && maxNs == o.maxNs &&
               buckets == o.buckets;
    }
};

/**
 * The concurrent recording side: a fixed array of relaxed atomic
 * bucket counters. record() is wait-free apart from the min/max CAS
 * loops (which converge almost immediately in practice). Snapshots
 * taken during concurrent recording are internally consistent enough
 * for monitoring: bucket counts never tear, though count/sum/buckets
 * may disagree by in-flight recordings.
 */
class LatencyHistogram
{
  public:
    /** log2 of the number of exact low buckets. */
    static constexpr int kSubBits = 5;
    /** Values below this are recorded exactly (one bucket each). */
    static constexpr int kSubBuckets = 1 << kSubBits;
    /** Linear sub-buckets per octave above the exact range. */
    static constexpr int kHalfSub = kSubBuckets / 2;
    /** Octaves above the exact range; covers up to ~2^40 ns. */
    static constexpr int kOctaves = 36;
    /** Total fixed bucket count (the last bucket absorbs overflow). */
    static constexpr int kNumBuckets =
        kSubBuckets + (kOctaves - 1) * kHalfSub;

    LatencyHistogram();

    LatencyHistogram(const LatencyHistogram&) = delete;
    LatencyHistogram& operator=(const LatencyHistogram&) = delete;

    /** Record one latency observation, in nanoseconds. */
    void record(std::uint64_t ns);

    /** Total number of recorded values. */
    std::uint64_t count() const
    {
        return count_.load(std::memory_order_relaxed);
    }

    /** Copy the current state into a mergeable snapshot. */
    HistogramSnapshot snapshot() const;

    /** Reset all buckets and stats to empty. Not hot-path safe. */
    void reset();

    /** Bucket index a value lands in (overflow clamps to the last). */
    static int bucketIndex(std::uint64_t ns);
    /** Inclusive lower bound of a bucket, in nanoseconds. */
    static std::uint64_t bucketLowerNs(int index);
    /** Exclusive upper bound of a bucket, in nanoseconds. */
    static std::uint64_t bucketUpperNs(int index);

  private:
    std::atomic<std::uint64_t> counts_[kNumBuckets];
    std::atomic<std::uint64_t> count_;
    std::atomic<std::uint64_t> sumNs_;
    std::atomic<std::uint64_t> minNs_;
    std::atomic<std::uint64_t> maxNs_;
};

} // namespace qpc

#endif // QPC_TELEMETRY_HISTOGRAM_H
