#include "telemetry/metrics.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "common/logging.h"

namespace qpc {

namespace {

/** Format a double with enough precision to round-trip visually. */
std::string
fmtValue(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
}

bool
validBaseName(const std::string& base)
{
    if (base.empty())
        return false;
    for (std::size_t i = 0; i < base.size(); ++i) {
        const char c = base[i];
        const bool alpha = (c >= 'a' && c <= 'z') ||
                           (c >= 'A' && c <= 'Z') || c == '_' ||
                           c == ':';
        const bool digit = c >= '0' && c <= '9';
        if (!(alpha || (digit && i > 0)))
            return false;
    }
    return true;
}

/**
 * Split "base{labels}" into its parts; labels comes back *without*
 * braces and empty when absent. Returns false on a malformed name.
 */
bool
splitName(const std::string& name, std::string& base,
          std::string& labels)
{
    const auto brace = name.find('{');
    if (brace == std::string::npos) {
        base = name;
        labels.clear();
        return validBaseName(base) &&
               name.find('}') == std::string::npos;
    }
    if (name.back() != '}' || brace + 1 >= name.size())
        return false;
    base = name.substr(0, brace);
    labels = name.substr(brace + 1, name.size() - brace - 2);
    return validBaseName(base) && !labels.empty() &&
           labels.find('{') == std::string::npos &&
           labels.find('}') == std::string::npos &&
           labels.find('\n') == std::string::npos;
}

void
checkName(const std::string& name)
{
    std::string base, labels;
    panicIf(!splitName(name, base, labels),
            "metrics: malformed metric name: ", name);
}

/** "# TYPE base t" — emitted once per metric family. */
void
emitTypeHeader(std::string& out, std::string& lastBase,
               const std::string& base, const char* type)
{
    if (base == lastBase)
        return;
    lastBase = base;
    out += "# TYPE ";
    out += base;
    out += ' ';
    out += type;
    out += '\n';
}

/** Rebuild "base{labels,extra}" with optional label fragments. */
std::string
sampleName(const std::string& base, const std::string& suffix,
           const std::string& labels, const std::string& extra)
{
    std::string out = base + suffix;
    if (labels.empty() && extra.empty())
        return out;
    out += '{';
    out += labels;
    if (!labels.empty() && !extra.empty())
        out += ',';
    out += extra;
    out += '}';
    return out;
}

} // namespace

std::string
promLabelEscape(const std::string& raw)
{
    std::string out;
    out.reserve(raw.size());
    for (const char c : raw) {
        switch (c) {
          case '\\':
            out += "\\\\";
            break;
          case '"':
            out += "\\\"";
            break;
          case '\n':
            out += "\\n";
            break;
          // The registry keeps labels inside the metric-name string,
          // so a brace in a label value (legal Prometheus, but
          // unparseable there) is neutralized rather than letting a
          // hostile tenant name panic the name validator.
          case '{':
          case '}':
            out += '_';
            break;
          default:
            out += c;
        }
    }
    return out;
}

void
MetricsSnapshot::sortByName()
{
    const auto byName = [](const auto& a, const auto& b) {
        return a.name < b.name;
    };
    std::sort(counters.begin(), counters.end(), byName);
    std::sort(gauges.begin(), gauges.end(), byName);
    std::sort(histograms.begin(), histograms.end(), byName);
}

void
MetricsSnapshot::merge(const MetricsSnapshot& other)
{
    for (const auto& c : other.counters) {
        auto it = std::find_if(counters.begin(), counters.end(),
                               [&](const CounterSample& s) {
                                   return s.name == c.name;
                               });
        if (it == counters.end())
            counters.push_back(c);
        else
            it->value += c.value;
    }
    for (const auto& g : other.gauges) {
        auto it = std::find_if(gauges.begin(), gauges.end(),
                               [&](const GaugeSample& s) {
                                   return s.name == g.name;
                               });
        if (it == gauges.end())
            gauges.push_back(g);
        else
            it->value = g.value;
    }
    for (const auto& h : other.histograms) {
        auto it = std::find_if(histograms.begin(), histograms.end(),
                               [&](const HistogramSample& s) {
                                   return s.name == h.name;
                               });
        if (it == histograms.end())
            histograms.push_back(h);
        else
            it->histogram.merge(h.histogram);
    }
}

std::string
renderPrometheus(const MetricsSnapshot& snap)
{
    MetricsSnapshot sorted = snap;
    sorted.sortByName();
    std::string out;
    std::string lastBase;

    for (const auto& c : sorted.counters) {
        std::string base, labels;
        if (!splitName(c.name, base, labels))
            continue;
        emitTypeHeader(out, lastBase, base, "counter");
        out += sampleName(base, "", labels, "");
        out += ' ';
        out += std::to_string(c.value);
        out += '\n';
    }
    for (const auto& g : sorted.gauges) {
        std::string base, labels;
        if (!splitName(g.name, base, labels))
            continue;
        emitTypeHeader(out, lastBase, base, "gauge");
        out += sampleName(base, "", labels, "");
        out += ' ';
        out += fmtValue(g.value);
        out += '\n';
    }
    for (const auto& h : sorted.histograms) {
        std::string base, labels;
        if (!splitName(h.name, base, labels))
            continue;
        emitTypeHeader(out, lastBase, base, "histogram");
        std::uint64_t cum = 0;
        for (const auto& [index, count] : h.histogram.buckets) {
            cum += count;
            // The overflow bucket is covered by the +Inf line below.
            if (static_cast<int>(index) ==
                LatencyHistogram::kNumBuckets - 1)
                continue;
            const double upperUs =
                static_cast<double>(
                    LatencyHistogram::bucketUpperNs(
                        static_cast<int>(index))) /
                1e3;
            out += sampleName(base, "_bucket", labels,
                              "le=\"" + fmtValue(upperUs) + "\"");
            out += ' ';
            out += std::to_string(cum);
            out += '\n';
        }
        out += sampleName(base, "_bucket", labels, "le=\"+Inf\"");
        out += ' ';
        out += std::to_string(h.histogram.count);
        out += '\n';
        out += sampleName(base, "_sum", labels, "");
        out += ' ';
        out += fmtValue(static_cast<double>(h.histogram.sumNs) /
                        1e3);
        out += '\n';
        out += sampleName(base, "_count", labels, "");
        out += ' ';
        out += std::to_string(h.histogram.count);
        out += '\n';
    }
    return out;
}

void
MetricRegistry::Gauge::set(double v)
{
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v), "double width");
    std::memcpy(&bits, &v, sizeof(bits));
    bits_.store(bits, std::memory_order_relaxed);
}

double
MetricRegistry::Gauge::value() const
{
    const std::uint64_t bits =
        bits_.load(std::memory_order_relaxed);
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

MetricRegistry::Counter&
MetricRegistry::counter(const std::string& name)
{
    checkName(name);
    std::lock_guard<std::mutex> lock(mu_);
    auto& slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

MetricRegistry::Gauge&
MetricRegistry::gauge(const std::string& name)
{
    checkName(name);
    std::lock_guard<std::mutex> lock(mu_);
    auto& slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

LatencyHistogram&
MetricRegistry::histogram(const std::string& name)
{
    checkName(name);
    std::lock_guard<std::mutex> lock(mu_);
    auto& slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<LatencyHistogram>();
    return *slot;
}

MetricsSnapshot
MetricRegistry::collect() const
{
    MetricsSnapshot snap;
    std::lock_guard<std::mutex> lock(mu_);
    snap.counters.reserve(counters_.size());
    for (const auto& [name, c] : counters_)
        snap.counters.push_back({name, c->value()});
    snap.gauges.reserve(gauges_.size());
    for (const auto& [name, g] : gauges_)
        snap.gauges.push_back({name, g->value()});
    snap.histograms.reserve(histograms_.size());
    for (const auto& [name, h] : histograms_)
        snap.histograms.push_back({name, h->snapshot()});
    return snap;
}

} // namespace qpc
