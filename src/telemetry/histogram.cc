#include "telemetry/histogram.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace qpc {

namespace {

/** Position of the highest set bit (bit_width - 1); 0 for v == 0. */
int
highBit(std::uint64_t v)
{
    int bit = 0;
    while (v >>= 1)
        ++bit;
    return bit;
}

} // namespace

LatencyHistogram::LatencyHistogram()
{
    for (auto& c : counts_)
        c.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sumNs_.store(0, std::memory_order_relaxed);
    minNs_.store(std::numeric_limits<std::uint64_t>::max(),
                 std::memory_order_relaxed);
    maxNs_.store(0, std::memory_order_relaxed);
}

int
LatencyHistogram::bucketIndex(std::uint64_t ns)
{
    if (ns < static_cast<std::uint64_t>(kSubBuckets))
        return static_cast<int>(ns);
    // Octave o >= 1 holds [2^(kSubBits + o - 1) * 2, ...): the value's
    // top bit is at kSubBits + o - 1 + ... — concretely, octave
    // o = highBit(ns) - kSubBits + 1, and within the octave the next
    // log2(kHalfSub) bits below the top bit pick the linear sub-bucket.
    const int top = highBit(ns);
    const int octave = top - kSubBits + 1;
    if (octave >= kOctaves)
        return kNumBuckets - 1;
    const int sub = static_cast<int>((ns >> (top - 4)) &
                                     (kHalfSub - 1));
    return kSubBuckets + (octave - 1) * kHalfSub + sub;
}

std::uint64_t
LatencyHistogram::bucketLowerNs(int index)
{
    panicIf(index < 0 || index >= kNumBuckets,
            "histogram: bucket index out of range: ", index);
    if (index < kSubBuckets)
        return static_cast<std::uint64_t>(index);
    const int rel = index - kSubBuckets;
    const int octave = rel / kHalfSub + 1;
    const int sub = rel % kHalfSub;
    // Octave o spans [2^(kSubBits+o-1)*2, 2^(kSubBits+o)*2): lower
    // bound is (kHalfSub + sub) << (octave + kSubBits - 4 - 1 + 1).
    const int shift = octave;
    return static_cast<std::uint64_t>(kHalfSub + sub) << shift;
}

std::uint64_t
LatencyHistogram::bucketUpperNs(int index)
{
    if (index == kNumBuckets - 1)
        return std::numeric_limits<std::uint64_t>::max();
    return bucketLowerNs(index + 1);
}

void
LatencyHistogram::record(std::uint64_t ns)
{
    counts_[bucketIndex(ns)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sumNs_.fetch_add(ns, std::memory_order_relaxed);
    std::uint64_t cur = minNs_.load(std::memory_order_relaxed);
    while (ns < cur &&
           !minNs_.compare_exchange_weak(cur, ns,
                                         std::memory_order_relaxed)) {
    }
    cur = maxNs_.load(std::memory_order_relaxed);
    while (ns > cur &&
           !maxNs_.compare_exchange_weak(cur, ns,
                                         std::memory_order_relaxed)) {
    }
}

HistogramSnapshot
LatencyHistogram::snapshot() const
{
    HistogramSnapshot snap;
    snap.count = count_.load(std::memory_order_relaxed);
    snap.sumNs = sumNs_.load(std::memory_order_relaxed);
    const std::uint64_t mn = minNs_.load(std::memory_order_relaxed);
    snap.minNs =
        mn == std::numeric_limits<std::uint64_t>::max() ? 0 : mn;
    snap.maxNs = maxNs_.load(std::memory_order_relaxed);
    for (int i = 0; i < kNumBuckets; ++i) {
        const std::uint64_t c =
            counts_[i].load(std::memory_order_relaxed);
        if (c != 0)
            snap.buckets.emplace_back(static_cast<std::uint32_t>(i),
                                      c);
    }
    return snap;
}

void
LatencyHistogram::reset()
{
    for (auto& c : counts_)
        c.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sumNs_.store(0, std::memory_order_relaxed);
    minNs_.store(std::numeric_limits<std::uint64_t>::max(),
                 std::memory_order_relaxed);
    maxNs_.store(0, std::memory_order_relaxed);
}

double
HistogramSnapshot::percentileNs(double p) const
{
    if (count == 0)
        return 0.0;
    p = std::min(100.0, std::max(0.0, p));
    // Rank of the target observation, 1-based.
    const double exact = p / 100.0 * static_cast<double>(count);
    const std::uint64_t rank = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(std::ceil(exact)));
    std::uint64_t seen = 0;
    for (const auto& [index, c] : buckets) {
        if (seen + c < rank) {
            seen += c;
            continue;
        }
        const double lower = static_cast<double>(
            LatencyHistogram::bucketLowerNs(
                static_cast<int>(index)));
        // The overflow bucket has no meaningful upper edge; report
        // the recorded max instead of interpolating toward 2^64.
        double upper;
        if (static_cast<int>(index) ==
            LatencyHistogram::kNumBuckets - 1) {
            upper = static_cast<double>(maxNs);
        } else {
            upper = static_cast<double>(
                LatencyHistogram::bucketUpperNs(
                    static_cast<int>(index)));
        }
        // Interpolate by rank position within the bucket, then clamp
        // into the recorded range so p0 -> minNs and p100 -> maxNs.
        const double frac =
            (static_cast<double>(rank - seen) - 0.5) /
            static_cast<double>(c);
        double value = lower + (upper - lower) * frac;
        value = std::max(value, static_cast<double>(minNs));
        value = std::min(value, static_cast<double>(maxNs));
        if (p >= 100.0)
            value = static_cast<double>(maxNs);
        return value;
    }
    return static_cast<double>(maxNs);
}

double
HistogramSnapshot::meanNs() const
{
    if (count == 0)
        return 0.0;
    return static_cast<double>(sumNs) / static_cast<double>(count);
}

void
HistogramSnapshot::merge(const HistogramSnapshot& other)
{
    if (other.count == 0)
        return;
    if (count == 0) {
        *this = other;
        return;
    }
    count += other.count;
    sumNs += other.sumNs;
    minNs = std::min(minNs, other.minNs);
    maxNs = std::max(maxNs, other.maxNs);
    std::vector<std::pair<std::uint32_t, std::uint64_t>> merged;
    merged.reserve(buckets.size() + other.buckets.size());
    std::size_t i = 0, j = 0;
    while (i < buckets.size() || j < other.buckets.size()) {
        if (j == other.buckets.size() ||
            (i < buckets.size() &&
             buckets[i].first < other.buckets[j].first)) {
            merged.push_back(buckets[i++]);
        } else if (i == buckets.size() ||
                   other.buckets[j].first < buckets[i].first) {
            merged.push_back(other.buckets[j++]);
        } else {
            merged.emplace_back(buckets[i].first,
                                buckets[i].second +
                                    other.buckets[j].second);
            ++i;
            ++j;
        }
    }
    buckets = std::move(merged);
}

} // namespace qpc
