/**
 * @file
 * Serve-path trace spans: scoped RAII timers with parent IDs,
 * recorded into per-thread ring buffers and dumpable as
 * Chrome/Perfetto trace-event JSON.
 *
 * Two consumers share the span machinery:
 *
 *  - the global trace recorder (off by default; `qpc_serverd
 *    --trace-out=FILE` turns it on) keeps every span in per-thread
 *    rings and serializes them as trace-event JSON for
 *    chrome://tracing / ui.perfetto.dev;
 *  - a thread-local *phase capture* (see ScopedPhaseCapture) sums
 *    span durations by name within one request, independent of the
 *    global switch — it powers the slow-serve structured log line.
 *
 * Parent chaining crosses the ThreadPool: submit() snapshots the
 * submitting thread's current span id, the worker records the
 * queue-wait interval against it, and runs the job under
 * ScopedTraceParent so synthesis / disk-I/O spans nest beneath the
 * serve (or prewarm) span that caused them.
 *
 * When tracing is disabled and no phase capture is installed, a
 * TraceSpan costs two thread-local loads — cheap enough to leave in
 * the hot path permanently.
 */

#ifndef QPC_TELEMETRY_TRACE_H
#define QPC_TELEMETRY_TRACE_H

#include <cstdint>
#include <string>
#include <vector>

namespace qpc {

/** Monotonic nanoseconds since the process trace epoch. */
std::uint64_t traceNowNs();

/** Is the global trace recorder collecting spans? */
bool traceEnabled();

/** Flip the global recorder; enabling does not clear old events. */
void setTraceEnabled(bool on);

/** Drop every recorded event (all threads). */
void clearTrace();

/**
 * The span id the current thread would hand to a child span, or 0
 * at top level. ThreadPool::submit() snapshots this to chain work
 * executed on another thread back to its originating span.
 */
std::uint64_t currentTraceParent();

/**
 * Record a completed interval directly, without a live TraceSpan —
 * used for retroactive spans like queue-wait, whose start (enqueue)
 * happened on a different thread than its end (dequeue).
 */
void recordSpanEvent(const char* name, std::uint64_t startNs,
                     std::uint64_t endNs, std::uint64_t parent);

/** Serialize all recorded events as Chrome trace-event JSON. */
std::string traceJson();

/** Write traceJson() to a file; warns and returns false on error. */
bool dumpTraceJson(const std::string& path);

/**
 * Per-request accumulation of span durations by name. Fed by
 * TraceSpan destructors on the thread that installed it (via
 * ScopedPhaseCapture), regardless of the global trace switch.
 */
class PhaseBreakdown
{
  public:
    struct Phase
    {
        const char* name;
        std::uint64_t ns = 0;
        std::uint64_t count = 0;
    };

    void add(const char* name, std::uint64_t ns);

    const std::vector<Phase>& phases() const { return phases_; }

    /** Total ns attributed to a named phase (0 if never seen). */
    std::uint64_t totalNsFor(const char* name) const;

    /**
     * One-line rendering for structured logs:
     * "cache-probe=12.3us x2 synthesis-wait=840.0us x1".
     */
    std::string summary() const;

  private:
    std::vector<Phase> phases_;
};

/**
 * Install a PhaseBreakdown as the current thread's span collector
 * for the lifetime of this object (nests; the previous collector is
 * restored on destruction). Spans *opened* while installed report
 * their duration into breakdown() when they close.
 */
class ScopedPhaseCapture
{
  public:
    ScopedPhaseCapture();
    ~ScopedPhaseCapture();

    ScopedPhaseCapture(const ScopedPhaseCapture&) = delete;
    ScopedPhaseCapture& operator=(const ScopedPhaseCapture&) = delete;

    const PhaseBreakdown& breakdown() const { return breakdown_; }

  private:
    PhaseBreakdown breakdown_;
    PhaseBreakdown* prev_;
};

/**
 * Adopt a parent span id on the current thread (workers use this so
 * spans opened inside a pool job nest under the submitting span).
 * Restores the previous parent on destruction.
 */
class ScopedTraceParent
{
  public:
    explicit ScopedTraceParent(std::uint64_t parent);
    ~ScopedTraceParent();

    ScopedTraceParent(const ScopedTraceParent&) = delete;
    ScopedTraceParent& operator=(const ScopedTraceParent&) = delete;

  private:
    std::uint64_t prev_;
};

/**
 * RAII timed span. `name` must outlive the recorder (pass a string
 * literal). Records into the global trace when enabled, and into the
 * installed phase capture (if any) always.
 */
class TraceSpan
{
  public:
    explicit TraceSpan(const char* name);
    ~TraceSpan();

    TraceSpan(const TraceSpan&) = delete;
    TraceSpan& operator=(const TraceSpan&) = delete;

    /**
     * Attach a key/value argument shown in the trace viewer (at most
     * two; extras are dropped). No-op when not globally tracing.
     */
    void arg(const char* key, std::string value);

    /** This span's id (0 when not globally tracing). */
    std::uint64_t id() const { return id_; }

    /** True when the global recorder is collecting this span —
     * callers use it to skip building argument strings. */
    bool tracing() const { return tracing_; }

  private:
    const char* name_;
    std::uint64_t id_ = 0;
    std::uint64_t parent_ = 0;
    std::uint64_t startNs_ = 0;
    const char* argKey_[2] = {nullptr, nullptr};
    std::string argVal_[2];
    PhaseBreakdown* phases_ = nullptr;
    bool tracing_ = false;
};

} // namespace qpc

#endif // QPC_TELEMETRY_TRACE_H
