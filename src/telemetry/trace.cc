#include "telemetry/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>

#include "common/logging.h"

namespace qpc {

namespace {

/** One finished span, as stored in a thread's ring. */
struct TraceEvent
{
    const char* name;
    std::uint64_t id;
    std::uint64_t parent;
    std::uint64_t startNs;
    std::uint64_t durNs;
    const char* argKey[2];
    std::string argVal[2];
};

/**
 * Fixed-capacity overwrite-oldest event buffer. One per recording
 * thread; the ring's own mutex only contends with trace dumps, never
 * with other recording threads.
 */
struct ThreadRing
{
    static constexpr std::size_t kCapacity = 16384;

    std::mutex mu;
    std::vector<TraceEvent> events;
    std::size_t next = 0;
    bool wrapped = false;
    int tid = 0;

    void
    push(TraceEvent ev)
    {
        std::lock_guard<std::mutex> lock(mu);
        if (events.size() < kCapacity) {
            events.push_back(std::move(ev));
        } else {
            events[next] = std::move(ev);
            wrapped = true;
        }
        next = (next + 1) % kCapacity;
    }

    void
    clear()
    {
        std::lock_guard<std::mutex> lock(mu);
        events.clear();
        next = 0;
        wrapped = false;
    }
};

struct Recorder
{
    std::atomic<bool> enabled{false};
    std::atomic<std::uint64_t> nextSpanId{1};
    std::atomic<int> nextTid{1};
    std::mutex ringsMu;
    std::vector<std::shared_ptr<ThreadRing>> rings;
};

Recorder&
recorder()
{
    // Leaked on purpose: worker threads may record during static
    // destruction of other objects.
    static Recorder* r = new Recorder();
    return *r;
}

struct TlState
{
    std::shared_ptr<ThreadRing> ring;
    std::uint64_t currentParent = 0;
    PhaseBreakdown* collector = nullptr;
};

TlState&
tlState()
{
    thread_local TlState state;
    return state;
}

ThreadRing&
tlRing()
{
    TlState& tl = tlState();
    if (!tl.ring) {
        tl.ring = std::make_shared<ThreadRing>();
        Recorder& r = recorder();
        tl.ring->tid =
            r.nextTid.fetch_add(1, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(r.ringsMu);
        r.rings.push_back(tl.ring);
    }
    return *tl.ring;
}

std::uint64_t
traceEpoch()
{
    static const auto epoch = std::chrono::steady_clock::now();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch)
            .count());
}

/** Minimal JSON string escaping for span argument values. */
void
appendJsonEscaped(std::string& out, const std::string& raw)
{
    for (const char c : raw) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c) & 0xff);
                out += buf;
            } else {
                out += c;
            }
        }
    }
}

} // namespace

std::uint64_t
traceNowNs()
{
    return traceEpoch();
}

bool
traceEnabled()
{
    return recorder().enabled.load(std::memory_order_relaxed);
}

void
setTraceEnabled(bool on)
{
    // Touch the epoch before the first span so timestamps are
    // relative to (roughly) trace start, not racing its init.
    traceEpoch();
    recorder().enabled.store(on, std::memory_order_relaxed);
}

void
clearTrace()
{
    Recorder& r = recorder();
    std::lock_guard<std::mutex> lock(r.ringsMu);
    for (const auto& ring : r.rings)
        ring->clear();
}

std::uint64_t
currentTraceParent()
{
    return tlState().currentParent;
}

void
recordSpanEvent(const char* name, std::uint64_t startNs,
                std::uint64_t endNs, std::uint64_t parent)
{
    if (!traceEnabled())
        return;
    TraceEvent ev;
    ev.name = name;
    ev.id =
        recorder().nextSpanId.fetch_add(1, std::memory_order_relaxed);
    ev.parent = parent;
    ev.startNs = startNs;
    ev.durNs = endNs > startNs ? endNs - startNs : 0;
    ev.argKey[0] = ev.argKey[1] = nullptr;
    tlRing().push(std::move(ev));
}

TraceSpan::TraceSpan(const char* name)
    : name_(name)
{
    TlState& tl = tlState();
    phases_ = tl.collector;
    tracing_ = traceEnabled();
    if (!tracing_ && phases_ == nullptr)
        return;
    startNs_ = traceNowNs();
    if (tracing_) {
        id_ = recorder().nextSpanId.fetch_add(
            1, std::memory_order_relaxed);
        parent_ = tl.currentParent;
        tl.currentParent = id_;
    }
}

TraceSpan::~TraceSpan()
{
    if (!tracing_ && phases_ == nullptr)
        return;
    const std::uint64_t end = traceNowNs();
    const std::uint64_t dur =
        end > startNs_ ? end - startNs_ : 0;
    if (phases_ != nullptr)
        phases_->add(name_, dur);
    if (tracing_) {
        TlState& tl = tlState();
        tl.currentParent = parent_;
        TraceEvent ev;
        ev.name = name_;
        ev.id = id_;
        ev.parent = parent_;
        ev.startNs = startNs_;
        ev.durNs = dur;
        ev.argKey[0] = argKey_[0];
        ev.argKey[1] = argKey_[1];
        ev.argVal[0] = std::move(argVal_[0]);
        ev.argVal[1] = std::move(argVal_[1]);
        tlRing().push(std::move(ev));
    }
}

void
TraceSpan::arg(const char* key, std::string value)
{
    if (!tracing_)
        return;
    for (int i = 0; i < 2; ++i) {
        if (argKey_[i] == nullptr) {
            argKey_[i] = key;
            argVal_[i] = std::move(value);
            return;
        }
    }
}

ScopedTraceParent::ScopedTraceParent(std::uint64_t parent)
    : prev_(tlState().currentParent)
{
    tlState().currentParent = parent;
}

ScopedTraceParent::~ScopedTraceParent()
{
    tlState().currentParent = prev_;
}

ScopedPhaseCapture::ScopedPhaseCapture()
    : prev_(tlState().collector)
{
    tlState().collector = &breakdown_;
}

ScopedPhaseCapture::~ScopedPhaseCapture()
{
    tlState().collector = prev_;
}

void
PhaseBreakdown::add(const char* name, std::uint64_t ns)
{
    for (auto& p : phases_) {
        if (p.name == name || std::strcmp(p.name, name) == 0) {
            p.ns += ns;
            ++p.count;
            return;
        }
    }
    phases_.push_back({name, ns, 1});
}

std::uint64_t
PhaseBreakdown::totalNsFor(const char* name) const
{
    for (const auto& p : phases_)
        if (p.name == name || std::strcmp(p.name, name) == 0)
            return p.ns;
    return 0;
}

std::string
PhaseBreakdown::summary() const
{
    std::string out;
    for (const auto& p : phases_) {
        if (!out.empty())
            out += ' ';
        char buf[96];
        std::snprintf(buf, sizeof(buf), "%s=%.1fus x%llu", p.name,
                      static_cast<double>(p.ns) / 1e3,
                      static_cast<unsigned long long>(p.count));
        out += buf;
    }
    return out;
}

std::string
traceJson()
{
    // Snapshot every ring, then render outside the locks.
    std::vector<std::pair<int, std::vector<TraceEvent>>> snapshots;
    {
        Recorder& r = recorder();
        std::lock_guard<std::mutex> lock(r.ringsMu);
        snapshots.reserve(r.rings.size());
        for (const auto& ring : r.rings) {
            std::lock_guard<std::mutex> rlock(ring->mu);
            if (ring->events.empty())
                continue;
            std::vector<TraceEvent> events;
            events.reserve(ring->events.size());
            // Oldest-first: on a wrapped ring, `next` points at the
            // oldest surviving event.
            const std::size_t start =
                ring->wrapped ? ring->next : 0;
            for (std::size_t i = 0; i < ring->events.size(); ++i)
                events.push_back(
                    ring->events[(start + i) %
                                 ring->events.size()]);
            snapshots.emplace_back(ring->tid, std::move(events));
        }
    }

    std::string out = "{\"traceEvents\":[";
    bool first = true;
    char buf[192];
    for (const auto& [tid, events] : snapshots) {
        for (const auto& ev : events) {
            if (!first)
                out += ',';
            first = false;
            out += "{\"name\":\"";
            appendJsonEscaped(out, ev.name);
            std::snprintf(
                buf, sizeof(buf),
                "\",\"cat\":\"qpc\",\"ph\":\"X\",\"ts\":%.3f,"
                "\"dur\":%.3f,\"pid\":1,\"tid\":%d,\"args\":{"
                "\"id\":%llu,\"parent\":%llu",
                static_cast<double>(ev.startNs) / 1e3,
                static_cast<double>(ev.durNs) / 1e3, tid,
                static_cast<unsigned long long>(ev.id),
                static_cast<unsigned long long>(ev.parent));
            out += buf;
            for (int i = 0; i < 2; ++i) {
                if (ev.argKey[i] == nullptr)
                    continue;
                out += ",\"";
                appendJsonEscaped(out, ev.argKey[i]);
                out += "\":\"";
                appendJsonEscaped(out, ev.argVal[i]);
                out += '"';
            }
            out += "}}";
        }
    }
    out += "]}";
    return out;
}

bool
dumpTraceJson(const std::string& path)
{
    const std::string json = traceJson();
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        warn("trace: cannot open ", path, " for writing");
        return false;
    }
    const bool ok =
        std::fwrite(json.data(), 1, json.size(), f) == json.size();
    std::fclose(f);
    if (!ok)
        warn("trace: short write to ", path);
    return ok;
}

} // namespace qpc
