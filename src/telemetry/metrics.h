/**
 * @file
 * Named-metric registry and Prometheus text-format exposition.
 *
 * A MetricRegistry owns counters, gauges, and latency histograms by
 * name and hands out stable references, so instrumented code pays the
 * name lookup once at wire-up and the hot path touches only atomics.
 * collect() freezes everything into a MetricsSnapshot — a plain data
 * struct that travels over the wire (see server/protocol.h) and
 * renders as Prometheus text exposition on either end.
 *
 * Naming convention: metric names follow Prometheus rules
 * ([a-zA-Z_:][a-zA-Z0-9_:]*) with an optional trailing label block,
 * e.g. `qpc_tenant_serve_us{tenant="alice"}`. The label block is kept
 * inside the name string — the registry does not model label sets —
 * and the renderer splices histogram `le` labels into it. All
 * histograms record *nanoseconds*; exposition converts bounds and
 * sums to *microseconds* to match the `_us` name suffix used
 * throughout.
 */

#ifndef QPC_TELEMETRY_METRICS_H
#define QPC_TELEMETRY_METRICS_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "telemetry/histogram.h"

namespace qpc {

/** Point-in-time samples of every metric in a registry. */
struct MetricsSnapshot
{
    struct CounterSample
    {
        std::string name;
        std::uint64_t value = 0;
    };

    struct GaugeSample
    {
        std::string name;
        double value = 0.0;
    };

    struct HistogramSample
    {
        std::string name;
        HistogramSnapshot histogram;
    };

    std::vector<CounterSample> counters;
    std::vector<GaugeSample> gauges;
    std::vector<HistogramSample> histograms;

    /** Sort every section by name for deterministic exposition. */
    void sortByName();

    /** Fold another snapshot in (same-name histograms merge). */
    void merge(const MetricsSnapshot& other);
};

/**
 * Render a snapshot as Prometheus text exposition (version 0.0.4).
 * Counters and gauges emit `# TYPE` headers plus one sample line;
 * histograms emit cumulative `_bucket{le=...}` lines (nonzero buckets
 * only, plus `+Inf`), `_sum`, and `_count`, with bucket bounds and
 * sums converted from recorded nanoseconds to microseconds.
 */
std::string renderPrometheus(const MetricsSnapshot& snap);

/**
 * Owns metrics by name. Lookup is mutex-guarded; the returned
 * references are stable for the registry's lifetime, so callers
 * resolve once and record lock-free afterwards.
 */
class MetricRegistry
{
  public:
    /** Monotonically increasing event count. */
    class Counter
    {
      public:
        void inc(std::uint64_t n = 1)
        {
            value_.fetch_add(n, std::memory_order_relaxed);
        }

        std::uint64_t value() const
        {
            return value_.load(std::memory_order_relaxed);
        }

      private:
        std::atomic<std::uint64_t> value_{0};
    };

    /** Instantaneous level that can move both ways. */
    class Gauge
    {
      public:
        void set(double v);
        double value() const;

      private:
        std::atomic<std::uint64_t> bits_{0};
    };

    /** Find or create; panics on a malformed metric name. */
    Counter& counter(const std::string& name);
    Gauge& gauge(const std::string& name);
    LatencyHistogram& histogram(const std::string& name);

    /** Snapshot every registered metric. */
    MetricsSnapshot collect() const;

  private:
    mutable std::mutex mu_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<LatencyHistogram>>
        histograms_;
};

/**
 * Quote a string for use as a Prometheus label value: escapes
 * backslash, double quote, and newline per the exposition format.
 */
std::string promLabelEscape(const std::string& raw);

} // namespace qpc

#endif // QPC_TELEMETRY_METRICS_H
