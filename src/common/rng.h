/**
 * @file
 * Deterministic random number generation.
 *
 * All stochastic components of the library (random graphs, random
 * parametrizations, GRAPE pulse initialization, Haar-random unitaries)
 * draw from an explicitly seeded Rng so that every benchmark and test
 * is reproducible, mirroring the paper's "we fixed randomization seeds"
 * methodology.
 */

#ifndef QPC_COMMON_RNG_H
#define QPC_COMMON_RNG_H

#include <cstdint>
#include <random>
#include <vector>

namespace qpc {

/**
 * A seeded pseudo-random source wrapping std::mt19937_64.
 *
 * Copyable; copies evolve independently from the copied state.
 */
class Rng
{
  public:
    /** Construct with an explicit seed (default 0 for reproducibility). */
    explicit Rng(uint64_t seed = 0) : engine_(seed) {}

    /** Uniform double in [lo, hi). */
    double uniform(double lo = 0.0, double hi = 1.0);

    /** Standard normal sample (mean 0, stddev 1). */
    double normal();

    /** Uniform integer in [lo, hi] inclusive. */
    int randint(int lo, int hi);

    /** Bernoulli trial with success probability p. */
    bool bernoulli(double p);

    /** Uniform angle in [-pi, pi). */
    double angle();

    /** A vector of n uniform angles in [-pi, pi). */
    std::vector<double> angles(int n);

    /** Fisher-Yates shuffle of a vector. */
    template <typename T>
    void
    shuffle(std::vector<T>& items)
    {
        for (int i = static_cast<int>(items.size()) - 1; i > 0; --i) {
            int j = randint(0, i);
            std::swap(items[i], items[j]);
        }
    }

    /** Access to the underlying engine (for std distributions). */
    std::mt19937_64& engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
};

} // namespace qpc

#endif // QPC_COMMON_RNG_H
