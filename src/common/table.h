/**
 * @file
 * Aligned plain-text table printer.
 *
 * Every benchmark binary regenerates one of the paper's tables or
 * figures as text; this helper keeps their output uniform and legible.
 */

#ifndef QPC_COMMON_TABLE_H
#define QPC_COMMON_TABLE_H

#include <string>
#include <vector>

namespace qpc {

/**
 * Collects rows of cells and prints them with aligned columns.
 *
 * The first row added is treated as the header and separated from the
 * body by a rule when printed.
 */
class TextTable
{
  public:
    /** Optional caption printed above the table. */
    explicit TextTable(std::string title = "");

    /** Append a row of preformatted cells. */
    void addRow(std::vector<std::string> cells);

    /** Render to a string. */
    std::string str() const;

    /** Render to stdout. */
    void print() const;

  private:
    std::string title_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with the given number of decimals. */
std::string fmtDouble(double value, int decimals = 1);

/** Format a duration in nanoseconds, e.g. "5308.3". */
std::string fmtNs(double ns, int decimals = 1);

/** Format a ratio, e.g. "2.15x". */
std::string fmtRatio(double ratio, int decimals = 2);

} // namespace qpc

#endif // QPC_COMMON_TABLE_H
