#include "common/rng.h"

#include <cmath>

namespace qpc {

double
Rng::uniform(double lo, double hi)
{
    std::uniform_real_distribution<double> dist(lo, hi);
    return dist(engine_);
}

double
Rng::normal()
{
    std::normal_distribution<double> dist(0.0, 1.0);
    return dist(engine_);
}

int
Rng::randint(int lo, int hi)
{
    std::uniform_int_distribution<int> dist(lo, hi);
    return dist(engine_);
}

bool
Rng::bernoulli(double p)
{
    std::bernoulli_distribution dist(p);
    return dist(engine_);
}

double
Rng::angle()
{
    return uniform(-M_PI, M_PI);
}

std::vector<double>
Rng::angles(int n)
{
    std::vector<double> out(n);
    for (auto& a : out)
        a = angle();
    return out;
}

} // namespace qpc
