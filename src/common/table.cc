#include "common/table.h"

#include <cstdio>
#include <sstream>

namespace qpc {

TextTable::TextTable(std::string title) : title_(std::move(title)) {}

void
TextTable::addRow(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

std::string
TextTable::str() const
{
    std::ostringstream out;
    if (!title_.empty())
        out << title_ << "\n";
    if (rows_.empty())
        return out.str();

    size_t ncols = 0;
    for (const auto& row : rows_)
        ncols = std::max(ncols, row.size());

    std::vector<size_t> width(ncols, 0);
    for (const auto& row : rows_) {
        for (size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());
    }

    auto emit = [&](const std::vector<std::string>& row) {
        for (size_t c = 0; c < ncols; ++c) {
            std::string cell = c < row.size() ? row[c] : "";
            out << cell << std::string(width[c] - cell.size(), ' ');
            if (c + 1 < ncols)
                out << "  ";
        }
        out << "\n";
    };

    emit(rows_[0]);
    size_t total = 0;
    for (size_t c = 0; c < ncols; ++c)
        total += width[c] + (c + 1 < ncols ? 2 : 0);
    out << std::string(total, '-') << "\n";
    for (size_t r = 1; r < rows_.size(); ++r)
        emit(rows_[r]);
    return out.str();
}

void
TextTable::print() const
{
    std::fputs(str().c_str(), stdout);
    std::fflush(stdout);
}

std::string
fmtDouble(double value, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    return buf;
}

std::string
fmtNs(double ns, int decimals)
{
    return fmtDouble(ns, decimals);
}

std::string
fmtRatio(double ratio, int decimals)
{
    return fmtDouble(ratio, decimals) + "x";
}

} // namespace qpc
