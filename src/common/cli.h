/**
 * @file
 * Minimal command line flag parser used by benches and examples.
 *
 * Supports flags of the form --name=value, --name value, and boolean
 * --name. Unknown flags are fatal errors so typos do not silently run
 * the wrong experiment configuration.
 */

#ifndef QPC_COMMON_CLI_H
#define QPC_COMMON_CLI_H

#include <map>
#include <string>
#include <vector>

namespace qpc {

/**
 * Declarative command line parser.
 *
 * Usage:
 * @code
 *   CliParser cli("bench_fig2");
 *   cli.addInt("pmax", 6, "largest QAOA p to sweep");
 *   cli.addFlag("full", "run the expensive full-fidelity configuration");
 *   cli.parse(argc, argv);
 *   int pmax = cli.getInt("pmax");
 * @endcode
 */
class CliParser
{
  public:
    explicit CliParser(std::string program_name);

    /** Declare an integer option with a default value. */
    void addInt(const std::string& name, int def, const std::string& help);
    /** Declare a floating point option with a default value. */
    void addDouble(const std::string& name, double def,
                   const std::string& help);
    /** Declare a string option with a default value. */
    void addString(const std::string& name, const std::string& def,
                   const std::string& help);
    /** Declare a boolean option, default false. */
    void addFlag(const std::string& name, const std::string& help);

    /**
     * Parse argv. On --help, prints usage and exits 0. On unknown or
     * malformed flags, prints usage and exits 1.
     */
    void parse(int argc, char** argv);

    int getInt(const std::string& name) const;
    double getDouble(const std::string& name) const;
    const std::string& getString(const std::string& name) const;
    bool getFlag(const std::string& name) const;

  private:
    enum class Kind { Int, Double, String, Flag };

    struct Option
    {
        Kind kind;
        std::string value;      // current value, textual
        std::string def;        // default, textual (for --help)
        std::string help;
    };

    const Option& find(const std::string& name, Kind kind) const;
    void usage() const;

    std::string program_;
    std::map<std::string, Option> options_;
    std::vector<std::string> order_;
};

} // namespace qpc

#endif // QPC_COMMON_CLI_H
