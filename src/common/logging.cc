#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace qpc {

namespace {

std::atomic<int>&
levelStore()
{
    // Resolve QPC_LOG_LEVEL exactly once, on first logging call.
    static std::atomic<int> level{static_cast<int>([] {
        const char* env = std::getenv("QPC_LOG_LEVEL");
        return parseLogLevel(env == nullptr ? "" : env);
    }())};
    return level;
}

/**
 * Emit one fully-formed line with a single stdio call under a
 * process-wide mutex, so lines from concurrent server sessions never
 * interleave or tear.
 */
void
emitLine(std::FILE* stream, const char* prefix,
         const std::string& msg)
{
    static std::mutex mu;
    std::string line;
    line.reserve(msg.size() + 16);
    line += prefix;
    line += msg;
    line += '\n';
    std::lock_guard<std::mutex> lock(mu);
    std::fwrite(line.data(), 1, line.size(), stream);
    std::fflush(stream);
}

} // namespace

LogLevel
logLevel()
{
    return static_cast<LogLevel>(
        levelStore().load(std::memory_order_relaxed));
}

void
setLogLevel(LogLevel level)
{
    levelStore().store(static_cast<int>(level),
                       std::memory_order_relaxed);
}

LogLevel
parseLogLevel(const std::string& value)
{
    if (value == "silent" || value == "0")
        return LogLevel::Silent;
    if (value == "warn" || value == "1")
        return LogLevel::Warn;
    if (value == "info" || value == "2")
        return LogLevel::Info;
    return LogLevel::Info;
}

namespace detail {

void
informStr(const std::string& msg)
{
    if (logLevel() < LogLevel::Info)
        return;
    emitLine(stdout, "info: ", msg);
}

void
warnStr(const std::string& msg)
{
    if (logLevel() < LogLevel::Warn)
        return;
    emitLine(stderr, "warn: ", msg);
}

void
fatalStr(const std::string& msg)
{
    emitLine(stderr, "fatal: ", msg);
    std::exit(1);
}

void
panicStr(const std::string& msg)
{
    emitLine(stderr, "panic: ", msg);
    std::abort();
}

} // namespace detail
} // namespace qpc
