#include "common/logging.h"

#include <cstdio>
#include <cstdlib>

namespace qpc {
namespace detail {

void
informStr(const std::string& msg)
{
    std::fprintf(stdout, "info: %s\n", msg.c_str());
    std::fflush(stdout);
}

void
warnStr(const std::string& msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
    std::fflush(stderr);
}

void
fatalStr(const std::string& msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::fflush(stderr);
    std::exit(1);
}

void
panicStr(const std::string& msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::fflush(stderr);
    std::abort();
}

} // namespace detail
} // namespace qpc
