/**
 * @file
 * Status / error reporting helpers in the gem5 spirit.
 *
 * Four severity levels are provided:
 *  - inform():  normal operating message, no connotation of a problem.
 *  - warn():    something may be off, but execution continues.
 *  - fatal():   the run cannot continue because of a *user* error
 *               (bad configuration, invalid arguments); exits with code 1.
 *  - panic():   an internal invariant was violated (a library bug);
 *               aborts so a core dump / debugger can take over.
 */

#ifndef QPC_COMMON_LOGGING_H
#define QPC_COMMON_LOGGING_H

#include <sstream>
#include <string>

namespace qpc {

/**
 * Verbosity gate for the non-terminating levels. fatal()/panic()
 * always print. Initialized from the QPC_LOG_LEVEL environment
 * variable ("silent"/"warn"/"info" or 0/1/2; default info) on first
 * use; setLogLevel() overrides it programmatically.
 */
enum class LogLevel
{
    Silent = 0, ///< Suppress inform() and warn().
    Warn = 1,   ///< Suppress inform() only.
    Info = 2,   ///< Print everything (default).
};

/** Current verbosity (resolves QPC_LOG_LEVEL on first call). */
LogLevel logLevel();

/** Override the verbosity for this process. */
void setLogLevel(LogLevel level);

/**
 * Parse a QPC_LOG_LEVEL value; returns Info (the default) for an
 * empty or unrecognized string.
 */
LogLevel parseLogLevel(const std::string& value);

namespace detail {

/** Concatenate a pack of streamable values into one string. */
template <typename... Args>
std::string
concat(Args&&... args)
{
    std::ostringstream oss;
    (oss << ... << args);
    return oss.str();
}

/** Print "info: <msg>" on stdout. */
void informStr(const std::string& msg);
/** Print "warn: <msg>" on stderr. */
void warnStr(const std::string& msg);
/** Print "fatal: <msg>" on stderr and exit(1). */
[[noreturn]] void fatalStr(const std::string& msg);
/** Print "panic: <msg>" on stderr and abort(). */
[[noreturn]] void panicStr(const std::string& msg);

} // namespace detail

/** Report a normal status message to the user. */
template <typename... Args>
void
inform(Args&&... args)
{
    detail::informStr(detail::concat(std::forward<Args>(args)...));
}

/** Report a suspicious-but-survivable condition. */
template <typename... Args>
void
warn(Args&&... args)
{
    detail::warnStr(detail::concat(std::forward<Args>(args)...));
}

/** Terminate because of a user error (bad input / configuration). */
template <typename... Args>
[[noreturn]] void
fatal(Args&&... args)
{
    detail::fatalStr(detail::concat(std::forward<Args>(args)...));
}

/** Terminate because an internal invariant was violated. */
template <typename... Args>
[[noreturn]] void
panic(Args&&... args)
{
    detail::panicStr(detail::concat(std::forward<Args>(args)...));
}

/** panic() unless a condition holds. Use for internal invariants. */
template <typename... Args>
void
panicIf(bool condition, Args&&... args)
{
    if (condition)
        detail::panicStr(detail::concat(std::forward<Args>(args)...));
}

/** fatal() if a condition holds. Use for validating user input. */
template <typename... Args>
void
fatalIf(bool condition, Args&&... args)
{
    if (condition)
        detail::fatalStr(detail::concat(std::forward<Args>(args)...));
}

} // namespace qpc

#endif // QPC_COMMON_LOGGING_H
