#include "common/cli.h"

#include <cstdio>
#include <cstdlib>

#include "common/logging.h"

namespace qpc {

CliParser::CliParser(std::string program_name)
    : program_(std::move(program_name))
{
}

void
CliParser::addInt(const std::string& name, int def, const std::string& help)
{
    options_[name] = {Kind::Int, std::to_string(def), std::to_string(def),
                      help};
    order_.push_back(name);
}

void
CliParser::addDouble(const std::string& name, double def,
                     const std::string& help)
{
    options_[name] = {Kind::Double, std::to_string(def), std::to_string(def),
                      help};
    order_.push_back(name);
}

void
CliParser::addString(const std::string& name, const std::string& def,
                     const std::string& help)
{
    options_[name] = {Kind::String, def, def, help};
    order_.push_back(name);
}

void
CliParser::addFlag(const std::string& name, const std::string& help)
{
    options_[name] = {Kind::Flag, "0", "0", help};
    order_.push_back(name);
}

void
CliParser::usage() const
{
    std::fprintf(stderr, "usage: %s [--option=value ...]\n", program_.c_str());
    for (const auto& name : order_) {
        const Option& opt = options_.at(name);
        if (opt.kind == Kind::Flag) {
            std::fprintf(stderr, "  --%-24s %s\n", name.c_str(),
                         opt.help.c_str());
        } else {
            std::string label = name + " (default " + opt.def + ")";
            std::fprintf(stderr, "  --%-24s %s\n", label.c_str(),
                         opt.help.c_str());
        }
    }
}

void
CliParser::parse(int argc, char** argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage();
            std::exit(0);
        }
        if (arg.rfind("--", 0) != 0) {
            std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
            usage();
            std::exit(1);
        }
        std::string body = arg.substr(2);
        std::string name = body;
        std::string value;
        bool have_value = false;
        auto eq = body.find('=');
        if (eq != std::string::npos) {
            name = body.substr(0, eq);
            value = body.substr(eq + 1);
            have_value = true;
        }
        auto it = options_.find(name);
        if (it == options_.end()) {
            std::fprintf(stderr, "unknown option: --%s\n", name.c_str());
            usage();
            std::exit(1);
        }
        Option& opt = it->second;
        if (opt.kind == Kind::Flag) {
            if (have_value) {
                std::fprintf(stderr, "flag --%s takes no value\n",
                             name.c_str());
                std::exit(1);
            }
            opt.value = "1";
            continue;
        }
        if (!have_value) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "option --%s needs a value\n",
                             name.c_str());
                std::exit(1);
            }
            value = argv[++i];
        }
        opt.value = value;
    }
}

const CliParser::Option&
CliParser::find(const std::string& name, Kind kind) const
{
    auto it = options_.find(name);
    panicIf(it == options_.end(), "undeclared cli option: ", name);
    panicIf(it->second.kind != kind, "cli option type mismatch: ", name);
    return it->second;
}

int
CliParser::getInt(const std::string& name) const
{
    return std::atoi(find(name, Kind::Int).value.c_str());
}

double
CliParser::getDouble(const std::string& name) const
{
    return std::atof(find(name, Kind::Double).value.c_str());
}

const std::string&
CliParser::getString(const std::string& name) const
{
    return find(name, Kind::String).value;
}

bool
CliParser::getFlag(const std::string& name) const
{
    return find(name, Kind::Flag).value == "1";
}

} // namespace qpc
