/**
 * @file
 * Wire protocol of the multi-tenant compile server.
 *
 * Transport: length-prefixed binary frames over a stream socket (unix
 * domain by default, TCP behind a flag):
 *
 *   u32   payload length N (little-endian; 0 < N <= kMaxFramePayload)
 *   u8[N] payload
 *
 * Payload: u8 protocol version, u8 message type, then the type's body.
 * All integers are little-endian; doubles travel as raw IEEE-754 bits
 * (the same convention as the "QPLS" pulse record, which rides inside
 * Serve replies unchanged).
 *
 * Message bodies (requests):
 *   Hello           str tenant
 *   PrepareServing  circuit ("QCIR" record, below)
 *   Prewarm         u64 planId
 *   Serve           u64 planId, u8 wantPulses, u32 n, f64 theta[n]
 *   Stats           (empty)
 *   Shutdown        (empty)
 *   Metrics         (empty)
 *   BumpEpoch       u64 modelHash (0 = keep the current device-model
 *                   hash; the counter always advances)
 *
 * Replies:
 *   HelloOk     u32 tenantId, u64 maxPlans, u64 maxServedBytes,
 *               u64 maxConcurrentBulk, u64 epochCounter,
 *               u64 epochModelHash (the server's calibration epoch at
 *               connect, so a fleet client knows which calibration it
 *               is about to serve against)
 *   PrepareOk   u64 planId, u32 numFixedBlocks, u32 numParamGates
 *   PrewarmOk   u32 uniqueBlocks, u64 synthRuns, u64 cacheHits,
 *               f64 wallSeconds
 *   ServeOk     f64 pulseNs, u64 cacheHits, u64 cacheMisses,
 *               u64 quantHits, u64 quantMisses, u64 exactServes,
 *               f64 quantErrorBound, u64 epochCounter (the epoch the
 *               serving plan is keyed to — lags the server epoch
 *               until the plan is re-keyed after a bump, so clients
 *               detect mid-flight calibration drift), u32 numSegments,
 *               then when wantPulses: numSegments x (u32 len,
 *               u8[len] "QPLS" pulse record)
 *   BumpEpochOk u64 newCounter, u64 modelHash, u32 plansRekeyed
 *   StatsOk     ServerStatsSnapshot (see decodeStats)
 *   ShutdownOk  (empty)
 *   MetricsOk   MetricsSnapshot (see decodeMetrics): counters,
 *               gauges, and WireHistogram-encoded latency
 *               distributions, renderable as Prometheus text on
 *               either end of the wire
 *   Error       u32 code, str message
 *
 * Strings are u32 length + raw bytes. Decoding never trusts its input:
 * a malformed body reads as an error on that connection only, the
 * server stays up for every other tenant.
 *
 * Circuits travel as a versioned "QCIR" record so a serving template
 * survives the trip bit-exactly (ParamExpr coefficients included):
 *
 *   bytes 0..3  magic "QCIR"
 *   u32         format version (currently 1)
 *   u32         numQubits
 *   u32         numOps
 *   per op:     u8 kind, i32 q0, i32 q1,
 *               i32 paramIndex, f64 coeff, f64 offset
 */

#ifndef QPC_SERVER_PROTOCOL_H
#define QPC_SERVER_PROTOCOL_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ir/circuit.h"
#include "telemetry/metrics.h"

namespace qpc {

/** Protocol version spoken by this build (frames carry it). Version 2
 * added calibration epochs: HelloOk/ServeOk epoch fields and the
 * BumpEpoch admin request. */
inline constexpr std::uint8_t kServerProtocolVersion = 2;

/** Circuit record format version inside PrepareServing bodies. */
inline constexpr std::uint32_t kCircuitFormatVersion = 1;

/**
 * Hard ceiling on one frame's payload. A length prefix past this reads
 * as a malformed frame (connection error), never as an allocation: a
 * garbage or hostile prefix must not let one tenant balloon server
 * memory.
 */
inline constexpr std::uint32_t kMaxFramePayload = 16u << 20;

/** Every message type on the wire. Requests < 64, replies >= 64. */
enum class MsgType : std::uint8_t {
    Hello = 1,
    PrepareServing = 2,
    Prewarm = 3,
    Serve = 4,
    Stats = 5,
    Shutdown = 6,
    Metrics = 7,
    BumpEpoch = 8,

    HelloOk = 65,
    PrepareOk = 66,
    PrewarmOk = 67,
    ServeOk = 68,
    StatsOk = 69,
    ShutdownOk = 70,
    MetricsOk = 71,
    BumpEpochOk = 72,
    Error = 127,
};

/** Error frame codes. */
enum class WireError : std::uint32_t {
    None = 0,          ///< Never sent on the wire: a client whose last
                       ///< call succeeded reports this cleared state.
    BadRequest = 1,    ///< Malformed body / unknown type / bad version.
    QuotaExceeded = 2, ///< Tenant quota (plans, bytes, bulk) exhausted.
    NotFound = 3,      ///< Unknown plan id.
    Internal = 4,      ///< Server-side failure serving the request.
    ShuttingDown = 5,  ///< Server is draining; retry elsewhere.
    Busy = 6,          ///< Server at session capacity; back off + retry.
};

/** Little-endian serializer for message bodies. */
class WireWriter
{
  public:
    void u8(std::uint8_t v) { bytes_.push_back(v); }
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
    void f64(double v);
    /** u32 length + raw bytes. */
    void str(const std::string& s);
    /** u32 length + raw bytes. */
    void blob(const std::vector<std::uint8_t>& b);
    /** Raw bytes, no length prefix (self-delimiting sub-records). */
    void raw(const std::uint8_t* data, std::size_t size);

    const std::vector<std::uint8_t>& bytes() const { return bytes_; }
    std::vector<std::uint8_t> take() { return std::move(bytes_); }

  private:
    std::vector<std::uint8_t> bytes_;
};

/**
 * Little-endian deserializer. Never reads past the end: the first
 * short read latches ok() false and every later read returns zeros,
 * so decoding loops stay simple and a truncated body cannot walk off
 * the buffer.
 */
class WireReader
{
  public:
    WireReader(const std::uint8_t* data, std::size_t size)
        : p_(data), remaining_(size)
    {
    }
    explicit WireReader(const std::vector<std::uint8_t>& bytes)
        : WireReader(bytes.data(), bytes.size())
    {
    }

    std::uint8_t u8();
    std::uint32_t u32();
    std::uint64_t u64();
    std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
    double f64();
    /** u32 length + bytes; empty (and !ok()) on a lying length. */
    std::string str();
    std::vector<std::uint8_t> blob();

    /** False once any read ran past the available bytes. */
    bool ok() const { return ok_; }
    /** True when every byte was consumed and no read failed. */
    bool done() const { return ok_ && remaining_ == 0; }
    std::size_t remaining() const { return remaining_; }

  private:
    const std::uint8_t* take(std::size_t n);

    const std::uint8_t* p_ = nullptr;
    std::size_t remaining_ = 0;
    bool ok_ = true;
};

/** Start a message payload: version byte + type byte. */
WireWriter beginMessage(MsgType type);

/**
 * Parse a payload's two-byte header. nullopt when the payload is too
 * short, carries the wrong protocol version, or an unknown type.
 */
std::optional<MsgType> peekMessage(const std::vector<std::uint8_t>& payload);

/** @name Frame transport over a connected stream socket
 *  @{ */

/** Why a deadline-aware frame operation produced no frame. */
enum class FrameError {
    None = 0, ///< Success (or the call has not failed yet).
    Closed,   ///< EOF, reset, or any other terminal I/O failure.
    Timeout,  ///< The deadline expired before the frame completed.
};

/** Write one length-prefixed frame; false on any I/O error. */
bool writeFrame(int fd, const std::vector<std::uint8_t>& payload);

/**
 * Deadline-aware writeFrame: the whole frame (prefix + payload) must
 * drain within timeout_ms, measured from the call — a peer that
 * stops reading cannot pin the writer past the deadline. timeout_ms
 * <= 0 waits forever (the blocking overload). `why`, when non-null,
 * distinguishes a dead peer from an expired deadline.
 */
bool writeFrame(int fd, const std::vector<std::uint8_t>& payload,
                int timeout_ms, FrameError* why);

/**
 * Read one frame. nullopt on clean EOF before a frame starts, a
 * disconnect mid-frame, an oversized or zero length prefix, or any
 * I/O error — the caller drops the connection either way.
 */
std::optional<std::vector<std::uint8_t>> readFrame(int fd);

/**
 * Deadline-aware readFrame: the whole frame must arrive within
 * timeout_ms of the call, so both a silent peer and a byte-trickling
 * one hit the deadline. timeout_ms <= 0 waits forever. `why`, when
 * non-null, distinguishes EOF/error (Closed) from an expired
 * deadline (Timeout) — the server reaps idle sessions on the latter.
 */
std::optional<std::vector<std::uint8_t>>
readFrame(int fd, int timeout_ms, FrameError* why);

/**
 * Disable Nagle on a TCP socket. The serve loop is a stream of small
 * request/reply frames; Nagle + delayed ACK can add ~40 ms per
 * round-trip. No-op (false) on non-TCP fds.
 */
bool setTcpNoDelay(int fd);
/** @} */

/** @name Versioned circuit record ("QCIR")
 *  @{ */

/** Append a circuit record to a body under construction. */
void encodeCircuit(WireWriter& w, const Circuit& circuit);

/**
 * Decode an in-stream circuit record. nullopt on bad magic, version,
 * counts, gate kinds, qubit indices, or non-finite coefficients —
 * validated here so a hostile record can never reach Circuit::add's
 * panics.
 */
std::optional<Circuit> decodeCircuit(WireReader& r);

/** Whole-buffer convenience wrappers (tests, tooling). */
std::vector<std::uint8_t> encodeCircuit(const Circuit& circuit);
std::optional<Circuit>
decodeCircuit(const std::vector<std::uint8_t>& bytes);
/** @} */

/** @name StatsOk body: a server health/observability snapshot
 *  @{ */

/** One tenant's counters inside a StatsOk reply. */
struct WireTenantStats
{
    std::string tenant;
    std::uint64_t plans = 0;      ///< Serving plans currently held.
    std::uint64_t serves = 0;     ///< Serve requests completed.
    std::uint64_t prewarms = 0;   ///< Prewarm requests completed.
    std::uint64_t serveHits = 0;  ///< Served segments found warm.
    std::uint64_t serveMisses = 0; ///< Segments synthesized on serve.
    std::uint64_t servedBytes = 0; ///< Serialized pulse bytes served.
    std::uint64_t quotaRejections = 0; ///< Requests shed by quota.

    /** Warm fraction of this tenant's served segments. */
    double
    hitRate() const
    {
        const std::uint64_t total = serveHits + serveMisses;
        return total ? static_cast<double>(serveHits) / total : 0.0;
    }
};

/** The whole StatsOk body: server, shared service/cache, per tenant. */
struct WireServerStats
{
    /** @name Server-level counters
     *  @{ */
    std::uint64_t connectionsAccepted = 0;
    std::uint64_t connectionsActive = 0;
    std::uint64_t protocolErrors = 0; ///< Malformed frames/bodies seen.
    std::uint64_t bulkYields = 0; ///< Prewarms that waited for serves.
    std::uint64_t acceptFailures = 0; ///< accept(2) errors (EMFILE...).
    std::uint64_t busyRejections = 0; ///< Connections shed at capacity.
    std::uint64_t sessionsReapedIdle = 0; ///< Idle-timeout reaps.
    /** @} */

    /** @name Shared CompileService counters (ServiceStats mirror)
     *  @{ */
    std::uint64_t requests = 0;
    std::uint64_t cacheHits = 0;
    std::uint64_t coalesced = 0;
    std::uint64_t synthRuns = 0;
    std::uint64_t rejected = 0;
    std::uint64_t exactServes = 0;
    std::uint64_t quantHits = 0;
    std::uint64_t quantMisses = 0;
    std::uint64_t quantFallbacks = 0;
    /** @} */

    /** @name Shared PulseCache counters (CacheStats mirror)
     *  @{ */
    std::uint64_t cacheLookups = 0;
    std::uint64_t cacheMemHits = 0;
    std::uint64_t cacheDiskHits = 0;
    std::uint64_t cacheMisses = 0;
    std::uint64_t cacheEntries = 0;
    std::uint64_t cacheBytesInUse = 0;
    /** @} */

    std::vector<WireTenantStats> tenants;
};

/** Append a stats snapshot to a StatsOk body under construction. */
void encodeServerStats(WireWriter& w, const WireServerStats& stats);

/** Decode a StatsOk body; nullopt on malformed bytes. */
std::optional<WireServerStats> decodeServerStats(WireReader& r);
/** @} */

/** @name MetricsOk body: the server's metric registry on the wire
 *
 * Layout:
 *   u32 numCounters,   per counter:   str name, u64 value
 *   u32 numGauges,     per gauge:     str name, f64 value
 *   u32 numHistograms, per histogram: WireHistogram
 *
 * WireHistogram:
 *   str name, u64 count, u64 sumNs, u64 minNs, u64 maxNs,
 *   u32 numNonzeroBuckets, per bucket: u32 index, u64 count
 *
 * Decoding validates every structural invariant a snapshot relies on
 * (bucket indices in range and strictly increasing, bucket counts
 * nonzero and summing to `count`, min <= max, section sizes bounded),
 * so a hostile body can never produce a snapshot whose percentile
 * walk misbehaves.
 *  @{ */

/** Ceiling on each metric section's element count on the wire. */
inline constexpr std::uint32_t kMaxWireMetrics = 1u << 14;
/** Ceiling on a metric name's length on the wire. */
inline constexpr std::uint32_t kMaxWireMetricName = 512;

/** Append one named histogram snapshot to a body. */
void encodeWireHistogram(WireWriter& w,
                         const MetricsSnapshot::HistogramSample& h);

/** Decode one named histogram; nullopt on malformed bytes. */
std::optional<MetricsSnapshot::HistogramSample>
decodeWireHistogram(WireReader& r);

/** Append a whole metrics snapshot to a MetricsOk body. */
void encodeMetrics(WireWriter& w, const MetricsSnapshot& snap);

/** Decode a MetricsOk body; nullopt on malformed bytes. */
std::optional<MetricsSnapshot> decodeMetrics(WireReader& r);
/** @} */

} // namespace qpc

#endif // QPC_SERVER_PROTOCOL_H
