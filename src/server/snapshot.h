/**
 * @file
 * Serving-state snapshots for warm replica boots.
 *
 * A compile server's working set is reconstructible — every pulse is
 * re-derivable from its circuit — but reconstruction is exactly the
 * latency the server exists to hide. When a fleet adds a replica (or
 * restarts one), the new daemon should not pay a cold cache against
 * tenants whose plans the fleet has served for hours. A snapshot
 * captures what is *cheap to carry and expensive to rediscover*: the
 * calibration epoch and every tenant's serving-plan circuits. The
 * restoring daemon re-prepares those plans under the snapshot's epoch
 * — identical epoch => identical fingerprints => identical disk-tier
 * filenames — so a replica sharing the fleet's cache directory (or
 * one that rsync'ed it) boots with a warm hit rate instead of a
 * synthesis storm.
 *
 * On-disk format ("QSNP", little-endian):
 *
 *   bytes 0..3  magic "QSNP"
 *   u32         format version (currently 1)
 *   u64         epoch counter
 *   u64         epoch device-model hash
 *   u32         numPlans
 *   per plan:   u32 tenantLen, tenant bytes,
 *               "QCIR" circuit record (protocol.h)
 *
 * Writes are atomic (temp file + rename) so a crash mid-snapshot
 * leaves the previous snapshot intact.
 */

#ifndef QPC_SERVER_SNAPSHOT_H
#define QPC_SERVER_SNAPSHOT_H

#include <optional>
#include <string>
#include <vector>

#include "ir/circuit.h"
#include "model/calibration.h"

namespace qpc {

/** Snapshot record format version. */
inline constexpr std::uint32_t kSnapshotFormatVersion = 1;

/** One serving plan worth re-preparing at boot. */
struct SnapshotPlan
{
    std::string tenant; ///< Tenant name the plan belongs to.
    Circuit circuit;    ///< The serving template, bit-exact.
};

/** Everything a replica needs to boot warm. */
struct ServingSnapshot
{
    /** Calibration epoch the fleet was serving under. Restoring
     * daemons adopt it *before* preparing plans, so the re-keyed
     * fingerprints match the shared disk tier's records. */
    CalibrationEpoch epoch;
    std::vector<SnapshotPlan> plans;
};

/** Serialize a snapshot to bytes ("QSNP" record). */
std::vector<std::uint8_t>
serializeServingSnapshot(const ServingSnapshot& snapshot);

/**
 * Parse a "QSNP" record. nullopt on bad magic, version, counts, or a
 * malformed embedded circuit — a truncated or hostile snapshot must
 * fail the boot cleanly, never half-restore.
 */
std::optional<ServingSnapshot>
deserializeServingSnapshot(const std::vector<std::uint8_t>& bytes);

/**
 * Write a snapshot to `path` atomically (temp + rename). False on any
 * I/O failure; the previous file at `path`, if any, is untouched.
 */
bool saveServingSnapshot(const std::string& path,
                         const ServingSnapshot& snapshot);

/** Read and parse a snapshot file; nullopt on I/O or parse failure. */
std::optional<ServingSnapshot>
loadServingSnapshot(const std::string& path);

} // namespace qpc

#endif // QPC_SERVER_SNAPSHOT_H
