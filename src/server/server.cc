#include "server/server.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <optional>
#include <stdexcept>
#include <thread>

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/logging.h"
#include "partial/strict.h"
#include "pulse/serialize.h"
#include "telemetry/trace.h"

namespace qpc {

namespace {

/** Longest tenant name a Hello may carry. */
constexpr std::size_t kMaxTenantName = 256;
/** Largest theta vector a Serve may carry. */
constexpr std::uint32_t kMaxThetaLen = 1u << 16;
/** How often the accept loop re-checks the stop flag. */
constexpr int kAcceptPollMs = 100;
/** First accept-failure backoff; doubles per consecutive failure. */
constexpr int kAcceptBackoffMinMs = 10;
/** Accept-failure backoff ceiling. */
constexpr int kAcceptBackoffMaxMs = 1000;
/** Write budget for the Busy frame sent to a shed connection. */
constexpr int kShedWriteMs = 100;

void
closeIfOpen(int& fd)
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

} // namespace

void
PriorityGate::beginServe()
{
    std::lock_guard<std::mutex> lock(mu_);
    ++pendingServes_;
}

void
PriorityGate::endServe()
{
    std::lock_guard<std::mutex> lock(mu_);
    panicIf(pendingServes_ <= 0, "endServe() without beginServe()");
    if (--pendingServes_ == 0)
        cv_.notify_all();
}

bool
PriorityGate::waitBulkTurn()
{
    std::unique_lock<std::mutex> lock(mu_);
    if (pendingServes_ > 0)
        ++bulkYields_;
    cv_.wait(lock,
             [this] { return stopped_ || pendingServes_ == 0; });
    return !stopped_;
}

void
PriorityGate::stop()
{
    std::lock_guard<std::mutex> lock(mu_);
    stopped_ = true;
    cv_.notify_all();
}

std::uint64_t
PriorityGate::bulkYields() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return bulkYields_;
}

int
PriorityGate::pendingServes() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return pendingServes_;
}

CompileServer::CompileServer(CompileServerOptions options)
    : options_(std::move(options)), service_(options_.service)
{
    fatalIf(options_.socketPath.empty() && options_.tcpPort == 0,
            "compile server needs a unix socket path or a TCP port");
    // Resolve the per-frame-type handle histograms once, so the
    // per-frame hot path is an array index, not a registry lookup.
    const std::pair<MsgType, const char*> kRequestTypes[] = {
        {MsgType::Hello, "Hello"},
        {MsgType::PrepareServing, "PrepareServing"},
        {MsgType::Prewarm, "Prewarm"},
        {MsgType::Serve, "Serve"},
        {MsgType::Stats, "Stats"},
        {MsgType::Shutdown, "Shutdown"},
        {MsgType::Metrics, "Metrics"},
        {MsgType::BumpEpoch, "BumpEpoch"},
    };
    for (const auto& [type, name] : kRequestTypes)
        handleNs_[static_cast<std::uint8_t>(type)] =
            &registry_.histogram(
                std::string("qpc_server_handle_us{type=\"") + name +
                "\"}");
    epochRecoveryNs_ = &registry_.histogram("qpc_epoch_recovery_us");
}

CompileServer::~CompileServer()
{
    stop();
}

void
CompileServer::start()
{
    panicIf(started_, "start() called twice");
    started_ = true;

    if (!options_.socketPath.empty()) {
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        fatalIf(options_.socketPath.size() >= sizeof(addr.sun_path),
                "unix socket path too long: ", options_.socketPath);
        std::strncpy(addr.sun_path, options_.socketPath.c_str(),
                     sizeof(addr.sun_path) - 1);
        unixFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        fatalIf(unixFd_ < 0, "cannot create unix socket: ",
                std::strerror(errno));
        // A stale path from a crashed predecessor must not block a
        // restart; a live server on the path will still make bind
        // fail below.
        ::unlink(options_.socketPath.c_str());
        fatalIf(::bind(unixFd_,
                       reinterpret_cast<const sockaddr*>(&addr),
                       sizeof(addr)) != 0,
                "cannot bind ", options_.socketPath, ": ",
                std::strerror(errno));
        fatalIf(::listen(unixFd_, options_.listenBacklog) != 0,
                "cannot listen on ", options_.socketPath, ": ",
                std::strerror(errno));
    }

    if (options_.tcpPort != 0) {
        tcpFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        fatalIf(tcpFd_ < 0, "cannot create TCP socket: ",
                std::strerror(errno));
        const int one = 1;
        ::setsockopt(tcpFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = htons(options_.tcpPort > 0
                                  ? static_cast<std::uint16_t>(
                                        options_.tcpPort)
                                  : 0);
        fatalIf(::bind(tcpFd_,
                       reinterpret_cast<const sockaddr*>(&addr),
                       sizeof(addr)) != 0,
                "cannot bind TCP port ", options_.tcpPort, ": ",
                std::strerror(errno));
        fatalIf(::listen(tcpFd_, options_.listenBacklog) != 0,
                "cannot listen on TCP port: ", std::strerror(errno));
        sockaddr_in bound{};
        socklen_t len = sizeof(bound);
        if (::getsockname(tcpFd_,
                          reinterpret_cast<sockaddr*>(&bound),
                          &len) == 0)
            boundTcpPort_ = ntohs(bound.sin_port);
    }

    acceptThread_ = std::thread([this] { acceptLoop(); });
}

int
CompileServer::boundTcpPort() const
{
    return boundTcpPort_;
}

void
CompileServer::requestStop()
{
    bool expected = false;
    if (!stopRequested_.compare_exchange_strong(expected, true))
        return;
    {
        std::lock_guard<std::mutex> lock(stopMu_);
        stopCv_.notify_all();
    }
    gate_.stop();
    // Wake every blocked read: shutdown (not close — the fds stay
    // valid until their threads are joined) the listeners and every
    // live session socket.
    if (unixFd_ >= 0)
        ::shutdown(unixFd_, SHUT_RDWR);
    if (tcpFd_ >= 0)
        ::shutdown(tcpFd_, SHUT_RDWR);
    std::lock_guard<std::mutex> lock(registryMu_);
    // Read side only: blocked readers wake with EOF, but a reply
    // already being written still flushes — stop() force-closes
    // whatever is left after the drain window.
    for (const auto& session : sessions_)
        if (session->fd >= 0)
            ::shutdown(session->fd, SHUT_RD);
}

bool
CompileServer::stopRequested() const
{
    return stopRequested_.load(std::memory_order_relaxed);
}

void
CompileServer::waitUntilStopRequested()
{
    std::unique_lock<std::mutex> lock(stopMu_);
    stopCv_.wait(lock, [this] { return stopRequested(); });
}

void
CompileServer::stop()
{
    if (!started_ || joined_)
        return;
    requestStop();
    if (acceptThread_.joinable())
        acceptThread_.join();
    std::vector<std::unique_ptr<Session>> sessions;
    {
        std::lock_guard<std::mutex> lock(registryMu_);
        sessions.swap(sessions_);
    }
    // Graceful drain: requestStop() only shut the read side, so
    // sessions finish flushing in-flight replies. Give them a bounded
    // window, then force-close writers stuck on a peer that stopped
    // reading — joins below must never hang on one.
    using Clock = std::chrono::steady_clock;
    const Clock::time_point deadline =
        Clock::now() +
        std::chrono::milliseconds(
            options_.drainTimeoutMs > 0 ? options_.drainTimeoutMs : 0);
    for (;;) {
        bool draining = false;
        for (const auto& session : sessions)
            if (session->thread.joinable() &&
                !session->done.load(std::memory_order_acquire))
                draining = true;
        if (!draining || Clock::now() >= deadline)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    for (const auto& session : sessions)
        if (!session->done.load(std::memory_order_acquire) &&
            session->fd >= 0)
            ::shutdown(session->fd, SHUT_RDWR);
    for (const auto& session : sessions) {
        if (session->thread.joinable())
            session->thread.join();
        closeIfOpen(session->fd);
    }
    // Rewarm threads last: only session handlers spawn them, so none
    // can appear once every session is joined — and the stopped gate
    // unblocks any still waiting at waitBulkTurn().
    std::vector<std::thread> rewarm;
    {
        std::lock_guard<std::mutex> lock(rewarmMu_);
        rewarm.swap(rewarmThreads_);
    }
    for (std::thread& thread : rewarm)
        if (thread.joinable())
            thread.join();
    closeIfOpen(unixFd_);
    closeIfOpen(tcpFd_);
    if (!options_.socketPath.empty())
        ::unlink(options_.socketPath.c_str());
    joined_ = true;
}

void
CompileServer::reapFinishedSessionsLocked()
{
    auto alive = sessions_.begin();
    for (auto it = sessions_.begin(); it != sessions_.end(); ++it) {
        if ((*it)->done.load(std::memory_order_acquire)) {
            if ((*it)->thread.joinable())
                (*it)->thread.join();
            closeIfOpen((*it)->fd);
        } else {
            if (alive != it)
                *alive = std::move(*it);
            ++alive;
        }
    }
    sessions_.erase(alive, sessions_.end());
}

void
CompileServer::acceptLoop()
{
    using Clock = std::chrono::steady_clock;
    int backoff_ms = 0;
    Clock::time_point last_warn{};
    while (!stopRequested()) {
        pollfd fds[2];
        nfds_t n = 0;
        if (unixFd_ >= 0)
            fds[n++] = pollfd{unixFd_, POLLIN, 0};
        if (tcpFd_ >= 0)
            fds[n++] = pollfd{tcpFd_, POLLIN, 0};
        const int ready = ::poll(fds, n, kAcceptPollMs);
        if (stopRequested())
            break;
        if (ready <= 0)
            continue;
        for (nfds_t i = 0; i < n; ++i) {
            if (!(fds[i].revents & (POLLIN | POLLHUP | POLLERR)))
                continue;
            const int fd = ::accept(fds[i].fd, nullptr, nullptr);
            if (fd < 0) {
                const int err = errno;
                // A connection that vanished between poll and accept
                // (or a signal) is routine, not a failure.
                if (err == EINTR || err == EAGAIN ||
                    err == EWOULDBLOCK || err == ECONNABORTED)
                    continue;
                // Persistent failure (EMFILE/ENFILE...): the listener
                // stays readable, so without a backoff this loop
                // busy-polls at 100% CPU until fds free up.
                acceptFailures_.fetch_add(1, std::memory_order_relaxed);
                const Clock::time_point now = Clock::now();
                if (now - last_warn >= std::chrono::seconds(1)) {
                    last_warn = now;
                    warn("accept failed: ", std::strerror(err),
                         " (backing off ",
                         backoff_ms > 0 ? backoff_ms
                                        : kAcceptBackoffMinMs,
                         " ms)");
                }
                backoff_ms = backoff_ms == 0
                                 ? kAcceptBackoffMinMs
                                 : std::min(backoff_ms * 2,
                                            kAcceptBackoffMaxMs);
                // Sleep in slices so shutdown stays responsive.
                for (int slept = 0;
                     slept < backoff_ms && !stopRequested();
                     slept += kAcceptBackoffMinMs)
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(kAcceptBackoffMinMs));
                break;
            }
            backoff_ms = 0;
            if (fds[i].fd == tcpFd_)
                setTcpNoDelay(fd);
            connectionsAccepted_.fetch_add(1,
                                           std::memory_order_relaxed);
            connectionsActive_.fetch_add(1, std::memory_order_relaxed);
            std::lock_guard<std::mutex> lock(registryMu_);
            // Reap before growing: a long-lived daemon must not hold
            // one dead fd + joinable thread per connection it ever
            // served.
            reapFinishedSessionsLocked();
            if (stopRequested()) {
                // Raced with requestStop() after its fd sweep: this
                // socket would never be shut down, leaving stop()
                // joining a session blocked in read. Refuse it.
                ::close(fd);
                connectionsActive_.fetch_sub(
                    1, std::memory_order_relaxed);
                continue;
            }
            if (options_.maxSessions > 0 &&
                sessions_.size() >=
                    static_cast<std::size_t>(options_.maxSessions)) {
                shedConnection(fd);
                continue;
            }
            sessions_.push_back(std::make_unique<Session>());
            Session* session = sessions_.back().get();
            session->fd = fd;
            session->thread =
                std::thread([this, session] { sessionLoop(session); });
        }
    }
}

void
CompileServer::shedConnection(int fd)
{
    busyRejections_.fetch_add(1, std::memory_order_relaxed);
    WireWriter w = beginMessage(MsgType::Error);
    w.u32(static_cast<std::uint32_t>(WireError::Busy));
    w.str("server at session capacity");
    FrameError why = FrameError::None;
    writeFrame(fd, w.bytes(), kShedWriteMs, &why);
    // Drain whatever the peer already sent (its Hello, typically):
    // closing a TCP socket with unread data sends RST, which would
    // destroy the Busy frame before the client reads it.
    std::uint8_t sink[512];
    while (::recv(fd, sink, sizeof(sink), MSG_DONTWAIT) > 0) {
    }
    ::close(fd);
    connectionsActive_.fetch_sub(1, std::memory_order_relaxed);
}

void
CompileServer::sessionLoop(Session* session)
{
    std::shared_ptr<Tenant> tenant;
    while (!stopRequested()) {
        FrameError why = FrameError::None;
        std::optional<std::vector<std::uint8_t>> payload =
            readFrame(session->fd, options_.idleTimeoutMs, &why);
        // EOF, disconnect mid-frame, or a hostile length prefix: the
        // framing on this connection cannot be trusted any further, so
        // the session ends — other tenants' sessions are untouched.
        // A deadline expiry is the idle reap: a half-open peer (or
        // one that trickles a partial frame and goes silent) must not
        // hold this thread + fd forever.
        if (!payload) {
            if (why == FrameError::Timeout)
                sessionsReapedIdle_.fetch_add(
                    1, std::memory_order_relaxed);
            break;
        }
        if (!handleFrame(*session, tenant, *payload))
            break;
    }
    // FIN the peer now (it may be blocked on a reply); the fd itself
    // stays open until the reaper or stop() joins this thread.
    ::shutdown(session->fd, SHUT_RDWR);
    connectionsActive_.fetch_sub(1, std::memory_order_relaxed);
    session->done.store(true, std::memory_order_release);
}

std::shared_ptr<CompileServer::Tenant>
CompileServer::internTenant(const std::string& name)
{
    std::lock_guard<std::mutex> lock(registryMu_);
    auto it = tenants_.find(name);
    if (it != tenants_.end())
        return it->second;
    auto tenant = std::make_shared<Tenant>();
    tenant->name = name;
    tenant->id = nextTenantId_++;
    tenant->serveNs = &registry_.histogram(
        "qpc_tenant_serve_us{tenant=\"" + promLabelEscape(name) +
        "\"}");
    tenants_.emplace(name, tenant);
    return tenant;
}

bool
CompileServer::sendFrame(int fd, const std::vector<std::uint8_t>& payload)
{
    FrameError why = FrameError::None;
    return writeFrame(fd, payload, options_.idleTimeoutMs, &why);
}

bool
CompileServer::sendError(int fd, WireError code,
                         const std::string& message)
{
    WireWriter w = beginMessage(MsgType::Error);
    w.u32(static_cast<std::uint32_t>(code));
    w.str(message);
    return sendFrame(fd, w.bytes());
}

bool
CompileServer::handleFrame(Session& session,
                           std::shared_ptr<Tenant>& tenant,
                           const std::vector<std::uint8_t>& payload)
{
    const std::optional<MsgType> type = peekMessage(payload);
    if (!type) {
        // Unknown version or type: this peer speaks something else;
        // error and hang up rather than guess at its framing.
        protocolErrors_.fetch_add(1, std::memory_order_relaxed);
        sendError(session.fd, WireError::BadRequest,
                  "unknown protocol version or message type");
        return false;
    }
    const std::uint64_t t0 = traceNowNs();
    const bool keep = handleRequest(session, tenant, *type, payload);
    const std::uint64_t t1 = traceNowNs();
    // Reply types sent as requests land in handleRequest's default
    // arm and have no histogram; every real request type has one.
    const auto index = static_cast<std::uint8_t>(*type);
    if (index < sizeof(handleNs_) / sizeof(handleNs_[0]) &&
        handleNs_[index] != nullptr)
        handleNs_[index]->record(t1 > t0 ? t1 - t0 : 0);
    return keep;
}

bool
CompileServer::handleRequest(Session& session,
                             std::shared_ptr<Tenant>& tenant,
                             MsgType type,
                             const std::vector<std::uint8_t>& payload)
{
    WireReader r(payload);
    r.u8(); // version, validated by peekMessage
    r.u8(); // type

    // A malformed *body* inside a well-framed payload: report and keep
    // the connection (framing is still in sync).
    const auto badBody = [&](const std::string& what) {
        protocolErrors_.fetch_add(1, std::memory_order_relaxed);
        return sendError(session.fd, WireError::BadRequest, what);
    };

    switch (type) {
    case MsgType::Hello: {
        const std::string name = r.str();
        if (!r.done() || name.empty() || name.size() > kMaxTenantName)
            return badBody("malformed Hello");
        tenant = internTenant(name);
        WireWriter w = beginMessage(MsgType::HelloOk);
        w.u32(tenant->id);
        w.u64(options_.quota.maxPlans);
        w.u64(options_.quota.maxServedBytes);
        w.u64(options_.quota.maxConcurrentBulk);
        const CalibrationEpoch epoch = service_.epoch();
        w.u64(epoch.counter);
        w.u64(epoch.modelHash);
        return sendFrame(session.fd, w.bytes());
    }

    case MsgType::PrepareServing: {
        if (!tenant)
            return sendError(session.fd, WireError::BadRequest,
                             "Hello required before PrepareServing");
        std::optional<Circuit> circuit = decodeCircuit(r);
        if (!circuit || !r.done())
            return badBody("malformed PrepareServing circuit");
        {
            std::lock_guard<std::mutex> lock(tenant->mu);
            if (tenant->plans.size() >= options_.quota.maxPlans) {
                tenant->quotaRejections.fetch_add(
                    1, std::memory_order_relaxed);
                return sendError(session.fd, WireError::QuotaExceeded,
                                 "tenant plan quota exhausted");
            }
        }
        // Partition + fingerprint outside the tenant lock: this is
        // the expensive half, and other sessions of the tenant must
        // keep serving while it runs.
        Tenant::PlanEntry entry;
        entry.numParams = circuit->numParams();
        entry.circuit = std::make_shared<const Circuit>(*circuit);
        try {
            const StrictPartition partition = strictPartition(*circuit);
            entry.plan = std::make_shared<const ServingPlan>(
                service_.prepareServing(partition));
        } catch (const std::exception& e) {
            return sendError(session.fd, WireError::Internal,
                             e.what());
        }
        std::uint64_t plan_id = 0;
        {
            std::lock_guard<std::mutex> lock(tenant->mu);
            if (tenant->plans.size() >= options_.quota.maxPlans) {
                tenant->quotaRejections.fetch_add(
                    1, std::memory_order_relaxed);
                return sendError(session.fd, WireError::QuotaExceeded,
                                 "tenant plan quota exhausted");
            }
            plan_id = tenant->nextPlanId++;
            tenant->plans.emplace(plan_id, entry);
        }
        WireWriter w = beginMessage(MsgType::PrepareOk);
        w.u64(plan_id);
        w.u32(static_cast<std::uint32_t>(
            entry.plan->numFixedBlocks()));
        w.u32(static_cast<std::uint32_t>(entry.plan->numParamGates()));
        return sendFrame(session.fd, w.bytes());
    }

    case MsgType::Prewarm: {
        if (!tenant)
            return sendError(session.fd, WireError::BadRequest,
                             "Hello required before Prewarm");
        const std::uint64_t plan_id = r.u64();
        if (!r.done())
            return badBody("malformed Prewarm");
        std::shared_ptr<const ServingPlan> plan;
        {
            std::lock_guard<std::mutex> lock(tenant->mu);
            auto it = tenant->plans.find(plan_id);
            if (it != tenant->plans.end())
                plan = it->second.plan;
        }
        if (!plan)
            return sendError(session.fd, WireError::NotFound,
                             "unknown plan id");
        // Bulk class: bounded per tenant, and it yields to every
        // pending interactive serve before touching the worker pool.
        const std::uint64_t bulk_before =
            tenant->activeBulk.fetch_add(1, std::memory_order_relaxed);
        if (bulk_before >= options_.quota.maxConcurrentBulk) {
            tenant->activeBulk.fetch_sub(1, std::memory_order_relaxed);
            tenant->quotaRejections.fetch_add(
                1, std::memory_order_relaxed);
            return sendError(session.fd, WireError::QuotaExceeded,
                             "tenant bulk quota exhausted");
        }
        if (!gate_.waitBulkTurn()) {
            tenant->activeBulk.fetch_sub(1, std::memory_order_relaxed);
            sendError(session.fd, WireError::ShuttingDown,
                      "server is shutting down");
            return false;
        }
        BatchCompileReport fixed, bins;
        try {
            fixed = service_.precompilePlan(*plan);
            bins = service_.prewarmQuantizedBins(*plan);
        } catch (const std::exception& e) {
            tenant->activeBulk.fetch_sub(1, std::memory_order_relaxed);
            return sendError(session.fd, WireError::Internal,
                             e.what());
        }
        tenant->activeBulk.fetch_sub(1, std::memory_order_relaxed);
        tenant->prewarms.fetch_add(1, std::memory_order_relaxed);
        WireWriter w = beginMessage(MsgType::PrewarmOk);
        w.u32(static_cast<std::uint32_t>(fixed.uniqueBlocks +
                                         bins.uniqueBlocks));
        w.u64(fixed.synthRuns + bins.synthRuns);
        w.u64(fixed.cacheHits + bins.cacheHits);
        w.f64(fixed.wallSeconds + bins.wallSeconds);
        return sendFrame(session.fd, w.bytes());
    }

    case MsgType::Serve: {
        if (!tenant)
            return sendError(session.fd, WireError::BadRequest,
                             "Hello required before Serve");
        const std::uint64_t plan_id = r.u64();
        const bool want_pulses = r.u8() != 0;
        const std::uint32_t n = r.u32();
        if (!r.ok() || n > kMaxThetaLen)
            return badBody("malformed Serve");
        std::vector<double> theta(n);
        for (std::uint32_t i = 0; i < n; ++i)
            theta[i] = r.f64();
        if (!r.done())
            return badBody("malformed Serve");
        for (double t : theta)
            if (!std::isfinite(t))
                return badBody("non-finite theta");
        Tenant::PlanEntry entry;
        {
            std::lock_guard<std::mutex> lock(tenant->mu);
            auto it = tenant->plans.find(plan_id);
            if (it != tenant->plans.end())
                entry = it->second;
        }
        if (!entry.plan)
            return sendError(session.fd, WireError::NotFound,
                             "unknown plan id");
        // Validated here because ParamExpr::bind treats a short theta
        // as a fatal() — a user error must error this request, not
        // take the daemon down.
        if (static_cast<int>(theta.size()) < entry.numParams)
            return badBody("theta shorter than the plan's parameters");
        if (options_.quota.maxServedBytes > 0 &&
            tenant->servedBytes.load(std::memory_order_relaxed) >=
                options_.quota.maxServedBytes) {
            tenant->quotaRejections.fetch_add(
                1, std::memory_order_relaxed);
            return sendError(session.fd, WireError::QuotaExceeded,
                             "tenant served-bytes quota exhausted");
        }
        ServedPulse served;
        {
            // The span covers the gate plus the service call, so its
            // children (cache-probe, synthesis-wait, and — through
            // the pool's parent chaining — queue-wait and synthesis)
            // nest under one "serve" per request. The phase capture
            // collects those same child durations for the slow-serve
            // log; it only pays its per-span cost when the knob is
            // actually on.
            TraceSpan span("serve");
            if (span.tracing()) {
                span.arg("tenant", tenant->name);
                span.arg("plan", std::to_string(plan_id));
            }
            std::optional<ScopedPhaseCapture> phases;
            if (options_.slowServeThresholdUs > 0)
                phases.emplace();
            const std::uint64_t t0 = traceNowNs();
            gate_.beginServe();
            try {
                served = service_.serve(*entry.plan, theta);
            } catch (const std::exception& e) {
                gate_.endServe();
                return sendError(session.fd, WireError::Internal,
                                 e.what());
            }
            gate_.endServe();
            const std::uint64_t t1 = traceNowNs();
            const std::uint64_t serve_ns = t1 > t0 ? t1 - t0 : 0;
            tenant->serveNs->record(serve_ns);
            if (phases &&
                serve_ns >= options_.slowServeThresholdUs * 1000) {
                warn("slow-serve tenant=", tenant->name,
                     " plan=", plan_id,
                     " total_us=", serve_ns / 1000,
                     " segments=", served.segments.size(), " ",
                     phases->breakdown().summary());
            }
        }
        std::uint64_t bytes = 0;
        for (const PulsePtr& segment : served.segments)
            bytes += segment->serializedBytes();
        tenant->serves.fetch_add(1, std::memory_order_relaxed);
        tenant->serveHits.fetch_add(served.cacheHits +
                                        served.quantHits,
                                    std::memory_order_relaxed);
        tenant->serveMisses.fetch_add(served.cacheMisses +
                                          served.quantMisses +
                                          served.exactServes,
                                      std::memory_order_relaxed);
        tenant->servedBytes.fetch_add(bytes,
                                      std::memory_order_relaxed);
        WireWriter w = beginMessage(MsgType::ServeOk);
        w.f64(served.pulseNs);
        w.u64(served.cacheHits);
        w.u64(served.cacheMisses);
        w.u64(served.quantHits);
        w.u64(served.quantMisses);
        w.u64(served.exactServes);
        w.f64(served.quantErrorBound);
        // The *plan's* epoch, not the server's: after a bump it lags
        // until rekeyPlansForEpoch swaps the plan, which is exactly
        // the drift a fleet client wants to observe.
        w.u64(entry.plan->epoch().counter);
        w.u32(static_cast<std::uint32_t>(served.segments.size()));
        if (want_pulses)
            for (const PulsePtr& segment : served.segments)
                w.blob(serializePulseSchedule(*segment));
        return sendFrame(session.fd, w.bytes());
    }

    case MsgType::Stats: {
        WireWriter w = beginMessage(MsgType::StatsOk);
        encodeServerStats(w, statsSnapshot());
        return sendFrame(session.fd, w.bytes());
    }

    case MsgType::Metrics: {
        if (!r.done()) {
            protocolErrors_.fetch_add(1, std::memory_order_relaxed);
            return sendError(session.fd, WireError::BadRequest,
                             "malformed Metrics body");
        }
        WireWriter w = beginMessage(MsgType::MetricsOk);
        encodeMetrics(w, metricsSnapshot());
        return sendFrame(session.fd, w.bytes());
    }

    case MsgType::Shutdown: {
        WireWriter w = beginMessage(MsgType::ShutdownOk);
        sendFrame(session.fd, w.bytes());
        // requestStop() is async-safe from this session thread; the
        // join happens in stop() on the daemon's main thread.
        requestStop();
        return false;
    }

    case MsgType::BumpEpoch: {
        const std::uint64_t model_hash = r.u64();
        if (!r.done())
            return badBody("malformed BumpEpoch");
        // Advance the epoch first: every fingerprint minted from here
        // on carries it. Old plans keep serving their old-epoch
        // records (put() stamps by fingerprint epoch) until swapped.
        const CalibrationEpoch epoch = service_.bumpEpoch(model_hash);
        epochBumps_.fetch_add(1, std::memory_order_relaxed);
        std::vector<std::shared_ptr<const ServingPlan>> rekeyed;
        const std::uint32_t plans_rekeyed = rekeyPlansForEpoch(rekeyed);
        rewarmPlansAsync(std::move(rekeyed));
        WireWriter w = beginMessage(MsgType::BumpEpochOk);
        w.u64(epoch.counter);
        w.u64(epoch.modelHash);
        w.u32(plans_rekeyed);
        return sendFrame(session.fd, w.bytes());
    }

    default:
        // A reply type sent as a request.
        protocolErrors_.fetch_add(1, std::memory_order_relaxed);
        sendError(session.fd, WireError::BadRequest,
                  "reply type sent as a request");
        return false;
    }
}

std::uint32_t
CompileServer::rekeyPlansForEpoch(
    std::vector<std::shared_ptr<const ServingPlan>>& rekeyed)
{
    // Snapshot the work list under the locks, prepare outside them:
    // re-preparing fingerprints every block of every plan, and serves
    // must keep flowing while that runs.
    struct Item
    {
        std::shared_ptr<Tenant> tenant;
        std::uint64_t planId = 0;
        std::shared_ptr<const Circuit> circuit;
    };
    std::vector<Item> items;
    {
        std::lock_guard<std::mutex> lock(registryMu_);
        for (const auto& [name, tenant] : tenants_) {
            std::lock_guard<std::mutex> plan_lock(tenant->mu);
            for (const auto& [id, entry] : tenant->plans)
                if (entry.circuit)
                    items.push_back({tenant, id, entry.circuit});
        }
    }
    std::uint32_t swapped = 0;
    for (Item& item : items) {
        std::shared_ptr<const ServingPlan> plan;
        try {
            const StrictPartition partition =
                strictPartition(*item.circuit);
            plan = std::make_shared<const ServingPlan>(
                service_.prepareServing(partition));
        } catch (const std::exception& e) {
            warn("epoch rekey failed for tenant=", item.tenant->name,
                 " plan=", item.planId, ": ", e.what());
            continue;
        }
        {
            std::lock_guard<std::mutex> plan_lock(item.tenant->mu);
            auto it = item.tenant->plans.find(item.planId);
            // Dropped meanwhile (tenant quota churn): nothing to swap.
            if (it == item.tenant->plans.end())
                continue;
            it->second.plan = plan;
        }
        rekeyed.push_back(std::move(plan));
        ++swapped;
    }
    return swapped;
}

void
CompileServer::rewarmPlansAsync(
    std::vector<std::shared_ptr<const ServingPlan>> plans)
{
    if (plans.empty())
        return;
    const std::uint64_t t0 = traceNowNs();
    std::thread thread([this, plans = std::move(plans), t0] {
        for (const std::shared_ptr<const ServingPlan>& plan : plans) {
            // Bulk class, exactly like a wire Prewarm: every pending
            // interactive serve goes first, and a stopped gate means
            // shutdown — bins left cold just synthesize on demand.
            if (!gate_.waitBulkTurn())
                return;
            try {
                service_.precompilePlan(*plan);
                service_.prewarmQuantizedBins(*plan);
            } catch (const std::exception& e) {
                warn("epoch rewarm failed: ", e.what());
                return;
            }
        }
        const std::uint64_t t1 = traceNowNs();
        epochRecoveryNs_->record(t1 > t0 ? t1 - t0 : 0);
    });
    std::lock_guard<std::mutex> lock(rewarmMu_);
    rewarmThreads_.push_back(std::move(thread));
}

ServingSnapshot
CompileServer::snapshotServing() const
{
    ServingSnapshot snapshot;
    snapshot.epoch = service_.epoch();
    std::lock_guard<std::mutex> lock(registryMu_);
    for (const auto& [name, tenant] : tenants_) {
        std::lock_guard<std::mutex> plan_lock(tenant->mu);
        for (const auto& [id, entry] : tenant->plans)
            if (entry.circuit)
                snapshot.plans.push_back(
                    SnapshotPlan{name, *entry.circuit});
    }
    return snapshot;
}

SnapshotRestoreReport
CompileServer::restoreServing(const ServingSnapshot& snapshot)
{
    SnapshotRestoreReport report;
    const auto start = std::chrono::steady_clock::now();
    // Epoch first: the whole point is that plans prepared below mint
    // the same fingerprints — hence the same disk-tier filenames — as
    // the fleet that wrote the snapshot.
    service_.setEpoch(snapshot.epoch);
    for (const SnapshotPlan& snap_plan : snapshot.plans) {
        std::shared_ptr<Tenant> tenant = internTenant(snap_plan.tenant);
        Tenant::PlanEntry entry;
        entry.numParams = snap_plan.circuit.numParams();
        entry.circuit =
            std::make_shared<const Circuit>(snap_plan.circuit);
        try {
            const StrictPartition partition =
                strictPartition(snap_plan.circuit);
            entry.plan = std::make_shared<const ServingPlan>(
                service_.prepareServing(partition));
            const BatchCompileReport fixed =
                service_.precompilePlan(*entry.plan);
            const BatchCompileReport bins =
                service_.prewarmQuantizedBins(*entry.plan);
            report.uniqueBlocks += fixed.uniqueBlocks +
                                   bins.uniqueBlocks;
            report.cacheHits += fixed.cacheHits + bins.cacheHits;
            report.synthRuns += fixed.synthRuns + bins.synthRuns;
        } catch (const std::exception& e) {
            warn("snapshot restore failed for tenant=",
                 snap_plan.tenant, ": ", e.what());
            continue;
        }
        {
            std::lock_guard<std::mutex> plan_lock(tenant->mu);
            tenant->plans.emplace(tenant->nextPlanId++,
                                  std::move(entry));
        }
        ++report.plans;
    }
    report.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    return report;
}

WireServerStats
CompileServer::statsSnapshot() const
{
    WireServerStats out;
    out.connectionsAccepted =
        connectionsAccepted_.load(std::memory_order_relaxed);
    out.connectionsActive =
        connectionsActive_.load(std::memory_order_relaxed);
    out.protocolErrors =
        protocolErrors_.load(std::memory_order_relaxed);
    out.bulkYields = gate_.bulkYields();
    out.acceptFailures =
        acceptFailures_.load(std::memory_order_relaxed);
    out.busyRejections =
        busyRejections_.load(std::memory_order_relaxed);
    out.sessionsReapedIdle =
        sessionsReapedIdle_.load(std::memory_order_relaxed);

    const ServiceStats service = service_.stats();
    out.requests = service.requests;
    out.cacheHits = service.cacheHits;
    out.coalesced = service.coalesced;
    out.synthRuns = service.synthRuns;
    out.rejected = service.rejected;
    out.exactServes = service.exactServes;
    out.quantHits = service.quantHits;
    out.quantMisses = service.quantMisses;
    out.quantFallbacks = service.quantFallbacks;

    const CacheStats cache = service_.cacheStats();
    out.cacheLookups = cache.lookups;
    out.cacheMemHits = cache.hits;
    out.cacheDiskHits = cache.diskHits;
    out.cacheMisses = cache.misses;
    out.cacheEntries = cache.entries;
    out.cacheBytesInUse = cache.bytesInUse;

    std::lock_guard<std::mutex> lock(registryMu_);
    out.tenants.reserve(tenants_.size());
    for (const auto& [name, tenant] : tenants_) {
        WireTenantStats t;
        t.tenant = name;
        {
            std::lock_guard<std::mutex> plan_lock(tenant->mu);
            t.plans = tenant->plans.size();
        }
        t.serves = tenant->serves.load(std::memory_order_relaxed);
        t.prewarms = tenant->prewarms.load(std::memory_order_relaxed);
        t.serveHits =
            tenant->serveHits.load(std::memory_order_relaxed);
        t.serveMisses =
            tenant->serveMisses.load(std::memory_order_relaxed);
        t.servedBytes =
            tenant->servedBytes.load(std::memory_order_relaxed);
        t.quotaRejections =
            tenant->quotaRejections.load(std::memory_order_relaxed);
        out.tenants.push_back(std::move(t));
    }
    return out;
}

MetricsSnapshot
CompileServer::metricsSnapshot() const
{
    // The registry already holds the per-frame-type handle histograms
    // and per-tenant serve histograms; everything else is assembled
    // from the same sources statsSnapshot() reads, under stable names.
    MetricsSnapshot out = registry_.collect();

    const WireServerStats stats = statsSnapshot();
    const auto counter = [&](const char* name, std::uint64_t v) {
        out.counters.push_back({name, v});
    };
    const auto gauge = [&](const char* name, double v) {
        out.gauges.push_back({name, v});
    };
    counter("qpc_server_connections_accepted_total",
            stats.connectionsAccepted);
    counter("qpc_server_protocol_errors_total", stats.protocolErrors);
    counter("qpc_server_bulk_yields_total", stats.bulkYields);
    counter("qpc_server_accept_failures_total", stats.acceptFailures);
    counter("qpc_server_busy_rejections_total", stats.busyRejections);
    counter("qpc_server_sessions_reaped_idle_total",
            stats.sessionsReapedIdle);
    counter("qpc_service_requests_total", stats.requests);
    counter("qpc_service_cache_hits_total", stats.cacheHits);
    counter("qpc_service_coalesced_total", stats.coalesced);
    counter("qpc_service_synth_runs_total", stats.synthRuns);
    counter("qpc_service_rejected_total", stats.rejected);
    counter("qpc_service_exact_serves_total", stats.exactServes);
    counter("qpc_service_quant_hits_total", stats.quantHits);
    counter("qpc_service_quant_misses_total", stats.quantMisses);
    counter("qpc_service_quant_fallbacks_total", stats.quantFallbacks);
    counter("qpc_cache_lookups_total", stats.cacheLookups);
    counter("qpc_cache_mem_hits_total", stats.cacheMemHits);
    counter("qpc_cache_disk_hits_total", stats.cacheDiskHits);
    counter("qpc_cache_misses_total", stats.cacheMisses);
    counter("qpc_epoch_bumps_total",
            epochBumps_.load(std::memory_order_relaxed));
    gauge("qpc_calibration_epoch",
          static_cast<double>(service_.epoch().counter));
    gauge("qpc_server_connections_active",
          static_cast<double>(stats.connectionsActive));
    gauge("qpc_cache_entries", static_cast<double>(stats.cacheEntries));
    gauge("qpc_cache_bytes_in_use",
          static_cast<double>(stats.cacheBytesInUse));

    for (const WireTenantStats& t : stats.tenants) {
        const std::string labels =
            "{tenant=\"" + promLabelEscape(t.tenant) + "\"}";
        out.counters.push_back(
            {"qpc_tenant_serves_total" + labels, t.serves});
        out.counters.push_back(
            {"qpc_tenant_served_bytes_total" + labels, t.servedBytes});
        out.counters.push_back(
            {"qpc_tenant_quota_rejections_total" + labels,
             t.quotaRejections});
        out.gauges.push_back(
            {"qpc_tenant_hit_rate" + labels, t.hitRate()});
    }

    const ServiceTelemetry telemetry = service_.telemetry();
    const auto histogram = [&](const char* name,
                               const HistogramSnapshot& snap) {
        out.histograms.push_back({name, snap});
    };
    histogram("qpc_serve_us", telemetry.serveNs);
    histogram("qpc_prepare_serving_us", telemetry.prepareNs);
    histogram("qpc_synthesis_us", telemetry.synthNs);
    histogram("qpc_queue_wait_us", telemetry.queueWaitNs);
    histogram("qpc_job_run_us", telemetry.jobRunNs);
    histogram("qpc_cache_get_us", telemetry.cacheGetNs);
    histogram("qpc_cache_put_us", telemetry.cachePutNs);
    histogram("qpc_disk_read_us", telemetry.diskReadNs);
    histogram("qpc_disk_write_us", telemetry.diskWriteNs);

    out.sortByName();
    return out;
}

} // namespace qpc
