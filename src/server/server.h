/**
 * @file
 * The multi-tenant compile server daemon core.
 *
 * Promotes the in-process CompileService to a long-running network
 * service: clients connect over a unix-domain socket (TCP behind a
 * flag), identify a tenant with Hello, upload a variational template
 * with PrepareServing, warm it with Prewarm, and then run their hybrid
 * loop through Serve — every tenant sharing one content-addressed
 * pulse cache, so identical blocks across tenants cost one synthesis
 * total.
 *
 * Multi-tenant fairness layers on the PR 4 resource bounds:
 *  - per-tenant quotas: a plan-count cap, a served-bytes (egress)
 *    budget, and a concurrent-bulk cap, each refused with a
 *    QuotaExceeded error frame instead of degrading other tenants;
 *  - two request classes: interactive Serve traffic preempts bulk
 *    Prewarm work — a prewarm waits at the PriorityGate until no
 *    serve is pending, so grid warming never sits in front of a
 *    latency-sensitive optimizer iteration;
 *  - observability: a Stats frame snapshots the shared
 *    ServiceStats/CacheStats plus per-tenant counters (hit rates,
 *    served bytes, quota rejections).
 *
 * Failure containment: a malformed frame or body errors that one
 * connection; every other session keeps serving. Shutdown (frame or
 * SIGTERM via requestStop()) drains sessions and joins every thread —
 * the ThreadPool's shutdown-wake submit() semantics make that clean
 * even with producers blocked on a full synthesis queue.
 */

#ifndef QPC_SERVER_SERVER_H
#define QPC_SERVER_SERVER_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "runtime/service.h"
#include "server/protocol.h"
#include "server/snapshot.h"
#include "telemetry/metrics.h"

namespace qpc {

/** Per-tenant fairness bounds (0 = unlimited where noted). */
struct TenantQuota
{
    /** Serving plans a tenant may hold at once. */
    std::uint64_t maxPlans = 64;
    /**
     * Lifetime cap on serialized pulse bytes served to the tenant
     * (0 = unlimited): the egress half of cache-budget attribution,
     * so one hot tenant cannot monopolize the shared compile
     * capacity unmetered.
     */
    std::uint64_t maxServedBytes = 0;
    /** Concurrent bulk (Prewarm) requests a tenant may run. */
    std::uint64_t maxConcurrentBulk = 2;
};

/** Configuration of one CompileServer. */
struct CompileServerOptions
{
    /** Unix-domain listen path; empty disables the unix listener. */
    std::string socketPath;
    /**
     * Optional loopback TCP listener: 0 disables, -1 binds an
     * ephemeral port (read it back via boundTcpPort()), otherwise the
     * given port.
     */
    int tcpPort = 0;
    /** listen(2) backlog. */
    int listenBacklog = 64;
    /** The shared compile service every tenant serves through. */
    CompileServiceOptions service;
    /** Quota applied to each tenant. */
    TenantQuota quota;
    /**
     * Serve handling slower than this logs one structured
     * "slow-serve" warn() line with the span breakdown (where the
     * time went: cache probes, synthesis waits, exact synthesis).
     * 0 disables the log.
     */
    std::uint64_t slowServeThresholdUs = 0;
    /**
     * Reap a session whose peer sends nothing for this long (and
     * bound every reply write by the same budget), so a half-open or
     * stalled connection cannot pin a thread + fd forever. 0 = never
     * (legacy blocking reads).
     */
    int idleTimeoutMs = 0;
    /**
     * Live-session cap: a connection past it is shed with a Busy
     * error frame instead of accepted unboundedly (thread-per-
     * connection makes each session a real thread). 0 = unlimited.
     */
    int maxSessions = 0;
    /**
     * stop() grace window for in-flight replies after requestStop()'s
     * read-side shutdown, before remaining session sockets are
     * force-closed.
     */
    int drainTimeoutMs = 5000;
};

/**
 * Two-class admission: interactive serves preempt bulk prewarms.
 * Serves never wait here; a bulk request waits until no serve is
 * pending. Factored out (and exercised directly in tests) because the
 * ordering argument is easiest to make on the gate alone.
 */
class PriorityGate
{
  public:
    /** An interactive request entered the server. Never blocks. */
    void beginServe();
    /** It finished; the last one out releases waiting bulk work. */
    void endServe();
    /**
     * Block a bulk request until no interactive request is pending.
     * Returns false when the gate was stopped instead (shutdown).
     */
    bool waitBulkTurn();
    /** Release every waiter (shutdown path). */
    void stop();

    /** Bulk requests that had to wait at least once. */
    std::uint64_t bulkYields() const;
    /** Interactive requests currently pending. */
    int pendingServes() const;

  private:
    mutable std::mutex mu_;
    std::condition_variable cv_;
    int pendingServes_ = 0;
    std::uint64_t bulkYields_ = 0;
    bool stopped_ = false;
};

/** What restoring a serving snapshot accomplished. */
struct SnapshotRestoreReport
{
    std::size_t plans = 0;          ///< Plans re-prepared.
    std::uint64_t uniqueBlocks = 0; ///< Blocks prewarmed across plans.
    std::uint64_t cacheHits = 0;    ///< Blocks found warm (disk tier).
    std::uint64_t synthRuns = 0;    ///< Blocks synthesized cold.
    double wallSeconds = 0.0;

    /** Warm fraction of the restore's prewarm: ~1.0 when the replica
     * shares (or copied) the fleet's disk tier under the snapshot's
     * epoch; ~0.0 on a cold boot. */
    double
    hitRate() const
    {
        return uniqueBlocks
                   ? static_cast<double>(cacheHits) /
                         static_cast<double>(uniqueBlocks)
                   : 0.0;
    }
};

/** A long-running, multi-tenant compile server. */
class CompileServer
{
  public:
    explicit CompileServer(CompileServerOptions options);
    /** stop()s if still running. */
    ~CompileServer();

    CompileServer(const CompileServer&) = delete;
    CompileServer& operator=(const CompileServer&) = delete;

    /**
     * Bind the configured listeners and start accepting sessions.
     * fatal() on bind/listen failure (daemon startup is user-facing
     * configuration).
     */
    void start();

    /**
     * Initiate shutdown without joining: stops the listeners, wakes
     * the priority gate, and shuts down every live session socket.
     * Safe to call from a session thread (the Shutdown frame handler)
     * or any other; idempotent.
     */
    void requestStop();

    /**
     * Full shutdown: requestStop(), then join the accept loop and
     * every session thread. Must not be called from a session thread.
     * Idempotent; the destructor calls it.
     */
    void stop();

    /** True once requestStop() has been called. */
    bool stopRequested() const;

    /** Block until requestStop() is called (frame, signal, or peer). */
    void waitUntilStopRequested();

    /** Actual TCP port after start() when tcpPort was -1 (else as
     * configured; 0 when the TCP listener is disabled). */
    int boundTcpPort() const;

    /** Snapshot everything a StatsOk frame carries. */
    WireServerStats statsSnapshot() const;

    /**
     * Snapshot everything a MetricsOk frame carries: the registry's
     * per-frame-type and per-tenant histograms, counters/gauges
     * mirroring statsSnapshot(), and the shared service's serve-path
     * latency distributions — ready for renderPrometheus() on either
     * end of the wire.
     */
    MetricsSnapshot metricsSnapshot() const;

    const CompileServerOptions& options() const { return options_; }
    CompileService& service() { return service_; }

    /**
     * Capture the serving state a warm replica boot needs: the
     * calibration epoch plus every tenant's plan circuits. Callable on
     * a live server (tenant registry locked per tenant).
     */
    ServingSnapshot snapshotServing() const;

    /**
     * Re-prepare and prewarm a snapshot's plans, adopting its epoch
     * *first* so the minted fingerprints match the disk records the
     * snapshotting fleet wrote. Meant for the window between
     * construction and start(), but safe on a live server too (plans
     * land under their tenants as if prepared over the wire).
     */
    SnapshotRestoreReport restoreServing(const ServingSnapshot& snapshot);

  private:
    /** One tenant's registry entry, shared by all its sessions. */
    struct Tenant
    {
        std::string name;
        std::uint32_t id = 0;

        std::mutex mu; ///< Guards plans / nextPlanId.
        std::uint64_t nextPlanId = 1;
        /** Plans are tenant-scoped: every session of the tenant can
         * serve any plan the tenant prepared. shared_ptr so a serve
         * outlives a concurrent registry mutation. */
        struct PlanEntry
        {
            std::shared_ptr<const ServingPlan> plan;
            int numParams = 0; ///< Theta length serve() must receive.
            /** The template the plan was prepared from, kept so an
             * epoch bump (and snapshotServing) can re-prepare the
             * plan under the new epoch without a client round-trip.
             * shared_ptr: PlanEntry is copied per serve. */
            std::shared_ptr<const Circuit> circuit;
        };
        std::map<std::uint64_t, PlanEntry> plans;

        std::atomic<std::uint64_t> serves{0};
        std::atomic<std::uint64_t> prewarms{0};
        std::atomic<std::uint64_t> serveHits{0};
        std::atomic<std::uint64_t> serveMisses{0};
        std::atomic<std::uint64_t> servedBytes{0};
        std::atomic<std::uint64_t> quotaRejections{0};
        std::atomic<std::uint64_t> activeBulk{0};

        /** This tenant's serve-latency histogram; owned by the
         * server's metric registry, resolved at intern time. */
        LatencyHistogram* serveNs = nullptr;
    };

    /** One live connection. */
    struct Session
    {
        int fd = -1;
        std::thread thread;
        std::atomic<bool> done{false};
    };

    void acceptLoop();
    void sessionLoop(Session* session);
    /** Join and close every finished session (registry lock held by
     * caller). */
    void reapFinishedSessionsLocked();

    /** Validate the header, time the dispatch (per-frame-type handle
     * histograms), and delegate; false ends the session. */
    bool handleFrame(Session& session,
                     std::shared_ptr<Tenant>& tenant,
                     const std::vector<std::uint8_t>& payload);

    /** Dispatch one validated request; false ends the session. */
    bool handleRequest(Session& session,
                       std::shared_ptr<Tenant>& tenant, MsgType type,
                       const std::vector<std::uint8_t>& payload);

    std::shared_ptr<Tenant> internTenant(const std::string& name);

    /**
     * Re-prepare every tenant's plans under the service's current
     * epoch and swap them in (pointer swap under the tenant lock;
     * in-flight serves finish against the old plan through their
     * shared_ptr, so serves never fail mid-bump). Returns the number
     * of plans re-keyed and appends the new entries to `rekeyed` for
     * the caller's background rewarm.
     */
    std::uint32_t rekeyPlansForEpoch(
        std::vector<std::shared_ptr<const ServingPlan>>& rekeyed);

    /**
     * Prewarm re-keyed plans on a tracked background thread (bulk
     * class: each plan yields at the priority gate), recording the
     * bump-to-warm recovery latency; serves keep succeeding meanwhile
     * — a missing bin just synthesizes on demand.
     */
    void rewarmPlansAsync(
        std::vector<std::shared_ptr<const ServingPlan>> plans);

    /** Reply write bounded by idleTimeoutMs: a peer that stops
     * reading cannot pin a session thread forever. */
    bool sendFrame(int fd, const std::vector<std::uint8_t>& payload);

    bool sendError(int fd, WireError code, const std::string& message);

    /** Shed one just-accepted connection with a Busy frame
     * (registry lock held by caller). */
    void shedConnection(int fd);

    CompileServerOptions options_;
    CompileService service_;
    PriorityGate gate_;

    /** Named metrics owned by the server: per-frame-type handle
     * histograms and per-tenant serve histograms. */
    MetricRegistry registry_;
    /** Handle-latency histogram per request MsgType (index = type
     * byte), resolved from the registry at construction. */
    LatencyHistogram* handleNs_[64] = {};

    int unixFd_ = -1;
    int tcpFd_ = -1;
    int boundTcpPort_ = 0;
    std::thread acceptThread_;
    bool started_ = false;
    bool joined_ = false;

    mutable std::mutex stopMu_;
    std::condition_variable stopCv_;
    std::atomic<bool> stopRequested_{false};

    mutable std::mutex registryMu_;
    std::map<std::string, std::shared_ptr<Tenant>> tenants_;
    std::vector<std::unique_ptr<Session>> sessions_;
    std::uint32_t nextTenantId_ = 1;

    /** Calibration-epoch bumps served (BumpEpoch frames honored). */
    std::atomic<std::uint64_t> epochBumps_{0};
    /** Bump-to-rewarmed recovery latency; registry-owned, resolved at
     * construction like the handle histograms. */
    LatencyHistogram* epochRecoveryNs_ = nullptr;
    /** Background rewarm threads started by BumpEpoch; joined in
     * stop() (the gate's stop() unblocks any still waiting). */
    std::mutex rewarmMu_;
    std::vector<std::thread> rewarmThreads_;

    std::atomic<std::uint64_t> connectionsAccepted_{0};
    std::atomic<std::uint64_t> connectionsActive_{0};
    std::atomic<std::uint64_t> protocolErrors_{0};
    std::atomic<std::uint64_t> acceptFailures_{0};
    std::atomic<std::uint64_t> busyRejections_{0};
    std::atomic<std::uint64_t> sessionsReapedIdle_{0};
};

} // namespace qpc

#endif // QPC_SERVER_SERVER_H
