#include "server/protocol.h"

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <limits>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace qpc {

namespace {

constexpr char kCircuitMagic[4] = {'Q', 'C', 'I', 'R'};

/** Largest circuit a PrepareServing body may describe. Far above any
 * variational template this system serves, far below anything that
 * could stress server memory. */
constexpr std::uint32_t kMaxWireQubits = 1024;
constexpr std::uint32_t kMaxWireOps = 1u << 20;
constexpr std::int32_t kMaxWireParamIndex = 1 << 20;

/** Retry-on-EINTR full read; false on EOF/error before n bytes. */
bool
readFull(int fd, void* buffer, std::size_t n)
{
    auto* p = static_cast<std::uint8_t*>(buffer);
    while (n > 0) {
        const ssize_t got = ::read(fd, p, n);
        if (got < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (got == 0)
            return false;
        p += got;
        n -= static_cast<std::size_t>(got);
    }
    return true;
}

/**
 * Retry-on-EINTR full write; false on any error. Uses send(2) with
 * MSG_NOSIGNAL so a peer that hung up mid-reply surfaces as EPIPE on
 * this connection instead of a process-wide SIGPIPE (write(2) kept as
 * a fallback for non-socket fds in tests).
 */
bool
writeFull(int fd, const void* buffer, std::size_t n)
{
    auto* p = static_cast<const std::uint8_t*>(buffer);
    while (n > 0) {
        ssize_t put = ::send(fd, p, n, MSG_NOSIGNAL);
        if (put < 0 && errno == ENOTSOCK)
            put = ::write(fd, p, n);
        if (put < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        p += put;
        n -= static_cast<std::size_t>(put);
    }
    return true;
}

using DeadlineClock = std::chrono::steady_clock;

/** Milliseconds left before `deadline`, clamped to [0, INT_MAX]. */
int
remainingMs(DeadlineClock::time_point deadline)
{
    const auto left =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            deadline - DeadlineClock::now())
            .count();
    if (left <= 0)
        return 0;
    if (left > std::numeric_limits<int>::max())
        return std::numeric_limits<int>::max();
    return static_cast<int>(left);
}

/**
 * Deadline-aware full read: non-blocking recv, polling for
 * readability with whatever time is left. The budget covers the
 * whole n bytes, so a peer trickling one byte per poll still hits
 * the deadline instead of resetting it.
 */
bool
readFullDeadline(int fd, void* buffer, std::size_t n,
                 DeadlineClock::time_point deadline, FrameError& why)
{
    auto* p = static_cast<std::uint8_t*>(buffer);
    while (n > 0) {
        ssize_t got = ::recv(fd, p, n, MSG_DONTWAIT);
        if (got < 0 && errno == ENOTSOCK) // Plain fd: no deadline.
            got = ::read(fd, p, n);
        if (got < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                const int ms = remainingMs(deadline);
                if (ms <= 0) {
                    why = FrameError::Timeout;
                    return false;
                }
                pollfd pfd{fd, POLLIN, 0};
                ::poll(&pfd, 1, ms);
                continue; // recv again; remaining time recomputed.
            }
            why = FrameError::Closed;
            return false;
        }
        if (got == 0) {
            why = FrameError::Closed;
            return false;
        }
        p += got;
        n -= static_cast<std::size_t>(got);
    }
    return true;
}

/** Deadline-aware full write (MSG_NOSIGNAL, poll on POLLOUT). */
bool
writeFullDeadline(int fd, const void* buffer, std::size_t n,
                  DeadlineClock::time_point deadline, FrameError& why)
{
    auto* p = static_cast<const std::uint8_t*>(buffer);
    while (n > 0) {
        ssize_t put =
            ::send(fd, p, n, MSG_NOSIGNAL | MSG_DONTWAIT);
        if (put < 0 && errno == ENOTSOCK)
            put = ::write(fd, p, n);
        if (put < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                const int ms = remainingMs(deadline);
                if (ms <= 0) {
                    why = FrameError::Timeout;
                    return false;
                }
                pollfd pfd{fd, POLLOUT, 0};
                ::poll(&pfd, 1, ms);
                continue;
            }
            why = FrameError::Closed;
            return false;
        }
        p += put;
        n -= static_cast<std::size_t>(put);
    }
    return true;
}

} // namespace

void
WireWriter::u32(std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
WireWriter::u64(std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
WireWriter::f64(double v)
{
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v), "IEEE-754 double expected");
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
}

void
WireWriter::str(const std::string& s)
{
    u32(static_cast<std::uint32_t>(s.size()));
    raw(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
}

void
WireWriter::blob(const std::vector<std::uint8_t>& b)
{
    u32(static_cast<std::uint32_t>(b.size()));
    raw(b.data(), b.size());
}

void
WireWriter::raw(const std::uint8_t* data, std::size_t size)
{
    bytes_.insert(bytes_.end(), data, data + size);
}

const std::uint8_t*
WireReader::take(std::size_t n)
{
    if (!ok_ || n > remaining_) {
        ok_ = false;
        return nullptr;
    }
    const std::uint8_t* at = p_;
    p_ += n;
    remaining_ -= n;
    return at;
}

std::uint8_t
WireReader::u8()
{
    const std::uint8_t* p = take(1);
    return p ? *p : 0;
}

std::uint32_t
WireReader::u32()
{
    const std::uint8_t* p = take(4);
    if (!p)
        return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return v;
}

std::uint64_t
WireReader::u64()
{
    const std::uint8_t* p = take(8);
    if (!p)
        return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

double
WireReader::f64()
{
    const std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

std::string
WireReader::str()
{
    const std::uint32_t n = u32();
    const std::uint8_t* p = take(n);
    if (!p)
        return {};
    return std::string(reinterpret_cast<const char*>(p), n);
}

std::vector<std::uint8_t>
WireReader::blob()
{
    const std::uint32_t n = u32();
    const std::uint8_t* p = take(n);
    if (!p)
        return {};
    return std::vector<std::uint8_t>(p, p + n);
}

WireWriter
beginMessage(MsgType type)
{
    WireWriter w;
    w.u8(kServerProtocolVersion);
    w.u8(static_cast<std::uint8_t>(type));
    return w;
}

std::optional<MsgType>
peekMessage(const std::vector<std::uint8_t>& payload)
{
    if (payload.size() < 2)
        return std::nullopt;
    if (payload[0] != kServerProtocolVersion)
        return std::nullopt;
    switch (static_cast<MsgType>(payload[1])) {
    case MsgType::Hello:
    case MsgType::PrepareServing:
    case MsgType::Prewarm:
    case MsgType::Serve:
    case MsgType::Stats:
    case MsgType::Shutdown:
    case MsgType::Metrics:
    case MsgType::BumpEpoch:
    case MsgType::HelloOk:
    case MsgType::PrepareOk:
    case MsgType::PrewarmOk:
    case MsgType::ServeOk:
    case MsgType::StatsOk:
    case MsgType::ShutdownOk:
    case MsgType::MetricsOk:
    case MsgType::BumpEpochOk:
    case MsgType::Error:
        return static_cast<MsgType>(payload[1]);
    }
    return std::nullopt;
}

bool
writeFrame(int fd, const std::vector<std::uint8_t>& payload)
{
    return writeFrame(fd, payload, 0, nullptr);
}

bool
writeFrame(int fd, const std::vector<std::uint8_t>& payload,
           int timeout_ms, FrameError* why)
{
    FrameError reason = FrameError::None;
    if (why != nullptr)
        *why = FrameError::None;
    if (payload.empty() || payload.size() > kMaxFramePayload) {
        if (why != nullptr)
            *why = FrameError::Closed;
        return false;
    }
    std::uint8_t prefix[4];
    const auto n = static_cast<std::uint32_t>(payload.size());
    for (int i = 0; i < 4; ++i)
        prefix[i] = static_cast<std::uint8_t>(n >> (8 * i));
    bool ok;
    if (timeout_ms <= 0) {
        ok = writeFull(fd, prefix, sizeof(prefix)) &&
             writeFull(fd, payload.data(), payload.size());
        reason = ok ? FrameError::None : FrameError::Closed;
    } else {
        const auto deadline = DeadlineClock::now() +
                              std::chrono::milliseconds(timeout_ms);
        ok = writeFullDeadline(fd, prefix, sizeof(prefix), deadline,
                               reason) &&
             writeFullDeadline(fd, payload.data(), payload.size(),
                               deadline, reason);
    }
    if (why != nullptr)
        *why = reason;
    return ok;
}

std::optional<std::vector<std::uint8_t>>
readFrame(int fd)
{
    return readFrame(fd, 0, nullptr);
}

std::optional<std::vector<std::uint8_t>>
readFrame(int fd, int timeout_ms, FrameError* why)
{
    FrameError reason = FrameError::None;
    if (why != nullptr)
        *why = FrameError::None;
    const auto deadline =
        DeadlineClock::now() + std::chrono::milliseconds(
                                   timeout_ms > 0 ? timeout_ms : 0);
    const auto read_full = [&](void* buffer, std::size_t n) {
        if (timeout_ms <= 0) {
            const bool ok = readFull(fd, buffer, n);
            reason = ok ? FrameError::None : FrameError::Closed;
            return ok;
        }
        return readFullDeadline(fd, buffer, n, deadline, reason);
    };
    std::uint8_t prefix[4];
    if (!read_full(prefix, sizeof(prefix))) {
        if (why != nullptr)
            *why = reason;
        return std::nullopt;
    }
    std::uint32_t n = 0;
    for (int i = 0; i < 4; ++i)
        n |= static_cast<std::uint32_t>(prefix[i]) << (8 * i);
    // A zero or oversized prefix is a protocol violation, not a
    // request: reject before allocating a byte.
    if (n == 0 || n > kMaxFramePayload) {
        if (why != nullptr)
            *why = FrameError::Closed;
        return std::nullopt;
    }
    std::vector<std::uint8_t> payload(n);
    if (!read_full(payload.data(), n)) {
        if (why != nullptr)
            *why = reason;
        return std::nullopt;
    }
    return payload;
}

bool
setTcpNoDelay(int fd)
{
    const int one = 1;
    return ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one,
                        sizeof(one)) == 0;
}

void
encodeCircuit(WireWriter& w, const Circuit& circuit)
{
    for (char m : kCircuitMagic)
        w.u8(static_cast<std::uint8_t>(m));
    w.u32(kCircuitFormatVersion);
    w.u32(static_cast<std::uint32_t>(circuit.numQubits()));
    w.u32(static_cast<std::uint32_t>(circuit.size()));
    for (const GateOp& op : circuit.ops()) {
        w.u8(static_cast<std::uint8_t>(op.kind));
        w.i32(op.q0);
        w.i32(op.q1);
        w.i32(op.angle.index);
        w.f64(op.angle.coeff);
        w.f64(op.angle.offset);
    }
}

std::optional<Circuit>
decodeCircuit(WireReader& r)
{
    for (char m : kCircuitMagic)
        if (r.u8() != static_cast<std::uint8_t>(m))
            return std::nullopt;
    if (r.u32() != kCircuitFormatVersion)
        return std::nullopt;
    const std::uint32_t qubits = r.u32();
    const std::uint32_t ops = r.u32();
    if (!r.ok() || qubits == 0 || qubits > kMaxWireQubits ||
        ops > kMaxWireOps)
        return std::nullopt;
    Circuit circuit(static_cast<int>(qubits));
    for (std::uint32_t i = 0; i < ops; ++i) {
        GateOp op;
        const std::uint8_t kind = r.u8();
        op.q0 = r.i32();
        op.q1 = r.i32();
        op.angle.index = r.i32();
        op.angle.coeff = r.f64();
        op.angle.offset = r.f64();
        if (!r.ok())
            return std::nullopt;
        // Validate everything Circuit::add would panic on (plus wire
        // sanity): hostile bytes must degrade to a decode error.
        if (kind > static_cast<std::uint8_t>(GateKind::ISwap))
            return std::nullopt;
        op.kind = static_cast<GateKind>(kind);
        const int width = static_cast<int>(qubits);
        if (op.q0 < 0 || op.q0 >= width)
            return std::nullopt;
        if (op.arity() == 2 &&
            (op.q1 < 0 || op.q1 >= width || op.q1 == op.q0))
            return std::nullopt;
        if (op.angle.index < -1 || op.angle.index > kMaxWireParamIndex)
            return std::nullopt;
        if (!std::isfinite(op.angle.coeff) ||
            !std::isfinite(op.angle.offset))
            return std::nullopt;
        circuit.add(op);
    }
    return circuit;
}

std::vector<std::uint8_t>
encodeCircuit(const Circuit& circuit)
{
    WireWriter w;
    encodeCircuit(w, circuit);
    return w.take();
}

std::optional<Circuit>
decodeCircuit(const std::vector<std::uint8_t>& bytes)
{
    WireReader r(bytes);
    std::optional<Circuit> circuit = decodeCircuit(r);
    if (!circuit || !r.done())
        return std::nullopt;
    return circuit;
}

void
encodeServerStats(WireWriter& w, const WireServerStats& stats)
{
    w.u64(stats.connectionsAccepted);
    w.u64(stats.connectionsActive);
    w.u64(stats.protocolErrors);
    w.u64(stats.bulkYields);
    w.u64(stats.acceptFailures);
    w.u64(stats.busyRejections);
    w.u64(stats.sessionsReapedIdle);
    w.u64(stats.requests);
    w.u64(stats.cacheHits);
    w.u64(stats.coalesced);
    w.u64(stats.synthRuns);
    w.u64(stats.rejected);
    w.u64(stats.exactServes);
    w.u64(stats.quantHits);
    w.u64(stats.quantMisses);
    w.u64(stats.quantFallbacks);
    w.u64(stats.cacheLookups);
    w.u64(stats.cacheMemHits);
    w.u64(stats.cacheDiskHits);
    w.u64(stats.cacheMisses);
    w.u64(stats.cacheEntries);
    w.u64(stats.cacheBytesInUse);
    w.u32(static_cast<std::uint32_t>(stats.tenants.size()));
    for (const WireTenantStats& tenant : stats.tenants) {
        w.str(tenant.tenant);
        w.u64(tenant.plans);
        w.u64(tenant.serves);
        w.u64(tenant.prewarms);
        w.u64(tenant.serveHits);
        w.u64(tenant.serveMisses);
        w.u64(tenant.servedBytes);
        w.u64(tenant.quotaRejections);
    }
}

std::optional<WireServerStats>
decodeServerStats(WireReader& r)
{
    WireServerStats stats;
    stats.connectionsAccepted = r.u64();
    stats.connectionsActive = r.u64();
    stats.protocolErrors = r.u64();
    stats.bulkYields = r.u64();
    stats.acceptFailures = r.u64();
    stats.busyRejections = r.u64();
    stats.sessionsReapedIdle = r.u64();
    stats.requests = r.u64();
    stats.cacheHits = r.u64();
    stats.coalesced = r.u64();
    stats.synthRuns = r.u64();
    stats.rejected = r.u64();
    stats.exactServes = r.u64();
    stats.quantHits = r.u64();
    stats.quantMisses = r.u64();
    stats.quantFallbacks = r.u64();
    stats.cacheLookups = r.u64();
    stats.cacheMemHits = r.u64();
    stats.cacheDiskHits = r.u64();
    stats.cacheMisses = r.u64();
    stats.cacheEntries = r.u64();
    stats.cacheBytesInUse = r.u64();
    const std::uint32_t tenants = r.u32();
    // A tenant count is bounded by what fits in one frame anyway;
    // reject a lying prefix before the loop allocates against it.
    if (!r.ok() || tenants > (1u << 16))
        return std::nullopt;
    stats.tenants.reserve(tenants);
    for (std::uint32_t i = 0; i < tenants; ++i) {
        WireTenantStats tenant;
        tenant.tenant = r.str();
        tenant.plans = r.u64();
        tenant.serves = r.u64();
        tenant.prewarms = r.u64();
        tenant.serveHits = r.u64();
        tenant.serveMisses = r.u64();
        tenant.servedBytes = r.u64();
        tenant.quotaRejections = r.u64();
        if (!r.ok())
            return std::nullopt;
        stats.tenants.push_back(std::move(tenant));
    }
    if (!r.ok())
        return std::nullopt;
    return stats;
}

void
encodeWireHistogram(WireWriter& w,
                    const MetricsSnapshot::HistogramSample& h)
{
    w.str(h.name);
    w.u64(h.histogram.count);
    w.u64(h.histogram.sumNs);
    w.u64(h.histogram.minNs);
    w.u64(h.histogram.maxNs);
    w.u32(static_cast<std::uint32_t>(h.histogram.buckets.size()));
    for (const auto& [index, count] : h.histogram.buckets) {
        w.u32(index);
        w.u64(count);
    }
}

std::optional<MetricsSnapshot::HistogramSample>
decodeWireHistogram(WireReader& r)
{
    MetricsSnapshot::HistogramSample h;
    h.name = r.str();
    h.histogram.count = r.u64();
    h.histogram.sumNs = r.u64();
    h.histogram.minNs = r.u64();
    h.histogram.maxNs = r.u64();
    const std::uint32_t buckets = r.u32();
    if (!r.ok() || h.name.empty() ||
        h.name.size() > kMaxWireMetricName ||
        buckets >
            static_cast<std::uint32_t>(LatencyHistogram::kNumBuckets))
        return std::nullopt;
    // Structural invariants every consumer (percentile walks,
    // exposition rendering, merges) relies on: sorted unique indices
    // in range, no zero-count buckets, bucket counts summing to the
    // total, and a coherent min/max. Rejecting here means a decoded
    // snapshot is always as well-formed as a locally recorded one.
    std::uint64_t total = 0;
    std::int64_t prev = -1;
    for (std::uint32_t i = 0; i < buckets; ++i) {
        const std::uint32_t index = r.u32();
        const std::uint64_t count = r.u64();
        if (!r.ok() ||
            index >= static_cast<std::uint32_t>(
                         LatencyHistogram::kNumBuckets) ||
            static_cast<std::int64_t>(index) <= prev || count == 0)
            return std::nullopt;
        prev = static_cast<std::int64_t>(index);
        total += count;
        h.histogram.buckets.emplace_back(index, count);
    }
    if (total != h.histogram.count)
        return std::nullopt;
    if (h.histogram.count == 0) {
        if (h.histogram.minNs != 0 || h.histogram.maxNs != 0 ||
            h.histogram.sumNs != 0)
            return std::nullopt;
    } else if (h.histogram.minNs > h.histogram.maxNs) {
        return std::nullopt;
    }
    return h;
}

void
encodeMetrics(WireWriter& w, const MetricsSnapshot& snap)
{
    w.u32(static_cast<std::uint32_t>(snap.counters.size()));
    for (const auto& c : snap.counters) {
        w.str(c.name);
        w.u64(c.value);
    }
    w.u32(static_cast<std::uint32_t>(snap.gauges.size()));
    for (const auto& g : snap.gauges) {
        w.str(g.name);
        w.f64(g.value);
    }
    w.u32(static_cast<std::uint32_t>(snap.histograms.size()));
    for (const auto& h : snap.histograms)
        encodeWireHistogram(w, h);
}

std::optional<MetricsSnapshot>
decodeMetrics(WireReader& r)
{
    MetricsSnapshot snap;
    const std::uint32_t counters = r.u32();
    if (!r.ok() || counters > kMaxWireMetrics)
        return std::nullopt;
    snap.counters.reserve(counters);
    for (std::uint32_t i = 0; i < counters; ++i) {
        MetricsSnapshot::CounterSample c;
        c.name = r.str();
        c.value = r.u64();
        if (!r.ok() || c.name.empty() ||
            c.name.size() > kMaxWireMetricName)
            return std::nullopt;
        snap.counters.push_back(std::move(c));
    }
    const std::uint32_t gauges = r.u32();
    if (!r.ok() || gauges > kMaxWireMetrics)
        return std::nullopt;
    snap.gauges.reserve(gauges);
    for (std::uint32_t i = 0; i < gauges; ++i) {
        MetricsSnapshot::GaugeSample g;
        g.name = r.str();
        g.value = r.f64();
        if (!r.ok() || g.name.empty() ||
            g.name.size() > kMaxWireMetricName)
            return std::nullopt;
        snap.gauges.push_back(std::move(g));
    }
    const std::uint32_t histograms = r.u32();
    if (!r.ok() || histograms > kMaxWireMetrics)
        return std::nullopt;
    snap.histograms.reserve(histograms);
    for (std::uint32_t i = 0; i < histograms; ++i) {
        auto h = decodeWireHistogram(r);
        if (!h)
            return std::nullopt;
        snap.histograms.push_back(std::move(*h));
    }
    if (!r.ok())
        return std::nullopt;
    return snap;
}

} // namespace qpc
