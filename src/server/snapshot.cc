#include "server/snapshot.h"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>

#include <unistd.h>

#include "server/protocol.h"

namespace qpc {

namespace {

constexpr char kMagic[4] = {'Q', 'S', 'N', 'P'};

/** Ceiling on plans in one snapshot: a lying count in a hostile file
 * must bound allocation, mirroring kMaxWireMetrics' reasoning. */
constexpr std::uint32_t kMaxSnapshotPlans = 1u << 16;

} // namespace

std::vector<std::uint8_t>
serializeServingSnapshot(const ServingSnapshot& snapshot)
{
    WireWriter w;
    w.raw(reinterpret_cast<const std::uint8_t*>(kMagic), 4);
    w.u32(kSnapshotFormatVersion);
    w.u64(snapshot.epoch.counter);
    w.u64(snapshot.epoch.modelHash);
    w.u32(static_cast<std::uint32_t>(snapshot.plans.size()));
    for (const SnapshotPlan& plan : snapshot.plans) {
        w.str(plan.tenant);
        encodeCircuit(w, plan.circuit);
    }
    return w.take();
}

std::optional<ServingSnapshot>
deserializeServingSnapshot(const std::vector<std::uint8_t>& bytes)
{
    if (bytes.size() < 4 || std::memcmp(bytes.data(), kMagic, 4) != 0)
        return std::nullopt;
    WireReader r(bytes.data() + 4, bytes.size() - 4);
    if (r.u32() != kSnapshotFormatVersion)
        return std::nullopt;
    ServingSnapshot snapshot;
    snapshot.epoch.counter = r.u64();
    snapshot.epoch.modelHash = r.u64();
    const std::uint32_t num_plans = r.u32();
    if (!r.ok() || num_plans > kMaxSnapshotPlans)
        return std::nullopt;
    snapshot.plans.reserve(num_plans);
    for (std::uint32_t i = 0; i < num_plans; ++i) {
        SnapshotPlan plan;
        plan.tenant = r.str();
        if (!r.ok() || plan.tenant.empty())
            return std::nullopt;
        std::optional<Circuit> circuit = decodeCircuit(r);
        if (!circuit)
            return std::nullopt;
        plan.circuit = std::move(*circuit);
        snapshot.plans.push_back(std::move(plan));
    }
    if (!r.done())
        return std::nullopt;
    return snapshot;
}

bool
saveServingSnapshot(const std::string& path,
                    const ServingSnapshot& snapshot)
{
    const std::vector<std::uint8_t> bytes =
        serializeServingSnapshot(snapshot);
    // Same atomic-publish discipline as savePulseSchedule: a unique
    // temp per writer, then rename, so a crash or a racing writer can
    // never leave a torn snapshot at `path`.
    static std::atomic<std::uint64_t> save_counter{0};
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid()) + "." +
        std::to_string(save_counter.fetch_add(1));
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) {
            std::remove(tmp.c_str());
            return false;
        }
        out.write(reinterpret_cast<const char*>(bytes.data()),
                  static_cast<std::streamsize>(bytes.size()));
        out.flush();
        if (!out) {
            out.close();
            std::remove(tmp.c_str());
            return false;
        }
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

std::optional<ServingSnapshot>
loadServingSnapshot(const std::string& path)
{
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in)
        return std::nullopt;
    const std::streamsize size = in.tellg();
    if (size < 0)
        return std::nullopt;
    in.seekg(0);
    std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
    if (size > 0 &&
        !in.read(reinterpret_cast<char*>(bytes.data()), size))
        return std::nullopt;
    return deserializeServingSnapshot(bytes);
}

} // namespace qpc
