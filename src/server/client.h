/**
 * @file
 * Client library for the compile server: one blocking connection, one
 * typed method per protocol request. Drivers embed this to move their
 * hybrid loop's compilation to a shared daemon without speaking the
 * wire format themselves; the examples' qpc-client is a thin shell
 * around it.
 *
 * Error model: every method returns nullopt/false on failure and
 * leaves the reason in lastError()/lastErrorCode(). A transport
 * failure (peer gone, malformed reply) also drops the connection —
 * call connected() to distinguish "request refused" from "link dead".
 */

#ifndef QPC_SERVER_CLIENT_H
#define QPC_SERVER_CLIENT_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "pulse/schedule.h"
#include "server/protocol.h"

namespace qpc {

/** A blocking client connection to one compile server. */
class CompileClient
{
  public:
    CompileClient() = default;
    ~CompileClient();

    CompileClient(const CompileClient&) = delete;
    CompileClient& operator=(const CompileClient&) = delete;

    /** Connect over a unix-domain socket. */
    bool connectUnix(const std::string& path);
    /** Connect over loopback TCP. */
    bool connectTcp(int port);
    bool connected() const { return fd_ >= 0; }
    void close();

    /** The server's HelloOk: tenant identity plus its quota terms. */
    struct HelloReply
    {
        std::uint32_t tenantId = 0;
        std::uint64_t maxPlans = 0;
        std::uint64_t maxServedBytes = 0;
        std::uint64_t maxConcurrentBulk = 0;
    };
    /** Identify this connection's tenant; required before any
     * plan-scoped request. */
    std::optional<HelloReply> hello(const std::string& tenant);

    struct PrepareReply
    {
        std::uint64_t planId = 0;
        std::uint32_t numFixedBlocks = 0;
        std::uint32_t numParamGates = 0;
    };
    /** Upload a variational template; the server partitions and
     * prepares it for serving. */
    std::optional<PrepareReply> prepareServing(const Circuit& circuit);

    struct PrewarmReply
    {
        std::uint32_t uniqueBlocks = 0;
        std::uint64_t synthRuns = 0;
        std::uint64_t cacheHits = 0;
        double wallSeconds = 0.0;
    };
    /** Bulk-warm a plan: Fixed blocks plus its quantized grid. */
    std::optional<PrewarmReply> prewarm(std::uint64_t plan_id);

    struct ServeReply
    {
        double pulseNs = 0.0;
        std::uint64_t cacheHits = 0;
        std::uint64_t cacheMisses = 0;
        std::uint64_t quantHits = 0;
        std::uint64_t quantMisses = 0;
        std::uint64_t exactServes = 0;
        double quantErrorBound = 0.0;
        std::uint32_t numSegments = 0;
        /** Decoded pulse segments; empty unless want_pulses. */
        std::vector<PulseSchedule> pulses;
    };
    /** Serve one parameter binding of a prepared plan. */
    std::optional<ServeReply> serve(std::uint64_t plan_id,
                                    const std::vector<double>& theta,
                                    bool want_pulses = false);

    /** Snapshot the server's health/stats frame. */
    std::optional<WireServerStats> stats();

    /** Snapshot the server's metric registry (counters, gauges, and
     * latency histograms) — render with renderPrometheus(). */
    std::optional<MetricsSnapshot> metrics();

    /** Ask the server to shut down; true on an acknowledged stop. */
    bool shutdownServer();

    /**
     * Raw exchange: send one payload, read one reply payload. The
     * fuzz tests use this to push hostile bytes through a real
     * connection; nullopt means the transport died.
     */
    std::optional<std::vector<std::uint8_t>>
    roundTrip(const std::vector<std::uint8_t>& payload);

    /** Human-readable reason for the last failed call. */
    const std::string& lastError() const { return lastError_; }
    /** Wire code of the last Error frame (Internal for transport). */
    WireError lastErrorCode() const { return lastErrorCode_; }

    /** The raw socket (tests inject mid-frame disconnects with it). */
    int fd() const { return fd_; }

  private:
    /**
     * roundTrip + reply validation: nullopt (with lastError set)
     * unless the reply parses and carries `want`; an Error frame's
     * code/message land in lastErrorCode()/lastError().
     */
    std::optional<std::vector<std::uint8_t>>
    request(MsgType want, const std::vector<std::uint8_t>& payload);

    bool fail(WireError code, const std::string& message);

    int fd_ = -1;
    std::string lastError_;
    WireError lastErrorCode_ = WireError::Internal;
};

} // namespace qpc

#endif // QPC_SERVER_CLIENT_H
