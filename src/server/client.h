/**
 * @file
 * Client library for the compile server: one blocking connection, one
 * typed method per protocol request. Drivers embed this to move their
 * hybrid loop's compilation to a shared daemon without speaking the
 * wire format themselves; the examples' qpc-client is a thin shell
 * around it.
 *
 * Error model: every method returns nullopt/false on failure and
 * leaves the reason in lastError()/lastErrorCode(); a later
 * successful call clears both. A transport failure (peer gone,
 * malformed reply) also drops the connection — call connected() to
 * distinguish "request refused" from "link dead".
 *
 * Resilience: with ClientOptions{deadlineMs, maxRetries} set, every
 * request gets a per-frame I/O deadline (a stalled server fails the
 * call instead of blocking the optimizer forever), and a transport
 * failure triggers automatic reconnection with exponential backoff +
 * jitter. Reconnection transparently re-establishes the session: the
 * client caches its tenant name and every prepared circuit, re-runs
 * Hello and PrepareServing against the new connection, and remaps
 * plan ids — so the plan ids callers hold stay valid across a server
 * restart and serve() is retry-safe for a long optimizer loop.
 * Definitive refusals (quota, bad request, unknown plan) are never
 * retried; Busy shedding and transport errors are. clientStats()
 * reports the retry/timeout/reconnect counts and the reconnect
 * latency distribution.
 */

#ifndef QPC_SERVER_CLIENT_H
#define QPC_SERVER_CLIENT_H

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "pulse/schedule.h"
#include "server/protocol.h"
#include "telemetry/histogram.h"

namespace qpc {

/** Resilience knobs of one CompileClient. */
struct ClientOptions
{
    /**
     * Per-request I/O deadline in milliseconds: every frame write and
     * read must complete within this budget or the call fails (and
     * the connection drops, since frame sync is lost). 0 = block
     * forever (legacy behavior).
     */
    int deadlineMs = 0;
    /**
     * Transport-failure retries per request (0 = fail fast). Each
     * retry reconnects and re-establishes the session first when the
     * link is down. Server refusals other than Busy never retry.
     */
    int maxRetries = 0;
    /** First retry backoff; doubles per attempt. */
    int backoffBaseMs = 10;
    /** Backoff ceiling. */
    int backoffMaxMs = 1000;
    /**
     * Re-dial + re-Hello + re-PrepareServing on a dead link before a
     * retryable request. Off = a dropped connection fails every later
     * call until the caller reconnects explicitly.
     */
    bool reconnect = true;
};

/** Counters a resilient caller (or the CI smoke) inspects. */
struct ClientStats
{
    std::uint64_t retries = 0;       ///< Requests re-sent after a failure.
    std::uint64_t timeouts = 0;      ///< Frames that hit the deadline.
    std::uint64_t reconnects = 0;    ///< Sessions re-established.
    std::uint64_t reconnectFailures = 0; ///< Re-dials that failed.
    std::uint64_t plansRemapped = 0; ///< Plans re-prepared on reconnect.
    std::uint64_t busyRejections = 0; ///< Busy sheds observed.
    /** Latency of each successful session re-establishment
     * (dial + Hello + every re-PrepareServing). */
    HistogramSnapshot reconnectNs;
};

/** A blocking client connection to one compile server. */
class CompileClient
{
  public:
    explicit CompileClient(ClientOptions options = {});
    ~CompileClient();

    CompileClient(const CompileClient&) = delete;
    CompileClient& operator=(const CompileClient&) = delete;

    /** Connect over a unix-domain socket. Resets the cached session
     * (tenant, plans): a new endpoint is a new session. */
    bool connectUnix(const std::string& path);
    /** Connect over loopback TCP (TCP_NODELAY set). Resets the
     * cached session. */
    bool connectTcp(int port);
    bool connected() const { return fd_ >= 0; }
    void close();

    /** The server's HelloOk: tenant identity plus its quota terms. */
    struct HelloReply
    {
        std::uint32_t tenantId = 0;
        std::uint64_t maxPlans = 0;
        std::uint64_t maxServedBytes = 0;
        std::uint64_t maxConcurrentBulk = 0;
        /** The server's calibration epoch at connect. */
        std::uint64_t epochCounter = 0;
        std::uint64_t epochModelHash = 0;
    };
    /** Identify this connection's tenant; required before any
     * plan-scoped request. The name is cached for reconnection. */
    std::optional<HelloReply> hello(const std::string& tenant);

    struct PrepareReply
    {
        std::uint64_t planId = 0;
        std::uint32_t numFixedBlocks = 0;
        std::uint32_t numParamGates = 0;
    };
    /**
     * Upload a variational template; the server partitions and
     * prepares it for serving. The circuit is cached so a reconnect
     * can re-prepare it; the returned planId stays valid across
     * reconnects (the client remaps it to the new server-side id).
     */
    std::optional<PrepareReply> prepareServing(const Circuit& circuit);

    struct PrewarmReply
    {
        std::uint32_t uniqueBlocks = 0;
        std::uint64_t synthRuns = 0;
        std::uint64_t cacheHits = 0;
        double wallSeconds = 0.0;
    };
    /** Bulk-warm a plan: Fixed blocks plus its quantized grid. */
    std::optional<PrewarmReply> prewarm(std::uint64_t plan_id);

    struct ServeReply
    {
        double pulseNs = 0.0;
        std::uint64_t cacheHits = 0;
        std::uint64_t cacheMisses = 0;
        std::uint64_t quantHits = 0;
        std::uint64_t quantMisses = 0;
        std::uint64_t exactServes = 0;
        double quantErrorBound = 0.0;
        /** Epoch the serving plan is keyed to. Lags the server epoch
         * between a BumpEpoch and that plan's re-key; comparing it to
         * HelloReply::epochCounter detects mid-flight calibration
         * drift. */
        std::uint64_t epochCounter = 0;
        std::uint32_t numSegments = 0;
        /** Decoded pulse segments; empty unless want_pulses. */
        std::vector<PulseSchedule> pulses;
    };
    /** Serve one parameter binding of a prepared plan. */
    std::optional<ServeReply> serve(std::uint64_t plan_id,
                                    const std::vector<double>& theta,
                                    bool want_pulses = false);

    /** Snapshot the server's health/stats frame. */
    std::optional<WireServerStats> stats();

    /** Snapshot the server's metric registry (counters, gauges, and
     * latency histograms) — render with renderPrometheus(). */
    std::optional<MetricsSnapshot> metrics();

    /** Ask the server to shut down; true on an acknowledged stop.
     * Never retried (a lost ack must not re-kill a fresh server). */
    bool shutdownServer();

    struct BumpEpochReply
    {
        std::uint64_t newCounter = 0;
        std::uint64_t modelHash = 0;
        std::uint32_t plansRekeyed = 0;
    };
    /**
     * Advance the server's calibration epoch (recalibration landed):
     * every plan is re-keyed and re-prewarmed server-side while serves
     * continue. model_hash 0 keeps the current device-model hash.
     * Never retried — a lost ack must not double-bump.
     */
    std::optional<BumpEpochReply>
    bumpEpoch(std::uint64_t model_hash = 0);

    /**
     * Raw exchange: send one payload, read one reply payload. The
     * fuzz tests use this to push hostile bytes through a real
     * connection; nullopt means the transport died (or the deadline
     * expired). Never retried.
     */
    std::optional<std::vector<std::uint8_t>>
    roundTrip(const std::vector<std::uint8_t>& payload);

    /** Human-readable reason for the last failed call; empty after a
     * success. */
    const std::string& lastError() const { return lastError_; }
    /** Wire code of the last Error frame (Internal for transport,
     * None after a success). */
    WireError lastErrorCode() const { return lastErrorCode_; }

    /** Retry/timeout/reconnect counters for this client. */
    ClientStats clientStats() const;

    const ClientOptions& options() const { return options_; }

    /** The raw socket (tests inject mid-frame disconnects with it). */
    int fd() const { return fd_; }

  private:
    enum class Endpoint { None, Unix, Tcp };

    /** One cached template: enough to re-prepare after a reconnect. */
    struct CachedPlan
    {
        Circuit circuit;
        std::uint64_t serverPlanId = 0; ///< Id on the *current* server.
    };

    /**
     * Retrying exchange: (re)establish the session if needed, send
     * the payload `build()` produces (rebuilt per attempt so plan-id
     * remaps take effect), read + validate the reply. nullopt (with
     * lastError set) after the attempt budget; an Error frame's
     * code/message land in lastErrorCode()/lastError() and — except
     * for Busy — end the attempt loop immediately.
     */
    std::optional<std::vector<std::uint8_t>>
    request(MsgType want,
            const std::function<std::vector<std::uint8_t>()>& build,
            bool retryable = true);

    /** One deadline-bounded write+read; drops the connection and
     * sets lastError on failure. */
    std::optional<std::vector<std::uint8_t>>
    exchangeOnce(const std::vector<std::uint8_t>& payload);

    /** exchangeOnce + header/Error validation, no retry — the
     * building block reestablish() uses to avoid recursion. */
    std::optional<std::vector<std::uint8_t>>
    exchangeExpect(MsgType want,
                   const std::vector<std::uint8_t>& payload);

    /** Dial the cached endpoint (socket + connect + NODELAY). */
    bool dial();

    /** Dial, re-Hello the cached tenant, re-PrepareServing every
     * cached circuit and remap its server plan id. */
    bool reestablish();

    /** Exponential backoff with jitter before retry `attempt`. */
    void backoffSleep(int attempt);

    /** Caller plan id -> current server plan id (identity until a
     * reconnect remaps). Unknown ids pass through so the server can
     * answer NotFound itself. */
    std::uint64_t mappedPlanId(std::uint64_t plan_id) const;

    bool fail(WireError code, const std::string& message);
    void clearError();
    void resetSession();

    ClientOptions options_;
    int fd_ = -1;
    std::string lastError_;
    WireError lastErrorCode_ = WireError::None;
    /** Whether the last failure may succeed on retry (transport,
     * timeout, Busy) vs a definitive server refusal. */
    bool retryableFailure_ = true;

    Endpoint endpoint_ = Endpoint::None;
    std::string unixPath_;
    int tcpPort_ = 0;

    std::string tenant_;
    bool haveTenant_ = false;
    /** Keyed by the caller-visible plan id. */
    std::map<std::uint64_t, CachedPlan> plans_;

    ClientStats stats_;
    LatencyHistogram reconnectNs_;
    Rng jitter_;
};

} // namespace qpc

#endif // QPC_SERVER_CLIENT_H
