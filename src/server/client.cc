#include "server/client.h"

#include <cerrno>
#include <cstring>

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "pulse/serialize.h"

namespace qpc {

CompileClient::~CompileClient()
{
    close();
}

void
CompileClient::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

bool
CompileClient::connectUnix(const std::string& path)
{
    close();
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.empty() || path.size() >= sizeof(addr.sun_path))
        return fail(WireError::BadRequest, "bad socket path");
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0)
        return fail(WireError::Internal, "cannot create socket");
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
        close();
        return fail(WireError::Internal,
                    "cannot connect to " + path + ": " +
                        std::strerror(errno));
    }
    return true;
}

bool
CompileClient::connectTcp(int port)
{
    close();
    if (port <= 0 || port > 65535)
        return fail(WireError::BadRequest, "bad TCP port");
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0)
        return fail(WireError::Internal, "cannot create socket");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
        close();
        return fail(WireError::Internal,
                    "cannot connect to loopback port " +
                        std::to_string(port) + ": " +
                        std::strerror(errno));
    }
    return true;
}

bool
CompileClient::fail(WireError code, const std::string& message)
{
    lastErrorCode_ = code;
    lastError_ = message;
    return false;
}

std::optional<std::vector<std::uint8_t>>
CompileClient::roundTrip(const std::vector<std::uint8_t>& payload)
{
    if (fd_ < 0) {
        fail(WireError::Internal, "not connected");
        return std::nullopt;
    }
    if (!writeFrame(fd_, payload)) {
        close();
        fail(WireError::Internal, "connection lost writing request");
        return std::nullopt;
    }
    std::optional<std::vector<std::uint8_t>> reply = readFrame(fd_);
    if (!reply) {
        close();
        fail(WireError::Internal, "connection lost reading reply");
    }
    return reply;
}

std::optional<std::vector<std::uint8_t>>
CompileClient::request(MsgType want,
                       const std::vector<std::uint8_t>& payload)
{
    std::optional<std::vector<std::uint8_t>> reply =
        roundTrip(payload);
    if (!reply)
        return std::nullopt;
    const std::optional<MsgType> type = peekMessage(*reply);
    if (!type) {
        close();
        fail(WireError::Internal, "unparseable reply");
        return std::nullopt;
    }
    if (*type == MsgType::Error) {
        WireReader r(*reply);
        r.u8();
        r.u8();
        const auto code = static_cast<WireError>(r.u32());
        fail(code, r.str());
        return std::nullopt;
    }
    if (*type != want) {
        close();
        fail(WireError::Internal, "unexpected reply type");
        return std::nullopt;
    }
    return reply;
}

std::optional<CompileClient::HelloReply>
CompileClient::hello(const std::string& tenant)
{
    WireWriter w = beginMessage(MsgType::Hello);
    w.str(tenant);
    std::optional<std::vector<std::uint8_t>> reply =
        request(MsgType::HelloOk, w.bytes());
    if (!reply)
        return std::nullopt;
    WireReader r(*reply);
    r.u8();
    r.u8();
    HelloReply out;
    out.tenantId = r.u32();
    out.maxPlans = r.u64();
    out.maxServedBytes = r.u64();
    out.maxConcurrentBulk = r.u64();
    if (!r.done()) {
        fail(WireError::Internal, "malformed HelloOk");
        return std::nullopt;
    }
    return out;
}

std::optional<CompileClient::PrepareReply>
CompileClient::prepareServing(const Circuit& circuit)
{
    WireWriter w = beginMessage(MsgType::PrepareServing);
    encodeCircuit(w, circuit);
    std::optional<std::vector<std::uint8_t>> reply =
        request(MsgType::PrepareOk, w.bytes());
    if (!reply)
        return std::nullopt;
    WireReader r(*reply);
    r.u8();
    r.u8();
    PrepareReply out;
    out.planId = r.u64();
    out.numFixedBlocks = r.u32();
    out.numParamGates = r.u32();
    if (!r.done()) {
        fail(WireError::Internal, "malformed PrepareOk");
        return std::nullopt;
    }
    return out;
}

std::optional<CompileClient::PrewarmReply>
CompileClient::prewarm(std::uint64_t plan_id)
{
    WireWriter w = beginMessage(MsgType::Prewarm);
    w.u64(plan_id);
    std::optional<std::vector<std::uint8_t>> reply =
        request(MsgType::PrewarmOk, w.bytes());
    if (!reply)
        return std::nullopt;
    WireReader r(*reply);
    r.u8();
    r.u8();
    PrewarmReply out;
    out.uniqueBlocks = r.u32();
    out.synthRuns = r.u64();
    out.cacheHits = r.u64();
    out.wallSeconds = r.f64();
    if (!r.done()) {
        fail(WireError::Internal, "malformed PrewarmOk");
        return std::nullopt;
    }
    return out;
}

std::optional<CompileClient::ServeReply>
CompileClient::serve(std::uint64_t plan_id,
                     const std::vector<double>& theta,
                     bool want_pulses)
{
    WireWriter w = beginMessage(MsgType::Serve);
    w.u64(plan_id);
    w.u8(want_pulses ? 1 : 0);
    w.u32(static_cast<std::uint32_t>(theta.size()));
    for (double t : theta)
        w.f64(t);
    std::optional<std::vector<std::uint8_t>> reply =
        request(MsgType::ServeOk, w.bytes());
    if (!reply)
        return std::nullopt;
    WireReader r(*reply);
    r.u8();
    r.u8();
    ServeReply out;
    out.pulseNs = r.f64();
    out.cacheHits = r.u64();
    out.cacheMisses = r.u64();
    out.quantHits = r.u64();
    out.quantMisses = r.u64();
    out.exactServes = r.u64();
    out.quantErrorBound = r.f64();
    out.numSegments = r.u32();
    if (want_pulses) {
        out.pulses.reserve(out.numSegments);
        for (std::uint32_t i = 0; i < out.numSegments && r.ok(); ++i) {
            const std::vector<std::uint8_t> record = r.blob();
            std::optional<PulseSchedule> pulse =
                deserializePulseSchedule(record);
            if (!pulse) {
                fail(WireError::Internal,
                     "malformed pulse record in ServeOk");
                return std::nullopt;
            }
            out.pulses.push_back(std::move(*pulse));
        }
    }
    if (!r.done()) {
        fail(WireError::Internal, "malformed ServeOk");
        return std::nullopt;
    }
    return out;
}

std::optional<WireServerStats>
CompileClient::stats()
{
    WireWriter w = beginMessage(MsgType::Stats);
    std::optional<std::vector<std::uint8_t>> reply =
        request(MsgType::StatsOk, w.bytes());
    if (!reply)
        return std::nullopt;
    WireReader r(*reply);
    r.u8();
    r.u8();
    std::optional<WireServerStats> stats = decodeServerStats(r);
    if (!stats || !r.done()) {
        fail(WireError::Internal, "malformed StatsOk");
        return std::nullopt;
    }
    return stats;
}

std::optional<MetricsSnapshot>
CompileClient::metrics()
{
    WireWriter w = beginMessage(MsgType::Metrics);
    std::optional<std::vector<std::uint8_t>> reply =
        request(MsgType::MetricsOk, w.bytes());
    if (!reply)
        return std::nullopt;
    WireReader r(*reply);
    r.u8();
    r.u8();
    std::optional<MetricsSnapshot> snap = decodeMetrics(r);
    if (!snap || !r.done()) {
        fail(WireError::Internal, "malformed MetricsOk");
        return std::nullopt;
    }
    return snap;
}

bool
CompileClient::shutdownServer()
{
    WireWriter w = beginMessage(MsgType::Shutdown);
    std::optional<std::vector<std::uint8_t>> reply =
        request(MsgType::ShutdownOk, w.bytes());
    return reply.has_value();
}

} // namespace qpc
