#include "server/client.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "pulse/serialize.h"

namespace qpc {

CompileClient::CompileClient(ClientOptions options)
    : options_(options),
      jitter_(0x51ab5e1fULL ^
              static_cast<std::uint64_t>(
                  reinterpret_cast<std::uintptr_t>(this)))
{
}

CompileClient::~CompileClient()
{
    close();
}

void
CompileClient::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

void
CompileClient::clearError()
{
    lastError_.clear();
    lastErrorCode_ = WireError::None;
}

void
CompileClient::resetSession()
{
    tenant_.clear();
    haveTenant_ = false;
    plans_.clear();
}

bool
CompileClient::dial()
{
    close();
    if (endpoint_ == Endpoint::Unix) {
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, unixPath_.c_str(),
                     sizeof(addr.sun_path) - 1);
        fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd_ < 0)
            return fail(WireError::Internal, "cannot create socket");
        if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)) != 0) {
            close();
            return fail(WireError::Internal,
                        "cannot connect to " + unixPath_ + ": " +
                            std::strerror(errno));
        }
        return true;
    }
    if (endpoint_ == Endpoint::Tcp) {
        fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd_ < 0)
            return fail(WireError::Internal, "cannot create socket");
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = htons(static_cast<std::uint16_t>(tcpPort_));
        if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)) != 0) {
            close();
            return fail(WireError::Internal,
                        "cannot connect to loopback port " +
                            std::to_string(tcpPort_) + ": " +
                            std::strerror(errno));
        }
        setTcpNoDelay(fd_);
        return true;
    }
    return fail(WireError::Internal, "not connected");
}

bool
CompileClient::connectUnix(const std::string& path)
{
    close();
    resetSession();
    sockaddr_un probe{};
    if (path.empty() || path.size() >= sizeof(probe.sun_path)) {
        endpoint_ = Endpoint::None;
        return fail(WireError::BadRequest, "bad socket path");
    }
    endpoint_ = Endpoint::Unix;
    unixPath_ = path;
    if (!dial())
        return false;
    clearError();
    return true;
}

bool
CompileClient::connectTcp(int port)
{
    close();
    resetSession();
    if (port <= 0 || port > 65535) {
        endpoint_ = Endpoint::None;
        return fail(WireError::BadRequest, "bad TCP port");
    }
    endpoint_ = Endpoint::Tcp;
    tcpPort_ = port;
    if (!dial())
        return false;
    clearError();
    return true;
}

bool
CompileClient::fail(WireError code, const std::string& message)
{
    lastErrorCode_ = code;
    lastError_ = message;
    return false;
}

std::uint64_t
CompileClient::mappedPlanId(std::uint64_t plan_id) const
{
    const auto it = plans_.find(plan_id);
    return it == plans_.end() ? plan_id : it->second.serverPlanId;
}

void
CompileClient::backoffSleep(int attempt)
{
    const int shift = attempt > 20 ? 20 : (attempt < 1 ? 0 : attempt - 1);
    double delay_ms =
        static_cast<double>(options_.backoffBaseMs) *
        static_cast<double>(1u << shift);
    if (delay_ms > options_.backoffMaxMs)
        delay_ms = static_cast<double>(options_.backoffMaxMs);
    // Half-fixed, half-uniform jitter desynchronizes a fleet of
    // clients all retrying against the same restarted server.
    delay_ms *= 0.5 + 0.5 * jitter_.uniform();
    if (delay_ms > 0.0)
        std::this_thread::sleep_for(
            std::chrono::microseconds(static_cast<long>(delay_ms * 1000.0)));
}

std::optional<std::vector<std::uint8_t>>
CompileClient::exchangeOnce(const std::vector<std::uint8_t>& payload)
{
    retryableFailure_ = true;
    if (fd_ < 0) {
        fail(WireError::Internal, "not connected");
        return std::nullopt;
    }
    FrameError why = FrameError::None;
    if (!writeFrame(fd_, payload, options_.deadlineMs, &why)) {
        if (why != FrameError::Timeout) {
            // A peer that hung up may have left a final Error frame
            // (Busy shedding does exactly this) already buffered;
            // salvage it so the caller sees the reason, not EPIPE.
            FrameError salvage_why = FrameError::None;
            std::optional<std::vector<std::uint8_t>> salvaged =
                readFrame(fd_, 50, &salvage_why);
            if (salvaged) {
                close();
                return salvaged;
            }
        }
        close();
        if (why == FrameError::Timeout) {
            ++stats_.timeouts;
            fail(WireError::Internal, "deadline expired writing request");
        } else {
            fail(WireError::Internal, "connection lost writing request");
        }
        return std::nullopt;
    }
    std::optional<std::vector<std::uint8_t>> reply =
        readFrame(fd_, options_.deadlineMs, &why);
    if (!reply) {
        close();
        if (why == FrameError::Timeout) {
            ++stats_.timeouts;
            fail(WireError::Internal, "deadline expired reading reply");
        } else {
            fail(WireError::Internal, "connection lost reading reply");
        }
    }
    return reply;
}

std::optional<std::vector<std::uint8_t>>
CompileClient::exchangeExpect(MsgType want,
                              const std::vector<std::uint8_t>& payload)
{
    std::optional<std::vector<std::uint8_t>> reply =
        exchangeOnce(payload);
    if (!reply)
        return std::nullopt;
    const std::optional<MsgType> type = peekMessage(*reply);
    if (!type) {
        close();
        retryableFailure_ = true;
        fail(WireError::Internal, "unparseable reply");
        return std::nullopt;
    }
    if (*type == MsgType::Error) {
        WireReader r(*reply);
        r.u8();
        r.u8();
        const auto code = static_cast<WireError>(r.u32());
        if (code == WireError::Busy) {
            // The server sheds and closes; this connection is done.
            ++stats_.busyRejections;
            retryableFailure_ = true;
            close();
        } else {
            // A definitive refusal: retrying cannot change the answer.
            retryableFailure_ = false;
        }
        fail(code, r.str());
        return std::nullopt;
    }
    if (*type != want) {
        close();
        retryableFailure_ = true;
        fail(WireError::Internal, "unexpected reply type");
        return std::nullopt;
    }
    return reply;
}

bool
CompileClient::reestablish()
{
    using Clock = std::chrono::steady_clock;
    const Clock::time_point start = Clock::now();
    if (!dial()) {
        ++stats_.reconnectFailures;
        retryableFailure_ = true;
        return false;
    }
    if (haveTenant_) {
        WireWriter w = beginMessage(MsgType::Hello);
        w.str(tenant_);
        if (!exchangeExpect(MsgType::HelloOk, w.take())) {
            ++stats_.reconnectFailures;
            close();
            return false;
        }
    }
    for (auto& [caller_id, plan] : plans_) {
        (void)caller_id;
        WireWriter w = beginMessage(MsgType::PrepareServing);
        encodeCircuit(w, plan.circuit);
        std::optional<std::vector<std::uint8_t>> reply =
            exchangeExpect(MsgType::PrepareOk, w.take());
        if (!reply) {
            ++stats_.reconnectFailures;
            close();
            return false;
        }
        WireReader r(*reply);
        r.u8();
        r.u8();
        const std::uint64_t server_id = r.u64();
        r.u32();
        r.u32();
        if (!r.done()) {
            ++stats_.reconnectFailures;
            retryableFailure_ = true;
            close();
            return fail(WireError::Internal,
                        "malformed PrepareOk during reconnect");
        }
        plan.serverPlanId = server_id;
        ++stats_.plansRemapped;
    }
    ++stats_.reconnects;
    reconnectNs_.record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            Clock::now() - start)
            .count()));
    return true;
}

std::optional<std::vector<std::uint8_t>>
CompileClient::request(
    MsgType want,
    const std::function<std::vector<std::uint8_t>()>& build,
    bool retryable)
{
    const int attempts =
        1 + (retryable && options_.maxRetries > 0 ? options_.maxRetries
                                                  : 0);
    for (int attempt = 0; attempt < attempts; ++attempt) {
        if (attempt > 0) {
            ++stats_.retries;
            backoffSleep(attempt);
        }
        if (fd_ < 0) {
            if (!retryable || !options_.reconnect ||
                endpoint_ == Endpoint::None) {
                fail(WireError::Internal, "not connected");
                return std::nullopt;
            }
            if (!reestablish()) {
                if (!retryableFailure_)
                    return std::nullopt;
                continue;
            }
        }
        std::optional<std::vector<std::uint8_t>> reply =
            exchangeExpect(want, build());
        if (reply) {
            clearError();
            return reply;
        }
        if (!retryable || !retryableFailure_)
            return std::nullopt;
    }
    return std::nullopt;
}

std::optional<std::vector<std::uint8_t>>
CompileClient::roundTrip(const std::vector<std::uint8_t>& payload)
{
    std::optional<std::vector<std::uint8_t>> reply =
        exchangeOnce(payload);
    if (reply)
        clearError();
    return reply;
}

std::optional<CompileClient::HelloReply>
CompileClient::hello(const std::string& tenant)
{
    const auto build = [&tenant] {
        WireWriter w = beginMessage(MsgType::Hello);
        w.str(tenant);
        return w.take();
    };
    std::optional<std::vector<std::uint8_t>> reply =
        request(MsgType::HelloOk, build);
    if (!reply)
        return std::nullopt;
    WireReader r(*reply);
    r.u8();
    r.u8();
    HelloReply out;
    out.tenantId = r.u32();
    out.maxPlans = r.u64();
    out.maxServedBytes = r.u64();
    out.maxConcurrentBulk = r.u64();
    out.epochCounter = r.u64();
    out.epochModelHash = r.u64();
    if (!r.done()) {
        fail(WireError::Internal, "malformed HelloOk");
        return std::nullopt;
    }
    tenant_ = tenant;
    haveTenant_ = true;
    return out;
}

std::optional<CompileClient::PrepareReply>
CompileClient::prepareServing(const Circuit& circuit)
{
    const auto build = [&circuit] {
        WireWriter w = beginMessage(MsgType::PrepareServing);
        encodeCircuit(w, circuit);
        return w.take();
    };
    std::optional<std::vector<std::uint8_t>> reply =
        request(MsgType::PrepareOk, build);
    if (!reply)
        return std::nullopt;
    WireReader r(*reply);
    r.u8();
    r.u8();
    PrepareReply out;
    out.planId = r.u64();
    out.numFixedBlocks = r.u32();
    out.numParamGates = r.u32();
    if (!r.done()) {
        fail(WireError::Internal, "malformed PrepareOk");
        return std::nullopt;
    }
    // The caller-visible id survives reconnects; pick the server's id
    // unless a remapped older plan already claimed that key.
    std::uint64_t caller_id = out.planId;
    if (plans_.count(caller_id) != 0)
        caller_id = plans_.rbegin()->first + 1;
    plans_[caller_id] = CachedPlan{circuit, out.planId};
    out.planId = caller_id;
    return out;
}

std::optional<CompileClient::PrewarmReply>
CompileClient::prewarm(std::uint64_t plan_id)
{
    const auto build = [this, plan_id] {
        WireWriter w = beginMessage(MsgType::Prewarm);
        w.u64(mappedPlanId(plan_id));
        return w.take();
    };
    std::optional<std::vector<std::uint8_t>> reply =
        request(MsgType::PrewarmOk, build);
    if (!reply)
        return std::nullopt;
    WireReader r(*reply);
    r.u8();
    r.u8();
    PrewarmReply out;
    out.uniqueBlocks = r.u32();
    out.synthRuns = r.u64();
    out.cacheHits = r.u64();
    out.wallSeconds = r.f64();
    if (!r.done()) {
        fail(WireError::Internal, "malformed PrewarmOk");
        return std::nullopt;
    }
    return out;
}

std::optional<CompileClient::ServeReply>
CompileClient::serve(std::uint64_t plan_id,
                     const std::vector<double>& theta,
                     bool want_pulses)
{
    const auto build = [this, plan_id, &theta, want_pulses] {
        WireWriter w = beginMessage(MsgType::Serve);
        w.u64(mappedPlanId(plan_id));
        w.u8(want_pulses ? 1 : 0);
        w.u32(static_cast<std::uint32_t>(theta.size()));
        for (double t : theta)
            w.f64(t);
        return w.take();
    };
    std::optional<std::vector<std::uint8_t>> reply =
        request(MsgType::ServeOk, build);
    if (!reply)
        return std::nullopt;
    WireReader r(*reply);
    r.u8();
    r.u8();
    ServeReply out;
    out.pulseNs = r.f64();
    out.cacheHits = r.u64();
    out.cacheMisses = r.u64();
    out.quantHits = r.u64();
    out.quantMisses = r.u64();
    out.exactServes = r.u64();
    out.quantErrorBound = r.f64();
    out.epochCounter = r.u64();
    out.numSegments = r.u32();
    if (want_pulses) {
        // Each pulse record is a length-prefixed blob, so it occupies
        // at least 4 bytes of payload: a segment count larger than
        // remaining/4 is lying, and trusting it for reserve() would
        // let a hostile server force a multi-GB allocation.
        if (!r.ok() ||
            out.numSegments > r.remaining() / sizeof(std::uint32_t)) {
            fail(WireError::Internal,
                 "ServeOk segment count exceeds payload");
            return std::nullopt;
        }
        out.pulses.reserve(out.numSegments);
        for (std::uint32_t i = 0; i < out.numSegments && r.ok(); ++i) {
            const std::vector<std::uint8_t> record = r.blob();
            std::optional<PulseSchedule> pulse =
                deserializePulseSchedule(record);
            if (!pulse) {
                fail(WireError::Internal,
                     "malformed pulse record in ServeOk");
                return std::nullopt;
            }
            out.pulses.push_back(std::move(*pulse));
        }
    }
    if (!r.done()) {
        fail(WireError::Internal, "malformed ServeOk");
        return std::nullopt;
    }
    return out;
}

std::optional<WireServerStats>
CompileClient::stats()
{
    const auto build = [] {
        WireWriter w = beginMessage(MsgType::Stats);
        return w.take();
    };
    std::optional<std::vector<std::uint8_t>> reply =
        request(MsgType::StatsOk, build);
    if (!reply)
        return std::nullopt;
    WireReader r(*reply);
    r.u8();
    r.u8();
    std::optional<WireServerStats> stats = decodeServerStats(r);
    if (!stats || !r.done()) {
        fail(WireError::Internal, "malformed StatsOk");
        return std::nullopt;
    }
    return stats;
}

std::optional<MetricsSnapshot>
CompileClient::metrics()
{
    const auto build = [] {
        WireWriter w = beginMessage(MsgType::Metrics);
        return w.take();
    };
    std::optional<std::vector<std::uint8_t>> reply =
        request(MsgType::MetricsOk, build);
    if (!reply)
        return std::nullopt;
    WireReader r(*reply);
    r.u8();
    r.u8();
    std::optional<MetricsSnapshot> snap = decodeMetrics(r);
    if (!snap || !r.done()) {
        fail(WireError::Internal, "malformed MetricsOk");
        return std::nullopt;
    }
    return snap;
}

bool
CompileClient::shutdownServer()
{
    const auto build = [] {
        WireWriter w = beginMessage(MsgType::Shutdown);
        return w.take();
    };
    std::optional<std::vector<std::uint8_t>> reply =
        request(MsgType::ShutdownOk, build, /*retryable=*/false);
    return reply.has_value();
}

std::optional<CompileClient::BumpEpochReply>
CompileClient::bumpEpoch(std::uint64_t model_hash)
{
    const auto build = [model_hash] {
        WireWriter w = beginMessage(MsgType::BumpEpoch);
        w.u64(model_hash);
        return w.take();
    };
    // Non-retryable like Shutdown: a reply lost after the server
    // applied the bump must not advance the epoch twice.
    std::optional<std::vector<std::uint8_t>> reply =
        request(MsgType::BumpEpochOk, build, /*retryable=*/false);
    if (!reply)
        return std::nullopt;
    WireReader r(*reply);
    r.u8();
    r.u8();
    BumpEpochReply out;
    out.newCounter = r.u64();
    out.modelHash = r.u64();
    out.plansRekeyed = r.u32();
    if (!r.done()) {
        fail(WireError::Internal, "malformed BumpEpochOk");
        return std::nullopt;
    }
    return out;
}

ClientStats
CompileClient::clientStats() const
{
    ClientStats out = stats_;
    out.reconnectNs = reconnectNs_.snapshot();
    return out;
}

} // namespace qpc
