/**
 * @file
 * Angle quantization of parametrized rotation blocks.
 *
 * The content-addressed cache (fingerprint.h) amortizes Fixed blocks,
 * but a Parametrized block's angle changes every VQE/QAOA iteration,
 * so PR 2's exact keys never repeat: Rz(0.1001) and Rz(0.1002) are
 * distinct addresses and each pays a fresh synthesis. Parametrized
 * blocks are low-dimensional — in this IR, exactly one single-qubit
 * rotation per strict segment — so a fidelity-bounded angle grid turns
 * the per-iteration hot path into pure cache lookups:
 *
 *  - every bound rotation angle is snapped onto a uniform grid of
 *    `bins` points over one period (step 2*pi/bins), wrap-aware: theta
 *    and theta + 2*pi land in the same bin, and the snapped
 *    representative lives in (-pi, pi] so snapped pulses stay short;
 *  - the snapped block is fingerprinted like any Fixed block, so all
 *    angles of one bin share one cache entry and one synthesis;
 *  - the substitution error is *bounded before serving*: a rotation
 *    exp(-i theta P / 2) snapped by delta differs from the exact
 *    unitary by operator norm 2*sin(|delta|/4) <= |delta|/2 (up to
 *    global phase), and per-rotation bounds add across a block. When
 *    the block's total bound exceeds the caller's fidelity budget, the
 *    serve path falls back to exact synthesis instead.
 */

#ifndef QPC_CACHE_QUANTIZE_H
#define QPC_CACHE_QUANTIZE_H

#include <cstdint>
#include <unordered_set>
#include <utility>
#include <vector>

#include "cache/fingerprint.h"
#include "ir/circuit.h"

namespace qpc {

/** Angle-grid configuration of the quantized parametric cache. */
struct ParamQuantization
{
    /** Master switch; disabled keeps the exact per-binding path. */
    bool enabled = false;
    /** Grid points per 2*pi period; step = 2*pi / bins. */
    int bins = 1024;
    /**
     * *Per-gate* budget on the advertised operator-norm error of
     * snapping one rotation (phase-invariant; see
     * quantizationErrorBound). A rotation whose snap would overdraw
     * this is served/simulated at its exact bound angle instead —
     * the same semantic everywhere: CompileService::serve(),
     * snapSymbolicRotations(), and quantizeBlock(). The default
     * comfortably admits the default grid: one rotation snaps by at
     * most step/4 ~ 1.5e-3.
     */
    double fidelityBudget = 1e-2;

    /** @name Adaptive multi-resolution refinement
     * A converging optimizer visits an ever-narrower neighborhood of
     * the optimum; the adaptive grid hierarchically splits exactly
     * the bins it visits, so late-iteration serves snap onto finer
     * representatives (lower error bound) while unvisited regions
     * never pay for resolution. See AdaptiveAngleGrid and
     * CompileService::refineQuantizedGrid().
     *  @{ */
    /** Enable convergence-aware bin refinement (needs `enabled`). */
    bool adaptive = false;
    /**
     * Cap on splits per coarse bin: a leaf at depth d has width
     * step / 2^d, so the finest effective grid is bins * 2^maxRefineDepth
     * points — worst-case snap bound step / 2^(maxRefineDepth + 2).
     */
    int maxRefineDepth = 6;
    /** Serve visits a leaf must accumulate before a refinement round
     * splits it (children restart at zero). */
    std::uint64_t splitVisitThreshold = 8;
    /** Bound on leaves per rotation axis; 0 = 4 * bins. Refinement
     * stops splitting (hottest leaves first) once reached. */
    std::size_t maxLeavesPerAxis = 0;
    /**
     * Optimizer-movement gate used by the VQE/QAOA drivers: a
     * refinement round is triggered only when the optimizer's
     * reported parameter step norm has fallen to or below this (the
     * converging regime where finer bins pay off). <= 0 refines
     * whenever the cooldown allows.
     */
    double refineStepNorm = 0.25;
    /** Minimum optimizer iterations between driver-triggered
     * refinement rounds. */
    int refineCooldown = 5;
    /**
     * Multiplicative decay applied to every leaf's serve-visit counter
     * at the end of each refinement round, in [0, 1]. 1 (default)
     * keeps the legacy accumulate-forever behaviour; below 1, a region
     * the optimizer has moved away from — or whose heat predates an
     * epoch bump — cools off instead of attracting splits forever on
     * stale history. Decay runs after the round's hot-leaf snapshot,
     * so a leaf that just crossed splitVisitThreshold still splits in
     * that round.
     */
    double visitDecay = 1.0;
    /** @} */

    /** Grid spacing in radians. */
    double stepRadians() const;
};

/**
 * One rotation axis's multi-resolution angle grid.
 *
 * Starts as the PR 3 uniform grid: `baseBins` intervals of width
 * step = 2*pi/baseBins, each centered on a grid point (the interval of
 * bin b is [(b-1/2)step, (b+1/2)step), representative b*step — the
 * same representative binAngle() produces, bit-for-bit, so an unsplit
 * leaf's snapped rotation fingerprints identically to the fixed grid
 * and dedupes against an already-warm coarse cache). split() replaces
 * a leaf by its two half-intervals, whose representatives are the
 * half-interval midpoints: a leaf at depth d has width step/2^d and
 * its realized snap is bounded by half that width, so every split
 * halves the worst-case error of the angles that land there.
 *
 * Purely geometric: visit counting, fingerprints, and thread safety
 * live with the owner (see CompileService's serving plans).
 */
class AdaptiveAngleGrid
{
  public:
    /** Hard cap on splits below a coarse bin (keeps the packed leaf
     * key unambiguous and interval arithmetic far from the double
     * mantissa); split() refuses beyond it, and owners must validate
     * their refine-depth knobs against it up front. */
    static constexpr int kMaxDepth = 32;

    AdaptiveAngleGrid() = default;
    explicit AdaptiveAngleGrid(int baseBins);

    /** One currently-served interval of the grid. */
    struct Leaf
    {
        std::int64_t coarseBin = 0; ///< Level-0 ancestor, [0, baseBins).
        int depth = 0;              ///< Splits below the coarse bin.
        std::uint64_t path = 0;     ///< Index among the coarse bin's
                                    ///< depth-d descendants, [0, 2^d).
        /** Snap target of the leaf (interval midpoint), wrapped into
         * (-pi, pi]; equals binAngle(coarseBin) at depth 0. */
        double representative = 0.0;
        /** Half the interval width: step / 2^(depth+1). The realized
         * |snap delta| of any angle in the leaf is at most this. */
        double halfWidth = 0.0;
    };

    int baseBins() const { return bins_; }
    /** Leaves currently served (baseBins before any split). */
    std::size_t numLeaves() const { return leaves_; }
    /** Deepest split performed so far (0 = still the uniform grid). */
    int maxDepthInUse() const { return maxDepth_; }
    /** Splits performed over the grid's lifetime. */
    std::uint64_t splits() const { return splits_; }

    /** Stable identity of a leaf (hash/map key for owners). */
    static std::uint64_t leafKey(const Leaf& leaf);

    /** The unique leaf containing theta (wrap-aware, like angleBin). */
    Leaf locate(double theta) const;

    /**
     * The two half-interval children a split of `leaf` would produce
     * ({low, high}), without mutating the grid. Pure geometry — safe
     * to call concurrently with locate()/split() on other threads —
     * so owners can precompute the children's representatives (and
     * their fingerprints) outside any lock before committing the
     * split.
     */
    std::pair<Leaf, Leaf> childrenOf(const Leaf& leaf) const;

    /**
     * Split a leaf into its two half-interval children (returned
     * {low, high}); the leaf stops being served. Panics when the leaf
     * is already split or stale — owners must pass leaves of the
     * current topology.
     */
    std::pair<Leaf, Leaf> split(const Leaf& leaf);

  private:
    Leaf makeLeaf(std::int64_t coarseBin, int depth,
                  std::uint64_t path) const;

    int bins_ = 0;
    std::size_t leaves_ = 0;
    int maxDepth_ = 0;
    std::uint64_t splits_ = 0;
    /** Internal (split) nodes, by leafKey of the node. */
    std::unordered_set<std::uint64_t> split_;
};

/**
 * Wrap-aware bin of an angle: round(theta / step) reduced mod bins,
 * always in [0, bins). theta and theta + 2*pi*k share a bin for every
 * integer k, and angles straddling the +/-pi seam round to the same
 * bin from both sides.
 */
std::int64_t angleBin(double theta, int bins);

/**
 * Representative angle of a bin, centered into (-pi, pi] so a snapped
 * rotation never unwinds the long way around (analytic pulse duration
 * grows with |angle|).
 */
double binAngle(std::int64_t bin, int bins);

/** binAngle(angleBin(theta)): idempotent, wrap-aware snapping. */
double snapAngle(double theta, int bins);

/**
 * Signed wrapped distance from the snapped representative to theta,
 * in [-step/2, step/2]: the delta whose rotation the cache substitutes
 * away.
 */
double snapDelta(double theta, int bins);

/**
 * Signed wrapped difference theta - representative, reduced by whole
 * periods into [-pi, pi]: the substitution delta of serving theta by
 * an arbitrary representative (adaptive leaves are not on any uniform
 * grid, so snapDelta's grid form does not apply).
 */
double wrappedAngleDelta(double theta, double representative);

/**
 * Advertised operator-norm error of substituting one rotation snapped
 * by delta, up to global phase: |delta| / 2, an upper bound on the
 * exact distance 2*sin(|delta|/4). Per-rotation bounds add across a
 * block (triangle inequality over the unitary product).
 */
double quantizationErrorBound(double delta);

/** One block's angles snapped onto the grid, ready to serve. */
struct QuantizedBlock
{
    /** Content address of the snapped block (shared by its whole bin). */
    BlockFingerprint fingerprint;
    /** The bound block with every budget-admitted symbolic rotation
     * snapped (over-budget rotations keep their exact bound angle). */
    Circuit snapped;
    /** Summed advertised error bound of the snaps actually applied. */
    double errorBound = 0.0;
    /** Bin index per symbolic rotation, program order; -1 marks a
     * rotation kept exact because its per-gate snap would overdraw
     * the budget. */
    std::vector<std::int64_t> bins;
    /** Every symbolic rotation fit the per-gate budget (no -1 bins):
     * the whole block is on the grid. NOTE: the budget is per *gate*
     * — matching serve() and snapSymbolicRotations(), which check and
     * fall back one rotation at a time — so a fully-snapped
     * multi-rotation block's summed errorBound may legitimately
     * exceed fidelityBudget. (It used to be per-block here, declaring
     * blocks over-budget that the serve path happily snapped
     * gate-by-gate.) */
    bool withinBudget = true;
};

/**
 * Bind a symbolic block against theta, snapping every parametrized
 * rotation that fits the *per-gate* budget onto the grid (rotations
 * past it keep their exact bound angle). Constant angles (and
 * non-rotation gates) pass through exactly — only the per-iteration
 * degrees of freedom are quantized. The fingerprint addresses the
 * snapped block, so every binding inside one bin resolves to the same
 * cache entry.
 *
 * This is the reference form of the quantized keying;
 * CompileService::serve() inlines the same bind -> bin -> budget ->
 * bound sequence against per-axis fingerprint tables precomputed at
 * prepareServing() time (re-deriving a unitary fingerprint per
 * iteration would cost more than the lookup it replaces), and
 * snapSymbolicRotations() below is the full-circuit mirror. All
 * three share the per-gate budget semantic — keep them in lockstep.
 */
QuantizedBlock quantizeBlock(const Circuit& symbolic,
                             const std::vector<double>& theta,
                             const ParamQuantization& quantization);

/**
 * Full-circuit counterpart for simulation: bind a symbolic template,
 * snapping each parametrized rotation that fits the *per-gate* budget
 * and keeping the exact bound angle otherwise — exactly the circuit
 * the quantized serve path's pulses realize, so drivers that simulate
 * "hardware" evaluate the same physics the cache serves.
 */
Circuit snapSymbolicRotations(const Circuit& symbolic,
                              const std::vector<double>& theta,
                              const ParamQuantization& quantization);

} // namespace qpc

#endif // QPC_CACHE_QUANTIZE_H
