/**
 * @file
 * Angle quantization of parametrized rotation blocks.
 *
 * The content-addressed cache (fingerprint.h) amortizes Fixed blocks,
 * but a Parametrized block's angle changes every VQE/QAOA iteration,
 * so PR 2's exact keys never repeat: Rz(0.1001) and Rz(0.1002) are
 * distinct addresses and each pays a fresh synthesis. Parametrized
 * blocks are low-dimensional — in this IR, exactly one single-qubit
 * rotation per strict segment — so a fidelity-bounded angle grid turns
 * the per-iteration hot path into pure cache lookups:
 *
 *  - every bound rotation angle is snapped onto a uniform grid of
 *    `bins` points over one period (step 2*pi/bins), wrap-aware: theta
 *    and theta + 2*pi land in the same bin, and the snapped
 *    representative lives in (-pi, pi] so snapped pulses stay short;
 *  - the snapped block is fingerprinted like any Fixed block, so all
 *    angles of one bin share one cache entry and one synthesis;
 *  - the substitution error is *bounded before serving*: a rotation
 *    exp(-i theta P / 2) snapped by delta differs from the exact
 *    unitary by operator norm 2*sin(|delta|/4) <= |delta|/2 (up to
 *    global phase), and per-rotation bounds add across a block. When
 *    the block's total bound exceeds the caller's fidelity budget, the
 *    serve path falls back to exact synthesis instead.
 */

#ifndef QPC_CACHE_QUANTIZE_H
#define QPC_CACHE_QUANTIZE_H

#include <cstdint>
#include <vector>

#include "cache/fingerprint.h"
#include "ir/circuit.h"

namespace qpc {

/** Angle-grid configuration of the quantized parametric cache. */
struct ParamQuantization
{
    /** Master switch; disabled keeps the exact per-binding path. */
    bool enabled = false;
    /** Grid points per 2*pi period; step = 2*pi / bins. */
    int bins = 1024;
    /**
     * Per-block budget on the advertised operator-norm error of
     * snapping (phase-invariant; see quantizationErrorBound). A block
     * whose summed bound exceeds this is served by exact synthesis.
     * The default comfortably admits the default grid: one rotation
     * snaps by at most step/4 ~ 1.5e-3.
     */
    double fidelityBudget = 1e-2;

    /** Grid spacing in radians. */
    double stepRadians() const;
};

/**
 * Wrap-aware bin of an angle: round(theta / step) reduced mod bins,
 * always in [0, bins). theta and theta + 2*pi*k share a bin for every
 * integer k, and angles straddling the +/-pi seam round to the same
 * bin from both sides.
 */
std::int64_t angleBin(double theta, int bins);

/**
 * Representative angle of a bin, centered into (-pi, pi] so a snapped
 * rotation never unwinds the long way around (analytic pulse duration
 * grows with |angle|).
 */
double binAngle(std::int64_t bin, int bins);

/** binAngle(angleBin(theta)): idempotent, wrap-aware snapping. */
double snapAngle(double theta, int bins);

/**
 * Signed wrapped distance from the snapped representative to theta,
 * in [-step/2, step/2]: the delta whose rotation the cache substitutes
 * away.
 */
double snapDelta(double theta, int bins);

/**
 * Advertised operator-norm error of substituting one rotation snapped
 * by delta, up to global phase: |delta| / 2, an upper bound on the
 * exact distance 2*sin(|delta|/4). Per-rotation bounds add across a
 * block (triangle inequality over the unitary product).
 */
double quantizationErrorBound(double delta);

/** One block's angles snapped onto the grid, ready to serve. */
struct QuantizedBlock
{
    /** Content address of the snapped block (shared by its whole bin). */
    BlockFingerprint fingerprint;
    /** The bound block with every symbolic rotation snapped. */
    Circuit snapped;
    /** Summed advertised error bound of all substitutions. */
    double errorBound = 0.0;
    /** Bin index per snapped rotation, program order. */
    std::vector<std::int64_t> bins;
    /** errorBound <= quantization.fidelityBudget. */
    bool withinBudget = true;
};

/**
 * Bind a symbolic block against theta, snapping every parametrized
 * rotation onto the grid. Constant angles (and non-rotation gates)
 * pass through exactly — only the per-iteration degrees of freedom are
 * quantized. The fingerprint addresses the snapped block, so every
 * binding inside one bin resolves to the same cache entry.
 *
 * This is the reference form of the quantized keying;
 * CompileService::serve() inlines the same bind -> bin -> bound
 * sequence against per-axis fingerprint tables precomputed at
 * prepareServing() time (re-deriving a unitary fingerprint per
 * iteration would cost more than the lookup it replaces). Keep the
 * two in lockstep: for the single-rotation blocks strict partitioning
 * emits, the per-gate budget check there coincides with the
 * per-block sum here.
 */
QuantizedBlock quantizeBlock(const Circuit& symbolic,
                             const std::vector<double>& theta,
                             const ParamQuantization& quantization);

/**
 * Full-circuit counterpart for simulation: bind a symbolic template,
 * snapping each parametrized rotation that fits the *per-gate* budget
 * and keeping the exact bound angle otherwise — exactly the circuit
 * the quantized serve path's pulses realize, so drivers that simulate
 * "hardware" evaluate the same physics the cache serves.
 */
Circuit snapSymbolicRotations(const Circuit& symbolic,
                              const std::vector<double>& theta,
                              const ParamQuantization& quantization);

} // namespace qpc

#endif // QPC_CACHE_QUANTIZE_H
