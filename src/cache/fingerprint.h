/**
 * @file
 * Canonical content address of a compiled block.
 *
 * The pulse cache keys a GRAPE-compiled block by what it *computes*,
 * not where it sits in a circuit: blocks are relabeled to local qubits
 * 0..w-1 before fingerprinting (transpile/blocking already emits them
 * that way), so the same Fixed subcircuit appearing in two different
 * circuits — or twice in one ansatz, as UCCSD and QAOA repetitions do
 * — hashes to the same address and is synthesized once.
 *
 * Two 64-bit hashes are computed:
 *  - unitaryHash: hash of the block's unitary after removing the
 *    global phase. This is the *canonical address* when available
 *    (blocks up to kMaxUnitaryFingerprintQubits): decompositions that
 *    differ only by gate sequence or global phase (e.g. Z vs
 *    Rz(pi) = -i Z) share it, so they deduplicate to one synthesis
 *    and one cache entry — a pulse realizing the unitary serves every
 *    spelling of it.
 *  - structureHash: FNV-1a over the exact gate sequence (kind,
 *    qubits, bound angle). The fallback address for blocks too wide
 *    to simulate (unitaryHash == 0), and a debugging aid elsewhere.
 *
 * Equality, hashing, and the on-disk name all follow that canonical
 * rule; see BlockFingerprint::operator==.
 */

#ifndef QPC_CACHE_FINGERPRINT_H
#define QPC_CACHE_FINGERPRINT_H

#include <cstddef>
#include <cstdint>
#include <string>

#include "ir/circuit.h"
#include "linalg/matrix.h"
#include "model/calibration.h"

namespace qpc {

/** Widest block whose unitary is folded into the fingerprint. */
inline constexpr int kMaxUnitaryFingerprintQubits = 6;

/** Content address of one parameter-free block circuit. */
struct BlockFingerprint
{
    std::uint64_t structureHash = 0;
    std::uint64_t unitaryHash = 0;
    /**
     * Calibration the pulse must have been synthesized against. The
     * zero epoch (epochs not in use) preserves legacy keying: hash,
     * equality, and hex() are unchanged from the pre-epoch format.
     */
    CalibrationEpoch epoch;

    /** The address the cache actually keys on: phase-invariant
     * unitary content when available, gate structure otherwise. */
    std::uint64_t
    canonical() const
    {
        return unitaryHash ? unitaryHash : structureHash;
    }

    /**
     * Canonical equality: two fingerprints with unitary content match
     * iff the unitaries match (regardless of gate spelling); a
     * unitary-bearing fingerprint never equals a structure-only one
     * (different widths by construction). Fingerprints from different
     * calibration epochs never match — a stale pulse is wrong physics
     * even for an identical circuit.
     */
    bool
    operator==(const BlockFingerprint& other) const
    {
        if (epoch != other.epoch)
            return false;
        if (unitaryHash || other.unitaryHash)
            return unitaryHash == other.unitaryHash;
        return structureHash == other.structureHash;
    }
    bool
    operator!=(const BlockFingerprint& other) const
    {
        return !(*this == other);
    }

    /**
     * On-disk file stem, derived from the canonical component only so
     * phase-equivalent spellings share one record: "u<16 hex>" for
     * unitary-addressed blocks, "s<16 hex>" for structure-addressed.
     * A non-zero epoch appends "-e<16 hex>" of its key so records
     * from different calibrations occupy distinct files.
     */
    std::string hex() const;
};

/** Hash functor for unordered containers keyed by fingerprints. */
struct BlockFingerprintHash
{
    std::size_t
    operator()(const BlockFingerprint& fp) const
    {
        // Consistent with canonical equality; remix for good measure.
        // The zero epoch keys to 0, so legacy hashes are unchanged.
        return static_cast<std::size_t>(
            (fp.canonical() * 0x9e3779b97f4a7c15ull) ^
            (fp.epoch.key() * 0xff51afd7ed558ccdull));
    }
};

/**
 * Fingerprint a bound (parameter-free) block circuit. Fatal on a
 * symbolic circuit: variational angles must be bound — or the block
 * must be Fixed — before its pulse can be content-addressed.
 */
BlockFingerprint fingerprintBlock(const Circuit& block);

/**
 * Global-phase-invariant hash of a unitary: the matrix is rotated so
 * its largest-magnitude entry is real positive, quantized, and
 * hashed. Exposed for tests.
 */
std::uint64_t phaseInvariantUnitaryHash(const CMatrix& u);

} // namespace qpc

#endif // QPC_CACHE_FINGERPRINT_H
