#include "cache/fingerprint.h"

#include <cmath>
#include <complex>
#include <cstdio>

#include "common/logging.h"
#include "sim/statevector.h"

namespace qpc {

namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void
mix(std::uint64_t& h, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= kFnvPrime;
    }
}

/** Quantize a real value onto a fixed grid before hashing. */
std::int64_t
quantize(double v, double grid)
{
    const double scaled = v / grid;
    // Saturate rather than invoke UB on out-of-range casts; angles and
    // unitary entries never get near this in practice.
    if (scaled >= 9.2e18)
        return INT64_MAX;
    if (scaled <= -9.2e18)
        return INT64_MIN;
    return std::llround(scaled);
}

} // namespace

std::string
BlockFingerprint::hex() const
{
    char buf[36];
    if (epoch.zero()) {
        std::snprintf(buf, sizeof(buf), "%c%016llx",
                      unitaryHash ? 'u' : 's',
                      static_cast<unsigned long long>(canonical()));
    } else {
        std::snprintf(buf, sizeof(buf), "%c%016llx-e%016llx",
                      unitaryHash ? 'u' : 's',
                      static_cast<unsigned long long>(canonical()),
                      static_cast<unsigned long long>(epoch.key()));
    }
    return buf;
}

std::uint64_t
phaseInvariantUnitaryHash(const CMatrix& u)
{
    // Rotate the global phase so the first entry of largest magnitude
    // becomes real positive. Magnitudes are phase-invariant, so the
    // anchor entry is chosen identically for any phase-shifted copy.
    double best = 0.0;
    for (int r = 0; r < u.rows(); ++r)
        for (int c = 0; c < u.cols(); ++c)
            best = std::max(best, std::abs(u(r, c)));
    Complex anchor = 1.0;
    bool found = false;
    for (int r = 0; r < u.rows() && !found; ++r)
        for (int c = 0; c < u.cols() && !found; ++c) {
            const Complex v = u(r, c);
            if (std::abs(v) >= best * (1.0 - 1e-9)) {
                anchor = v / std::abs(v);
                found = true;
            }
        }
    const Complex rotation = std::conj(anchor);

    // 1e-6 grid: far above the ~1e-12 numerical noise of building the
    // same unitary twice, far below any distance between distinct
    // gates. A rare straddle only splits one cache line, never aliases
    // two different unitaries.
    std::uint64_t h = kFnvOffset;
    mix(h, static_cast<std::uint64_t>(u.rows()));
    for (int r = 0; r < u.rows(); ++r)
        for (int c = 0; c < u.cols(); ++c) {
            const Complex v = u(r, c) * rotation;
            mix(h, static_cast<std::uint64_t>(
                       quantize(v.real(), 1e-6)));
            mix(h, static_cast<std::uint64_t>(
                       quantize(v.imag(), 1e-6)));
        }
    return h;
}

BlockFingerprint
fingerprintBlock(const Circuit& block)
{
    fatalIf(!block.isParamFree(),
            "cannot fingerprint a symbolic circuit: bind parameters "
            "first");

    BlockFingerprint fp;
    std::uint64_t h = kFnvOffset;
    mix(h, static_cast<std::uint64_t>(block.numQubits()));
    for (const GateOp& op : block.ops()) {
        mix(h, static_cast<std::uint64_t>(op.kind));
        mix(h, static_cast<std::uint64_t>(op.q0));
        mix(h, static_cast<std::uint64_t>(op.q1 + 1));
        const double angle =
            gateIsRotation(op.kind) ? op.angle.bind({}) : 0.0;
        // 1e-9 rad grid keeps the address exact for identical bound
        // angles while tolerating printf-and-reparse jitter.
        mix(h, static_cast<std::uint64_t>(quantize(angle, 1e-9)));
    }
    fp.structureHash = h;

    if (block.numQubits() <= kMaxUnitaryFingerprintQubits)
        fp.unitaryHash = phaseInvariantUnitaryHash(circuitUnitary(block));
    return fp;
}

} // namespace qpc
