/**
 * @file
 * Content-addressed pulse store.
 *
 * Two tiers behind one get/put interface:
 *  - a sharded in-memory LRU (per-shard mutex + intrusive recency
 *    list), bounded in entries *and* in bytes, so concurrent compile
 *    workers and the serving path never contend on a single lock and
 *    a handful of wide-block pulses cannot blow the memory budget;
 *  - an optional on-disk tier: one binary-serialized PulseSchedule per
 *    fingerprint (`<hex>.qpulse` under diskDir, written atomically),
 *    which survives process exit — the amortization story of the
 *    paper (pre-compile once, serve thousands of VQE/QAOA iterations)
 *    extended across runs. The disk tier is kept under `maxDiskBytes`
 *    by an mtime-LRU garbage collector (oldest records removed first,
 *    whole-file unlinks only, so a concurrent get() sees either a
 *    complete record or a miss — never a torn one).
 *
 * A memory miss falls through to disk; a disk hit is promoted back
 * into the LRU. Corrupt or truncated disk records read as misses.
 * Every transition is counted in CacheStats.
 */

#ifndef QPC_CACHE_PULSECACHE_H
#define QPC_CACHE_PULSECACHE_H

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "cache/fingerprint.h"
#include "pulse/schedule.h"
#include "telemetry/histogram.h"

namespace qpc {

/**
 * Cached pulses are shared, immutable values: a lookup hands back a
 * reference-counted pointer, so serving thousands of iterations never
 * deep-copies sample arrays out of the cache.
 */
using PulsePtr = std::shared_ptr<const PulseSchedule>;

/** Sizing and placement of one PulseCache. */
struct PulseCacheOptions
{
    /**
     * Total in-memory entries across all shards. Distributed so every
     * shard holds at least one entry and the per-shard caps sum to at
     * least `capacity` (remainders go to the low shards rather than
     * being truncated away).
     */
    std::size_t capacity = 4096;
    /**
     * Total in-memory budget in serialized bytes across all shards;
     * 0 leaves the cache entry-bounded only. A hard bound: eviction
     * keeps the sum of resident pulses' serializedBytes() at or under
     * this, even if that means a pulse larger than its shard's budget
     * is not retained at all. Granularity caveat: the budget is split
     * per shard, so a single pulse larger than capacityBytes/shards
     * is refused from memory (counted in CacheStats::oversized) even
     * when the global budget could hold it — size `shards` down when
     * individual pulses are a large fraction of the budget.
     */
    std::size_t capacityBytes = 0;
    /** Shard count; requests spread by fingerprint hash. */
    int shards = 8;
    /** On-disk tier directory; empty keeps the cache memory-only. */
    std::string diskDir;
    /**
     * Byte cap on the disk tier; 0 leaves it unbounded. Enforced by
     * an mtime-LRU sweep (oldest records unlinked first) that runs
     * after any put() that pushes the tier past the cap (when
     * `gcOnPut` is set) or whenever gcDisk() is called explicitly.
     * Each sweep removes down to a low-water mark 1/8 below the cap,
     * so steady-state writes amortize the directory rescan instead of
     * paying it per put.
     */
    std::size_t maxDiskBytes = 0;
    /** Sweep the disk tier automatically when a put() overflows it. */
    bool gcOnPut = true;
    /**
     * Calibration epoch this cache serves. Disk records stamped with a
     * different epoch are never adopted at construction and never
     * served from get() — they read as misses. The zero epoch (the
     * default) matches pre-epoch version-1 records, preserving old
     * disk tiers.
     */
    CalibrationEpoch epoch;
};

/** What one disk-tier garbage-collection sweep saw and removed. */
struct DiskGcReport
{
    std::uint64_t scannedFiles = 0; ///< .qpulse records found.
    std::uint64_t removedFiles = 0; ///< Records unlinked (oldest first).
    std::uint64_t removedBytes = 0; ///< Bytes those records held.
    std::size_t remainingBytes = 0; ///< Tier size after the sweep.
    /** Another process held the tier's flock: the sweep was skipped
     * (that sweeper enforces the cap for everyone). */
    bool lockBusy = false;
};

/** Monotonic counters, snapshotted by PulseCache::stats(). */
struct CacheStats
{
    std::uint64_t lookups = 0;    ///< get() calls.
    std::uint64_t hits = 0;       ///< Served from memory.
    std::uint64_t diskHits = 0;   ///< Served from disk (and promoted).
    std::uint64_t misses = 0;     ///< Absent from both tiers.
    std::uint64_t insertions = 0; ///< put() calls that added an entry.
    std::uint64_t evictions = 0;  ///< LRU entries displaced.
    std::uint64_t diskWrites = 0; ///< Files persisted.
    std::size_t entries = 0;      ///< Current in-memory entries.

    /** @name Byte accounting (serialized footprint of cached pulses)
     *  @{ */
    std::size_t bytesInUse = 0;      ///< Resident bytes, all shards.
    std::uint64_t bytesEvicted = 0;  ///< Bytes displaced by eviction.
    std::uint64_t released = 0;      ///< Entries dropped via erase().
    std::uint64_t bytesReleased = 0; ///< Bytes returned via erase().
    /** Pulses larger than their shard's byte budget, refused up front
     * (the disk tier still holds them when configured). */
    std::uint64_t oversized = 0;
    /** @} */

    /** @name Calibration-epoch keying
     *  @{ */
    /** Existing disk records skipped at construction because their
     * stamped epoch (or format version) did not match the cache's. */
    std::uint64_t adoptionSkipped = 0;
    std::uint64_t adoptionSkippedBytes = 0; ///< Bytes those held.
    /** Disk reads discarded because the record's stamped epoch did not
     * match the requested fingerprint's (served as misses). */
    std::uint64_t diskEpochMismatches = 0;
    /** @} */

    /** @name Disk-tier garbage collection
     *  @{ */
    std::uint64_t diskGcRuns = 0;         ///< Sweeps performed.
    std::uint64_t diskGcRemovals = 0;     ///< Records unlinked.
    std::uint64_t diskGcBytesRemoved = 0; ///< Bytes reclaimed.
    /** Sweeps skipped because another process held the tier's flock. */
    std::uint64_t diskGcLockBusy = 0;
    /** Disk-tier size as tracked by the cache (exact after a sweep;
     * between sweeps, an upper bound that counts re-written records
     * twice until the next rescan). */
    std::size_t diskBytesInUse = 0;
    /** @} */

    /** Fraction of lookups served from either tier. */
    double
    hitRate() const
    {
        return lookups ? static_cast<double>(hits + diskHits) / lookups
                       : 0.0;
    }
};

/**
 * Latency distributions for the cache's externally visible
 * operations, with the disk tier split out: a get() that fell
 * through to disk pays loadPulseSchedule(), a put() with a disk tier
 * pays savePulseSchedule(), and these snapshots show how much.
 */
struct CacheTelemetry
{
    HistogramSnapshot getNs;       ///< Whole get() calls.
    HistogramSnapshot putNs;       ///< Whole put() calls.
    HistogramSnapshot diskReadNs;  ///< Disk-tier load attempts.
    HistogramSnapshot diskWriteNs; ///< Disk-tier persists.
};

/** Thread-safe two-tier pulse store addressed by block fingerprint. */
class PulseCache
{
  public:
    explicit PulseCache(PulseCacheOptions options = {});
    ~PulseCache();

    const PulseCacheOptions& options() const { return options_; }

    /**
     * Sum of per-shard entry caps — at least options().capacity, never
     * silently less when capacity does not divide the shard count.
     */
    std::size_t effectiveCapacity() const;

    /** Fetch a pulse (null on miss), promoting disk entries into
     * memory. */
    PulsePtr get(const BlockFingerprint& fp);

    /**
     * Memory-tier-only probe that records no statistics: used by the
     * compile service's single-flight admission to re-check under its
     * lock without touching disk or double-counting the lookup it
     * already performed.
     */
    PulsePtr peekMemory(const BlockFingerprint& fp);

    /** Store a pulse in memory and (when configured) on disk. */
    void put(const BlockFingerprint& fp, PulsePtr pulse);
    void put(const BlockFingerprint& fp, PulseSchedule pulse);

    /**
     * Drop one entry from the memory tier, returning the serialized
     * bytes it released against the byte budget (0 when absent). The
     * disk tier keeps its record, so an erased pulse that is requested
     * again promotes back instead of re-synthesizing. Used by adaptive
     * quantization to release stale coarse-bin pulses once their bin
     * has been split into finer children.
     */
    std::size_t erase(const BlockFingerprint& fp);

    /**
     * Sweep the disk tier down to options().maxDiskBytes by removing
     * the oldest records (mtime order) first. Safe to call at any
     * time, from any thread, concurrently with get()/put(): removal is
     * whole-file unlink, so a concurrent reader observes either the
     * intact record or a clean miss. A no-op report when the cache has
     * no disk tier (or is already under the cap). When several
     * processes share the directory, an advisory flock on
     * `.qpc-gc.lock` serializes their sweeps: a contended sweep is
     * skipped (lockBusy in the report) rather than queued, since the
     * holder is already enforcing the cap — and two sweepers racing
     * the same victim list would double-unlink each other's records.
     */
    DiskGcReport gcDisk();

    /** Drop every in-memory entry; the disk tier is untouched. */
    void clearMemory();

    CacheStats stats() const;

    /** Snapshot the get/put and disk-tier latency histograms. */
    CacheTelemetry telemetry() const;

  private:
    struct Entry
    {
        BlockFingerprint fp;
        PulsePtr pulse;
        std::size_t bytes = 0; ///< pulse->serializedBytes(), cached.
    };

    struct Shard
    {
        std::mutex mu;
        /** Front = most recently used. */
        std::list<Entry> lru;
        std::unordered_map<BlockFingerprint, std::list<Entry>::iterator,
                           BlockFingerprintHash>
            index;
        std::size_t capacityEntries = 0;
        /** 0 = no byte bound on this shard. */
        std::size_t capacityBytes = 0;
        std::size_t bytesInUse = 0;
    };

    PulsePtr getImpl(const BlockFingerprint& fp);
    void putImpl(const BlockFingerprint& fp, PulsePtr pulse);
    Shard& shardFor(const BlockFingerprint& fp);
    /** Insert into one shard, evicting as needed. Caller holds no lock. */
    void insertMemory(Shard& shard, const BlockFingerprint& fp,
                      PulsePtr pulse);
    /** Evict from the shard tail until both bounds hold (lock held). */
    void evictToBounds(Shard& shard);
    std::string diskPath(const BlockFingerprint& fp) const;

    PulseCacheOptions options_;
    std::unique_ptr<Shard[]> shards_;

    std::atomic<std::uint64_t> lookups_{0};
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> diskHits_{0};
    std::atomic<std::uint64_t> misses_{0};
    std::atomic<std::uint64_t> insertions_{0};
    std::atomic<std::uint64_t> evictions_{0};
    std::atomic<std::uint64_t> diskWrites_{0};
    std::atomic<std::uint64_t> bytesEvicted_{0};
    std::atomic<std::uint64_t> oversized_{0};
    std::atomic<std::uint64_t> released_{0};
    std::atomic<std::uint64_t> bytesReleased_{0};
    std::atomic<std::uint64_t> adoptionSkipped_{0};
    std::atomic<std::uint64_t> adoptionSkippedBytes_{0};
    std::atomic<std::uint64_t> diskEpochMismatches_{0};

    LatencyHistogram getNs_;
    LatencyHistogram putNs_;
    LatencyHistogram diskReadNs_;
    LatencyHistogram diskWriteNs_;

    /** One sweep at a time in-process; put()/get() never take this. */
    std::mutex diskGcMu_;
    /** Cross-process sweep exclusion: an fd on `.qpc-gc.lock` in the
     * tier directory, flock'd for the duration of a sweep. -1 when
     * the cache has no disk tier or the lockfile could not be opened
     * (sweeps then proceed with in-process exclusion only). */
    int diskGcLockFd_ = -1;
    /** Tracked tier size: exact after a sweep, upper bound between. */
    std::atomic<std::size_t> diskBytes_{0};
    std::atomic<std::uint64_t> diskGcRuns_{0};
    std::atomic<std::uint64_t> diskGcRemovals_{0};
    std::atomic<std::uint64_t> diskGcBytesRemoved_{0};
    std::atomic<std::uint64_t> diskGcLockBusy_{0};
};

} // namespace qpc

#endif // QPC_CACHE_PULSECACHE_H
