/**
 * @file
 * Content-addressed pulse store.
 *
 * Two tiers behind one get/put interface:
 *  - a sharded in-memory LRU (per-shard mutex + intrusive recency
 *    list), sized in entries, so concurrent compile workers and the
 *    serving path never contend on a single lock;
 *  - an optional on-disk tier: one binary-serialized PulseSchedule per
 *    fingerprint (`<hex>.qpulse` under diskDir, written atomically),
 *    which survives process exit — the amortization story of the
 *    paper (pre-compile once, serve thousands of VQE/QAOA iterations)
 *    extended across runs.
 *
 * A memory miss falls through to disk; a disk hit is promoted back
 * into the LRU. Corrupt or truncated disk records read as misses.
 * Every transition is counted in CacheStats.
 */

#ifndef QPC_CACHE_PULSECACHE_H
#define QPC_CACHE_PULSECACHE_H

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "cache/fingerprint.h"
#include "pulse/schedule.h"

namespace qpc {

/**
 * Cached pulses are shared, immutable values: a lookup hands back a
 * reference-counted pointer, so serving thousands of iterations never
 * deep-copies sample arrays out of the cache.
 */
using PulsePtr = std::shared_ptr<const PulseSchedule>;

/** Sizing and placement of one PulseCache. */
struct PulseCacheOptions
{
    /** Total in-memory entries across all shards (>= 1 per shard). */
    std::size_t capacity = 4096;
    /** Shard count; requests spread by fingerprint hash. */
    int shards = 8;
    /** On-disk tier directory; empty keeps the cache memory-only. */
    std::string diskDir;
};

/** Monotonic counters, snapshotted by PulseCache::stats(). */
struct CacheStats
{
    std::uint64_t lookups = 0;    ///< get() calls.
    std::uint64_t hits = 0;       ///< Served from memory.
    std::uint64_t diskHits = 0;   ///< Served from disk (and promoted).
    std::uint64_t misses = 0;     ///< Absent from both tiers.
    std::uint64_t insertions = 0; ///< put() calls that added an entry.
    std::uint64_t evictions = 0;  ///< LRU entries displaced.
    std::uint64_t diskWrites = 0; ///< Files persisted.
    std::size_t entries = 0;      ///< Current in-memory entries.

    /** Fraction of lookups served from either tier. */
    double
    hitRate() const
    {
        return lookups ? static_cast<double>(hits + diskHits) / lookups
                       : 0.0;
    }
};

/** Thread-safe two-tier pulse store addressed by block fingerprint. */
class PulseCache
{
  public:
    explicit PulseCache(PulseCacheOptions options = {});

    const PulseCacheOptions& options() const { return options_; }

    /** Fetch a pulse (null on miss), promoting disk entries into
     * memory. */
    PulsePtr get(const BlockFingerprint& fp);

    /**
     * Memory-tier-only probe that records no statistics: used by the
     * compile service's single-flight admission to re-check under its
     * lock without touching disk or double-counting the lookup it
     * already performed.
     */
    PulsePtr peekMemory(const BlockFingerprint& fp);

    /** Store a pulse in memory and (when configured) on disk. */
    void put(const BlockFingerprint& fp, PulsePtr pulse);
    void put(const BlockFingerprint& fp, PulseSchedule pulse);

    /** Drop every in-memory entry; the disk tier is untouched. */
    void clearMemory();

    CacheStats stats() const;

  private:
    struct Shard
    {
        std::mutex mu;
        /** Front = most recently used. */
        std::list<std::pair<BlockFingerprint, PulsePtr>> lru;
        std::unordered_map<
            BlockFingerprint,
            std::list<std::pair<BlockFingerprint, PulsePtr>>::iterator,
            BlockFingerprintHash>
            index;
    };

    Shard& shardFor(const BlockFingerprint& fp);
    /** Insert into one shard, evicting as needed. Caller holds no lock. */
    void insertMemory(Shard& shard, const BlockFingerprint& fp,
                      PulsePtr pulse);
    std::string diskPath(const BlockFingerprint& fp) const;

    PulseCacheOptions options_;
    std::size_t perShardCapacity_;
    std::unique_ptr<Shard[]> shards_;

    std::atomic<std::uint64_t> lookups_{0};
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> diskHits_{0};
    std::atomic<std::uint64_t> misses_{0};
    std::atomic<std::uint64_t> insertions_{0};
    std::atomic<std::uint64_t> evictions_{0};
    std::atomic<std::uint64_t> diskWrites_{0};
};

} // namespace qpc

#endif // QPC_CACHE_PULSECACHE_H
