#include "cache/pulsecache.h"

#include <filesystem>

#include "common/logging.h"
#include "pulse/serialize.h"

namespace qpc {

PulseCache::PulseCache(PulseCacheOptions options)
    : options_(std::move(options))
{
    fatalIf(options_.shards <= 0, "cache needs at least one shard");
    fatalIf(options_.capacity == 0, "cache needs nonzero capacity");
    perShardCapacity_ = std::max<std::size_t>(
        1, options_.capacity / static_cast<std::size_t>(options_.shards));
    shards_ = std::make_unique<Shard[]>(options_.shards);
    if (!options_.diskDir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(options_.diskDir, ec);
        fatalIf(static_cast<bool>(ec), "cannot create cache directory ",
                options_.diskDir, ": ", ec.message());
    }
}

PulseCache::Shard&
PulseCache::shardFor(const BlockFingerprint& fp)
{
    const std::size_t h = BlockFingerprintHash{}(fp);
    return shards_[h % static_cast<std::size_t>(options_.shards)];
}

std::string
PulseCache::diskPath(const BlockFingerprint& fp) const
{
    return options_.diskDir + "/" + fp.hex() + ".qpulse";
}

PulsePtr
PulseCache::get(const BlockFingerprint& fp)
{
    lookups_.fetch_add(1, std::memory_order_relaxed);
    Shard& shard = shardFor(fp);
    {
        std::lock_guard<std::mutex> lock(shard.mu);
        auto it = shard.index.find(fp);
        if (it != shard.index.end()) {
            shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
            hits_.fetch_add(1, std::memory_order_relaxed);
            return it->second->second;
        }
    }
    if (!options_.diskDir.empty()) {
        if (std::optional<PulseSchedule> pulse =
                loadPulseSchedule(diskPath(fp))) {
            diskHits_.fetch_add(1, std::memory_order_relaxed);
            PulsePtr shared =
                std::make_shared<const PulseSchedule>(std::move(*pulse));
            insertMemory(shard, fp, shared);
            return shared;
        }
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
}

PulsePtr
PulseCache::peekMemory(const BlockFingerprint& fp)
{
    Shard& shard = shardFor(fp);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(fp);
    if (it == shard.index.end())
        return nullptr;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return it->second->second;
}

void
PulseCache::insertMemory(Shard& shard, const BlockFingerprint& fp,
                         PulsePtr pulse)
{
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(fp);
    if (it != shard.index.end()) {
        // Refresh in place: same key, possibly re-synthesized pulse.
        it->second->second = std::move(pulse);
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        return;
    }
    shard.lru.emplace_front(fp, std::move(pulse));
    shard.index[fp] = shard.lru.begin();
    insertions_.fetch_add(1, std::memory_order_relaxed);
    while (shard.lru.size() > perShardCapacity_) {
        shard.index.erase(shard.lru.back().first);
        shard.lru.pop_back();
        evictions_.fetch_add(1, std::memory_order_relaxed);
    }
}

void
PulseCache::put(const BlockFingerprint& fp, PulsePtr pulse)
{
    panicIf(!pulse, "cannot cache a null pulse");
    // Disk first (outside any shard lock: serialization and I/O are
    // the slow part), then memory, so a reader that sees the memory
    // entry evicted later still finds the disk record.
    if (!options_.diskDir.empty()) {
        if (savePulseSchedule(diskPath(fp), *pulse))
            diskWrites_.fetch_add(1, std::memory_order_relaxed);
        else
            warn("pulse cache: failed to persist ", diskPath(fp));
    }
    insertMemory(shardFor(fp), fp, std::move(pulse));
}

void
PulseCache::put(const BlockFingerprint& fp, PulseSchedule pulse)
{
    put(fp, std::make_shared<const PulseSchedule>(std::move(pulse)));
}

void
PulseCache::clearMemory()
{
    for (int s = 0; s < options_.shards; ++s) {
        std::lock_guard<std::mutex> lock(shards_[s].mu);
        shards_[s].lru.clear();
        shards_[s].index.clear();
    }
}

CacheStats
PulseCache::stats() const
{
    CacheStats out;
    out.lookups = lookups_.load(std::memory_order_relaxed);
    out.hits = hits_.load(std::memory_order_relaxed);
    out.diskHits = diskHits_.load(std::memory_order_relaxed);
    out.misses = misses_.load(std::memory_order_relaxed);
    out.insertions = insertions_.load(std::memory_order_relaxed);
    out.evictions = evictions_.load(std::memory_order_relaxed);
    out.diskWrites = diskWrites_.load(std::memory_order_relaxed);
    std::size_t entries = 0;
    for (int s = 0; s < options_.shards; ++s) {
        std::lock_guard<std::mutex> lock(shards_[s].mu);
        entries += shards_[s].lru.size();
    }
    out.entries = entries;
    return out;
}

} // namespace qpc
