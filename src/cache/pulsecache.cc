#include "cache/pulsecache.h"

#include <algorithm>
#include <filesystem>
#include <vector>

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include "common/logging.h"
#include "pulse/serialize.h"
#include "telemetry/trace.h"

namespace qpc {

namespace {

/** Scan one disk-tier directory: .qpulse records only, errors skipped
 * (a record another thread is unlinking is simply not counted). */
struct DiskRecord
{
    std::filesystem::path path;
    std::uintmax_t bytes = 0;
    std::filesystem::file_time_type mtime;
};

std::vector<DiskRecord>
scanDiskTier(const std::string& dir)
{
    std::vector<DiskRecord> records;
    std::error_code ec;
    std::filesystem::directory_iterator it(dir, ec);
    if (ec)
        return records;
    for (const auto& entry : it) {
        if (!entry.is_regular_file(ec) || ec)
            continue;
        if (entry.path().extension() != ".qpulse")
            continue;
        DiskRecord record;
        record.path = entry.path();
        record.bytes = entry.file_size(ec);
        if (ec)
            continue;
        record.mtime = entry.last_write_time(ec);
        if (ec)
            continue;
        records.push_back(std::move(record));
    }
    return records;
}

} // namespace

PulseCache::PulseCache(PulseCacheOptions options)
    : options_(std::move(options))
{
    fatalIf(options_.shards <= 0, "cache needs at least one shard");
    fatalIf(options_.capacity == 0, "cache needs nonzero capacity");
    const auto shards = static_cast<std::size_t>(options_.shards);
    shards_ = std::make_unique<Shard[]>(options_.shards);
    // Distribute both budgets with their remainders spread across the
    // low shards: per-shard caps sum to >= the requested capacity (the
    // old truncating division under-provisioned, e.g. capacity=12 over
    // 8 shards gave 8 effective entries) and to exactly capacityBytes,
    // which is what makes the byte bound a *global* hard bound.
    for (std::size_t s = 0; s < shards; ++s) {
        shards_[s].capacityEntries =
            std::max<std::size_t>(1, options_.capacity / shards +
                                         (s < options_.capacity % shards
                                              ? 1
                                              : 0));
        if (options_.capacityBytes > 0)
            // Never 0: a 0 per-shard budget would read as "unbounded"
            // and void the hard bound for keys hashing there. A 1-byte
            // floor instead refuses every pulse (all are larger), so a
            // degenerate budget under-admits rather than over-commits.
            shards_[s].capacityBytes = std::max<std::size_t>(
                1, options_.capacityBytes / shards +
                       (s < options_.capacityBytes % shards ? 1 : 0));
    }
    if (!options_.diskDir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(options_.diskDir, ec);
        fatalIf(static_cast<bool>(ec), "cannot create cache directory ",
                options_.diskDir, ": ", ec.message());
        // Adopt whatever a previous process left behind, so gcOnPut
        // triggers at the right point from the first write on — but
        // only records this cache can actually serve. A record from a
        // different calibration epoch (or an unreadable header) will
        // never satisfy a get(), so adopting its bytes would just
        // inflate the tracker and trigger premature sweeps; count it
        // instead so the operator can see the stale tier.
        std::size_t existing = 0;
        for (const DiskRecord& record :
             scanDiskTier(options_.diskDir)) {
            const std::optional<CalibrationEpoch> meta =
                peekPulseRecordEpoch(record.path.string());
            if (meta && *meta == options_.epoch) {
                existing += static_cast<std::size_t>(record.bytes);
            } else {
                adoptionSkipped_.fetch_add(1,
                                           std::memory_order_relaxed);
                adoptionSkippedBytes_.fetch_add(
                    record.bytes, std::memory_order_relaxed);
            }
        }
        diskBytes_.store(existing, std::memory_order_relaxed);
        // The lockfile's extension is not .qpulse, so the scan and the
        // GC victim list never see it. O_CREAT is racy-safe: every
        // process opens the same inode, and flock on distinct open
        // file descriptions excludes even within one process.
        const std::string lockPath =
            options_.diskDir + "/.qpc-gc.lock";
        diskGcLockFd_ = ::open(lockPath.c_str(), O_CREAT | O_RDWR,
                               0644);
        if (diskGcLockFd_ < 0)
            warn("pulse cache: cannot open GC lockfile ", lockPath,
                 " (sweeps fall back to in-process exclusion)");
    }
}

PulseCache::~PulseCache()
{
    if (diskGcLockFd_ >= 0)
        ::close(diskGcLockFd_);
}

std::size_t
PulseCache::effectiveCapacity() const
{
    std::size_t total = 0;
    for (int s = 0; s < options_.shards; ++s)
        total += shards_[s].capacityEntries;
    return total;
}

PulseCache::Shard&
PulseCache::shardFor(const BlockFingerprint& fp)
{
    const std::size_t h = BlockFingerprintHash{}(fp);
    return shards_[h % static_cast<std::size_t>(options_.shards)];
}

std::string
PulseCache::diskPath(const BlockFingerprint& fp) const
{
    return options_.diskDir + "/" + fp.hex() + ".qpulse";
}

PulsePtr
PulseCache::get(const BlockFingerprint& fp)
{
    // Sampled 1-in-16: a warm-tier get is ~100 ns, so timing every
    // one with two ~30 ns clock reads would cost more than the
    // operation it measures. The sample keeps the histogram
    // representative (the first get on each thread is always
    // sampled); disk-tier latencies are timed exactly in getImpl
    // (diskReadNs_), where the I/O dwarfs the clock reads.
    thread_local std::uint32_t tick = 0;
    if ((tick++ & 15u) != 0)
        return getImpl(fp);
    const std::uint64_t t0 = traceNowNs();
    PulsePtr result = getImpl(fp);
    const std::uint64_t t1 = traceNowNs();
    getNs_.record(t1 > t0 ? t1 - t0 : 0);
    return result;
}

PulsePtr
PulseCache::getImpl(const BlockFingerprint& fp)
{
    lookups_.fetch_add(1, std::memory_order_relaxed);
    Shard& shard = shardFor(fp);
    {
        std::lock_guard<std::mutex> lock(shard.mu);
        auto it = shard.index.find(fp);
        if (it != shard.index.end()) {
            shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
            hits_.fetch_add(1, std::memory_order_relaxed);
            return it->second->pulse;
        }
    }
    if (!options_.diskDir.empty()) {
        std::optional<PulseSchedule> pulse;
        CalibrationEpoch meta;
        {
            TraceSpan span("disk-read");
            const std::uint64_t r0 = traceNowNs();
            pulse = loadPulseSchedule(diskPath(fp), &meta);
            const std::uint64_t r1 = traceNowNs();
            diskReadNs_.record(r1 > r0 ? r1 - r0 : 0);
        }
        if (pulse && meta != fp.epoch) {
            // The filename matched but the stamped epoch does not:
            // the record was synthesized against a different device
            // calibration, so serving it would be wrong physics.
            // Treat it as a miss; the re-synthesized pulse will
            // overwrite the record with the right stamp.
            diskEpochMismatches_.fetch_add(1,
                                           std::memory_order_relaxed);
            pulse.reset();
        }
        if (pulse) {
            diskHits_.fetch_add(1, std::memory_order_relaxed);
            PulsePtr shared =
                std::make_shared<const PulseSchedule>(std::move(*pulse));
            insertMemory(shard, fp, shared);
            return shared;
        }
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
}

PulsePtr
PulseCache::peekMemory(const BlockFingerprint& fp)
{
    Shard& shard = shardFor(fp);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(fp);
    if (it == shard.index.end())
        return nullptr;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return it->second->pulse;
}

void
PulseCache::evictToBounds(Shard& shard)
{
    while (!shard.lru.empty() &&
           (shard.lru.size() > shard.capacityEntries ||
            (shard.capacityBytes > 0 &&
             shard.bytesInUse > shard.capacityBytes))) {
        const Entry& victim = shard.lru.back();
        shard.bytesInUse -= victim.bytes;
        bytesEvicted_.fetch_add(victim.bytes,
                                std::memory_order_relaxed);
        shard.index.erase(victim.fp);
        shard.lru.pop_back();
        evictions_.fetch_add(1, std::memory_order_relaxed);
    }
}

void
PulseCache::insertMemory(Shard& shard, const BlockFingerprint& fp,
                         PulsePtr pulse)
{
    const std::size_t bytes = pulse->serializedBytes();
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.capacityBytes > 0 && bytes > shard.capacityBytes) {
        // Larger than this shard's whole byte budget: admitting it
        // would displace the entire shard only to be evicted right
        // back out. Refuse up front — the disk tier (when configured)
        // still holds the pulse — and drop any stale smaller entry
        // under the same key so a refresh never serves outdated
        // samples.
        auto it = shard.index.find(fp);
        if (it != shard.index.end()) {
            shard.bytesInUse -= it->second->bytes;
            shard.lru.erase(it->second);
            shard.index.erase(it);
        }
        oversized_.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    auto it = shard.index.find(fp);
    if (it != shard.index.end()) {
        // Refresh in place: same key, possibly re-synthesized pulse.
        shard.bytesInUse += bytes;
        shard.bytesInUse -= it->second->bytes;
        it->second->pulse = std::move(pulse);
        it->second->bytes = bytes;
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        evictToBounds(shard);
        return;
    }
    shard.lru.push_front(Entry{fp, std::move(pulse), bytes});
    shard.index[fp] = shard.lru.begin();
    shard.bytesInUse += bytes;
    insertions_.fetch_add(1, std::memory_order_relaxed);
    evictToBounds(shard);
}

void
PulseCache::put(const BlockFingerprint& fp, PulsePtr pulse)
{
    const std::uint64_t t0 = traceNowNs();
    putImpl(fp, std::move(pulse));
    const std::uint64_t t1 = traceNowNs();
    putNs_.record(t1 > t0 ? t1 - t0 : 0);
}

void
PulseCache::putImpl(const BlockFingerprint& fp, PulsePtr pulse)
{
    panicIf(!pulse, "cannot cache a null pulse");
    // Disk first (outside any shard lock: serialization and I/O are
    // the slow part), then memory, so a reader that sees the memory
    // entry evicted later still finds the disk record.
    if (!options_.diskDir.empty()) {
        bool saved;
        {
            TraceSpan span("disk-write");
            const std::uint64_t w0 = traceNowNs();
            // Stamp the record with the *fingerprint's* epoch, not the
            // cache's: after a bump, plans still serving the old epoch
            // keep re-persisting old-epoch pulses under old-epoch
            // names, and a mismatch here would turn every one of their
            // disk hits into a re-synthesis loop.
            saved = savePulseSchedule(diskPath(fp), *pulse, fp.epoch);
            const std::uint64_t w1 = traceNowNs();
            diskWriteNs_.record(w1 > w0 ? w1 - w0 : 0);
        }
        if (saved) {
            diskWrites_.fetch_add(1, std::memory_order_relaxed);
            // Overwrites count their record twice until the next
            // sweep rescans — the approximation only ever errs toward
            // sweeping early, never toward overshooting the cap.
            const std::size_t tracked =
                diskBytes_.fetch_add(pulse->serializedBytes(),
                                     std::memory_order_relaxed) +
                pulse->serializedBytes();
            if (options_.gcOnPut && options_.maxDiskBytes > 0 &&
                tracked > options_.maxDiskBytes)
                gcDisk();
        } else {
            warn("pulse cache: failed to persist ", diskPath(fp));
        }
    }
    insertMemory(shardFor(fp), fp, std::move(pulse));
}

void
PulseCache::put(const BlockFingerprint& fp, PulseSchedule pulse)
{
    put(fp, std::make_shared<const PulseSchedule>(std::move(pulse)));
}

std::size_t
PulseCache::erase(const BlockFingerprint& fp)
{
    Shard& shard = shardFor(fp);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(fp);
    if (it == shard.index.end())
        return 0;
    const std::size_t bytes = it->second->bytes;
    shard.bytesInUse -= bytes;
    shard.lru.erase(it->second);
    shard.index.erase(it);
    released_.fetch_add(1, std::memory_order_relaxed);
    bytesReleased_.fetch_add(bytes, std::memory_order_relaxed);
    return bytes;
}

DiskGcReport
PulseCache::gcDisk()
{
    DiskGcReport report;
    if (options_.diskDir.empty())
        return report;
    // One sweep at a time; readers and writers are never blocked by
    // this lock (they don't take it), only concurrent sweeps are.
    std::lock_guard<std::mutex> lock(diskGcMu_);

    // Cross-process exclusion: two daemons sweeping one shared tier
    // would race the same mtime-ordered victim list and double-unlink.
    // Non-blocking — if another process is mid-sweep it is already
    // enforcing the cap, so skip rather than queue behind it.
    const bool flocked =
        diskGcLockFd_ >= 0 &&
        ::flock(diskGcLockFd_, LOCK_EX | LOCK_NB) == 0;
    if (diskGcLockFd_ >= 0 && !flocked) {
        diskGcLockBusy_.fetch_add(1, std::memory_order_relaxed);
        report.lockBusy = true;
        return report;
    }

    const std::size_t tracked_before =
        diskBytes_.load(std::memory_order_relaxed);
    std::vector<DiskRecord> records = scanDiskTier(options_.diskDir);
    report.scannedFiles = records.size();
    std::size_t total = 0;
    for (const DiskRecord& record : records)
        total += static_cast<std::size_t>(record.bytes);

    if (options_.maxDiskBytes > 0 && total > options_.maxDiskBytes) {
        // Sweep down to a low-water mark one eighth below the cap,
        // not to the cap itself: at steady state each sweep then buys
        // maxDiskBytes/8 of writes before the next one, instead of a
        // full directory rescan on every put.
        const std::size_t target =
            options_.maxDiskBytes - options_.maxDiskBytes / 8;
        // Oldest mtime first, so the sweep — and any crash partway
        // through it — only ever costs the records least likely to be
        // served again; removal is whole-file unlink, never an
        // in-place truncation, so a concurrent get() reads a complete
        // record or misses cleanly. Records sharing one mtime (coarse
        // filesystem timestamps round a burst of writes to the same
        // second) fall back to filename order: without a stable
        // secondary key the victim set would depend on directory
        // enumeration order, and two processes sweeping one shared
        // tier could each evict a different record.
        std::sort(records.begin(), records.end(),
                  [](const DiskRecord& a, const DiskRecord& b) {
                      if (a.mtime != b.mtime)
                          return a.mtime < b.mtime;
                      return a.path.filename() < b.path.filename();
                  });
        for (const DiskRecord& record : records) {
            if (total <= target)
                break;
            std::error_code ec;
            if (!std::filesystem::remove(record.path, ec) || ec)
                continue; // Already gone, or busy: skip, keep sweeping.
            total -= static_cast<std::size_t>(record.bytes);
            ++report.removedFiles;
            report.removedBytes += record.bytes;
        }
    }
    report.remainingBytes = total;
    // Reconcile the tracker by *delta*, not a plain store: records
    // written during the sweep bumped diskBytes_ concurrently, and a
    // store would erase them, leaving the tracker under the truth so
    // gcOnPut stops firing. Subtracting (tracked_before - total)
    // keeps every concurrent writer's contribution — the tracker only
    // ever errs toward sweeping early.
    if (tracked_before >= total)
        diskBytes_.fetch_sub(tracked_before - total,
                             std::memory_order_relaxed);
    else
        diskBytes_.fetch_add(total - tracked_before,
                             std::memory_order_relaxed);
    diskGcRuns_.fetch_add(1, std::memory_order_relaxed);
    diskGcRemovals_.fetch_add(report.removedFiles,
                              std::memory_order_relaxed);
    diskGcBytesRemoved_.fetch_add(report.removedBytes,
                                  std::memory_order_relaxed);
    if (flocked)
        ::flock(diskGcLockFd_, LOCK_UN);
    return report;
}

void
PulseCache::clearMemory()
{
    for (int s = 0; s < options_.shards; ++s) {
        std::lock_guard<std::mutex> lock(shards_[s].mu);
        shards_[s].lru.clear();
        shards_[s].index.clear();
        shards_[s].bytesInUse = 0;
    }
}

CacheStats
PulseCache::stats() const
{
    CacheStats out;
    out.lookups = lookups_.load(std::memory_order_relaxed);
    out.hits = hits_.load(std::memory_order_relaxed);
    out.diskHits = diskHits_.load(std::memory_order_relaxed);
    out.misses = misses_.load(std::memory_order_relaxed);
    out.insertions = insertions_.load(std::memory_order_relaxed);
    out.evictions = evictions_.load(std::memory_order_relaxed);
    out.diskWrites = diskWrites_.load(std::memory_order_relaxed);
    out.bytesEvicted = bytesEvicted_.load(std::memory_order_relaxed);
    out.oversized = oversized_.load(std::memory_order_relaxed);
    out.released = released_.load(std::memory_order_relaxed);
    out.bytesReleased = bytesReleased_.load(std::memory_order_relaxed);
    out.adoptionSkipped =
        adoptionSkipped_.load(std::memory_order_relaxed);
    out.adoptionSkippedBytes =
        adoptionSkippedBytes_.load(std::memory_order_relaxed);
    out.diskEpochMismatches =
        diskEpochMismatches_.load(std::memory_order_relaxed);
    out.diskGcLockBusy =
        diskGcLockBusy_.load(std::memory_order_relaxed);
    out.diskGcRuns = diskGcRuns_.load(std::memory_order_relaxed);
    out.diskGcRemovals =
        diskGcRemovals_.load(std::memory_order_relaxed);
    out.diskGcBytesRemoved =
        diskGcBytesRemoved_.load(std::memory_order_relaxed);
    out.diskBytesInUse = diskBytes_.load(std::memory_order_relaxed);
    std::size_t entries = 0;
    std::size_t bytes = 0;
    for (int s = 0; s < options_.shards; ++s) {
        std::lock_guard<std::mutex> lock(shards_[s].mu);
        entries += shards_[s].lru.size();
        bytes += shards_[s].bytesInUse;
    }
    out.entries = entries;
    out.bytesInUse = bytes;
    return out;
}

CacheTelemetry
PulseCache::telemetry() const
{
    CacheTelemetry out;
    out.getNs = getNs_.snapshot();
    out.putNs = putNs_.snapshot();
    out.diskReadNs = diskReadNs_.snapshot();
    out.diskWriteNs = diskWriteNs_.snapshot();
    return out;
}

} // namespace qpc
