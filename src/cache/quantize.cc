#include "cache/quantize.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace qpc {

namespace {

constexpr double kTau = 6.283185307179586476925286766559;

/** Euclidean remainder: v mod m in [0, m) for positive m. */
std::int64_t
positiveMod(std::int64_t v, std::int64_t m)
{
    const std::int64_t r = v % m;
    return r < 0 ? r + m : r;
}

} // namespace

double
ParamQuantization::stepRadians() const
{
    fatalIf(bins <= 0, "quantization grid needs a positive bin count");
    return kTau / bins;
}

std::int64_t
angleBin(double theta, int bins)
{
    fatalIf(bins <= 0, "quantization grid needs a positive bin count");
    fatalIf(!std::isfinite(theta), "cannot quantize a non-finite angle");
    const double step = kTau / bins;
    // Reduce into [-pi, pi] first (IEEE remainder is exact), so the
    // scaled value stays within +/- bins/2 and llround can never
    // overflow, no matter how many turns theta carries.
    const double wrapped = std::remainder(theta, kTau);
    return positiveMod(std::llround(wrapped / step), bins);
}

double
binAngle(std::int64_t bin, int bins)
{
    fatalIf(bins <= 0, "quantization grid needs a positive bin count");
    const std::int64_t wrapped = positiveMod(bin, bins);
    const double step = kTau / bins;
    // Center the representative into (-pi, pi]: bins past the halfway
    // point unwind backwards, so snapped pulses never take the long
    // way around the circle.
    return wrapped > bins / 2 ? (wrapped - bins) * step
                              : wrapped * step;
}

double
snapAngle(double theta, int bins)
{
    return binAngle(angleBin(theta, bins), bins);
}

double
snapDelta(double theta, int bins)
{
    return wrappedAngleDelta(theta, snapAngle(theta, bins));
}

double
wrappedAngleDelta(double theta, double representative)
{
    // Reduce the raw difference by whole periods: theta may sit many
    // turns away from its centered representative, but the rotations
    // only differ by the wrapped remainder (mod a global phase).
    const double raw = theta - representative;
    return raw - kTau * std::round(raw / kTau);
}

double
quantizationErrorBound(double delta)
{
    return std::abs(delta) / 2.0;
}

// ---------------------------------------------------------------------
// Adaptive multi-resolution grid
// ---------------------------------------------------------------------

namespace {

/** Coarse bins must fit the 24-bit field of the packed leaf key. */
constexpr int kMaxAdaptiveBaseBins = 1 << 24;

std::uint64_t
packLeafKey(std::int64_t coarseBin, int depth, std::uint64_t path)
{
    return (static_cast<std::uint64_t>(depth) << 58) |
           (static_cast<std::uint64_t>(coarseBin) << 34) | path;
}

} // namespace

AdaptiveAngleGrid::AdaptiveAngleGrid(int baseBins) : bins_(baseBins)
{
    fatalIf(baseBins <= 0,
            "adaptive grid needs a positive base bin count");
    fatalIf(baseBins >= kMaxAdaptiveBaseBins,
            "adaptive grid base bin count exceeds the key space");
    leaves_ = static_cast<std::size_t>(baseBins);
}

std::uint64_t
AdaptiveAngleGrid::leafKey(const Leaf& leaf)
{
    return packLeafKey(leaf.coarseBin, leaf.depth, leaf.path);
}

AdaptiveAngleGrid::Leaf
AdaptiveAngleGrid::makeLeaf(std::int64_t coarseBin, int depth,
                            std::uint64_t path) const
{
    const double step = kTau / bins_;
    const double width = step / static_cast<double>(1ull << depth);
    Leaf leaf;
    leaf.coarseBin = coarseBin;
    leaf.depth = depth;
    leaf.path = path;
    leaf.halfWidth = width / 2.0;
    if (depth == 0) {
        // Bit-for-bit the fixed grid's representative: an unsplit
        // leaf fingerprints identically to its PR 3 bin, so a warm
        // coarse grid keeps serving until the leaf actually splits.
        leaf.representative = binAngle(coarseBin, bins_);
    } else {
        const double center = -step / 2.0 +
                              static_cast<double>(path) * width +
                              width / 2.0;
        double rep = std::remainder(binAngle(coarseBin, bins_) + center,
                                    kTau);
        if (rep <= -kTau / 2.0)
            rep += kTau; // Keep the (-pi, pi] contract at the seam.
        leaf.representative = rep;
    }
    return leaf;
}

AdaptiveAngleGrid::Leaf
AdaptiveAngleGrid::locate(double theta) const
{
    fatalIf(bins_ <= 0, "adaptive grid is not initialized");
    const double step = kTau / bins_;
    const std::int64_t coarse = angleBin(theta, bins_);
    // Offset of theta inside the coarse interval [(b-1/2), (b+1/2))
    // step, wrap-aware so any spelling of the angle descends the same
    // path.
    const double u = wrappedAngleDelta(theta, binAngle(coarse, bins_));
    int depth = 0;
    std::uint64_t path = 0;
    double lo = -step / 2.0;
    double hi = step / 2.0;
    while (split_.count(packLeafKey(coarse, depth, path))) {
        const double mid = 0.5 * (lo + hi);
        if (u < mid) {
            hi = mid;
            path = path * 2;
        } else {
            lo = mid;
            path = path * 2 + 1;
        }
        ++depth;
    }
    return makeLeaf(coarse, depth, path);
}

std::pair<AdaptiveAngleGrid::Leaf, AdaptiveAngleGrid::Leaf>
AdaptiveAngleGrid::childrenOf(const Leaf& leaf) const
{
    fatalIf(bins_ <= 0, "adaptive grid is not initialized");
    panicIf(leaf.depth >= kMaxDepth,
            "adaptive leaf is already at the maximum depth");
    return {makeLeaf(leaf.coarseBin, leaf.depth + 1, leaf.path * 2),
            makeLeaf(leaf.coarseBin, leaf.depth + 1,
                     leaf.path * 2 + 1)};
}

std::pair<AdaptiveAngleGrid::Leaf, AdaptiveAngleGrid::Leaf>
AdaptiveAngleGrid::split(const Leaf& leaf)
{
    std::pair<Leaf, Leaf> children = childrenOf(leaf);
    const std::uint64_t key = leafKey(leaf);
    panicIf(split_.count(key) != 0,
            "adaptive leaf is already split (stale handle?)");
    split_.insert(key);
    ++splits_;
    ++leaves_; // One leaf becomes two.
    maxDepth_ = std::max(maxDepth_, leaf.depth + 1);
    return children;
}

QuantizedBlock
quantizeBlock(const Circuit& symbolic, const std::vector<double>& theta,
              const ParamQuantization& quantization)
{
    fatalIf(quantization.bins <= 0,
            "quantization grid needs a positive bin count");

    QuantizedBlock out;
    Circuit snapped(symbolic.numQubits());
    for (const GateOp& op : symbolic.ops()) {
        GateOp bound = op;
        if (gateIsRotation(op.kind)) {
            const double angle = op.angle.bind(theta);
            if (op.angle.isSymbolic()) {
                // Per-gate budget, identical to serve() and
                // snapSymbolicRotations(): a rotation whose snap fits
                // is quantized, one that would overdraw stays exact
                // (bin -1) — the budget never gates on the block sum.
                const double bound_here = quantizationErrorBound(
                    snapDelta(angle, quantization.bins));
                if (bound_here <= quantization.fidelityBudget) {
                    const std::int64_t bin =
                        angleBin(angle, quantization.bins);
                    bound.angle = ParamExpr::constant(
                        binAngle(bin, quantization.bins));
                    out.bins.push_back(bin);
                    out.errorBound += bound_here;
                } else {
                    bound.angle = ParamExpr::constant(angle);
                    out.bins.push_back(-1);
                    out.withinBudget = false;
                }
            } else {
                bound.angle = ParamExpr::constant(angle);
            }
        }
        snapped.add(bound);
    }
    out.fingerprint = fingerprintBlock(snapped);
    out.snapped = std::move(snapped);
    return out;
}

Circuit
snapSymbolicRotations(const Circuit& symbolic,
                      const std::vector<double>& theta,
                      const ParamQuantization& quantization)
{
    Circuit bound(symbolic.numQubits());
    for (const GateOp& op : symbolic.ops()) {
        GateOp next = op;
        if (gateIsRotation(op.kind)) {
            const double angle = op.angle.bind(theta);
            double value = angle;
            if (op.angle.isSymbolic()) {
                // Per-gate budget check mirrors the serve path, which
                // quantizes one rotation per strict segment: a gate
                // whose snap would overdraw the budget stays exact.
                const double delta =
                    snapDelta(angle, quantization.bins);
                if (quantizationErrorBound(delta) <=
                    quantization.fidelityBudget)
                    value = snapAngle(angle, quantization.bins);
            }
            next.angle = ParamExpr::constant(value);
        }
        bound.add(next);
    }
    return bound;
}

} // namespace qpc
