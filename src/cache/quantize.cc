#include "cache/quantize.h"

#include <cmath>

#include "common/logging.h"

namespace qpc {

namespace {

constexpr double kTau = 6.283185307179586476925286766559;

/** Euclidean remainder: v mod m in [0, m) for positive m. */
std::int64_t
positiveMod(std::int64_t v, std::int64_t m)
{
    const std::int64_t r = v % m;
    return r < 0 ? r + m : r;
}

} // namespace

double
ParamQuantization::stepRadians() const
{
    fatalIf(bins <= 0, "quantization grid needs a positive bin count");
    return kTau / bins;
}

std::int64_t
angleBin(double theta, int bins)
{
    fatalIf(bins <= 0, "quantization grid needs a positive bin count");
    fatalIf(!std::isfinite(theta), "cannot quantize a non-finite angle");
    const double step = kTau / bins;
    // Reduce into [-pi, pi] first (IEEE remainder is exact), so the
    // scaled value stays within +/- bins/2 and llround can never
    // overflow, no matter how many turns theta carries.
    const double wrapped = std::remainder(theta, kTau);
    return positiveMod(std::llround(wrapped / step), bins);
}

double
binAngle(std::int64_t bin, int bins)
{
    fatalIf(bins <= 0, "quantization grid needs a positive bin count");
    const std::int64_t wrapped = positiveMod(bin, bins);
    const double step = kTau / bins;
    // Center the representative into (-pi, pi]: bins past the halfway
    // point unwind backwards, so snapped pulses never take the long
    // way around the circle.
    return wrapped > bins / 2 ? (wrapped - bins) * step
                              : wrapped * step;
}

double
snapAngle(double theta, int bins)
{
    return binAngle(angleBin(theta, bins), bins);
}

double
snapDelta(double theta, int bins)
{
    const double snapped = snapAngle(theta, bins);
    // Reduce the raw difference by whole periods: theta may sit many
    // turns away from its centered representative, but the rotations
    // only differ by the wrapped remainder (mod a global phase).
    const double raw = theta - snapped;
    return raw - kTau * std::round(raw / kTau);
}

double
quantizationErrorBound(double delta)
{
    return std::abs(delta) / 2.0;
}

QuantizedBlock
quantizeBlock(const Circuit& symbolic, const std::vector<double>& theta,
              const ParamQuantization& quantization)
{
    fatalIf(quantization.bins <= 0,
            "quantization grid needs a positive bin count");

    QuantizedBlock out;
    Circuit snapped(symbolic.numQubits());
    for (const GateOp& op : symbolic.ops()) {
        GateOp bound = op;
        if (gateIsRotation(op.kind)) {
            const double angle = op.angle.bind(theta);
            if (op.angle.isSymbolic()) {
                const std::int64_t bin =
                    angleBin(angle, quantization.bins);
                bound.angle = ParamExpr::constant(
                    binAngle(bin, quantization.bins));
                out.bins.push_back(bin);
                out.errorBound += quantizationErrorBound(
                    snapDelta(angle, quantization.bins));
            } else {
                bound.angle = ParamExpr::constant(angle);
            }
        }
        snapped.add(bound);
    }
    out.withinBudget = out.errorBound <= quantization.fidelityBudget;
    out.fingerprint = fingerprintBlock(snapped);
    out.snapped = std::move(snapped);
    return out;
}

Circuit
snapSymbolicRotations(const Circuit& symbolic,
                      const std::vector<double>& theta,
                      const ParamQuantization& quantization)
{
    Circuit bound(symbolic.numQubits());
    for (const GateOp& op : symbolic.ops()) {
        GateOp next = op;
        if (gateIsRotation(op.kind)) {
            const double angle = op.angle.bind(theta);
            double value = angle;
            if (op.angle.isSymbolic()) {
                // Per-gate budget check mirrors the serve path, which
                // quantizes one rotation per strict segment: a gate
                // whose snap would overdraw the budget stays exact.
                const double delta =
                    snapDelta(angle, quantization.bins);
                if (quantizationErrorBound(delta) <=
                    quantization.fidelityBudget)
                    value = snapAngle(angle, quantization.bins);
            }
            next.angle = ParamExpr::constant(value);
        }
        bound.add(next);
    }
    return bound;
}

} // namespace qpc
