/**
 * @file
 * The four-strategy variational pulse compiler.
 *
 * Facade over the whole stack: given one symbolic variational circuit
 * (the template) it pre-computes whatever a strategy allows before
 * parameters are known, then compiles any concrete parameter binding
 * and reports both the resulting pulse duration and the compilation
 * latency paid at runtime — the two axes of the paper's evaluation.
 *
 *   strategy          pulse duration     runtime latency
 *   GateBased         longest            ~0 (lookup)
 *   StrictPartial     shorter            ~0 (lookup)
 *   FlexiblePartial   ~GRAPE             minutes -> seconds (tuned)
 *   FullGrape         shortest           minutes -> hours
 *
 * Durations come from the analytic time model (src/model), latencies
 * from the latency model, both cross-validated against the real GRAPE
 * stack in the test suite.
 */

#ifndef QPC_PARTIAL_COMPILER_H
#define QPC_PARTIAL_COMPILER_H

#include <memory>
#include <string>
#include <vector>

#include "cache/quantize.h"
#include "ir/circuit.h"
#include "model/latencymodel.h"
#include "model/timemodel.h"
#include "partial/flexible.h"
#include "partial/strict.h"
#include "runtime/service.h"
#include "transpile/durations.h"

namespace qpc {

/** The compilation strategies compared throughout the paper. */
enum class Strategy
{
    GateBased,
    StrictPartial,
    FlexiblePartial,
    FullGrape,
};

/** Human-readable strategy name, e.g. "Strict Partial". */
std::string strategyName(Strategy strategy);

/** All four strategies, in the paper's presentation order. */
const std::vector<Strategy>& allStrategies();

/** What one compile call cost and produced. */
struct CompileReport
{
    Strategy strategy = Strategy::GateBased;
    /** Duration of the compiled pulse, ns (lower = less decoherence). */
    double pulseNs = 0.0;
    /** Compilation latency paid at this iteration, seconds. */
    double runtimeSeconds = 0.0;
    /** One-off pre-compute latency amortized across iterations. */
    double precomputeSeconds = 0.0;
    /** Number of GRAPE problems (blocks/slices) the strategy solved. */
    int grapeProblems = 0;
};

/** Configuration of the compiler facade. */
struct CompilerOptions
{
    int maxBlockWidth = 4;          ///< GRAPE width cap (Section 5.2).
    GateDurations durations = GateDurations::table1();
    TimeModelParams timeModel;
    LatencyModelParams latencyModel;
    /** Modeled per-op lookup cost of table-based compilation, s. */
    double lookupSecondsPerOp = 1.0e-7;
    /**
     * Angle quantization applied when this compiler's template is
     * served through a CompileService (prewarmParametric, and passed
     * as the plan override by callers that build serving plans from
     * this facade). Disabled by default.
     */
    ParamQuantization quantization;
    /**
     * Service configuration used by PartialCompiler::makeService():
     * worker count, cache capacity/capacityBytes, disk tier +
     * maxDiskBytes GC, and maxQueuedJobs backpressure all plumb
     * through here. Its own quantization member is ignored —
     * CompilerOptions::quantization above is authoritative, so the
     * facade serves and pre-warms under one consistent grid.
     */
    CompileServiceOptions service;
};

/**
 * Compiles one variational circuit template under any strategy.
 *
 * Construction performs the strategy-independent structural analysis
 * (strict partition, flexible slices); per-strategy pre-compute costs
 * are reported inside compile() so callers can amortize them.
 */
class PartialCompiler
{
  public:
    PartialCompiler(Circuit template_circuit,
                    CompilerOptions options = {});

    const Circuit& templateCircuit() const { return template_; }
    const CompilerOptions& options() const { return options_; }
    const StrictPartition& strictPartition() const { return strict_; }
    const FlexiblePartition& flexiblePartition() const
    {
        return flexible_;
    }

    /** Compile one parameter binding under one strategy. */
    CompileReport compile(Strategy strategy,
                          const std::vector<double>& theta) const;

    /** Compile under all four strategies (benchmark convenience). */
    std::vector<CompileReport>
    compileAll(const std::vector<double>& theta) const;

    /**
     * Run the one-off strict-partial pre-compute through a compile
     * service: every Fixed block of the template is content-addressed,
     * deduplicated, and synthesized on the service's worker pool (or
     * found in its cache — instant on a warm rerun). Callers that
     * share one service across circuits amortize further, since
     * identical blocks compile once process-wide.
     */
    BatchCompileReport precompute(CompileService& service) const;

    /**
     * Pre-warm the quantized parametric grid: synthesize every
     * (rotation axis, bin) the template's serve path can request,
     * per options().quantization, through the service's worker pool.
     * Returns an empty report when quantization is disabled. Pair
     * with precompute() so both the Fixed blocks and the rotation
     * grid are warm before the hybrid loop starts.
     */
    BatchCompileReport prewarmParametric(CompileService& service) const;

    /**
     * Build a CompileService from options().service (with
     * options().quantization substituted in), ready for precompute()
     * / prewarmParametric() / the drivers — the facade-level entry to
     * the resource-bounded serving stack.
     */
    std::unique_ptr<CompileService> makeService() const;

  private:
    struct TimedItem
    {
        std::vector<int> qubits;   ///< Global qubit ids.
        double timeNs;
    };

    CompileReport compileGateBased(const Circuit& bound) const;
    CompileReport compileFullGrape(const Circuit& bound) const;
    CompileReport
    compileStrict(const std::vector<double>& theta) const;
    CompileReport
    compileFlexible(const std::vector<double>& theta) const;

    /**
     * Decompose a bound subcircuit into width-capped blocks and
     * append one timed item per block; returns the number of blocks
     * and accumulates their modeled GRAPE latency.
     */
    int appendBlockItems(const Circuit& bound_subcircuit,
                         std::vector<TimedItem>& items,
                         double& grape_seconds, bool tuned) const;

    /** ASAP makespan of timed items under per-qubit clocks. */
    double itemsMakespan(const std::vector<TimedItem>& items) const;

    Circuit template_;
    CompilerOptions options_;
    PulseTimeModel timeModel_;
    GrapeLatencyModel latencyModel_;
    StrictPartition strict_;
    FlexiblePartition flexible_;
};

} // namespace qpc

#endif // QPC_PARTIAL_COMPILER_H
