#include "partial/flexible.h"

#include "common/logging.h"

namespace qpc {

Circuit
FlexiblePartition::reassemble(int num_qubits) const
{
    Circuit out(num_qubits);
    for (const FlexibleSlice& s : slices)
        out.append(s.circuit);
    return out;
}

int
FlexiblePartition::maxSliceDepth() const
{
    int depth = 0;
    for (const FlexibleSlice& s : slices)
        if (s.circuit.size() > depth)
            depth = s.circuit.size();
    return depth;
}

FlexiblePartition
flexibleSlices(const Circuit& circuit)
{
    fatalIf(!isParamMonotone(circuit),
            "flexible slicing requires parameter monotonicity; tag "
            "parameters during circuit construction");

    FlexiblePartition partition;
    FlexibleSlice current;
    current.paramIndex = -1;
    current.circuit = Circuit(circuit.numQubits());

    for (const GateOp& op : circuit.ops()) {
        const int index = op.paramIndex();
        if (index >= 0 && index != current.paramIndex) {
            // First appearance of a new parameter: cut here, unless
            // the current slice is still the untouched leading
            // prefix, which merges into the first real slice.
            if (current.paramIndex != -1 || !current.circuit.empty()) {
                if (current.paramIndex == -1) {
                    // Leading fixed prefix: absorb into this slice.
                    current.paramIndex = index;
                } else {
                    partition.slices.push_back(std::move(current));
                    current = FlexibleSlice();
                    current.paramIndex = index;
                    current.circuit = Circuit(circuit.numQubits());
                }
            } else {
                current.paramIndex = index;
            }
        }
        current.circuit.add(op);
    }
    if (!current.circuit.empty())
        partition.slices.push_back(std::move(current));

    // Every slice must reference at most one parameter.
    for (const FlexibleSlice& s : partition.slices) {
        const std::vector<int> used = s.circuit.paramsUsed();
        panicIf(used.size() > 1, "slice depends on ", used.size(),
                " parameters");
        panicIf(!used.empty() && used.front() != s.paramIndex,
                "slice parameter bookkeeping mismatch");
    }
    return partition;
}

} // namespace qpc
