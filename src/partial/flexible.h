/**
 * @file
 * Flexible partial compilation slicing (Section 7).
 *
 * Strict partial compilation is bottlenecked by the depth of its Fixed
 * subcircuits. Parameter monotonicity — in the UCCSD and QAOA
 * constructions, theta_i-dependent gates appear in non-decreasing
 * order of i — lets the circuit be cut into much deeper subcircuits
 * that each depend on exactly one theta_i. Pre-tuned GRAPE
 * hyperparameters then re-compile each slice quickly whenever the
 * parameter values change.
 */

#ifndef QPC_PARTIAL_FLEXIBLE_H
#define QPC_PARTIAL_FLEXIBLE_H

#include <vector>

#include "ir/circuit.h"

namespace qpc {

/** One single-parameter subcircuit. */
struct FlexibleSlice
{
    /** The sole parameter this slice depends on; -1 if none. */
    int paramIndex = -1;
    /** The slice ops at full circuit width. */
    Circuit circuit;
};

/** Result of the flexible slicer. */
struct FlexiblePartition
{
    std::vector<FlexibleSlice> slices;

    /** Concatenate all slices back (must equal the input). */
    Circuit reassemble(int num_qubits) const;

    /** Largest number of ops in any slice. */
    int maxSliceDepth() const;
};

/**
 * Cut a parameter-monotone circuit into single-parameter slices:
 * slice k spans from the first theta_k-dependent gate (or the circuit
 * start for k = 0) up to the gate before the first theta_{k+1}
 * dependence. Fatal when the circuit is not parameter monotone.
 */
FlexiblePartition flexibleSlices(const Circuit& circuit);

} // namespace qpc

#endif // QPC_PARTIAL_FLEXIBLE_H
