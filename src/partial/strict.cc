#include "partial/strict.h"

#include "common/logging.h"

namespace qpc {

int
StrictPartition::numFixedSegments() const
{
    int count = 0;
    for (const StrictSegment& s : segments)
        if (s.fixed)
            ++count;
    return count;
}

int
StrictPartition::numParamGates() const
{
    int count = 0;
    for (const StrictSegment& s : segments)
        if (!s.fixed)
            ++count;
    return count;
}

int
StrictPartition::maxFixedDepth() const
{
    int depth = 0;
    for (const StrictSegment& s : segments)
        if (s.fixed && s.circuit.size() > depth)
            depth = s.circuit.size();
    return depth;
}

Circuit
StrictPartition::reassemble(int num_qubits) const
{
    Circuit out(num_qubits);
    for (const StrictSegment& s : segments)
        out.append(s.circuit);
    return out;
}

StrictPartition
strictPartition(const Circuit& circuit)
{
    StrictPartition partition;
    Circuit fixed_run(circuit.numQubits());

    auto flush = [&]() {
        if (fixed_run.empty())
            return;
        StrictSegment segment;
        segment.fixed = true;
        segment.circuit = fixed_run;
        partition.segments.push_back(std::move(segment));
        fixed_run = Circuit(circuit.numQubits());
    };

    for (const GateOp& op : circuit.ops()) {
        if (op.paramIndex() >= 0) {
            flush();
            StrictSegment segment;
            segment.fixed = false;
            segment.circuit = Circuit(circuit.numQubits());
            segment.circuit.add(op);
            partition.segments.push_back(std::move(segment));
        } else {
            fixed_run.add(op);
        }
    }
    flush();
    return partition;
}

} // namespace qpc
