/**
 * @file
 * Strict partial compilation (Section 6).
 *
 * Splits a variational circuit into a strictly alternating sequence of
 * parametrization-independent "Fixed" subcircuits and the
 * parameter-dependent rotation gates between them. Each Fixed
 * subcircuit is pre-compiled with GRAPE once; at runtime, compilation
 * degenerates to the same instant lookup-and-concatenate procedure as
 * gate-based compilation, so the pulse speedup on the Fixed blocks
 * comes with zero added compilation latency.
 */

#ifndef QPC_PARTIAL_STRICT_H
#define QPC_PARTIAL_STRICT_H

#include <vector>

#include "ir/circuit.h"

namespace qpc {

/** One element of the alternating Fixed / parametrized sequence. */
struct StrictSegment
{
    /** True for a Fixed (parameter-free) subcircuit. */
    bool fixed = true;
    /**
     * The segment's ops at full circuit width. A non-fixed segment
     * holds exactly one parameter-dependent rotation.
     */
    Circuit circuit;
};

/** Result of the strict partitioner. */
struct StrictPartition
{
    std::vector<StrictSegment> segments;

    int numFixedSegments() const;
    int numParamGates() const;

    /** Largest number of ops in any Fixed segment. */
    int maxFixedDepth() const;

    /** Concatenate all segments back (must equal the input). */
    Circuit reassemble(int num_qubits) const;
};

/**
 * Partition a symbolic circuit into maximal Fixed runs separated by
 * its parameter-dependent gates.
 */
StrictPartition strictPartition(const Circuit& circuit);

} // namespace qpc

#endif // QPC_PARTIAL_STRICT_H
