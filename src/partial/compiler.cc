#include "partial/compiler.h"

#include <algorithm>

#include "common/logging.h"
#include "runtime/service.h"
#include "transpile/schedule.h"

namespace qpc {

std::string
strategyName(Strategy strategy)
{
    switch (strategy) {
      case Strategy::GateBased: return "Gate-based";
      case Strategy::StrictPartial: return "Strict Partial";
      case Strategy::FlexiblePartial: return "Flexible Partial";
      case Strategy::FullGrape: return "Full GRAPE";
    }
    panic("unknown Strategy");
}

const std::vector<Strategy>&
allStrategies()
{
    static const std::vector<Strategy> order{
        Strategy::GateBased, Strategy::StrictPartial,
        Strategy::FlexiblePartial, Strategy::FullGrape};
    return order;
}

PartialCompiler::PartialCompiler(Circuit template_circuit,
                                 CompilerOptions options)
    : template_(std::move(template_circuit)), options_(options),
      timeModel_(options.timeModel), latencyModel_(options.latencyModel),
      strict_(qpc::strictPartition(template_)),
      flexible_(qpc::flexibleSlices(template_))
{
}

CompileReport
PartialCompiler::compile(Strategy strategy,
                         const std::vector<double>& theta) const
{
    switch (strategy) {
      case Strategy::GateBased:
        return compileGateBased(template_.bind(theta));
      case Strategy::FullGrape:
        return compileFullGrape(template_.bind(theta));
      case Strategy::StrictPartial:
        return compileStrict(theta);
      case Strategy::FlexiblePartial:
        return compileFlexible(theta);
    }
    panic("unknown Strategy");
}

BatchCompileReport
PartialCompiler::precompute(CompileService& service) const
{
    return service.precompileCircuit(template_);
}

BatchCompileReport
PartialCompiler::prewarmParametric(CompileService& service) const
{
    const ServingPlan plan =
        service.prepareServing(strict_, options_.quantization);
    return service.prewarmQuantizedBins(plan);
}

std::unique_ptr<CompileService>
PartialCompiler::makeService() const
{
    CompileServiceOptions service = options_.service;
    service.maxBlockWidth = options_.maxBlockWidth;
    service.quantization = options_.quantization;
    return std::make_unique<CompileService>(std::move(service));
}

std::vector<CompileReport>
PartialCompiler::compileAll(const std::vector<double>& theta) const
{
    std::vector<CompileReport> reports;
    reports.reserve(allStrategies().size());
    for (Strategy s : allStrategies())
        reports.push_back(compile(s, theta));
    return reports;
}

CompileReport
PartialCompiler::compileGateBased(const Circuit& bound) const
{
    CompileReport report;
    report.strategy = Strategy::GateBased;
    report.pulseNs = criticalPathNs(bound, options_.durations);
    report.runtimeSeconds = options_.lookupSecondsPerOp * bound.size();
    report.precomputeSeconds = 0.0;
    report.grapeProblems = 0;
    return report;
}

int
PartialCompiler::appendBlockItems(const Circuit& bound_subcircuit,
                                  std::vector<TimedItem>& items,
                                  double& grape_seconds,
                                  bool tuned) const
{
    if (bound_subcircuit.empty())
        return 0;
    const Blocking blocking =
        aggregateBlocks(bound_subcircuit, options_.maxBlockWidth);
    for (const CircuitBlock& block : blocking.blocks) {
        const Circuit local = block.asCircuit(bound_subcircuit);
        const double time_ns = timeModel_.blockTimeNs(local);
        items.push_back({block.qubits, time_ns});
        grape_seconds +=
            tuned ? latencyModel_.tunedGrapeSeconds(block.width(),
                                                    time_ns)
                  : latencyModel_.fullGrapeSeconds(block.width(),
                                                   time_ns);
    }
    return blocking.numBlocks();
}

double
PartialCompiler::itemsMakespan(const std::vector<TimedItem>& items) const
{
    std::vector<double> clock(template_.numQubits(), 0.0);
    double makespan = 0.0;
    for (const TimedItem& item : items) {
        double start = 0.0;
        for (int q : item.qubits)
            start = std::max(start, clock[q]);
        const double end = start + item.timeNs;
        for (int q : item.qubits)
            clock[q] = end;
        makespan = std::max(makespan, end);
    }
    return makespan;
}

CompileReport
PartialCompiler::compileFullGrape(const Circuit& bound) const
{
    CompileReport report;
    report.strategy = Strategy::FullGrape;

    std::vector<TimedItem> items;
    double grape_seconds = 0.0;
    report.grapeProblems =
        appendBlockItems(bound, items, grape_seconds, /*tuned=*/false);
    report.pulseNs = itemsMakespan(items);
    // Full GRAPE re-runs on every parameter binding: all latency is
    // at runtime, nothing can be pre-computed.
    report.runtimeSeconds = grape_seconds;
    report.precomputeSeconds = 0.0;
    return report;
}

CompileReport
PartialCompiler::compileStrict(const std::vector<double>& theta) const
{
    CompileReport report;
    report.strategy = Strategy::StrictPartial;

    std::vector<TimedItem> items;
    double precompute_seconds = 0.0;
    for (const StrictSegment& segment : strict_.segments) {
        if (segment.fixed) {
            // Fixed subcircuits are parameter-free; they were GRAPE
            // pre-compiled once, so their cost lands in precompute.
            report.grapeProblems += appendBlockItems(
                segment.circuit, items, precompute_seconds,
                /*tuned=*/false);
        } else {
            // A parametrized rotation stays a table lookup at the
            // gate-based pulse cost.
            const Circuit bound = segment.circuit.bind(theta);
            const GateOp& op = bound.ops().front();
            items.push_back(
                {op.qubits(), options_.durations.opDuration(op)});
        }
    }
    report.pulseNs = itemsMakespan(items);
    // Strict partial compilation is strictly better than gate-based
    // (Section 6): any block where the cached GRAPE pulse lost to the
    // lookup pulse falls back to the lookup pulse, so the circuit
    // never pays more than the gate-based critical path.
    report.pulseNs = std::min(
        report.pulseNs,
        criticalPathNs(template_.bind(theta), options_.durations));
    report.runtimeSeconds =
        options_.lookupSecondsPerOp *
        static_cast<double>(strict_.segments.size());
    report.precomputeSeconds = precompute_seconds;
    return report;
}

CompileReport
PartialCompiler::compileFlexible(const std::vector<double>& theta) const
{
    CompileReport report;
    report.strategy = Strategy::FlexiblePartial;

    std::vector<TimedItem> items;
    double runtime_seconds = 0.0;
    double precompute_seconds = 0.0;
    for (const FlexibleSlice& slice : flexible_.slices) {
        const Circuit bound = slice.circuit.bind(theta);
        // Runtime: tuned GRAPE per slice block. Pre-compute: the
        // hyperparameter grid for each block, paid once.
        std::vector<TimedItem> slice_items;
        double tuned_seconds = 0.0;
        const int blocks = appendBlockItems(bound, slice_items,
                                            tuned_seconds,
                                            /*tuned=*/true);
        report.grapeProblems += blocks;
        runtime_seconds += tuned_seconds;
        for (const TimedItem& item : slice_items)
            precompute_seconds += latencyModel_.tuningPrecomputeSeconds(
                static_cast<int>(item.qubits.size()), item.timeNs);
        for (TimedItem& item : slice_items)
            items.push_back(std::move(item));
    }
    report.pulseNs = itemsMakespan(items);
    // Slicing only restricts what full GRAPE may fuse, so flexible
    // can match but never beat the whole-circuit pulse (Section 8.1's
    // footnote: they coincide when every block is single-parameter).
    report.pulseNs = std::max(
        report.pulseNs, compileFullGrape(template_.bind(theta)).pulseNs);
    report.runtimeSeconds = runtime_seconds;
    report.precomputeSeconds = precompute_seconds;
    return report;
}

} // namespace qpc
