/**
 * @file
 * MAXCUT cost functions for QAOA.
 *
 * The cut value of a bit assignment, a brute-force optimum for
 * benchmark-sized graphs, and the cost Hamiltonian
 * C = sum_(i,j) (1 - Z_i Z_j) / 2 whose expectation QAOA maximizes.
 */

#ifndef QPC_QAOA_MAXCUT_H
#define QPC_QAOA_MAXCUT_H

#include "qaoa/graph.h"
#include "sim/pauli.h"

namespace qpc {

/** Cut size of the assignment encoded in the bits of `mask`. */
int cutValue(const Graph& graph, int mask);

/** Exact maximum cut via exhaustive search (n <= ~24). */
int bruteForceMaxCut(const Graph& graph);

/**
 * Cost Hamiltonian in minimization form:
 * H_C = sum_(i,j) (Z_i Z_j - 1) / 2, so min <H_C> = -maxcut.
 */
PauliHamiltonian maxcutCostHamiltonian(const Graph& graph);

/** Expected cut size implied by a cost expectation: -<H_C>. */
double expectedCut(double cost_expectation);

} // namespace qpc

#endif // QPC_QAOA_MAXCUT_H
