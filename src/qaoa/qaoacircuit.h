/**
 * @file
 * QAOA circuit construction (Section 4.2).
 *
 * A depth-p QAOA MAXCUT circuit: Hadamards prepare the uniform
 * superposition, then p rounds alternate the Cost-Optimization layer
 * exp(-i gamma_r C) (one CX Rz(2 gamma_r) CX sandwich per edge) and
 * the Mixing layer exp(-i beta_r B) (one Rx(2 beta_r) per node). The
 * 2p parameters are tagged in construction order — gamma_r at index
 * 2r, beta_r at 2r + 1 — which makes the circuit parameter monotone
 * by design (Section 7.1).
 */

#ifndef QPC_QAOA_QAOACIRCUIT_H
#define QPC_QAOA_QAOACIRCUIT_H

#include "ir/circuit.h"
#include "qaoa/graph.h"

namespace qpc {

/**
 * Build the symbolic QAOA circuit for a graph at depth p.
 *
 * Parameter convention: theta[2r] = gamma_r (cost magnitude),
 * theta[2r + 1] = beta_r (mixing magnitude), r = 0..p-1.
 */
Circuit buildQaoaCircuit(const Graph& graph, int p);

/** Identifier like "3reg-n6-p4" for tables and logs. */
std::string qaoaBenchmarkName(const std::string& family, int n, int p);

} // namespace qpc

#endif // QPC_QAOA_QAOACIRCUIT_H
