#include "qaoa/maxcut.h"

#include <string>

#include "common/logging.h"

namespace qpc {

int
cutValue(const Graph& graph, int mask)
{
    int cut = 0;
    for (const auto& [a, b] : graph.edges) {
        const int bit_a = (mask >> a) & 1;
        const int bit_b = (mask >> b) & 1;
        if (bit_a != bit_b)
            ++cut;
    }
    return cut;
}

int
bruteForceMaxCut(const Graph& graph)
{
    fatalIf(graph.numNodes > 24, "brute force capped at 24 nodes");
    int best = 0;
    const int limit = 1 << graph.numNodes;
    for (int mask = 0; mask < limit; ++mask)
        best = std::max(best, cutValue(graph, mask));
    return best;
}

PauliHamiltonian
maxcutCostHamiltonian(const Graph& graph)
{
    PauliHamiltonian h(graph.numNodes);
    const std::string identity(graph.numNodes, 'I');
    for (const auto& [a, b] : graph.edges) {
        std::string zz = identity;
        zz[a] = 'Z';
        zz[b] = 'Z';
        h.add(0.5, zz);
        h.add(-0.5, identity);
    }
    return h;
}

double
expectedCut(double cost_expectation)
{
    return -cost_expectation;
}

} // namespace qpc
