/**
 * @file
 * End-to-end QAOA driver.
 *
 * The full hybrid loop of Figure 1 with the state-vector simulator
 * standing in for quantum hardware: bind parameters, prepare the QAOA
 * state, measure the MAXCUT cost expectation, and let Nelder-Mead
 * propose the next parameters. Also tallies the compilation latency
 * each strategy would have paid across the loop, which quantifies the
 * paper's aggregate-impact argument (Section 8.4).
 */

#ifndef QPC_QAOA_QAOADRIVER_H
#define QPC_QAOA_QAOADRIVER_H

#include <optional>

#include "cache/quantize.h"
#include "opt/neldermead.h"
#include "partial/compiler.h"
#include "qaoa/graph.h"
#include "qaoa/maxcut.h"
#include "qaoa/qaoacircuit.h"
#include "runtime/service.h"

namespace qpc {

/** Configuration of one QAOA optimization run. */
struct QaoaRunOptions
{
    int p = 1;                        ///< QAOA depth.
    NelderMeadOptions optimizer;      ///< Classical-loop settings.
    /**
     * Workers for batched Nelder-Mead evaluation; 0 = serial. Results
     * are bit-identical at any positive worker count (see
     * VqeRunOptions::optimizerThreads for the serial caveat).
     */
    int optimizerThreads = 0;
    uint64_t seed = 0;                ///< Initial-parameter seed.
    /**
     * Optional compilation service: pre-compiles the QAOA template's
     * Fixed blocks once and serves every iteration from the cache
     * (see VqeRunOptions::compileService).
     */
    CompileService* compileService = nullptr;
    /**
     * Run-owned service configuration (used when compileService is
     * null; see VqeRunOptions::serviceOptions).
     */
    std::optional<CompileServiceOptions> serviceOptions;
    /**
     * Per-run override of the service's angle quantization; the
     * simulated hardware executes the snapped angles when in effect
     * (see VqeRunOptions::quantization).
     */
    std::optional<ParamQuantization> quantization;
    /** Pre-warm the whole rotation grid before the hybrid loop. */
    bool prewarmQuantizedBins = false;
};

/** Outcome of one QAOA optimization run. */
struct QaoaResult
{
    std::vector<double> bestParams;
    double bestCost = 0.0;            ///< min <H_C> found.
    double expectedCutValue = 0.0;    ///< -bestCost.
    int maxCut = 0;                   ///< Brute-force optimum.
    double approxRatio = 0.0;         ///< expectedCut / maxCut.
    int iterations = 0;               ///< Objective evaluations.

    /** @name Compile-service accounting (zero without a service)
     *  @{ */
    double precomputeWallSeconds = 0.0; ///< One-off block synthesis.
    int precompiledBlocks = 0;      ///< Unique Fixed blocks compiled.
    uint64_t servedCacheHits = 0;   ///< Warm lookups across the loop.
    uint64_t servedCacheMisses = 0; ///< Cold blocks hit at runtime.
    /** @} */

    /** @name Quantized-serving accounting (zero when disabled)
     *  @{ */
    uint64_t quantHits = 0;       ///< Rotation bins served warm.
    uint64_t quantMisses = 0;     ///< First touches of a bin.
    uint64_t quantFallbacks = 0;  ///< Budget-exceeded exact serves.
    /** Largest per-iteration summed snap error bound observed. */
    double maxQuantErrorBound = 0.0;
    /** @} */

    /** @name Adaptive-grid refinement (zero unless
     *  quantization.adaptive; see VqeResult for field semantics)
     *  @{ */
    int quantRefineRounds = 0;
    uint64_t quantSplits = 0;
    uint64_t quantRefineSynths = 0;
    uint64_t quantBytesReleased = 0;
    double finalQuantErrorBound = 0.0;
    /** @} */
};

/** Run the hybrid QAOA loop on a graph. */
QaoaResult runQaoa(const Graph& graph, const QaoaRunOptions& options);

/**
 * Total compilation latency each strategy pays across a variational
 * run of `iterations` steps (runtime latency accumulates per
 * iteration; pre-compute is paid once).
 */
struct AggregateLatency
{
    Strategy strategy;
    double precomputeSeconds;
    double totalRuntimeSeconds;
};

std::vector<AggregateLatency>
aggregateLatencies(const PartialCompiler& compiler,
                   const std::vector<double>& theta, int iterations);

} // namespace qpc

#endif // QPC_QAOA_QAOADRIVER_H
