#include "qaoa/graph.h"

#include <algorithm>
#include <queue>
#include <sstream>

#include "common/logging.h"

namespace qpc {

bool
Graph::hasEdge(int a, int b) const
{
    for (const auto& [x, y] : edges)
        if ((x == a && y == b) || (x == b && y == a))
            return true;
    return false;
}

std::vector<int>
Graph::degrees() const
{
    std::vector<int> deg(numNodes, 0);
    for (const auto& [a, b] : edges) {
        ++deg[a];
        ++deg[b];
    }
    return deg;
}

bool
Graph::isConnected() const
{
    if (numNodes == 0)
        return true;
    std::vector<std::vector<int>> adj(numNodes);
    for (const auto& [a, b] : edges) {
        adj[a].push_back(b);
        adj[b].push_back(a);
    }
    std::vector<bool> seen(numNodes, false);
    std::queue<int> frontier;
    frontier.push(0);
    seen[0] = true;
    int count = 1;
    while (!frontier.empty()) {
        const int node = frontier.front();
        frontier.pop();
        for (int next : adj[node]) {
            if (!seen[next]) {
                seen[next] = true;
                ++count;
                frontier.push(next);
            }
        }
    }
    return count == numNodes;
}

std::string
Graph::str() const
{
    std::ostringstream oss;
    oss << "graph(" << numNodes << " nodes:";
    for (const auto& [a, b] : edges)
        oss << " " << a << "-" << b;
    oss << ")";
    return oss.str();
}

Graph
cliqueGraph(int n)
{
    fatalIf(n <= 0, "clique needs at least one node");
    Graph g;
    g.numNodes = n;
    for (int a = 0; a < n; ++a)
        for (int b = a + 1; b < n; ++b)
            g.edges.emplace_back(a, b);
    return g;
}

Graph
cycleGraph(int n)
{
    fatalIf(n < 3, "cycle needs at least three nodes");
    Graph g;
    g.numNodes = n;
    for (int i = 0; i < n; ++i)
        g.edges.emplace_back(i, (i + 1) % n);
    return g;
}

Graph
random3Regular(int n, Rng& rng)
{
    fatalIf(n < 4 || (3 * n) % 2 != 0,
            "3-regular graphs need n >= 4 with 3n even, got ", n);

    const int max_attempts = 10000;
    for (int attempt = 0; attempt < max_attempts; ++attempt) {
        // Configuration model: three stubs per node, paired uniformly.
        std::vector<int> stubs;
        stubs.reserve(3 * n);
        for (int v = 0; v < n; ++v)
            for (int s = 0; s < 3; ++s)
                stubs.push_back(v);
        rng.shuffle(stubs);

        Graph g;
        g.numNodes = n;
        bool simple = true;
        for (size_t i = 0; i + 1 < stubs.size() && simple; i += 2) {
            const int a = stubs[i];
            const int b = stubs[i + 1];
            if (a == b || g.hasEdge(a, b))
                simple = false;
            else
                g.edges.emplace_back(std::min(a, b), std::max(a, b));
        }
        if (simple && g.isConnected())
            return g;
    }
    fatal("failed to sample a simple connected 3-regular graph");
}

Graph
erdosRenyi(int n, double p, Rng& rng)
{
    fatalIf(n <= 1, "Erdos-Renyi needs at least two nodes");
    fatalIf(p <= 0.0 || p > 1.0, "edge probability out of range");

    const int max_attempts = 10000;
    for (int attempt = 0; attempt < max_attempts; ++attempt) {
        Graph g;
        g.numNodes = n;
        for (int a = 0; a < n; ++a)
            for (int b = a + 1; b < n; ++b)
                if (rng.bernoulli(p))
                    g.edges.emplace_back(a, b);
        if (g.isConnected())
            return g;
    }
    fatal("failed to sample a connected Erdos-Renyi graph");
}

} // namespace qpc
