#include "qaoa/qaoacircuit.h"

#include <sstream>

#include "common/logging.h"

namespace qpc {

Circuit
buildQaoaCircuit(const Graph& graph, int p)
{
    fatalIf(graph.numNodes <= 0, "QAOA needs a non-empty graph");
    fatalIf(p <= 0, "QAOA needs at least one round");

    Circuit circuit(graph.numNodes);
    for (int q = 0; q < graph.numNodes; ++q)
        circuit.h(q);

    for (int round = 0; round < p; ++round) {
        const int gamma = 2 * round;
        const int beta = 2 * round + 1;
        // Cost layer: exp(-i gamma Z_a Z_b / ...) per edge via the
        // CX ladder identity.
        for (const auto& [a, b] : graph.edges) {
            circuit.cx(a, b);
            circuit.rz(b, ParamExpr::theta(gamma, 2.0));
            circuit.cx(a, b);
        }
        // Mixing layer.
        for (int q = 0; q < graph.numNodes; ++q)
            circuit.rx(q, ParamExpr::theta(beta, 2.0));
    }
    return circuit;
}

std::string
qaoaBenchmarkName(const std::string& family, int n, int p)
{
    std::ostringstream oss;
    oss << family << "-n" << n << "-p" << p;
    return oss.str();
}

} // namespace qpc
