/**
 * @file
 * Graphs for the QAOA MAXCUT benchmarks.
 *
 * The paper benchmarks 3-regular and Erdos-Renyi (p = 0.5) random
 * graphs on 6 and 8 nodes, plus the 4-node clique for Figure 2. All
 * generators are deterministic under a seeded Rng, mirroring the
 * paper's fixed randomization seeds.
 */

#ifndef QPC_QAOA_GRAPH_H
#define QPC_QAOA_GRAPH_H

#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"

namespace qpc {

/** A simple undirected graph. */
struct Graph
{
    int numNodes = 0;
    std::vector<std::pair<int, int>> edges;

    int numEdges() const { return static_cast<int>(edges.size()); }
    bool hasEdge(int a, int b) const;
    std::vector<int> degrees() const;
    bool isConnected() const;
    std::string str() const;
};

/** Complete graph on n nodes (Figure 2 uses the 4-clique). */
Graph cliqueGraph(int n);

/** Cycle graph on n nodes (tests). */
Graph cycleGraph(int n);

/**
 * Uniform random 3-regular graph via the configuration model with
 * rejection of self-loops and multi-edges. Requires 3n even.
 */
Graph random3Regular(int n, Rng& rng);

/**
 * Erdos-Renyi G(n, p) conditioned on connectivity (resampled until
 * connected, as disconnected instances decompose trivially).
 */
Graph erdosRenyi(int n, double p, Rng& rng);

} // namespace qpc

#endif // QPC_QAOA_GRAPH_H
