#include "qaoa/qaoadriver.h"

#include <algorithm>
#include <memory>
#include <mutex>

#include "common/logging.h"
#include "runtime/refinetrigger.h"
#include "runtime/service.h"
#include "runtime/threadpool.h"
#include "sim/statevector.h"

namespace qpc {

QaoaResult
runQaoa(const Graph& graph, const QaoaRunOptions& options)
{
    const Circuit circuit = buildQaoaCircuit(graph, options.p);
    const PauliHamiltonian cost = maxcutCostHamiltonian(graph);

    QaoaResult result;
    result.maxCut = bruteForceMaxCut(graph);

    // A shared service takes precedence; serviceOptions otherwise
    // spins up a run-owned one (see runVqe).
    std::unique_ptr<CompileService> owned;
    CompileService* service = options.compileService;
    if (!service && options.serviceOptions) {
        owned = std::make_unique<CompileService>(*options.serviceOptions);
        service = owned.get();
    }

    // Strict-partial service path: one-off block pre-compute and
    // serving plan, then per-iteration lookup-and-concatenate (see
    // runVqe).
    ServingPlan plan;
    if (service) {
        plan = options.quantization
                   ? service->prepareServing(strictPartition(circuit),
                                             *options.quantization)
                   : service->prepareServing(strictPartition(circuit));
        const BatchCompileReport precompute =
            service->precompilePlan(plan);
        result.precomputeWallSeconds = precompute.wallSeconds;
        result.precompiledBlocks = precompute.uniqueBlocks;
        if (options.prewarmQuantizedBins) {
            const BatchCompileReport prewarm =
                service->prewarmQuantizedBins(plan);
            result.precomputeWallSeconds += prewarm.wallSeconds;
        }
    }
    const bool quantized = service && plan.quantization().enabled;

    // Shared-stat mutex for concurrent objective evaluation under
    // optimizerThreads (see runVqe).
    std::mutex stats_mu;
    int evaluations = 0;
    auto objective = [&](const std::vector<double>& theta) {
        {
            std::lock_guard<std::mutex> lock(stats_mu);
            ++evaluations;
        }
        if (service) {
            const ServedPulse served = service->serve(plan, theta);
            std::lock_guard<std::mutex> lock(stats_mu);
            result.servedCacheHits += served.cacheHits;
            result.servedCacheMisses += served.cacheMisses;
            result.quantHits += served.quantHits;
            result.quantMisses += served.quantMisses;
            result.quantFallbacks += served.quantFallbacks;
            result.maxQuantErrorBound = std::max(
                result.maxQuantErrorBound, served.quantErrorBound);
        }
        StateVector state(graph.numNodes);
        // The served pulses realize snapped angles under quantization
        // (current adaptive leaf representatives when the plan
        // refines); simulate exactly what they execute (see runVqe).
        state.applyCircuit(
            quantized
                ? service->snapServedRotations(plan, circuit, theta)
                : circuit.bind(theta));
        return cost.expectation(state);
    };

    // Optimizer-movement-gated grid refinement, as in runVqe: small
    // steps mean the optimizer is converging, so split the bins it
    // has been visiting and serve finer representatives from here on.
    NelderMeadOptions optimizer = options.optimizer;
    RefinementTriggerStats refinement;
    if (quantized && plan.quantization().adaptive)
        optimizer = withRefinementTrigger(std::move(optimizer),
                                          *service, plan, refinement);

    // Run-owned evaluation pool (bit-identical results at any worker
    // count; see runVqe).
    std::unique_ptr<ThreadPool> eval_pool;
    if (options.optimizerThreads > 0) {
        eval_pool =
            std::make_unique<ThreadPool>(options.optimizerThreads);
        optimizer.evalPool = eval_pool.get();
    }

    Rng rng(options.seed);
    const std::vector<double> start = rng.angles(2 * options.p);
    const NelderMeadResult opt =
        nelderMead(objective, start, optimizer);

    result.quantRefineRounds = refinement.rounds;
    result.quantSplits = refinement.splits;
    result.quantRefineSynths = refinement.prewarmSynths;
    result.quantBytesReleased = refinement.bytesReleased;
    double best_cost = opt.bestValue;
    if (quantized) {
        // Bound and cost of the answer on the *final* grid topology
        // (refinement may have split bestParams' leaves after their
        // last evaluation — see runVqe).
        result.finalQuantErrorBound =
            service->serve(plan, opt.best).quantErrorBound;
        StateVector final_state(graph.numNodes);
        final_state.applyCircuit(
            service->snapServedRotations(plan, circuit, opt.best));
        best_cost = cost.expectation(final_state);
    }
    result.bestParams = opt.best;
    result.bestCost = best_cost;
    result.expectedCutValue = expectedCut(best_cost);
    result.approxRatio =
        result.maxCut > 0 ? result.expectedCutValue / result.maxCut
                          : 0.0;
    result.iterations = evaluations;
    return result;
}

std::vector<AggregateLatency>
aggregateLatencies(const PartialCompiler& compiler,
                   const std::vector<double>& theta, int iterations)
{
    fatalIf(iterations <= 0, "need a positive iteration count");
    std::vector<AggregateLatency> out;
    for (Strategy strategy : allStrategies()) {
        const CompileReport report = compiler.compile(strategy, theta);
        AggregateLatency agg;
        agg.strategy = strategy;
        agg.precomputeSeconds = report.precomputeSeconds;
        agg.totalRuntimeSeconds = report.runtimeSeconds * iterations;
        out.push_back(agg);
    }
    return out;
}

} // namespace qpc
