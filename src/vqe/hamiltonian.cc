#include "vqe/hamiltonian.h"

#include "common/logging.h"
#include "common/rng.h"

namespace qpc {

PauliHamiltonian
h2Hamiltonian()
{
    // Parity-reduced STO-3G H2 at R = 0.7414 A; coefficients as
    // published in O'Malley et al. / the Qiskit textbook.
    PauliHamiltonian h(2);
    h.add(-1.052373245772859, "II");
    h.add(0.39793742484318045, "ZI");
    h.add(-0.39793742484318045, "IZ");
    h.add(-0.01128010425623538, "ZZ");
    h.add(0.18093119978423156, "XX");
    return h;
}

PauliHamiltonian
syntheticMolecularHamiltonian(int num_qubits, uint64_t seed)
{
    fatalIf(num_qubits < 2, "need at least two qubits");
    Rng rng(seed);
    PauliHamiltonian h(num_qubits);
    const std::string identity(num_qubits, 'I');

    h.add(rng.uniform(-2.0, -0.5), identity);
    for (int q = 0; q < num_qubits; ++q) {
        std::string z = identity;
        z[q] = 'Z';
        h.add(rng.uniform(-0.5, 0.5), z);
    }
    for (int a = 0; a < num_qubits; ++a) {
        for (int b = a + 1; b < num_qubits; ++b) {
            std::string zz = identity;
            zz[a] = 'Z';
            zz[b] = 'Z';
            h.add(rng.uniform(-0.2, 0.2), zz);
            if (rng.bernoulli(0.4)) {
                std::string xx = identity;
                xx[a] = 'X';
                xx[b] = 'X';
                h.add(rng.uniform(-0.2, 0.2), xx);
                std::string yy = identity;
                yy[a] = 'Y';
                yy[b] = 'Y';
                h.add(rng.uniform(-0.2, 0.2), yy);
            }
        }
    }
    return h;
}

PauliHamiltonian
moleculeHamiltonian(const MoleculeSpec& spec)
{
    if (spec.name == "H2")
        return h2Hamiltonian();
    // Seed by width so each molecule gets a stable Hamiltonian.
    return syntheticMolecularHamiltonian(
        spec.numQubits, 1000 + static_cast<uint64_t>(spec.numQubits));
}

} // namespace qpc
