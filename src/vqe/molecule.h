/**
 * @file
 * The VQE benchmark molecules of Table 2.
 *
 * Five molecules spanning the state of the art for experimental VQE:
 * H2 (2 qubits, 3 parameters) through H2O (10 qubits, 92 parameters).
 * The paper generated these with PySCF + Qiskit; here each molecule
 * records the circuit width and UCCSD parameter count from Table 2
 * and the occupied/virtual split the from-scratch ansatz generator
 * uses (see DESIGN.md, substitution 2).
 */

#ifndef QPC_VQE_MOLECULE_H
#define QPC_VQE_MOLECULE_H

#include <string>
#include <vector>

namespace qpc {

/** Structural description of one VQE benchmark molecule. */
struct MoleculeSpec
{
    std::string name;      ///< e.g. "LiH".
    int numQubits = 0;     ///< Circuit width (spin orbitals, reduced).
    int numParams = 0;     ///< UCCSD parameter count from Table 2.
    int numOccupied = 0;   ///< Occupied orbitals for the generator.
};

/** The five Table 2 molecules, in size order. */
const std::vector<MoleculeSpec>& vqeBenchmarks();

/** Lookup by name; fatal on unknown molecules. */
const MoleculeSpec& moleculeByName(const std::string& name);

} // namespace qpc

#endif // QPC_VQE_MOLECULE_H
