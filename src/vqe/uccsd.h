/**
 * @file
 * UCCSD ansatz generator (Section 4.1).
 *
 * Builds Unitary Coupled Cluster Single-Double ansatz circuits via
 * Jordan-Wigner Pauli evolutions: each excitation amplitude theta_k
 * contributes a product of exp(-i theta_k / 2 * P) factors realized
 * as basis-change / CX-ladder / Rz(theta_k) / unladder / unbasis
 * sandwiches. Every parameter's gates are emitted consecutively, so
 * the circuit is parameter monotone by construction (Section 7.1),
 * and only the Rz gates carry the parametrization — the structural
 * properties both partial compilation strategies rely on.
 */

#ifndef QPC_VQE_UCCSD_H
#define QPC_VQE_UCCSD_H

#include "ir/circuit.h"
#include "vqe/molecule.h"

namespace qpc {

/**
 * Append exp(-i (angle/2) * P) for a Pauli string P to a circuit.
 * Exposed for tests, which verify the construction against the dense
 * matrix exponential.
 *
 * @param circuit Destination circuit.
 * @param paulis One char per qubit from {I, X, Y, Z}.
 * @param angle Symbolic rotation angle.
 */
void appendPauliEvolution(Circuit& circuit, const std::string& paulis,
                          const ParamExpr& angle);

/**
 * Build the UCCSD ansatz for a molecule: enumerate single and double
 * excitations over the occupied/virtual split, cycling through the
 * list with fresh Trotter repetitions (or truncating it) until
 * exactly spec.numParams parameters are emitted.
 */
Circuit buildUccsdAnsatz(const MoleculeSpec& spec);

/**
 * Optimized, scheduled variant: the raw ansatz after the full
 * transpiler pipeline (rotation merge, cancellation), ready for
 * runtime measurement. This is the circuit the benchmark tables use.
 */
Circuit buildOptimizedUccsd(const MoleculeSpec& spec);

} // namespace qpc

#endif // QPC_VQE_UCCSD_H
