/**
 * @file
 * End-to-end VQE driver (guess-check-repeat of Section 4.1).
 *
 * Runs the hybrid loop with the state-vector simulator as hardware:
 * bind the UCCSD parameters, prepare the ansatz state, measure the
 * molecular Hamiltonian's energy, and let Nelder-Mead propose the
 * next amplitudes.
 */

#ifndef QPC_VQE_VQEDRIVER_H
#define QPC_VQE_VQEDRIVER_H

#include <optional>

#include "cache/quantize.h"
#include "ir/circuit.h"
#include "opt/neldermead.h"
#include "runtime/service.h"
#include "sim/pauli.h"

namespace qpc {

/** Configuration of one VQE run. */
struct VqeRunOptions
{
    NelderMeadOptions optimizer;
    /**
     * Workers for batched objective evaluation inside Nelder-Mead
     * (initial simplex, speculative reflection/expansion, shrinks).
     * 0 evaluates serially on the calling thread. Every positive
     * count produces bit-identical results to every other — the batch
     * layer reduces in slot order — so among pooled runs this is
     * purely a wall-clock knob. Serial additionally skips the
     * speculative expansion evaluation, which a side-effecting
     * objective (e.g. adaptive-quantization visit counters) can
     * observe; with a pure objective serial matches too.
     * Overrides optimizer.evalPool with a run-owned pool.
     */
    int optimizerThreads = 0;
    uint64_t seed = 0;          ///< Initial-amplitude seed.
    double initialSpread = 0.1; ///< Scale of the random start point.
    /**
     * Optional compilation service. When set, the driver pre-compiles
     * the ansatz's Fixed blocks through the service before the hybrid
     * loop starts, then serves every iteration's pulse program by
     * lookup-and-concatenate — the paper's strict-partial serving
     * path. Null keeps the simulator-only behaviour.
     */
    CompileService* compileService = nullptr;
    /**
     * Alternative to compileService for single-run callers: when set
     * (and compileService is null), the driver constructs a private
     * CompileService with these options for the run — the full knob
     * surface (worker count, cache capacity/capacityBytes, disk tier
     * + maxDiskBytes GC, maxQueuedJobs backpressure, quantization)
     * without managing a service object.
     */
    std::optional<CompileServiceOptions> serviceOptions;
    /**
     * Per-run override of the service's angle quantization (see
     * ParamQuantization): unset inherits the service default, set
     * forces it on or off for this run. When quantization is in
     * effect, the simulated "hardware" executes the *snapped* angles
     * — the circuit the cached pulses actually realize — so the
     * reported energy reflects the quantization error honestly. No
     * effect without a compileService.
     */
    std::optional<ParamQuantization> quantization;
    /**
     * Pre-warm the whole rotation grid through the service's worker
     * pool before the hybrid loop, so even the first iterations serve
     * warm (only meaningful with quantization enabled).
     */
    bool prewarmQuantizedBins = false;
};

/** Outcome of one VQE run. */
struct VqeResult
{
    std::vector<double> bestParams;
    double energy = 0.0;         ///< Lowest energy found.
    double exactGroundEnergy = 0.0;  ///< From diagonalization.
    int iterations = 0;          ///< Objective evaluations.

    /** @name Compile-service accounting (zero without a service)
     *  @{ */
    double precomputeWallSeconds = 0.0; ///< One-off block synthesis.
    int precompiledBlocks = 0;      ///< Unique Fixed blocks compiled.
    uint64_t servedCacheHits = 0;   ///< Warm lookups across the loop.
    uint64_t servedCacheMisses = 0; ///< Cold blocks hit at runtime.
    /** @} */

    /** @name Quantized-serving accounting (zero when disabled)
     *  @{ */
    uint64_t quantHits = 0;       ///< Rotation bins served warm.
    uint64_t quantMisses = 0;     ///< First touches of a bin.
    uint64_t quantFallbacks = 0;  ///< Budget-exceeded exact serves.
    /** Largest per-iteration summed snap error bound observed. */
    double maxQuantErrorBound = 0.0;
    /** @} */

    /** @name Adaptive-grid refinement (zero unless
     *  quantization.adaptive; see CompileService::refineQuantizedGrid)
     *  @{ */
    int quantRefineRounds = 0;    ///< Refinement rounds triggered by
                                  ///< optimizer-movement signals.
    uint64_t quantSplits = 0;     ///< Leaves split across the run.
    uint64_t quantRefineSynths = 0; ///< Child-bin pulses the rounds
                                    ///< pre-warmed.
    uint64_t quantBytesReleased = 0; ///< Stale coarse bytes returned
                                     ///< to the cache byte budget.
    /**
     * Realized summed snap-error bound of serving bestParams on the
     * final grid — the answer's accuracy, which adaptive refinement
     * drives below the fixed grid's. Zero when quantization is off.
     */
    double finalQuantErrorBound = 0.0;
    /** @} */
};

/**
 * Run VQE for an ansatz against a Hamiltonian. The exact ground
 * energy is computed by dense diagonalization when the system is
 * small enough (<= 10 qubits), for reporting the gap.
 */
VqeResult runVqe(const Circuit& ansatz,
                 const PauliHamiltonian& hamiltonian,
                 const VqeRunOptions& options = {});

} // namespace qpc

#endif // QPC_VQE_VQEDRIVER_H
