/**
 * @file
 * End-to-end VQE driver (guess-check-repeat of Section 4.1).
 *
 * Runs the hybrid loop with the state-vector simulator as hardware:
 * bind the UCCSD parameters, prepare the ansatz state, measure the
 * molecular Hamiltonian's energy, and let Nelder-Mead propose the
 * next amplitudes.
 */

#ifndef QPC_VQE_VQEDRIVER_H
#define QPC_VQE_VQEDRIVER_H

#include "ir/circuit.h"
#include "opt/neldermead.h"
#include "sim/pauli.h"

namespace qpc {

/** Configuration of one VQE run. */
struct VqeRunOptions
{
    NelderMeadOptions optimizer;
    uint64_t seed = 0;          ///< Initial-amplitude seed.
    double initialSpread = 0.1; ///< Scale of the random start point.
};

/** Outcome of one VQE run. */
struct VqeResult
{
    std::vector<double> bestParams;
    double energy = 0.0;         ///< Lowest energy found.
    double exactGroundEnergy = 0.0;  ///< From diagonalization.
    int iterations = 0;          ///< Objective evaluations.
};

/**
 * Run VQE for an ansatz against a Hamiltonian. The exact ground
 * energy is computed by dense diagonalization when the system is
 * small enough (<= 10 qubits), for reporting the gap.
 */
VqeResult runVqe(const Circuit& ansatz,
                 const PauliHamiltonian& hamiltonian,
                 const VqeRunOptions& options = {});

} // namespace qpc

#endif // QPC_VQE_VQEDRIVER_H
