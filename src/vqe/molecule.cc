#include "vqe/molecule.h"

#include "common/logging.h"

namespace qpc {

const std::vector<MoleculeSpec>&
vqeBenchmarks()
{
    // Width and parameter counts follow Table 2 of the paper; the
    // occupied-orbital split drives the excitation enumeration.
    static const std::vector<MoleculeSpec> specs{
        {"H2", 2, 3, 1},
        {"LiH", 4, 8, 2},
        {"BeH2", 6, 26, 3},
        {"NaH", 8, 24, 4},
        {"H2O", 10, 92, 5},
    };
    return specs;
}

const MoleculeSpec&
moleculeByName(const std::string& name)
{
    for (const MoleculeSpec& spec : vqeBenchmarks())
        if (spec.name == name)
            return spec;
    fatal("unknown molecule '", name, "'");
}

} // namespace qpc
