/**
 * @file
 * Molecular qubit Hamiltonians for the VQE drivers.
 *
 * H2 uses the published 2-qubit STO-3G Hamiltonian (parity-reduced, at
 * the 0.7414 A equilibrium bond length) whose exact ground energy is
 * -1.857275 Ha, so the end-to-end VQE loop can be validated against a
 * known answer. The paper's larger molecules need PySCF integrals we
 * do not have offline; for those, seeded synthetic Hamiltonians with
 * the same qubit count and Pauli-weight profile exercise the identical
 * code path (DESIGN.md, substitution 2) — the pulse-compilation
 * results never depend on the Hamiltonian coefficients.
 */

#ifndef QPC_VQE_HAMILTONIAN_H
#define QPC_VQE_HAMILTONIAN_H

#include "sim/pauli.h"
#include "vqe/molecule.h"

namespace qpc {

/** The standard 2-qubit H2 Hamiltonian (ground energy -1.857275). */
PauliHamiltonian h2Hamiltonian();

/**
 * Seeded synthetic molecular-style Hamiltonian: single- and two-qubit
 * Z terms plus a sprinkling of XX / YY hopping terms, echoing the
 * structure of Jordan-Wigner electronic Hamiltonians.
 */
PauliHamiltonian syntheticMolecularHamiltonian(int num_qubits,
                                               uint64_t seed);

/** Hamiltonian for a benchmark molecule (exact for H2, synthetic
 * otherwise). */
PauliHamiltonian moleculeHamiltonian(const MoleculeSpec& spec);

} // namespace qpc

#endif // QPC_VQE_HAMILTONIAN_H
