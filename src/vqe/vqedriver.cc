#include "vqe/vqedriver.h"

#include <algorithm>
#include <memory>
#include <mutex>

#include "common/logging.h"
#include "common/rng.h"
#include "partial/strict.h"
#include "runtime/refinetrigger.h"
#include "runtime/service.h"
#include "runtime/threadpool.h"
#include "sim/statevector.h"

namespace qpc {

VqeResult
runVqe(const Circuit& ansatz, const PauliHamiltonian& hamiltonian,
       const VqeRunOptions& options)
{
    fatalIf(ansatz.numQubits() != hamiltonian.numQubits(),
            "ansatz width does not match the Hamiltonian");

    VqeResult result;

    // A shared service takes precedence; otherwise serviceOptions
    // spins up a run-owned one, so single-run callers get the full
    // resource-bounded serve path without managing a service object.
    std::unique_ptr<CompileService> owned;
    CompileService* service = options.compileService;
    if (!service && options.serviceOptions) {
        owned = std::make_unique<CompileService>(*options.serviceOptions);
        service = owned.get();
    }

    // With a compile service attached, pay the strict-partial
    // pre-compute once up front (block synthesis and the serving
    // plan's blocking/fingerprints); the hybrid loop below then
    // serves each binding from the warm cache.
    ServingPlan plan;
    if (service) {
        plan = options.quantization
                   ? service->prepareServing(strictPartition(ansatz),
                                             *options.quantization)
                   : service->prepareServing(strictPartition(ansatz));
        const BatchCompileReport precompute =
            service->precompilePlan(plan);
        result.precomputeWallSeconds = precompute.wallSeconds;
        result.precompiledBlocks = precompute.uniqueBlocks;
        if (options.prewarmQuantizedBins) {
            const BatchCompileReport prewarm =
                service->prewarmQuantizedBins(plan);
            result.precomputeWallSeconds += prewarm.wallSeconds;
        }
    }
    const bool quantized = service && plan.quantization().enabled;

    // With optimizerThreads the objective runs concurrently on pool
    // workers; the stats it accumulates are the only shared state, so
    // one mutex keeps them exact without serializing the evaluations.
    std::mutex stats_mu;
    int evaluations = 0;
    auto objective = [&](const std::vector<double>& theta) {
        {
            std::lock_guard<std::mutex> lock(stats_mu);
            ++evaluations;
        }
        if (service) {
            const ServedPulse served = service->serve(plan, theta);
            std::lock_guard<std::mutex> lock(stats_mu);
            result.servedCacheHits += served.cacheHits;
            result.servedCacheMisses += served.cacheMisses;
            result.quantHits += served.quantHits;
            result.quantMisses += served.quantMisses;
            result.quantFallbacks += served.quantFallbacks;
            result.maxQuantErrorBound = std::max(
                result.maxQuantErrorBound, served.quantErrorBound);
        }
        StateVector state(ansatz.numQubits());
        // Quantized serving delivers pulses for the *snapped* angles
        // (the current adaptive leaf representatives when the plan
        // refines), so that is what the simulated hardware must
        // execute — the energy honestly carries the grid's
        // substitution error.
        state.applyCircuit(
            quantized
                ? service->snapServedRotations(plan, ansatz, theta)
                : ansatz.bind(theta));
        return hamiltonian.expectation(state);
    };

    // Convergence-aware refinement: once the optimizer's step norm
    // falls to the knob's threshold — it has stopped leaping and
    // started homing in — periodically split the grid bins it has
    // been visiting, so late iterations serve finer representatives.
    NelderMeadOptions optimizer = options.optimizer;
    RefinementTriggerStats refinement;
    if (quantized && plan.quantization().adaptive)
        optimizer = withRefinementTrigger(std::move(optimizer),
                                          *service, plan, refinement);

    // Run-owned evaluation pool: batches simplex evaluations without
    // changing any result bit (slot-ordered reduction in nelderMead).
    std::unique_ptr<ThreadPool> eval_pool;
    if (options.optimizerThreads > 0) {
        eval_pool =
            std::make_unique<ThreadPool>(options.optimizerThreads);
        optimizer.evalPool = eval_pool.get();
    }

    Rng rng(options.seed);
    std::vector<double> start(ansatz.numParams());
    for (double& v : start)
        v = options.initialSpread * rng.normal();

    const NelderMeadResult opt =
        nelderMead(objective, start, optimizer);

    result.bestParams = opt.best;
    result.energy = opt.bestValue;
    result.iterations = evaluations;
    result.quantRefineRounds = refinement.rounds;
    result.quantSplits = refinement.splits;
    result.quantRefineSynths = refinement.prewarmSynths;
    result.quantBytesReleased = refinement.bytesReleased;
    // The realized accuracy of the answer: what serving the best
    // parameters costs in snap error on the final grid. Refinement
    // may have split bestParams' leaves after their last evaluation,
    // so re-simulate on the final topology too — the reported energy
    // and error bound must describe the *same* served pulses.
    if (quantized) {
        result.finalQuantErrorBound =
            service->serve(plan, opt.best).quantErrorBound;
        StateVector final_state(ansatz.numQubits());
        final_state.applyCircuit(
            service->snapServedRotations(plan, ansatz, opt.best));
        result.energy = hamiltonian.expectation(final_state);
    }
    if (ansatz.numQubits() <= 10)
        result.exactGroundEnergy = hamiltonian.groundStateEnergy();
    return result;
}

} // namespace qpc
