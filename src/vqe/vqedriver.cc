#include "vqe/vqedriver.h"

#include "common/logging.h"
#include "common/rng.h"
#include "sim/statevector.h"

namespace qpc {

VqeResult
runVqe(const Circuit& ansatz, const PauliHamiltonian& hamiltonian,
       const VqeRunOptions& options)
{
    fatalIf(ansatz.numQubits() != hamiltonian.numQubits(),
            "ansatz width does not match the Hamiltonian");

    VqeResult result;
    int evaluations = 0;
    auto objective = [&](const std::vector<double>& theta) {
        ++evaluations;
        StateVector state(ansatz.numQubits());
        state.applyCircuit(ansatz.bind(theta));
        return hamiltonian.expectation(state);
    };

    Rng rng(options.seed);
    std::vector<double> start(ansatz.numParams());
    for (double& v : start)
        v = options.initialSpread * rng.normal();

    const NelderMeadResult opt =
        nelderMead(objective, start, options.optimizer);

    result.bestParams = opt.best;
    result.energy = opt.bestValue;
    result.iterations = evaluations;
    if (ansatz.numQubits() <= 10)
        result.exactGroundEnergy = hamiltonian.groundStateEnergy();
    return result;
}

} // namespace qpc
