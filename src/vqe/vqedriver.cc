#include "vqe/vqedriver.h"

#include "common/logging.h"
#include "common/rng.h"
#include "partial/strict.h"
#include "runtime/service.h"
#include "sim/statevector.h"

namespace qpc {

VqeResult
runVqe(const Circuit& ansatz, const PauliHamiltonian& hamiltonian,
       const VqeRunOptions& options)
{
    fatalIf(ansatz.numQubits() != hamiltonian.numQubits(),
            "ansatz width does not match the Hamiltonian");

    VqeResult result;

    // With a compile service attached, pay the strict-partial
    // pre-compute once up front (block synthesis and the serving
    // plan's blocking/fingerprints); the hybrid loop below then
    // serves each binding from the warm cache.
    ServingPlan plan;
    if (options.compileService) {
        plan = options.compileService->prepareServing(
            strictPartition(ansatz));
        const BatchCompileReport precompute =
            options.compileService->precompilePlan(plan);
        result.precomputeWallSeconds = precompute.wallSeconds;
        result.precompiledBlocks = precompute.uniqueBlocks;
    }

    int evaluations = 0;
    auto objective = [&](const std::vector<double>& theta) {
        ++evaluations;
        if (options.compileService) {
            const ServedPulse served =
                options.compileService->serve(plan, theta);
            result.servedCacheHits += served.cacheHits;
            result.servedCacheMisses += served.cacheMisses;
        }
        StateVector state(ansatz.numQubits());
        state.applyCircuit(ansatz.bind(theta));
        return hamiltonian.expectation(state);
    };

    Rng rng(options.seed);
    std::vector<double> start(ansatz.numParams());
    for (double& v : start)
        v = options.initialSpread * rng.normal();

    const NelderMeadResult opt =
        nelderMead(objective, start, options.optimizer);

    result.bestParams = opt.best;
    result.energy = opt.bestValue;
    result.iterations = evaluations;
    if (ansatz.numQubits() <= 10)
        result.exactGroundEnergy = hamiltonian.groundStateEnergy();
    return result;
}

} // namespace qpc
