#include "vqe/uccsd.h"

#include <algorithm>
#include <vector>

#include "common/logging.h"
#include "transpile/passes.h"

namespace qpc {

namespace {

constexpr double kPi = 3.14159265358979323846;

/** Qubits on which the Pauli string is non-identity, sorted. */
std::vector<int>
support(const std::string& paulis)
{
    std::vector<int> qubits;
    for (size_t q = 0; q < paulis.size(); ++q)
        if (paulis[q] != 'I')
            qubits.push_back(static_cast<int>(q));
    return qubits;
}

} // namespace

void
appendPauliEvolution(Circuit& circuit, const std::string& paulis,
                     const ParamExpr& angle)
{
    fatalIf(static_cast<int>(paulis.size()) != circuit.numQubits(),
            "Pauli string width mismatch");
    const std::vector<int> qubits = support(paulis);
    if (qubits.empty())
        return;   // exp(-i a/2 I) is a global phase.

    // Basis changes mapping each factor onto Z: H for X, and
    // Rx(pi/2) for Y (undone with Rx(-pi/2)).
    for (int q : qubits) {
        if (paulis[q] == 'X')
            circuit.h(q);
        else if (paulis[q] == 'Y')
            circuit.rx(q, kPi / 2.0);
    }
    // CX ladder onto the last support qubit.
    for (size_t i = 0; i + 1 < qubits.size(); ++i)
        circuit.cx(qubits[i], qubits[i + 1]);
    circuit.rz(qubits.back(), angle);
    for (size_t i = qubits.size() - 1; i >= 1; --i)
        circuit.cx(qubits[i - 1], qubits[i]);
    for (int q : qubits) {
        if (paulis[q] == 'X')
            circuit.h(q);
        else if (paulis[q] == 'Y')
            circuit.rx(q, -kPi / 2.0);
    }
}

namespace {

/** One excitation: the Pauli strings of its anti-Hermitian generator. */
struct Excitation
{
    /** Pauli strings, each applied as exp(-i (sign * theta / 2) P). */
    std::vector<std::pair<std::string, double>> terms;
};

/** Single excitation i -> a under Jordan-Wigner. */
Excitation
singleExcitation(int n, int i, int a)
{
    // t (a_a^dag a_i - h.c.)  ->  (t/2)(X_i Z.. Y_a - Y_i Z.. X_a).
    Excitation exc;
    std::string xy(n, 'I');
    std::string yx(n, 'I');
    for (int q = i + 1; q < a; ++q) {
        xy[q] = 'Z';
        yx[q] = 'Z';
    }
    xy[i] = 'X';
    xy[a] = 'Y';
    yx[i] = 'Y';
    yx[a] = 'X';
    exc.terms = {{xy, 0.5}, {yx, -0.5}};
    return exc;
}

/** Double excitation (i, j) -> (a, b) under Jordan-Wigner. */
Excitation
doubleExcitation(int n, int i, int j, int a, int b)
{
    // The standard eight-string JW expansion of
    // t (a_a^dag a_b^dag a_i a_j - h.c.); Z chains omitted between
    // paired indices cancel for adjacent index groups and are kept
    // between i..j and a..b.
    Excitation exc;
    const char patterns[8][4] = {
        {'X', 'X', 'X', 'Y'}, {'X', 'X', 'Y', 'X'},
        {'X', 'Y', 'X', 'X'}, {'Y', 'X', 'X', 'X'},
        {'Y', 'Y', 'Y', 'X'}, {'Y', 'Y', 'X', 'Y'},
        {'Y', 'X', 'Y', 'Y'}, {'X', 'Y', 'Y', 'Y'},
    };
    const double signs[8] = {0.125, 0.125, -0.125, -0.125,
                             0.125, 0.125, -0.125, -0.125};
    for (int t = 0; t < 8; ++t) {
        std::string p(n, 'I');
        for (int q = i + 1; q < j; ++q)
            p[q] = 'Z';
        for (int q = a + 1; q < b; ++q)
            p[q] = 'Z';
        p[i] = patterns[t][0];
        p[j] = patterns[t][1];
        p[a] = patterns[t][2];
        p[b] = patterns[t][3];
        exc.terms.emplace_back(p, signs[t]);
    }
    return exc;
}

} // namespace

Circuit
buildUccsdAnsatz(const MoleculeSpec& spec)
{
    const int n = spec.numQubits;
    fatalIf(spec.numOccupied <= 0 || spec.numOccupied >= n,
            "molecule needs 0 < occupied < width");

    // Canonical excitation list: singles (i in occ, a in virt) then
    // doubles (i < j in occ, a < b in virt).
    std::vector<Excitation> excitations;
    for (int i = 0; i < spec.numOccupied; ++i)
        for (int a = spec.numOccupied; a < n; ++a)
            excitations.push_back(singleExcitation(n, i, a));
    for (int i = 0; i < spec.numOccupied; ++i)
        for (int j = i + 1; j < spec.numOccupied; ++j)
            for (int a = spec.numOccupied; a < n; ++a)
                for (int b = a + 1; b < n; ++b)
                    excitations.push_back(
                        doubleExcitation(n, i, j, a, b));
    panicIf(excitations.empty(), "no excitations enumerated");

    Circuit circuit(n);
    // Reference state: occupied orbitals filled.
    for (int q = 0; q < spec.numOccupied; ++q)
        circuit.x(q);

    // Emit exactly numParams parameters, cycling with fresh Trotter
    // repetitions when the enumeration is shorter than Table 2's
    // count and truncating when it is longer.
    for (int k = 0; k < spec.numParams; ++k) {
        const Excitation& exc =
            excitations[k % excitations.size()];
        for (const auto& [paulis, sign] : exc.terms)
            appendPauliEvolution(circuit, paulis,
                                 ParamExpr::theta(k, sign));
    }
    return circuit;
}

Circuit
buildOptimizedUccsd(const MoleculeSpec& spec)
{
    Circuit circuit = buildUccsdAnsatz(spec);
    optimizeCircuit(circuit);
    return circuit;
}

} // namespace qpc
