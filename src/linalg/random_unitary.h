/**
 * @file
 * Haar-random unitaries and random state vectors.
 *
 * Property tests sweep the Weyl and Euler decompositions, the GRAPE
 * gradient, and the transpiler passes over Haar-random inputs; all
 * sampling routes through the seeded Rng for reproducibility.
 */

#ifndef QPC_LINALG_RANDOM_UNITARY_H
#define QPC_LINALG_RANDOM_UNITARY_H

#include <vector>

#include "common/rng.h"
#include "linalg/matrix.h"

namespace qpc {

/**
 * Sample a Haar-distributed unitary of the given dimension.
 *
 * Uses the Ginibre-ensemble + QR construction: fill a matrix with iid
 * complex normals, orthonormalize its columns (modified Gram-Schmidt),
 * and fix each column's phase so the distribution is exactly Haar.
 */
CMatrix haarUnitary(int dim, Rng& rng);

/** Sample a Haar-random pure state of the given dimension. */
std::vector<Complex> randomState(int dim, Rng& rng);

} // namespace qpc

#endif // QPC_LINALG_RANDOM_UNITARY_H
