/**
 * @file
 * Matrix exponentials.
 *
 * Two entry points: an eigendecomposition-based routine specialized for
 * Hermitian generators (the hot path inside GRAPE time stepping) and a
 * scaling-and-squaring Taylor routine for general matrices (used by
 * tests and by the Weyl canonical-gate constructor).
 */

#ifndef QPC_LINALG_EXPM_H
#define QPC_LINALG_EXPM_H

#include "linalg/matrix.h"

namespace qpc {

/**
 * exp(factor * H) for Hermitian H via eigendecomposition.
 *
 * With factor = -i dt this is the unitary propagator of one GRAPE time
 * slice. Exact for Hermitian inputs up to eigensolver tolerance.
 */
CMatrix expmHermitian(const CMatrix& h, Complex factor);

/**
 * exp(A) for a general square matrix via scaling and squaring with a
 * truncated Taylor series.
 */
CMatrix expmGeneral(const CMatrix& a);

} // namespace qpc

#endif // QPC_LINALG_EXPM_H
