/**
 * @file
 * Complex Hermitian eigensolver (cyclic Jacobi).
 *
 * GRAPE exponentiates a Hermitian control Hamiltonian at every time
 * step; at block sizes of at most 4 qubits (16x16, or 81x81 for qutrit
 * models) Jacobi iteration is simple, numerically robust, and fast
 * enough without pulling in an external LAPACK.
 */

#ifndef QPC_LINALG_EIG_H
#define QPC_LINALG_EIG_H

#include <vector>

#include "linalg/matrix.h"

namespace qpc {

/** Result of a Hermitian eigendecomposition A = V diag(values) V^dagger. */
struct EigResult
{
    /** Real eigenvalues in ascending order. */
    std::vector<double> values;
    /** Unitary matrix whose columns are the matching eigenvectors. */
    CMatrix vectors;
};

/**
 * Diagonalize a complex Hermitian matrix with cyclic Jacobi rotations.
 *
 * @param a Hermitian input (validated within tolerance).
 * @param tol Convergence threshold on the off-diagonal Frobenius mass.
 * @return Eigenvalues (ascending) and orthonormal eigenvectors.
 */
EigResult eigHermitian(const CMatrix& a, double tol = 1e-13);

/**
 * Simultaneously diagonalize two commuting real-symmetric matrices that
 * are stored in CMatrix form with zero imaginary parts.
 *
 * Used by the Weyl decomposition where K = P + iS is a symmetric
 * unitary: P and S are real symmetric and commute, so they share a real
 * orthogonal eigenbasis Q with Q^T P Q and Q^T S Q both diagonal.
 *
 * @param p First real symmetric matrix.
 * @param s Second real symmetric matrix, commuting with p.
 * @param[out] q Real orthogonal matrix of shared eigenvectors (columns).
 * @param[out] pd Diagonal of Q^T P Q.
 * @param[out] sd Diagonal of Q^T S Q.
 */
void simultaneousDiagonalize(const CMatrix& p, const CMatrix& s, CMatrix& q,
                             std::vector<double>& pd,
                             std::vector<double>& sd);

} // namespace qpc

#endif // QPC_LINALG_EIG_H
