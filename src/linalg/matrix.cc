#include "linalg/matrix.h"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/logging.h"
#include "linalg/kernels.h"

namespace qpc {

CMatrix::CMatrix(int rows, int cols)
    : rows_(rows), cols_(cols), data_(static_cast<size_t>(rows) * cols)
{
    panicIf(rows < 0 || cols < 0, "negative matrix dimension");
}

CMatrix::CMatrix(int rows, int cols, std::initializer_list<Complex> values)
    : CMatrix(rows, cols)
{
    panicIf(static_cast<int>(values.size()) != rows * cols,
            "initializer size mismatch: got ", values.size(), " want ",
            rows * cols);
    size_t i = 0;
    for (const auto& v : values)
        data_[i++] = v;
}

CMatrix
CMatrix::identity(int n)
{
    CMatrix m(n, n);
    for (int i = 0; i < n; ++i)
        m(i, i) = 1.0;
    return m;
}

CMatrix
CMatrix::zeros(int rows, int cols)
{
    return CMatrix(rows, cols);
}

CMatrix&
CMatrix::operator+=(const CMatrix& other)
{
    panicIf(rows_ != other.rows_ || cols_ != other.cols_,
            "matrix shape mismatch in +=");
    for (size_t i = 0; i < data_.size(); ++i)
        data_[i] += other.data_[i];
    return *this;
}

CMatrix&
CMatrix::operator-=(const CMatrix& other)
{
    panicIf(rows_ != other.rows_ || cols_ != other.cols_,
            "matrix shape mismatch in -=");
    for (size_t i = 0; i < data_.size(); ++i)
        data_[i] -= other.data_[i];
    return *this;
}

CMatrix&
CMatrix::operator*=(Complex scalar)
{
    for (auto& v : data_)
        v *= scalar;
    return *this;
}

CMatrix
CMatrix::operator+(const CMatrix& other) const
{
    CMatrix out = *this;
    out += other;
    return out;
}

CMatrix
CMatrix::operator-(const CMatrix& other) const
{
    CMatrix out = *this;
    out -= other;
    return out;
}

CMatrix
CMatrix::operator*(const CMatrix& other) const
{
    CMatrix out(rows_, other.cols_);
    multiplyInto(out, *this, other);
    return out;
}

CMatrix
CMatrix::operator*(Complex scalar) const
{
    CMatrix out = *this;
    out *= scalar;
    return out;
}

void
multiplyInto(CMatrix& result, const CMatrix& a, const CMatrix& b)
{
    panicIf(a.cols() != b.rows(), "matrix shape mismatch in multiply: ",
            a.rows(), "x", a.cols(), " * ", b.rows(), "x", b.cols());
    panicIf(result.rows() != a.rows() || result.cols() != b.cols(),
            "result shape mismatch in multiplyInto");
    panicIf(&result == &a || &result == &b,
            "multiplyInto result must not alias an operand");

    // Large multiplies amortize the pack/unpack into the planar SoA
    // kernel; small ones stay in the AoS reference loop, which also
    // keeps its zero-skip advantage on sparse operands.
    if (kernels::gemmWorthSoa(a.rows(), a.cols(), b.cols())) {
        kernels::gemmInto(result, a, b);
        return;
    }
    kernels::gemmAosReference(result, a, b);
}

CMatrix
CMatrix::dagger() const
{
    CMatrix out(cols_, rows_);
    for (int r = 0; r < rows_; ++r)
        for (int c = 0; c < cols_; ++c)
            out(c, r) = std::conj((*this)(r, c));
    return out;
}

CMatrix
CMatrix::transpose() const
{
    CMatrix out(cols_, rows_);
    for (int r = 0; r < rows_; ++r)
        for (int c = 0; c < cols_; ++c)
            out(c, r) = (*this)(r, c);
    return out;
}

CMatrix
CMatrix::conjugate() const
{
    CMatrix out = *this;
    for (int r = 0; r < rows_; ++r)
        for (int c = 0; c < cols_; ++c)
            out(r, c) = std::conj(out(r, c));
    return out;
}

Complex
CMatrix::trace() const
{
    panicIf(rows_ != cols_, "trace of non-square matrix");
    Complex t = 0.0;
    for (int i = 0; i < rows_; ++i)
        t += (*this)(i, i);
    return t;
}

double
CMatrix::frobeniusNorm() const
{
    double sum = 0.0;
    for (const auto& v : data_)
        sum += std::norm(v);
    return std::sqrt(sum);
}

double
CMatrix::maxAbs() const
{
    double best = 0.0;
    for (const auto& v : data_)
        best = std::max(best, std::abs(v));
    return best;
}

double
CMatrix::maxAbsDiff(const CMatrix& other) const
{
    panicIf(rows_ != other.rows_ || cols_ != other.cols_,
            "matrix shape mismatch in maxAbsDiff");
    double best = 0.0;
    for (size_t i = 0; i < data_.size(); ++i)
        best = std::max(best, std::abs(data_[i] - other.data_[i]));
    return best;
}

bool
CMatrix::approxEqual(const CMatrix& other, double tol) const
{
    if (rows_ != other.rows_ || cols_ != other.cols_)
        return false;
    return maxAbsDiff(other) <= tol;
}

bool
CMatrix::isUnitary(double tol) const
{
    if (rows_ != cols_)
        return false;
    CMatrix product = (*this) * dagger();
    return product.approxEqual(identity(rows_), tol);
}

bool
CMatrix::isHermitian(double tol) const
{
    if (rows_ != cols_)
        return false;
    return approxEqual(dagger(), tol);
}

Complex
CMatrix::determinant() const
{
    panicIf(rows_ != cols_, "determinant of non-square matrix");
    const int n = rows_;
    CMatrix lu = *this;
    Complex det = 1.0;
    for (int col = 0; col < n; ++col) {
        int pivot = col;
        double best = std::abs(lu(col, col));
        for (int r = col + 1; r < n; ++r) {
            if (std::abs(lu(r, col)) > best) {
                best = std::abs(lu(r, col));
                pivot = r;
            }
        }
        if (best == 0.0)
            return 0.0;
        if (pivot != col) {
            for (int c = 0; c < n; ++c)
                std::swap(lu(col, c), lu(pivot, c));
            det = -det;
        }
        det *= lu(col, col);
        for (int r = col + 1; r < n; ++r) {
            Complex factor = lu(r, col) / lu(col, col);
            for (int c = col; c < n; ++c)
                lu(r, c) -= factor * lu(col, c);
        }
    }
    return det;
}

std::vector<Complex>
CMatrix::apply(const std::vector<Complex>& v) const
{
    panicIf(static_cast<int>(v.size()) != cols_,
            "matrix-vector size mismatch");
    std::vector<Complex> out(rows_, Complex{0.0, 0.0});
    for (int r = 0; r < rows_; ++r) {
        const Complex* row = data_.data() + static_cast<size_t>(r) * cols_;
        out[r] = kernels::dotuInterleaved(row, v.data(),
                                          static_cast<size_t>(cols_));
    }
    return out;
}

std::string
CMatrix::str(int decimals) const
{
    std::ostringstream out;
    char buf[96];
    for (int r = 0; r < rows_; ++r) {
        for (int c = 0; c < cols_; ++c) {
            const Complex& v = (*this)(r, c);
            std::snprintf(buf, sizeof(buf), "(%+.*f%+.*fi) ", decimals,
                          v.real(), decimals, v.imag());
            out << buf;
        }
        out << "\n";
    }
    return out.str();
}

CMatrix
kron(const CMatrix& a, const CMatrix& b)
{
    CMatrix out(a.rows() * b.rows(), a.cols() * b.cols());
    for (int ar = 0; ar < a.rows(); ++ar)
        for (int ac = 0; ac < a.cols(); ++ac) {
            const Complex av = a(ar, ac);
            if (av == Complex{0.0, 0.0})
                continue;
            for (int br = 0; br < b.rows(); ++br)
                for (int bc = 0; bc < b.cols(); ++bc)
                    out(ar * b.rows() + br, ac * b.cols() + bc) =
                        av * b(br, bc);
        }
    return out;
}

CMatrix
kronAll(const std::vector<CMatrix>& factors)
{
    panicIf(factors.empty(), "kronAll needs at least one factor");
    CMatrix out = factors[0];
    for (size_t i = 1; i < factors.size(); ++i)
        out = kron(out, factors[i]);
    return out;
}

Complex
innerProduct(const std::vector<Complex>& a, const std::vector<Complex>& b)
{
    panicIf(a.size() != b.size(), "vector size mismatch in innerProduct");
    return kernels::dotcInterleaved(a.data(), b.data(), a.size());
}

double
vectorNorm(const std::vector<Complex>& v)
{
    double sum = 0.0;
    for (const auto& x : v)
        sum += std::norm(x);
    return std::sqrt(sum);
}

} // namespace qpc
