#include "linalg/random_unitary.h"

#include <cmath>

#include "common/logging.h"

namespace qpc {

CMatrix
haarUnitary(int dim, Rng& rng)
{
    panicIf(dim <= 0, "haarUnitary needs positive dimension");

    // Ginibre sample.
    CMatrix a(dim, dim);
    for (int i = 0; i < dim; ++i)
        for (int j = 0; j < dim; ++j)
            a(i, j) = Complex{rng.normal(), rng.normal()};

    // Modified Gram-Schmidt on columns, with the R diagonal phase fixed
    // to be real positive (this makes the result exactly Haar).
    for (int col = 0; col < dim; ++col) {
        for (int prev = 0; prev < col; ++prev) {
            Complex dot = 0.0;
            for (int row = 0; row < dim; ++row)
                dot += std::conj(a(row, prev)) * a(row, col);
            for (int row = 0; row < dim; ++row)
                a(row, col) -= dot * a(row, prev);
        }
        double norm = 0.0;
        for (int row = 0; row < dim; ++row)
            norm += std::norm(a(row, col));
        norm = std::sqrt(norm);
        panicIf(norm < 1e-12, "haarUnitary hit a degenerate sample");
        for (int row = 0; row < dim; ++row)
            a(row, col) *= 1.0 / norm;
    }
    return a;
}

std::vector<Complex>
randomState(int dim, Rng& rng)
{
    panicIf(dim <= 0, "randomState needs positive dimension");
    std::vector<Complex> v(dim);
    double norm = 0.0;
    for (int i = 0; i < dim; ++i) {
        v[i] = Complex{rng.normal(), rng.normal()};
        norm += std::norm(v[i]);
    }
    norm = std::sqrt(norm);
    for (int i = 0; i < dim; ++i)
        v[i] *= 1.0 / norm;
    return v;
}

} // namespace qpc
