/**
 * @file
 * SoA kernel implementations (see kernels.h for the layer contract).
 *
 * Bit-compatibility discipline: every dispatching kernel's AVX2 path
 * and its `...Scalar` reference perform identical floating-point
 * operations on identical elements in identical order. Concretely:
 *
 *  - elementwise kernels (gemm, axpy, scaleColumns, gate applies)
 *    accumulate each output element with the same mul/add/sub
 *    sequence — the vector path merely computes four output elements
 *    per instruction;
 *  - reduction kernels (dot products, gemv rows) accumulate into four
 *    lane-striped partial sums (lane j takes elements i with
 *    i % 4 == j), combine them as (l0+l2) + (l1+l3) — exactly the
 *    AVX2 horizontal-sum order — and fold any tail in sequentially
 *    afterwards. The scalar references replicate the striping.
 *
 * This file is compiled with -ffp-contract=off (see src/CMakeLists)
 * so the compiler cannot fuse the scalar references' mul/add pairs
 * into FMAs; the AVX2 paths deliberately use separate mul/add/sub
 * intrinsics for the same reason.
 */

#include "linalg/kernels.h"

#include <algorithm>
#include <new>
#include <utility>

#include "common/logging.h"

#if defined(__AVX2__)
#include <immintrin.h>
#define QPC_KERNELS_AVX2 1
#else
#define QPC_KERNELS_AVX2 0
#endif

namespace qpc::kernels {

namespace {

constexpr std::align_val_t kAlign{32};

double*
allocAligned(std::size_t n)
{
    if (n == 0)
        return nullptr;
    return static_cast<double*>(
        ::operator new(n * sizeof(double), kAlign));
}

void
freeAligned(double* p)
{
    if (p)
        ::operator delete(p, kAlign);
}

} // namespace

bool
simdEnabled()
{
    return QPC_KERNELS_AVX2 != 0;
}

const char*
backendName()
{
    return QPC_KERNELS_AVX2 ? "avx2" : "scalar";
}

SoaMatrix::~SoaMatrix()
{
    freeAligned(re_);
    freeAligned(im_);
}

void
SoaMatrix::swap(SoaMatrix& other) noexcept
{
    std::swap(rows_, other.rows_);
    std::swap(cols_, other.cols_);
    std::swap(capacity_, other.capacity_);
    std::swap(re_, other.re_);
    std::swap(im_, other.im_);
}

void
SoaMatrix::resize(int rows, int cols)
{
    panicIf(rows < 0 || cols < 0, "negative SoaMatrix dimension");
    const std::size_t need =
        static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols);
    if (need > capacity_) {
        freeAligned(re_);
        freeAligned(im_);
        re_ = allocAligned(need);
        im_ = allocAligned(need);
        capacity_ = need;
    }
    rows_ = rows;
    cols_ = cols;
}

void
SoaMatrix::pack(const CMatrix& m)
{
    resize(m.rows(), m.cols());
    const Complex* d = m.data();
    const std::size_t n =
        static_cast<std::size_t>(rows_) * static_cast<std::size_t>(cols_);
    for (std::size_t i = 0; i < n; ++i) {
        re_[i] = d[i].real();
        im_[i] = d[i].imag();
    }
}

void
SoaMatrix::packDagger(const CMatrix& m)
{
    resize(m.cols(), m.rows());
    for (int r = 0; r < m.rows(); ++r) {
        for (int c = 0; c < m.cols(); ++c) {
            const Complex v = m(r, c);
            const std::size_t i =
                static_cast<std::size_t>(c) * static_cast<std::size_t>(cols_) +
                static_cast<std::size_t>(r);
            re_[i] = v.real();
            im_[i] = -v.imag();
        }
    }
}

void
SoaMatrix::unpack(CMatrix& m) const
{
    m = CMatrix(rows_, cols_);
    Complex* d = m.data();
    const std::size_t n =
        static_cast<std::size_t>(rows_) * static_cast<std::size_t>(cols_);
    for (std::size_t i = 0; i < n; ++i)
        d[i] = Complex{re_[i], im_[i]};
}

// ---------------------------------------------------------------------------
// gemm
// ---------------------------------------------------------------------------

void
gemmScalar(SoaMatrix& c, const SoaMatrix& a, const SoaMatrix& b)
{
    const int n = a.rows(), k = a.cols(), m = b.cols();
    panicIf(b.rows() != k || c.rows() != n || c.cols() != m,
            "gemm shape mismatch");
    double* cr = c.re();
    double* ci = c.im();
    const std::size_t total =
        static_cast<std::size_t>(n) * static_cast<std::size_t>(m);
    for (std::size_t i = 0; i < total; ++i) {
        cr[i] = 0.0;
        ci[i] = 0.0;
    }
    for (int i = 0; i < n; ++i) {
        for (int kk = 0; kk < k; ++kk) {
            const double ar = a.re()[i * k + kk];
            const double ai = a.im()[i * k + kk];
            const double* br = b.re() + static_cast<std::size_t>(kk) * m;
            const double* bi = b.im() + static_cast<std::size_t>(kk) * m;
            double* orow = cr + static_cast<std::size_t>(i) * m;
            double* irow = ci + static_cast<std::size_t>(i) * m;
            // Products combine first, then one accumulate: the single
            // dependent add per step is what lets the AVX2 side (which
            // mirrors this order exactly) run at full throughput.
            for (int j = 0; j < m; ++j) {
                orow[j] = orow[j] + (ar * br[j] - ai * bi[j]);
                irow[j] = irow[j] + (ar * bi[j] + ai * br[j]);
            }
        }
    }
}

#if QPC_KERNELS_AVX2

void
gemm(SoaMatrix& c, const SoaMatrix& a, const SoaMatrix& b)
{
    const int n = a.rows(), k = a.cols(), m = b.cols();
    panicIf(b.rows() != k || c.rows() != n || c.cols() != m,
            "gemm shape mismatch");
    double* cr = c.re();
    double* ci = c.im();
    // 8-column register blocks: each c block accumulates over the
    // whole k loop in four registers, so c is touched once instead of
    // loaded/stored per k step. Per output element the operation order
    // over kk is exactly the scalar mirror's (+ar*br, -ai*bi for the
    // real part; +ar*bi, +ai*br for the imaginary), so the result is
    // still bit-identical — only the order *across* independent
    // elements changes.
    const int m8 = m & ~7;
    for (int i = 0; i < n; ++i) {
        const double* arow = a.re() + static_cast<std::size_t>(i) * k;
        const double* airow = a.im() + static_cast<std::size_t>(i) * k;
        double* orow = cr + static_cast<std::size_t>(i) * m;
        double* irow = ci + static_cast<std::size_t>(i) * m;
        for (int jb = 0; jb < m8; jb += 8) {
            __m256d tr0 = _mm256_setzero_pd();
            __m256d tr1 = _mm256_setzero_pd();
            __m256d ti0 = _mm256_setzero_pd();
            __m256d ti1 = _mm256_setzero_pd();
            for (int kk = 0; kk < k; ++kk) {
                const __m256d var = _mm256_set1_pd(arow[kk]);
                const __m256d vai = _mm256_set1_pd(airow[kk]);
                const double* br =
                    b.re() + static_cast<std::size_t>(kk) * m + jb;
                const double* bi =
                    b.im() + static_cast<std::size_t>(kk) * m + jb;
                const __m256d vbr0 = _mm256_loadu_pd(br);
                const __m256d vbr1 = _mm256_loadu_pd(br + 4);
                const __m256d vbi0 = _mm256_loadu_pd(bi);
                const __m256d vbi1 = _mm256_loadu_pd(bi + 4);
                tr0 = _mm256_add_pd(
                    tr0, _mm256_sub_pd(_mm256_mul_pd(var, vbr0),
                                       _mm256_mul_pd(vai, vbi0)));
                tr1 = _mm256_add_pd(
                    tr1, _mm256_sub_pd(_mm256_mul_pd(var, vbr1),
                                       _mm256_mul_pd(vai, vbi1)));
                ti0 = _mm256_add_pd(
                    ti0, _mm256_add_pd(_mm256_mul_pd(var, vbi0),
                                       _mm256_mul_pd(vai, vbr0)));
                ti1 = _mm256_add_pd(
                    ti1, _mm256_add_pd(_mm256_mul_pd(var, vbi1),
                                       _mm256_mul_pd(vai, vbr1)));
            }
            _mm256_storeu_pd(orow + jb, tr0);
            _mm256_storeu_pd(orow + jb + 4, tr1);
            _mm256_storeu_pd(irow + jb, ti0);
            _mm256_storeu_pd(irow + jb + 4, ti1);
        }
        for (int j = m8; j < m; ++j) {
            double tr = 0.0;
            double ti = 0.0;
            for (int kk = 0; kk < k; ++kk) {
                const double ar = arow[kk];
                const double ai = airow[kk];
                const double br =
                    b.re()[static_cast<std::size_t>(kk) * m + j];
                const double bi =
                    b.im()[static_cast<std::size_t>(kk) * m + j];
                tr = tr + (ar * br - ai * bi);
                ti = ti + (ar * bi + ai * br);
            }
            orow[j] = tr;
            irow[j] = ti;
        }
    }
}

#else

void
gemm(SoaMatrix& c, const SoaMatrix& a, const SoaMatrix& b)
{
    gemmScalar(c, a, b);
}

#endif

// ---------------------------------------------------------------------------
// gemv (row dot products, 8-lane striped reduction — see
// dotPlanarScalar for why eight stripes)
// ---------------------------------------------------------------------------

void
gemvScalar(double* yre, double* yim, const SoaMatrix& a,
           const double* xre, const double* xim)
{
    const int n = a.rows(), m = a.cols();
    const int m8 = m & ~7;
    for (int i = 0; i < n; ++i) {
        const double* ar = a.re() + static_cast<std::size_t>(i) * m;
        const double* ai = a.im() + static_cast<std::size_t>(i) * m;
        double rr[8] = {};
        double ri[8] = {};
        for (int j = 0; j < m8; ++j) {
            const int lane = j & 7;
            rr[lane] = rr[lane] + (ar[j] * xre[j] - ai[j] * xim[j]);
            ri[lane] = ri[lane] + (ar[j] * xim[j] + ai[j] * xre[j]);
        }
        const double tr[4] = {rr[0] + rr[4], rr[1] + rr[5],
                              rr[2] + rr[6], rr[3] + rr[7]};
        const double ti[4] = {ri[0] + ri[4], ri[1] + ri[5],
                              ri[2] + ri[6], ri[3] + ri[7]};
        double sr = (tr[0] + tr[2]) + (tr[1] + tr[3]);
        double si = (ti[0] + ti[2]) + (ti[1] + ti[3]);
        for (int j = m8; j < m; ++j) {
            sr = sr + (ar[j] * xre[j] - ai[j] * xim[j]);
            si = si + (ar[j] * xim[j] + ai[j] * xre[j]);
        }
        yre[i] = sr;
        yim[i] = si;
    }
}

#if QPC_KERNELS_AVX2

namespace {

/** (l0 + l2) + (l1 + l3) — the horizontal-sum order every scalar
 * reduction reference mirrors. */
inline double
hsum(__m256d v)
{
    const __m128d lo = _mm256_castpd256_pd128(v);
    const __m128d hi = _mm256_extractf128_pd(v, 1);
    const __m128d s = _mm_add_pd(lo, hi);
    return _mm_cvtsd_f64(s) + _mm_cvtsd_f64(_mm_unpackhi_pd(s, s));
}

/** Deinterleave 4 complex numbers at p into re/im lanes. */
inline void
load4c(const double* p, __m256d& re, __m256d& im)
{
    const __m256d v0 = _mm256_loadu_pd(p);
    const __m256d v1 = _mm256_loadu_pd(p + 4);
    const __m256d t0 = _mm256_permute2f128_pd(v0, v1, 0x20);
    const __m256d t1 = _mm256_permute2f128_pd(v0, v1, 0x31);
    re = _mm256_unpacklo_pd(t0, t1);
    im = _mm256_unpackhi_pd(t0, t1);
}

/** Re-interleave 4 complex numbers from re/im lanes to p. */
inline void
store4c(double* p, __m256d re, __m256d im)
{
    const __m256d t0 = _mm256_unpacklo_pd(re, im);
    const __m256d t1 = _mm256_unpackhi_pd(re, im);
    _mm256_storeu_pd(p, _mm256_permute2f128_pd(t0, t1, 0x20));
    _mm256_storeu_pd(p + 4, _mm256_permute2f128_pd(t0, t1, 0x31));
}

} // namespace

void
gemv(double* yre, double* yim, const SoaMatrix& a, const double* xre,
     const double* xim)
{
    const int n = a.rows(), m = a.cols();
    const int m8 = m & ~7;
    for (int i = 0; i < n; ++i) {
        const double* ar = a.re() + static_cast<std::size_t>(i) * m;
        const double* ai = a.im() + static_cast<std::size_t>(i) * m;
        __m256d rr0 = _mm256_setzero_pd(), rr1 = _mm256_setzero_pd();
        __m256d ri0 = _mm256_setzero_pd(), ri1 = _mm256_setzero_pd();
        // Group-at-a-time with explicit product temps, for the same
        // register-pressure reason as dotPlanarAvx2: one load per
        // stream per group instead of GCC re-folding them into
        // two-per-stream memory operands.
        for (int j = 0; j < m8; j += 8) {
            {
                const __m256d vr = _mm256_loadu_pd(ar + j);
                const __m256d vi = _mm256_loadu_pd(ai + j);
                const __m256d wr = _mm256_loadu_pd(xre + j);
                const __m256d wi = _mm256_loadu_pd(xim + j);
                const __m256d prr = _mm256_mul_pd(vr, wr);
                const __m256d pii = _mm256_mul_pd(vi, wi);
                const __m256d pri = _mm256_mul_pd(vr, wi);
                const __m256d pir = _mm256_mul_pd(vi, wr);
                rr0 = _mm256_add_pd(rr0, _mm256_sub_pd(prr, pii));
                ri0 = _mm256_add_pd(ri0, _mm256_add_pd(pri, pir));
            }
            {
                const __m256d vr = _mm256_loadu_pd(ar + j + 4);
                const __m256d vi = _mm256_loadu_pd(ai + j + 4);
                const __m256d wr = _mm256_loadu_pd(xre + j + 4);
                const __m256d wi = _mm256_loadu_pd(xim + j + 4);
                const __m256d prr = _mm256_mul_pd(vr, wr);
                const __m256d pii = _mm256_mul_pd(vi, wi);
                const __m256d pri = _mm256_mul_pd(vr, wi);
                const __m256d pir = _mm256_mul_pd(vi, wr);
                rr1 = _mm256_add_pd(rr1, _mm256_sub_pd(prr, pii));
                ri1 = _mm256_add_pd(ri1, _mm256_add_pd(pri, pir));
            }
        }
        double sr = hsum(_mm256_add_pd(rr0, rr1));
        double si = hsum(_mm256_add_pd(ri0, ri1));
        for (int j = m8; j < m; ++j) {
            sr = sr + (ar[j] * xre[j] - ai[j] * xim[j]);
            si = si + (ar[j] * xim[j] + ai[j] * xre[j]);
        }
        yre[i] = sr;
        yim[i] = si;
    }
}

#else

void
gemv(double* yre, double* yim, const SoaMatrix& a, const double* xre,
     const double* xim)
{
    gemvScalar(yre, yim, a, xre, xim);
}

#endif

// ---------------------------------------------------------------------------
// axpy
// ---------------------------------------------------------------------------

void
axpyScalar(Complex alpha, const double* xre, const double* xim,
           double* yre, double* yim, std::size_t n)
{
    const double ar = alpha.real();
    const double ai = alpha.imag();
    for (std::size_t i = 0; i < n; ++i) {
        double tr = yre[i];
        double ti = yim[i];
        tr = tr + ar * xre[i];
        tr = tr - ai * xim[i];
        ti = ti + ar * xim[i];
        ti = ti + ai * xre[i];
        yre[i] = tr;
        yim[i] = ti;
    }
}

#if QPC_KERNELS_AVX2

void
axpy(Complex alpha, const double* xre, const double* xim, double* yre,
     double* yim, std::size_t n)
{
    const double ar = alpha.real();
    const double ai = alpha.imag();
    const __m256d var = _mm256_set1_pd(ar);
    const __m256d vai = _mm256_set1_pd(ai);
    const std::size_t n4 = n & ~std::size_t{3};
    std::size_t i = 0;
    for (; i < n4; i += 4) {
        const __m256d vxr = _mm256_loadu_pd(xre + i);
        const __m256d vxi = _mm256_loadu_pd(xim + i);
        __m256d tr = _mm256_loadu_pd(yre + i);
        __m256d ti = _mm256_loadu_pd(yim + i);
        tr = _mm256_add_pd(tr, _mm256_mul_pd(var, vxr));
        tr = _mm256_sub_pd(tr, _mm256_mul_pd(vai, vxi));
        ti = _mm256_add_pd(ti, _mm256_mul_pd(var, vxi));
        ti = _mm256_add_pd(ti, _mm256_mul_pd(vai, vxr));
        _mm256_storeu_pd(yre + i, tr);
        _mm256_storeu_pd(yim + i, ti);
    }
    for (; i < n; ++i) {
        double tr = yre[i];
        double ti = yim[i];
        tr = tr + ar * xre[i];
        tr = tr - ai * xim[i];
        ti = ti + ar * xim[i];
        ti = ti + ai * xre[i];
        yre[i] = tr;
        yim[i] = ti;
    }
}

#else

void
axpy(Complex alpha, const double* xre, const double* xim, double* yre,
     double* yim, std::size_t n)
{
    axpyScalar(alpha, xre, xim, yre, yim, n);
}

#endif

// ---------------------------------------------------------------------------
// dot products (planar)
// ---------------------------------------------------------------------------

namespace {

/** Shared scalar body for the planar dots; Conj flips the sign
 * conventions to match conj(x) * y. Eight accumulator stripes (lane
 * j takes elements i % 8 == j): the AVX2 side needs two independent
 * vector accumulators to break the add-latency chain, and the mirror
 * must reduce in exactly the same shape to stay bit-identical. */
template <bool Conj>
Complex
dotPlanarScalar(const double* xre, const double* xim, const double* yre,
                const double* yim, std::size_t n)
{
    const std::size_t n8 = n & ~std::size_t{7};
    double rr[8] = {};
    double ri[8] = {};
    for (std::size_t i = 0; i < n8; ++i) {
        const std::size_t lane = i & 7;
        if (Conj) {
            rr[lane] = rr[lane] + (xre[i] * yre[i] + xim[i] * yim[i]);
            ri[lane] = ri[lane] + (xre[i] * yim[i] - xim[i] * yre[i]);
        } else {
            rr[lane] = rr[lane] + (xre[i] * yre[i] - xim[i] * yim[i]);
            ri[lane] = ri[lane] + (xre[i] * yim[i] + xim[i] * yre[i]);
        }
    }
    // Pairwise lane merge (vector add of the two accumulators), then
    // the hsum() order: (l0 + l2) + (l1 + l3).
    const double tr[4] = {rr[0] + rr[4], rr[1] + rr[5], rr[2] + rr[6],
                          rr[3] + rr[7]};
    const double ti[4] = {ri[0] + ri[4], ri[1] + ri[5], ri[2] + ri[6],
                          ri[3] + ri[7]};
    double sr = (tr[0] + tr[2]) + (tr[1] + tr[3]);
    double si = (ti[0] + ti[2]) + (ti[1] + ti[3]);
    for (std::size_t i = n8; i < n; ++i) {
        if (Conj) {
            sr = sr + (xre[i] * yre[i] + xim[i] * yim[i]);
            si = si + (xre[i] * yim[i] - xim[i] * yre[i]);
        } else {
            sr = sr + (xre[i] * yre[i] - xim[i] * yim[i]);
            si = si + (xre[i] * yim[i] + xim[i] * yre[i]);
        }
    }
    return Complex{sr, si};
}

#if QPC_KERNELS_AVX2

template <bool Conj>
Complex
dotPlanarAvx2(const double* xre, const double* xim, const double* yre,
              const double* yim, std::size_t n)
{
    const std::size_t n8 = n & ~std::size_t{7};
    // Two accumulator pairs: a single pair is bound by the two
    // dependent adds per element; interleaving halves the chain.
    __m256d rr0 = _mm256_setzero_pd(), rr1 = _mm256_setzero_pd();
    __m256d ri0 = _mm256_setzero_pd(), ri1 = _mm256_setzero_pd();
    // Each 4-element group loads its four operands and forms all four
    // products before the two accumulates: at most 12 registers live,
    // so every stream is loaded exactly once. Writing each update as
    // one big expression makes GCC fold operands into vmulpd memory
    // operands and re-load every stream twice, lifting the loop from
    // FP-bound (6 cycles / 8 elements) to load-port-bound (8).
    for (std::size_t i = 0; i < n8; i += 8) {
        {
            const __m256d xr = _mm256_loadu_pd(xre + i);
            const __m256d xi = _mm256_loadu_pd(xim + i);
            const __m256d yr = _mm256_loadu_pd(yre + i);
            const __m256d yi = _mm256_loadu_pd(yim + i);
            const __m256d prr = _mm256_mul_pd(xr, yr);
            const __m256d pii = _mm256_mul_pd(xi, yi);
            const __m256d pri = _mm256_mul_pd(xr, yi);
            const __m256d pir = _mm256_mul_pd(xi, yr);
            if (Conj) {
                rr0 = _mm256_add_pd(rr0, _mm256_add_pd(prr, pii));
                ri0 = _mm256_add_pd(ri0, _mm256_sub_pd(pri, pir));
            } else {
                rr0 = _mm256_add_pd(rr0, _mm256_sub_pd(prr, pii));
                ri0 = _mm256_add_pd(ri0, _mm256_add_pd(pri, pir));
            }
        }
        {
            const __m256d xr = _mm256_loadu_pd(xre + i + 4);
            const __m256d xi = _mm256_loadu_pd(xim + i + 4);
            const __m256d yr = _mm256_loadu_pd(yre + i + 4);
            const __m256d yi = _mm256_loadu_pd(yim + i + 4);
            const __m256d prr = _mm256_mul_pd(xr, yr);
            const __m256d pii = _mm256_mul_pd(xi, yi);
            const __m256d pri = _mm256_mul_pd(xr, yi);
            const __m256d pir = _mm256_mul_pd(xi, yr);
            if (Conj) {
                rr1 = _mm256_add_pd(rr1, _mm256_add_pd(prr, pii));
                ri1 = _mm256_add_pd(ri1, _mm256_sub_pd(pri, pir));
            } else {
                rr1 = _mm256_add_pd(rr1, _mm256_sub_pd(prr, pii));
                ri1 = _mm256_add_pd(ri1, _mm256_add_pd(pri, pir));
            }
        }
    }
    double sr = hsum(_mm256_add_pd(rr0, rr1));
    double si = hsum(_mm256_add_pd(ri0, ri1));
    for (std::size_t i = n8; i < n; ++i) {
        if (Conj) {
            sr = sr + (xre[i] * yre[i] + xim[i] * yim[i]);
            si = si + (xre[i] * yim[i] - xim[i] * yre[i]);
        } else {
            sr = sr + (xre[i] * yre[i] - xim[i] * yim[i]);
            si = si + (xre[i] * yim[i] + xim[i] * yre[i]);
        }
    }
    return Complex{sr, si};
}

#endif

} // namespace

Complex
dotcScalar(const double* xre, const double* xim, const double* yre,
           const double* yim, std::size_t n)
{
    return dotPlanarScalar<true>(xre, xim, yre, yim, n);
}

Complex
dotuScalar(const double* xre, const double* xim, const double* yre,
           const double* yim, std::size_t n)
{
    return dotPlanarScalar<false>(xre, xim, yre, yim, n);
}

Complex
dotc(const double* xre, const double* xim, const double* yre,
     const double* yim, std::size_t n)
{
#if QPC_KERNELS_AVX2
    return dotPlanarAvx2<true>(xre, xim, yre, yim, n);
#else
    return dotPlanarScalar<true>(xre, xim, yre, yim, n);
#endif
}

Complex
dotu(const double* xre, const double* xim, const double* yre,
     const double* yim, std::size_t n)
{
#if QPC_KERNELS_AVX2
    return dotPlanarAvx2<false>(xre, xim, yre, yim, n);
#else
    return dotPlanarScalar<false>(xre, xim, yre, yim, n);
#endif
}

// ---------------------------------------------------------------------------
// scaleColumns
// ---------------------------------------------------------------------------

void
scaleColumnsScalar(SoaMatrix& m, const Complex* factors)
{
    const int rows = m.rows(), cols = m.cols();
    for (int r = 0; r < rows; ++r) {
        double* mr = m.re() + static_cast<std::size_t>(r) * cols;
        double* mi = m.im() + static_cast<std::size_t>(r) * cols;
        for (int c = 0; c < cols; ++c) {
            const double fr = factors[c].real();
            const double fi = factors[c].imag();
            const double vr = mr[c];
            const double vi = mi[c];
            double tr = vr * fr;
            tr = tr - vi * fi;
            double ti = vr * fi;
            ti = ti + vi * fr;
            mr[c] = tr;
            mi[c] = ti;
        }
    }
}

#if QPC_KERNELS_AVX2

void
scaleColumns(SoaMatrix& m, const Complex* factors)
{
    const int rows = m.rows(), cols = m.cols();
    const int c4 = cols & ~3;
    // Planar copies of the factors so the vector loop streams them.
    thread_local std::vector<double> fre, fim;
    fre.resize(static_cast<std::size_t>(cols));
    fim.resize(static_cast<std::size_t>(cols));
    for (int c = 0; c < cols; ++c) {
        fre[c] = factors[c].real();
        fim[c] = factors[c].imag();
    }
    for (int r = 0; r < rows; ++r) {
        double* mr = m.re() + static_cast<std::size_t>(r) * cols;
        double* mi = m.im() + static_cast<std::size_t>(r) * cols;
        int c = 0;
        for (; c < c4; c += 4) {
            const __m256d vfr = _mm256_loadu_pd(fre.data() + c);
            const __m256d vfi = _mm256_loadu_pd(fim.data() + c);
            const __m256d vr = _mm256_loadu_pd(mr + c);
            const __m256d vi = _mm256_loadu_pd(mi + c);
            __m256d tr = _mm256_mul_pd(vr, vfr);
            tr = _mm256_sub_pd(tr, _mm256_mul_pd(vi, vfi));
            __m256d ti = _mm256_mul_pd(vr, vfi);
            ti = _mm256_add_pd(ti, _mm256_mul_pd(vi, vfr));
            _mm256_storeu_pd(mr + c, tr);
            _mm256_storeu_pd(mi + c, ti);
        }
        for (; c < cols; ++c) {
            const double fr = fre[c];
            const double fi = fim[c];
            const double vr = mr[c];
            const double vi = mi[c];
            double tr = vr * fr;
            tr = tr - vi * fi;
            double ti = vr * fi;
            ti = ti + vi * fr;
            mr[c] = tr;
            mi[c] = ti;
        }
    }
}

#else

void
scaleColumns(SoaMatrix& m, const Complex* factors)
{
    scaleColumnsScalar(m, factors);
}

#endif

// ---------------------------------------------------------------------------
// statevector gate applies (interleaved boundary)
// ---------------------------------------------------------------------------

void
applyGate1Scalar(Complex* amps, std::size_t dim, std::size_t stride,
                 const Complex* u)
{
    const double u00r = u[0].real(), u00i = u[0].imag();
    const double u01r = u[1].real(), u01i = u[1].imag();
    const double u10r = u[2].real(), u10i = u[2].imag();
    const double u11r = u[3].real(), u11i = u[3].imag();
    double* d = reinterpret_cast<double*>(amps);
    for (std::size_t block = 0; block < dim; block += 2 * stride) {
        for (std::size_t off = 0; off < stride; ++off) {
            const std::size_t i0 = 2 * (block + off);
            const std::size_t i1 = i0 + 2 * stride;
            const double a0r = d[i0], a0i = d[i0 + 1];
            const double a1r = d[i1], a1i = d[i1 + 1];
            double n0r = u00r * a0r;
            n0r = n0r - u00i * a0i;
            n0r = n0r + u01r * a1r;
            n0r = n0r - u01i * a1i;
            double n0i = u00r * a0i;
            n0i = n0i + u00i * a0r;
            n0i = n0i + u01r * a1i;
            n0i = n0i + u01i * a1r;
            double n1r = u10r * a0r;
            n1r = n1r - u10i * a0i;
            n1r = n1r + u11r * a1r;
            n1r = n1r - u11i * a1i;
            double n1i = u10r * a0i;
            n1i = n1i + u10i * a0r;
            n1i = n1i + u11r * a1i;
            n1i = n1i + u11i * a1r;
            d[i0] = n0r;
            d[i0 + 1] = n0i;
            d[i1] = n1r;
            d[i1 + 1] = n1i;
        }
    }
}

#if QPC_KERNELS_AVX2

void
applyGate1(Complex* amps, std::size_t dim, std::size_t stride,
           const Complex* u)
{
    if (stride < 4) {
        // Sub-vector strides interleave the pair partners too tightly
        // for the 4-wide deinterleave; the scalar path handles them.
        applyGate1Scalar(amps, dim, stride, u);
        return;
    }
    const __m256d u00r = _mm256_set1_pd(u[0].real());
    const __m256d u00i = _mm256_set1_pd(u[0].imag());
    const __m256d u01r = _mm256_set1_pd(u[1].real());
    const __m256d u01i = _mm256_set1_pd(u[1].imag());
    const __m256d u10r = _mm256_set1_pd(u[2].real());
    const __m256d u10i = _mm256_set1_pd(u[2].imag());
    const __m256d u11r = _mm256_set1_pd(u[3].real());
    const __m256d u11i = _mm256_set1_pd(u[3].imag());
    double* d = reinterpret_cast<double*>(amps);
    for (std::size_t block = 0; block < dim; block += 2 * stride) {
        for (std::size_t off = 0; off < stride; off += 4) {
            double* p0 = d + 2 * (block + off);
            double* p1 = p0 + 2 * stride;
            __m256d a0r, a0i, a1r, a1i;
            load4c(p0, a0r, a0i);
            load4c(p1, a1r, a1i);
            __m256d n0r = _mm256_mul_pd(u00r, a0r);
            n0r = _mm256_sub_pd(n0r, _mm256_mul_pd(u00i, a0i));
            n0r = _mm256_add_pd(n0r, _mm256_mul_pd(u01r, a1r));
            n0r = _mm256_sub_pd(n0r, _mm256_mul_pd(u01i, a1i));
            __m256d n0i = _mm256_mul_pd(u00r, a0i);
            n0i = _mm256_add_pd(n0i, _mm256_mul_pd(u00i, a0r));
            n0i = _mm256_add_pd(n0i, _mm256_mul_pd(u01r, a1i));
            n0i = _mm256_add_pd(n0i, _mm256_mul_pd(u01i, a1r));
            __m256d n1r = _mm256_mul_pd(u10r, a0r);
            n1r = _mm256_sub_pd(n1r, _mm256_mul_pd(u10i, a0i));
            n1r = _mm256_add_pd(n1r, _mm256_mul_pd(u11r, a1r));
            n1r = _mm256_sub_pd(n1r, _mm256_mul_pd(u11i, a1i));
            __m256d n1i = _mm256_mul_pd(u10r, a0i);
            n1i = _mm256_add_pd(n1i, _mm256_mul_pd(u10i, a0r));
            n1i = _mm256_add_pd(n1i, _mm256_mul_pd(u11r, a1i));
            n1i = _mm256_add_pd(n1i, _mm256_mul_pd(u11i, a1r));
            store4c(p0, n0r, n0i);
            store4c(p1, n1r, n1i);
        }
    }
}

#else

void
applyGate1(Complex* amps, std::size_t dim, std::size_t stride,
           const Complex* u)
{
    applyGate1Scalar(amps, dim, stride, u);
}

#endif

void
applyGate2Scalar(Complex* amps, std::size_t dim, std::size_t s0,
                 std::size_t s1, const Complex* u)
{
    const std::size_t hi = s0 > s1 ? s0 : s1;
    const std::size_t lo = s0 > s1 ? s1 : s0;
    double* d = reinterpret_cast<double*>(amps);
    // Offsets of the four basis slots relative to base, in the row
    // order of u: (0, s1, s0, s0|s1).
    const std::size_t off[4] = {0, 2 * s1, 2 * s0, 2 * (s0 + s1)};
    for (std::size_t a = 0; a < dim; a += 2 * hi) {
        for (std::size_t b = a; b < a + hi; b += 2 * lo) {
            for (std::size_t c = b; c < b + lo; ++c) {
                const std::size_t base = 2 * c;
                double inr[4], ini[4];
                for (int t = 0; t < 4; ++t) {
                    inr[t] = d[base + off[t]];
                    ini[t] = d[base + off[t] + 1];
                }
                double outr[4], outi[4];
                for (int r = 0; r < 4; ++r) {
                    double tr = u[4 * r].real() * inr[0];
                    tr = tr - u[4 * r].imag() * ini[0];
                    double ti = u[4 * r].real() * ini[0];
                    ti = ti + u[4 * r].imag() * inr[0];
                    for (int t = 1; t < 4; ++t) {
                        const double ur = u[4 * r + t].real();
                        const double ui = u[4 * r + t].imag();
                        tr = tr + ur * inr[t];
                        tr = tr - ui * ini[t];
                        ti = ti + ur * ini[t];
                        ti = ti + ui * inr[t];
                    }
                    outr[r] = tr;
                    outi[r] = ti;
                }
                for (int t = 0; t < 4; ++t) {
                    d[base + off[t]] = outr[t];
                    d[base + off[t] + 1] = outi[t];
                }
            }
        }
    }
}

#if QPC_KERNELS_AVX2

void
applyGate2(Complex* amps, std::size_t dim, std::size_t s0,
           std::size_t s1, const Complex* u)
{
    const std::size_t hi = s0 > s1 ? s0 : s1;
    const std::size_t lo = s0 > s1 ? s1 : s0;
    if (lo < 4) {
        applyGate2Scalar(amps, dim, s0, s1, u);
        return;
    }
    double* d = reinterpret_cast<double*>(amps);
    const std::size_t off[4] = {0, 2 * s1, 2 * s0, 2 * (s0 + s1)};
    for (std::size_t a = 0; a < dim; a += 2 * hi) {
        for (std::size_t b = a; b < a + hi; b += 2 * lo) {
            for (std::size_t c = b; c < b + lo; c += 4) {
                const std::size_t base = 2 * c;
                __m256d inr[4], ini[4];
                for (int t = 0; t < 4; ++t)
                    load4c(d + base + off[t], inr[t], ini[t]);
                __m256d outr[4], outi[4];
                for (int r = 0; r < 4; ++r) {
                    __m256d ur = _mm256_set1_pd(u[4 * r].real());
                    __m256d ui = _mm256_set1_pd(u[4 * r].imag());
                    __m256d tr = _mm256_mul_pd(ur, inr[0]);
                    tr = _mm256_sub_pd(tr, _mm256_mul_pd(ui, ini[0]));
                    __m256d ti = _mm256_mul_pd(ur, ini[0]);
                    ti = _mm256_add_pd(ti, _mm256_mul_pd(ui, inr[0]));
                    for (int t = 1; t < 4; ++t) {
                        ur = _mm256_set1_pd(u[4 * r + t].real());
                        ui = _mm256_set1_pd(u[4 * r + t].imag());
                        tr = _mm256_add_pd(tr,
                                           _mm256_mul_pd(ur, inr[t]));
                        tr = _mm256_sub_pd(tr,
                                           _mm256_mul_pd(ui, ini[t]));
                        ti = _mm256_add_pd(ti,
                                           _mm256_mul_pd(ur, ini[t]));
                        ti = _mm256_add_pd(ti,
                                           _mm256_mul_pd(ui, inr[t]));
                    }
                    outr[r] = tr;
                    outi[r] = ti;
                }
                for (int t = 0; t < 4; ++t)
                    store4c(d + base + off[t], outr[t], outi[t]);
            }
        }
    }
}

#else

void
applyGate2(Complex* amps, std::size_t dim, std::size_t s0,
           std::size_t s1, const Complex* u)
{
    applyGate2Scalar(amps, dim, s0, s1, u);
}

#endif

// ---------------------------------------------------------------------------
// interleaved dot products
// ---------------------------------------------------------------------------

namespace {

template <bool Conj>
Complex
dotInterleavedScalar(const Complex* a, const Complex* b, std::size_t n)
{
    const double* x = reinterpret_cast<const double*>(a);
    const double* y = reinterpret_cast<const double*>(b);
    // Eight stripes, mirroring the two vector accumulator pairs (see
    // dotPlanarScalar for the reduction-shape rationale).
    const std::size_t n8 = n & ~std::size_t{7};
    double rr[8] = {};
    double ri[8] = {};
    for (std::size_t i = 0; i < n8; ++i) {
        const std::size_t lane = i & 7;
        const double xr = x[2 * i], xi = x[2 * i + 1];
        const double yr = y[2 * i], yi = y[2 * i + 1];
        if (Conj) {
            rr[lane] = rr[lane] + (xr * yr + xi * yi);
            ri[lane] = ri[lane] + (xr * yi - xi * yr);
        } else {
            rr[lane] = rr[lane] + (xr * yr - xi * yi);
            ri[lane] = ri[lane] + (xr * yi + xi * yr);
        }
    }
    const double tr[4] = {rr[0] + rr[4], rr[1] + rr[5], rr[2] + rr[6],
                          rr[3] + rr[7]};
    const double ti[4] = {ri[0] + ri[4], ri[1] + ri[5], ri[2] + ri[6],
                          ri[3] + ri[7]};
    double sr = (tr[0] + tr[2]) + (tr[1] + tr[3]);
    double si = (ti[0] + ti[2]) + (ti[1] + ti[3]);
    for (std::size_t i = n8; i < n; ++i) {
        const double xr = x[2 * i], xi = x[2 * i + 1];
        const double yr = y[2 * i], yi = y[2 * i + 1];
        if (Conj) {
            sr = sr + (xr * yr + xi * yi);
            si = si + (xr * yi - xi * yr);
        } else {
            sr = sr + (xr * yr - xi * yi);
            si = si + (xr * yi + xi * yr);
        }
    }
    return Complex{sr, si};
}

#if QPC_KERNELS_AVX2

template <bool Conj>
Complex
dotInterleavedAvx2(const Complex* a, const Complex* b, std::size_t n)
{
    const double* x = reinterpret_cast<const double*>(a);
    const double* y = reinterpret_cast<const double*>(b);
    const std::size_t n8 = n & ~std::size_t{7};
    __m256d rr0 = _mm256_setzero_pd(), rr1 = _mm256_setzero_pd();
    __m256d ri0 = _mm256_setzero_pd(), ri1 = _mm256_setzero_pd();
    for (std::size_t i = 0; i < n8; i += 8) {
        __m256d xr0, xi0, yr0, yi0, xr1, xi1, yr1, yi1;
        load4c(x + 2 * i, xr0, xi0);
        load4c(y + 2 * i, yr0, yi0);
        load4c(x + 2 * i + 8, xr1, xi1);
        load4c(y + 2 * i + 8, yr1, yi1);
        if (Conj) {
            rr0 = _mm256_add_pd(
                rr0, _mm256_add_pd(_mm256_mul_pd(xr0, yr0),
                                   _mm256_mul_pd(xi0, yi0)));
            rr1 = _mm256_add_pd(
                rr1, _mm256_add_pd(_mm256_mul_pd(xr1, yr1),
                                   _mm256_mul_pd(xi1, yi1)));
            ri0 = _mm256_add_pd(
                ri0, _mm256_sub_pd(_mm256_mul_pd(xr0, yi0),
                                   _mm256_mul_pd(xi0, yr0)));
            ri1 = _mm256_add_pd(
                ri1, _mm256_sub_pd(_mm256_mul_pd(xr1, yi1),
                                   _mm256_mul_pd(xi1, yr1)));
        } else {
            rr0 = _mm256_add_pd(
                rr0, _mm256_sub_pd(_mm256_mul_pd(xr0, yr0),
                                   _mm256_mul_pd(xi0, yi0)));
            rr1 = _mm256_add_pd(
                rr1, _mm256_sub_pd(_mm256_mul_pd(xr1, yr1),
                                   _mm256_mul_pd(xi1, yi1)));
            ri0 = _mm256_add_pd(
                ri0, _mm256_add_pd(_mm256_mul_pd(xr0, yi0),
                                   _mm256_mul_pd(xi0, yr0)));
            ri1 = _mm256_add_pd(
                ri1, _mm256_add_pd(_mm256_mul_pd(xr1, yi1),
                                   _mm256_mul_pd(xi1, yr1)));
        }
    }
    double sr = hsum(_mm256_add_pd(rr0, rr1));
    double si = hsum(_mm256_add_pd(ri0, ri1));
    for (std::size_t i = n8; i < n; ++i) {
        const double xr = x[2 * i], xi = x[2 * i + 1];
        const double yr = y[2 * i], yi = y[2 * i + 1];
        if (Conj) {
            sr = sr + (xr * yr + xi * yi);
            si = si + (xr * yi - xi * yr);
        } else {
            sr = sr + (xr * yr - xi * yi);
            si = si + (xr * yi + xi * yr);
        }
    }
    return Complex{sr, si};
}

#endif

} // namespace

Complex
dotcInterleavedScalar(const Complex* a, const Complex* b, std::size_t n)
{
    return dotInterleavedScalar<true>(a, b, n);
}

Complex
dotuInterleavedScalar(const Complex* a, const Complex* b, std::size_t n)
{
    return dotInterleavedScalar<false>(a, b, n);
}

Complex
dotcInterleaved(const Complex* a, const Complex* b, std::size_t n)
{
#if QPC_KERNELS_AVX2
    return dotInterleavedAvx2<true>(a, b, n);
#else
    return dotInterleavedScalar<true>(a, b, n);
#endif
}

Complex
dotuInterleaved(const Complex* a, const Complex* b, std::size_t n)
{
#if QPC_KERNELS_AVX2
    return dotInterleavedAvx2<false>(a, b, n);
#else
    return dotInterleavedScalar<false>(a, b, n);
#endif
}

// ---------------------------------------------------------------------------
// AoS-boundary conveniences
// ---------------------------------------------------------------------------

void
gemmAosReference(CMatrix& result, const CMatrix& a, const CMatrix& b)
{
    panicIf(a.cols() != b.rows(), "matrix shape mismatch in multiply: ",
            a.rows(), "x", a.cols(), " * ", b.rows(), "x", b.cols());
    panicIf(result.rows() != a.rows() || result.cols() != b.cols(),
            "result shape mismatch in gemmAosReference");
    panicIf(&result == &a || &result == &b,
            "gemmAosReference result must not alias an operand");

    const int n = a.rows();
    const int k = a.cols();
    const int m = b.cols();
    Complex* out = result.data();
    const Complex* ad = a.data();
    const Complex* bd = b.data();

    std::fill(out, out + static_cast<std::size_t>(n) * m,
              Complex{0.0, 0.0});
    // i-k-j loop order streams through b and result rows contiguously.
    for (int i = 0; i < n; ++i) {
        for (int kk = 0; kk < k; ++kk) {
            const Complex aik = ad[i * k + kk];
            if (aik == Complex{0.0, 0.0})
                continue;
            const Complex* brow = bd + static_cast<std::size_t>(kk) * m;
            Complex* orow = out + static_cast<std::size_t>(i) * m;
            for (int j = 0; j < m; ++j)
                orow[j] += aik * brow[j];
        }
    }
}

bool
gemmWorthSoa(int n, int k, int m)
{
    // The multiply's O(nkm) work must amortize the O(nk + km + nm)
    // pack/unpack boundary conversion; 8x8x8 is where the planar
    // kernel starts winning on the dims this library uses.
    return static_cast<std::size_t>(n) * static_cast<std::size_t>(k) *
               static_cast<std::size_t>(m) >=
           512;
}

namespace {

/** Per-thread pack/compute scratch so the hot consumers never
 * allocate; safe because no kernel re-enters gemmInto. */
struct GemmScratch
{
    SoaMatrix a, b, c;
};

GemmScratch&
gemmScratch()
{
    thread_local GemmScratch scratch;
    return scratch;
}

void
unpackInto(const SoaMatrix& s, CMatrix& m)
{
    Complex* d = m.data();
    const std::size_t n = static_cast<std::size_t>(s.rows()) *
                          static_cast<std::size_t>(s.cols());
    for (std::size_t i = 0; i < n; ++i)
        d[i] = Complex{s.re()[i], s.im()[i]};
}

} // namespace

void
gemmInto(CMatrix& result, const CMatrix& a, const CMatrix& b)
{
    panicIf(a.cols() != b.rows(), "matrix shape mismatch in multiply: ",
            a.rows(), "x", a.cols(), " * ", b.rows(), "x", b.cols());
    panicIf(result.rows() != a.rows() || result.cols() != b.cols(),
            "result shape mismatch in gemmInto");
    GemmScratch& s = gemmScratch();
    s.a.pack(a);
    s.b.pack(b);
    s.c.resize(a.rows(), b.cols());
    gemm(s.c, s.a, s.b);
    unpackInto(s.c, result);
}

CMatrix
scaledDaggerSandwich(const CMatrix& v,
                     const std::vector<Complex>& factors)
{
    const int n = v.rows();
    panicIf(v.cols() != n, "scaledDaggerSandwich needs a square matrix");
    panicIf(static_cast<int>(factors.size()) != n,
            "scaledDaggerSandwich needs one factor per column");
    GemmScratch& s = gemmScratch();
    s.a.pack(v);
    scaleColumns(s.a, factors.data());
    s.b.packDagger(v);
    s.c.resize(n, n);
    gemm(s.c, s.a, s.b);
    CMatrix out(n, n);
    unpackInto(s.c, out);
    return out;
}

} // namespace qpc::kernels
