#include "linalg/expm.h"

#include <cmath>
#include <vector>

#include "common/logging.h"
#include "linalg/eig.h"
#include "linalg/kernels.h"

namespace qpc {

CMatrix
expmHermitian(const CMatrix& h, Complex factor)
{
    EigResult eig = eigHermitian(h);
    const int n = h.rows();
    // V diag(exp(factor * lambda)) V^dagger
    std::vector<Complex> factors(static_cast<size_t>(n));
    for (int col = 0; col < n; ++col)
        factors[col] = std::exp(factor * eig.values[col]);
    return kernels::scaledDaggerSandwich(eig.vectors, factors);
}

CMatrix
expmGeneral(const CMatrix& a)
{
    panicIf(a.rows() != a.cols(), "expmGeneral needs a square matrix");
    const int n = a.rows();

    // Scale down so the Taylor series converges fast, then square back.
    const double norm = a.maxAbs() * n;
    int squarings = 0;
    double scale = 1.0;
    while (norm * scale > 0.5) {
        scale *= 0.5;
        ++squarings;
    }

    CMatrix x = a * Complex{scale, 0.0};
    CMatrix term = CMatrix::identity(n);
    CMatrix sum = CMatrix::identity(n);
    const int taylor_order = 18;
    for (int k = 1; k <= taylor_order; ++k) {
        term = term * x;
        term *= Complex{1.0 / k, 0.0};
        sum += term;
    }
    for (int i = 0; i < squarings; ++i)
        sum = sum * sum;
    return sum;
}

} // namespace qpc
