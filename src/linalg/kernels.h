/**
 * @file
 * Structure-of-arrays numeric kernels for the compute spine.
 *
 * Every pulse this system serves is born in the same inner loops —
 * statevector gate application, `expm`, and the GRAPE gradient. This
 * layer gives those loops a planar (separate re/im arrays, 32-byte
 * aligned) complex representation and hand-vectorized AVX2 inner
 * loops, compiled in when the build targets a machine with AVX2
 * (the `QPC_NATIVE` CMake option, i.e. `-march=native`).
 *
 * Contract: every dispatching kernel has a scalar fallback that is
 * **bit-compatible** with the AVX2 path — identical operations on
 * identical elements in identical order, no FMA contraction (this
 * translation unit is built with `-ffp-contract=off`). A binary built
 * without AVX2 therefore produces bit-for-bit the same results as one
 * built with it, which is what lets the scalar CI lanes stand in for
 * the vectorized production build numerically.
 *
 * Consumers convert at the boundary: `CMatrix` keeps its row-major
 * array-of-structs `std::complex<double>` public API, and the
 * statevector keeps its interleaved amplitude buffer; pack/unpack
 * (or in-register deinterleaving, for the interleaved kernels)
 * happens here, so the IR/partial/cache layers above never see the
 * planar layout.
 */

#ifndef QPC_LINALG_KERNELS_H
#define QPC_LINALG_KERNELS_H

#include <cstddef>
#include <vector>

#include "linalg/matrix.h"

namespace qpc::kernels {

/** True when the dispatching kernels run the AVX2 paths. */
bool simdEnabled();

/** "avx2" or "scalar" — for bench/test labeling. */
const char* backendName();

/**
 * Dense row-major planar complex matrix: one aligned double array for
 * the real parts, one for the imaginary parts. Scratch representation
 * only — pack from / unpack to `CMatrix` at the boundary.
 */
class SoaMatrix
{
  public:
    SoaMatrix() = default;
    SoaMatrix(int rows, int cols) { resize(rows, cols); }
    ~SoaMatrix();

    SoaMatrix(const SoaMatrix&) = delete;
    SoaMatrix& operator=(const SoaMatrix&) = delete;
    SoaMatrix(SoaMatrix&& other) noexcept { swap(other); }
    SoaMatrix&
    operator=(SoaMatrix&& other) noexcept
    {
        swap(other);
        return *this;
    }

    /** Reallocate (only when capacity grows) to rows x cols. Contents
     * are unspecified afterwards. */
    void resize(int rows, int cols);

    int rows() const { return rows_; }
    int cols() const { return cols_; }

    double* re() { return re_; }
    double* im() { return im_; }
    const double* re() const { return re_; }
    const double* im() const { return im_; }

    /** Copy an AoS matrix in (resizing to match). */
    void pack(const CMatrix& m);
    /** Copy the conjugate transpose of an AoS matrix in. */
    void packDagger(const CMatrix& m);
    /** Copy out to an AoS matrix (resized to match). */
    void unpack(CMatrix& m) const;

    void swap(SoaMatrix& other) noexcept;

  private:
    int rows_ = 0;
    int cols_ = 0;
    std::size_t capacity_ = 0;
    double* re_ = nullptr;
    double* im_ = nullptr;
};

/** @name Planar (SoA) kernels
 * Each comes as a dispatching entry point plus a `...Scalar` reference
 * that the dispatcher is bit-compatible with (the property tests and
 * the micro bench compare the two).
 * @{ */

/** c = a * b. c must be presized a.rows() x b.cols(); no aliasing. */
void gemm(SoaMatrix& c, const SoaMatrix& a, const SoaMatrix& b);
void gemmScalar(SoaMatrix& c, const SoaMatrix& a, const SoaMatrix& b);

/** y = a * x (planar vectors of a.cols() / a.rows() elements). */
void gemv(double* yre, double* yim, const SoaMatrix& a,
          const double* xre, const double* xim);
void gemvScalar(double* yre, double* yim, const SoaMatrix& a,
                const double* xre, const double* xim);

/** y += alpha * x over n planar elements. */
void axpy(Complex alpha, const double* xre, const double* xim,
          double* yre, double* yim, std::size_t n);
void axpyScalar(Complex alpha, const double* xre, const double* xim,
                double* yre, double* yim, std::size_t n);

/** sum_i conj(x_i) * y_i over n planar elements. */
Complex dotc(const double* xre, const double* xim, const double* yre,
             const double* yim, std::size_t n);
Complex dotcScalar(const double* xre, const double* xim,
                   const double* yre, const double* yim, std::size_t n);

/** sum_i x_i * y_i (no conjugation) over n planar elements. */
Complex dotu(const double* xre, const double* xim, const double* yre,
             const double* yim, std::size_t n);
Complex dotuScalar(const double* xre, const double* xim,
                   const double* yre, const double* yim, std::size_t n);

/** Scale column j of m by factors[j] (m.cols() factors). */
void scaleColumns(SoaMatrix& m, const Complex* factors);
void scaleColumnsScalar(SoaMatrix& m, const Complex* factors);

/** @} */

/** @name Interleaved-boundary kernels
 * Operate directly on array-of-structs complex buffers (the
 * statevector's amplitudes, `CMatrix` rows), deinterleaving into
 * planar form in registers. Same bit-compatibility contract.
 * @{ */

/**
 * Apply a 2x2 unitary to every amplitude pair (base, base | stride)
 * of an interleaved statevector of `dim` amplitudes. u is row-major
 * {u00, u01, u10, u11}. stride must be a power of two < dim.
 */
void applyGate1(Complex* amps, std::size_t dim, std::size_t stride,
                const Complex* u);
void applyGate1Scalar(Complex* amps, std::size_t dim,
                      std::size_t stride, const Complex* u);

/**
 * Apply a 4x4 unitary to every amplitude quad
 * (base, base|s1, base|s0, base|s0|s1) of an interleaved statevector.
 * u is row-major 4x4; s0 != s1 are powers of two < dim.
 */
void applyGate2(Complex* amps, std::size_t dim, std::size_t s0,
                std::size_t s1, const Complex* u);
void applyGate2Scalar(Complex* amps, std::size_t dim, std::size_t s0,
                      std::size_t s1, const Complex* u);

/** sum_i conj(a_i) * b_i over interleaved complex buffers. */
Complex dotcInterleaved(const Complex* a, const Complex* b,
                        std::size_t n);
Complex dotcInterleavedScalar(const Complex* a, const Complex* b,
                              std::size_t n);

/** sum_i a_i * b_i (no conjugation) over interleaved buffers. */
Complex dotuInterleaved(const Complex* a, const Complex* b,
                        std::size_t n);
Complex dotuInterleavedScalar(const Complex* a, const Complex* b,
                              std::size_t n);

/** @} */

/** @name AoS-boundary conveniences for the CMatrix consumers
 * @{ */

/**
 * The pre-SoA array-of-structs multiply loop, kept verbatim as the
 * scalar *reference* implementation: the property tests pin the SoA
 * kernels against it, and the micro bench reports speedups relative
 * to it (it is what `multiplyInto` executed before this layer).
 */
void gemmAosReference(CMatrix& result, const CMatrix& a,
                      const CMatrix& b);

/**
 * True when routing an (n x k) * (k x m) multiply through pack +
 * planar gemm + unpack beats the AoS loop (the multiply must amortize
 * the O(nk + km + nm) boundary conversion).
 */
bool gemmWorthSoa(int n, int k, int m);

/** result = a * b through the planar kernel (presized, no aliasing). */
void gemmInto(CMatrix& result, const CMatrix& a, const CMatrix& b);

/**
 * V diag(factors) V^dagger — the Hermitian-function sandwich at the
 * heart of `expmHermitian` and the GRAPE slice propagators. Column
 * scaling plus a dagger-packed gemm, all planar.
 */
CMatrix scaledDaggerSandwich(const CMatrix& v,
                             const std::vector<Complex>& factors);

/** @} */

} // namespace qpc::kernels

#endif // QPC_LINALG_KERNELS_H
