/**
 * @file
 * Dense complex matrices sized for quantum subcircuits.
 *
 * The library manipulates unitaries of dimension 2^n for n <= ~6 qubits
 * (GRAPE blocks are capped at 4 qubits, i.e. 16x16), so a simple
 * row-major dense representation with cache-friendly multiply loops is
 * both sufficient and fast. No external BLAS dependency.
 */

#ifndef QPC_LINALG_MATRIX_H
#define QPC_LINALG_MATRIX_H

#include <complex>
#include <vector>

namespace qpc {

using Complex = std::complex<double>;

/** The imaginary unit, for readable formulas. */
inline constexpr Complex kImag{0.0, 1.0};

/**
 * Dense row-major complex matrix.
 *
 * Invariant: data_.size() == rows_ * cols_.
 */
class CMatrix
{
  public:
    /** Empty 0x0 matrix. */
    CMatrix() = default;

    /** Zero-filled rows x cols matrix. */
    CMatrix(int rows, int cols);

    /** Build from an explicit row-major initializer list. */
    CMatrix(int rows, int cols, std::initializer_list<Complex> values);

    /** n x n identity. */
    static CMatrix identity(int n);

    /** rows x cols zero matrix. */
    static CMatrix zeros(int rows, int cols);

    int rows() const { return rows_; }
    int cols() const { return cols_; }
    bool empty() const { return data_.empty(); }

    Complex& operator()(int r, int c) { return data_[r * cols_ + c]; }
    const Complex&
    operator()(int r, int c) const
    {
        return data_[r * cols_ + c];
    }

    Complex* data() { return data_.data(); }
    const Complex* data() const { return data_.data(); }

    CMatrix& operator+=(const CMatrix& other);
    CMatrix& operator-=(const CMatrix& other);
    CMatrix& operator*=(Complex scalar);

    CMatrix operator+(const CMatrix& other) const;
    CMatrix operator-(const CMatrix& other) const;
    CMatrix operator*(const CMatrix& other) const;
    CMatrix operator*(Complex scalar) const;

    /** Conjugate transpose. */
    CMatrix dagger() const;
    /** Plain transpose (no conjugation). */
    CMatrix transpose() const;
    /** Elementwise conjugate. */
    CMatrix conjugate() const;

    /** Sum of diagonal entries. */
    Complex trace() const;

    /** sqrt(sum |a_ij|^2). */
    double frobeniusNorm() const;
    /** max_ij |a_ij|. */
    double maxAbs() const;

    /** Largest elementwise |difference| to another matrix. */
    double maxAbsDiff(const CMatrix& other) const;

    /** True when maxAbsDiff(other) <= tol. */
    bool approxEqual(const CMatrix& other, double tol = 1e-9) const;

    /** True when U U^dagger == I within tol. */
    bool isUnitary(double tol = 1e-9) const;

    /** True when A == A^dagger within tol. */
    bool isHermitian(double tol = 1e-9) const;

    /** Determinant via LU with partial pivoting (small matrices). */
    Complex determinant() const;

    /** Matrix-vector product. */
    std::vector<Complex> apply(const std::vector<Complex>& v) const;

    /** Human-readable dump for debugging. */
    std::string str(int decimals = 4) const;

  private:
    int rows_ = 0;
    int cols_ = 0;
    std::vector<Complex> data_;
};

/** result = a * b without allocating when result is presized. */
void multiplyInto(CMatrix& result, const CMatrix& a, const CMatrix& b);

/** Kronecker (tensor) product a (x) b. */
CMatrix kron(const CMatrix& a, const CMatrix& b);

/** Kronecker product of a list, left to right. */
CMatrix kronAll(const std::vector<CMatrix>& factors);

/** Scalar * matrix, for natural formula order. */
inline CMatrix
operator*(Complex scalar, const CMatrix& m)
{
    return m * scalar;
}

/** <a|b> with conjugation on the left argument. */
Complex innerProduct(const std::vector<Complex>& a,
                     const std::vector<Complex>& b);

/** l2 norm of a complex vector. */
double vectorNorm(const std::vector<Complex>& v);

} // namespace qpc

#endif // QPC_LINALG_MATRIX_H
