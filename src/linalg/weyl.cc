#include "linalg/weyl.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "linalg/eig.h"
#include "linalg/su2.h"

namespace qpc {

namespace {

constexpr double kPi = 3.14159265358979323846;

/**
 * Reduce one coordinate into [-pi/4, pi/4) by pi/2 shifts. A shift of
 * pi/2 in any canonical coordinate multiplies the gate by a local
 * operator (e.g. exp(i pi/2 XX) = i X(x)X), so it preserves the local
 * equivalence class.
 */
double
reduceQuarter(double c)
{
    const double half = kPi / 2.0;
    double r = c - half * std::floor(c / half + 0.5);
    // floor-based rounding can leave r == pi/4 due to roundoff.
    if (r >= kPi / 4.0 - 1e-15)
        r -= half;
    return r;
}

} // namespace

double
WeylCoords::interaction() const
{
    return std::abs(c1) + std::abs(c2) + std::abs(c3);
}

CMatrix
magicBasis()
{
    const double s = 1.0 / std::sqrt(2.0);
    // Columns: (|00>+|11>)/s2, -i(|00>-|11>)/s2, (|01>-|10>)/s2,
    //          -i(|01>+|10>)/s2. Row order |00>,|01>,|10>,|11>.
    CMatrix m(4, 4);
    m(0, 0) = s;
    m(3, 0) = s;
    m(0, 1) = Complex{0.0, -s};
    m(3, 1) = Complex{0.0, s};
    m(1, 2) = s;
    m(2, 2) = -s;
    m(1, 3) = Complex{0.0, -s};
    m(2, 3) = Complex{0.0, -s};
    return m;
}

WeylCoords
weylCoordinates(const CMatrix& u)
{
    panicIf(u.rows() != 4 || u.cols() != 4,
            "weylCoordinates needs a 4x4 matrix");
    panicIf(!u.isUnitary(1e-8), "weylCoordinates input is not unitary");

    // Normalize into SU(4).
    const Complex det = u.determinant();
    CMatrix us = u * std::polar(1.0, -std::arg(det) / 4.0);

    // Move to the magic basis, where locals are real orthogonal and the
    // canonical gate is diagonal.
    const CMatrix m = magicBasis();
    const CMatrix v = m.dagger() * us * m;

    // g = v^T v is symmetric unitary; its eigenphases are twice the
    // diagonal exponents of the canonical gate.
    const CMatrix g = v.transpose() * v;

    CMatrix p(4, 4), s(4, 4);
    for (int i = 0; i < 4; ++i) {
        for (int j = 0; j < 4; ++j) {
            p(i, j) = Complex{g(i, j).real(), 0.0};
            s(i, j) = Complex{g(i, j).imag(), 0.0};
        }
    }
    CMatrix q;
    std::vector<double> pd, sd;
    simultaneousDiagonalize(p, s, q, pd, sd);

    // Eigenphase of g is 2*phi (mod 2pi), so each phi is free mod pi.
    double phi[4];
    for (int i = 0; i < 4; ++i)
        phi[i] = 0.5 * std::atan2(sd[i], pd[i]);

    // det(g) = det(v)^2 = 1, so sum(phi) = k*pi; shift the largest
    // (or smallest) entries by pi so the sum becomes zero, which keeps
    // the exponents inside the image of the canonical parametrization.
    double sum = phi[0] + phi[1] + phi[2] + phi[3];
    int k = static_cast<int>(std::lround(sum / kPi));
    std::vector<int> order{0, 1, 2, 3};
    std::sort(order.begin(), order.end(),
              [&](int a, int b) { return phi[a] > phi[b]; });
    for (int i = 0; k > 0; --k, ++i)
        phi[order[i]] -= kPi;
    for (int i = 0; k < 0; ++k, ++i)
        phi[order[3 - i]] += kPi;

    // Exponent pattern of exp(i(c1 XX + c2 YY + c3 ZZ)) in the magic
    // basis: (c1-c2+c3, -c1+c2+c3, -c1-c2-c3, c1+c2-c3). Eigenvalue
    // ordering ambiguity only permutes / sign-flips the c's, which the
    // canonical reduction below resolves.
    double c[3];
    c[0] = (phi[0] - phi[1] - phi[2] + phi[3]) / 4.0;
    c[1] = (-phi[0] + phi[1] - phi[2] + phi[3]) / 4.0;
    c[2] = (phi[0] + phi[1] - phi[2] - phi[3]) / 4.0;

    // Reduce each coordinate into [-pi/4, pi/4).
    for (double& ci : c)
        ci = reduceQuarter(ci);

    // Sort by absolute value, descending.
    std::sort(std::begin(c), std::end(c), [](double a, double b) {
        return std::abs(a) > std::abs(b);
    });

    // Flipping the signs of any *pair* of coordinates is a local
    // operation; reduce to at most one negative, carried by the
    // smallest coordinate.
    int negatives = (c[0] < 0) + (c[1] < 0) + (c[2] < 0);
    if (negatives >= 2) {
        // Flip the two largest-magnitude negatives.
        int flipped = 0;
        for (double& ci : c) {
            if (ci < 0 && flipped < 2) {
                ci = -ci;
                ++flipped;
            }
        }
    }
    if (c[0] < 0) {
        c[0] = -c[0];
        c[2] = -c[2];
    }
    if (c[1] < 0) {
        c[1] = -c[1];
        c[2] = -c[2];
    }
    // Keep descending magnitude after sign surgery.
    std::sort(std::begin(c), std::end(c), [](double a, double b) {
        return std::abs(a) > std::abs(b);
    });

    // Chamber wall: +-pi/4 are the same class; prefer c3 >= 0 there.
    if (c[0] > kPi / 4.0 - 1e-9 && c[2] < 0)
        c[2] = -c[2];

    WeylCoords out;
    out.c1 = c[0];
    out.c2 = std::abs(c[1]);
    out.c3 = c[2];
    if (std::abs(out.c3) > out.c2)
        std::swap(out.c2, out.c3);
    return out;
}

CMatrix
canonicalGate(double c1, double c2, double c3)
{
    // Diagonal in the magic basis with the exponent pattern above.
    const double e0 = c1 - c2 + c3;
    const double e1 = -c1 + c2 + c3;
    const double e2 = -c1 - c2 - c3;
    const double e3 = c1 + c2 - c3;
    CMatrix d(4, 4);
    d(0, 0) = std::polar(1.0, e0);
    d(1, 1) = std::polar(1.0, e1);
    d(2, 2) = std::polar(1.0, e2);
    d(3, 3) = std::polar(1.0, e3);
    const CMatrix m = magicBasis();
    return m * d * m.dagger();
}

bool
locallyEquivalent(const CMatrix& u, const CMatrix& v, double tol)
{
    const WeylCoords a = weylCoordinates(u);
    const WeylCoords b = weylCoordinates(v);
    return std::abs(a.c1 - b.c1) <= tol && std::abs(a.c2 - b.c2) <= tol &&
           std::abs(a.c3 - b.c3) <= tol;
}

} // namespace qpc
