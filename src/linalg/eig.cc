#include "linalg/eig.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"

namespace qpc {

namespace {

/** Sum of |a_pq|^2 over the strict upper triangle. */
double
offDiagonalMass(const CMatrix& a)
{
    double sum = 0.0;
    for (int p = 0; p < a.rows(); ++p)
        for (int q = p + 1; q < a.cols(); ++q)
            sum += std::norm(a(p, q));
    return sum;
}

/**
 * One cyclic Jacobi sweep over the strict upper triangle of a Hermitian
 * matrix. Each rotation G = diag(1, e^{-i phi}) * [[c, s], [-s, c]]
 * (embedded at rows/cols p, q) zeroes a(p, q); a <- G^dagger a G and
 * v <- v G.
 */
void
jacobiSweep(CMatrix& a, CMatrix& v, double tiny)
{
    const int n = a.rows();
    for (int p = 0; p < n; ++p) {
        for (int q = p + 1; q < n; ++q) {
            const Complex beta = a(p, q);
            const double abeta = std::abs(beta);
            if (abeta <= tiny)
                continue;

            const double alpha = a(p, p).real();
            const double gamma = a(q, q).real();
            const double phi = std::arg(beta);
            const double tau = (gamma - alpha) / (2.0 * abeta);
            double t;
            if (tau >= 0.0)
                t = 1.0 / (tau + std::sqrt(1.0 + tau * tau));
            else
                t = -1.0 / (-tau + std::sqrt(1.0 + tau * tau));
            const double c = 1.0 / std::sqrt(1.0 + t * t);
            const double s = t * c;
            const Complex eip = std::polar(1.0, phi);
            const Complex eim = std::conj(eip);

            // Column update: a <- a G.
            for (int i = 0; i < n; ++i) {
                const Complex aip = a(i, p);
                const Complex aiq = a(i, q);
                a(i, p) = c * aip - s * eim * aiq;
                a(i, q) = s * aip + c * eim * aiq;
            }
            // Row update: a <- G^dagger a.
            for (int j = 0; j < n; ++j) {
                const Complex apj = a(p, j);
                const Complex aqj = a(q, j);
                a(p, j) = c * apj - s * eip * aqj;
                a(q, j) = s * apj + c * eip * aqj;
            }
            // Accumulate eigenvectors: v <- v G.
            for (int i = 0; i < n; ++i) {
                const Complex vip = v(i, p);
                const Complex viq = v(i, q);
                v(i, p) = c * vip - s * eim * viq;
                v(i, q) = s * vip + c * eim * viq;
            }
        }
    }
}

} // namespace

EigResult
eigHermitian(const CMatrix& input, double tol)
{
    panicIf(input.rows() != input.cols(), "eigHermitian needs square input");
    panicIf(!input.isHermitian(1e-9),
            "eigHermitian input is not Hermitian (max asym ",
            input.maxAbsDiff(input.dagger()), ")");

    const int n = input.rows();
    CMatrix a = input;
    // Symmetrize to kill representation-level asymmetry.
    CMatrix ad = input.dagger();
    a += ad;
    a *= 0.5;

    CMatrix v = CMatrix::identity(n);
    const double scale = std::max(a.frobeniusNorm(), 1e-300);
    const double target = tol * tol * scale * scale;
    const double tiny = 1e-300;

    const int max_sweeps = 100;
    int sweep = 0;
    while (offDiagonalMass(a) > target && sweep < max_sweeps) {
        jacobiSweep(a, v, tiny);
        ++sweep;
    }
    panicIf(sweep == max_sweeps, "Jacobi eigensolver failed to converge");

    EigResult result;
    result.values.resize(n);
    for (int i = 0; i < n; ++i)
        result.values[i] = a(i, i).real();

    // Sort ascending, permuting eigenvector columns to match.
    std::vector<int> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](int x, int y) {
        return result.values[x] < result.values[y];
    });

    EigResult sorted;
    sorted.values.resize(n);
    sorted.vectors = CMatrix(n, n);
    for (int col = 0; col < n; ++col) {
        sorted.values[col] = result.values[order[col]];
        for (int row = 0; row < n; ++row)
            sorted.vectors(row, col) = v(row, order[col]);
    }
    return sorted;
}

namespace {

/** Max |entry| of the strict off-diagonal of q^T m q. */
double
rotatedOffDiagonal(const CMatrix& q, const CMatrix& m)
{
    CMatrix r = q.transpose() * m * q;
    double worst = 0.0;
    for (int i = 0; i < r.rows(); ++i)
        for (int j = 0; j < r.cols(); ++j)
            if (i != j)
                worst = std::max(worst, std::abs(r(i, j)));
    return worst;
}

} // namespace

void
simultaneousDiagonalize(const CMatrix& p, const CMatrix& s, CMatrix& q,
                        std::vector<double>& pd, std::vector<double>& sd)
{
    const int n = p.rows();
    panicIf(p.cols() != n || s.rows() != n || s.cols() != n,
            "simultaneousDiagonalize shape mismatch");

    // Weights chosen irrational so structured spectra rarely collide;
    // several fallbacks cover adversarial alignments.
    const double weights[] = {0.7548776662466927, 1.3247179572447460,
                              0.3819660112501051, 2.6180339887498949,
                              0.0, 1.0};

    double best_residual = 1e300;
    CMatrix best_q;

    for (double w : weights) {
        CMatrix c = p + s * Complex{w, 0.0};
        EigResult eig = eigHermitian(c);

        // Strip any residual phases so q is a real matrix. Eigenvectors
        // of a real symmetric matrix computed by our Jacobi stay real,
        // but normalize defensively.
        CMatrix qr(n, n);
        for (int col = 0; col < n; ++col) {
            // Find largest-magnitude entry to define the phase.
            int arg_max = 0;
            double mag = 0.0;
            for (int row = 0; row < n; ++row) {
                if (std::abs(eig.vectors(row, col)) > mag) {
                    mag = std::abs(eig.vectors(row, col));
                    arg_max = row;
                }
            }
            Complex phase =
                eig.vectors(arg_max, col) / std::abs(eig.vectors(arg_max, col));
            for (int row = 0; row < n; ++row)
                qr(row, col) = (eig.vectors(row, col) / phase).real();
        }

        // Within degenerate clusters of c's spectrum, the Jacobi basis is
        // arbitrary; re-diagonalize p restricted to each cluster (s then
        // follows automatically because s = (c - p)/w on that subspace).
        const double cluster_tol =
            1e-8 * std::max(1.0, c.frobeniusNorm());
        int start = 0;
        while (start < n) {
            int end = start + 1;
            while (end < n &&
                   std::abs(eig.values[end] - eig.values[end - 1]) <
                       cluster_tol) {
                ++end;
            }
            const int k = end - start;
            if (k > 1) {
                // p restricted to the cluster columns.
                CMatrix sub(k, k);
                for (int i = 0; i < k; ++i)
                    for (int j = 0; j < k; ++j) {
                        Complex acc = 0.0;
                        for (int r = 0; r < n; ++r)
                            for (int t = 0; t < n; ++t)
                                acc += qr(r, start + i) * p(r, t) *
                                       qr(t, start + j);
                        sub(i, j) = acc;
                    }
                EigResult sub_eig = eigHermitian(sub);
                CMatrix rotated(n, k);
                for (int r = 0; r < n; ++r)
                    for (int j = 0; j < k; ++j) {
                        Complex acc = 0.0;
                        for (int i = 0; i < k; ++i)
                            acc += qr(r, start + i) * sub_eig.vectors(i, j);
                        rotated(r, j) = acc.real();
                    }
                for (int r = 0; r < n; ++r)
                    for (int j = 0; j < k; ++j)
                        qr(r, start + j) = rotated(r, j);
            }
            start = end;
        }

        double residual = std::max(rotatedOffDiagonal(qr, p),
                                   rotatedOffDiagonal(qr, s));
        if (residual < best_residual) {
            best_residual = residual;
            best_q = qr;
        }
        if (best_residual < 1e-9)
            break;
    }

    panicIf(best_residual > 1e-6,
            "simultaneousDiagonalize failed; residual ", best_residual);

    q = best_q;
    CMatrix pr = q.transpose() * p * q;
    CMatrix sr = q.transpose() * s * q;
    pd.resize(n);
    sd.resize(n);
    for (int i = 0; i < n; ++i) {
        pd[i] = pr(i, i).real();
        sd[i] = sr(i, i).real();
    }
}

} // namespace qpc
