#include "linalg/su2.h"

#include <cmath>

#include "common/logging.h"

namespace qpc {

CMatrix
pauliI()
{
    return CMatrix(2, 2, {1.0, 0.0, 0.0, 1.0});
}

CMatrix
pauliX()
{
    return CMatrix(2, 2, {0.0, 1.0, 1.0, 0.0});
}

CMatrix
pauliY()
{
    return CMatrix(2, 2, {0.0, -kImag, kImag, 0.0});
}

CMatrix
pauliZ()
{
    return CMatrix(2, 2, {1.0, 0.0, 0.0, -1.0});
}

CMatrix
rxMatrix(double theta)
{
    const double c = std::cos(theta / 2.0);
    const double s = std::sin(theta / 2.0);
    return CMatrix(2, 2, {Complex{c, 0.0}, Complex{0.0, -s},
                          Complex{0.0, -s}, Complex{c, 0.0}});
}

CMatrix
ryMatrix(double theta)
{
    const double c = std::cos(theta / 2.0);
    const double s = std::sin(theta / 2.0);
    return CMatrix(2, 2, {Complex{c, 0.0}, Complex{-s, 0.0},
                          Complex{s, 0.0}, Complex{c, 0.0}});
}

CMatrix
rzMatrix(double theta)
{
    return CMatrix(2, 2, {std::polar(1.0, -theta / 2.0), 0.0, 0.0,
                          std::polar(1.0, theta / 2.0)});
}

CMatrix
hMatrix()
{
    const double r = 1.0 / std::sqrt(2.0);
    return CMatrix(2, 2, {Complex{r, 0.0}, Complex{r, 0.0},
                          Complex{r, 0.0}, Complex{-r, 0.0}});
}

double
wrapAngle(double theta)
{
    const double two_pi = 2.0 * M_PI;
    double wrapped = std::fmod(theta, two_pi);
    if (wrapped <= -M_PI)
        wrapped += two_pi;
    else if (wrapped > M_PI)
        wrapped -= two_pi;
    return wrapped;
}

EulerZXZ
eulerZXZ(const CMatrix& u)
{
    panicIf(u.rows() != 2 || u.cols() != 2, "eulerZXZ needs a 2x2 matrix");
    panicIf(!u.isUnitary(1e-8), "eulerZXZ input is not unitary");

    // Strip the global phase: det(Rz Rx Rz) = 1, so det(U) = e^{2i phase}.
    const Complex det = u.determinant();
    const double phase = std::arg(det) / 2.0;
    CMatrix v = u * std::polar(1.0, -phase);

    // v = [[ c e^{-i(a+g)/2},  -i s e^{-i(a-g)/2} ],
    //      [ -i s e^{ i(a-g)/2},   c e^{ i(a+g)/2} ]]
    // with c = cos(beta/2) >= 0 and s = sin(beta/2) >= 0.
    const double c = std::abs(v(0, 0));
    const double s = std::abs(v(0, 1));
    const double beta = 2.0 * std::atan2(s, c);

    EulerZXZ out;
    out.phase = phase;
    out.beta = beta;

    const double eps = 1e-12;
    if (s <= eps) {
        // Diagonal: only the total Z angle matters.
        out.alpha = wrapAngle(-2.0 * std::arg(v(0, 0)));
        out.gamma = 0.0;
        out.beta = 0.0;
    } else if (c <= eps) {
        // Anti-diagonal: beta = pi, only the Z angle difference matters.
        out.beta = M_PI;
        out.alpha = wrapAngle(-2.0 * (std::arg(v(0, 1)) + M_PI / 2.0));
        out.gamma = 0.0;
    } else {
        const double sum = -2.0 * std::arg(v(0, 0));        // a + g
        const double diff = -2.0 * (std::arg(v(0, 1)) + M_PI / 2.0); // a - g
        out.alpha = wrapAngle((sum + diff) / 2.0);
        out.gamma = wrapAngle((sum - diff) / 2.0);
        // Wrapping each of alpha/gamma can shift (a+g)/2 by pi, flipping
        // the reconstructed SU(2) sign; absorb into the phase via check.
    }

    // Verify and absorb a possible sign flip into the global phase.
    CMatrix rebuilt = eulerZXZMatrix(out);
    if (rebuilt.maxAbsDiff(u) > 1e-8) {
        out.phase = wrapAngle(out.phase + M_PI);
        rebuilt = eulerZXZMatrix(out);
    }
    panicIf(rebuilt.maxAbsDiff(u) > 1e-8, "eulerZXZ reconstruction failed");
    return out;
}

CMatrix
eulerZXZMatrix(const EulerZXZ& angles)
{
    CMatrix m = rzMatrix(angles.alpha) * rxMatrix(angles.beta) *
                rzMatrix(angles.gamma);
    m *= std::polar(1.0, angles.phase);
    return m;
}

} // namespace qpc
