/**
 * @file
 * Single-qubit algebra: Pauli matrices, rotations, and the ZXZ Euler
 * decomposition.
 *
 * The gmon control Hamiltonian drives qubits along X (charge line) and
 * Z (flux line), so expressing an arbitrary single-qubit unitary as
 * Rz(alpha) Rx(beta) Rz(gamma) directly yields its control cost: the
 * analytic pulse-time model charges |beta| against the slow X drive and
 * |alpha| + |gamma| against the 15x faster Z drive.
 */

#ifndef QPC_LINALG_SU2_H
#define QPC_LINALG_SU2_H

#include "linalg/matrix.h"

namespace qpc {

/** 2x2 identity. */
CMatrix pauliI();
/** Pauli X. */
CMatrix pauliX();
/** Pauli Y. */
CMatrix pauliY();
/** Pauli Z. */
CMatrix pauliZ();

/** Rx(theta) = exp(-i theta X / 2). */
CMatrix rxMatrix(double theta);
/** Ry(theta) = exp(-i theta Y / 2). */
CMatrix ryMatrix(double theta);
/** Rz(theta) = exp(-i theta Z / 2). */
CMatrix rzMatrix(double theta);
/** Hadamard. */
CMatrix hMatrix();

/** ZXZ Euler angles of a 2x2 unitary. */
struct EulerZXZ
{
    double alpha;   ///< First (leftmost) Z rotation angle.
    double beta;    ///< Middle X rotation angle, in [0, pi].
    double gamma;   ///< Last (rightmost) Z rotation angle.
    double phase;   ///< Global phase: U = e^{i phase} Rz(a) Rx(b) Rz(g).
};

/**
 * Decompose a single-qubit unitary as
 * U = e^{i phase} Rz(alpha) Rx(beta) Rz(gamma).
 *
 * @param u A 2x2 unitary (validated).
 * @return Euler angles with beta in [0, pi] and alpha, gamma in
 *         (-pi, pi].
 */
EulerZXZ eulerZXZ(const CMatrix& u);

/** Rebuild the unitary described by ZXZ Euler angles (for testing). */
CMatrix eulerZXZMatrix(const EulerZXZ& angles);

/** Wrap an angle into (-pi, pi]. */
double wrapAngle(double theta);

} // namespace qpc

#endif // QPC_LINALG_SU2_H
