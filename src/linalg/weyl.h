/**
 * @file
 * Two-qubit Weyl (KAK) canonical coordinates.
 *
 * Every two-qubit unitary U factors as
 *   U = e^{i phase} (A1 (x) A0) exp(i (c1 XX + c2 YY + c3 ZZ)) (B1 (x) B0)
 * where the canonical coordinates (c1, c2, c3) capture everything about
 * U that single-qubit ("local") gates cannot change. For a machine whose
 * two-qubit coupler generates XX interaction with bounded strength g_max
 * (the gmon coupler of Appendix A), the minimal coupler-on time needed
 * to realize U is (|c1| + |c2| + |c3|) / g_max. The analytic pulse-time
 * model is built on this quantity: CX has coordinates (pi/4, 0, 0) and
 * SWAP (pi/4, pi/4, pi/4), which reproduces the 2.5 ns / 7.5 ns
 * interaction times behind Table 1 of the paper.
 */

#ifndef QPC_LINALG_WEYL_H
#define QPC_LINALG_WEYL_H

#include "linalg/matrix.h"

namespace qpc {

/**
 * Canonical (Weyl chamber) coordinates of a two-qubit unitary.
 *
 * Normalized such that pi/4 >= c1 >= c2 >= |c3| and c1, c2 >= 0.
 */
struct WeylCoords
{
    double c1;
    double c2;
    double c3;

    /**
     * Total interaction content |c1| + |c2| + |c3|; proportional to the
     * minimal two-qubit coupler-on time under an XX-type coupler.
     */
    double interaction() const;
};

/**
 * The "magic" (Bell) basis change matrix M. Local gates become real
 * orthogonal matrices in this basis and XX, YY, ZZ become diagonal.
 */
CMatrix magicBasis();

/**
 * Compute canonical coordinates of a 4x4 unitary, reduced into the
 * Weyl chamber (pi/4 >= c1 >= c2 >= |c3|, c1, c2 >= 0).
 *
 * @param u A 4x4 unitary (validated).
 */
WeylCoords weylCoordinates(const CMatrix& u);

/**
 * Build the canonical gate exp(i (c1 XX + c2 YY + c3 ZZ)).
 *
 * Used by tests to verify weylCoordinates round-trips.
 */
CMatrix canonicalGate(double c1, double c2, double c3);

/** True when two 2-qubit unitaries are locally equivalent within tol. */
bool locallyEquivalent(const CMatrix& u, const CMatrix& v,
                       double tol = 1e-6);

} // namespace qpc

#endif // QPC_LINALG_WEYL_H
