/**
 * @file
 * State-vector simulator.
 *
 * Simulates bound (parameter-free) circuits on up to ~12 qubits, which
 * covers every benchmark in the paper (H2O at 10 qubits is the
 * largest). The variational drivers use it as the "quantum hardware"
 * substitute: each VQE / QAOA iteration prepares the ansatz state here
 * and measures the cost Hamiltonian's expectation exactly.
 *
 * Bit convention: qubit 0 is the most significant bit of the basis
 * index, matching the tensor order of kron() and gateMatrix().
 */

#ifndef QPC_SIM_STATEVECTOR_H
#define QPC_SIM_STATEVECTOR_H

#include <vector>

#include "ir/circuit.h"
#include "linalg/matrix.h"

namespace qpc {

/** A normalized pure state over n qubits. */
class StateVector
{
  public:
    /** |0...0> over num_qubits qubits. */
    explicit StateVector(int num_qubits);

    /** Wrap an existing amplitude vector (validated power of two). */
    StateVector(int num_qubits, std::vector<Complex> amplitudes);

    int numQubits() const { return numQubits_; }
    int dim() const { return static_cast<int>(amps_.size()); }
    const std::vector<Complex>& amplitudes() const { return amps_; }

    /** Apply a single bound gate op. The angle must be constant. */
    void applyOp(const GateOp& op);

    /** Apply every op of a bound circuit in order. */
    void applyCircuit(const Circuit& circuit);

    /** Apply an arbitrary 2x2 matrix to one qubit. */
    void applyMatrix1(const CMatrix& u, int qubit);

    /** Apply an arbitrary 4x4 matrix to an ordered qubit pair. */
    void applyMatrix2(const CMatrix& u, int q0, int q1);

    /** |amp|^2 of one computational basis state. */
    double probability(int basis_index) const;

    /** Sum of |amp|^2 (should be 1; used by tests). */
    double normSquared() const;

    /** <this|other>. */
    Complex overlap(const StateVector& other) const;

  private:
    int bitOf(int index, int qubit) const
    {
        return (index >> (numQubits_ - 1 - qubit)) & 1;
    }

    int numQubits_;
    std::vector<Complex> amps_;
};

/**
 * Full unitary of a bound circuit, built column-by-column through the
 * state-vector simulator. Intended for blocks and test circuits
 * (dimension grows as 4^n in memory).
 */
CMatrix circuitUnitary(const Circuit& circuit);

} // namespace qpc

#endif // QPC_SIM_STATEVECTOR_H
