#include "sim/statevector.h"

#include <cmath>

#include "common/logging.h"
#include "linalg/kernels.h"

namespace qpc {

StateVector::StateVector(int num_qubits) : numQubits_(num_qubits)
{
    fatalIf(num_qubits <= 0 || num_qubits > 24,
            "state vector width out of range: ", num_qubits);
    amps_.assign(size_t{1} << num_qubits, Complex{0.0, 0.0});
    amps_[0] = 1.0;
}

StateVector::StateVector(int num_qubits, std::vector<Complex> amplitudes)
    : numQubits_(num_qubits), amps_(std::move(amplitudes))
{
    panicIf(amps_.size() != (size_t{1} << num_qubits),
            "amplitude vector size does not match qubit count");
}

void
StateVector::applyMatrix1(const CMatrix& u, int qubit)
{
    panicIf(u.rows() != 2 || u.cols() != 2, "applyMatrix1 needs 2x2");
    panicIf(qubit < 0 || qubit >= numQubits_, "qubit out of range");

    const size_t stride = size_t{1} << (numQubits_ - 1 - qubit);
    const Complex uflat[4] = {u(0, 0), u(0, 1), u(1, 0), u(1, 1)};
    kernels::applyGate1(amps_.data(), amps_.size(), stride, uflat);
}

void
StateVector::applyMatrix2(const CMatrix& u, int q0, int q1)
{
    panicIf(u.rows() != 4 || u.cols() != 4, "applyMatrix2 needs 4x4");
    panicIf(q0 == q1, "applyMatrix2 needs distinct qubits");
    panicIf(q0 < 0 || q0 >= numQubits_ || q1 < 0 || q1 >= numQubits_,
            "qubit out of range");

    const size_t s0 = size_t{1} << (numQubits_ - 1 - q0);
    const size_t s1 = size_t{1} << (numQubits_ - 1 - q1);
    Complex uflat[16];
    for (int r = 0; r < 4; ++r)
        for (int c = 0; c < 4; ++c)
            uflat[4 * r + c] = u(r, c);
    kernels::applyGate2(amps_.data(), amps_.size(), s0, s1, uflat);
}

void
StateVector::applyOp(const GateOp& op)
{
    panicIf(gateIsRotation(op.kind) && op.angle.isSymbolic(),
            "cannot simulate a symbolic rotation; bind() first");
    const double angle =
        gateIsRotation(op.kind) ? op.angle.bind({}) : 0.0;
    const CMatrix u = gateMatrix(op.kind, angle);
    if (op.arity() == 1)
        applyMatrix1(u, op.q0);
    else
        applyMatrix2(u, op.q0, op.q1);
}

void
StateVector::applyCircuit(const Circuit& circuit)
{
    panicIf(circuit.numQubits() != numQubits_,
            "circuit width ", circuit.numQubits(),
            " does not match state width ", numQubits_);
    for (const GateOp& op : circuit.ops())
        applyOp(op);
}

double
StateVector::probability(int basis_index) const
{
    panicIf(basis_index < 0 ||
                basis_index >= static_cast<int>(amps_.size()),
            "basis index out of range");
    return std::norm(amps_[basis_index]);
}

double
StateVector::normSquared() const
{
    double sum = 0.0;
    for (const Complex& a : amps_)
        sum += std::norm(a);
    return sum;
}

Complex
StateVector::overlap(const StateVector& other) const
{
    panicIf(other.dim() != dim(), "overlap dimension mismatch");
    return kernels::dotcInterleaved(amps_.data(), other.amps_.data(),
                                    amps_.size());
}

CMatrix
circuitUnitary(const Circuit& circuit)
{
    const int n = circuit.numQubits();
    fatalIf(n > 12, "circuitUnitary limited to 12 qubits, got ", n);
    const int dim = 1 << n;
    CMatrix u(dim, dim);
    for (int col = 0; col < dim; ++col) {
        std::vector<Complex> basis(dim, Complex{0.0, 0.0});
        basis[col] = 1.0;
        StateVector state(n, std::move(basis));
        state.applyCircuit(circuit);
        for (int row = 0; row < dim; ++row)
            u(row, col) = state.amplitudes()[row];
    }
    return u;
}

} // namespace qpc
