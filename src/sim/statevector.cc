#include "sim/statevector.h"

#include <cmath>

#include "common/logging.h"

namespace qpc {

StateVector::StateVector(int num_qubits) : numQubits_(num_qubits)
{
    fatalIf(num_qubits <= 0 || num_qubits > 24,
            "state vector width out of range: ", num_qubits);
    amps_.assign(size_t{1} << num_qubits, Complex{0.0, 0.0});
    amps_[0] = 1.0;
}

StateVector::StateVector(int num_qubits, std::vector<Complex> amplitudes)
    : numQubits_(num_qubits), amps_(std::move(amplitudes))
{
    panicIf(amps_.size() != (size_t{1} << num_qubits),
            "amplitude vector size does not match qubit count");
}

void
StateVector::applyMatrix1(const CMatrix& u, int qubit)
{
    panicIf(u.rows() != 2 || u.cols() != 2, "applyMatrix1 needs 2x2");
    panicIf(qubit < 0 || qubit >= numQubits_, "qubit out of range");

    const int stride = 1 << (numQubits_ - 1 - qubit);
    const int dim = static_cast<int>(amps_.size());
    for (int base = 0; base < dim; ++base) {
        if (base & stride)
            continue;
        const Complex a0 = amps_[base];
        const Complex a1 = amps_[base | stride];
        amps_[base] = u(0, 0) * a0 + u(0, 1) * a1;
        amps_[base | stride] = u(1, 0) * a0 + u(1, 1) * a1;
    }
}

void
StateVector::applyMatrix2(const CMatrix& u, int q0, int q1)
{
    panicIf(u.rows() != 4 || u.cols() != 4, "applyMatrix2 needs 4x4");
    panicIf(q0 == q1, "applyMatrix2 needs distinct qubits");
    panicIf(q0 < 0 || q0 >= numQubits_ || q1 < 0 || q1 >= numQubits_,
            "qubit out of range");

    const int s0 = 1 << (numQubits_ - 1 - q0);
    const int s1 = 1 << (numQubits_ - 1 - q1);
    const int dim = static_cast<int>(amps_.size());
    for (int base = 0; base < dim; ++base) {
        if ((base & s0) || (base & s1))
            continue;
        Complex in[4] = {amps_[base], amps_[base | s1], amps_[base | s0],
                         amps_[base | s0 | s1]};
        Complex out[4];
        for (int r = 0; r < 4; ++r) {
            out[r] = u(r, 0) * in[0] + u(r, 1) * in[1] + u(r, 2) * in[2] +
                     u(r, 3) * in[3];
        }
        amps_[base] = out[0];
        amps_[base | s1] = out[1];
        amps_[base | s0] = out[2];
        amps_[base | s0 | s1] = out[3];
    }
}

void
StateVector::applyOp(const GateOp& op)
{
    panicIf(gateIsRotation(op.kind) && op.angle.isSymbolic(),
            "cannot simulate a symbolic rotation; bind() first");
    const double angle =
        gateIsRotation(op.kind) ? op.angle.bind({}) : 0.0;
    const CMatrix u = gateMatrix(op.kind, angle);
    if (op.arity() == 1)
        applyMatrix1(u, op.q0);
    else
        applyMatrix2(u, op.q0, op.q1);
}

void
StateVector::applyCircuit(const Circuit& circuit)
{
    panicIf(circuit.numQubits() != numQubits_,
            "circuit width ", circuit.numQubits(),
            " does not match state width ", numQubits_);
    for (const GateOp& op : circuit.ops())
        applyOp(op);
}

double
StateVector::probability(int basis_index) const
{
    panicIf(basis_index < 0 ||
                basis_index >= static_cast<int>(amps_.size()),
            "basis index out of range");
    return std::norm(amps_[basis_index]);
}

double
StateVector::normSquared() const
{
    double sum = 0.0;
    for (const Complex& a : amps_)
        sum += std::norm(a);
    return sum;
}

Complex
StateVector::overlap(const StateVector& other) const
{
    panicIf(other.dim() != dim(), "overlap dimension mismatch");
    Complex acc = 0.0;
    for (size_t i = 0; i < amps_.size(); ++i)
        acc += std::conj(amps_[i]) * other.amps_[i];
    return acc;
}

CMatrix
circuitUnitary(const Circuit& circuit)
{
    const int n = circuit.numQubits();
    fatalIf(n > 12, "circuitUnitary limited to 12 qubits, got ", n);
    const int dim = 1 << n;
    CMatrix u(dim, dim);
    for (int col = 0; col < dim; ++col) {
        std::vector<Complex> basis(dim, Complex{0.0, 0.0});
        basis[col] = 1.0;
        StateVector state(n, std::move(basis));
        state.applyCircuit(circuit);
        for (int row = 0; row < dim; ++row)
            u(row, col) = state.amplitudes()[row];
    }
    return u;
}

} // namespace qpc
