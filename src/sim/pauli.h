/**
 * @file
 * Pauli-string Hamiltonians and expectation values.
 *
 * VQE cost functions are weighted sums of Pauli strings; QAOA MAXCUT
 * costs are sums of ZZ terms. Expectation values are evaluated exactly
 * against the state-vector simulator, standing in for the sampled
 * estimates a physical machine would return.
 */

#ifndef QPC_SIM_PAULI_H
#define QPC_SIM_PAULI_H

#include <string>
#include <vector>

#include "sim/statevector.h"

namespace qpc {

/** One weighted Pauli string, e.g. 0.5 * "XIZY". */
struct PauliTerm
{
    double coeff = 0.0;
    /** One char per qubit from {I, X, Y, Z}; index 0 = qubit 0. */
    std::string paulis;
};

/** A Hermitian operator as a sum of weighted Pauli strings. */
class PauliHamiltonian
{
  public:
    PauliHamiltonian() = default;
    explicit PauliHamiltonian(int num_qubits);

    int numQubits() const { return numQubits_; }
    const std::vector<PauliTerm>& terms() const { return terms_; }

    /** Append a validated term. */
    void add(double coeff, const std::string& paulis);

    /** <state| H |state>, exact. */
    double expectation(const StateVector& state) const;

    /** Dense matrix form (tests / exact diagonalization, small n). */
    CMatrix toMatrix() const;

    /** Smallest eigenvalue via exact diagonalization (small n). */
    double groundStateEnergy() const;

  private:
    int numQubits_ = 0;
    std::vector<PauliTerm> terms_;
};

/** Apply one Pauli string to a state (out-of-place). */
StateVector applyPauli(const PauliTerm& term, const StateVector& state);

} // namespace qpc

#endif // QPC_SIM_PAULI_H
