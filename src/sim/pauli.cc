#include "sim/pauli.h"

#include <cmath>

#include "common/logging.h"
#include "linalg/eig.h"
#include "linalg/su2.h"

namespace qpc {

PauliHamiltonian::PauliHamiltonian(int num_qubits)
    : numQubits_(num_qubits)
{
    fatalIf(num_qubits <= 0, "Hamiltonian needs at least one qubit");
}

void
PauliHamiltonian::add(double coeff, const std::string& paulis)
{
    fatalIf(static_cast<int>(paulis.size()) != numQubits_,
            "Pauli string '", paulis, "' does not match width ",
            numQubits_);
    for (char c : paulis)
        fatalIf(c != 'I' && c != 'X' && c != 'Y' && c != 'Z',
                "bad Pauli character '", c, "'");
    terms_.push_back({coeff, paulis});
}

StateVector
applyPauli(const PauliTerm& term, const StateVector& state)
{
    const int n = state.numQubits();
    const int dim = state.dim();
    std::vector<Complex> out(dim, Complex{0.0, 0.0});

    // A Pauli string is a signed permutation: basis |i> maps to
    // |i ^ flip_mask> with a phase from the Y and Z factors.
    int flip_mask = 0;
    for (int q = 0; q < n; ++q) {
        const char c = term.paulis[q];
        if (c == 'X' || c == 'Y')
            flip_mask |= 1 << (n - 1 - q);
    }

    const std::vector<Complex>& amps = state.amplitudes();
    for (int i = 0; i < dim; ++i) {
        Complex phase{1.0, 0.0};
        for (int q = 0; q < n; ++q) {
            const int bit = (i >> (n - 1 - q)) & 1;
            switch (term.paulis[q]) {
              case 'Y':
                // Y|0> = i|1>, Y|1> = -i|0>.
                phase *= bit ? Complex{0.0, -1.0} : Complex{0.0, 1.0};
                break;
              case 'Z':
                if (bit)
                    phase = -phase;
                break;
              default:
                break;
            }
        }
        out[i ^ flip_mask] += phase * amps[i];
    }
    return StateVector(n, std::move(out));
}

double
PauliHamiltonian::expectation(const StateVector& state) const
{
    panicIf(state.numQubits() != numQubits_,
            "state width does not match Hamiltonian width");
    double energy = 0.0;
    for (const PauliTerm& term : terms_) {
        const StateVector transformed = applyPauli(term, state);
        energy += term.coeff * state.overlap(transformed).real();
    }
    return energy;
}

CMatrix
PauliHamiltonian::toMatrix() const
{
    fatalIf(numQubits_ > 10, "toMatrix limited to 10 qubits");
    const int dim = 1 << numQubits_;
    CMatrix h(dim, dim);
    for (const PauliTerm& term : terms_) {
        std::vector<CMatrix> factors;
        factors.reserve(numQubits_);
        for (char c : term.paulis) {
            switch (c) {
              case 'I': factors.push_back(pauliI()); break;
              case 'X': factors.push_back(pauliX()); break;
              case 'Y': factors.push_back(pauliY()); break;
              case 'Z': factors.push_back(pauliZ()); break;
            }
        }
        h += kronAll(factors) * Complex{term.coeff, 0.0};
    }
    return h;
}

double
PauliHamiltonian::groundStateEnergy() const
{
    const EigResult eig = eigHermitian(toMatrix());
    return eig.values.front();
}

} // namespace qpc
