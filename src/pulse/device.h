/**
 * @file
 * The gmon device model (Appendix A of the paper).
 *
 * Each qubit j carries a charge-drive control with Hamiltonian
 * Omega_c,j(t) (a_j^dag + a_j) and a flux-drive control with
 * Hamiltonian Omega_f,j(t) a_j^dag a_j; each coupled pair (j, k)
 * carries g_jk(t) (a_j^dag + a_j)(a_k^dag + a_k). In the qubit
 * subspace these generate Rx-type, Rz-type, and XX-type evolution
 * respectively. Amplitude bounds follow the paper:
 * |Omega_c| <= 2 pi x 0.1 GHz, |Omega_f| <= 2 pi x 1.5 GHz,
 * |g| <= 2 pi x 0.05 GHz — note the 15x Z/X drive asymmetry that
 * GRAPE exploits.
 *
 * Setting levels = 3 models qutrit leakage: operators are truncated to
 * three levels instead of two and an anharmonicity term enters the
 * drift, as in the paper's "more realistic" configuration (Table 5).
 */

#ifndef QPC_PULSE_DEVICE_H
#define QPC_PULSE_DEVICE_H

#include <string>
#include <utility>
#include <vector>

#include "linalg/matrix.h"
#include "transpile/mapping.h"

namespace qpc {

/** One controllable drive line: a Hermitian generator and its bound. */
struct ControlChannel
{
    std::string name;   ///< e.g. "charge[2]", "coupler[0-1]".
    CMatrix op;         ///< Hermitian generator in the full space.
    double maxAmp;      ///< Amplitude bound in rad/ns.
};

/** Physical constants of the modelled gmon system, in rad/ns. */
struct GmonLimits
{
    double chargeMax = 2.0 * 3.14159265358979323846 * 0.1;
    double fluxMax = 2.0 * 3.14159265358979323846 * 1.5;
    double couplerMax = 2.0 * 3.14159265358979323846 * 0.05;
    /** Qutrit anharmonicity (only used when levels == 3). */
    double anharmonicity = -2.0 * 3.14159265358979323846 * 0.2;
};

/**
 * A concrete device: qubit count, level truncation, coupling graph,
 * and the derived control channels.
 */
class DeviceModel
{
  public:
    /**
     * Build a gmon device over an explicit topology.
     *
     * @param num_qubits Number of qubits (1..4 for GRAPE use).
     * @param couplings Coupled pairs (nearest neighbours on hardware).
     * @param levels 2 for the qubit approximation, 3 to model leakage.
     */
    DeviceModel(int num_qubits,
                std::vector<std::pair<int, int>> couplings,
                int levels = 2, GmonLimits limits = {});

    /** Line-coupled device, the common GRAPE block shape. */
    static DeviceModel gmonLine(int num_qubits, int levels = 2);

    /** Device with all-to-all couplers (small blocks / tests). */
    static DeviceModel gmonClique(int num_qubits, int levels = 2);

    int numQubits() const { return numQubits_; }
    int levels() const { return levels_; }
    const GmonLimits& limits() const { return limits_; }
    const std::vector<std::pair<int, int>>& couplings() const
    {
        return couplings_;
    }

    /** Hilbert-space dimension levels^numQubits. */
    int dim() const;

    /** All control channels: charge + flux per qubit, then couplers. */
    const std::vector<ControlChannel>& controls() const
    {
        return controls_;
    }
    int numControls() const { return static_cast<int>(controls_.size()); }

    /** Drift Hamiltonian (zero for qubits; anharmonicity for qutrits). */
    const CMatrix& drift() const { return drift_; }

    /**
     * Indices of the computational (all levels < 2) basis states; the
     * identity permutation when levels == 2.
     */
    std::vector<int> computationalIndices() const;

    /**
     * Embed a 2^n x 2^n unitary into the device space, acting as
     * identity on leakage levels. Exactly the input when levels == 2.
     */
    CMatrix embedUnitary(const CMatrix& u) const;

  private:
    void buildControls();

    int numQubits_;
    int levels_;
    GmonLimits limits_;
    std::vector<std::pair<int, int>> couplings_;
    std::vector<ControlChannel> controls_;
    CMatrix drift_;
};

} // namespace qpc

#endif // QPC_PULSE_DEVICE_H
