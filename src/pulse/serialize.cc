#include "pulse/serialize.h"

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <unistd.h>

namespace qpc {

namespace {

constexpr char kMagic[4] = {'Q', 'P', 'L', 'S'};

void
putU32(std::vector<std::uint8_t>& out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
putU64(std::vector<std::uint8_t>& out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
putF64(std::vector<std::uint8_t>& out, double v)
{
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v), "IEEE-754 double expected");
    std::memcpy(&bits, &v, sizeof(bits));
    putU64(out, bits);
}

std::uint32_t
getU32(const std::uint8_t* p)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return v;
}

std::uint64_t
getU64(const std::uint8_t* p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

double
getF64(const std::uint8_t* p)
{
    const std::uint64_t bits = getU64(p);
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

// Version 2 appends the calibration epoch (counter + model hash) to
// the version-1 header; everything before it is layout-identical so
// v1 records parse with the same offsets.
constexpr std::size_t kHeaderBytesV1 = 4 + 4 + 8 + 4 + 8;
constexpr std::size_t kHeaderBytes = kHeaderBytesV1 + 8 + 8;
static_assert(kHeaderBytes == kPulseRecordHeaderBytes,
              "PulseSchedule::serializedBytes() must track the record "
              "header size");

} // namespace

std::vector<std::uint8_t>
serializePulseSchedule(const PulseSchedule& schedule,
                       const CalibrationEpoch& epoch)
{
    const int channels = schedule.numChannels();
    const int samples = schedule.numSamples();

    std::vector<std::uint8_t> out;
    out.reserve(kHeaderBytes +
                static_cast<std::size_t>(channels) * samples * 8);
    for (char m : kMagic)
        out.push_back(static_cast<std::uint8_t>(m));
    putU32(out, kPulseFormatVersion);
    putF64(out, schedule.dt());
    putU32(out, static_cast<std::uint32_t>(channels));
    putU64(out, static_cast<std::uint64_t>(samples));
    putU64(out, epoch.counter);
    putU64(out, epoch.modelHash);
    for (int c = 0; c < channels; ++c)
        for (double v : schedule.channel(c))
            putF64(out, v);
    return out;
}

std::optional<PulseSchedule>
deserializePulseSchedule(const std::uint8_t* data, std::size_t size,
                         CalibrationEpoch* epoch)
{
    if (data == nullptr || size < kHeaderBytesV1)
        return std::nullopt;
    if (std::memcmp(data, kMagic, 4) != 0)
        return std::nullopt;
    const std::uint32_t version = getU32(data + 4);
    if (version != 1 && version != kPulseFormatVersion)
        return std::nullopt;
    const std::size_t header =
        version == 1 ? kHeaderBytesV1 : kHeaderBytes;
    if (size < header)
        return std::nullopt;
    const double dt = getF64(data + 8);
    const std::uint64_t channels = getU32(data + 16);
    const std::uint64_t samples = getU64(data + 20);
    CalibrationEpoch meta;
    if (version != 1) {
        meta.counter = getU64(data + 28);
        meta.modelHash = getU64(data + 36);
    }

    // Guard the multiplication, and both int casts below: a record
    // whose counts overflow int must read as malformed, not abort in
    // the PulseSchedule constructor.
    if (channels > (1u << 20) ||
        samples > static_cast<std::uint64_t>(INT32_MAX))
        return std::nullopt;
    const std::uint64_t payload = channels * samples * 8;
    if (size != header + payload)
        return std::nullopt;

    if (channels == 0) {
        // The empty schedule round-trips to the default object.
        if (dt != 0.0)
            return std::nullopt;
        if (epoch != nullptr)
            *epoch = meta;
        return PulseSchedule();
    }
    if (!(dt > 0.0))
        return std::nullopt;

    PulseSchedule schedule(static_cast<int>(channels),
                           static_cast<int>(samples), dt);
    const std::uint8_t* p = data + header;
    for (std::uint64_t c = 0; c < channels; ++c) {
        std::vector<double>& ch = schedule.channel(static_cast<int>(c));
        for (std::uint64_t s = 0; s < samples; ++s, p += 8)
            ch[s] = getF64(p);
    }
    if (epoch != nullptr)
        *epoch = meta;
    return schedule;
}

std::optional<PulseSchedule>
deserializePulseSchedule(const std::vector<std::uint8_t>& bytes,
                         CalibrationEpoch* epoch)
{
    return deserializePulseSchedule(bytes.data(), bytes.size(), epoch);
}

bool
savePulseSchedule(const std::string& path, const PulseSchedule& schedule,
                  const CalibrationEpoch& epoch)
{
    const std::vector<std::uint8_t> bytes =
        serializePulseSchedule(schedule, epoch);
    // Unique temp name per writer: concurrent savers of the same path
    // (two processes sharing a cache directory, or two threads racing
    // past the single-flight map) must never interleave into one temp
    // file, or the atomic-rename guarantee publishes garbage.
    static std::atomic<std::uint64_t> save_counter{0};
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid()) + "." +
        std::to_string(save_counter.fetch_add(1));
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) {
            // The open may still have created an empty file (e.g. a
            // permission change between create and write); removing a
            // nonexistent path is harmless.
            std::remove(tmp.c_str());
            return false;
        }
        out.write(reinterpret_cast<const char*>(bytes.data()),
                  static_cast<std::streamsize>(bytes.size()));
        out.flush();
        if (!out) {
            // A failed write (disk full, quota, rlimit) must not leak
            // the unique temp file: nothing else ever renames or
            // removes it, so an unremoved temp accumulates forever in
            // the cache directory.
            out.close();
            std::remove(tmp.c_str());
            return false;
        }
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

std::optional<PulseSchedule>
loadPulseSchedule(const std::string& path, CalibrationEpoch* epoch)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return std::nullopt;
    std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    if (!in.good() && !in.eof())
        return std::nullopt;
    return deserializePulseSchedule(bytes, epoch);
}

std::optional<CalibrationEpoch>
peekPulseRecordEpoch(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return std::nullopt;
    std::uint8_t header[kHeaderBytes];
    in.read(reinterpret_cast<char*>(header), sizeof(header));
    const auto got = static_cast<std::size_t>(in.gcount());
    if (got < kHeaderBytesV1)
        return std::nullopt;
    if (std::memcmp(header, kMagic, 4) != 0)
        return std::nullopt;
    const std::uint32_t version = getU32(header + 4);
    if (version == 1)
        return CalibrationEpoch{};
    if (version != kPulseFormatVersion || got < kHeaderBytes)
        return std::nullopt;
    CalibrationEpoch epoch;
    epoch.counter = getU64(header + 28);
    epoch.modelHash = getU64(header + 36);
    return epoch;
}

} // namespace qpc
