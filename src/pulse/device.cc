#include "pulse/device.h"

#include <cmath>

#include "common/logging.h"

namespace qpc {

namespace {

/** Truncated annihilation operator on `levels` levels. */
CMatrix
lowering(int levels)
{
    CMatrix a(levels, levels);
    for (int i = 1; i < levels; ++i)
        a(i - 1, i) = std::sqrt(static_cast<double>(i));
    return a;
}

/** Embed a single-site operator at site `qubit` of an n-site chain. */
CMatrix
embedSite(const CMatrix& op, int qubit, int num_qubits, int levels)
{
    CMatrix out = CMatrix::identity(1);
    for (int site = 0; site < num_qubits; ++site) {
        if (site == qubit)
            out = kron(out, op);
        else
            out = kron(out, CMatrix::identity(levels));
    }
    return out;
}

} // namespace

DeviceModel::DeviceModel(int num_qubits,
                         std::vector<std::pair<int, int>> couplings,
                         int levels, GmonLimits limits)
    : numQubits_(num_qubits), levels_(levels), limits_(limits),
      couplings_(std::move(couplings))
{
    fatalIf(num_qubits <= 0 || num_qubits > 6,
            "device width out of supported range: ", num_qubits);
    fatalIf(levels != 2 && levels != 3,
            "device levels must be 2 or 3, got ", levels);
    for (const auto& [a, b] : couplings_)
        fatalIf(a < 0 || a >= num_qubits || b < 0 || b >= num_qubits ||
                    a == b,
                "bad coupling (", a, ", ", b, ")");
    buildControls();
}

DeviceModel
DeviceModel::gmonLine(int num_qubits, int levels)
{
    std::vector<std::pair<int, int>> couplings;
    for (int i = 0; i + 1 < num_qubits; ++i)
        couplings.emplace_back(i, i + 1);
    return DeviceModel(num_qubits, std::move(couplings), levels);
}

DeviceModel
DeviceModel::gmonClique(int num_qubits, int levels)
{
    std::vector<std::pair<int, int>> couplings;
    for (int a = 0; a < num_qubits; ++a)
        for (int b = a + 1; b < num_qubits; ++b)
            couplings.emplace_back(a, b);
    return DeviceModel(num_qubits, std::move(couplings), levels);
}

int
DeviceModel::dim() const
{
    int d = 1;
    for (int i = 0; i < numQubits_; ++i)
        d *= levels_;
    return d;
}

void
DeviceModel::buildControls()
{
    const CMatrix a = lowering(levels_);
    const CMatrix x_op = a + a.dagger();           // a^dag + a
    const CMatrix n_op = a.dagger() * a;           // a^dag a

    // Charge then flux per qubit, in qubit order.
    for (int q = 0; q < numQubits_; ++q) {
        controls_.push_back({"charge[" + std::to_string(q) + "]",
                             embedSite(x_op, q, numQubits_, levels_),
                             limits_.chargeMax});
        controls_.push_back({"flux[" + std::to_string(q) + "]",
                             embedSite(n_op, q, numQubits_, levels_),
                             limits_.fluxMax});
    }
    // One coupler channel per coupled pair.
    for (const auto& [j, k] : couplings_) {
        const CMatrix op = embedSite(x_op, j, numQubits_, levels_) *
                           embedSite(x_op, k, numQubits_, levels_);
        controls_.push_back({"coupler[" + std::to_string(j) + "-" +
                                 std::to_string(k) + "]",
                             op, limits_.couplerMax});
    }

    // Drift: zero in the qubit approximation; anharmonicity on the
    // |2> level when modelling qutrit leakage.
    drift_ = CMatrix(dim(), dim());
    if (levels_ == 3) {
        CMatrix anh(3, 3);
        anh(2, 2) = limits_.anharmonicity;
        for (int q = 0; q < numQubits_; ++q)
            drift_ += embedSite(anh, q, numQubits_, levels_);
    }
}

std::vector<int>
DeviceModel::computationalIndices() const
{
    std::vector<int> indices;
    const int d = dim();
    for (int i = 0; i < d; ++i) {
        int rest = i;
        bool computational = true;
        for (int q = 0; q < numQubits_; ++q) {
            if (rest % levels_ >= 2)
                computational = false;
            rest /= levels_;
        }
        if (computational)
            indices.push_back(i);
    }
    panicIf(static_cast<int>(indices.size()) != (1 << numQubits_),
            "computational subspace has wrong dimension");
    return indices;
}

CMatrix
DeviceModel::embedUnitary(const CMatrix& u) const
{
    const int qdim = 1 << numQubits_;
    panicIf(u.rows() != qdim || u.cols() != qdim,
            "embedUnitary expects a ", qdim, "-dimensional unitary");
    if (levels_ == 2)
        return u;

    // The computational index order produced by computationalIndices()
    // matches the binary order of the qubit-space unitary because both
    // enumerate qubit 0 as the most significant digit. Leakage levels
    // keep the identity action.
    CMatrix out = CMatrix::identity(dim());
    const std::vector<int> comp = computationalIndices();
    for (int r = 0; r < qdim; ++r)
        for (int c = 0; c < qdim; ++c)
            out(comp[r], comp[c]) = u(r, c);
    return out;
}

} // namespace qpc
