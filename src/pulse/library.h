/**
 * @file
 * Analytic gate-to-pulse library.
 *
 * Gate-based compilation maps each gate to a canned pulse sequence and
 * concatenates (Section 2.3). This library constructs those canned
 * pulses from the gmon controls in closed form: square drives at the
 * amplitude bounds, with durations set by the rotation angles. Tests
 * verify that evolving each pulse reproduces the gate unitary (exactly
 * for single-qubit gates, up to local equivalence and global phase for
 * entangling pulses built from the XX coupler).
 *
 * These analytic pulses are correct but not time-optimal: they realize
 * the gates one axis at a time, while GRAPE overlaps drives. The gap
 * between this library's durations and the optimized Table 1 values is
 * exactly the headroom that pulse-level compilation exploits.
 */

#ifndef QPC_PULSE_LIBRARY_H
#define QPC_PULSE_LIBRARY_H

#include "ir/circuit.h"
#include "pulse/device.h"
#include "pulse/schedule.h"

namespace qpc {

/** Builder of canned gate pulses for one device. */
class GatePulseLibrary
{
  public:
    /**
     * @param device The device the pulses address.
     * @param dt Sample period in ns (0.05 standard, 1.0 realistic).
     */
    GatePulseLibrary(const DeviceModel& device, double dt = 0.05);

    double dt() const { return dt_; }

    /** Rz(theta) on one qubit via the flux drive. */
    PulseSchedule rz(int qubit, double theta) const;

    /** Rx(theta) on one qubit via the charge drive. */
    PulseSchedule rx(int qubit, double theta) const;

    /** Hadamard as the Rz Rx Rz sequence. */
    PulseSchedule h(int qubit) const;

    /**
     * Coupler evolution exp(-i c XX) between a coupled pair; c may be
     * negative. The canonical two-qubit resource: c = -pi/4 is in the
     * CX class.
     */
    PulseSchedule xx(int qubit_a, int qubit_b, double c) const;

    /** Exact CX pulse: local dressing around one XX(pi/4) window. */
    PulseSchedule cx(int control, int target) const;

    /** Exact CZ pulse: Rz dressing around one XX(pi/4) window. */
    PulseSchedule cz(int qubit_a, int qubit_b) const;

    /** SWAP as three alternating CX pulses. */
    PulseSchedule swapGate(int qubit_a, int qubit_b) const;

    /**
     * Gate-based compilation of a bound circuit: concatenate canned
     * pulses op by op (serial; the duration model in transpile/
     * accounts for parallel scheduling separately).
     */
    PulseSchedule compileCircuit(const Circuit& circuit) const;

  private:
    PulseSchedule empty(int num_samples) const;
    int couplerChannel(int qubit_a, int qubit_b) const;

    const DeviceModel& device_;
    double dt_;
};

} // namespace qpc

#endif // QPC_PULSE_LIBRARY_H
