/**
 * @file
 * Piecewise-constant unitary evolution of control pulses.
 *
 * The forward pass of GRAPE and the verification path of the pulse
 * library both integrate the Schrodinger equation with the controls
 * held constant over each sample: U = prod_k exp(-i dt H(u_k)).
 */

#ifndef QPC_PULSE_EVOLVE_H
#define QPC_PULSE_EVOLVE_H

#include "pulse/device.h"
#include "pulse/schedule.h"

namespace qpc {

/**
 * Assemble the control Hamiltonian for one time slice:
 * drift + sum_c amplitudes[c] * control_c.
 */
CMatrix sliceHamiltonian(const DeviceModel& device,
                         const std::vector<double>& amplitudes);

/**
 * exp(-i dt H) via scaled Taylor expansion, specialized for the small
 * norms of one GRAPE time slice (dt * ||H|| of order 1).
 */
CMatrix slicePropagator(const CMatrix& h, double dt);

/** Total unitary realized by a schedule on a device. */
CMatrix evolveUnitary(const DeviceModel& device,
                      const PulseSchedule& schedule);

/**
 * Phase-invariant trace fidelity |tr(U_target^dag U)|^2 / d^2 between
 * two equal-dimension unitaries.
 */
double traceFidelity(const CMatrix& target, const CMatrix& realized);

/**
 * Fidelity of a realized device unitary against a qubit-space target,
 * projected onto the computational subspace (used when the device
 * models qutrit leakage: amplitude that leaks out of the subspace
 * reduces fidelity).
 */
double subspaceFidelity(const DeviceModel& device, const CMatrix& target,
                        const CMatrix& realized);

} // namespace qpc

#endif // QPC_PULSE_EVOLVE_H
