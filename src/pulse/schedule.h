/**
 * @file
 * Time-discretized control pulse schedules.
 *
 * A PulseSchedule holds one sample array per control channel at a
 * fixed sample period dt. The paper discretizes at 0.05 ns (20 GSa/s)
 * in the standard configuration and 1 ns (1 GSa/s) in the realistic
 * configuration. Concatenation of schedules is the runtime operation
 * behind gate-based and strict partial compilation.
 */

#ifndef QPC_PULSE_SCHEDULE_H
#define QPC_PULSE_SCHEDULE_H

#include <cstddef>
#include <vector>

namespace qpc {

/**
 * Header bytes of the on-disk "QPLS" record (magic + version + dt +
 * channel count + sample count + calibration epoch counter + device
 * model hash); pulse/serialize.cc asserts this stays in sync with the
 * actual format.
 */
inline constexpr std::size_t kPulseRecordHeaderBytes =
    4 + 4 + 8 + 4 + 8 + 8 + 8;

/** Sampled control amplitudes for every channel of a device. */
class PulseSchedule
{
  public:
    PulseSchedule() = default;

    /** All-zero schedule: num_channels x num_samples at period dt. */
    PulseSchedule(int num_channels, int num_samples, double dt);

    int numChannels() const
    {
        return static_cast<int>(channels_.size());
    }

    /**
     * Samples per channel. Every channel carries the same count (class
     * invariant, enforced here rather than trusted from the first
     * channel): panics if a caller desynchronized the channels through
     * the mutable channel() reference.
     */
    int numSamples() const;

    double dt() const { return dt_; }

    /** Total pulse duration in nanoseconds. */
    double durationNs() const { return dt_ * numSamples(); }

    /**
     * Size of this schedule's serialized record in bytes (header plus
     * 8 bytes per sample per channel) — the footprint the byte-budgeted
     * pulse cache accounts against, identical in memory-tier
     * bookkeeping and on disk because the format is bit-exact.
     */
    std::size_t serializedBytes() const;

    /** Mutable sample array of one channel. */
    std::vector<double>& channel(int index);
    const std::vector<double>& channel(int index) const;

    /**
     * Replace one channel's samples. The replacement must preserve the
     * shared sample count (panics otherwise); resizing a schedule means
     * rebuilding it.
     */
    void setChannel(int index, std::vector<double> samples);

    /** Append another schedule in time (same channels and dt). */
    void append(const PulseSchedule& other);

    /** Largest |sample| across all channels. */
    double maxAbsSample() const;

    /**
     * Mean squared second difference across samples, a smoothness
     * figure used by pulse-regularization tests.
     */
    double roughness() const;

  private:
    double dt_ = 0.0;
    std::vector<std::vector<double>> channels_;
};

} // namespace qpc

#endif // QPC_PULSE_SCHEDULE_H
