#include "pulse/library.h"

#include <cmath>

#include "common/logging.h"

namespace qpc {

namespace {

constexpr double kPi = 3.14159265358979323846;

} // namespace

GatePulseLibrary::GatePulseLibrary(const DeviceModel& device, double dt)
    : device_(device), dt_(dt)
{
    fatalIf(dt <= 0.0, "sample period must be positive");
}

PulseSchedule
GatePulseLibrary::empty(int num_samples) const
{
    return PulseSchedule(device_.numControls(), num_samples, dt_);
}

int
GatePulseLibrary::couplerChannel(int qubit_a, int qubit_b) const
{
    const auto& pairs = device_.couplings();
    for (size_t i = 0; i < pairs.size(); ++i) {
        const auto& [a, b] = pairs[i];
        if ((a == qubit_a && b == qubit_b) ||
            (a == qubit_b && b == qubit_a))
            return 2 * device_.numQubits() + static_cast<int>(i);
    }
    fatal("no coupler between q", qubit_a, " and q", qubit_b);
}

PulseSchedule
GatePulseLibrary::rz(int qubit, double theta) const
{
    // Flux drive generates n = (I - Z)/2: exp(-i w t n) = Rz(-w t) up
    // to global phase, so drive with sign -sign(theta).
    const double w_max = device_.limits().fluxMax;
    const double total = std::abs(theta) / w_max;
    const int samples = std::max(1, static_cast<int>(
                                        std::ceil(total / dt_)));
    // Stretch amplitude so the discretized area matches exactly.
    const double amp = -theta / (samples * dt_);
    PulseSchedule schedule = empty(samples);
    auto& ch = schedule.channel(2 * qubit + 1);
    for (double& v : ch)
        v = amp;
    return schedule;
}

PulseSchedule
GatePulseLibrary::rx(int qubit, double theta) const
{
    // Charge drive generates X: exp(-i w t X) = Rx(2 w t).
    const double w_max = device_.limits().chargeMax;
    const double total = std::abs(theta) / (2.0 * w_max);
    const int samples = std::max(1, static_cast<int>(
                                        std::ceil(total / dt_)));
    const double amp = theta / (2.0 * samples * dt_);
    PulseSchedule schedule = empty(samples);
    auto& ch = schedule.channel(2 * qubit);
    for (double& v : ch)
        v = amp;
    return schedule;
}

PulseSchedule
GatePulseLibrary::h(int qubit) const
{
    // H = e^{i pi/2} Rz(pi/2) Rx(pi/2) Rz(pi/2); rightmost acts first.
    PulseSchedule schedule = rz(qubit, kPi / 2);
    schedule.append(rx(qubit, kPi / 2));
    schedule.append(rz(qubit, kPi / 2));
    return schedule;
}

PulseSchedule
GatePulseLibrary::xx(int qubit_a, int qubit_b, double c) const
{
    // Coupler generates XX: exp(-i g t XX); need g t = c.
    const double g_max = device_.limits().couplerMax;
    const double total = std::abs(c) / g_max;
    const int samples = std::max(1, static_cast<int>(
                                        std::ceil(total / dt_)));
    const double amp = c / (samples * dt_);
    PulseSchedule schedule = empty(samples);
    auto& ch = schedule.channel(couplerChannel(qubit_a, qubit_b));
    for (double& v : ch)
        v = amp;
    return schedule;
}

PulseSchedule
GatePulseLibrary::cz(int qubit_a, int qubit_b) const
{
    // CZ = e^{i pi/4} exp(i pi/4 ZZ) (Rz(pi/2) x Rz(pi/2)), and
    // exp(i pi/4 ZZ) = (H x H) exp(i pi/4 XX) (H x H). Time order is
    // right to left.
    PulseSchedule schedule = rz(qubit_a, kPi / 2);
    {
        PulseSchedule other = rz(qubit_b, kPi / 2);
        schedule.append(other);
    }
    schedule.append(h(qubit_a));
    schedule.append(h(qubit_b));
    schedule.append(xx(qubit_a, qubit_b, -kPi / 4));
    schedule.append(h(qubit_a));
    schedule.append(h(qubit_b));
    return schedule;
}

PulseSchedule
GatePulseLibrary::cx(int control, int target) const
{
    // CX = (I x H) CZ (I x H).
    PulseSchedule schedule = h(target);
    schedule.append(cz(control, target));
    schedule.append(h(target));
    return schedule;
}

PulseSchedule
GatePulseLibrary::swapGate(int qubit_a, int qubit_b) const
{
    PulseSchedule schedule = cx(qubit_a, qubit_b);
    schedule.append(cx(qubit_b, qubit_a));
    schedule.append(cx(qubit_a, qubit_b));
    return schedule;
}

PulseSchedule
GatePulseLibrary::compileCircuit(const Circuit& circuit) const
{
    fatalIf(circuit.numQubits() > device_.numQubits(),
            "circuit is wider than the device");
    PulseSchedule schedule = empty(0);
    for (const GateOp& op : circuit.ops()) {
        panicIf(gateIsRotation(op.kind) && op.angle.isSymbolic(),
                "bind the circuit before pulse compilation");
        const double angle =
            gateIsRotation(op.kind) ? op.angle.bind({}) : 0.0;
        switch (op.kind) {
          case GateKind::I:
            break;
          case GateKind::X:
            schedule.append(rx(op.q0, kPi));
            break;
          case GateKind::Y:
            // Y = Rz(-pi/2) Rx(pi) Rz(pi/2) up to phase.
            schedule.append(rz(op.q0, kPi / 2));
            schedule.append(rx(op.q0, kPi));
            schedule.append(rz(op.q0, -kPi / 2));
            break;
          case GateKind::Z:
            schedule.append(rz(op.q0, kPi));
            break;
          case GateKind::S:
            schedule.append(rz(op.q0, kPi / 2));
            break;
          case GateKind::Sdg:
            schedule.append(rz(op.q0, -kPi / 2));
            break;
          case GateKind::T:
            schedule.append(rz(op.q0, kPi / 4));
            break;
          case GateKind::Tdg:
            schedule.append(rz(op.q0, -kPi / 4));
            break;
          case GateKind::H:
            schedule.append(h(op.q0));
            break;
          case GateKind::Rx:
            schedule.append(rx(op.q0, angle));
            break;
          case GateKind::Ry:
            // Ry = Rz(pi/2) Rx(theta) Rz(-pi/2).
            schedule.append(rz(op.q0, -kPi / 2));
            schedule.append(rx(op.q0, angle));
            schedule.append(rz(op.q0, kPi / 2));
            break;
          case GateKind::Rz:
            schedule.append(rz(op.q0, angle));
            break;
          case GateKind::CX:
            schedule.append(cx(op.q0, op.q1));
            break;
          case GateKind::CZ:
            schedule.append(cz(op.q0, op.q1));
            break;
          case GateKind::SWAP:
            schedule.append(swapGate(op.q0, op.q1));
            break;
          case GateKind::ISwap:
            // iSWAP class: XX then YY quarter turns.
            schedule.append(xx(op.q0, op.q1, kPi / 4));
            schedule.append(rz(op.q0, kPi / 2));
            schedule.append(rz(op.q1, kPi / 2));
            schedule.append(xx(op.q0, op.q1, kPi / 4));
            schedule.append(rz(op.q0, -kPi / 2));
            schedule.append(rz(op.q1, -kPi / 2));
            break;
        }
    }
    return schedule;
}

} // namespace qpc
