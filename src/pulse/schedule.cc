#include "pulse/schedule.h"

#include <cmath>

#include "common/logging.h"

namespace qpc {

PulseSchedule::PulseSchedule(int num_channels, int num_samples, double dt)
    : dt_(dt)
{
    fatalIf(num_channels <= 0, "schedule needs at least one channel");
    fatalIf(num_samples < 0, "negative sample count");
    fatalIf(dt <= 0.0, "sample period must be positive");
    channels_.assign(num_channels, std::vector<double>(num_samples, 0.0));
}

int
PulseSchedule::numSamples() const
{
    if (channels_.empty())
        return 0;
    const size_t count = channels_.front().size();
    for (const auto& ch : channels_)
        panicIf(ch.size() != count,
                "channel sample counts diverged: expected ", count,
                ", found a channel with ", ch.size());
    return static_cast<int>(count);
}

std::size_t
PulseSchedule::serializedBytes() const
{
    return kPulseRecordHeaderBytes +
           static_cast<std::size_t>(numChannels()) *
               static_cast<std::size_t>(numSamples()) * sizeof(double);
}

std::vector<double>&
PulseSchedule::channel(int index)
{
    panicIf(index < 0 || index >= numChannels(), "channel out of range");
    return channels_[index];
}

const std::vector<double>&
PulseSchedule::channel(int index) const
{
    panicIf(index < 0 || index >= numChannels(), "channel out of range");
    return channels_[index];
}

void
PulseSchedule::setChannel(int index, std::vector<double> samples)
{
    panicIf(index < 0 || index >= numChannels(), "channel out of range");
    panicIf(static_cast<int>(samples.size()) != numSamples(),
            "setChannel must preserve the shared sample count (",
            numSamples(), "), got ", samples.size());
    channels_[index] = std::move(samples);
}

void
PulseSchedule::append(const PulseSchedule& other)
{
    panicIf(other.numChannels() != numChannels(),
            "cannot append schedule with ", other.numChannels(),
            " channels to one with ", numChannels());
    panicIf(std::abs(other.dt_ - dt_) > 1e-12,
            "cannot append schedules with different sample periods");
    for (int c = 0; c < numChannels(); ++c)
        channels_[c].insert(channels_[c].end(), other.channels_[c].begin(),
                            other.channels_[c].end());
}

double
PulseSchedule::maxAbsSample() const
{
    double worst = 0.0;
    for (const auto& ch : channels_)
        for (double v : ch)
            worst = std::max(worst, std::abs(v));
    return worst;
}

double
PulseSchedule::roughness() const
{
    double sum = 0.0;
    int count = 0;
    for (const auto& ch : channels_) {
        for (size_t i = 2; i < ch.size(); ++i) {
            const double second = ch[i] - 2.0 * ch[i - 1] + ch[i - 2];
            sum += second * second;
            ++count;
        }
    }
    return count ? sum / count : 0.0;
}

} // namespace qpc
