#include "pulse/evolve.h"

#include <cmath>

#include "common/logging.h"
#include "linalg/kernels.h"

namespace qpc {

CMatrix
sliceHamiltonian(const DeviceModel& device,
                 const std::vector<double>& amplitudes)
{
    panicIf(static_cast<int>(amplitudes.size()) != device.numControls(),
            "expected ", device.numControls(), " amplitudes, got ",
            amplitudes.size());
    CMatrix h = device.drift();
    for (int c = 0; c < device.numControls(); ++c) {
        if (amplitudes[c] == 0.0)
            continue;
        h += device.controls()[c].op * Complex{amplitudes[c], 0.0};
    }
    return h;
}

CMatrix
slicePropagator(const CMatrix& h, double dt)
{
    const int n = h.rows();

    // Scale so the Taylor series converges fast, then square back.
    double norm = h.frobeniusNorm() * dt;
    int squarings = 0;
    double scale = 1.0;
    while (norm * scale > 0.25) {
        scale *= 0.5;
        ++squarings;
    }

    CMatrix x = h * Complex{0.0, -dt * scale};
    CMatrix term = CMatrix::identity(n);
    CMatrix sum = CMatrix::identity(n);
    const int taylor_order = 10;
    for (int k = 1; k <= taylor_order; ++k) {
        term = term * x;
        term *= Complex{1.0 / k, 0.0};
        sum += term;
    }
    for (int i = 0; i < squarings; ++i)
        sum = sum * sum;
    return sum;
}

CMatrix
evolveUnitary(const DeviceModel& device, const PulseSchedule& schedule)
{
    panicIf(schedule.numChannels() != device.numControls(),
            "schedule has ", schedule.numChannels(),
            " channels; device exposes ", device.numControls());

    CMatrix u = CMatrix::identity(device.dim());
    std::vector<double> amps(device.numControls(), 0.0);
    for (int k = 0; k < schedule.numSamples(); ++k) {
        for (int c = 0; c < device.numControls(); ++c)
            amps[c] = schedule.channel(c)[k];
        const CMatrix h = sliceHamiltonian(device, amps);
        u = slicePropagator(h, schedule.dt()) * u;
    }
    return u;
}

double
traceFidelity(const CMatrix& target, const CMatrix& realized)
{
    panicIf(target.rows() != realized.rows() ||
                target.cols() != realized.cols(),
            "traceFidelity dimension mismatch");
    // tr(T^dag R) is the elementwise conjugated dot of T with R.
    const Complex overlap = kernels::dotcInterleaved(
        target.data(), realized.data(),
        static_cast<size_t>(target.rows()) *
            static_cast<size_t>(target.cols()));
    const double d = static_cast<double>(target.rows());
    return std::norm(overlap) / (d * d);
}

double
subspaceFidelity(const DeviceModel& device, const CMatrix& target,
                 const CMatrix& realized)
{
    const std::vector<int> comp = device.computationalIndices();
    const int qdim = static_cast<int>(comp.size());
    panicIf(target.rows() != qdim,
            "subspaceFidelity target must live in the qubit space");

    // Restrict the realized unitary to the computational block.
    CMatrix block(qdim, qdim);
    for (int r = 0; r < qdim; ++r)
        for (int c = 0; c < qdim; ++c)
            block(r, c) = realized(comp[r], comp[c]);

    const Complex overlap = kernels::dotcInterleaved(
        target.data(), block.data(),
        static_cast<size_t>(qdim) * static_cast<size_t>(qdim));
    const double d = static_cast<double>(qdim);
    return std::norm(overlap) / (d * d);
}

} // namespace qpc
