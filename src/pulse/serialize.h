/**
 * @file
 * Binary (de)serialization of PulseSchedule.
 *
 * Format "QPLS" version 1, little-endian, bit-exact doubles:
 *
 *   bytes 0..3   magic "QPLS"
 *   u32          format version (currently 1)
 *   u64          IEEE-754 bits of dt
 *   u32          number of channels
 *   u64          samples per channel
 *   f64[]        channel samples, channel-major, raw IEEE-754 bits
 *
 * Doubles travel as their raw bit patterns, so a round trip is exact
 * to the last ulp (including signed zeros and NaN payloads) — the
 * property the content-addressed pulse cache relies on. Deserialization
 * never trusts its input: malformed bytes yield nullopt, not a crash,
 * so a corrupt cache file degrades to a cache miss.
 */

#ifndef QPC_PULSE_SERIALIZE_H
#define QPC_PULSE_SERIALIZE_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "pulse/schedule.h"

namespace qpc {

/** Current on-disk format version written by serializePulseSchedule. */
inline constexpr std::uint32_t kPulseFormatVersion = 1;

/** Encode a schedule into the versioned binary format. */
std::vector<std::uint8_t>
serializePulseSchedule(const PulseSchedule& schedule);

/**
 * Decode a schedule; nullopt when the bytes are not a well-formed
 * version-1 record (bad magic, unsupported version, size mismatch,
 * non-positive dt with channels present).
 */
std::optional<PulseSchedule>
deserializePulseSchedule(const std::uint8_t* data, std::size_t size);

/** Convenience overload over a byte vector. */
std::optional<PulseSchedule>
deserializePulseSchedule(const std::vector<std::uint8_t>& bytes);

/**
 * Write a schedule to a file (atomically: temp file + rename, so a
 * concurrent reader never observes a half-written record). Returns
 * false on I/O failure.
 */
bool savePulseSchedule(const std::string& path,
                       const PulseSchedule& schedule);

/** Read a schedule from a file; nullopt on I/O error or bad bytes. */
std::optional<PulseSchedule> loadPulseSchedule(const std::string& path);

} // namespace qpc

#endif // QPC_PULSE_SERIALIZE_H
