/**
 * @file
 * Binary (de)serialization of PulseSchedule.
 *
 * Format "QPLS" version 2, little-endian, bit-exact doubles:
 *
 *   bytes 0..3   magic "QPLS"
 *   u32          format version (currently 2)
 *   u64          IEEE-754 bits of dt
 *   u32          number of channels
 *   u64          samples per channel
 *   u64          calibration epoch counter        (v2)
 *   u64          device model hash                (v2)
 *   f64[]        channel samples, channel-major, raw IEEE-754 bits
 *
 * Version 1 records (no epoch fields, 28-byte header) still load and
 * report the zero epoch {0, 0}, so a pre-epoch disk tier stays
 * readable. Writers always emit version 2.
 *
 * Doubles travel as their raw bit patterns, so a round trip is exact
 * to the last ulp (including signed zeros and NaN payloads) — the
 * property the content-addressed pulse cache relies on. Deserialization
 * never trusts its input: malformed bytes yield nullopt, not a crash,
 * so a corrupt cache file degrades to a cache miss.
 */

#ifndef QPC_PULSE_SERIALIZE_H
#define QPC_PULSE_SERIALIZE_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "model/calibration.h"
#include "pulse/schedule.h"

namespace qpc {

/** Current on-disk format version written by serializePulseSchedule. */
inline constexpr std::uint32_t kPulseFormatVersion = 2;

/**
 * Encode a schedule into the versioned binary format, stamping the
 * calibration epoch the pulse was synthesized against (the zero epoch
 * when epochs are not in use).
 */
std::vector<std::uint8_t>
serializePulseSchedule(const PulseSchedule& schedule,
                       const CalibrationEpoch& epoch = {});

/**
 * Decode a schedule; nullopt when the bytes are not a well-formed
 * version-1 or version-2 record (bad magic, unsupported version, size
 * mismatch, non-positive dt with channels present). When `epoch` is
 * non-null it receives the record's stamped calibration epoch (the
 * zero epoch for version-1 records).
 */
std::optional<PulseSchedule>
deserializePulseSchedule(const std::uint8_t* data, std::size_t size,
                         CalibrationEpoch* epoch = nullptr);

/** Convenience overload over a byte vector. */
std::optional<PulseSchedule>
deserializePulseSchedule(const std::vector<std::uint8_t>& bytes,
                         CalibrationEpoch* epoch = nullptr);

/**
 * Write a schedule to a file (atomically: temp file + rename, so a
 * concurrent reader never observes a half-written record). Returns
 * false on I/O failure.
 */
bool savePulseSchedule(const std::string& path,
                       const PulseSchedule& schedule,
                       const CalibrationEpoch& epoch = {});

/** Read a schedule from a file; nullopt on I/O error or bad bytes. */
std::optional<PulseSchedule>
loadPulseSchedule(const std::string& path,
                  CalibrationEpoch* epoch = nullptr);

/**
 * Read just the calibration epoch from a record's header without
 * loading the payload — the cheap probe disk-tier adoption uses to
 * decide whether an existing record is servable. Returns the zero
 * epoch for version-1 records, nullopt when the header is truncated,
 * has bad magic, or an unknown version.
 */
std::optional<CalibrationEpoch>
peekPulseRecordEpoch(const std::string& path);

} // namespace qpc

#endif // QPC_PULSE_SERIALIZE_H
