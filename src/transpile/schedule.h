/**
 * @file
 * ASAP scheduling and critical-path analysis.
 *
 * The paper's gate-based runtimes (Tables 2 and 3) are the critical
 * path through the parallel-scheduled circuit, indexed to the Table 1
 * pulse durations. The scheduler here packs every op as early as its
 * qubit dependencies allow and reports the resulting makespan.
 */

#ifndef QPC_TRANSPILE_SCHEDULE_H
#define QPC_TRANSPILE_SCHEDULE_H

#include <vector>

#include "ir/circuit.h"
#include "transpile/durations.h"

namespace qpc {

/** Placement of one op on the time axis. */
struct ScheduledOp
{
    int opIndex;      ///< Index into the source circuit's op list.
    double startNs;   ///< ASAP start time.
    double endNs;     ///< startNs + duration.
};

/** Result of ASAP scheduling. */
struct Schedule
{
    std::vector<ScheduledOp> items;
    double makespanNs = 0.0;   ///< Critical path length.
};

/** Schedule every op as soon as its qubits are free. */
Schedule scheduleAsap(const Circuit& circuit,
                      const GateDurations& durations);

/** Critical path in nanoseconds (the gate-based circuit runtime). */
double criticalPathNs(const Circuit& circuit,
                      const GateDurations& durations);

/**
 * Structural moments: ops grouped into layers of qubit-disjoint gates,
 * ignoring durations. Used by blocking and by depth statistics.
 */
std::vector<std::vector<int>> asMoments(const Circuit& circuit);

} // namespace qpc

#endif // QPC_TRANSPILE_SCHEDULE_H
