/**
 * @file
 * Gate-based pulse duration table.
 *
 * Table 1 of the paper: the per-gate pulse durations (in nanoseconds)
 * that gate-based compilation concatenates. Gate-based circuit runtime
 * is the ASAP critical path of the circuit indexed to these values.
 */

#ifndef QPC_TRANSPILE_DURATIONS_H
#define QPC_TRANSPILE_DURATIONS_H

#include "ir/circuit.h"

namespace qpc {

/**
 * Pulse duration lookup for the compilation basis gate set.
 *
 * The default values reproduce Table 1 (gmon qubit system): Rz 0.4 ns,
 * Rx 2.5 ns, H 1.4 ns, CX 3.8 ns, SWAP 7.4 ns. Gates outside the basis
 * are charged at the cost of their natural basis implementation
 * (Z-axis phase gates at the Rz cost, CZ at the CX cost, and so on).
 */
struct GateDurations
{
    double rz = 0.4;
    double rx = 2.5;
    double h = 1.4;
    double cx = 3.8;
    double swap = 7.4;

    /** The paper's Table 1 values. */
    static GateDurations table1() { return GateDurations{}; }

    /** Duration in nanoseconds of a single op. */
    double opDuration(const GateOp& op) const;

    /** Sum of op durations (serial lower bound, ignores parallelism). */
    double serialDuration(const Circuit& circuit) const;
};

} // namespace qpc

#endif // QPC_TRANSPILE_DURATIONS_H
