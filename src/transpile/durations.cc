#include "transpile/durations.h"

#include "common/logging.h"

namespace qpc {

double
GateDurations::opDuration(const GateOp& op) const
{
    switch (op.kind) {
      case GateKind::I:
        return 0.0;
      case GateKind::Z:
      case GateKind::S:
      case GateKind::Sdg:
      case GateKind::T:
      case GateKind::Tdg:
      case GateKind::Rz:
        return rz;
      case GateKind::X:
      case GateKind::Y:
      case GateKind::Rx:
      case GateKind::Ry:
        return rx;
      case GateKind::H:
        return h;
      case GateKind::CX:
      case GateKind::CZ:
      case GateKind::ISwap:
        return cx;
      case GateKind::SWAP:
        return swap;
    }
    panic("unknown GateKind in opDuration");
}

double
GateDurations::serialDuration(const Circuit& circuit) const
{
    double total = 0.0;
    for (const GateOp& op : circuit.ops())
        total += opDuration(op);
    return total;
}

} // namespace qpc
