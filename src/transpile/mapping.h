/**
 * @file
 * Hardware topology and SWAP-insertion mapping.
 *
 * NISQ machines have sparse connectivity; the paper maps every
 * benchmark circuit onto nearest-neighbour hardware before measuring
 * gate-based runtimes, and the gmon device of Appendix A couples
 * qubits on a rectangular grid. This module models such topologies and
 * routes two-qubit gates with greedy shortest-path SWAP insertion.
 */

#ifndef QPC_TRANSPILE_MAPPING_H
#define QPC_TRANSPILE_MAPPING_H

#include <utility>
#include <vector>

#include "ir/circuit.h"

namespace qpc {

/** Undirected coupling graph of a device. */
class Topology
{
  public:
    /** A 1 x n nearest-neighbour chain. */
    static Topology line(int n);

    /** A rows x cols rectangular grid (row-major qubit indices). */
    static Topology grid(int rows, int cols);

    /** All-to-all connectivity (mapping becomes a no-op). */
    static Topology clique(int n);

    int numQubits() const { return numQubits_; }
    const std::vector<std::pair<int, int>>& edges() const
    {
        return edges_;
    }

    /** True when a and b share a coupler. */
    bool connected(int a, int b) const;

    /** BFS shortest path from a to b, inclusive of endpoints. */
    std::vector<int> shortestPath(int a, int b) const;

    /** Hop distance between two qubits. */
    int distance(int a, int b) const;

  private:
    Topology(int num_qubits, std::vector<std::pair<int, int>> edges);

    int numQubits_;
    std::vector<std::pair<int, int>> edges_;
    std::vector<std::vector<int>> adjacency_;
};

/** Output of the router. */
struct MappingResult
{
    /** The routed circuit; all 2q gates act on coupled pairs. */
    Circuit circuit;
    /** finalLayout[logical] = physical qubit after routing. */
    std::vector<int> finalLayout;
    /** Number of SWAP gates inserted. */
    int swapsInserted = 0;
};

/**
 * Route a circuit onto a topology with greedy SWAP insertion.
 *
 * Logical qubits start at the identity placement. Whenever a two-qubit
 * gate spans non-adjacent physical qubits, SWAPs walk one operand along
 * the BFS shortest path until the pair is adjacent.
 */
MappingResult mapToTopology(const Circuit& circuit,
                            const Topology& topology);

} // namespace qpc

#endif // QPC_TRANSPILE_MAPPING_H
