/**
 * @file
 * Width-capped circuit aggregation (Section 5.2 of the paper).
 *
 * GRAPE's convergence cost grows exponentially with circuit width, so
 * circuits wider than 4 qubits are partitioned into blocks of at most
 * 4 qubits before pulse optimization, following the aggregation
 * methodology of Shi et al. (ASPLOS'19). Blocks are convex subsets of
 * the gate DAG: the inter-block dependency graph is acyclic, so block
 * pulses concatenate along a block-level critical path without
 * delaying one another — the property that makes blocked GRAPE
 * strictly better than gate-based compilation.
 */

#ifndef QPC_TRANSPILE_BLOCKING_H
#define QPC_TRANSPILE_BLOCKING_H

#include <vector>

#include "ir/circuit.h"

namespace qpc {

/** One aggregated block: a qubit subset and the ops assigned to it. */
struct CircuitBlock
{
    /** Sorted global qubit ids the block touches. */
    std::vector<int> qubits;
    /** Indices into the source circuit's op list, in program order. */
    std::vector<int> opIndices;

    /**
     * Extract the block as a standalone circuit, with global qubits
     * relabeled to local indices 0..width-1 in sorted order.
     */
    Circuit asCircuit(const Circuit& source) const;

    int width() const { return static_cast<int>(qubits.size()); }
};

/** A full partition of a circuit into blocks plus its dependency DAG. */
struct Blocking
{
    std::vector<CircuitBlock> blocks;
    /** predecessors[b] = blocks that must finish before block b. */
    std::vector<std::vector<int>> predecessors;

    int numBlocks() const { return static_cast<int>(blocks.size()); }
};

/**
 * Greedily aggregate a circuit into convex blocks of at most
 * max_width qubits. Every op lands in exactly one block; blocks close
 * whenever a qubit moves on, which keeps the block DAG acyclic.
 */
Blocking aggregateBlocks(const Circuit& circuit, int max_width);

/**
 * Critical path through the block DAG given per-block durations:
 * the earliest-finish time of the latest block when every block starts
 * as soon as its predecessors complete.
 */
double blockCriticalPath(const Blocking& blocking,
                         const std::vector<double>& block_times_ns);

} // namespace qpc

#endif // QPC_TRANSPILE_BLOCKING_H
