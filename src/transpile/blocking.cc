#include "transpile/blocking.h"

#include <algorithm>
#include <map>
#include <queue>

#include "common/logging.h"

namespace qpc {

Circuit
CircuitBlock::asCircuit(const Circuit& source) const
{
    panicIf(qubits.empty(), "block has no qubits");
    std::map<int, int> local;
    for (size_t i = 0; i < qubits.size(); ++i)
        local[qubits[i]] = static_cast<int>(i);

    Circuit block(width());
    for (int index : opIndices) {
        GateOp op = source.ops()[index];
        op.q0 = local.at(op.q0);
        if (op.arity() == 2)
            op.q1 = local.at(op.q1);
        block.add(op);
    }
    return block;
}

namespace {

/** Mutable block under construction. */
struct OpenBlock
{
    std::vector<int> qubits;     // sorted
    std::vector<int> opIndices;
    bool open = true;
};

void
insertSorted(std::vector<int>& sorted, int value)
{
    auto it = std::lower_bound(sorted.begin(), sorted.end(), value);
    if (it == sorted.end() || *it != value)
        sorted.insert(it, value);
}

} // namespace

Blocking
aggregateBlocks(const Circuit& circuit, int max_width)
{
    fatalIf(max_width < 1, "block width cap must be at least 1");
    fatalIf(max_width < 2 && circuit.countTwoQubitOps() > 0,
            "two-qubit gates need a width cap of at least 2");

    std::vector<OpenBlock> blocks;
    // open[q] = index of the open block currently owning qubit q.
    std::vector<int> open(circuit.numQubits(), -1);

    // Closing is strong: when a block loses any qubit, the whole block
    // closes and every one of its qubits is released. This guarantees
    // that open blocks never depend on one another, which keeps every
    // merge / extension convex.
    auto close_block = [&](int b) {
        if (b < 0 || !blocks[b].open)
            return;
        blocks[b].open = false;
        for (int q : blocks[b].qubits)
            if (open[q] == b)
                open[q] = -1;
    };

    auto new_block = [&](const std::vector<int>& qs) {
        OpenBlock blk;
        blk.qubits = qs;
        std::sort(blk.qubits.begin(), blk.qubits.end());
        blocks.push_back(blk);
        const int id = static_cast<int>(blocks.size()) - 1;
        for (int q : blk.qubits)
            open[q] = id;
        return id;
    };

    for (int i = 0; i < circuit.size(); ++i) {
        const GateOp& op = circuit.ops()[i];

        if (op.arity() == 1) {
            const int q = op.q0;
            int b = open[q];
            if (b < 0)
                b = new_block({q});
            blocks[b].opIndices.push_back(i);
            continue;
        }

        const int a = op.q0;
        const int c = op.q1;
        const int ba = open[a];
        const int bc = open[c];

        if (ba >= 0 && ba == bc) {
            blocks[ba].opIndices.push_back(i);
            continue;
        }

        // Union width if we merged/extended the operand blocks.
        std::vector<int> unioned;
        if (ba >= 0)
            unioned = blocks[ba].qubits;
        if (bc >= 0)
            for (int q : blocks[bc].qubits)
                insertSorted(unioned, q);
        insertSorted(unioned, a);
        insertSorted(unioned, c);

        if (static_cast<int>(unioned.size()) <= max_width) {
            // Merge into (or extend) block ba; absorb bc if distinct.
            int target = ba;
            if (target < 0)
                target = bc;
            if (target < 0) {
                target = new_block({a, c});
            } else {
                if (bc >= 0 && bc != target) {
                    for (int idx : blocks[bc].opIndices)
                        blocks[target].opIndices.push_back(idx);
                    std::sort(blocks[target].opIndices.begin(),
                              blocks[target].opIndices.end());
                    for (int q : blocks[bc].qubits) {
                        insertSorted(blocks[target].qubits, q);
                        open[q] = target;
                    }
                    blocks[bc].open = false;
                    blocks[bc].opIndices.clear();
                    blocks[bc].qubits.clear();
                }
                insertSorted(blocks[target].qubits, a);
                insertSorted(blocks[target].qubits, c);
                open[a] = target;
                open[c] = target;
            }
            blocks[target].opIndices.push_back(i);
        } else {
            close_block(ba);
            close_block(bc);
            const int target = new_block({a, c});
            blocks[target].opIndices.push_back(i);
        }
    }

    // Drop blocks emptied by merges and build the result.
    Blocking result;
    std::vector<int> remap(blocks.size(), -1);
    for (size_t b = 0; b < blocks.size(); ++b) {
        if (blocks[b].opIndices.empty())
            continue;
        remap[b] = result.numBlocks();
        CircuitBlock out;
        out.qubits = blocks[b].qubits;
        out.opIndices = blocks[b].opIndices;
        result.blocks.push_back(std::move(out));
    }

    // Dependencies: block u precedes v when v holds the next op on a
    // qubit whose previous op sits in u.
    result.predecessors.assign(result.numBlocks(), {});
    std::vector<int> op_block(circuit.size(), -1);
    for (int b = 0; b < result.numBlocks(); ++b)
        for (int idx : result.blocks[b].opIndices)
            op_block[idx] = b;
    std::vector<int> last_block(circuit.numQubits(), -1);
    for (int i = 0; i < circuit.size(); ++i) {
        const int b = op_block[i];
        panicIf(b < 0, "op ", i, " not assigned to any block");
        for (int q : circuit.ops()[i].qubits()) {
            const int prev = last_block[q];
            if (prev >= 0 && prev != b) {
                auto& preds = result.predecessors[b];
                if (std::find(preds.begin(), preds.end(), prev) ==
                    preds.end())
                    preds.push_back(prev);
            }
            last_block[q] = b;
        }
    }
    return result;
}

double
blockCriticalPath(const Blocking& blocking,
                  const std::vector<double>& block_times_ns)
{
    const int n = blocking.numBlocks();
    panicIf(static_cast<int>(block_times_ns.size()) != n,
            "need one duration per block");

    // Kahn topological order over the predecessor lists.
    std::vector<std::vector<int>> successors(n);
    std::vector<int> in_degree(n, 0);
    for (int b = 0; b < n; ++b) {
        in_degree[b] =
            static_cast<int>(blocking.predecessors[b].size());
        for (int p : blocking.predecessors[b])
            successors[p].push_back(b);
    }

    std::queue<int> ready;
    for (int b = 0; b < n; ++b)
        if (in_degree[b] == 0)
            ready.push(b);

    std::vector<double> finish(n, 0.0);
    int visited = 0;
    double makespan = 0.0;
    while (!ready.empty()) {
        const int b = ready.front();
        ready.pop();
        ++visited;
        double start = 0.0;
        for (int p : blocking.predecessors[b])
            start = std::max(start, finish[p]);
        finish[b] = start + block_times_ns[b];
        makespan = std::max(makespan, finish[b]);
        for (int s : successors[b])
            if (--in_degree[s] == 0)
                ready.push(s);
    }
    panicIf(visited != n, "block dependency graph has a cycle");
    return makespan;
}

} // namespace qpc
