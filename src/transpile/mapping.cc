#include "transpile/mapping.h"

#include <algorithm>
#include <queue>

#include "common/logging.h"

namespace qpc {

Topology::Topology(int num_qubits, std::vector<std::pair<int, int>> edges)
    : numQubits_(num_qubits), edges_(std::move(edges)),
      adjacency_(num_qubits)
{
    for (const auto& [a, b] : edges_) {
        panicIf(a < 0 || a >= num_qubits || b < 0 || b >= num_qubits ||
                    a == b,
                "bad topology edge (", a, ", ", b, ")");
        adjacency_[a].push_back(b);
        adjacency_[b].push_back(a);
    }
}

Topology
Topology::line(int n)
{
    fatalIf(n <= 0, "line topology needs at least one qubit");
    std::vector<std::pair<int, int>> edges;
    for (int i = 0; i + 1 < n; ++i)
        edges.emplace_back(i, i + 1);
    return Topology(n, std::move(edges));
}

Topology
Topology::grid(int rows, int cols)
{
    fatalIf(rows <= 0 || cols <= 0, "grid topology needs positive shape");
    std::vector<std::pair<int, int>> edges;
    auto id = [cols](int r, int c) { return r * cols + c; };
    for (int r = 0; r < rows; ++r) {
        for (int c = 0; c < cols; ++c) {
            if (c + 1 < cols)
                edges.emplace_back(id(r, c), id(r, c + 1));
            if (r + 1 < rows)
                edges.emplace_back(id(r, c), id(r + 1, c));
        }
    }
    return Topology(rows * cols, std::move(edges));
}

Topology
Topology::clique(int n)
{
    fatalIf(n <= 0, "clique topology needs at least one qubit");
    std::vector<std::pair<int, int>> edges;
    for (int a = 0; a < n; ++a)
        for (int b = a + 1; b < n; ++b)
            edges.emplace_back(a, b);
    return Topology(n, std::move(edges));
}

bool
Topology::connected(int a, int b) const
{
    for (int neighbor : adjacency_[a])
        if (neighbor == b)
            return true;
    return false;
}

std::vector<int>
Topology::shortestPath(int a, int b) const
{
    panicIf(a < 0 || a >= numQubits_ || b < 0 || b >= numQubits_,
            "shortestPath endpoint outside topology");
    if (a == b)
        return {a};

    std::vector<int> parent(numQubits_, -1);
    std::queue<int> frontier;
    frontier.push(a);
    parent[a] = a;
    while (!frontier.empty()) {
        const int node = frontier.front();
        frontier.pop();
        for (int next : adjacency_[node]) {
            if (parent[next] >= 0)
                continue;
            parent[next] = node;
            if (next == b) {
                std::vector<int> path{b};
                int walk = b;
                while (walk != a) {
                    walk = parent[walk];
                    path.push_back(walk);
                }
                std::reverse(path.begin(), path.end());
                return path;
            }
            frontier.push(next);
        }
    }
    panic("topology is disconnected between ", a, " and ", b);
}

int
Topology::distance(int a, int b) const
{
    return static_cast<int>(shortestPath(a, b).size()) - 1;
}

MappingResult
mapToTopology(const Circuit& circuit, const Topology& topology)
{
    fatalIf(topology.numQubits() < circuit.numQubits(),
            "topology with ", topology.numQubits(),
            " qubits cannot host a circuit of width ",
            circuit.numQubits());

    MappingResult result;
    result.circuit = Circuit(topology.numQubits());

    // layout[logical] = physical; placement[physical] = logical.
    std::vector<int> layout(circuit.numQubits());
    std::vector<int> placement(topology.numQubits(), -1);
    for (int i = 0; i < circuit.numQubits(); ++i) {
        layout[i] = i;
        placement[i] = i;
    }

    auto swap_physical = [&](int pa, int pb) {
        result.circuit.swap(pa, pb);
        ++result.swapsInserted;
        const int la = placement[pa];
        const int lb = placement[pb];
        if (la >= 0)
            layout[la] = pb;
        if (lb >= 0)
            layout[lb] = pa;
        std::swap(placement[pa], placement[pb]);
    };

    for (const GateOp& op : circuit.ops()) {
        GateOp routed = op;
        if (op.arity() == 1) {
            routed.q0 = layout[op.q0];
            result.circuit.add(routed);
            continue;
        }
        // Walk q0's operand toward q1 until the pair is adjacent.
        int pa = layout[op.q0];
        int pb = layout[op.q1];
        if (!topology.connected(pa, pb)) {
            std::vector<int> path = topology.shortestPath(pa, pb);
            for (size_t step = 0; step + 2 < path.size(); ++step) {
                swap_physical(path[step], path[step + 1]);
                pa = path[step + 1];
            }
        }
        routed.q0 = pa;
        routed.q1 = layout[op.q1];
        panicIf(!topology.connected(routed.q0, routed.q1),
                "routing failed to make ops adjacent");
        result.circuit.add(routed);
    }

    result.finalLayout = layout;
    return result;
}

} // namespace qpc
