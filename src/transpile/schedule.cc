#include "transpile/schedule.h"

#include <algorithm>

#include "common/logging.h"

namespace qpc {

Schedule
scheduleAsap(const Circuit& circuit, const GateDurations& durations)
{
    Schedule schedule;
    schedule.items.reserve(circuit.ops().size());
    std::vector<double> qubit_free(circuit.numQubits(), 0.0);

    for (int i = 0; i < circuit.size(); ++i) {
        const GateOp& op = circuit.ops()[i];
        double start = qubit_free[op.q0];
        if (op.arity() == 2)
            start = std::max(start, qubit_free[op.q1]);
        const double end = start + durations.opDuration(op);
        qubit_free[op.q0] = end;
        if (op.arity() == 2)
            qubit_free[op.q1] = end;
        schedule.items.push_back({i, start, end});
        schedule.makespanNs = std::max(schedule.makespanNs, end);
    }
    return schedule;
}

double
criticalPathNs(const Circuit& circuit, const GateDurations& durations)
{
    return scheduleAsap(circuit, durations).makespanNs;
}

std::vector<std::vector<int>>
asMoments(const Circuit& circuit)
{
    std::vector<std::vector<int>> moments;
    std::vector<int> qubit_moment(circuit.numQubits(), -1);

    for (int i = 0; i < circuit.size(); ++i) {
        const GateOp& op = circuit.ops()[i];
        int earliest = qubit_moment[op.q0];
        if (op.arity() == 2)
            earliest = std::max(earliest, qubit_moment[op.q1]);
        const int moment = earliest + 1;
        if (moment == static_cast<int>(moments.size()))
            moments.emplace_back();
        panicIf(moment > static_cast<int>(moments.size()),
                "moment index skipped a layer");
        moments[moment].push_back(i);
        qubit_moment[op.q0] = moment;
        if (op.arity() == 2)
            qubit_moment[op.q1] = moment;
    }
    return moments;
}

} // namespace qpc
