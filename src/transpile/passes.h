/**
 * @file
 * Circuit optimization passes.
 *
 * Mirrors the baseline the paper builds with IBM Qiskit's transpiler
 * plus their custom rotation-merge pass: aggressive cancellation of
 * adjacent self-inverse gates (CX CX, H H, ...), merging of consecutive
 * same-axis rotations — e.g. Rx(a) Rx(b) -> Rx(a+b) — including merges
 * across commuting two-qubit gates (Rz slides through a CX control and
 * through CZ), and removal of identity / zero-angle gates. All passes
 * preserve the circuit unitary exactly; property tests verify this on
 * random circuits.
 */

#ifndef QPC_TRANSPILE_PASSES_H
#define QPC_TRANSPILE_PASSES_H

#include "ir/circuit.h"

namespace qpc {

/** Knobs for the optimization pipeline. */
struct OptimizeOptions
{
    /** Merge rotations through commuting CX controls / CZ. */
    bool commuteThroughTwoQubit = true;
    /** Max fixpoint iterations of the pass pipeline. */
    int maxRounds = 20;
};

/**
 * Merge consecutive same-axis rotations on the same qubit.
 *
 * Two rotations merge when their symbolic angles stay within the
 * one-parameter form (same theta index, or at least one constant).
 * With commuteThroughTwoQubit, an Rz can slide past a CX acting on the
 * same qubit as control, and past either side of a CZ.
 *
 * @return Number of merges performed.
 */
int mergeRotations(Circuit& circuit, bool commute_through_two_qubit = true);

/**
 * Cancel adjacent self-inverse pairs (X X, H H, CX CX, CZ CZ,
 * SWAP SWAP, S Sdg, T Tdg) with no intervening op on the shared qubits.
 *
 * @return Number of ops removed.
 */
int cancelInverses(Circuit& circuit);

/**
 * Drop identity gates and rotations whose angle is identically zero.
 *
 * @return Number of ops removed.
 */
int removeTrivialOps(Circuit& circuit);

/**
 * Run the full pipeline (merge, cancel, strip) to a fixpoint.
 *
 * @return Total number of rewrites applied.
 */
int optimizeCircuit(Circuit& circuit, const OptimizeOptions& options = {});

} // namespace qpc

#endif // QPC_TRANSPILE_PASSES_H
